// paragraph-serve: long-lived prediction daemon over the serve protocol
// (docs/SERVING.md). Loads a checkpoint once, listens on loopback TCP, and
// coalesces concurrent predict requests into fused InferenceEngine batches
// through a bounded admission queue and a dynamic batching window.
//
// Shutdown: SIGINT/SIGTERM (or --duration-s for scripted soak runs) drains
// the queue gracefully and prints the final service counters. Exit codes:
// 0 clean shutdown, 1 startup/runtime failure, 2 usage error.
#include <omp.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "model/checkpoint.hpp"
#include "model/paragraph_model.hpp"
#include "serve/server.hpp"
#include "support/env.hpp"
#include "tensor/simd.hpp"

namespace {

using namespace pg;

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

int usage() {
  std::fprintf(stderr, R"(usage: paragraph-serve --checkpoint <ckpt> [options]

  --checkpoint <file>   trained model checkpoint (required)
  --hidden N            model hidden dim (default 24; must match the ckpt)
  --port P              listen port on 127.0.0.1 (default 0 = ephemeral)
  --port-file <file>    write the bound port as one line (for scripts)
  --workers N           InferenceEngine shards (default 2)
  --io-threads N        epoll reactor threads (default 0 = min(4, cores))
  --queue-depth N       admission queue bound (default 256)
  --batch-max N         batching window flushes at N graphs (default 16)
  --window-us T         ...or after T microseconds (default 200)
  --idle-timeout-ms T   reactor idle-connection timeout (default 0 = none)
  --duration-s S        exit after S seconds (default 0 = run until signal)
  --threads N           OpenMP threads per engine shard (PARAGRAPH_THREADS)
  --simd LEVEL          kernel dispatch: scalar|sse2|avx2 (PARAGRAPH_SIMD)
  --cache               enable the semantic prediction cache (default off)
  --cache-eps E         embedding L2 match radius (default 0 = exact match)
  --cache-cap N         cache capacity before LRU eviction (default 1024)

  Environment defaults (overridden by the flags above): PARAGRAPH_SERVE_PORT,
  PARAGRAPH_SERVE_WORKERS, PARAGRAPH_SERVE_IO_THREADS, PARAGRAPH_SERVE_QUEUE,
  PARAGRAPH_SERVE_BATCH, PARAGRAPH_SERVE_WINDOW_US,
  PARAGRAPH_SERVE_IDLE_TIMEOUT_MS, PARAGRAPH_SERVE_CONN_INFLIGHT,
  PARAGRAPH_SERVE_WRITEQ_CAP, PARAGRAPH_SERVE_CACHE,
  PARAGRAPH_SERVE_CACHE_EPS, PARAGRAPH_SERVE_CACHE_CAP.
)");
  return 2;
}

/// "--flag value" scanner (the CLI's Args helper is private to it; the
/// daemon's surface is small enough for a direct loop).
const char* option_value(int argc, char** argv, const char* name) {
  for (int a = 1; a + 1 < argc; ++a)
    if (std::string(argv[a]) == name) return argv[a + 1];
  return nullptr;
}

std::int64_t int_option(int argc, char** argv, const char* name,
                        std::int64_t fallback) {
  const char* value = option_value(argc, argv, name);
  return value != nullptr ? std::stoll(value) : fallback;
}

bool flag_option(int argc, char** argv, const char* name) {
  for (int a = 1; a < argc; ++a)
    if (std::string(argv[a]) == name) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const char* ckpt_path = option_value(argc, argv, "--checkpoint");
    if (ckpt_path == nullptr) return usage();

    const std::int64_t threads = int_option(argc, argv, "--threads", 0);
    if (threads > 0)
      omp_set_num_threads(static_cast<int>(threads));
    else if (env_thread_count() > 0)
      omp_set_num_threads(static_cast<int>(env_thread_count()));
    if (const char* level = option_value(argc, argv, "--simd")) {
      const auto parsed = tensor::simd::level_from_name(level);
      if (!parsed) {
        std::fprintf(stderr, "unknown SIMD level '%s' (scalar|sse2|avx2)\n",
                     level);
        return 2;
      }
      tensor::simd::set_active_level(*parsed);
    }

    model::ModelConfig config;
    config.hidden_dim =
        static_cast<std::size_t>(int_option(argc, argv, "--hidden", 24));
    model::ParaGraphModel model(config);
    const model::CheckpointScalers scalers =
        model::load_checkpoint_file(ckpt_path, model);

    serve::ServeConfig serve_config = serve::serve_config_from_env();
    serve_config.port = static_cast<std::uint16_t>(
        int_option(argc, argv, "--port", serve_config.port));
    serve_config.workers = static_cast<std::size_t>(int_option(
        argc, argv, "--workers",
        static_cast<std::int64_t>(std::max<std::size_t>(serve_config.workers, 2))));
    serve_config.io_threads = static_cast<std::size_t>(
        int_option(argc, argv, "--io-threads",
                   static_cast<std::int64_t>(serve_config.io_threads)));
    serve_config.queue_depth = static_cast<std::size_t>(
        int_option(argc, argv, "--queue-depth",
                   static_cast<std::int64_t>(serve_config.queue_depth)));
    serve_config.batch_max = static_cast<std::size_t>(
        int_option(argc, argv, "--batch-max",
                   static_cast<std::int64_t>(serve_config.batch_max)));
    serve_config.batch_window_us = static_cast<std::uint32_t>(
        int_option(argc, argv, "--window-us", serve_config.batch_window_us));
    serve_config.idle_timeout_ms = static_cast<int>(int_option(
        argc, argv, "--idle-timeout-ms", serve_config.idle_timeout_ms));
    if (flag_option(argc, argv, "--cache")) serve_config.cache = true;
    if (const char* eps = option_value(argc, argv, "--cache-eps"))
      serve_config.cache_eps = std::stod(eps);
    serve_config.cache_capacity = static_cast<std::size_t>(
        int_option(argc, argv, "--cache-cap",
                   static_cast<std::int64_t>(serve_config.cache_capacity)));
    const std::int64_t duration_s = int_option(argc, argv, "--duration-s", 0);

    serve::Server server(model, scalers, serve_config);
    server.start();

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    std::printf("paragraph-serve: listening on 127.0.0.1:%u (simd %s, "
                "%zu io threads, %zu workers, queue %zu, batch %zu@%uus, "
                "cache %s)\n",
                server.port(),
                tensor::simd::level_name(tensor::simd::active_level()),
                server.io_thread_count(), serve_config.workers,
                serve_config.queue_depth, serve_config.batch_max,
                serve_config.batch_window_us,
                serve_config.cache ? "on" : "off");
    std::fflush(stdout);
    if (const char* port_file = option_value(argc, argv, "--port-file")) {
      std::ofstream os(port_file);
      os << server.port() << "\n";
      if (!os) {
        std::fprintf(stderr, "error: cannot write %s\n", port_file);
        return 1;
      }
    }

    const auto started = std::chrono::steady_clock::now();
    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      if (duration_s > 0 && std::chrono::steady_clock::now() - started >=
                                std::chrono::seconds(duration_s))
        break;
    }

    server.stop();
    const serve::ServerStats stats = server.stats();
    std::printf("paragraph-serve: drained and stopped — %llu connections, "
                "%llu predictions in %llu batches, %llu errors, %llu busy, "
                "%llu pings\n",
                static_cast<unsigned long long>(stats.connections),
                static_cast<unsigned long long>(stats.requests_ok),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.requests_error),
                static_cast<unsigned long long>(stats.busy_rejected),
                static_cast<unsigned long long>(stats.pings));
    const double coalesce = stats.writev_calls > 0
                                ? static_cast<double>(stats.reply_frames) /
                                      static_cast<double>(stats.writev_calls)
                                : 0.0;
    std::printf("paragraph-serve: reactor — %llu reply frames in %llu "
                "gathered writes (%.2f frames/write), %llu reads gated, "
                "%llu idle closes, %llu accepts dropped\n",
                static_cast<unsigned long long>(stats.reply_frames),
                static_cast<unsigned long long>(stats.writev_calls), coalesce,
                static_cast<unsigned long long>(stats.read_gated),
                static_cast<unsigned long long>(stats.idle_closed),
                static_cast<unsigned long long>(stats.accepts_dropped));
    const double rows_per_chunk =
        stats.sched_chunks > 0 ? static_cast<double>(stats.sched_rows) /
                                     static_cast<double>(stats.sched_chunks)
                               : 0.0;
    std::printf("paragraph-serve: scheduler — %llu fused chunks, %llu node "
                "rows (%.1f rows/chunk), %llu intra-parallel chunks\n",
                static_cast<unsigned long long>(stats.sched_chunks),
                static_cast<unsigned long long>(stats.sched_rows),
                rows_per_chunk,
                static_cast<unsigned long long>(stats.sched_intra_chunks));
    if (serve_config.cache)
      std::printf("paragraph-serve: cache — %llu hits, %llu misses, "
                  "%llu evictions (eps %g, cap %zu)\n",
                  static_cast<unsigned long long>(stats.cache_hits),
                  static_cast<unsigned long long>(stats.cache_misses),
                  static_cast<unsigned long long>(stats.cache_evictions),
                  serve_config.cache_eps, serve_config.cache_capacity);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
