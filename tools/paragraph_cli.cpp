// paragraph-cli: end-to-end driver over the pg::io binary formats.
//
// Subcommands (see docs/FORMAT.md and README for the workflow):
//   compile  kernel source (.c)      -> .pgraph   (parse + graph build)
//   encode   .pgraph + scaler meta   -> .psample  (model tensors)
//   predict  .psample* + checkpoint  -> runtime predictions, batched
//            through model::InferenceEngine::predict_batch
//   dump     any pg::io file         -> human-readable summary
//   corpus   batch-generate the paper's kernel/variant sweep into a
//            directory (--golden emits the small pinned regression corpus
//            under tests/golden/; --format picks the .pgds container
//            version)
//   reindex  .pgds (v1 or v2)        -> format-v2 .pgds: record bytes
//            copied verbatim, fresh offset/checksum index appended
//   client   .psample* -> predictions served by a running paragraph-serve
//            daemon (the serve protocol's reference client; retries on
//            backpressure)
//   ann      embedding-space k-NN index: `ann build` embeds .psample files
//            through the engine and nn-descends a .pgann index; `ann query`
//            embeds queries and walks the graph (--exact for the brute-force
//            reference); `ann dump` prints the stored meta
//
// Exit codes: 0 success, 1 runtime/input failure (bad file, parse error),
// 2 usage error. All binary-format failures surface as io::FormatError with
// a one-line message — never a crash.
#include <omp.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ann/ann_index.hpp"
#include "dataset/generator.hpp"
#include "dataset/kernel_spec.hpp"
#include "dataset/sample_builder.hpp"
#include "dataset/variants.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "io/binary.hpp"
#include "io/dataset_view.hpp"
#include "io/pgraph_io.hpp"
#include "model/checkpoint.hpp"
#include "model/engine.hpp"
#include "serve/client.hpp"
#include "sim/platform.hpp"
#include "support/check.hpp"
#include "support/env.hpp"
#include "tensor/simd.hpp"

namespace {

using namespace pg;

int usage() {
  std::fprintf(stderr, R"(usage: paragraph-cli <subcommand> [args]

  compile <src.c> -o <out.pgraph> [--representation raw|augmented|paragraph]
          [--workers N] [--fallback N] [--text <out.txt>]
  encode  <in.pgraph> -o <out.psample> (--meta <file.pgds> | scaler flags)
          --teams N --threads N [--runtime-us R] [--app NAME] [--app-id K]
          [--variant NAME]
          scaler flags: --child-weight-scale S --target-bounds LO,HI
                        --teams-bounds LO,HI --threads-bounds LO,HI
                        [--log-target]
  predict --checkpoint <ckpt> [--hidden N] [--out <file>] [--threads N]
          [--simd scalar|sse2|avx2]
          [--log-target (override; normally read from the checkpoint)]
          <sample.psample>...
  dump    <file.pgraph|.psample|.pgds>
  client  --port P [--timeout-ms T] [--ping] [--out <file>]
          <sample.psample>...
  corpus  --out <dir> [--threads N] [--simd scalar|sse2|avx2]
          [--format v1|v2]
          (--golden | [--platform power9|v100|epyc|mi50]
          [--scale smoke|default|full] [--seed N]
          [--representation raw|augmented|paragraph] [--log-target])
  reindex <in.pgds> <out.pgds>
  ann     build --checkpoint <ckpt> -o <out.pgann> [--hidden N] [--k K]
                [--iterations I] [--seed S] [--threads N]
                [--simd scalar|sse2|avx2] <sample.psample>...
          query --index <file.pgann> --checkpoint <ckpt> [--hidden N]
                [--k K] [--ef E] [--exact] [--threads N]
                [--simd scalar|sse2|avx2] <query.psample>...
          dump  <file.pgann>

  predict/corpus worker threads: --threads N, else the PARAGRAPH_THREADS
  environment variable, else the OpenMP default. (encode's --threads is the
  kernel launch config, not a worker count.)
  predict/corpus kernel dispatch: --simd LEVEL, else the PARAGRAPH_SIMD
  environment variable, else the best level the CPU supports. Results are
  bitwise-identical at every level; dump prints the active one.
)");
  return 2;
}

// --- tiny argv helpers ----------------------------------------------------

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --flag value
  std::vector<std::string> flags;              // bare --flag

  [[nodiscard]] bool has_flag(const std::string& name) const {
    return std::find(flags.begin(), flags.end(), name) != flags.end();
  }
  [[nodiscard]] std::optional<std::string> option(const std::string& name) const {
    const auto it = options.find(name);
    if (it == options.end()) return std::nullopt;
    return it->second;
  }
  [[nodiscard]] std::string required(const std::string& name) const {
    const auto v = option(name);
    if (!v) throw std::runtime_error("missing required option " + name);
    return *v;
  }
  [[nodiscard]] std::int64_t int_option(const std::string& name,
                                        std::int64_t fallback) const {
    const auto v = option(name);
    return v ? std::stoll(*v) : fallback;
  }
  [[nodiscard]] double double_option(const std::string& name,
                                     double fallback) const {
    const auto v = option(name);
    return v ? std::stod(*v) : fallback;
  }
};

/// Options that take a value; everything else starting with "--" is a flag.
Args parse_args(int argc, char** argv, int first) {
  static const char* kValued[] = {
      "-o",          "--representation", "--workers",      "--fallback",
      "--text",      "--meta",           "--teams",        "--threads",
      "--runtime-us", "--app",           "--app-id",       "--variant",
      "--checkpoint", "--hidden",        "--out",          "--platform",
      "--scale",     "--seed",           "--simd",         "--child-weight-scale",
      "--target-bounds", "--teams-bounds", "--threads-bounds",
      "--port",      "--timeout-ms",     "--format",       "--k",
      "--ef",        "--iterations",     "--index"};
  Args args;
  for (int a = first; a < argc; ++a) {
    const std::string arg = argv[a];
    bool valued = false;
    for (const char* name : kValued) {
      if (arg == name) {
        if (a + 1 >= argc)
          throw std::runtime_error("option " + arg + " needs a value");
        args.options[arg] = argv[++a];
        valued = true;
        break;
      }
    }
    if (valued) continue;
    if (arg.rfind("--", 0) == 0)
      args.flags.push_back(arg);
    else
      args.positional.push_back(arg);
  }
  return args;
}

graph::Representation representation_from(const std::string& name) {
  if (name == "raw") return graph::Representation::kRawAst;
  if (name == "augmented") return graph::Representation::kAugmentedAst;
  if (name == "paragraph") return graph::Representation::kParaGraph;
  throw std::runtime_error("unknown representation '" + name +
                           "' (raw|augmented|paragraph)");
}

/// "LO,HI" -> pair of doubles.
std::pair<double, double> bounds_from(const std::string& text) {
  const auto comma = text.find(',');
  if (comma == std::string::npos)
    throw std::runtime_error("bad bounds '" + text + "' (expected LO,HI)");
  return {std::stod(text.substr(0, comma)), std::stod(text.substr(comma + 1))};
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string read_text_file_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// --- compile --------------------------------------------------------------

int cmd_compile(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const std::string source = read_text_file(args.positional[0]);

  const frontend::ParseResult parsed = frontend::parse_source(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "%s: parse failed\n%s\n", args.positional[0].c_str(),
                 parsed.diagnostics.summary().c_str());
    return 1;
  }

  graph::BuildOptions options;
  options.representation =
      representation_from(args.option("--representation").value_or("paragraph"));
  options.parallel_workers = args.int_option("--workers", 1);
  options.unknown_trip_fallback = args.int_option("--fallback", 100);
  const graph::ProgramGraph graph = graph::build_graph(parsed.root(), options);

  io::write_graph_file(args.required("-o"), graph);
  if (const auto text = args.option("--text")) {
    std::ofstream os(*text);
    if (!os) throw std::runtime_error("cannot open " + *text);
    graph.serialize(os);
  }
  std::printf("%s: %zu nodes, %zu edges -> %s\n", args.positional[0].c_str(),
              graph.num_nodes(), graph.num_edges(),
              args.required("-o").c_str());
  return 0;
}

// --- encode ---------------------------------------------------------------

io::DatasetMeta meta_from_args(const Args& args) {
  if (const auto meta_path = args.option("--meta")) {
    std::ifstream is(*meta_path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot open " + *meta_path);
    io::DatasetReader reader(is);
    return reader.meta();
  }
  io::DatasetMeta meta;
  meta.child_weight_scale = args.double_option("--child-weight-scale", 1.0);
  meta.log_target = args.has_flag("--log-target");
  const auto target = bounds_from(args.option("--target-bounds").value_or("0,1"));
  const auto teams = bounds_from(args.option("--teams-bounds").value_or("0,1"));
  const auto threads =
      bounds_from(args.option("--threads-bounds").value_or("0,1"));
  meta.target_min = target.first;
  meta.target_max = target.second;
  meta.teams_min = teams.first;
  meta.teams_max = teams.second;
  meta.threads_min = threads.first;
  meta.threads_max = threads.second;
  return meta;
}

/// Graph + raw launch config/runtime -> scaled TrainingSample, through the
/// canonical dataset::make_training_sample recipe — the CLI path is
/// bitwise-identical to the in-process one because it IS the in-process one.
model::TrainingSample encode_sample(const graph::ProgramGraph& graph,
                                    const io::DatasetMeta& meta,
                                    std::int64_t teams, std::int64_t threads,
                                    double runtime_us, std::int32_t app_id,
                                    std::string app_name, std::string variant) {
  model::SampleSet scalers;
  meta.apply_scalers(scalers);
  return dataset::make_training_sample(graph, scalers, teams, threads,
                                       runtime_us, app_id, std::move(app_name),
                                       std::move(variant));
}

int cmd_encode(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const graph::ProgramGraph graph = io::read_graph_file(args.positional[0]);
  const io::DatasetMeta meta = meta_from_args(args);

  const model::TrainingSample sample = encode_sample(
      graph, meta, args.int_option("--teams", 1), args.int_option("--threads", 1),
      args.double_option("--runtime-us", 0.0),
      static_cast<std::int32_t>(args.int_option("--app-id", -1)),
      args.option("--app").value_or(""), args.option("--variant").value_or(""));

  io::write_sample_file(args.required("-o"), sample);
  std::printf("%s: %zu nodes, %zu relation edges -> %s\n",
              args.positional[0].c_str(), sample.graph.relations.num_nodes,
              sample.graph.relations.num_edges(), args.required("-o").c_str());
  return 0;
}

// --- predict --------------------------------------------------------------

/// Resolves the worker-thread count for predict/corpus: --threads beats
/// PARAGRAPH_THREADS beats the OpenMP default. Must run before any engine
/// or generator is built (their per-thread pools size off the OpenMP max).
void apply_thread_override(const Args& args) {
  std::int64_t threads = args.int_option("--threads", 0);
  if (threads <= 0) threads = env_thread_count();
  if (threads > 0) omp_set_num_threads(static_cast<int>(threads));
}

/// Resolves the kernel dispatch level for predict/corpus: --simd beats
/// PARAGRAPH_SIMD (already folded into the startup probe) beats the CPU
/// probe. An explicitly named but unsupported level clamps down to the best
/// supported one (same fallback the env var gets); an unknown name is a
/// usage error. Results are bitwise-identical at every level, so this knob
/// is for benchmarking and for pinning the parity contract in CI.
void apply_simd_override(const Args& args) {
  const auto level = args.option("--simd");
  if (!level) return;
  const auto parsed = tensor::simd::level_from_name(*level);
  if (!parsed)
    throw std::runtime_error("unknown SIMD level '" + *level +
                             "' (scalar|sse2|avx2)");
  tensor::simd::set_active_level(*parsed);
}

int cmd_predict(const Args& args) {
  if (args.positional.empty()) return usage();
  apply_thread_override(args);
  apply_simd_override(args);
  // Diagnostics to stderr so --out/stdout prediction bytes stay stable
  // across dispatch levels (cli_test compares them against the engine).
  std::fprintf(stderr, "simd: %s\n",
               tensor::simd::level_name(tensor::simd::active_level()));

  model::ModelConfig config;
  config.hidden_dim = static_cast<std::size_t>(args.int_option("--hidden", 24));
  model::ParaGraphModel model(config);
  const model::CheckpointScalers scalers =
      model::load_checkpoint_file(args.required("--checkpoint"), model);

  model::SampleSet set;
  scalers.apply_to(set);  // includes the checkpoint's log-target transform
  if (args.has_flag("--log-target")) set.log_target = true;  // explicit override

  std::vector<model::TrainingSample> samples;
  samples.reserve(args.positional.size());
  for (const std::string& path : args.positional)
    samples.push_back(io::read_sample_file(path));

  std::vector<model::EncodedGraph> graphs;
  std::vector<std::array<float, 2>> aux;
  graphs.reserve(samples.size());
  aux.reserve(samples.size());
  for (model::TrainingSample& s : samples) {
    graphs.push_back(std::move(s.graph));
    aux.push_back(s.aux);
  }

  std::vector<double> scaled(samples.size());
  model::InferenceEngine engine(model);
  engine.predict_batch(graphs, aux, scaled);

  std::FILE* out = stdout;
  if (const auto out_path = args.option("--out")) {
    out = std::fopen(out_path->c_str(), "w");
    if (out == nullptr)
      throw std::runtime_error("cannot open " + *out_path);
  }
  for (std::size_t i = 0; i < samples.size(); ++i)
    std::fprintf(out, "%s\t%.17g\t%.17g\n", args.positional[i].c_str(),
                 scaled[i], set.from_target(scaled[i]));
  if (out != stdout) std::fclose(out);
  return 0;
}

// --- client ---------------------------------------------------------------

/// Reference client for a running paragraph-serve daemon: sends each
/// .psample over the serve protocol and prints the same TSV as `predict`
/// (path, scaled prediction, microseconds) — the bytes on the wire are the
/// bytes on disk, and the daemon's fused-batch replies are bitwise-equal to
/// the local predict path (tests/serve_test.cpp pins this).
int cmd_client(const Args& args) {
  const std::int64_t port = args.int_option("--port", 0);
  if (port <= 0 || port > 65535) return usage();
  const auto timeout_ms =
      static_cast<int>(args.int_option("--timeout-ms", 30'000));

  serve::Client client(static_cast<std::uint16_t>(port), timeout_ms);
  if (args.has_flag("--ping")) {
    const auto pong = client.ping();
    if (!pong || pong->kind != serve::FrameKind::kPongReply)
      throw std::runtime_error("server did not answer the ping");
    std::printf("pong\n");
    if (args.positional.empty()) return 0;
  }
  if (args.positional.empty()) return usage();

  std::FILE* out = stdout;
  if (const auto out_path = args.option("--out")) {
    out = std::fopen(out_path->c_str(), "w");
    if (out == nullptr) throw std::runtime_error("cannot open " + *out_path);
  }
  int failures = 0;
  for (const std::string& path : args.positional) {
    const std::string bytes = read_text_file_binary(path);
    const auto response = client.predict_until_served(bytes);
    if (!response)
      throw std::runtime_error("server closed the connection");
    if (response->kind == serve::FrameKind::kPredictReply) {
      std::fprintf(out, "%s\t%.17g\t%.17g\n", path.c_str(),
                   response->prediction.scaled, response->prediction.runtime_us);
    } else {
      std::fprintf(stderr, "%s: server error (%s): %s\n", path.c_str(),
                   std::string(serve::error_code_name(response->error.code))
                       .c_str(),
                   response->error.message.c_str());
      ++failures;
    }
  }
  if (out != stdout) std::fclose(out);
  return failures == 0 ? 0 : 1;
}

// --- dump -----------------------------------------------------------------

void dump_graph_summary(const graph::ProgramGraph& graph) {
  std::printf("nodes: %zu\nedges: %zu\nmax child weight: %g\n",
              graph.num_nodes(), graph.num_edges(),
              static_cast<double>(graph.max_child_weight()));
  const auto histogram = graph.edge_type_histogram();
  for (std::size_t t = 0; t < graph::kNumEdgeTypes; ++t)
    std::printf("  %-10s %zu\n",
                std::string(graph::edge_type_name(
                                static_cast<graph::EdgeType>(t)))
                    .c_str(),
                histogram[t]);
}

void dump_sample_summary(const model::TrainingSample& sample) {
  std::printf("app: %s (id %d)\nvariant: %s\n", sample.app_name.c_str(),
              sample.app_id, sample.variant.c_str());
  std::printf("features: %zu x %zu\n", sample.graph.features.rows(),
              sample.graph.features.cols());
  std::printf("aux (scaled): %.9g %.9g\n",
              static_cast<double>(sample.aux[0]),
              static_cast<double>(sample.aux[1]));
  std::printf("target (scaled): %.17g\nruntime: %.17g us\n",
              sample.target_scaled, sample.runtime_us);
  for (std::size_t t = 0; t < sample.graph.relations.relations.size(); ++t)
    std::printf("  %-10s %zu edges\n",
                std::string(graph::edge_type_name(
                                static_cast<graph::EdgeType>(t)))
                    .c_str(),
                sample.graph.relations.relations[t].num_edges());
}

int cmd_dump(const Args& args) {
  if (args.positional.size() != 1) return usage();
  const std::string& path = args.positional[0];
  const io::FileInfo info = io::probe_file(path);
  std::printf("file: %s\nkind: %s (format v%u, schema %016llx)\n",
              path.c_str(), std::string(io::payload_kind_name(info.kind)).c_str(),
              info.version,
              static_cast<unsigned long long>(info.schema_hash));
  std::printf("simd: %s (max %s)\n",
              tensor::simd::level_name(tensor::simd::active_level()),
              tensor::simd::level_name(tensor::simd::max_supported_level()));
  switch (info.kind) {
    case io::PayloadKind::kGraph:
      dump_graph_summary(io::read_graph_file(path));
      break;
    case io::PayloadKind::kSample:
      dump_sample_summary(io::read_sample_file(path));
      break;
    case io::PayloadKind::kDataset: {
      std::ifstream is(path, std::ios::binary);
      io::DatasetReader reader(is);
      const io::DatasetMeta& meta = reader.meta();
      std::printf("platform: %s\nrepresentation: %s\nseed: %llu\n",
                  meta.platform.c_str(), meta.representation.c_str(),
                  static_cast<unsigned long long>(meta.seed));
      std::printf("log target: %s\nchild weight scale: %.17g\n",
                  meta.log_target ? "yes" : "no", meta.child_weight_scale);
      std::printf("target bounds: [%.17g, %.17g]\n", meta.target_min,
                  meta.target_max);
      std::size_t train = 0;
      std::size_t validation = 0;
      if (info.version >= 2) {
        // v2 carries a record index: count splits without touching a
        // single record page.
        io::DatasetView view(path);
        for (std::size_t i = 0; i < view.size(); ++i)
          (view.split(i) == io::Split::kTrain ? train : validation) += 1;
        std::printf("records: %zu train + %zu validation (indexed, "
                    "checksummed)\n",
                    train, validation);
      } else {
        model::TrainingSample sample;
        io::Split split = io::Split::kTrain;
        while (reader.next(sample, split))
          (split == io::Split::kTrain ? train : validation) += 1;
        std::printf("records: %zu train + %zu validation\n", train,
                    validation);
      }
      break;
    }
    case io::PayloadKind::kAnnIndex: {
      const ann::AnnIndex index = ann::AnnIndex::load_file(path);
      std::printf("embeddings: %zu x %zu\nneighbors per node: %zu\n",
                  index.size(), index.dim(), index.k());
      std::printf("checkpoint fingerprint: %016llx\n",
                  static_cast<unsigned long long>(index.fingerprint()));
      break;
    }
    default:
      std::printf("(no payload decoder for this kind)\n");
  }
  return 0;
}

// --- corpus ---------------------------------------------------------------

/// One pinned instance of the golden regression corpus. Runtimes are fixed
/// synthetic values (NOT simulator outputs) so the golden files pin the
/// frontend/graph/encoder only and do not drift when the cost model is
/// retuned.
struct GoldenEntry {
  const char* name;
  const char* kernel;
  dataset::Variant variant;
  std::int64_t teams;
  std::int64_t threads;
  double runtime_us;
};

constexpr GoldenEntry kGoldenEntries[] = {
    {"matvec_cpu", "matvec", dataset::Variant::kCpu, 1, 8, 1500.0},
    {"matmul_gpu_collapse_mem", "matmul", dataset::Variant::kGpuCollapseMem,
     128, 64, 850.0},
    {"corr_gpu_mem", "corr", dataset::Variant::kGpuMem, 256, 128, 12000.0},
    {"gauss_seidel_cpu_collapse", "gauss_seidel",
     dataset::Variant::kCpuCollapse, 1, 16, 98000.0},
};

const dataset::KernelSpec& spec_by_name(const std::string& kernel) {
  for (const auto& spec : dataset::benchmark_suite())
    if (spec.kernel == kernel) return spec;
  throw std::runtime_error("unknown kernel '" + kernel + "'");
}

void write_text_file(const std::filesystem::path& path,
                     const std::string& content) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open " + path.string());
  os << content;
}

int cmd_corpus_golden(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);

  // Pass 1: instantiate + build every graph (child-weight scale is the
  // corpus-global max, like build_sample_set's train-split fit).
  struct Built {
    const GoldenEntry* entry;
    const dataset::KernelSpec* spec;
    std::string source;
    graph::ProgramGraph graph;
  };
  std::vector<Built> built;
  double child_scale = 1.0;
  for (const GoldenEntry& entry : kGoldenEntries) {
    const dataset::KernelSpec& spec = spec_by_name(entry.kernel);
    const std::string source =
        dataset::instantiate_source(spec, entry.variant,
                                    spec.default_sizes.front(), entry.teams,
                                    entry.threads);
    const frontend::ParseResult parsed = frontend::parse_source(source);
    check(parsed.ok(), "golden kernel failed to parse");

    graph::BuildOptions options;
    options.representation = graph::Representation::kParaGraph;
    const bool gpu = dataset::variant_is_gpu(entry.variant);
    options.parallel_workers =
        std::max<std::int64_t>(1, gpu ? entry.teams * entry.threads
                                      : entry.threads);
    built.push_back({&entry, &spec, source,
                     graph::build_graph(parsed.root(), options)});
    child_scale = std::max(
        child_scale, static_cast<double>(built.back().graph.max_child_weight()));
  }

  io::DatasetMeta meta;
  meta.platform = "golden";
  meta.representation = "ParaGraph";
  meta.seed = 0;
  meta.child_weight_scale = child_scale;
  meta.target_min = 0.0;
  meta.target_max = 1e6;
  meta.teams_min = 1.0;
  meta.teams_max = 1024.0;
  meta.threads_min = 1.0;
  meta.threads_max = 1024.0;

  // corpus.pgds stays pinned at format v1 (the drift gate compares bytes);
  // the v2 fixture next to it is produced by reindexing it below.
  std::ofstream ds_os(dir / "corpus.pgds", std::ios::binary);
  if (!ds_os) throw std::runtime_error("cannot open corpus.pgds");
  io::DatasetWriter ds_writer(ds_os, meta, 1);

  std::string manifest;
  manifest += "# golden regression corpus — regenerate with:\n";
  manifest += "#   paragraph-cli corpus --golden --out tests/golden\n";
  manifest += "# corpus.pgds is format v1; corpus_v2.pgds is its byte-exact\n";
  manifest += "# record-level reindex (paragraph-cli reindex) with the v2\n";
  manifest += "# offset/checksum index appended.\n";
  manifest += "format-version 1\n";
  {
    char line[64];
    std::snprintf(line, sizeof line, "schema-hash %016llx\n",
                  static_cast<unsigned long long>(io::feature_schema_hash()));
    manifest += line;
  }
  char line[256];
  std::snprintf(line, sizeof line, "child-weight-scale %.17g\n", child_scale);
  manifest += line;

  for (const Built& b : built) {
    const GoldenEntry& entry = *b.entry;
    write_text_file(dir / (std::string(entry.name) + ".c"), b.source);
    io::write_graph_file((dir / (std::string(entry.name) + ".pgraph")).string(),
                         b.graph);
    std::ostringstream text;
    b.graph.serialize(text);
    write_text_file(dir / (std::string(entry.name) + ".pgraph.txt"), text.str());

    const model::TrainingSample sample = encode_sample(
        b.graph, meta, entry.teams, entry.threads, entry.runtime_us,
        dataset::app_id(b.spec->app), b.spec->app,
        std::string(dataset::variant_name(entry.variant)));
    io::write_sample_file((dir / (std::string(entry.name) + ".psample")).string(),
                          sample);
    ds_writer.append(sample, io::Split::kTrain);

    std::snprintf(line, sizeof line, "%s kernel=%s variant=%s teams=%lld "
                  "threads=%lld runtime_us=%.17g nodes=%zu edges=%zu\n",
                  entry.name, entry.kernel,
                  std::string(dataset::variant_name(entry.variant)).c_str(),
                  static_cast<long long>(entry.teams),
                  static_cast<long long>(entry.threads), entry.runtime_us,
                  b.graph.num_nodes(), b.graph.num_edges());
    manifest += line;
  }
  ds_writer.finish();
  ds_os.close();
  io::reindex_dataset((dir / "corpus.pgds").string(),
                      (dir / "corpus_v2.pgds").string());
  write_text_file(dir / "MANIFEST.txt", manifest);
  std::printf("golden corpus: %zu entries -> %s\n", built.size(),
              dir.string().c_str());
  return 0;
}

std::uint16_t format_version_from(const Args& args) {
  const std::string format = args.option("--format").value_or("v2");
  if (format == "v1") return 1;
  if (format == "v2") return io::kDatasetFormatVersion;
  throw std::runtime_error("unknown format '" + format + "' (v1|v2)");
}

int cmd_reindex(const Args& args) {
  if (args.positional.size() != 2) return usage();
  io::reindex_dataset(args.positional[0], args.positional[1]);
  const io::DatasetView view(args.positional[1]);
  std::printf("reindexed %s -> %s (%zu records, format v%u)\n",
              args.positional[0].c_str(), args.positional[1].c_str(),
              view.size(), view.format_version());
  return 0;
}

int cmd_corpus(const Args& args) {
  const std::filesystem::path dir = args.required("--out");
  apply_thread_override(args);
  apply_simd_override(args);
  std::fprintf(stderr, "simd: %s\n",
               tensor::simd::level_name(tensor::simd::active_level()));
  if (args.has_flag("--golden")) return cmd_corpus_golden(dir);

  const std::string platform_name = args.option("--platform").value_or("v100");
  sim::Platform platform;
  if (platform_name == "power9") platform = sim::summit_power9();
  else if (platform_name == "v100") platform = sim::summit_v100();
  else if (platform_name == "epyc") platform = sim::corona_epyc7401();
  else if (platform_name == "mi50") platform = sim::corona_mi50();
  else throw std::runtime_error("unknown platform '" + platform_name +
                                "' (power9|v100|epyc|mi50)");

  const std::string scale = args.option("--scale").value_or("smoke");
  dataset::GenerationConfig gen;
  gen.scale = scale == "full"      ? RunScale::kFull
              : scale == "default" ? RunScale::kDefault
                                   : RunScale::kSmoke;
  gen.seed = static_cast<std::uint64_t>(args.int_option("--seed", 2024));

  const std::string repr_name =
      args.option("--representation").value_or("paragraph");
  dataset::SampleBuildConfig build;
  build.representation = representation_from(repr_name);
  build.log_target = args.has_flag("--log-target");

  std::printf("generating %s dataset on %s ...\n", scale.c_str(),
              platform.name.c_str());
  const auto points = dataset::generate_dataset(platform, gen);
  const model::SampleSet set = dataset::build_sample_set(points, build);

  std::filesystem::create_directories(dir);
  const std::string stem = platform_name + "-" + scale + "-" + repr_name +
                           "-seed" + std::to_string(gen.seed);
  const std::filesystem::path out = dir / (stem + ".pgds");
  io::write_sample_set_file(out.string(), set, platform.name,
                            std::string(graph::representation_name(
                                build.representation)),
                            gen.seed, format_version_from(args));
  std::printf("%zu train + %zu validation samples -> %s\n", set.train.size(),
              set.validation.size(), out.string().c_str());
  return 0;
}

// --- ann ------------------------------------------------------------------

/// Loads the checkpointed model named by --checkpoint/--hidden and embeds
/// every .psample in `paths` into one [N x hidden] matrix through the
/// engine's fused embed path (bitwise what the predict path pools).
tensor::Matrix embed_sample_files(const Args& args,
                                  const std::vector<std::string>& paths,
                                  model::ParaGraphModel& model) {
  const model::CheckpointScalers scalers =
      model::load_checkpoint_file(args.required("--checkpoint"), model);
  (void)scalers;  // embeddings live before the output scaler

  std::vector<model::TrainingSample> samples;
  samples.reserve(paths.size());
  for (const std::string& path : paths)
    samples.push_back(io::read_sample_file(path));
  std::vector<model::EncodedGraph> graphs;
  graphs.reserve(samples.size());
  for (model::TrainingSample& s : samples) graphs.push_back(std::move(s.graph));

  tensor::Matrix embeddings;
  model::InferenceEngine engine(model);
  engine.embed_batch(graphs, embeddings);
  return embeddings;
}

void print_ann_summary(const ann::AnnIndex& index) {
  std::printf("embeddings: %zu x %zu\nneighbors per node: %zu\n",
              index.size(), index.dim(), index.k());
  std::printf("build: k=%zu iterations=%zu seed=%llu\n", index.config().k,
              index.config().iterations,
              static_cast<unsigned long long>(index.config().seed));
  std::printf("checkpoint fingerprint: %016llx\n",
              static_cast<unsigned long long>(index.fingerprint()));
}

int cmd_ann(const Args& args) {
  if (args.positional.empty()) return usage();
  const std::string& verb = args.positional[0];
  const std::vector<std::string> paths(args.positional.begin() + 1,
                                       args.positional.end());

  if (verb == "dump") {
    if (paths.size() != 1) return usage();
    const ann::AnnIndex index = ann::AnnIndex::load_file(paths[0]);
    std::printf("file: %s\nkind: ann-index (format v%u)\n", paths[0].c_str(),
                ann::kAnnFormatVersion);
    print_ann_summary(index);
    return 0;
  }

  apply_thread_override(args);
  apply_simd_override(args);
  model::ModelConfig config;
  config.hidden_dim = static_cast<std::size_t>(args.int_option("--hidden", 24));
  model::ParaGraphModel model(config);

  if (verb == "build") {
    if (paths.empty()) return usage();
    const tensor::Matrix embeddings = embed_sample_files(args, paths, model);
    ann::AnnConfig ann_config;
    ann_config.k = static_cast<std::size_t>(args.int_option("--k", 10));
    ann_config.iterations =
        static_cast<std::size_t>(args.int_option("--iterations", 12));
    ann_config.seed = static_cast<std::uint64_t>(args.int_option("--seed", 42));
    const ann::AnnIndex index = ann::AnnIndex::build(
        embeddings, ann_config, model::checkpoint_fingerprint(model));
    index.save_file(args.required("-o"));
    std::printf("ann index: %zu embeddings (dim %zu, k %zu) -> %s\n",
                index.size(), index.dim(), index.k(),
                args.required("-o").c_str());
    return 0;
  }

  if (verb == "query") {
    if (paths.empty()) return usage();
    const tensor::Matrix queries = embed_sample_files(args, paths, model);
    // The model is checkpointed now, so reject an index built by another.
    const ann::AnnIndex index = ann::AnnIndex::load_file(
        args.required("--index"), model::checkpoint_fingerprint(model));
    const auto k = static_cast<std::size_t>(args.int_option("--k", 10));
    const auto ef = static_cast<std::size_t>(args.int_option("--ef", 0));
    const bool exact = args.has_flag("--exact");
    for (std::size_t q = 0; q < queries.rows(); ++q) {
      const auto hits = exact ? index.brute_force(queries.row_span(q), k)
                              : index.search(queries.row_span(q), k, ef);
      for (std::size_t r = 0; r < hits.size(); ++r)
        std::printf("%s\t%zu\t%u\t%.9g\n", paths[q].c_str(), r, hits[r].index,
                    static_cast<double>(hits[r].distance));
    }
    return 0;
  }

  std::fprintf(stderr, "unknown ann verb '%s' (build|query|dump)\n",
               verb.c_str());
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string subcommand = argv[1];
  try {
    const Args args = parse_args(argc, argv, 2);
    if (subcommand == "compile") return cmd_compile(args);
    if (subcommand == "encode") return cmd_encode(args);
    if (subcommand == "predict") return cmd_predict(args);
    if (subcommand == "dump") return cmd_dump(args);
    if (subcommand == "client") return cmd_client(args);
    if (subcommand == "corpus") return cmd_corpus(args);
    if (subcommand == "reindex") return cmd_reindex(args);
    if (subcommand == "ann") return cmd_ann(args);
    std::fprintf(stderr, "unknown subcommand '%s'\n", subcommand.c_str());
    return usage();
  } catch (const io::FormatError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
