// ANN subsystem suite (src/ann, docs/FORMAT.md .pgann):
//   * embed_batch bitwise parity — predict_batch must equal embed_batch +
//     predict_head bit-for-bit, across batch sizes, SIMD levels, and row
//     subsets (the contract the serve-time semantic cache rests on);
//   * nn-descent determinism — same seed, any OpenMP thread count, byte-
//     identical .pgann output;
//   * search vs brute force — small-N fallback exactness and recall;
//   * .pgann round trips, checkpoint-fingerprint staleness rejection, and
//     reader rejection of corrupt containers with section + offset context;
//   * SemanticCache match rules, LRU eviction, counters, and the bytes
//     fast path.
#include <gtest/gtest.h>

#include <omp.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <initializer_list>
#include <sstream>
#include <string>
#include <vector>

#include "ann/ann_index.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/encoding.hpp"
#include "model/engine.hpp"
#include "serve/semantic_cache.hpp"
#include "support/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/simd.hpp"

namespace pg {
namespace {

graph::ProgramGraph small_graph() {
  auto r = frontend::parse_source(R"(
    void f(void) {
      for (int i = 0; i < 40; i++) {
        double x = 1.0;
      }
    }
  )");
  EXPECT_TRUE(r.ok());
  return graph::build_graph(r.root(), {});
}

std::pair<std::vector<model::EncodedGraph>, std::vector<std::array<float, 2>>>
make_batch(std::size_t n) {
  const auto g = small_graph();
  std::vector<model::EncodedGraph> graphs;
  std::vector<std::array<float, 2>> aux;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i + 1) / static_cast<double>(n);
    graphs.push_back(model::encode_graph(g, 40.0 + 400.0 * t));
    aux.push_back({static_cast<float>(t), static_cast<float>(1.0 - t)});
  }
  return {std::move(graphs), std::move(aux)};
}

/// Uniform random embedding matrix — AnnIndex is agnostic to where rows
/// come from, so most index tests run on synthetic corpora.
tensor::Matrix random_embeddings(std::size_t n, std::size_t dim,
                                 std::uint64_t seed) {
  tensor::Matrix m(n, dim);
  Rng rng(seed);
  for (float& v : m.data())
    v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  return m;
}

std::string index_bytes(const ann::AnnIndex& index) {
  std::ostringstream os(std::ios::binary);
  index.save(os);
  return os.str();
}

// --- embed_batch parity ---------------------------------------------------

TEST(EmbedBatch, EmbedPlusHeadMatchesPredictBitwise) {
  model::ParaGraphModel m(model::ModelConfig{.hidden_dim = 8, .seed = 3});
  model::InferenceEngine engine(m);
  for (const std::size_t n : {1u, 3u, 16u, 33u}) {
    auto [graphs, aux] = make_batch(n);
    std::vector<double> predicted(n);
    engine.predict_batch(graphs, aux, predicted);

    tensor::Matrix pooled;
    engine.embed_batch(graphs, pooled);
    ASSERT_EQ(pooled.rows(), n);
    ASSERT_EQ(pooled.cols(), m.config().hidden_dim);
    std::vector<double> recomposed(n);
    engine.predict_head(pooled, aux, recomposed);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(predicted[i], recomposed[i]) << "batch " << n << " row " << i;
  }
}

TEST(EmbedBatch, HeadOnRowSubsetMatchesFullBatch) {
  // The serve cache compacts miss rows and runs the head on the subset;
  // the head must be row-independent for that to be bitwise-neutral.
  model::ParaGraphModel m(model::ModelConfig{.hidden_dim = 8, .seed = 9});
  model::InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(12);
  tensor::Matrix pooled;
  engine.embed_batch(graphs, pooled);
  std::vector<double> full(graphs.size());
  engine.predict_head(pooled, aux, full);

  const std::size_t subset[] = {1, 4, 5, 11};
  tensor::Matrix compact(std::size(subset), pooled.cols());
  std::vector<std::array<float, 2>> compact_aux;
  for (std::size_t s = 0; s < std::size(subset); ++s) {
    const auto src = pooled.row_span(subset[s]);
    std::memcpy(compact.row_span(s).data(), src.data(),
                src.size() * sizeof(float));
    compact_aux.push_back(aux[subset[s]]);
  }
  std::vector<double> out(std::size(subset));
  engine.predict_head(compact, compact_aux, out);
  for (std::size_t s = 0; s < std::size(subset); ++s)
    EXPECT_EQ(out[s], full[subset[s]]) << s;
}

TEST(EmbedBatch, ParityHoldsAcrossSimdLevels) {
  namespace simd = tensor::simd;
  const simd::SimdLevel saved = simd::active_level();
  auto [graphs, aux] = make_batch(9);
  std::vector<std::vector<double>> per_level;
  std::vector<std::string> per_level_pooled;
  for (const simd::SimdLevel level :
       {simd::SimdLevel::kScalar, simd::max_supported_level()}) {
    simd::set_active_level(level);
    model::ParaGraphModel m(model::ModelConfig{.hidden_dim = 8, .seed = 3});
    model::InferenceEngine engine(m);
    tensor::Matrix pooled;
    engine.embed_batch(graphs, pooled);
    std::vector<double> predicted(graphs.size());
    engine.predict_batch(graphs, aux, predicted);
    std::vector<double> recomposed(graphs.size());
    engine.predict_head(pooled, aux, recomposed);
    EXPECT_EQ(predicted, recomposed) << simd::level_name(level);
    per_level.push_back(std::move(predicted));
    per_level_pooled.emplace_back(
        reinterpret_cast<const char*>(pooled.data().data()),
        pooled.size() * sizeof(float));
  }
  simd::set_active_level(saved);
  // The levels themselves agree bitwise (the kernel-layer contract), so
  // embeddings are stable keys across dispatch decisions.
  EXPECT_EQ(per_level[0], per_level[1]);
  EXPECT_EQ(per_level_pooled[0], per_level_pooled[1]);
}

// --- index build / search -------------------------------------------------

TEST(AnnIndex, BuildIsByteIdenticalForAnyThreadCount) {
  const auto embeddings = random_embeddings(600, 12, 77);
  ann::AnnConfig config;
  config.k = 6;
  const int saved = omp_get_max_threads();
  auto build_bytes = [&](int threads) {
    omp_set_num_threads(threads);
    return index_bytes(ann::AnnIndex::build(embeddings, config, 123));
  };
  const std::string one = build_bytes(1);
  const std::string four = build_bytes(4);
  omp_set_num_threads(saved);
  EXPECT_EQ(one, four);
}

TEST(AnnIndex, SmallCorpusSearchIsExact) {
  // At or below kBruteForceFallback rows search() IS brute force.
  const auto embeddings = random_embeddings(100, 8, 5);
  const auto index = ann::AnnIndex::build(embeddings, ann::AnnConfig{}, 0);
  const auto query = random_embeddings(1, 8, 6);
  const auto via_search = index.search(query.row_span(0), 5);
  const auto exact = index.brute_force(query.row_span(0), 5);
  ASSERT_EQ(via_search.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(via_search[i].index, exact[i].index) << i;
    EXPECT_EQ(via_search[i].distance, exact[i].distance) << i;
  }
}

TEST(AnnIndex, GraphSearchRecallOnRandomCorpus) {
  const auto embeddings = random_embeddings(2000, 16, 11);
  const auto index = ann::AnnIndex::build(embeddings, ann::AnnConfig{}, 0);
  const auto queries = random_embeddings(50, 16, 12);
  std::size_t found = 0;
  std::size_t wanted = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const auto exact = index.brute_force(queries.row_span(q), 10);
    const auto approx = index.search(queries.row_span(q), 10);
    for (const ann::Neighbor& e : exact) {
      ++wanted;
      for (const ann::Neighbor& a : approx)
        if (a.index == e.index) {
          ++found;
          break;
        }
    }
  }
  EXPECT_GE(static_cast<double>(found) / static_cast<double>(wanted), 0.9);
}

TEST(AnnIndex, BruteForceBatchMatchesSingleQueries) {
  const auto embeddings = random_embeddings(300, 8, 21);
  const auto index = ann::AnnIndex::build(embeddings, ann::AnnConfig{}, 0);
  const auto queries = random_embeddings(7, 8, 22);
  const auto batched = index.brute_force_batch(queries, 4);
  ASSERT_EQ(batched.size(), queries.rows());
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const auto single = index.brute_force(queries.row_span(q), 4);
    ASSERT_EQ(batched[q].size(), single.size());
    for (std::size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batched[q][i].index, single[i].index);
      EXPECT_EQ(batched[q][i].distance, single[i].distance);
    }
  }
}

TEST(AnnIndex, SingleRowCorpusHasNoNeighbors) {
  const auto embeddings = random_embeddings(1, 8, 1);
  const auto index = ann::AnnIndex::build(embeddings, ann::AnnConfig{}, 0);
  EXPECT_EQ(index.k(), 0u);
  const auto hits = index.search(embeddings.row_span(0), 3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].index, 0u);
}

// --- persistence ----------------------------------------------------------

TEST(AnnIo, RoundTripPreservesEverything) {
  const auto embeddings = random_embeddings(400, 10, 31);
  ann::AnnConfig config;
  config.k = 8;
  const auto index = ann::AnnIndex::build(embeddings, config, 0xfeedu);
  const std::string bytes = index_bytes(index);
  const auto loaded = ann::AnnIndex::load(bytes.data(), bytes.size(), 0xfeedu);

  EXPECT_EQ(loaded.size(), index.size());
  EXPECT_EQ(loaded.dim(), index.dim());
  EXPECT_EQ(loaded.k(), index.k());
  EXPECT_EQ(loaded.fingerprint(), index.fingerprint());
  EXPECT_EQ(std::memcmp(loaded.embeddings().data().data(),
                        index.embeddings().data().data(),
                        index.size() * index.dim() * sizeof(float)),
            0);
  for (std::size_t u = 0; u < index.size(); ++u) {
    const auto a = index.neighbors(u);
    const auto b = loaded.neighbors(u);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << u;
  }
  // Save -> load -> save is a fixed point.
  EXPECT_EQ(index_bytes(loaded), bytes);
}

TEST(AnnIo, StaleFingerprintIsRejected) {
  const auto embeddings = random_embeddings(50, 6, 41);
  const auto index = ann::AnnIndex::build(embeddings, ann::AnnConfig{}, 111);
  const std::string bytes = index_bytes(index);
  EXPECT_NO_THROW(ann::AnnIndex::load(bytes.data(), bytes.size(), 111));
  EXPECT_NO_THROW(ann::AnnIndex::load(bytes.data(), bytes.size()));
  try {
    ann::AnnIndex::load(bytes.data(), bytes.size(), 222);
    FAIL() << "stale index accepted";
  } catch (const io::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("fingerprint"), std::string::npos)
        << e.what();
  }
}

TEST(AnnIo, CorruptEmbeddingNamesSectionAndOffset) {
  const auto embeddings = random_embeddings(80, 6, 51);
  const auto index = ann::AnnIndex::build(embeddings, ann::AnnConfig{}, 0);
  std::string bytes = index_bytes(index);
  // Flip a byte early in the embedding payload (the section follows the
  // ~110-byte prologue + meta and spans 80*6 floats, so offset 200 is well
  // inside it). Any f32 bit pattern decodes, so only the checksum notices.
  ASSERT_GT(bytes.size(), 400u);
  bytes[200] = static_cast<char>(bytes[200] ^ 0x10);
  try {
    ann::AnnIndex::load(bytes.data(), bytes.size());
    FAIL() << "corrupt index accepted";
  } catch (const io::FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("checksum"), std::string::npos) << what;
    EXPECT_NE(what.find("section"), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
  }
}

TEST(AnnIo, TruncationAndBadMagicAreRejected) {
  const auto embeddings = random_embeddings(40, 4, 61);
  const auto index = ann::AnnIndex::build(embeddings, ann::AnnConfig{}, 0);
  const std::string bytes = index_bytes(index);

  std::string truncated = bytes.substr(0, bytes.size() / 3);
  EXPECT_THROW(ann::AnnIndex::load(truncated.data(), truncated.size()),
               io::FormatError);

  std::string mangled = bytes;
  mangled[0] = 'X';
  EXPECT_THROW(ann::AnnIndex::load(mangled.data(), mangled.size()),
               io::FormatError);
}

TEST(AnnIo, FileRoundTripViaMmap) {
  const auto embeddings = random_embeddings(120, 8, 71);
  const auto index = ann::AnnIndex::build(embeddings, ann::AnnConfig{}, 7);
  const std::string path =
      testing::TempDir() + "/ann_roundtrip.pgann";
  index.save_file(path);
  const auto loaded = ann::AnnIndex::load_file(path, 7);
  EXPECT_EQ(loaded.size(), index.size());
  EXPECT_EQ(index_bytes(loaded), index_bytes(index));
}

// --- semantic cache -------------------------------------------------------

std::vector<float> vec(std::initializer_list<float> v) { return v; }

TEST(SemanticCache, ExactMatchOnlyAtEpsZero) {
  serve::SemanticCache cache({true, 0.0, 8});
  const std::array<float, 2> aux{0.5f, 0.25f};
  cache.insert(vec({1.0f, 2.0f}), aux, 42.0, {});

  const auto hit = cache.lookup(vec({1.0f, 2.0f}), aux);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 42.0);
  // One ULP away: not a hit at eps 0.
  EXPECT_FALSE(
      cache.lookup(vec({std::nextafter(1.0f, 2.0f), 2.0f}), aux).has_value());
  // Same embedding, different aux: never a hit.
  EXPECT_FALSE(
      cache.lookup(vec({1.0f, 2.0f}), {0.5f, 0.5f}).has_value());

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(SemanticCache, NearestWithinEpsWins) {
  serve::SemanticCache cache({true, 0.5, 8});
  const std::array<float, 2> aux{0.0f, 0.0f};
  cache.insert(vec({0.0f, 0.0f}), aux, 1.0, {});
  cache.insert(vec({0.3f, 0.0f}), aux, 2.0, {});

  // 0.2 is within eps of both; the nearer entry (0.3) wins.
  const auto hit = cache.lookup(vec({0.2f, 0.0f}), aux);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 2.0);
  // Outside the radius of either: miss.
  EXPECT_FALSE(cache.lookup(vec({2.0f, 0.0f}), aux).has_value());
}

TEST(SemanticCache, LruEvictionPrefersStaleEntries) {
  serve::SemanticCache cache({true, 0.0, 2});
  const std::array<float, 2> aux{0.0f, 0.0f};
  cache.insert(vec({1.0f}), aux, 1.0, {});
  cache.insert(vec({2.0f}), aux, 2.0, {});
  // Refresh entry 1, then insert a third: entry 2 is the LRU victim.
  EXPECT_TRUE(cache.lookup(vec({1.0f}), aux).has_value());
  cache.insert(vec({3.0f}), aux, 3.0, {});

  EXPECT_TRUE(cache.lookup(vec({1.0f}), aux).has_value());
  EXPECT_FALSE(cache.lookup(vec({2.0f}), aux).has_value());
  EXPECT_TRUE(cache.lookup(vec({3.0f}), aux).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(SemanticCache, BytesFastPathHitsAndEvicts) {
  serve::SemanticCache cache({true, 0.0, 2});
  const std::array<float, 2> aux{0.0f, 0.0f};
  EXPECT_FALSE(cache.lookup_bytes("request-a").has_value());
  cache.insert(vec({1.0f}), aux, 1.0, "request-a");

  const auto hit = cache.lookup_bytes("request-a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 1.0);
  // lookup_bytes misses are not counted (the embedding probe counts them).
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().hits, 1u);

  // Evicting the entry must unlink its bytes key.
  cache.insert(vec({2.0f}), aux, 2.0, "request-b");
  cache.insert(vec({3.0f}), aux, 3.0, "request-c");  // evicts request-a
  EXPECT_FALSE(cache.lookup_bytes("request-a").has_value());
  EXPECT_TRUE(cache.lookup_bytes("request-c").has_value());

  // Duplicate insert (two in-flight identical requests): latest wins, no
  // shared map node.
  cache.insert(vec({4.0f}), aux, 4.0, "request-c");
  const auto dup = cache.lookup_bytes("request-c");
  ASSERT_TRUE(dup.has_value());
  EXPECT_EQ(*dup, 4.0);
}

}  // namespace
}  // namespace pg
