// Tests for constant folding and loop trip-count analysis.
#include <gtest/gtest.h>

#include "frontend/const_eval.hpp"
#include "frontend/loop_analysis.hpp"
#include "frontend/parser.hpp"

namespace pg::frontend {
namespace {

/// Parses `int g(void) { return <expr>; }` and folds the expression.
std::optional<std::int64_t> fold(const std::string& expr) {
  auto r = parse_source("int g(void) { return " + expr + "; }");
  EXPECT_TRUE(r.ok()) << r.diagnostics.summary();
  const AstNode* ret = r.root()->child(0)->child(0)->child(0);
  EXPECT_EQ(ret->kind(), NodeKind::kReturnStmt);
  return evaluate_integer_constant(ret->child(0));
}

/// Parses a function whose single statement is a for loop; analyses it.
/// The AST dies with this helper, so the returned LoopInfo's induction_var
/// is nulled out — tests that need it must parse inline and keep the
/// ParseResult alive (see InductionVarIdentified).
std::optional<LoopInfo> analyze(const std::string& loop,
                                const std::string& prelude = "") {
  auto r = parse_source("void f(void) { " + prelude + loop + " }");
  EXPECT_TRUE(r.ok()) << r.diagnostics.summary();
  const AstNode* found = nullptr;
  walk(r.root(), [&](const AstNode* n, int) {
    if (found == nullptr && n->is(NodeKind::kForStmt)) found = n;
    return found == nullptr;
  });
  EXPECT_NE(found, nullptr);
  auto info = analyze_for_loop(found);
  if (info.has_value()) info->induction_var = nullptr;
  return info;
}

TEST(ConstEval, Literals) {
  EXPECT_EQ(fold("42"), 42);
  EXPECT_EQ(fold("0"), 0);
}

TEST(ConstEval, Arithmetic) {
  EXPECT_EQ(fold("2 + 3 * 4"), 14);
  EXPECT_EQ(fold("(2 + 3) * 4"), 20);
  EXPECT_EQ(fold("10 / 3"), 3);
  EXPECT_EQ(fold("10 % 3"), 1);
  EXPECT_EQ(fold("1 << 10"), 1024);
  EXPECT_EQ(fold("1024 >> 2"), 256);
}

TEST(ConstEval, UnaryOperators) {
  EXPECT_EQ(fold("-5"), -5);
  EXPECT_EQ(fold("+5"), 5);
  EXPECT_EQ(fold("!0"), 1);
  EXPECT_EQ(fold("!7"), 0);
  EXPECT_EQ(fold("~0"), -1);
}

TEST(ConstEval, Comparisons) {
  EXPECT_EQ(fold("3 < 4"), 1);
  EXPECT_EQ(fold("4 <= 3"), 0);
  EXPECT_EQ(fold("5 == 5"), 1);
  EXPECT_EQ(fold("5 != 5"), 0);
}

TEST(ConstEval, Conditional) {
  EXPECT_EQ(fold("1 ? 10 : 20"), 10);
  EXPECT_EQ(fold("0 ? 10 : 20"), 20);
}

TEST(ConstEval, DivisionByZeroDoesNotFold) {
  EXPECT_EQ(fold("1 / 0"), std::nullopt);
  EXPECT_EQ(fold("1 % 0"), std::nullopt);
}

TEST(ConstEval, FloatingDoesNotFold) {
  EXPECT_EQ(fold("1 + 2.5"), std::nullopt);
}

TEST(ConstEval, VariableWithLiteralInitFolds) {
  auto r = parse_source("int g(void) { int n = 128; return n * 2; }");
  ASSERT_TRUE(r.ok());
  const AstNode* body = r.root()->child(0)->child(0);
  const AstNode* ret = body->child(1);
  EXPECT_EQ(evaluate_integer_constant(ret->child(0)), 256);
}

TEST(ConstEval, ChainedVariableInitsFold) {
  auto r = parse_source(
      "int g(void) { int n = 64; int m = n * 2; return m + n; }");
  ASSERT_TRUE(r.ok());
  const AstNode* body = r.root()->child(0)->child(0);
  const AstNode* ret = body->child(2);
  EXPECT_EQ(evaluate_integer_constant(ret->child(0)), 192);
}

TEST(ConstEval, UninitializedVariableDoesNotFold) {
  auto r = parse_source("int g(int n) { return n + 1; }");
  ASSERT_TRUE(r.ok());
  const AstNode* ret = r.root()->child(0)->child(1)->child(0);
  EXPECT_EQ(evaluate_integer_constant(ret->child(0)), std::nullopt);
}

TEST(ConstEval, NullExprDoesNotFold) {
  EXPECT_EQ(evaluate_integer_constant(nullptr), std::nullopt);
}

// ------------------------------------------------------------ loops -----

TEST(LoopAnalysis, CanonicalUpcountingLoop) {
  auto info = analyze("for (int i = 0; i < 50; i++) {}");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 50);
  EXPECT_EQ(info->begin, 0);
  EXPECT_EQ(info->bound, 50);
  EXPECT_EQ(info->step, 1);
  EXPECT_EQ(info->relation, "<");
}

TEST(LoopAnalysis, InclusiveBound) {
  auto info = analyze("for (int i = 0; i <= 50; i++) {}");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 51);
}

TEST(LoopAnalysis, NonUnitStride) {
  auto info = analyze("for (int i = 0; i < 100; i += 3) {}");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 34);  // ceil(100/3)
}

TEST(LoopAnalysis, DowncountingLoop) {
  auto info = analyze("for (int i = 99; i >= 0; i--) {}");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 100);
  EXPECT_EQ(info->step, -1);
}

TEST(LoopAnalysis, DowncountingExclusive) {
  auto info = analyze("for (int i = 100; i > 0; i -= 10) {}");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 10);
}

TEST(LoopAnalysis, AssignmentInitWithoutDecl) {
  auto info = analyze("for (i = 5; i < 15; i++) {}", "int i;");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 10);
}

TEST(LoopAnalysis, IEqualsIPlusConstantStep) {
  auto info = analyze("for (int i = 0; i < 10; i = i + 2) {}");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 5);
}

TEST(LoopAnalysis, ReversedConditionNormalised) {
  auto info = analyze("for (int i = 0; 10 > i; i++) {}");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 10);
}

TEST(LoopAnalysis, BoundFromFoldableVariable) {
  auto info = analyze("for (int i = 0; i < n; i++) {}", "int n = 256;");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 256);
}

TEST(LoopAnalysis, BoundExpressionFolds) {
  auto info = analyze("for (int i = 1; i < 100 - 1; i++) {}");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 98);
}

TEST(LoopAnalysis, ZeroTripLoop) {
  auto info = analyze("for (int i = 10; i < 5; i++) {}");
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->trip_count, 0);
}

TEST(LoopAnalysis, WrongDirectionDoesNotAnalyze) {
  // i < bound with negative step never terminates: refuse to analyse.
  auto info = analyze("for (int i = 0; i < 10; i--) {}");
  EXPECT_FALSE(info.has_value());
}

TEST(LoopAnalysis, NonConstantBoundDoesNotAnalyze) {
  auto info = analyze("for (int i = 0; i < n; i++) {}", "");
  // n is a function parameter here -> parse fails; use a param version:
  auto r = parse_source("void f(int n) { for (int i = 0; i < n; i++) {} }");
  ASSERT_TRUE(r.ok());
  const AstNode* loop = nullptr;
  walk(r.root(), [&](const AstNode* x, int) {
    if (loop == nullptr && x->is(NodeKind::kForStmt)) loop = x;
    return loop == nullptr;
  });
  EXPECT_FALSE(analyze_for_loop(loop).has_value());
  (void)info;
}

TEST(LoopAnalysis, NonCanonicalConditionDoesNotAnalyze) {
  auto info = analyze("for (int i = 0; i != 10; i++) {}");
  EXPECT_FALSE(info.has_value());
}

TEST(LoopAnalysis, TripCountOrFallback) {
  auto r = parse_source("void f(int n) { for (int i = 0; i < n; i++) {} }");
  ASSERT_TRUE(r.ok());
  const AstNode* loop = nullptr;
  walk(r.root(), [&](const AstNode* x, int) {
    if (loop == nullptr && x->is(NodeKind::kForStmt)) loop = x;
    return loop == nullptr;
  });
  EXPECT_EQ(trip_count_or(loop, 123), 123);
}

TEST(LoopAnalysis, TripCountOrUsesAnalysis) {
  auto r = parse_source("void f(void) { for (int i = 0; i < 7; i++) {} }");
  ASSERT_TRUE(r.ok());
  const AstNode* loop = nullptr;
  walk(r.root(), [&](const AstNode* x, int) {
    if (loop == nullptr && x->is(NodeKind::kForStmt)) loop = x;
    return loop == nullptr;
  });
  EXPECT_EQ(trip_count_or(loop, 999), 7);
}

TEST(LoopAnalysis, InductionVarIdentified) {
  // Parsed inline (not via analyze()): LoopInfo::induction_var points into
  // the parse's AST, so the ParseResult must outlive the assertion.
  auto r = parse_source("void f(void) { for (int k = 0; k < 3; k++) {} }");
  ASSERT_TRUE(r.ok());
  const AstNode* loop = nullptr;
  walk(r.root(), [&](const AstNode* x, int) {
    if (loop == nullptr && x->is(NodeKind::kForStmt)) loop = x;
    return loop == nullptr;
  });
  ASSERT_NE(loop, nullptr);
  auto info = analyze_for_loop(loop);
  ASSERT_TRUE(info.has_value());
  ASSERT_NE(info->induction_var, nullptr);
  EXPECT_EQ(info->induction_var->text(), "k");
}

}  // namespace
}  // namespace pg::frontend
