// pg::io regression suite over the checked-in golden corpus
// (tests/golden/): byte-exact round trips for all three payload kinds,
// rejection of bad magic / versions / schema hashes, truncation and
// corrupt-section-table error paths, and the graph builder pinned against
// the golden text dumps (any encoder/builder drift fails here first).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "io/binary.hpp"
#include "io/pgraph_io.hpp"
#include "model/encoding.hpp"

#ifndef PG_GOLDEN_DIR
#error "PG_GOLDEN_DIR must point at tests/golden"
#endif

namespace pg {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(PG_GOLDEN_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

/// One MANIFEST.txt corpus line, e.g.
/// "matvec_cpu kernel=matvec variant=cpu teams=1 threads=8 ...".
struct ManifestEntry {
  std::string name;
  std::map<std::string, std::string> fields;

  [[nodiscard]] std::int64_t int_field(const std::string& key) const {
    return std::stoll(fields.at(key));
  }
};

struct Manifest {
  std::uint64_t schema_hash = 0;
  double child_weight_scale = 0.0;
  std::vector<ManifestEntry> entries;
};

// gtest ASSERT_* macros require a void function, hence the out-param.
void read_manifest(Manifest& manifest) {
  std::istringstream is(slurp(golden_path("MANIFEST.txt")));
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string head;
    fields >> head;
    if (head == "format-version") continue;
    if (head == "schema-hash") {
      std::string hex;
      fields >> hex;
      manifest.schema_hash = std::stoull(hex, nullptr, 16);
      continue;
    }
    if (head == "child-weight-scale") {
      std::string value;
      fields >> value;
      manifest.child_weight_scale = std::stod(value);
      continue;
    }
    ManifestEntry entry;
    entry.name = head;
    std::string kv;
    while (fields >> kv) {
      const auto eq = kv.find('=');
      ASSERT_NE(eq, std::string::npos) << line;
      entry.fields[kv.substr(0, eq)] = kv.substr(eq + 1);
    }
    manifest.entries.push_back(std::move(entry));
  }
  ASSERT_FALSE(manifest.entries.empty());
}


graph::ProgramGraph build_from_golden_source(const ManifestEntry& entry) {
  const std::string source = slurp(golden_path(entry.name + ".c"));
  const frontend::ParseResult parsed = frontend::parse_source(source);
  EXPECT_TRUE(parsed.ok()) << parsed.diagnostics.summary();
  graph::BuildOptions options;
  options.representation = graph::Representation::kParaGraph;
  const bool gpu = entry.fields.at("variant").rfind("gpu", 0) == 0;
  const std::int64_t teams = entry.int_field("teams");
  const std::int64_t threads = entry.int_field("threads");
  options.parallel_workers = gpu ? teams * threads : threads;
  return graph::build_graph(parsed.root(), options);
}

// --- feature-order contract ----------------------------------------------

TEST(IoSchema, HashIsStableAcrossCalls) {
  EXPECT_EQ(io::feature_schema_hash(), io::feature_schema_hash());
  EXPECT_NE(io::feature_schema_hash(), 0u);
}

TEST(IoSchema, HashMatchesGoldenManifest) {
  Manifest manifest;
  ASSERT_NO_FATAL_FAILURE(read_manifest(manifest));
  EXPECT_EQ(io::feature_schema_hash(), manifest.schema_hash)
      << "the node-kind/edge-type feature contract changed; regenerate "
         "tests/golden with paragraph-cli corpus --golden (and bump the "
         "format version if files in the wild must stay readable)";
}

// --- golden pinning -------------------------------------------------------

TEST(IoGolden, BuilderMatchesGoldenTextDumps) {
  Manifest manifest;
  ASSERT_NO_FATAL_FAILURE(read_manifest(manifest));
  for (const ManifestEntry& entry : manifest.entries) {
    const graph::ProgramGraph graph = build_from_golden_source(entry);
    std::ostringstream text;
    graph.serialize(text);
    EXPECT_EQ(text.str(), slurp(golden_path(entry.name + ".pgraph.txt")))
        << entry.name << ": builder output drifted from the golden dump";
  }
}

TEST(IoGolden, BinaryGraphsMatchGoldenFiles) {
  Manifest manifest;
  ASSERT_NO_FATAL_FAILURE(read_manifest(manifest));
  for (const ManifestEntry& entry : manifest.entries) {
    const graph::ProgramGraph graph = build_from_golden_source(entry);
    std::ostringstream os(std::ios::binary);
    io::write_graph(os, graph);
    EXPECT_EQ(os.str(), slurp(golden_path(entry.name + ".pgraph")))
        << entry.name << ": binary graph encoding drifted";
  }
}

TEST(IoGolden, EncodedSamplesMatchGoldenFiles) {
  Manifest manifest;
  ASSERT_NO_FATAL_FAILURE(read_manifest(manifest));

  std::ifstream ds(golden_path("corpus.pgds"), std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(ds));
  io::DatasetReader reader(ds);
  const io::DatasetMeta meta = reader.meta();
  EXPECT_DOUBLE_EQ(meta.child_weight_scale, manifest.child_weight_scale);

  model::SampleSet scalers;
  meta.apply_scalers(scalers);

  for (const ManifestEntry& entry : manifest.entries) {
    const graph::ProgramGraph graph = build_from_golden_source(entry);
    const model::TrainingSample stored =
        io::read_sample_file(golden_path(entry.name + ".psample"));

    model::TrainingSample rebuilt;
    rebuilt.graph = model::encode_graph(graph, meta.child_weight_scale);
    rebuilt.aux = {static_cast<float>(scalers.teams_scaler.transform(
                       static_cast<double>(entry.int_field("teams")))),
                   static_cast<float>(scalers.threads_scaler.transform(
                       static_cast<double>(entry.int_field("threads"))))};
    rebuilt.runtime_us = std::stod(entry.fields.at("runtime_us"));
    rebuilt.target_scaled = scalers.to_target(rebuilt.runtime_us);
    rebuilt.app_id = stored.app_id;
    rebuilt.app_name = stored.app_name;
    rebuilt.variant = stored.variant;

    std::ostringstream rebuilt_bytes(std::ios::binary);
    io::write_sample(rebuilt_bytes, rebuilt);
    EXPECT_EQ(rebuilt_bytes.str(), slurp(golden_path(entry.name + ".psample")))
        << entry.name << ": sample encoding drifted";
  }
}

// --- byte-exact round trips ----------------------------------------------

TEST(IoRoundTrip, GraphBytesAreStable) {
  const std::string original = slurp(golden_path("matvec_cpu.pgraph"));
  std::istringstream is(original, std::ios::binary);
  const graph::ProgramGraph graph = io::read_graph(is);
  std::ostringstream os(std::ios::binary);
  io::write_graph(os, graph);
  EXPECT_EQ(os.str(), original);
}

TEST(IoRoundTrip, GraphContentsSurvive) {
  const graph::ProgramGraph graph =
      io::read_graph_file(golden_path("corr_gpu_mem.pgraph"));
  std::ostringstream os(std::ios::binary);
  io::write_graph(os, graph);
  std::istringstream is(os.str(), std::ios::binary);
  const graph::ProgramGraph again = io::read_graph(is);
  ASSERT_EQ(again.num_nodes(), graph.num_nodes());
  ASSERT_EQ(again.num_edges(), graph.num_edges());
  for (std::size_t i = 0; i < graph.num_edges(); ++i)
    EXPECT_EQ(again.edges()[i], graph.edges()[i]) << "edge " << i;
  for (std::size_t i = 0; i < graph.num_nodes(); ++i) {
    EXPECT_EQ(again.nodes()[i].kind, graph.nodes()[i].kind) << "node " << i;
    EXPECT_EQ(again.nodes()[i].label, graph.nodes()[i].label) << "node " << i;
  }
}

TEST(IoRoundTrip, SampleBytesAreStable) {
  const std::string original =
      slurp(golden_path("matmul_gpu_collapse_mem.psample"));
  std::istringstream is(original, std::ios::binary);
  const model::TrainingSample sample = io::read_sample(is);
  std::ostringstream os(std::ios::binary);
  io::write_sample(os, sample);
  EXPECT_EQ(os.str(), original);

  // Spot-check decoded contents, down to feature bits.
  EXPECT_EQ(sample.variant, "gpu_collapse_mem");
  EXPECT_EQ(sample.graph.features.cols(), model::kNodeFeatureDim);
  EXPECT_EQ(sample.graph.features.rows(), sample.graph.relations.num_nodes);
  EXPECT_DOUBLE_EQ(sample.runtime_us, 850.0);
}

TEST(IoRoundTrip, DatasetBytesAreStable) {
  const std::string original = slurp(golden_path("corpus.pgds"));
  std::istringstream is(original, std::ios::binary);
  const io::StoredSampleSet stored = io::read_sample_set(is);
  EXPECT_EQ(stored.set.train.size(), 4u);
  EXPECT_EQ(stored.set.validation.size(), 0u);

  std::ostringstream os(std::ios::binary);
  io::write_sample_set(os, stored.set, stored.meta.platform,
                       stored.meta.representation, stored.meta.seed,
                       /*format_version=*/1);
  EXPECT_EQ(os.str(), original);
}

TEST(IoRoundTrip, DatasetV2BytesAreStable) {
  const std::string original = slurp(golden_path("corpus_v2.pgds"));
  std::istringstream is(original, std::ios::binary);
  const io::StoredSampleSet stored = io::read_sample_set(is);
  EXPECT_EQ(stored.set.train.size(), 4u);
  EXPECT_EQ(stored.set.validation.size(), 0u);

  std::ostringstream os(std::ios::binary);
  io::write_sample_set(os, stored.set, stored.meta.platform,
                       stored.meta.representation, stored.meta.seed);
  EXPECT_EQ(os.str(), original);  // the default writer format is v2
}

TEST(IoRoundTrip, GoldenV1AndV2DecodeIdentically) {
  // Both golden fixtures hold the same records; the streaming reader must
  // produce byte-identical samples from each.
  for (const char* name : {"corpus.pgds", "corpus_v2.pgds"}) {
    std::ifstream is(golden_path(name), std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(is)) << name;
    io::DatasetReader reader(is);
    model::TrainingSample sample;
    io::Split split = io::Split::kValidation;
    std::size_t count = 0;
    while (reader.next(sample, split)) ++count;
    EXPECT_EQ(count, 4u) << name;
  }
  const std::string v1 = slurp(golden_path("corpus.pgds"));
  const std::string v2 = slurp(golden_path("corpus_v2.pgds"));
  // v2 = v1 with the version field patched and the index appended; the
  // record bytes themselves are untouched.
  ASSERT_GT(v2.size(), v1.size());
  EXPECT_EQ(v2.substr(10, v1.size() - 10), v1.substr(10));
  EXPECT_NE(v2.substr(8, 2), v1.substr(8, 2));
}

TEST(IoRoundTrip, DatasetStreamingReaderSeesEveryRecord) {
  std::ifstream is(golden_path("corpus.pgds"), std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(is));
  io::DatasetReader reader(is);
  model::TrainingSample sample;
  io::Split split = io::Split::kValidation;
  std::size_t count = 0;
  while (reader.next(sample, split)) {
    EXPECT_EQ(split, io::Split::kTrain);
    EXPECT_GT(sample.graph.relations.num_nodes, 0u);
    ++count;
  }
  EXPECT_EQ(count, 4u);
  EXPECT_EQ(reader.records_read(), 4u);
  // A drained reader stays drained.
  EXPECT_FALSE(reader.next(sample, split));
}

// --- rejection paths ------------------------------------------------------

using Bytes = std::string;

void expect_rejected(Bytes bytes, const char* what) {
  std::istringstream is(std::move(bytes), std::ios::binary);
  EXPECT_THROW(io::read_graph(is), io::FormatError) << what;
}

TEST(IoReject, BadMagic) {
  Bytes bytes = slurp(golden_path("matvec_cpu.pgraph"));
  bytes[0] = 'X';
  expect_rejected(std::move(bytes), "bad magic");
}

TEST(IoReject, EmptyFile) { expect_rejected({}, "empty file"); }

TEST(IoReject, FutureFormatVersion) {
  Bytes bytes = slurp(golden_path("matvec_cpu.pgraph"));
  bytes[8] = 0x7f;  // u16 version little-endian low byte
  expect_rejected(std::move(bytes), "future version");
}

TEST(IoReject, WrongPayloadKind) {
  // A valid sample file is not a graph file.
  Bytes bytes = slurp(golden_path("matvec_cpu.psample"));
  expect_rejected(std::move(bytes), "wrong kind");

  std::istringstream is(slurp(golden_path("matvec_cpu.pgraph")),
                        std::ios::binary);
  EXPECT_THROW(io::read_sample(is), io::FormatError);
}

TEST(IoReject, SchemaHashMismatch) {
  Bytes bytes = slurp(golden_path("matvec_cpu.pgraph"));
  bytes[12] = static_cast<char>(bytes[12] ^ 0x5a);  // u64 schema hash
  expect_rejected(std::move(bytes), "schema mismatch");
}

TEST(IoReject, TruncatedAtEveryPrefix) {
  const Bytes bytes = slurp(golden_path("matvec_cpu.pgraph"));
  // Every proper prefix must throw FormatError — never crash, never succeed.
  for (std::size_t len = 0; len < bytes.size();
       len += (len < 64 ? 1 : 97)) {
    std::istringstream is(bytes.substr(0, len), std::ios::binary);
    EXPECT_THROW(io::read_graph(is), io::FormatError) << "prefix " << len;
  }
}

TEST(IoReject, CorruptSectionCount) {
  Bytes bytes = slurp(golden_path("matvec_cpu.pgraph"));
  // u32 section count at offset 20.
  bytes[20] = 0;
  bytes[21] = 0;
  expect_rejected(std::move(bytes), "zero sections");

  Bytes huge = slurp(golden_path("matvec_cpu.pgraph"));
  huge[20] = static_cast<char>(0xff);
  huge[21] = static_cast<char>(0xff);
  expect_rejected(std::move(huge), "implausible section count");
}

TEST(IoReject, CorruptSectionSize) {
  // First table entry: id at 24..27, u64 size at 28..35.
  Bytes grown = slurp(golden_path("matvec_cpu.pgraph"));
  grown[28] = static_cast<char>(grown[28] + 1);  // size+1 -> overruns payload
  expect_rejected(std::move(grown), "grown section size");

  Bytes shrunk = slurp(golden_path("matvec_cpu.pgraph"));
  shrunk[28] = static_cast<char>(shrunk[28] - 1);  // size-1 -> section overrun
  expect_rejected(std::move(shrunk), "shrunk section size");

  Bytes absurd = slurp(golden_path("matvec_cpu.pgraph"));
  absurd[34] = static_cast<char>(0x7f);  // ~2^55 bytes
  expect_rejected(std::move(absurd), "absurd section size");
}

TEST(IoReject, DuplicateSectionId) {
  Bytes bytes = slurp(golden_path("matvec_cpu.pgraph"));
  // Overwrite the edges-section id (second table entry, offset 36) with the
  // nodes-section id (first entry, offset 24).
  for (int i = 0; i < 4; ++i) bytes[36 + i] = bytes[24 + i];
  expect_rejected(std::move(bytes), "duplicate section id");
}

TEST(IoReject, CorruptNodeCount) {
  Bytes bytes = slurp(golden_path("matvec_cpu.pgraph"));
  // Node count is the first u64 of the first section payload (offset 48).
  for (int i = 0; i < 8; ++i) bytes[48 + i] = static_cast<char>(0xff);
  expect_rejected(std::move(bytes), "absurd node count");
}

TEST(IoReject, UnknownSectionsAreSkipped) {
  // Forward compatibility: an extra section with an unknown id must be
  // ignored, not rejected. Rebuild the file with a third section.
  const Bytes original = slurp(golden_path("matvec_cpu.pgraph"));
  const std::string extra_payload = "future bytes";

  std::ostringstream os(std::ios::binary);
  io::StreamSink sink{os};
  os.write(original.data(), 20);         // magic + version + kind + schema
  io::put_u32(sink, 3);                  // section count 2 -> 3
  os.write(original.data() + 24, 24);    // the two original table entries
  io::put_u32(sink, 0x7fff);             // unknown section id
  io::put_u64(sink, extra_payload.size());
  os.write(original.data() + 48,
           static_cast<std::streamsize>(original.size() - 48));  // payloads
  os.write(extra_payload.data(),
           static_cast<std::streamsize>(extra_payload.size()));

  std::istringstream is(os.str(), std::ios::binary);
  const graph::ProgramGraph graph = io::read_graph(is);
  EXPECT_EQ(graph.num_nodes(), 59u);
  EXPECT_EQ(graph.num_edges(), 123u);
}

TEST(IoReject, DatasetDroppedTail) {
  // Chopping off the end marker (and part of the last record) must be
  // detected as truncation, not silently yield fewer records.
  const Bytes bytes = slurp(golden_path("corpus.pgds"));
  std::istringstream is(bytes.substr(0, bytes.size() - 20), std::ios::binary);
  io::DatasetReader reader(is);
  model::TrainingSample sample;
  io::Split split = io::Split::kTrain;
  EXPECT_THROW({
    while (reader.next(sample, split)) {
    }
  }, io::FormatError);
}

TEST(IoReject, DatasetCorruptRecordMarker) {
  Bytes bytes = slurp(golden_path("corpus.pgds"));
  // The first record marker sits right after header+table+meta. Find it by
  // scanning for "RECD".
  const auto pos = bytes.find("RECD");
  ASSERT_NE(pos, Bytes::npos);
  bytes[pos] = 'X';
  std::istringstream is(bytes, std::ios::binary);
  io::DatasetReader reader(is);
  model::TrainingSample sample;
  io::Split split = io::Split::kTrain;
  EXPECT_THROW(reader.next(sample, split), io::FormatError);
}

TEST(IoReject, DatasetRecordErrorsCarryRecordIndex) {
  // A decode failure deep inside a record body must name which record died:
  // "which sample of the million" is the first thing a corpus-corruption
  // report needs, and a bare FormatError used to lose it.
  Bytes bytes = slurp(golden_path("corpus.pgds"));
  // Poison the split tag of the third record. Each record is framed as
  // "RECD" + u64 body size + body, and the split tag is the body's first
  // byte (offset marker + 4 + 8). Walk frame-by-frame from the first marker
  // (a bytewise search past it could false-match "RECD" inside a body).
  std::size_t marker = bytes.find("RECD");
  ASSERT_NE(marker, Bytes::npos);
  auto u64_at = [&bytes](std::size_t off) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[off + i]))
           << (8 * i);
    return v;
  };
  for (int skipped = 0; skipped < 2; ++skipped) {
    marker += 12 + u64_at(marker + 4);
    ASSERT_LT(marker + 12, bytes.size());
    ASSERT_EQ(bytes.compare(marker, 4, "RECD"), 0);
  }
  bytes[marker + 12] = '\xff';

  std::istringstream is(bytes, std::ios::binary);
  io::DatasetReader reader(is);
  model::TrainingSample sample;
  io::Split split = io::Split::kTrain;
  try {
    while (reader.next(sample, split)) {
    }
    FAIL() << "expected FormatError";
  } catch (const io::FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("dataset record 2"),
              std::string::npos)
        << "error message lost the record index: " << e.what();
  }
}

TEST(IoReject, SampleRelationCorruptLocalIndex) {
  // Flip a relation-edge local index deep inside a .psample and verify the
  // validator refuses it (otherwise it would index out of bounds inside the
  // RGAT gather). The CSR in-memory form cannot even represent this
  // corruption (dst_local is re-derived from group_dst on write), so patch
  // the on-disk bytes: walk header + section table to the relations section
  // and poison the first edge record's dst_local field.
  const model::TrainingSample sample =
      io::read_sample_file(golden_path("matvec_cpu.psample"));
  ASSERT_FALSE(sample.graph.relations.relations[0].empty());
  Bytes bytes = slurp(golden_path("matvec_cpu.psample"));

  auto u64_at = [&bytes](std::size_t off) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes[off + i]))
           << (8 * i);
    return v;
  };
  // Header: magic(8) version(2) kind(2) schema(8) section-count(4) = 24,
  // then 3 section-table entries of u32 id + u64 size. Sections follow in
  // table order: meta, features, relations.
  const std::size_t meta_size = u64_at(24 + 4);
  const std::size_t features_size = u64_at(24 + 12 + 4);
  const std::size_t relations_start = 24 + 3 * 12 + meta_size + features_size;
  // Relations payload: u64 num_nodes, u32 num_relations, u64 edge count,
  // then 20-byte edge records (src, dst, src_local, dst_local, gate); the
  // first edge's dst_local sits 12 bytes into its record.
  const std::size_t dst_local_off = relations_start + 8 + 4 + 8 + 12;
  ASSERT_LT(dst_local_off + 4, bytes.size());
  bytes[dst_local_off] = '\xff';
  bytes[dst_local_off + 1] = '\xff';
  bytes[dst_local_off + 2] = '\xff';
  bytes[dst_local_off + 3] = '\x00';

  std::istringstream is(bytes, std::ios::binary);
  EXPECT_THROW(io::read_sample(is), io::FormatError);
}

TEST(IoReject, FormatErrorsAreNotInternalErrors) {
  // Corrupt input must never surface as pg::InternalError (which means
  // "library bug") — the two error channels stay distinct.
  Bytes bytes = slurp(golden_path("matvec_cpu.pgraph"));
  bytes[0] = 'X';
  std::istringstream is(bytes, std::ios::binary);
  try {
    (void)io::read_graph(is);
    FAIL() << "expected FormatError";
  } catch (const io::FormatError&) {
    SUCCEED();
  }
}

TEST(IoReject, MissingFile) {
  EXPECT_THROW(io::read_graph_file("/nonexistent/never.pgraph"),
               io::FormatError);
  EXPECT_THROW(io::probe_file("/nonexistent/never.pgraph"), io::FormatError);
}

TEST(IoProbe, ReportsKindForAllGoldenKinds) {
  EXPECT_EQ(io::probe_file(golden_path("matvec_cpu.pgraph")).kind,
            io::PayloadKind::kGraph);
  EXPECT_EQ(io::probe_file(golden_path("matvec_cpu.psample")).kind,
            io::PayloadKind::kSample);
  EXPECT_EQ(io::probe_file(golden_path("corpus.pgds")).kind,
            io::PayloadKind::kDataset);
}

}  // namespace
}  // namespace pg
