// Serve-layer regression suite (docs/SERVING.md): frame codec round trips,
// header rejection (bad magic / version / oversized), the error severity
// contract (request-scoped failures keep the connection, framing failures
// close it), and a loopback end-to-end pass over the golden corpus pinned
// bitwise against the in-process InferenceEngine — the daemon's dynamic
// batching must never change a single bit of any prediction.
#include <gtest/gtest.h>

#include <sys/epoll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/pgraph_io.hpp"
#include "model/checkpoint.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

#ifndef PG_GOLDEN_DIR
#error "PG_GOLDEN_DIR must point at tests/golden"
#endif

namespace pg {
namespace {

const char* kGoldenNames[] = {"matvec_cpu", "matmul_gpu_collapse_mem",
                              "corr_gpu_mem", "gauss_seidel_cpu_collapse"};

std::string golden_path(const std::string& name) {
  return std::string(PG_GOLDEN_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

// --- frame codec ----------------------------------------------------------

TEST(ServeProtocol, HeaderRoundTrip) {
  serve::FrameHeader header;
  header.kind = serve::FrameKind::kPredictRequest;
  header.request_id = 0x0123456789abcdefull;
  header.payload_bytes = 4096;

  std::uint8_t bytes[serve::kFrameHeaderBytes];
  serve::encode_header(header, bytes);
  EXPECT_EQ(std::memcmp(bytes, serve::kFrameMagic, 4), 0);

  serve::FrameHeader decoded;
  ASSERT_EQ(serve::decode_header(bytes, decoded), serve::HeaderVerdict::kOk);
  EXPECT_EQ(decoded.version, serve::kProtocolVersion);
  EXPECT_EQ(decoded.kind, header.kind);
  EXPECT_EQ(decoded.request_id, header.request_id);
  EXPECT_EQ(decoded.payload_bytes, header.payload_bytes);
}

TEST(ServeProtocol, HeaderRejectsBadMagicVersionAndOversize) {
  serve::FrameHeader header;
  header.kind = serve::FrameKind::kPing;
  std::uint8_t bytes[serve::kFrameHeaderBytes];
  serve::encode_header(header, bytes);

  std::uint8_t mangled[serve::kFrameHeaderBytes];
  serve::FrameHeader out;

  std::memcpy(mangled, bytes, sizeof bytes);
  mangled[0] = 'X';
  EXPECT_EQ(serve::decode_header(mangled, out),
            serve::HeaderVerdict::kBadMagic);

  std::memcpy(mangled, bytes, sizeof bytes);
  mangled[4] = 0x7f;  // version little-endian low byte
  EXPECT_EQ(serve::decode_header(mangled, out),
            serve::HeaderVerdict::kBadVersion);

  std::memcpy(mangled, bytes, sizeof bytes);
  mangled[23] = 0x7f;  // payload length's top byte: ~2^62 bytes
  EXPECT_EQ(serve::decode_header(mangled, out),
            serve::HeaderVerdict::kOversized);
  // The length field itself decodes before validation (the caller may echo
  // the request id from such a header).
  EXPECT_GT(out.payload_bytes, serve::kMaxFramePayload);
}

TEST(ServeProtocol, PredictReplyPayloadRoundTrip) {
  serve::PredictReply reply;
  reply.scaled = -0.123456789012345;
  reply.runtime_us = 1.5e6;
  const auto payload = serve::encode_predict_reply_payload(reply);
  ASSERT_EQ(payload.size(), 16u);
  const auto decoded =
      serve::decode_predict_reply_payload(payload.data(), payload.size());
  ASSERT_TRUE(decoded.has_value());
  // Bitwise, not approximate: the wire must not perturb a single ULP.
  EXPECT_EQ(std::memcmp(&decoded->scaled, &reply.scaled, 8), 0);
  EXPECT_EQ(std::memcmp(&decoded->runtime_us, &reply.runtime_us, 8), 0);

  EXPECT_FALSE(serve::decode_predict_reply_payload(payload.data(), 15));
  EXPECT_FALSE(serve::decode_predict_reply_payload(payload.data(), 0));
}

TEST(ServeProtocol, ErrorReplyPayloadRoundTrip) {
  serve::ErrorReply reply;
  reply.code = serve::ErrorCode::kBadPayload;
  reply.message = "sample decode failed: corrupt section table";
  const auto payload = serve::encode_error_reply_payload(reply);
  const auto decoded =
      serve::decode_error_reply_payload(payload.data(), payload.size());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->code, reply.code);
  EXPECT_EQ(decoded->message, reply.message);

  // Truncated string payloads must decode to nullopt, never throw.
  for (std::size_t n = 0; n < payload.size(); ++n)
    EXPECT_FALSE(serve::decode_error_reply_payload(payload.data(), n))
        << "truncated to " << n << " bytes";
}

// --- incremental frame assembly -------------------------------------------

std::vector<std::uint8_t> make_frame(serve::FrameKind kind, std::uint64_t id,
                                     const std::string& payload) {
  return serve::encode_frame(kind, id, payload.data(), payload.size());
}

TEST(FrameAssembler, PartialHeaderAccumulatesAcrossSpans) {
  // Byte-at-a-time delivery — the worst slow-loris case: no frame may
  // complete before the last byte, and exactly one after it.
  const auto frame =
      make_frame(serve::FrameKind::kPredictRequest, 42, "hello sample");
  serve::FrameAssembler assembler;
  std::vector<serve::FrameAssembler::Frame> out;
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    ASSERT_TRUE(assembler.consume(&frame[i], 1, out)) << "byte " << i;
    ASSERT_TRUE(out.empty()) << "frame completed early at byte " << i;
    EXPECT_GT(assembler.pending_bytes(), 0u);
  }
  ASSERT_TRUE(assembler.consume(&frame[frame.size() - 1], 1, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header.kind, serve::FrameKind::kPredictRequest);
  EXPECT_EQ(out[0].header.request_id, 42u);
  EXPECT_EQ(out[0].payload, "hello sample");
  EXPECT_EQ(assembler.pending_bytes(), 0u);  // back on a frame boundary
}

TEST(FrameAssembler, PartialPayloadSplitMidBody) {
  // Header + half the payload in one span, the rest in a second.
  const std::string payload(1000, 'x');
  const auto frame = make_frame(serve::FrameKind::kPredictRequest, 7, payload);
  serve::FrameAssembler assembler;
  std::vector<serve::FrameAssembler::Frame> out;
  const std::size_t cut = serve::kFrameHeaderBytes + 500;
  ASSERT_TRUE(assembler.consume(frame.data(), cut, out));
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(assembler.pending_bytes(), cut);
  ASSERT_TRUE(assembler.consume(frame.data() + cut, frame.size() - cut, out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, payload);
}

TEST(FrameAssembler, PipelinedFramesInOneSpanAllEmerge) {
  // Three frames (one empty-payload ping between two predicts) concatenated
  // into a single readiness event's bytes: all three come out, in order.
  std::vector<std::uint8_t> wire;
  for (const auto& frame :
       {make_frame(serve::FrameKind::kPredictRequest, 1, "first"),
        make_frame(serve::FrameKind::kPing, 2, ""),
        make_frame(serve::FrameKind::kPredictRequest, 3, "third")})
    wire.insert(wire.end(), frame.begin(), frame.end());

  serve::FrameAssembler assembler;
  std::vector<serve::FrameAssembler::Frame> out;
  ASSERT_TRUE(assembler.consume(wire.data(), wire.size(), out));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].header.request_id, 1u);
  EXPECT_EQ(out[0].payload, "first");
  EXPECT_EQ(out[1].header.kind, serve::FrameKind::kPing);
  EXPECT_TRUE(out[1].payload.empty());
  EXPECT_EQ(out[2].header.request_id, 3u);
  EXPECT_EQ(out[2].payload, "third");
}

TEST(FrameAssembler, OversizedFrameIsFatalBeforeAllocation) {
  serve::FrameHeader header;
  header.kind = serve::FrameKind::kPredictRequest;
  header.request_id = 99;
  header.payload_bytes = std::uint64_t{1} << 62;  // a hostile length field
  std::uint8_t bytes[serve::kFrameHeaderBytes];
  serve::encode_header(header, bytes);

  serve::FrameAssembler assembler;
  std::vector<serve::FrameAssembler::Frame> out;
  // Must reject on the header alone — no 2^62-byte buffer is ever resized.
  EXPECT_FALSE(assembler.consume(bytes, sizeof bytes, out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(assembler.fatal());
  EXPECT_EQ(assembler.fatal_verdict(), serve::HeaderVerdict::kOversized);
  EXPECT_EQ(assembler.fatal_header().request_id, 99u);  // echoable
}

TEST(FrameAssembler, BadMagicAndVersionAreFatalAndInputIsThenIgnored) {
  serve::FrameAssembler bad_magic;
  std::vector<serve::FrameAssembler::Frame> out;
  std::uint8_t junk[serve::kFrameHeaderBytes] = {'J', 'U', 'N', 'K'};
  EXPECT_FALSE(bad_magic.consume(junk, sizeof junk, out));
  EXPECT_EQ(bad_magic.fatal_verdict(), serve::HeaderVerdict::kBadMagic);

  serve::FrameHeader header;
  header.kind = serve::FrameKind::kPing;
  header.request_id = 77;
  std::uint8_t skewed[serve::kFrameHeaderBytes];
  serve::encode_header(header, skewed);
  skewed[4] = 0x63;  // version little-endian low byte
  serve::FrameAssembler bad_version;
  EXPECT_FALSE(bad_version.consume(skewed, sizeof skewed, out));
  EXPECT_EQ(bad_version.fatal_verdict(), serve::HeaderVerdict::kBadVersion);
  EXPECT_EQ(bad_version.fatal_header().request_id, 77u);

  // Once fatal, a later (perfectly valid) frame must NOT resynchronise the
  // stream — framing trust is gone for good.
  const auto valid = make_frame(serve::FrameKind::kPing, 5, "");
  EXPECT_FALSE(bad_version.consume(valid.data(), valid.size(), out));
  EXPECT_TRUE(out.empty());
}

TEST(FrameAssembler, FramesBeforeTheFatalHeaderStillEmerge) {
  // A valid predict followed by garbage in ONE span: the predict comes out
  // (it deserves its reply) even though consume() reports the fatal.
  std::vector<std::uint8_t> wire =
      make_frame(serve::FrameKind::kPredictRequest, 8, "payload");
  const std::uint8_t junk[serve::kFrameHeaderBytes] = {'J', 'U', 'N', 'K'};
  wire.insert(wire.end(), junk, junk + sizeof junk);

  serve::FrameAssembler assembler;
  std::vector<serve::FrameAssembler::Frame> out;
  EXPECT_FALSE(assembler.consume(wire.data(), wire.size(), out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].header.request_id, 8u);
}

// --- reactor primitives ---------------------------------------------------

TEST(Reactor, EpollSetReportsPipeReadinessWithTag) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  serve::EpollSet epoll;
  epoll.add(fds[0], EPOLLIN, /*tag=*/0xfeedu);

  epoll_event events[4];
  EXPECT_EQ(epoll.wait(events, 4, 0), 0);  // nothing buffered yet

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  ASSERT_EQ(epoll.wait(events, 4, 1000), 1);
  EXPECT_EQ(events[0].data.u64, 0xfeedu);
  EXPECT_TRUE(events[0].events & EPOLLIN);

  char byte;
  ASSERT_EQ(::read(fds[0], &byte, 1), 1);
  EXPECT_EQ(epoll.wait(events, 4, 0), 0);  // level-triggered: drained = quiet

  epoll.del(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(Reactor, WakeFdSignalsThroughEpollAndDrains) {
  serve::WakeFd wake;
  serve::EpollSet epoll;
  epoll.add(wake.fd(), EPOLLIN, /*tag=*/1);

  epoll_event events[1];
  EXPECT_EQ(epoll.wait(events, 1, 0), 0);
  wake.signal();
  wake.signal();  // coalesces: still one readiness, one drain
  ASSERT_EQ(epoll.wait(events, 1, 1000), 1);
  wake.drain();
  EXPECT_EQ(epoll.wait(events, 1, 0), 0);
}

// --- loopback end-to-end --------------------------------------------------

/// Shared server over a deterministic checkpoint: fresh model (fixed init
/// seed) + the golden corpus scalers — the same recipe cli_test uses.
class ServeLoopback : public ::testing::Test {
 protected:
  void SetUp() override {
    stored_ = io::read_sample_set_file(golden_path("corpus.pgds"));
    scalers_ = model::CheckpointScalers::from_sample_set(stored_.set);
    model_ = std::make_unique<model::ParaGraphModel>(config_);

    serve::ServeConfig serve_config;
    serve_config.workers = 2;
    serve_config.batch_max = 4;
    serve_config.batch_window_us = 200;
    server_ = std::make_unique<serve::Server>(*model_, scalers_, serve_config);
    server_->start();
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override { server_->stop(); }

  model::ModelConfig config_;
  io::StoredSampleSet stored_;
  model::CheckpointScalers scalers_;
  std::unique_ptr<model::ParaGraphModel> model_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeLoopback, PingPong) {
  serve::Client client(server_->port(), 5000);
  const auto pong = client.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->kind, serve::FrameKind::kPongReply);
}

TEST_F(ServeLoopback, PredictionsBitwiseEqualInProcessEngine) {
  // In-process reference: predict_one per golden sample, single-threaded.
  model::InferenceEngine engine(*model_);
  model::SampleSet scaler_set;
  scalers_.apply_to(scaler_set);

  serve::Client client(server_->port(), 5000);
  for (const char* name : kGoldenNames) {
    const model::TrainingSample sample =
        io::read_sample_file(golden_path(std::string(name) + ".psample"));
    const double expected = engine.predict_one(sample.graph, sample.aux);
    const double expected_us = scaler_set.from_target(expected);

    const auto response =
        client.predict_bytes(slurp(golden_path(std::string(name) + ".psample")));
    ASSERT_TRUE(response.has_value()) << name;
    ASSERT_EQ(response->kind, serve::FrameKind::kPredictReply)
        << name << ": " << response->error.message;
    EXPECT_EQ(std::memcmp(&response->prediction.scaled, &expected, 8), 0)
        << name << ": served " << response->prediction.scaled
        << " != in-process " << expected;
    EXPECT_EQ(std::memcmp(&response->prediction.runtime_us, &expected_us, 8), 0)
        << name;
  }
}

TEST_F(ServeLoopback, RequestIdsAreEchoedAcrossPipelinedRequests) {
  // Write three predict frames back-to-back, then collect three replies:
  // every reply's id must be one of the requests', each exactly once, so
  // coalesced/pipelined traffic can always be matched to its answers.
  const std::string psample = slurp(golden_path("matvec_cpu.psample"));
  serve::Socket socket = serve::connect_loopback(server_->port());
  socket.set_recv_timeout_ms(5000);

  const std::uint64_t ids[] = {11, 22, 33};
  for (const std::uint64_t id : ids) {
    const auto frame =
        serve::encode_frame(serve::FrameKind::kPredictRequest, id,
                            psample.data(), psample.size());
    socket.write_all(frame.data(), frame.size());
  }

  std::vector<std::uint64_t> seen;
  for (int i = 0; i < 3; ++i) {
    std::uint8_t header_bytes[serve::kFrameHeaderBytes];
    ASSERT_TRUE(socket.read_exact(header_bytes, sizeof header_bytes));
    serve::FrameHeader header;
    ASSERT_EQ(serve::decode_header(header_bytes, header),
              serve::HeaderVerdict::kOk);
    EXPECT_EQ(header.kind, serve::FrameKind::kPredictReply);
    socket.discard_exact(header.payload_bytes);
    seen.push_back(header.request_id);
  }
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{11, 22, 33}));
}

TEST_F(ServeLoopback, ZeroLengthPredictIsRequestScoped) {
  serve::Client client(server_->port(), 5000);
  const auto response = client.predict_bytes("");
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->kind, serve::FrameKind::kErrorReply);
  EXPECT_EQ(response->error.code, serve::ErrorCode::kBadPayload);

  // Per-request isolation: the same connection still answers pings.
  const auto pong = client.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->kind, serve::FrameKind::kPongReply);
}

TEST_F(ServeLoopback, CorruptSamplePayloadIsRequestScoped) {
  std::string psample = slurp(golden_path("matvec_cpu.psample"));
  psample[0] = 'X';  // bad container magic -> io::FormatError on decode
  serve::Client client(server_->port(), 5000);
  const auto response = client.predict_bytes(psample);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->kind, serve::FrameKind::kErrorReply);
  EXPECT_EQ(response->error.code, serve::ErrorCode::kBadPayload);
  EXPECT_FALSE(response->error.message.empty());

  // ...and a well-formed request on the same connection still predicts.
  const auto good =
      client.predict_bytes(slurp(golden_path("matvec_cpu.psample")));
  ASSERT_TRUE(good.has_value());
  EXPECT_EQ(good->kind, serve::FrameKind::kPredictReply);
}

TEST_F(ServeLoopback, UnknownKindIsRequestScoped) {
  serve::Client client(server_->port(), 5000);
  const char junk[] = "whatever";
  const auto response =
      client.roundtrip(static_cast<serve::FrameKind>(0x7777), junk, sizeof junk);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->kind, serve::FrameKind::kErrorReply);
  EXPECT_EQ(response->error.code, serve::ErrorCode::kBadKind);

  const auto pong = client.ping();
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(pong->kind, serve::FrameKind::kPongReply);
}

/// Reads one raw reply frame; returns nullopt on end-of-stream.
std::optional<serve::ErrorReply> read_error_reply(serve::Socket& socket) {
  std::uint8_t header_bytes[serve::kFrameHeaderBytes];
  if (!socket.read_exact(header_bytes, sizeof header_bytes)) return std::nullopt;
  serve::FrameHeader header;
  EXPECT_EQ(serve::decode_header(header_bytes, header),
            serve::HeaderVerdict::kOk);
  EXPECT_EQ(header.kind, serve::FrameKind::kErrorReply);
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(header.payload_bytes));
  EXPECT_TRUE(socket.read_exact(payload.data(), payload.size()));
  auto reply = serve::decode_error_reply_payload(payload.data(), payload.size());
  EXPECT_TRUE(reply.has_value());
  return reply;
}

TEST_F(ServeLoopback, BadMagicIsFatal) {
  serve::Socket socket = serve::connect_loopback(server_->port());
  socket.set_recv_timeout_ms(5000);
  std::uint8_t garbage[serve::kFrameHeaderBytes] = {'J', 'U', 'N', 'K'};
  socket.write_all(garbage, sizeof garbage);

  const auto reply = read_error_reply(socket);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->code, serve::ErrorCode::kMalformedFrame);
  // Fatal: the server closes the stream after the reply — our next read
  // sees end-of-stream, not another answer.
  std::uint8_t byte = 0;
  EXPECT_FALSE(socket.read_exact(&byte, 1));
}

TEST_F(ServeLoopback, VersionMismatchIsFatalAndEchoesId) {
  serve::FrameHeader header;
  header.kind = serve::FrameKind::kPing;
  header.request_id = 77;
  std::uint8_t bytes[serve::kFrameHeaderBytes];
  serve::encode_header(header, bytes);
  bytes[4] = 0x63;  // version 0x63 != kProtocolVersion

  serve::Socket socket = serve::connect_loopback(server_->port());
  socket.set_recv_timeout_ms(5000);
  socket.write_all(bytes, sizeof bytes);

  std::uint8_t header_bytes[serve::kFrameHeaderBytes];
  ASSERT_TRUE(socket.read_exact(header_bytes, sizeof header_bytes));
  serve::FrameHeader reply_header;
  ASSERT_EQ(serve::decode_header(header_bytes, reply_header),
            serve::HeaderVerdict::kOk);
  EXPECT_EQ(reply_header.kind, serve::FrameKind::kErrorReply);
  EXPECT_EQ(reply_header.request_id, 77u);  // trusted even on version skew
  std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(reply_header.payload_bytes));
  ASSERT_TRUE(socket.read_exact(payload.data(), payload.size()));
  const auto reply =
      serve::decode_error_reply_payload(payload.data(), payload.size());
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->code, serve::ErrorCode::kBadVersion);
}

TEST_F(ServeLoopback, OversizedFrameIsFatal) {
  serve::FrameHeader header;
  header.kind = serve::FrameKind::kPredictRequest;
  header.request_id = 5;
  header.payload_bytes = serve::kMaxFramePayload + 1;
  std::uint8_t bytes[serve::kFrameHeaderBytes];
  serve::encode_header(header, bytes);

  serve::Socket socket = serve::connect_loopback(server_->port());
  socket.set_recv_timeout_ms(5000);
  socket.write_all(bytes, sizeof bytes);

  const auto reply = read_error_reply(socket);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->code, serve::ErrorCode::kMalformedFrame);
  std::uint8_t byte = 0;
  EXPECT_FALSE(socket.read_exact(&byte, 1));
}

TEST_F(ServeLoopback, StatsCountTraffic) {
  serve::Client client(server_->port(), 5000);
  ASSERT_TRUE(client.ping().has_value());
  const auto response =
      client.predict_bytes(slurp(golden_path("matvec_cpu.psample")));
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->kind, serve::FrameKind::kPredictReply);

  const serve::ServerStats stats = server_->stats();
  EXPECT_GE(stats.connections, 1u);
  EXPECT_GE(stats.pings, 1u);
  EXPECT_GE(stats.requests_ok, 1u);
  EXPECT_GE(stats.batches, 1u);
}

TEST_F(ServeLoopback, ClientSampleBytesMatchWireFormat) {
  // The client's serialisation IS the on-disk .psample format — one format,
  // two transports.
  const model::TrainingSample sample =
      io::read_sample_file(golden_path("matvec_cpu.psample"));
  EXPECT_EQ(serve::Client::sample_bytes(sample),
            slurp(golden_path("matvec_cpu.psample")));
}

TEST(ServeIdleTimeout, ReactorTimerClosesIdleConnections) {
  // Dedicated server with a short idle timeout: a connection that sends
  // nothing gets reaped by the reactor's timer pass (no SO_RCVTIMEO — the
  // close costs no thread) and the client observes a clean end-of-stream.
  const io::StoredSampleSet stored =
      io::read_sample_set_file(golden_path("corpus.pgds"));
  const model::CheckpointScalers scalers =
      model::CheckpointScalers::from_sample_set(stored.set);
  model::ModelConfig config;
  model::ParaGraphModel model(config);

  serve::ServeConfig serve_config;
  serve_config.workers = 1;
  serve_config.idle_timeout_ms = 100;
  serve::Server server(model, scalers, serve_config);
  server.start();

  serve::Socket idle = serve::connect_loopback(server.port());
  idle.set_recv_timeout_ms(5000);
  std::uint8_t byte = 0;
  // Blocks until the reaper closes us; EOF well before the recv timeout.
  EXPECT_FALSE(idle.read_exact(&byte, 1));
  EXPECT_GE(server.stats().idle_closed, 1u);

  // An ACTIVE connection with in-flight traffic must never be reaped: ping
  // repeatedly past several timeout periods.
  serve::Client client(server.port(), 5000);
  for (int i = 0; i < 5; ++i) {
    const auto pong = client.ping();
    ASSERT_TRUE(pong.has_value()) << "active connection reaped at ping " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  server.stop();
}

TEST(ServeConfigEnv, KnobsAreReadAndClamped) {
  struct Restore {
    ~Restore() {
      unsetenv("PARAGRAPH_SERVE_WORKERS");
      unsetenv("PARAGRAPH_SERVE_IO_THREADS");
      unsetenv("PARAGRAPH_SERVE_QUEUE");
      unsetenv("PARAGRAPH_SERVE_WINDOW_US");
      unsetenv("PARAGRAPH_SERVE_CONN_INFLIGHT");
      unsetenv("PARAGRAPH_SERVE_WRITEQ_CAP");
      unsetenv("PARAGRAPH_SERVE_CACHE");
      unsetenv("PARAGRAPH_SERVE_CACHE_EPS");
      unsetenv("PARAGRAPH_SERVE_CACHE_CAP");
    }
  } restore;
  setenv("PARAGRAPH_SERVE_WORKERS", "3", 1);
  setenv("PARAGRAPH_SERVE_IO_THREADS", "2", 1);
  setenv("PARAGRAPH_SERVE_QUEUE", "0", 1);  // below the floor of 1 -> clamped
  setenv("PARAGRAPH_SERVE_WINDOW_US", "500", 1);
  setenv("PARAGRAPH_SERVE_CONN_INFLIGHT", "0", 1);  // floor is 1 -> clamped
  setenv("PARAGRAPH_SERVE_WRITEQ_CAP", "1", 1);  // floor is 4096 -> clamped
  setenv("PARAGRAPH_SERVE_CACHE", "1", 1);
  setenv("PARAGRAPH_SERVE_CACHE_EPS", "-0.5", 1);  // negative -> clamped to 0
  setenv("PARAGRAPH_SERVE_CACHE_CAP", "64", 1);
  const serve::ServeConfig config = serve::serve_config_from_env();
  EXPECT_EQ(config.workers, 3u);
  EXPECT_EQ(config.io_threads, 2u);
  EXPECT_EQ(config.queue_depth, 1u);
  EXPECT_EQ(config.batch_window_us, 500u);
  EXPECT_EQ(config.conn_inflight_cap, 1u);
  EXPECT_EQ(config.write_queue_cap, 4096u);
  EXPECT_TRUE(config.cache);
  EXPECT_EQ(config.cache_eps, 0.0);
  EXPECT_EQ(config.cache_capacity, 64u);
}

// --- semantic cache end-to-end --------------------------------------------

/// Loopback server with the semantic cache on. eps comes from the test;
/// everything else mirrors ServeLoopback.
class ServeCacheLoopback : public ::testing::Test {
 protected:
  void start(double eps) {
    stored_ = io::read_sample_set_file(golden_path("corpus.pgds"));
    scalers_ = model::CheckpointScalers::from_sample_set(stored_.set);
    model_ = std::make_unique<model::ParaGraphModel>(config_);

    serve::ServeConfig serve_config;
    serve_config.workers = 2;
    serve_config.batch_max = 4;
    serve_config.cache = true;
    serve_config.cache_eps = eps;
    server_ = std::make_unique<serve::Server>(*model_, scalers_, serve_config);
    server_->start();
    ASSERT_NE(server_->port(), 0);
  }

  void TearDown() override {
    if (server_ != nullptr) server_->stop();
  }

  model::ModelConfig config_;
  io::StoredSampleSet stored_;
  model::CheckpointScalers scalers_;
  std::unique_ptr<model::ParaGraphModel> model_;
  std::unique_ptr<serve::Server> server_;
};

TEST_F(ServeCacheLoopback, ExactMatchHitsAreBitwiseIdentical) {
  // eps = 0: every reply — miss or hit — must be bit-for-bit what the
  // uncached engine computes. Round one populates the cache, round two is
  // served from it (the bytes fast path), round three re-sends over a new
  // connection; all three must agree with predict_one exactly.
  start(/*eps=*/0.0);
  model::InferenceEngine engine(*model_);
  model::SampleSet scaler_set;
  scalers_.apply_to(scaler_set);

  for (int round = 0; round < 3; ++round) {
    serve::Client client(server_->port(), 5000);
    for (const char* name : kGoldenNames) {
      const model::TrainingSample sample =
          io::read_sample_file(golden_path(std::string(name) + ".psample"));
      const double expected = engine.predict_one(sample.graph, sample.aux);
      const double expected_us = scaler_set.from_target(expected);
      const auto response = client.predict_bytes(
          slurp(golden_path(std::string(name) + ".psample")));
      ASSERT_TRUE(response.has_value()) << name << " round " << round;
      ASSERT_EQ(response->kind, serve::FrameKind::kPredictReply)
          << name << ": " << response->error.message;
      EXPECT_EQ(std::memcmp(&response->prediction.scaled, &expected, 8), 0)
          << name << " round " << round;
      EXPECT_EQ(
          std::memcmp(&response->prediction.runtime_us, &expected_us, 8), 0)
          << name << " round " << round;
    }
  }

  const serve::ServerStats stats = server_->stats();
  const std::size_t samples = std::size(kGoldenNames);
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 3 * samples);
  EXPECT_GE(stats.cache_hits, 2 * samples);  // rounds two and three
  EXPECT_LE(stats.cache_misses, samples);
}

TEST_F(ServeCacheLoopback, EpsRadiusServesNearbyRequestFromCache) {
  // Byte-different requests with the same graph + aux embed identically
  // (distance 0 <= any eps), so the second request must reuse the first's
  // prediction through the embedding-space probe — the bytes fast path
  // cannot see it, the semantic match must.
  start(/*eps=*/0.5);
  model::TrainingSample sample =
      io::read_sample_file(golden_path("matvec_cpu.psample"));

  serve::Client client(server_->port(), 5000);
  const auto first = client.predict_bytes(serve::Client::sample_bytes(sample));
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(first->kind, serve::FrameKind::kPredictReply);

  sample.runtime_us += 1.0;  // changes the wire bytes, not graph or aux
  const std::string second_bytes = serve::Client::sample_bytes(sample);
  EXPECT_NE(second_bytes,
            serve::Client::sample_bytes(io::read_sample_file(
                golden_path("matvec_cpu.psample"))));
  const auto second = client.predict_bytes(second_bytes);
  ASSERT_TRUE(second.has_value());
  ASSERT_EQ(second->kind, serve::FrameKind::kPredictReply);
  EXPECT_EQ(std::memcmp(&second->prediction.scaled, &first->prediction.scaled,
                        8),
            0);

  const serve::ServerStats stats = server_->stats();
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
}

}  // namespace
}  // namespace pg
