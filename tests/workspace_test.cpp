// Tests for the tensor::Workspace arena and the zero-allocation guarantee
// of the workspace-backed model hot path: slot reuse and zeroing semantics,
// grow-only statistics, bitwise determinism of repeated passes through one
// (or several) workspaces, and a global-operator-new audit proving that a
// warmed-up predict/accumulate_gradients never touches the heap.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <new>

#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/encoding.hpp"
#include "model/paragraph_model.hpp"
#include "tensor/workspace.hpp"

// ----------------------------------------------------------------------
// Global allocation audit. Replacing the global operator new/delete pair
// lets the steady-state tests assert "zero heap allocations", not merely
// "zero workspace growth". The counter only ever increments, so warm-up
// and gtest bookkeeping between snapshots are harmless.
namespace {
std::atomic<std::size_t> g_allocation_count{0};
}  // namespace

// Every throwing/nothrow new and delete variant is replaced so each
// allocation and deallocation routes through the same malloc/free pair —
// a partial replacement trips ASan's alloc-dealloc-mismatch check.
void* operator new(std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

namespace pg::tensor {
namespace {

// ------------------------------------------------------------- arena ---

TEST(Workspace, AcquireReturnsZeroFilledShape) {
  Workspace ws;
  Matrix& m = ws.acquire(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  for (float v : m.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Workspace, SameShapeAcquiresAreDistinctUntilReset) {
  Workspace ws;
  Matrix& a = ws.acquire(2, 2);
  Matrix& b = ws.acquire(2, 2);
  EXPECT_NE(&a, &b);
  a(0, 0) = 1.0f;
  EXPECT_EQ(b(0, 0), 0.0f);
}

TEST(Workspace, ResetReusesSlotsInAcquisitionOrder) {
  Workspace ws;
  Matrix& a = ws.acquire(2, 3);
  Matrix& b = ws.acquire(2, 3);
  a(0, 0) = 7.0f;
  b(0, 0) = 9.0f;
  ws.reset();
  Matrix& a2 = ws.acquire(2, 3);
  Matrix& b2 = ws.acquire(2, 3);
  EXPECT_EQ(&a2, &a);
  EXPECT_EQ(&b2, &b);
  // Re-handed-out slots are scrubbed.
  EXPECT_EQ(a2(0, 0), 0.0f);
  EXPECT_EQ(b2(0, 0), 0.0f);
}

TEST(Workspace, GrowOnlyStatistics) {
  Workspace ws;
  EXPECT_EQ(ws.num_slots(), 0u);
  (void)ws.acquire(4, 4);
  (void)ws.acquire(4, 4);
  (void)ws.acquire(1, 8);
  EXPECT_EQ(ws.num_slots(), 3u);
  EXPECT_EQ(ws.bytes_reserved(), (16u + 16u + 8u) * sizeof(float));
  ws.reset();
  (void)ws.acquire(4, 4);
  (void)ws.acquire(1, 8);
  EXPECT_EQ(ws.num_slots(), 3u);  // steady state: nothing new
  EXPECT_EQ(ws.num_acquires(), 5u);
}

TEST(Workspace, ZeroSizedAcquireIsAllowed) {
  Workspace ws;
  Matrix& m = ws.acquire(1, 0);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

// ----------------------------------------------------- model hot path ---

model::EncodedGraph encoded_small() {
  auto r = frontend::parse_source(R"(
    void f(void) {
      for (int i = 0; i < 40; i++) {
        double x = 1.0;
      }
    }
  )");
  EXPECT_TRUE(r.ok());
  const auto g = graph::build_graph(r.root(), {});
  return model::encode_graph(g, 40.0);
}

TEST(WorkspaceModel, RepeatedPredictThroughOneWorkspaceIsBitwiseIdentical) {
  const auto enc = encoded_small();
  model::ParaGraphModel m(model::ModelConfig{.hidden_dim = 8, .seed = 3});
  const std::array<float, 2> aux = {0.4f, 0.6f};
  Workspace ws;
  const double first = m.predict(enc, aux, ws);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(m.predict(enc, aux, ws), first);
}

TEST(WorkspaceModel, PredictIsIndependentOfWorkspaceHistory) {
  const auto enc = encoded_small();
  model::ParaGraphModel m(model::ModelConfig{.hidden_dim = 8, .seed = 3});
  const std::array<float, 2> aux = {0.4f, 0.6f};
  Workspace fresh;
  Workspace dirty;
  // Pollute `dirty` with a differently-shaped pass first.
  (void)m.predict(enc, std::array<float, 2>{0.9f, 0.1f}, dirty);
  EXPECT_EQ(m.predict(enc, aux, dirty), m.predict(enc, aux, fresh));
}

TEST(WorkspaceModel, PredictSteadyStatePerformsZeroHeapAllocations) {
  const auto enc = encoded_small();
  model::ParaGraphModel m(model::ModelConfig{.hidden_dim = 8, .seed = 5});
  const std::array<float, 2> aux = {0.3f, 0.7f};
  Workspace ws;
  (void)m.predict(enc, aux, ws);  // warm-up: arena takes all its slots here
  const std::size_t slots = ws.num_slots();
  const std::size_t bytes = ws.bytes_reserved();

  const std::size_t allocations_before = g_allocation_count.load();
  double sum = 0.0;
  for (int i = 0; i < 10; ++i) sum += m.predict(enc, aux, ws);
  const std::size_t allocations_after = g_allocation_count.load();

  EXPECT_NE(sum, 0.0);  // keep the loop observable
  EXPECT_EQ(allocations_after, allocations_before)
      << "steady-state predict touched the heap";
  EXPECT_EQ(ws.num_slots(), slots) << "workspace grew after warm-up";
  EXPECT_EQ(ws.bytes_reserved(), bytes);
}

TEST(WorkspaceModel, GradientSteadyStatePerformsZeroHeapAllocations) {
  const auto enc = encoded_small();
  model::ParaGraphModel m(model::ModelConfig{.hidden_dim = 8, .seed = 5});
  const std::array<float, 2> aux = {0.3f, 0.7f};
  std::vector<Matrix> grads;
  for (auto* p : m.parameters()) grads.emplace_back(p->rows(), p->cols());
  Workspace ws;
  (void)m.accumulate_gradients(enc, aux, 0.5, 1.0, grads, ws);  // warm-up
  const std::size_t slots = ws.num_slots();

  const std::size_t allocations_before = g_allocation_count.load();
  for (int i = 0; i < 5; ++i)
    (void)m.accumulate_gradients(enc, aux, 0.5, 1.0, grads, ws);
  const std::size_t allocations_after = g_allocation_count.load();

  EXPECT_EQ(allocations_after, allocations_before)
      << "steady-state accumulate_gradients touched the heap";
  EXPECT_EQ(ws.num_slots(), slots);
}

TEST(WorkspaceModel, WorkspaceOverloadMatchesConvenienceOverload) {
  const auto enc = encoded_small();
  model::ParaGraphModel m(model::ModelConfig{.hidden_dim = 8, .seed = 7});
  const std::array<float, 2> aux = {0.2f, 0.8f};
  Workspace ws;
  EXPECT_EQ(m.predict(enc, aux, ws), m.predict(enc, aux));
}

}  // namespace
}  // namespace pg::tensor
