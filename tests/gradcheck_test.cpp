// Numerical gradient checks for every layer with a hand-written backward
// pass (Linear, Mlp, RgatConv, and the full ParaGraphModel).
//
// Method: central differences on a scalar loss L. For float32 parameters a
// relative tolerance of a few percent with eps ~1e-2..1e-3 is the right
// regime; we check a deterministic subset of coordinates per parameter.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "model/paragraph_model.hpp"
#include "nn/linear.hpp"
#include "nn/mlp.hpp"
#include "nn/rgat.hpp"
#include "support/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/workspace.hpp"

namespace pg {
namespace {

using tensor::Matrix;

/// Checks d(loss)/d(param[coord]) for a list of parameters against central
/// differences. `loss` must be a pure function of the parameters.
///
/// `min_pass_fraction`: fraction of probed coordinates that must match.
/// For smooth losses use 1.0. For losses containing ReLU kinks, a small
/// minority of coordinates sit close enough to a kink that the finite
/// difference itself is biased by O(eps) — a real backward bug, by
/// contrast, corrupts essentially every coordinate — so the composite
/// model checks use 0.8.
void check_parameter_gradients(const std::vector<Matrix*>& params,
                               const std::vector<Matrix>& analytic,
                               const std::function<double()>& loss,
                               double eps, double rel_tol, double abs_tol,
                               double min_pass_fraction = 1.0) {
  ASSERT_EQ(params.size(), analytic.size());
  std::size_t total = 0;
  std::size_t passed = 0;
  for (std::size_t p = 0; p < params.size(); ++p) {
    Matrix& theta = *params[p];
    ASSERT_TRUE(analytic[p].same_shape(theta)) << "param " << p;
    // Probe a deterministic subset: first, middle, last coordinate.
    std::vector<std::size_t> coords = {0, theta.size() / 2, theta.size() - 1};
    for (const std::size_t c : coords) {
      float* value = &theta.data()[c];
      const float saved = *value;
      *value = saved + static_cast<float>(eps);
      const double up = loss();
      *value = saved - static_cast<float>(eps);
      const double down = loss();
      *value = saved;
      const double numeric = (up - down) / (2.0 * eps);
      const double analytic_value = analytic[p].data()[c];
      const double scale =
          std::max({std::abs(numeric), std::abs(analytic_value), abs_tol});
      const bool ok = std::abs(analytic_value - numeric) <= rel_tol * scale;
      ++total;
      passed += ok;
      if (min_pass_fraction >= 1.0) {
        EXPECT_NEAR(analytic_value, numeric, rel_tol * scale)
            << "param " << p << " coord " << c;
      }
    }
  }
  EXPECT_GE(static_cast<double>(passed),
            min_pass_fraction * static_cast<double>(total))
      << "only " << passed << "/" << total << " gradient coordinates matched";
}

// ---------------------------------------------------------------- linear ---

TEST(GradCheck, LinearWeightsBiasAndInput) {
  pg::Rng rng(1);
  nn::Linear layer(4, 3, rng);
  Matrix x(2, 4);
  pg::Rng xr(2);
  tensor::uniform_init(x, xr, -1.0f, 1.0f);
  // Loss: sum of squares of outputs (smooth everywhere).
  auto loss = [&] {
    const Matrix y = layer.forward(x);
    return y.squared_norm();
  };
  // Analytic: dL/dy = 2y.
  const Matrix y = layer.forward(x);
  Matrix dy = y;
  dy.scale_(2.0f);
  std::vector<Matrix> grads;
  grads.emplace_back(4, 3);
  grads.emplace_back(1, 3);
  const Matrix dx = layer.backward(x, dy, grads);

  check_parameter_gradients(layer.parameters(), grads, loss, 1e-2, 0.05, 1e-4);

  // Input gradient.
  for (std::size_t c : {std::size_t{0}, std::size_t{3}, std::size_t{7}}) {
    float* value = &x.data()[c];
    const float saved = *value;
    *value = saved + 1e-2f;
    const double up = loss();
    *value = saved - 1e-2f;
    const double down = loss();
    *value = saved;
    const double numeric = (up - down) / 2e-2;
    EXPECT_NEAR(dx.data()[c], numeric, 0.05 * std::max(1e-4, std::abs(numeric)));
  }
}

// ------------------------------------------------------------------- mlp ---

TEST(GradCheck, MlpThroughReluLayers) {
  pg::Rng rng(3);
  nn::Mlp mlp({3, 8, 5, 1}, rng);
  Matrix x(4, 3);
  pg::Rng xr(4);
  tensor::uniform_init(x, xr, -1.0f, 1.0f);

  auto loss = [&] {
    const Matrix y = mlp.forward(x);
    return y.squared_norm();
  };

  nn::Mlp::Cache cache;
  const Matrix y = mlp.forward(x, cache);
  Matrix dy = y;
  dy.scale_(2.0f);
  std::vector<Matrix> grads;
  for (auto* p : mlp.parameters()) grads.emplace_back(p->rows(), p->cols());
  (void)mlp.backward(dy, cache, grads);

  // ReLU kinks: statistical criterion (see check_parameter_gradients).
  check_parameter_gradients(mlp.parameters(), grads, loss, 1e-2, 0.08, 1e-4,
                            /*min_pass_fraction=*/0.85);
}

// ------------------------------------------------------------------ rgat ---

nn::RelationalGraph gradcheck_graph() {
  // 6 nodes, 3 relations: a weighted chain, a fan-in, and a sparse edge.
  nn::RelationalGraph g;
  g.num_nodes = 6;
  g.relations.push_back(nn::RelationEdges::from_edges({
      {0, 1, 0.7f},
      {1, 2, 0.2f},
      {2, 3, 1.0f},
      {4, 3, 0.5f},
  }));
  g.relations.push_back(nn::RelationEdges::from_edges({
      {0, 5, 1.0f},
      {1, 5, 1.0f},
      {2, 5, 1.0f},
  }));
  g.relations.push_back(nn::RelationEdges::from_edges({{5, 0, 1.0f}}));
  return g;
}

TEST(GradCheck, RgatConvAllParameters) {
  pg::Rng rng(5);
  // No ReLU: keeps the loss smooth so central differences are reliable.
  nn::RgatConv conv(4, 3, 3, rng, /*apply_relu=*/false);
  const nn::RelationalGraph g = gradcheck_graph();
  Matrix x(6, 4);
  pg::Rng xr(6);
  tensor::uniform_init(x, xr, -1.0f, 1.0f);

  auto loss = [&] {
    tensor::Workspace loss_ws;
    nn::RgatConv::Cache cache;
    const Matrix y = conv.forward(x, g, cache, loss_ws);
    return y.squared_norm();
  };

  tensor::Workspace ws;
  nn::RgatConv::Cache cache;
  const Matrix y = conv.forward(x, g, cache, ws);
  Matrix dy = y;
  dy.scale_(2.0f);
  std::vector<Matrix> grads;
  for (auto* p : conv.parameters()) grads.emplace_back(p->rows(), p->cols());
  const Matrix dx = conv.backward(dy, g, cache, grads, ws);

  check_parameter_gradients(conv.parameters(), grads, loss, 5e-3, 0.08, 1e-4);

  // Input gradients (includes attention + message + self paths).
  for (std::size_t c = 0; c < x.size(); c += 5) {
    float* value = &x.data()[c];
    const float saved = *value;
    *value = saved + 5e-3f;
    const double up = loss();
    *value = saved - 5e-3f;
    const double down = loss();
    *value = saved;
    const double numeric = (up - down) / 1e-2;
    EXPECT_NEAR(dx.data()[c], numeric,
                0.08 * std::max(1e-3, std::abs(numeric)))
        << "x coord " << c;
  }
}

TEST(GradCheck, RgatConvWithRelu) {
  pg::Rng rng(7);
  nn::RgatConv conv(3, 3, 1, rng, /*apply_relu=*/true);
  nn::RelationalGraph g;
  g.num_nodes = 3;
  g.relations.push_back(
      nn::RelationEdges::from_edges({{0, 1, 0.8f}, {2, 1, 0.3f}}));
  Matrix x(3, 3);
  pg::Rng xr(8);
  tensor::uniform_init(x, xr, 0.2f, 1.0f);  // keep pre-activations away from 0

  auto loss = [&] {
    tensor::Workspace loss_ws;
    nn::RgatConv::Cache cache;
    return conv.forward(x, g, cache, loss_ws).squared_norm();
  };

  tensor::Workspace ws;
  nn::RgatConv::Cache cache;
  const Matrix y = conv.forward(x, g, cache, ws);
  Matrix dy = y;
  dy.scale_(2.0f);
  std::vector<Matrix> grads;
  for (auto* p : conv.parameters()) grads.emplace_back(p->rows(), p->cols());
  (void)conv.backward(dy, g, cache, grads, ws);

  check_parameter_gradients(conv.parameters(), grads, loss, 5e-3, 0.1, 1e-4);
}

// --------------------------------------------------------- whole model ---

TEST(GradCheck, ParaGraphModelEndToEnd) {
  model::ModelConfig config;
  config.hidden_dim = 6;
  config.aux_embed_dim = 3;
  config.seed = 11;
  model::ParaGraphModel gnn(config);

  // A small encoded graph: 6 nodes with one-hot-ish features over all
  // kNumNodeKinds dims and the 8 standard relations (most empty).
  model::EncodedGraph graph;
  graph.features = Matrix(6, config.node_feature_dim);
  for (std::size_t i = 0; i < 6; ++i) graph.features(i, i % 7) = 1.0f;
  graph.relations.num_nodes = 6;
  graph.relations.relations.resize(graph::kNumEdgeTypes);
  graph.relations.relations[0] = nn::RelationEdges::from_edges(
      {{0, 1, 0.4f}, {1, 2, 0.9f}, {2, 3, 0.1f}});
  graph.relations.relations[2] =
      nn::RelationEdges::from_edges({{3, 4, 1.0f}, {4, 5, 1.0f}});

  const std::array<float, 2> aux = {0.3f, 0.8f};
  const double target = 0.25;

  auto loss = [&] {
    const double pred = gnn.predict(graph, aux);
    return (pred - target) * (pred - target);
  };

  std::vector<Matrix> grads;
  for (auto* p : gnn.parameters()) grads.emplace_back(p->rows(), p->cols());
  (void)gnn.accumulate_gradients(graph, aux, target, 1.0, grads);

  // Three RGAT layers + three ReLU heads: a few coordinates always sit on a
  // kink; require 80% strict agreement (a wrong backward fails ~all).
  check_parameter_gradients(gnn.parameters(), grads, loss, 5e-3, 0.12, 5e-5,
                            /*min_pass_fraction=*/0.8);
}

}  // namespace
}  // namespace pg
