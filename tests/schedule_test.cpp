// Tests for the cost-model chunk scheduler (model/schedule.hpp) and the
// engine's parallel schedule built on it: deterministic partition
// boundaries and their prefix-sum invariants, degenerate inputs, the
// PARAGRAPH_CHUNK / PARAGRAPH_SCHED env split, scheduler stats, and — the
// load-bearing property — bitwise parity of engine predictions across
// 1 vs N threads and across chunk policies under uniform / zipf /
// one-giant batch mixes.
#include <gtest/gtest.h>

#include <omp.h>

#include <array>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "model/encoding.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"
#include "model/schedule.hpp"
#include "nn/relational_graph.hpp"
#include "support/env.hpp"

namespace pg::model {
namespace {

using schedule::graph_cost;
using schedule::partition_by_cost;
using schedule::plan_imbalance;

// ---------------------------------------------------------- cost model ---

TEST(Schedule, GraphCostIsLinearInNodesAndEdges) {
  EXPECT_EQ(graph_cost(0, 0), schedule::kGraphCost);
  EXPECT_EQ(graph_cost(10, 0), schedule::kGraphCost + 10);
  EXPECT_EQ(graph_cost(10, 7),
            schedule::kGraphCost + 10 + 2 * 7);
}

// ---------------------------------------------------------- partitioner ---

std::vector<std::uint32_t> partition(const std::vector<std::uint64_t>& costs,
                                     std::uint64_t target,
                                     std::size_t max_graphs) {
  std::vector<std::uint32_t> bounds;
  partition_by_cost(costs, target, max_graphs, bounds);
  return bounds;
}

TEST(Schedule, PartitionIsDeterministic) {
  const std::vector<std::uint64_t> costs = {5, 9, 1, 14, 3, 3, 3, 20, 2};
  const auto first = partition(costs, 12, 64);
  const auto second = partition(costs, 12, 64);
  EXPECT_EQ(first, second);
}

TEST(Schedule, PartitionBoundsAreMonotonePrefixSums) {
  // Property over a spread of targets and caps: boundaries are strictly
  // increasing, span [0, n], and every chunk respects the cap; a chunk
  // exceeds the target cost only when a single graph does.
  std::vector<std::uint64_t> costs;
  std::uint64_t state = 42;
  for (int i = 0; i < 200; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    costs.push_back(1 + (state >> 33) % 500);
  }
  for (const std::uint64_t target : {1ull, 17ull, 250ull, 1000ull, 100000ull}) {
    for (const std::size_t cap : {std::size_t{1}, std::size_t{7},
                                  std::size_t{64}, std::size_t{1000}}) {
      const auto bounds = partition(costs, target, cap);
      ASSERT_GE(bounds.size(), 2u);
      EXPECT_EQ(bounds.front(), 0u);
      EXPECT_EQ(bounds.back(), costs.size());
      for (std::size_t c = 0; c + 1 < bounds.size(); ++c) {
        ASSERT_LT(bounds[c], bounds[c + 1]);  // strictly increasing
        EXPECT_LE(bounds[c + 1] - bounds[c], cap);
        const std::uint64_t cost =
            schedule::chunk_cost(costs, bounds[c], bounds[c + 1]);
        if (bounds[c + 1] - bounds[c] > 1) {
          EXPECT_LE(cost, target);
        }
      }
    }
  }
}

TEST(Schedule, PartitionDegenerateCases) {
  // Empty batch: the single boundary 0.
  EXPECT_EQ(partition({}, 100, 64), (std::vector<std::uint32_t>{0}));
  // One graph, even one far above target, lands in one chunk.
  EXPECT_EQ(partition({1000}, 10, 64), (std::vector<std::uint32_t>{0, 1}));
  // Zero target degrades to per-graph chunks (never an empty chunk).
  EXPECT_EQ(partition({5, 5, 5}, 0, 64),
            (std::vector<std::uint32_t>{0, 1, 2, 3}));
  // max_graphs = 1 forces per-graph chunks regardless of target.
  EXPECT_EQ(partition({1, 1, 1}, 1000, 1),
            (std::vector<std::uint32_t>{0, 1, 2, 3}));
  // A huge target fuses everything.
  EXPECT_EQ(partition({5, 5, 5, 5}, 1000, 64),
            (std::vector<std::uint32_t>{0, 4}));
}

TEST(Schedule, PartitionEqualCostsCutsEvenly) {
  // 12 equal-cost graphs at a 3-graph target: four chunks of three.
  const std::vector<std::uint64_t> costs(12, 10);
  EXPECT_EQ(partition(costs, 30, 64),
            (std::vector<std::uint32_t>{0, 3, 6, 9, 12}));
}

TEST(Schedule, ImbalanceIsOneForPerfectCutsAndAboveOneForSkew) {
  const std::vector<std::uint64_t> even(8, 10);
  EXPECT_DOUBLE_EQ(plan_imbalance(even, partition(even, 20, 64)), 1.0);
  // One chunk of 100 vs one of 10: max/mean = 100 / 55.
  const std::vector<std::uint64_t> skew = {100, 10};
  const auto bounds = partition(skew, 50, 64);
  ASSERT_EQ(bounds.size(), 3u);
  EXPECT_DOUBLE_EQ(plan_imbalance(skew, bounds), 100.0 / 55.0);
  // Empty plans report neutral balance.
  EXPECT_DOUBLE_EQ(plan_imbalance({}, partition({}, 10, 64)), 1.0);
}

// ------------------------------------------------------------ env knobs ---

TEST(Schedule, EnvChunkOverrideParsesOncePerEngine) {
  ::unsetenv("PARAGRAPH_CHUNK");
  EXPECT_FALSE(env_chunk_override().has_value());
  ::setenv("PARAGRAPH_CHUNK", "17", 1);
  EXPECT_EQ(env_chunk_override().value(), 17u);
  ::setenv("PARAGRAPH_CHUNK", "0", 1);
  EXPECT_FALSE(env_chunk_override().has_value());
  ::setenv("PARAGRAPH_CHUNK", "-3", 1);
  EXPECT_FALSE(env_chunk_override().has_value());
  ::setenv("PARAGRAPH_CHUNK", "junk", 1);
  EXPECT_FALSE(env_chunk_override().has_value());
  ::setenv("PARAGRAPH_CHUNK", "999999999999", 1);
  EXPECT_EQ(env_chunk_override().value(), kMaxChunkSize);
  ::unsetenv("PARAGRAPH_CHUNK");
}

TEST(Schedule, SchedPolicyFromEnv) {
  ::unsetenv("PARAGRAPH_SCHED");
  EXPECT_EQ(sched_policy_from_env(), SchedPolicy::kCost);
  ::setenv("PARAGRAPH_SCHED", "fixed", 1);
  EXPECT_EQ(sched_policy_from_env(), SchedPolicy::kFixed);
  ::setenv("PARAGRAPH_SCHED", "cost", 1);
  EXPECT_EQ(sched_policy_from_env(), SchedPolicy::kCost);
  ::setenv("PARAGRAPH_SCHED", "nonsense", 1);
  EXPECT_EQ(sched_policy_from_env(), SchedPolicy::kCost);
  ::unsetenv("PARAGRAPH_SCHED");
}

// --------------------------------------------------- engine integration ---

/// Deterministic splitmix64 for synthetic graphs.
std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// Synthetic encoded graph with a tree relation, a chain relation, and
/// sparse random relations — enough structure to exercise every kernel.
EncodedGraph make_graph(std::size_t nodes, std::uint64_t seed) {
  EncodedGraph g;
  const std::size_t feat = kNodeFeatureDim;
  g.features = tensor::Matrix(nodes, feat);
  std::uint64_t rng = seed;
  for (std::size_t i = 0; i < nodes; ++i) {
    auto row = g.features.row_span(i);
    row[mix64(rng) % (feat - 1)] = 1.0f;
    row[feat - 1] = static_cast<float>(mix64(rng) % 5) * 0.5f;
  }
  const std::size_t num_relations = ModelConfig{}.num_relations;
  g.relations.num_nodes = nodes;
  g.relations.relations.resize(num_relations);
  std::vector<nn::RelEdge> edges;
  for (std::size_t r = 0; r < num_relations; ++r) {
    edges.clear();
    if (r == 0) {
      for (std::uint32_t i = 1; i < nodes; ++i)
        edges.push_back({i, static_cast<std::uint32_t>(i / 2), 0.5f});
    } else if (r == 1) {
      for (std::uint32_t i = 0; i + 1 < nodes; ++i)
        edges.push_back({i, i + 1, 1.0f});
    } else {
      for (std::size_t e = 0; e < nodes / 4; ++e)
        edges.push_back({static_cast<std::uint32_t>(mix64(rng) % nodes),
                         static_cast<std::uint32_t>(mix64(rng) % nodes),
                         1.0f});
    }
    g.relations.relations[r] = nn::RelationEdges::from_edges(edges);
  }
  return g;
}

struct MixFixture {
  std::vector<EncodedGraph> graphs;
  std::vector<std::array<float, 2>> aux;
};

MixFixture make_mix(const std::vector<std::size_t>& sizes) {
  MixFixture mix;
  std::uint64_t rng = 0xfeedface;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    mix.graphs.push_back(make_graph(sizes[i], mix64(rng)));
    const float t =
        static_cast<float>(i + 1) / static_cast<float>(sizes.size());
    mix.aux.push_back({t, 1.0f - t});
  }
  return mix;
}

std::vector<MixFixture> all_mixes() {
  std::vector<MixFixture> mixes;
  mixes.push_back(make_mix(std::vector<std::size_t>(24, 60)));  // uniform
  std::vector<std::size_t> zipf;
  for (std::size_t i = 0; i < 24; ++i)
    zipf.push_back(std::max<std::size_t>(10, 600 / (i + 1)));
  mixes.push_back(make_mix(zipf));
  std::vector<std::size_t> giant(12, 20);
  giant[0] = 1500;  // past the intra threshold: cost ~ 1500 + 2*~5.5k edges
  mixes.push_back(make_mix(giant));
  return mixes;
}

class EngineParity : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("PARAGRAPH_CHUNK");
    ::unsetenv("PARAGRAPH_SCHED");
    saved_threads_ = omp_get_max_threads();
  }
  void TearDown() override {
    ::unsetenv("PARAGRAPH_CHUNK");
    ::unsetenv("PARAGRAPH_SCHED");
    omp_set_num_threads(saved_threads_);
  }
  int saved_threads_ = 1;
};

TEST_F(EngineParity, BitwiseAcrossThreadCountsAndPoliciesForAllMixes) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 21});
  for (const MixFixture& mix : all_mixes()) {
    // Reference: 1 thread, cost policy.
    omp_set_num_threads(1);
    std::vector<double> reference(mix.graphs.size());
    {
      InferenceEngine engine(m);
      engine.predict_batch(mix.graphs, mix.aux, reference);
    }
    for (const char* policy : {"cost", "fixed"}) {
      ::setenv("PARAGRAPH_SCHED", policy, 1);
      for (int threads : {1, 2, 3}) {
        omp_set_num_threads(threads);
        InferenceEngine engine(m);
        std::vector<double> out(mix.graphs.size());
        engine.predict_batch(mix.graphs, mix.aux, out);
        EXPECT_EQ(out, reference)
            << "policy=" << policy << " threads=" << threads;
      }
    }
    ::unsetenv("PARAGRAPH_SCHED");
  }
}

TEST_F(EngineParity, ChunkOverrideForcesFixedPolicyAndPinnedWidth) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 4});
  {
    InferenceEngine engine(m);
    EXPECT_EQ(engine.chunk_policy(), SchedPolicy::kCost);
    EXPECT_EQ(engine.fuse_chunk(), 64u);
  }
  ::setenv("PARAGRAPH_SCHED", "fixed", 1);
  {
    InferenceEngine engine(m);
    EXPECT_EQ(engine.chunk_policy(), SchedPolicy::kFixed);
  }
  ::unsetenv("PARAGRAPH_SCHED");
  ::setenv("PARAGRAPH_CHUNK", "5", 1);
  {
    // An explicit width override implies the fixed policy even when
    // PARAGRAPH_SCHED asks for cost scheduling.
    ::setenv("PARAGRAPH_SCHED", "cost", 1);
    InferenceEngine engine(m);
    EXPECT_EQ(engine.chunk_policy(), SchedPolicy::kFixed);
    EXPECT_EQ(engine.fuse_chunk(), 5u);
  }
}

TEST_F(EngineParity, ScheduleStatsCountBatchesChunksAndRows) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 9});
  const MixFixture mix = make_mix(std::vector<std::size_t>(16, 50));
  std::size_t total_rows = 0;
  for (const EncodedGraph& g : mix.graphs) total_rows += g.features.rows();

  InferenceEngine engine(m);
  EXPECT_EQ(engine.schedule_stats().batches, 0u);
  std::vector<double> out(mix.graphs.size());
  engine.predict_batch(mix.graphs, mix.aux, out);

  const ScheduleStats stats = engine.schedule_stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.graphs, mix.graphs.size());
  EXPECT_EQ(stats.rows, total_rows);
  EXPECT_GE(stats.chunks, 1u);
  EXPECT_LE(stats.chunks, mix.graphs.size());
  EXPECT_GE(stats.last_imbalance, 1.0);

  engine.predict_batch(mix.graphs, mix.aux, out);
  EXPECT_EQ(engine.schedule_stats().batches, 2u);
  EXPECT_EQ(engine.schedule_stats().graphs, 2 * mix.graphs.size());
}

TEST_F(EngineParity, GiantGraphRunsInIntraParallelPhase) {
  // With >1 thread, the one-giant mix must route its oversized chunk
  // through the serial intra-parallel phase (stats.intra_chunks > 0) and
  // still match the 1-thread reference bitwise (covered above). On a
  // 1-core runner the engine never promises an intra phase — chunk-level
  // serial execution already uses the whole machine — so gate on threads.
  if (omp_get_max_threads() < 2) omp_set_num_threads(2);
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 33});
  std::vector<std::size_t> sizes(8, 20);
  sizes[0] = 1500;
  const MixFixture mix = make_mix(sizes);
  InferenceEngine engine(m);
  std::vector<double> out(mix.graphs.size());
  engine.predict_batch(mix.graphs, mix.aux, out);
  EXPECT_GE(engine.schedule_stats().intra_chunks, 1u);
}

}  // namespace
}  // namespace pg::model
