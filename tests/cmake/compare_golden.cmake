# Byte-compares every checked-in golden-corpus file against a regenerated
# copy (golden_corpus_regen fixture). Any difference means the frontend /
# graph builder / encoder / binary format drifted without the golden corpus
# being regenerated — exactly the silent drift this test exists to catch.
#
# Usage: cmake -DGOLDEN_DIR=... -DREGEN_DIR=... -P compare_golden.cmake
# Union of both directories: a regeneration that adds or renames files must
# fail here too, not only in CI's `diff -r`.
file(GLOB golden_files RELATIVE "${GOLDEN_DIR}" "${GOLDEN_DIR}/*")
file(GLOB regen_files RELATIVE "${REGEN_DIR}" "${REGEN_DIR}/*")
list(APPEND golden_files ${regen_files})
list(REMOVE_DUPLICATES golden_files)
list(SORT golden_files)
if(NOT golden_files)
  message(FATAL_ERROR "no files found under ${GOLDEN_DIR} or ${REGEN_DIR}")
endif()

set(drifted "")
foreach(file IN LISTS golden_files)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E compare_files
            "${GOLDEN_DIR}/${file}" "${REGEN_DIR}/${file}"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    list(APPEND drifted "${file}")
  endif()
endforeach()

if(drifted)
  message(FATAL_ERROR "regenerated corpus differs from tests/golden for: "
          "${drifted} — encoder/builder drift; if intentional, regenerate "
          "with `paragraph-cli corpus --golden --out tests/golden`")
endif()
list(LENGTH golden_files num_files)
message(STATUS "golden corpus matches: all ${num_files} files identical")
