// Tests for model checkpointing and the log-runtime target extension.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "model/checkpoint.hpp"
#include "model/trainer.hpp"
#include "sim/platform.hpp"
#include "support/check.hpp"

namespace pg::model {
namespace {

EncodedGraph tiny_graph() {
  EncodedGraph g;
  g.features = tensor::Matrix(4, kNodeFeatureDim);
  for (std::size_t i = 0; i < 4; ++i) g.features(i, i) = 1.0f;
  g.relations.num_nodes = 4;
  g.relations.relations.resize(graph::kNumEdgeTypes);
  g.relations.relations[0] = nn::RelationEdges::from_edges(
      {{0, 1, 0.5f}, {1, 2, 1.0f}, {2, 3, 0.25f}});
  return g;
}

CheckpointScalers demo_scalers() {
  CheckpointScalers scalers;
  scalers.target.fit_bounds(10.0, 1e6);
  scalers.teams.fit_bounds(1.0, 1024.0);
  scalers.threads.fit_bounds(1.0, 256.0);
  scalers.child_weight_scale = 1234.5;
  scalers.log_target = true;  // must survive the round trip (PGCKPT02)
  return scalers;
}

TEST(Checkpoint, RoundTripRestoresPredictions) {
  ModelConfig config{.hidden_dim = 8, .seed = 21};
  ParaGraphModel original(config);
  const auto graph = tiny_graph();
  const std::array<float, 2> aux = {0.25f, 0.75f};
  const double before = original.predict(graph, aux);

  std::stringstream buffer;
  save_checkpoint(buffer, original, demo_scalers());

  ParaGraphModel restored(ModelConfig{.hidden_dim = 8, .seed = 999});
  EXPECT_NE(restored.predict(graph, aux), before);  // different init
  const CheckpointScalers scalers = load_checkpoint(buffer, restored);
  EXPECT_EQ(restored.predict(graph, aux), before);
  EXPECT_DOUBLE_EQ(scalers.target.min_value(), 10.0);
  EXPECT_DOUBLE_EQ(scalers.target.max_value(), 1e6);
  EXPECT_DOUBLE_EQ(scalers.child_weight_scale, 1234.5);
  EXPECT_TRUE(scalers.log_target);
}

TEST(Checkpoint, FileRoundTrip) {
  const auto path =
      (std::filesystem::temp_directory_path() / "pg_ckpt_test.bin").string();
  ModelConfig config{.hidden_dim = 8, .seed = 4};
  ParaGraphModel original(config);
  save_checkpoint_file(path, original, demo_scalers());

  ParaGraphModel restored(ModelConfig{.hidden_dim = 8, .seed = 5});
  const auto scalers = load_checkpoint_file(path, restored);
  const auto graph = tiny_graph();
  const std::array<float, 2> aux = {0.1f, 0.2f};
  EXPECT_EQ(restored.predict(graph, aux), original.predict(graph, aux));
  EXPECT_DOUBLE_EQ(scalers.teams.max_value(), 1024.0);
  std::filesystem::remove(path);
}

TEST(Checkpoint, RejectsWrongArchitecture) {
  std::stringstream buffer;
  ParaGraphModel small(ModelConfig{.hidden_dim = 8});
  save_checkpoint(buffer, small, demo_scalers());
  ParaGraphModel big(ModelConfig{.hidden_dim = 16});
  EXPECT_THROW(load_checkpoint(buffer, big), InternalError);
}

TEST(Checkpoint, RejectsBadMagic) {
  std::stringstream buffer("definitely-not-a-checkpoint");
  ParaGraphModel m(ModelConfig{.hidden_dim = 8});
  EXPECT_THROW(load_checkpoint(buffer, m), InternalError);
}

TEST(Checkpoint, RejectsTruncated) {
  std::stringstream buffer;
  ParaGraphModel m(ModelConfig{.hidden_dim = 8});
  save_checkpoint(buffer, m, demo_scalers());
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  ParaGraphModel m2(ModelConfig{.hidden_dim = 8});
  EXPECT_THROW(load_checkpoint(truncated, m2), InternalError);
}

TEST(Checkpoint, MissingFileThrows) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8});
  EXPECT_THROW(load_checkpoint_file("/nonexistent/path.bin", m), InternalError);
}

// -------------------------------------------------------- log target ------

TEST(LogTarget, ToFromTargetRoundTrip) {
  SampleSet set;
  set.log_target = true;
  set.target_scaler.fit_bounds(std::log(10.0), std::log(1e7));
  for (double runtime : {10.0, 123.4, 5e4, 1e7}) {
    EXPECT_NEAR(set.from_target(set.to_target(runtime)), runtime,
                1e-9 * runtime);
  }
}

TEST(LogTarget, LinearSetUnchangedBehaviour) {
  SampleSet set;
  set.log_target = false;
  set.target_scaler.fit_bounds(0.0, 100.0);
  EXPECT_DOUBLE_EQ(set.to_target(50.0), 0.5);
  EXPECT_DOUBLE_EQ(set.from_target(0.5), 50.0);
  EXPECT_DOUBLE_EQ(set.from_target(-1.0), 0.0);  // clamped at physical floor
}

TEST(LogTarget, SampleBuilderFitsLogScaler) {
  dataset::GenerationConfig gen;
  gen.scale = RunScale::kSmoke;
  const auto points = dataset::generate_dataset(sim::summit_v100(), gen);
  dataset::SampleBuildConfig build;
  build.log_target = true;
  const auto set = dataset::build_sample_set(points, build);
  EXPECT_TRUE(set.log_target);
  for (const auto& s : set.train) {
    EXPECT_GE(s.target_scaled, -1e-9);
    EXPECT_LE(s.target_scaled, 1.0 + 1e-9);
    EXPECT_NEAR(set.from_target(s.target_scaled), s.runtime_us,
                1e-6 * s.runtime_us);
  }
}

TEST(LogTarget, TrainingConvergesAndReportsRuntimeDomainRmse) {
  dataset::GenerationConfig gen;
  gen.scale = RunScale::kSmoke;
  const auto points = dataset::generate_dataset(sim::summit_v100(), gen);
  dataset::SampleBuildConfig build;
  build.log_target = true;
  const auto set = dataset::build_sample_set(points, build);
  ParaGraphModel m(ModelConfig{.hidden_dim = 16, .seed = 2});
  TrainConfig train;
  train.epochs = 25;
  const auto result = train_model(m, set, train);
  // RMSE is still reported in microseconds (runtime domain).
  EXPECT_GT(result.final_rmse_us, 0.0);
  EXPECT_LT(result.history.back().train_mse_scaled,
            result.history.front().train_mse_scaled);
  for (double p : result.val_predictions_us) EXPECT_GT(p, 0.0);
}

}  // namespace
}  // namespace pg::model
