// End-to-end integration tests: the full paper pipeline (generate ->
// graphs -> train -> evaluate) at smoke scale, including the qualitative
// claims the benches reproduce quantitatively (ablation ordering, cross-
// device applicability).
#include <gtest/gtest.h>

#include "compoff/compoff.hpp"
#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "model/metrics.hpp"
#include "model/trainer.hpp"
#include "sim/platform.hpp"

namespace pg {
namespace {

dataset::GenerationConfig smoke_config() {
  dataset::GenerationConfig config;
  config.scale = RunScale::kSmoke;
  return config;
}

model::TrainResult train_on(const sim::Platform& platform,
                            graph::Representation representation,
                            int epochs, model::SampleSet* set_out = nullptr) {
  const auto points = dataset::generate_dataset(platform, smoke_config());
  dataset::SampleBuildConfig build;
  build.representation = representation;
  model::SampleSet set = dataset::build_sample_set(points, build);
  model::ModelConfig model_config;
  model_config.hidden_dim = 16;
  model::ParaGraphModel gnn(model_config);
  model::TrainConfig train_config;
  train_config.epochs = epochs;
  auto result = model::train_model(gnn, set, train_config);
  if (set_out != nullptr) *set_out = std::move(set);
  return result;
}

TEST(Integration, TrainingConvergesOnGpuPlatform) {
  const auto result =
      train_on(sim::summit_v100(), graph::Representation::kParaGraph, 30);
  ASSERT_EQ(result.history.size(), 30u);
  // Validation error improves substantially over training.
  double early = result.history[1].val_rmse_us;
  double late = result.final_rmse_us;
  EXPECT_LT(late, early);
  // And the normalised RMSE lands in a sane band (paper: ~1e-3..1e-2; smoke
  // scale is far smaller, so allow up to ~6e-2).
  EXPECT_LT(result.final_norm_rmse, 0.06);
}

TEST(Integration, TrainingWorksOnCpuPlatform) {
  // ParaGraph's headline advantage over COMPOFF: it models CPUs too.
  const auto result =
      train_on(sim::corona_epyc7401(), graph::Representation::kParaGraph, 30);
  EXPECT_LT(result.final_norm_rmse, 0.08);
}

TEST(Integration, AblationOrderingParaGraphBeatsRawAst) {
  // Table IV's headline: RawAST >> ParaGraph error. (AugmentedAST sits in
  // between in the paper; at smoke scale its gap to RawAST can be noisy, so
  // the test pins only the robust end-to-end ordering.)
  const auto raw =
      train_on(sim::corona_mi50(), graph::Representation::kRawAst, 25);
  const auto para =
      train_on(sim::corona_mi50(), graph::Representation::kParaGraph, 25);
  EXPECT_LT(para.final_rmse_us, raw.final_rmse_us)
      << "weighted representation must beat the raw AST";
}

TEST(Integration, BinnedAndPerAppMetricsComputable) {
  model::SampleSet set;
  const auto result =
      train_on(sim::summit_v100(), graph::Representation::kParaGraph, 15, &set);
  const auto bins =
      model::binned_relative_error(set.validation, result.val_predictions_us);
  EXPECT_FALSE(bins.empty());
  for (const auto& b : bins) EXPECT_LT(b.relative_error, 0.5);

  const auto apps =
      model::per_app_error(set.validation, result.val_predictions_us);
  EXPECT_GE(apps.size(), 4u);
  for (const auto& a : apps) EXPECT_LT(a.error_rate, 0.5);
}

TEST(Integration, CompoffTrainsOnGeneratedGpuData) {
  const auto points = dataset::generate_dataset(sim::summit_v100(), smoke_config());
  compoff::CompoffConfig config;
  config.epochs = 800;  // smoke scale has ~300 points; needs longer training
  const auto eval = compoff::train_and_evaluate(points, config);
  EXPECT_GT(eval.actual_us.size(), 10u);
  EXPECT_LT(eval.norm_rmse, 0.25);
}

TEST(Integration, FullPipelineIsDeterministic) {
  const auto a = train_on(sim::summit_v100(), graph::Representation::kParaGraph, 5);
  const auto b = train_on(sim::summit_v100(), graph::Representation::kParaGraph, 5);
  // Same seeds + same thread count => bit-identical history.
  ASSERT_EQ(a.history.size(), b.history.size());
  EXPECT_DOUBLE_EQ(a.final_rmse_us, b.final_rmse_us);
}

}  // namespace
}  // namespace pg
