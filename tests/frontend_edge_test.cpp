// Frontend edge cases: C constructs at the boundary of the supported
// subset, error recovery, and the exact tree shapes downstream passes
// depend on.
#include <gtest/gtest.h>

#include "frontend/ast_dump.hpp"
#include "frontend/const_eval.hpp"
#include "frontend/parser.hpp"

namespace pg::frontend {
namespace {

ParseResult ok(std::string_view source) {
  auto r = parse_source(source);
  EXPECT_TRUE(r.ok()) << r.diagnostics.summary();
  return r;
}

std::size_t count_kind(const AstNode* root, NodeKind kind) {
  std::size_t n = 0;
  walk(root, [&](const AstNode* node, int) {
    n += node->is(kind);
    return true;
  });
  return n;
}

TEST(FrontendEdge, CastExpression) {
  auto r = ok("double g(int a) { return (double)a / 2; }");
  EXPECT_GE(count_kind(r.root(), NodeKind::kImplicitCastExpr), 1u);
}

TEST(FrontendEdge, SizeofType) {
  auto r = ok("int g(void) { return sizeof(double); }");
  const AstNode* ret = nullptr;
  walk(r.root(), [&](const AstNode* n, int) {
    if (ret == nullptr && n->is(NodeKind::kReturnStmt)) ret = n;
    return ret == nullptr;
  });
  ASSERT_NE(ret, nullptr);
  EXPECT_EQ(evaluate_integer_constant(ret->child(0)), 8);
}

TEST(FrontendEdge, SizeofExpression) {
  auto r = ok("int g(void) { int x; return sizeof(x); }");
  EXPECT_EQ(count_kind(r.root(), NodeKind::kUnaryOperator), 1u);
}

TEST(FrontendEdge, CommaExpression) {
  auto r = ok("void f(void) { int a; int b; a = 1, b = 2; }");
  bool found_comma = false;
  walk(r.root(), [&](const AstNode* n, int) {
    if (n->is(NodeKind::kBinaryOperator) && n->text() == ",") found_comma = true;
    return true;
  });
  EXPECT_TRUE(found_comma);
}

TEST(FrontendEdge, NestedConditional) {
  auto r = ok("int g(int x) { return x > 2 ? 1 : x > 1 ? 2 : 3; }");
  EXPECT_EQ(count_kind(r.root(), NodeKind::kConditionalOperator), 2u);
}

TEST(FrontendEdge, InitListInitializer) {
  auto r = ok("void f(void) { double v[3] = {1.0, 2.0, 3.0}; }");
  EXPECT_EQ(count_kind(r.root(), NodeKind::kInitListExpr), 1u);
}

TEST(FrontendEdge, ForWithCommaIncrement) {
  auto r = ok("void f(void) { int j; for (int i = 0; i < 4; i++, j++) {} }");
  EXPECT_EQ(count_kind(r.root(), NodeKind::kForStmt), 1u);
}

TEST(FrontendEdge, DanglingElseBindsToInnerIf) {
  auto r = ok("void f(int a, int b) { if (a > 0) if (b > 0) b = 1; else b = 2; }");
  const AstNode* outer = nullptr;
  walk(r.root(), [&](const AstNode* n, int) {
    if (outer == nullptr && n->is(NodeKind::kIfStmt)) outer = n;
    return outer == nullptr;
  });
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->num_children(), 2u);  // outer if has NO else
  EXPECT_EQ(outer->if_then()->num_children(), 3u);  // inner if owns the else
}

TEST(FrontendEdge, UnaryMinusPrecedence) {
  auto r = ok("int g(void) { return -2 * 3; }");
  const AstNode* ret = nullptr;
  walk(r.root(), [&](const AstNode* n, int) {
    if (ret == nullptr && n->is(NodeKind::kReturnStmt)) ret = n;
    return ret == nullptr;
  });
  EXPECT_EQ(ret->child(0)->text(), "*");
  EXPECT_EQ(evaluate_integer_constant(ret->child(0)), -6);
}

TEST(FrontendEdge, LogicalOperatorsShortCircuitShape) {
  auto r = ok("int g(int a, int b) { return a > 0 && b > 0 || a < -1; }");
  const AstNode* ret = nullptr;
  walk(r.root(), [&](const AstNode* n, int) {
    if (ret == nullptr && n->is(NodeKind::kReturnStmt)) ret = n;
    return ret == nullptr;
  });
  EXPECT_EQ(ret->child(0)->text(), "||");  // || binds looser than &&
}

TEST(FrontendEdge, GlobalArrayExtentFromExpression) {
  auto r = ok("double grid[1 << 4];");
  const AstNode* var = nullptr;
  walk(r.root(), [&](const AstNode* n, int) {
    if (var == nullptr && n->is(NodeKind::kVarDecl)) var = n;
    return var == nullptr;
  });
  ASSERT_NE(var, nullptr);
  // Non-literal extents fold to kUnknownExtent at parse time (documented);
  // the dataset generator always substitutes plain literals.
  ASSERT_EQ(var->type().array_extents.size(), 1u);
}

TEST(FrontendEdge, ForwardDeclarationThenCall) {
  auto r = ok(R"(
    double helper(double x);
    double g(double y) { return helper(y); }
  )");
  const AstNode* call = nullptr;
  walk(r.root(), [&](const AstNode* n, int) {
    if (call == nullptr && n->is(NodeKind::kCallExpr)) call = n;
    return call == nullptr;
  });
  ASSERT_NE(call, nullptr);
  EXPECT_NE(call->child(0)->referenced_decl(), nullptr);
}

TEST(FrontendEdge, WhileConditionWithSideEffect) {
  auto r = ok("void f(int n) { while (n-- > 0) {} }");
  EXPECT_EQ(count_kind(r.root(), NodeKind::kWhileStmt), 1u);
}

TEST(FrontendEdge, DeeplyNestedParens) {
  auto r = ok("int g(void) { return ((((1)))); }");
  EXPECT_EQ(count_kind(r.root(), NodeKind::kParenExpr), 4u);
}

TEST(FrontendEdge, LongLongAndUnsignedTypes) {
  auto r = ok("void f(void) { unsigned long a = 1; long long b = 2; unsigned c = 3; }");
  std::size_t decls = count_kind(r.root(), NodeKind::kVarDecl);
  EXPECT_EQ(decls, 3u);
}

TEST(FrontendEdge, ErrorRecoveryReportsFirstProblem) {
  auto r = parse_source("void f(void) { int x = (; }");
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.diagnostics.entries().empty());
}

TEST(FrontendEdge, EmptyTranslationUnitIsValid) {
  auto r = ok("");
  EXPECT_EQ(r.root()->num_children(), 0u);
}

TEST(FrontendEdge, PragmaInsideNestedBlock) {
  auto r = ok(R"(
    double v[64];
    void f(void) {
      {
        #pragma omp parallel for num_threads(4)
        for (int i = 0; i < 64; i++) v[i] = 0.0;
      }
    }
  )");
  EXPECT_EQ(count_kind(r.root(), NodeKind::kOmpParallelForDirective), 1u);
}

TEST(FrontendEdge, TwoKernelsInOneUnit) {
  auto r = ok(R"(
    double a[32];
    void k1(void) {
      #pragma omp parallel for num_threads(2)
      for (int i = 0; i < 32; i++) a[i] = 0.0;
    }
    void k2(void) {
      #pragma omp parallel for num_threads(4)
      for (int i = 0; i < 32; i++) a[i] = 1.0;
    }
  )");
  EXPECT_EQ(count_kind(r.root(), NodeKind::kOmpParallelForDirective), 2u);
  EXPECT_EQ(count_kind(r.root(), NodeKind::kFunctionDecl), 2u);
}

}  // namespace
}  // namespace pg::frontend
