// Tests for the COMPOFF baseline: feature extraction and the MLP cost model.
#include <gtest/gtest.h>

#include "compoff/compoff.hpp"
#include "support/check.hpp"
#include "support/stats.hpp"

namespace pg::compoff {
namespace {

dataset::RawDataPoint make_point(double flops, double transfer,
                                 std::int64_t teams, std::int64_t threads) {
  dataset::RawDataPoint p;
  p.app = "MM";
  p.kernel = "matmul";
  p.variant = transfer > 0 ? "gpu_mem" : "gpu";
  p.num_teams = teams;
  p.num_threads = threads;
  p.profile.flops = flops;
  p.profile.int_ops = flops * 0.1;
  p.profile.loads = flops * 0.5;
  p.profile.stores = flops * 0.1;
  p.profile.transfer_to_bytes = transfer;
  p.profile.loop_depth = 3;
  p.profile.parallel_iterations = static_cast<std::int64_t>(flops / 100.0) + 1;
  p.profile.collapse_depth = 1;
  // A plausible synthetic runtime: work / throughput + transfer.
  p.runtime_us = flops / 1e4 + transfer / 1e4 + 30.0;
  return p;
}

std::vector<dataset::RawDataPoint> synthetic_points(std::size_t n) {
  std::vector<dataset::RawDataPoint> points;
  for (std::size_t i = 0; i < n; ++i) {
    const double flops = 1e5 * static_cast<double>(1 + (i % 23));
    const double transfer = (i % 2 == 0) ? 1e6 : 0.0;
    points.push_back(make_point(flops, transfer, 1 << (i % 5), 64));
  }
  return points;
}

TEST(CompoffFeatures, VectorHasDocumentedLayout) {
  const auto p = make_point(1e6, 2e6, 128, 256);
  const auto f = extract_features(p);
  ASSERT_EQ(f.size(), kNumFeatures);
  EXPECT_DOUBLE_EQ(f[0], 1e6);  // flops (raw counts, per COMPOFF's design)
  EXPECT_DOUBLE_EQ(f[4], 2e6);  // transfer bytes
  EXPECT_DOUBLE_EQ(f[5], 3.0);  // loop depth
  EXPECT_DOUBLE_EQ(f[7], 1.0);  // collapse depth
}

TEST(CompoffFeatures, NoLaunchConfigFeatures) {
  // Per-kernel static cost model: identical kernel code under different
  // launch configurations maps to the same feature vector.
  const auto a = extract_features(make_point(1e6, 0, 32, 64));
  const auto b = extract_features(make_point(1e6, 0, 1024, 256));
  EXPECT_EQ(a, b);
}

TEST(CompoffFeatures, MoreWorkBiggerFeatures) {
  const auto small = extract_features(make_point(1e4, 0, 4, 64));
  const auto big = extract_features(make_point(1e8, 0, 4, 64));
  EXPECT_GT(big[0], small[0]);
  EXPECT_GT(big[3], small[3]);
}

TEST(CompoffModel, PredictBeforeTrainThrows) {
  CompoffModel model(CompoffConfig{}, kNumFeatures);
  EXPECT_THROW((void)model.predict_us(make_point(1e6, 0, 4, 64)), InternalError);
}

TEST(CompoffModel, LearnsMonotonicRuntime) {
  CompoffConfig config;
  config.epochs = 300;
  CompoffModel model(config, kNumFeatures);
  const auto points = synthetic_points(200);
  const auto losses = model.train(points);
  ASSERT_EQ(losses.size(), 300u);
  EXPECT_LT(losses.back(), losses.front() * 0.1);

  // Predictions preserve the work ordering.
  const double small = model.predict_us(make_point(1e5, 0, 4, 64));
  const double big = model.predict_us(make_point(2.2e6, 0, 4, 64));
  EXPECT_GT(big, small);
}

TEST(CompoffModel, PredictionsClampedAtZero) {
  CompoffConfig config;
  config.epochs = 50;
  CompoffModel model(config, kNumFeatures);
  const auto points = synthetic_points(100);
  model.train(points);
  const double pred = model.predict_us(make_point(1.0, 0, 1, 1));
  EXPECT_GE(pred, 0.0);  // physical floor only, no dataset-min prior
}

TEST(CompoffEvaluate, SplitsAndReportsMetrics) {
  const auto points = synthetic_points(300);
  CompoffConfig config;
  config.epochs = 200;
  const CompoffEvaluation eval = train_and_evaluate(points, config);
  EXPECT_EQ(eval.actual_us.size(), 30u);  // 10% validation
  EXPECT_EQ(eval.predicted_us.size(), eval.actual_us.size());
  EXPECT_GT(eval.rmse_us, 0.0);
  EXPECT_LT(eval.norm_rmse, 0.2);  // learnable synthetic problem
  // Predictions correlate strongly with actuals.
  EXPECT_GT(stats::pearson(eval.actual_us, eval.predicted_us), 0.9);
}

TEST(CompoffEvaluate, TinyDatasetThrows) {
  EXPECT_THROW(train_and_evaluate(synthetic_points(5), {}), InternalError);
}

}  // namespace
}  // namespace pg::compoff
