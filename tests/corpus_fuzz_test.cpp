// Mutation fuzzing of the format-v2 .pgds container.
//
// A well-formed indexed corpus is mutated 1000 seeded ways — bit flips,
// truncations, splices, zeroed ranges, random u64 overwrites (which land on
// offsets, lengths, counts, and checksums) — and every mutant is pushed
// through both reader paths (DatasetView open + full decode, and the
// streaming DatasetReader). The contract: a mutant either reads back or
// throws io::FormatError; nothing may crash, hang, over-read the buffer
// (ASan-visible via the heap-exact memory constructor), or raise any other
// exception type. Build with -DPARAGRAPH_SANITIZE=ON to run this under
// ASan+UBSan.
//
// Targeted cases then pin the index-specific failure modes: lying counts
// (rejected *before* allocation), out-of-bounds and overlapping index
// entries, flipped footers, and checksums that disagree with record bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "io/dataset_view.hpp"
#include "io/pgraph_io.hpp"
#include "model/encoding.hpp"

namespace pg::io {
namespace {

std::string base_corpus() {
  auto r = frontend::parse_source(
      "void f(void) { for (int i = 0; i < 12; i++) { double x = 1.0; } }");
  EXPECT_TRUE(r.ok());
  graph::BuildOptions options;
  options.representation = graph::Representation::kParaGraph;
  const auto graph = graph::build_graph(r.root(), options);

  model::SampleSet set;
  set.target_scaler.fit_bounds(0.0, 1e6);
  set.teams_scaler.fit_bounds(1.0, 1024.0);
  set.threads_scaler.fit_bounds(1.0, 1024.0);
  for (int i = 0; i < 6; ++i) {
    model::TrainingSample s;
    s.graph = model::encode_graph(graph, 12.0);
    s.aux = {0.25f * static_cast<float>(i % 4), 0.5f};
    s.runtime_us = 100.0 * (i + 1);
    s.target_scaled = set.target_scaler.transform(s.runtime_us);
    s.app_id = i;
    s.app_name = "app" + std::to_string(i);
    s.variant = i % 2 ? "cpu" : "gpu";
    (i % 3 ? set.train : set.validation).push_back(s);
  }
  std::ostringstream os(std::ios::binary);
  write_sample_set(os, set, "fuzz", "ParaGraph", 7, 2);
  return os.str();
}

/// Exercises both reader paths over `bytes`. FormatError is the only
/// acceptable failure; anything else fails the test. The bytes are staged
/// in a heap buffer sized exactly to the payload so any over-read past the
/// end trips AddressSanitizer instead of sliding by in string slack.
void expect_graceful(const std::string& bytes, std::uint64_t seed) {
  const auto heap = std::make_unique<unsigned char[]>(
      bytes.size() ? bytes.size() : 1);
  std::memcpy(heap.get(), bytes.data(), bytes.size());
  try {
    DatasetView view(heap.get(), bytes.size());
    model::TrainingSample sample;
    for (std::size_t i = 0; i < view.size(); ++i) {
      try {
        view.decode(i, sample);
      } catch (const FormatError&) {
        // per-record corruption — acceptable
      }
    }
  } catch (const FormatError&) {
    // rejected at open — acceptable
  } catch (const std::exception& e) {
    FAIL() << "seed " << seed << ": DatasetView raised non-FormatError: "
           << e.what();
  }

  try {
    std::istringstream is(bytes, std::ios::binary);
    DatasetReader reader(is);
    model::TrainingSample sample;
    Split split = Split::kTrain;
    while (reader.next(sample, split)) {
    }
  } catch (const FormatError&) {
  } catch (const std::exception& e) {
    FAIL() << "seed " << seed << ": DatasetReader raised non-FormatError: "
           << e.what();
  }
}

TEST(CorpusFuzz, ThousandSeededMutationsNeverCrash) {
  const std::string base = base_corpus();
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    std::mt19937_64 rng(seed);
    std::string bytes = base;
    const std::size_t n = bytes.size();
    // 1-3 stacked mutations per seed.
    const int rounds = 1 + static_cast<int>(rng() % 3);
    for (int round = 0; round < rounds; ++round) {
      switch (rng() % 6) {
        case 0: {  // flip one bit
          const std::size_t at = rng() % bytes.size();
          bytes[at] = static_cast<char>(bytes[at] ^ (1u << (rng() % 8)));
          break;
        }
        case 1:  // truncate
          bytes.resize(rng() % (bytes.size() + 1));
          break;
        case 2: {  // splice a random chunk over another position
          if (bytes.size() < 2) break;
          const std::size_t len = 1 + rng() % 64;
          const std::size_t src = rng() % bytes.size();
          const std::size_t dst = rng() % bytes.size();
          for (std::size_t k = 0; k < len; ++k)
            bytes[(dst + k) % bytes.size()] = bytes[(src + k) % bytes.size()];
          break;
        }
        case 3: {  // zero a range
          const std::size_t at = rng() % bytes.size();
          const std::size_t len =
              std::min<std::size_t>(1 + rng() % 128, bytes.size() - at);
          std::memset(bytes.data() + at, 0, len);
          break;
        }
        case 4: {  // random u64 overwrite (hits offsets/lengths/counts)
          if (bytes.size() < 8) break;
          const std::size_t at = rng() % (bytes.size() - 7);
          const std::uint64_t v = rng();
          std::memcpy(bytes.data() + at, &v, 8);
          break;
        }
        default:  // append garbage
          for (std::size_t k = 0, len = 1 + rng() % 32; k < len; ++k)
            bytes.push_back(static_cast<char>(rng() & 0xFF));
      }
      if (bytes.empty()) break;
    }
    expect_graceful(bytes, seed);
    (void)n;
  }
}

// --- targeted index attacks -----------------------------------------------

struct Layout {
  std::string bytes;
  std::size_t footer;        // 20-byte footer start
  std::size_t index_offset;  // "PGIX" marker
  std::size_t index_size;
  std::size_t count_field;   // u64 record count inside the index
};

Layout layout() {
  Layout l;
  l.bytes = base_corpus();
  l.footer = l.bytes.size() - 20;
  std::uint64_t off = 0;
  std::uint64_t size = 0;
  std::memcpy(&off, l.bytes.data() + l.footer, 8);
  std::memcpy(&size, l.bytes.data() + l.footer + 8, 8);
  l.index_offset = static_cast<std::size_t>(off);
  l.index_size = static_cast<std::size_t>(size);
  l.count_field = l.index_offset + 4;
  return l;
}

void expect_open_rejected(const std::string& bytes, const char* what) {
  const auto heap = std::make_unique<unsigned char[]>(bytes.size());
  std::memcpy(heap.get(), bytes.data(), bytes.size());
  EXPECT_THROW(DatasetView(heap.get(), bytes.size()), FormatError) << what;
}

TEST(CorpusFuzz, LyingIndexCountIsRejectedBeforeAllocation) {
  // A count claiming 2^28 records against a 170-byte index must be rejected
  // by arithmetic, not by attempting a 2^28-entry allocation (under ASan an
  // eager allocation of that size aborts the run).
  Layout l = layout();
  const std::uint64_t lie = std::uint64_t{1} << 28;
  std::memcpy(l.bytes.data() + l.count_field, &lie, 8);
  expect_open_rejected(l.bytes, "huge count");

  const std::uint64_t off_by_one = 7;  // real count is 6
  std::memcpy(l.bytes.data() + l.count_field, &off_by_one, 8);
  expect_open_rejected(l.bytes, "off-by-one count");
}

TEST(CorpusFuzz, OutOfBoundsIndexOffsetIsRejected) {
  Layout l = layout();
  // First entry's record offset, pushed past EOF. The index self-checksum
  // would catch this too, so recompute it -- the offset bound check itself
  // must fire.
  const std::size_t entry0 = l.index_offset + 12;
  const std::uint64_t huge = std::uint64_t{1} << 40;
  std::memcpy(l.bytes.data() + entry0, &huge, 8);
  const std::size_t entries = l.index_size - 20;
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < entries; ++i) {
    h ^= static_cast<unsigned char>(l.bytes[entry0 + i]);
    h *= 0x100000001b3ull;
  }
  std::memcpy(l.bytes.data() + l.index_offset + 12 + entries, &h, 8);
  expect_open_rejected(l.bytes, "OOB offset");
}

TEST(CorpusFuzz, OverlappingIndexEntriesAreRejected) {
  Layout l = layout();
  // Shrink entry 0's length so entry 1 would overlap it (offsets must be
  // contiguous); fix the self-checksum so only the overlap check can fire.
  const std::size_t entry0 = l.index_offset + 12;
  std::uint64_t len = 0;
  std::memcpy(&len, l.bytes.data() + entry0 + 8, 8);
  len -= 4;
  std::memcpy(l.bytes.data() + entry0 + 8, &len, 8);
  const std::size_t entries = l.index_size - 20;
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < entries; ++i) {
    h ^= static_cast<unsigned char>(l.bytes[entry0 + i]);
    h *= 0x100000001b3ull;
  }
  std::memcpy(l.bytes.data() + l.index_offset + 12 + entries, &h, 8);
  expect_open_rejected(l.bytes, "overlapping entries");
}

TEST(CorpusFuzz, FlippedFooterBytesAreRejected) {
  const Layout l = layout();
  for (std::size_t at = l.footer; at < l.bytes.size(); ++at) {
    std::string mutant = l.bytes;
    mutant[at] = static_cast<char>(mutant[at] ^ 0xFF);
    const auto heap = std::make_unique<unsigned char[]>(mutant.size());
    std::memcpy(heap.get(), mutant.data(), mutant.size());
    EXPECT_THROW(DatasetView(heap.get(), mutant.size()), FormatError)
        << "footer byte " << (at - l.footer);
  }
}

TEST(CorpusFuzz, FlippedIndexBytesAreRejectedAtOpen) {
  // Any single-bit damage to the index section (marker, count, entries,
  // self-checksum) must be caught at open time.
  const Layout l = layout();
  for (std::size_t at = l.index_offset; at < l.footer; at += 7) {
    std::string mutant = l.bytes;
    mutant[at] = static_cast<char>(mutant[at] ^ 0x10);
    const auto heap = std::make_unique<unsigned char[]>(mutant.size());
    std::memcpy(heap.get(), mutant.data(), mutant.size());
    EXPECT_THROW(DatasetView(heap.get(), mutant.size()), FormatError)
        << "index byte " << (at - l.index_offset);
  }
}

TEST(CorpusFuzz, TruncationAtEveryTailBoundaryIsRejected) {
  const Layout l = layout();
  // Chop anywhere inside the index/footer region: the footer either
  // disappears or points outside the file.
  for (std::size_t keep = l.index_offset - 12; keep < l.bytes.size();
       keep += 3) {
    const std::string mutant = l.bytes.substr(0, keep);
    const auto heap = std::make_unique<unsigned char[]>(
        mutant.size() ? mutant.size() : 1);
    std::memcpy(heap.get(), mutant.data(), mutant.size());
    EXPECT_THROW(DatasetView(heap.get(), mutant.size()), FormatError)
        << "kept " << keep << " of " << l.bytes.size();
  }
}

TEST(CorpusFuzz, LyingChecksumFailsOnlyTheLiedAboutRecord) {
  // Flip a body byte of record 3 (leaving the index intact): open succeeds,
  // records 0-2 and 4-5 decode, record 3 reports a checksum mismatch.
  Layout l = layout();
  {
    const unsigned char* base =
        reinterpret_cast<const unsigned char*>(l.bytes.data());
    DatasetView clean(base, l.bytes.size());
    ASSERT_EQ(clean.size(), 6u);
    const std::size_t victim =
        static_cast<std::size_t>(clean.record_offset(3)) + 16;
    l.bytes[victim] = static_cast<char>(l.bytes[victim] ^ 0x01);
  }
  const auto heap = std::make_unique<unsigned char[]>(l.bytes.size());
  std::memcpy(heap.get(), l.bytes.data(), l.bytes.size());
  DatasetView view(heap.get(), l.bytes.size());
  model::TrainingSample sample;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (i == 3) {
      EXPECT_THROW(view.decode(i, sample), FormatError);
    } else {
      EXPECT_NO_THROW(view.decode(i, sample)) << "record " << i;
    }
  }
}

}  // namespace
}  // namespace pg::io
