// Corpus I/O suite: format-v2 indexed datasets, the mmap-backed DatasetView
// (random access + v1 fallback scan), parallel shard loading, reindexing,
// and the out-of-core streaming trainer's bitwise-reproducibility contract.
//
// The bitwise yardstick throughout is serialization: two TrainingSamples
// (or two trained models) are "equal" iff their serialized bytes are equal,
// which is exactly the property the paper's corpus pipeline depends on.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "io/dataset_view.hpp"
#include "io/pgraph_io.hpp"
#include "model/checkpoint.hpp"
#include "model/encoding.hpp"
#include "model/trainer.hpp"

namespace pg::io {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(PG_GOLDEN_DIR) + "/" + name;
}

// --- corpus synthesis -----------------------------------------------------

graph::ProgramGraph parse_small(int bound) {
  std::ostringstream src;
  src << "void f(void) { for (int i = 0; i < " << bound
      << "; i++) { double x = 1.0; } }";
  auto r = frontend::parse_source(src.str());
  EXPECT_TRUE(r.ok());
  graph::BuildOptions options;
  options.representation = graph::Representation::kParaGraph;
  return graph::build_graph(r.root(), options);
}

/// Randomized but seed-deterministic sample set. Graph structure varies
/// (loop bound), as do aux features, runtimes, and string fields (including
/// empty strings — a degenerate the string codec must round-trip).
model::SampleSet make_set(std::size_t train_n, std::size_t val_n,
                          std::uint64_t seed) {
  model::SampleSet set;
  set.target_scaler.fit_bounds(0.0, 1e6);
  set.teams_scaler.fit_bounds(1.0, 1024.0);
  set.threads_scaler.fit_bounds(1.0, 1024.0);
  set.child_weight_scale = 64.0;

  std::vector<model::EncodedGraph> pool;
  for (int bound : {4, 17, 40, 129})
    pool.push_back(model::encode_graph(parse_small(bound), 64.0));

  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> runtime(1.0, 9e5);
  std::uniform_real_distribution<float> unit(0.0f, 1.0f);
  auto make = [&](std::size_t i) {
    model::TrainingSample s;
    s.graph = pool[rng() % pool.size()];
    s.aux = {unit(rng), unit(rng)};
    s.runtime_us = runtime(rng);
    s.target_scaled = set.target_scaler.transform(s.runtime_us);
    s.app_id = static_cast<std::int32_t>(rng() % 7);
    s.app_name = (i % 5 == 0) ? "" : "app" + std::to_string(s.app_id);
    s.variant = (i % 3 == 0) ? "gpu_collapse_mem" : "cpu";
    return s;
  };
  for (std::size_t i = 0; i < train_n; ++i) set.train.push_back(make(i));
  for (std::size_t i = 0; i < val_n; ++i)
    set.validation.push_back(make(train_n + i));
  return set;
}

std::string set_bytes(const model::SampleSet& set, std::uint16_t version) {
  std::ostringstream os(std::ios::binary);
  write_sample_set(os, set, "test", "ParaGraph", 42, version);
  return os.str();
}

std::string sample_bytes(const model::TrainingSample& sample) {
  std::ostringstream os(std::ios::binary);
  write_sample(os, sample);
  return os.str();
}

/// Writes `bytes` to a fresh temp file and returns its path.
class TempFile {
 public:
  explicit TempFile(const std::string& bytes) {
    static int counter = 0;
    path_ = testing::TempDir() + "corpus_io_" +
            std::to_string(::getpid()) + "_" + std::to_string(counter++) +
            ".pgds";
    std::ofstream os(path_, std::ios::binary);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    EXPECT_TRUE(static_cast<bool>(os));
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// All records of a set in stream order (train then validation), as the
/// (split, serialized-sample) pairs the sequential reader should produce.
std::vector<std::pair<Split, std::string>> stream_order(
    const model::SampleSet& set) {
  std::vector<std::pair<Split, std::string>> out;
  for (const auto& s : set.train)
    out.emplace_back(Split::kTrain, sample_bytes(s));
  for (const auto& s : set.validation)
    out.emplace_back(Split::kValidation, sample_bytes(s));
  return out;
}

void expect_view_matches(const DatasetView& view,
                         const model::SampleSet& set) {
  const auto expected = stream_order(set);
  ASSERT_EQ(view.size(), expected.size());
  model::TrainingSample sample;
  // Deliberately out of order: random access must not depend on history.
  for (std::size_t k = view.size(); k-- > 0;) {
    EXPECT_EQ(view.split(k), expected[k].first) << "record " << k;
    view.decode(k, sample);
    EXPECT_EQ(sample_bytes(sample), expected[k].second) << "record " << k;
  }
}

// --- random access vs sequential -----------------------------------------

TEST(CorpusIo, V2RandomAccessMatchesSequentialReader) {
  const auto set = make_set(13, 5, 1);
  const TempFile file(set_bytes(set, 2));
  DatasetView view(file.path());
  EXPECT_EQ(view.format_version(), 2);
  EXPECT_TRUE(view.has_checksums());
  EXPECT_EQ(view.meta().platform, "test");
  expect_view_matches(view, set);

  // And against the actual streaming reader, record by record.
  std::ifstream is(file.path(), std::ios::binary);
  DatasetReader reader(is);
  model::TrainingSample seq;
  model::TrainingSample rnd;
  Split split = Split::kTrain;
  std::size_t i = 0;
  while (reader.next(seq, split)) {
    view.decode(i, rnd);
    EXPECT_EQ(sample_bytes(rnd), sample_bytes(seq)) << "record " << i;
    EXPECT_EQ(view.split(i), split) << "record " << i;
    ++i;
  }
  EXPECT_EQ(i, view.size());
}

TEST(CorpusIo, V1FallbackScanIsEquivalent) {
  const auto set = make_set(9, 4, 2);
  const TempFile file(set_bytes(set, 1));
  DatasetView view(file.path());
  EXPECT_EQ(view.format_version(), 1);
  EXPECT_FALSE(view.has_checksums());
  expect_view_matches(view, set);
}

TEST(CorpusIo, MemoryConstructorViewsBorrowedBytes) {
  const auto set = make_set(6, 2, 3);
  const std::string bytes = set_bytes(set, 2);
  DatasetView view(bytes.data(), bytes.size());
  expect_view_matches(view, set);
}

TEST(CorpusIo, RecordOffsetsAreContiguous) {
  const auto set = make_set(5, 3, 4);
  const std::string bytes = set_bytes(set, 2);
  DatasetView view(bytes.data(), bytes.size());
  std::uint64_t expect = view.record_offset(0);
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view.record_offset(i), expect) << "record " << i;
    EXPECT_GE(view.record_length(i), 13u);
    expect += view.record_length(i);
  }
  EXPECT_LT(expect, bytes.size());  // end marker + index follow
}

// --- degenerates ----------------------------------------------------------

TEST(CorpusIo, EmptyDatasetBothVersions) {
  model::SampleSet set;
  set.target_scaler.fit_bounds(0.0, 1.0);
  set.teams_scaler.fit_bounds(1.0, 2.0);
  set.threads_scaler.fit_bounds(1.0, 2.0);
  for (std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}}) {
    const std::string bytes = set_bytes(set, version);
    DatasetView view(bytes.data(), bytes.size());
    EXPECT_EQ(view.size(), 0u) << "v" << version;
    EXPECT_EQ(view.format_version(), version);
    const StoredSampleSet loaded = load_sample_set(view);
    EXPECT_TRUE(loaded.set.train.empty());
    EXPECT_TRUE(loaded.set.validation.empty());
  }
}

TEST(CorpusIo, SingleRecordBothVersions) {
  const auto set = make_set(1, 0, 5);
  for (std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}}) {
    const std::string bytes = set_bytes(set, version);
    DatasetView view(bytes.data(), bytes.size());
    ASSERT_EQ(view.size(), 1u) << "v" << version;
    model::TrainingSample sample;
    view.decode(0, sample);
    EXPECT_EQ(sample_bytes(sample), sample_bytes(set.train[0]));
  }
}

TEST(CorpusIo, HugeRecordRoundTrips) {
  auto set = make_set(3, 0, 6);
  // A ~1 MiB string field dwarfs every other record in the file.
  set.train[1].app_name.assign(1 << 20, 'x');
  set.train[1].variant.assign(4096, 'y');
  for (std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}}) {
    const std::string bytes = set_bytes(set, version);
    DatasetView view(bytes.data(), bytes.size());
    expect_view_matches(view, set);
    EXPECT_GT(view.record_length(1), std::uint64_t{1} << 20);
  }
}

TEST(CorpusIo, OutOfRangeIndexThrows) {
  const auto set = make_set(2, 0, 7);
  const std::string bytes = set_bytes(set, 2);
  DatasetView view(bytes.data(), bytes.size());
  model::TrainingSample sample;
  EXPECT_THROW(view.decode(2, sample), InternalError);
  EXPECT_THROW((void)view.split(2), InternalError);
}

// --- parallel shard loading -----------------------------------------------

TEST(CorpusIo, ParallelLoadMatchesSequentialAndIsThreadCountInvariant) {
  const auto set = make_set(23, 9, 8);
  for (std::uint16_t version : {std::uint16_t{1}, std::uint16_t{2}}) {
    const std::string bytes = set_bytes(set, version);

    std::istringstream is(bytes, std::ios::binary);
    const StoredSampleSet sequential = read_sample_set(is);

    DatasetView view(bytes.data(), bytes.size());
    const StoredSampleSet one = load_sample_set(view, 1);
    const StoredSampleSet many = load_sample_set(view, 3);

    // Serializing the whole loaded set covers samples, order, split
    // partition, and scalers in one comparison.
    auto reserialize = [](const StoredSampleSet& s) {
      std::ostringstream os(std::ios::binary);
      write_sample_set(os, s.set, s.meta.platform, s.meta.representation,
                       s.meta.seed, 2);
      return os.str();
    };
    const std::string want = reserialize(sequential);
    EXPECT_EQ(reserialize(one), want) << "v" << version;
    EXPECT_EQ(reserialize(many), want) << "v" << version;
  }
}

// --- reindex --------------------------------------------------------------

TEST(CorpusIo, ReindexMatchesNativeV2Writer) {
  const auto set = make_set(11, 4, 9);
  const TempFile v1(set_bytes(set, 1));
  const std::string v2_native = set_bytes(set, 2);

  const TempFile out{std::string()};
  reindex_dataset(v1.path(), out.path());
  std::ifstream is(out.path(), std::ios::binary);
  std::ostringstream copied;
  copied << is.rdbuf();
  EXPECT_EQ(copied.str(), v2_native);
}

TEST(CorpusIo, ReindexIsIdempotent) {
  const auto set = make_set(7, 2, 10);
  const TempFile v2(set_bytes(set, 2));
  const TempFile out{std::string()};
  reindex_dataset(v2.path(), out.path());
  std::ifstream is(out.path(), std::ios::binary);
  std::ostringstream copied;
  copied << is.rdbuf();
  EXPECT_EQ(copied.str(), set_bytes(set, 2));
}

TEST(CorpusIo, ReindexedGoldenReadsLikeV1Golden) {
  // Both checked-in fixtures decode to the same records through both reader
  // paths (streaming reader and DatasetView).
  std::ifstream v1(golden_path("corpus.pgds"), std::ios::binary);
  ASSERT_TRUE(static_cast<bool>(v1));
  const StoredSampleSet from_v1 = read_sample_set(v1);

  DatasetView view(golden_path("corpus_v2.pgds"));
  EXPECT_EQ(view.format_version(), 2);
  const StoredSampleSet from_v2 = load_sample_set(view);

  ASSERT_EQ(from_v2.set.train.size(), from_v1.set.train.size());
  for (std::size_t i = 0; i < from_v1.set.train.size(); ++i)
    EXPECT_EQ(sample_bytes(from_v2.set.train[i]),
              sample_bytes(from_v1.set.train[i]));
  EXPECT_EQ(from_v2.meta.platform, from_v1.meta.platform);
  EXPECT_EQ(from_v2.meta.child_weight_scale, from_v1.meta.child_weight_scale);
}

// --- error context --------------------------------------------------------

TEST(CorpusIo, ChecksumMismatchNamesTheRecord) {
  const auto set = make_set(4, 0, 11);
  std::string bytes = set_bytes(set, 2);
  DatasetView clean(bytes.data(), bytes.size());
  // Flip one byte inside record 2's body (past the 12-byte frame header and
  // the split tag); the index stays intact, so open succeeds and only
  // decode(2) notices.
  const std::size_t victim =
      static_cast<std::size_t>(clean.record_offset(2)) + 20;
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0x40);

  DatasetView view(bytes.data(), bytes.size());
  model::TrainingSample sample;
  view.decode(0, sample);  // untouched records still decode
  try {
    view.decode(2, sample);
    FAIL() << "corrupt record decoded";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("record 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos)
        << e.what();
    // The wrapped message carries the absolute file position of the frame so
    // a corruption report points straight at the bytes.
    EXPECT_NE(std::string(e.what()).find(
                  "byte offset " + std::to_string(clean.record_offset(2))),
              std::string::npos)
        << e.what();
  }
}

TEST(CorpusIo, IndexChecksumMismatchNamesSectionAndOffset) {
  const auto set = make_set(4, 0, 13);
  std::string bytes = set_bytes(set, 2);
  // The 20-byte footer is [index_offset u64][index_size u64][magic u32];
  // read the index offset from it, then flip a byte inside the first index
  // entry. The index self-checksum catches it at open time, and the error
  // must name the 'index' section and its byte offset.
  std::uint64_t index_offset = 0;
  std::memcpy(&index_offset, bytes.data() + bytes.size() - 20, 8);
  ASSERT_LT(index_offset + 12, bytes.size());
  bytes[index_offset + 12] ^= 0x40;

  try {
    DatasetView view(bytes.data(), bytes.size());
    FAIL() << "corrupt index accepted";
  } catch (const FormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("index self-checksum mismatch"), std::string::npos)
        << what;
    EXPECT_NE(what.find("'index' section at byte offset " +
                        std::to_string(index_offset)),
              std::string::npos)
        << what;
  }
}

TEST(CorpusIo, V1FrameHeaderCorruptionNamesTheRecord) {
  const auto set = make_set(4, 0, 12);
  std::string bytes = set_bytes(set, 1);
  DatasetView clean(bytes.data(), bytes.size());
  const std::size_t victim = static_cast<std::size_t>(clean.record_offset(2));
  bytes[victim] = static_cast<char>(bytes[victim] ^ 0xFF);  // break "RECD"

  try {
    DatasetView view(bytes.data(), bytes.size());
    FAIL() << "corrupt scan accepted";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("record 2"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("frame header"), std::string::npos)
        << e.what();
  }

  // The streaming reader reports the same ordinal for the same corruption.
  std::istringstream is(bytes, std::ios::binary);
  DatasetReader reader(is);
  model::TrainingSample sample;
  Split split = Split::kTrain;
  reader.next(sample, split);
  reader.next(sample, split);
  try {
    reader.next(sample, split);
    FAIL() << "corrupt record decoded";
  } catch (const FormatError& e) {
    EXPECT_NE(std::string(e.what()).find("record 2"), std::string::npos)
        << e.what();
  }
}

// --- out-of-core streaming trainer ----------------------------------------

model::TrainConfig small_train_config() {
  model::TrainConfig config;
  config.epochs = 4;
  config.batch_size = 4;
  config.learning_rate = 1e-3;
  config.shuffle_seed = 17;
  return config;
}

std::string checkpoint_bytes(const model::ParaGraphModel& model,
                             const model::SampleSet& set) {
  std::ostringstream os(std::ios::binary);
  model::save_checkpoint(os, model,
                         model::CheckpointScalers::from_sample_set(set));
  return os.str();
}

model::ModelConfig tiny_model() {
  return model::ModelConfig{.hidden_dim = 8, .seed = 21};
}

TEST(StreamingTrainer, FullWindowMatchesInRamBitwise) {
  const auto set = make_set(19, 6, 13);
  model::ParaGraphModel in_ram(tiny_model());
  const auto r1 = model::train_model(in_ram, set, small_train_config());

  model::ParaGraphModel streamed(tiny_model());
  model::StreamTrainConfig stream;
  stream.base = small_train_config();
  stream.window = set.train.size() + 100;  // window covers the corpus
  const model::VectorSampleStore store(set.train);
  const auto r2 = model::train_model_streaming(streamed, store, set, stream);

  EXPECT_EQ(checkpoint_bytes(streamed, set), checkpoint_bytes(in_ram, set));
  EXPECT_EQ(r2.final_rmse_us, r1.final_rmse_us);
  ASSERT_EQ(r2.history.size(), r1.history.size());
  for (std::size_t e = 0; e < r1.history.size(); ++e) {
    EXPECT_EQ(r2.history[e].train_mse_scaled, r1.history[e].train_mse_scaled);
    EXPECT_EQ(r2.history[e].val_rmse_us, r1.history[e].val_rmse_us);
  }
}

TEST(StreamingTrainer, SmallWindowsStayBitwiseIdentical) {
  const auto set = make_set(19, 6, 13);
  model::ParaGraphModel reference(tiny_model());
  (void)model::train_model(reference, set, small_train_config());
  const std::string want = checkpoint_bytes(reference, set);

  const model::VectorSampleStore store(set.train);
  for (std::size_t window : {std::size_t{1}, std::size_t{4}, std::size_t{8},
                             std::size_t{13}}) {
    model::ParaGraphModel streamed(tiny_model());
    model::StreamTrainConfig stream;
    stream.base = small_train_config();
    stream.window = window;  // rounded up/down to whole batches internally
    (void)model::train_model_streaming(streamed, store, set, stream);
    EXPECT_EQ(checkpoint_bytes(streamed, set), want) << "window " << window;
  }
}

TEST(StreamingTrainer, LoadThreadCountNeverChangesTheModel) {
  const auto set = make_set(17, 5, 14);
  const model::VectorSampleStore store(set.train);
  std::string want;
  for (int threads : {1, 3}) {
    model::ParaGraphModel streamed(tiny_model());
    model::StreamTrainConfig stream;
    stream.base = small_train_config();
    stream.window = 8;
    stream.load_threads = threads;
    (void)model::train_model_streaming(streamed, store, set, stream);
    const std::string got = checkpoint_bytes(streamed, set);
    if (want.empty()) want = got;
    EXPECT_EQ(got, want) << "threads " << threads;
  }
}

TEST(StreamingTrainer, TrainsOutOfCoreFromAnMmappedV2Corpus) {
  // End to end: write a v2 corpus, mmap it, and train without ever holding
  // the training split in RAM — byte-identical to the in-RAM trainer.
  const auto set = make_set(15, 5, 15);
  model::ParaGraphModel in_ram(tiny_model());
  (void)model::train_model(in_ram, set, small_train_config());

  const TempFile file(set_bytes(set, 2));
  DatasetView view(file.path());
  // The view holds the full stream order (train then validation); build a
  // train-only store via the index prefix.
  ASSERT_EQ(view.split(set.train.size() - 1), Split::kTrain);
  class PrefixStore final : public model::SampleStore {
   public:
    PrefixStore(const DatasetView& view, std::size_t n) : view_(view), n_(n) {}
    std::size_t size() const override { return n_; }
    void load(std::size_t i, model::TrainingSample& out) const override {
      view_.decode(i, out);
    }

   private:
    const DatasetView& view_;
    std::size_t n_;
  };
  const PrefixStore store(view, set.train.size());

  model::ParaGraphModel streamed(tiny_model());
  model::StreamTrainConfig stream;
  stream.base = small_train_config();
  stream.window = 8;
  (void)model::train_model_streaming(streamed, store, set, stream);
  EXPECT_EQ(checkpoint_bytes(streamed, set), checkpoint_bytes(in_ram, set));
}

}  // namespace
}  // namespace pg::io
