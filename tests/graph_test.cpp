// Tests for ParaGraph construction: edge relations, weighting rules
// (paper §III-A, Figure 2), ablation levels, and structural invariants.
#include <gtest/gtest.h>

#include <sstream>

#include "dataset/kernel_spec.hpp"
#include "dataset/variants.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"

namespace pg::graph {
namespace {

using frontend::NodeKind;

ProgramGraph build(const std::string& source, BuildOptions options = {}) {
  auto r = frontend::parse_source(source);
  EXPECT_TRUE(r.ok()) << r.diagnostics.summary();
  return build_graph(r.root(), options);
}

/// All edges of one type.
std::vector<GraphEdge> edges_of(const ProgramGraph& g, EdgeType type) {
  std::vector<GraphEdge> out;
  for (const auto& e : g.edges())
    if (e.type == type) out.push_back(e);
  return out;
}

constexpr const char* kLoopKernel = R"(
void f(void) {
  for (int i = 0; i < 50; i++) {
    double x = 1.0;
  }
}
)";

constexpr const char* kIfKernel = R"(
void f(int c) {
  if (c > 0) {
    int a = 1;
  } else {
    int b = 2;
  }
}
)";

// --------------------------------------------------------------- basics ---

TEST(GraphBuilder, EveryAstNodeBecomesAGraphNode) {
  auto r = frontend::parse_source(kLoopKernel);
  ASSERT_TRUE(r.ok());
  const auto g = build_graph(r.root(), {});
  EXPECT_EQ(g.num_nodes(), frontend::subtree_size(r.root()));
}

TEST(GraphBuilder, ChildEdgesFormATree) {
  const auto g = build(kLoopKernel);
  const auto degree = g.child_in_degree();
  // Root has in-degree 0; every other node exactly 1.
  std::size_t roots = 0;
  for (std::size_t i = 0; i < degree.size(); ++i) {
    if (degree[i] == 0) ++roots;
    else EXPECT_EQ(degree[i], 1u) << "node " << i;
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(edges_of(g, EdgeType::kChild).size(), g.num_nodes() - 1);
}

TEST(GraphBuilder, NonChildEdgesHaveZeroWeight) {
  const auto g = build(kLoopKernel);
  for (const auto& e : g.edges()) {
    if (e.type != EdgeType::kChild) {
      EXPECT_EQ(e.weight, 0.0f);
    }
  }
}

// ------------------------------------------------------------ ablations ---

TEST(GraphBuilder, RawAstHasOnlyChildEdges) {
  BuildOptions options;
  options.representation = Representation::kRawAst;
  const auto g = build(kLoopKernel, options);
  const auto histogram = g.edge_type_histogram();
  for (std::size_t t = 1; t < kNumEdgeTypes; ++t) EXPECT_EQ(histogram[t], 0u);
  EXPECT_GT(histogram[0], 0u);
  for (const auto& e : g.edges()) EXPECT_EQ(e.weight, 1.0f);
}

TEST(GraphBuilder, AugmentedAstHasRelationsButUnitWeights) {
  BuildOptions options;
  options.representation = Representation::kAugmentedAst;
  const auto g = build(kLoopKernel, options);
  EXPECT_FALSE(edges_of(g, EdgeType::kForExec).empty());
  for (const auto& e : edges_of(g, EdgeType::kChild)) EXPECT_EQ(e.weight, 1.0f);
}

TEST(GraphBuilder, ParaGraphHasWeights) {
  const auto g = build(kLoopKernel);
  EXPECT_EQ(g.max_child_weight(), 50.0f);
}

TEST(GraphBuilder, RepresentationNames) {
  EXPECT_EQ(representation_name(Representation::kRawAst), "Raw AST");
  EXPECT_EQ(representation_name(Representation::kAugmentedAst), "Augmented AST");
  EXPECT_EQ(representation_name(Representation::kParaGraph), "ParaGraph");
}

// ------------------------------------------------- loop edges & weights ---

TEST(GraphBuilder, ForStmtGetsForExecAndForNextEdges) {
  const auto g = build(kLoopKernel);
  // init->cond, cond->body; body->inc, inc->cond.
  EXPECT_EQ(edges_of(g, EdgeType::kForExec).size(), 2u);
  EXPECT_EQ(edges_of(g, EdgeType::kForNext).size(), 2u);
}

TEST(GraphBuilder, ForNextFormsCycleThroughCond) {
  const auto g = build(kLoopKernel);
  const auto exec = edges_of(g, EdgeType::kForExec);
  const auto next = edges_of(g, EdgeType::kForNext);
  // cond is the dst of one ForNext and src of one ForExec.
  bool found_cycle = false;
  for (const auto& n : next)
    for (const auto& e : exec)
      if (n.dst == e.src) found_cycle = true;
  EXPECT_TRUE(found_cycle);
}

TEST(GraphBuilder, LoopWeightsMatchPaperFigure2) {
  // for (50 trips): init gets weight 1; cond/body/inc get 50.
  auto r = frontend::parse_source(kLoopKernel);
  ASSERT_TRUE(r.ok());
  const auto g = build_graph(r.root(), {});
  // Identify the ForStmt node and its outgoing child weights in order.
  std::int64_t for_node = -1;
  for (std::size_t i = 0; i < g.num_nodes(); ++i)
    if (g.nodes()[i].kind == NodeKind::kForStmt) for_node = i;
  ASSERT_NE(for_node, -1);
  std::vector<float> weights;
  for (const auto& e : g.edges())
    if (e.type == EdgeType::kChild && e.src == for_node)
      weights.push_back(e.weight);
  ASSERT_EQ(weights.size(), 4u);
  EXPECT_EQ(weights[0], 1.0f);    // init
  EXPECT_EQ(weights[1], 50.0f);   // cond
  EXPECT_EQ(weights[2], 50.0f);   // body
  EXPECT_EQ(weights[3], 50.0f);   // inc
}

TEST(GraphBuilder, NestedLoopWeightsMultiply) {
  const auto g = build(R"(
    void f(void) {
      for (int i = 0; i < 10; i++) {
        for (int j = 0; j < 20; j++) {
          double x = 1.0;
        }
      }
    }
  )");
  // Edge into the inner VarDecl 'x': 10 * 20 = 200.
  EXPECT_EQ(g.max_child_weight(), 200.0f);
}

TEST(GraphBuilder, IfBranchWeightsHalved) {
  // Inside a 50-trip loop, if branches carry 25 (Figure 2).
  const auto g = build(R"(
    void f(int c) {
      for (int i = 0; i < 50; i++) {
        if (c > 0) {
          int a = 1;
        } else {
          int b = 2;
        }
      }
    }
  )");
  std::int64_t if_node = -1;
  for (std::size_t i = 0; i < g.num_nodes(); ++i)
    if (g.nodes()[i].kind == NodeKind::kIfStmt) if_node = i;
  ASSERT_NE(if_node, -1);
  std::vector<float> weights;
  for (const auto& e : g.edges())
    if (e.type == EdgeType::kChild && e.src == if_node) weights.push_back(e.weight);
  ASSERT_EQ(weights.size(), 3u);
  EXPECT_EQ(weights[0], 50.0f);  // condition: evaluated every iteration
  EXPECT_EQ(weights[1], 25.0f);  // then
  EXPECT_EQ(weights[2], 25.0f);  // else
}

TEST(GraphBuilder, ConTrueConFalseEdges) {
  const auto g = build(kIfKernel);
  EXPECT_EQ(edges_of(g, EdgeType::kConTrue).size(), 1u);
  EXPECT_EQ(edges_of(g, EdgeType::kConFalse).size(), 1u);
}

TEST(GraphBuilder, IfWithoutElseHasNoConFalse) {
  const auto g = build("void f(int c) { if (c > 0) { int a = 1; } }");
  EXPECT_EQ(edges_of(g, EdgeType::kConTrue).size(), 1u);
  EXPECT_TRUE(edges_of(g, EdgeType::kConFalse).empty());
}

TEST(GraphBuilder, StaticScheduleDividesByWorkers) {
  // Paper: 100 iterations, 4 threads -> body weight 25.
  BuildOptions options;
  options.parallel_workers = 4;
  const auto g = build(R"(
    double v[100];
    void f(void) {
      #pragma omp parallel for num_threads(4) schedule(static)
      for (int i = 0; i < 100; i++) {
        v[i] = 0.0;
      }
    }
  )", options);
  EXPECT_EQ(g.max_child_weight(), 25.0f);
}

TEST(GraphBuilder, DivisionOnlyAppliesToDirectiveLoop) {
  // Inner (non-distributed) loop keeps its full trip multiplier.
  BuildOptions options;
  options.parallel_workers = 10;
  const auto g = build(R"(
    double v[100];
    void f(void) {
      #pragma omp parallel for num_threads(10) schedule(static)
      for (int i = 0; i < 100; i++) {
        for (int j = 0; j < 7; j++) {
          v[i] = v[i] + 1.0;
        }
      }
    }
  )", options);
  // 100/10 * 7 = 70.
  EXPECT_EQ(g.max_child_weight(), 70.0f);
}

TEST(GraphBuilder, WorkerDivisionNeverDropsBelowOne) {
  BuildOptions options;
  options.parallel_workers = 1000;
  const auto g = build(R"(
    double v[8];
    void f(void) {
      #pragma omp parallel for num_threads(4) schedule(static)
      for (int i = 0; i < 8; i++) { v[i] = 0.0; }
    }
  )", options);
  EXPECT_GE(g.max_child_weight(), 1.0f);
}

TEST(GraphBuilder, UnknownTripUsesFallback) {
  BuildOptions options;
  options.unknown_trip_fallback = 31;
  const auto g = build(R"(
    void f(int n) {
      for (int i = 0; i < n; i++) {
        double x = 1.0;
      }
    }
  )", options);
  EXPECT_EQ(g.max_child_weight(), 31.0f);
}

TEST(GraphBuilder, WhileLoopUsesFallback) {
  BuildOptions options;
  options.unknown_trip_fallback = 11;
  const auto g = build(R"(
    void f(int n) {
      while (n > 0) {
        n = n - 1;
      }
    }
  )", options);
  EXPECT_EQ(g.max_child_weight(), 11.0f);
}

TEST(GraphBuilder, WeightCapRespected) {
  BuildOptions options;
  options.max_weight = 1e6;
  const auto g = build(R"(
    void f(void) {
      for (int i = 0; i < 10000; i++)
        for (int j = 0; j < 10000; j++)
          for (int k = 0; k < 10000; k++) {
            double x = 1.0;
          }
    }
  )", options);
  EXPECT_LE(g.max_child_weight(), 1e6f);
}

// ------------------------------------------------------- token & sibs -----

TEST(GraphBuilder, NextTokenChainsTerminalsLeftToRight) {
  const auto g = build("void f(void) { int a = 1; int b = 2; }");
  const auto next_token = edges_of(g, EdgeType::kNextToken);
  std::size_t terminals = 0;
  const auto child_out = [&] {
    std::vector<std::size_t> out_deg(g.num_nodes(), 0);
    for (const auto& e : g.edges())
      if (e.type == EdgeType::kChild) ++out_deg[e.src];
    return out_deg;
  }();
  for (std::size_t i = 0; i < g.num_nodes(); ++i)
    if (child_out[i] == 0) ++terminals;
  EXPECT_EQ(next_token.size(), terminals - 1);

  // The chain is a simple path: every node has <= 1 in and <= 1 out.
  std::vector<int> in_deg(g.num_nodes(), 0), out_deg(g.num_nodes(), 0);
  for (const auto& e : next_token) {
    ++out_deg[e.src];
    ++in_deg[e.dst];
  }
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_LE(in_deg[i], 1);
    EXPECT_LE(out_deg[i], 1);
  }
}

TEST(GraphBuilder, NextSibConnectsConsecutiveChildren) {
  const auto g = build(kLoopKernel);
  // ForStmt has 4 children -> 3 NextSib edges among them; plus others.
  std::int64_t for_node = -1;
  for (std::size_t i = 0; i < g.num_nodes(); ++i)
    if (g.nodes()[i].kind == NodeKind::kForStmt) for_node = i;
  std::vector<std::uint32_t> for_children;
  for (const auto& e : g.edges())
    if (e.type == EdgeType::kChild && e.src == for_node)
      for_children.push_back(e.dst);
  int sib_edges = 0;
  for (const auto& e : edges_of(g, EdgeType::kNextSib)) {
    for (std::size_t i = 0; i + 1 < for_children.size(); ++i)
      if (e.src == for_children[i] && e.dst == for_children[i + 1]) ++sib_edges;
  }
  EXPECT_EQ(sib_edges, 3);
}

TEST(GraphBuilder, RefEdgesPointAtDeclarations) {
  const auto g = build("void f(void) { int a = 1; int b; b = a + a; }");
  const auto refs = edges_of(g, EdgeType::kRef);
  EXPECT_GE(refs.size(), 3u);  // b, a, a
  for (const auto& e : refs) {
    EXPECT_EQ(g.node(e.src).kind, NodeKind::kDeclRefExpr);
    const auto dst_kind = g.node(e.dst).kind;
    EXPECT_TRUE(dst_kind == NodeKind::kVarDecl ||
                dst_kind == NodeKind::kParmVarDecl ||
                dst_kind == NodeKind::kFunctionDecl);
  }
}

// ------------------------------------------------------- serialisation ---

TEST(ProgramGraph, SerializeRoundTrip) {
  const auto g = build(kLoopKernel);
  std::stringstream buffer;
  g.serialize(buffer);
  const auto g2 = ProgramGraph::deserialize(buffer);
  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i)
    EXPECT_EQ(g2.edges()[i], g.edges()[i]);
  for (std::size_t i = 0; i < g.num_nodes(); ++i)
    EXPECT_EQ(g2.nodes()[i].kind, g.nodes()[i].kind);
}

TEST(ProgramGraph, DeserializeRejectsBadHeader) {
  std::stringstream buffer("not-a-graph 0 0\n");
  EXPECT_THROW(ProgramGraph::deserialize(buffer), InternalError);
}

TEST(ProgramGraph, DotOutputMentionsNodesAndColors) {
  const auto g = build(kIfKernel);
  std::stringstream dot;
  g.write_dot(dot);
  const std::string out = dot.str();
  EXPECT_NE(out.find("digraph ParaGraph"), std::string::npos);
  EXPECT_NE(out.find("IfStmt"), std::string::npos);
  EXPECT_NE(out.find("forestgreen"), std::string::npos);  // ConTrue colour
}

TEST(ProgramGraph, EdgeEndpointValidation) {
  ProgramGraph g;
  const auto a = g.add_node(NodeKind::kVarDecl);
  EXPECT_THROW(g.add_edge(a, 99, EdgeType::kChild, 1.0f), InternalError);
  EXPECT_THROW(g.add_edge(a, a, EdgeType::kChild, -1.0f), InternalError);
}

// --------------------------------------- property sweep over the suite ---

struct SuiteCase {
  std::size_t kernel_index;
  dataset::Variant variant;
};

class SuiteGraphInvariants
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(SuiteGraphInvariants, HoldForEveryKernelVariant) {
  const auto& suite = dataset::benchmark_suite();
  const std::size_t kernel_index = std::get<0>(GetParam());
  const auto variant = static_cast<dataset::Variant>(std::get<1>(GetParam()));
  const auto& spec = suite[kernel_index];
  if (dataset::variant_has_collapse(variant) && !spec.collapsible)
    GTEST_SKIP() << "variant not applicable";

  const std::string source = dataset::instantiate_source(
      spec, variant, spec.default_sizes.front(), 64, 64);
  auto parsed = frontend::parse_source(source);
  ASSERT_TRUE(parsed.ok()) << spec.kernel << ": " << parsed.diagnostics.summary();

  BuildOptions options;
  options.parallel_workers = 64;
  const auto g = build_graph(parsed.root(), options);

  // Tree invariant.
  const auto degree = g.child_in_degree();
  std::size_t roots = 0;
  for (const std::size_t d : degree) roots += (d == 0);
  EXPECT_EQ(roots, 1u);

  // Weighted representation must carry loop information.
  EXPECT_GT(g.max_child_weight(), 1.0f) << spec.kernel;

  // All 4 structural relation families present for loop kernels.
  const auto histogram = g.edge_type_histogram();
  EXPECT_GT(histogram[static_cast<std::size_t>(EdgeType::kNextToken)], 0u);
  EXPECT_GT(histogram[static_cast<std::size_t>(EdgeType::kNextSib)], 0u);
  EXPECT_GT(histogram[static_cast<std::size_t>(EdgeType::kRef)], 0u);
  EXPECT_GT(histogram[static_cast<std::size_t>(EdgeType::kForExec)], 0u);

  // Non-child weights all zero; child weights all >= something sane.
  for (const auto& e : g.edges()) {
    if (e.type == EdgeType::kChild) {
      EXPECT_GT(e.weight, 0.0f);
    } else {
      EXPECT_EQ(e.weight, 0.0f);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsAllVariants, SuiteGraphInvariants,
    ::testing::Combine(::testing::Range<std::size_t>(0, 17),
                       ::testing::Range(0, 6)),
    [](const auto& info) {
      const auto& suite = dataset::benchmark_suite();
      return suite[std::get<0>(info.param)].kernel + "_" +
             std::string(dataset::variant_name(
                 static_cast<dataset::Variant>(std::get<1>(info.param))));
    });

}  // namespace
}  // namespace pg::graph
