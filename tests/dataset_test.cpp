// Tests for the dataset pipeline: the Table-I suite, the six variants,
// sweep generation, determinism, and sample-set assembly.
#include <gtest/gtest.h>

#include <set>

#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "frontend/parser.hpp"
#include "support/check.hpp"

namespace pg::dataset {
namespace {

// ------------------------------------------------------------------ suite ---

TEST(Suite, SeventeenKernelsNineApps) {
  const auto& suite = benchmark_suite();
  EXPECT_EQ(suite.size(), 17u);  // paper: "seventeen kernels"
  EXPECT_EQ(num_applications(), 9u);
}

TEST(Suite, KernelCountsPerAppMatchTableI) {
  std::map<std::string, int> counts;
  for (const auto& spec : benchmark_suite()) ++counts[spec.app];
  EXPECT_EQ(counts["Correlation"], 1);
  EXPECT_EQ(counts["Covariance"], 2);
  EXPECT_EQ(counts["Gauss"], 1);
  EXPECT_EQ(counts["NN"], 1);
  EXPECT_EQ(counts["Laplace"], 2);
  EXPECT_EQ(counts["MM"], 1);
  EXPECT_EQ(counts["MV"], 1);
  EXPECT_EQ(counts["Transpose"], 1);
  EXPECT_EQ(counts["ParticleFilter"], 7);
}

TEST(Suite, KernelNamesAreUnique) {
  std::set<std::string> names;
  for (const auto& spec : benchmark_suite()) names.insert(spec.kernel);
  EXPECT_EQ(names.size(), benchmark_suite().size());
}

TEST(Suite, EverySpecHasSizesAndMapClause) {
  for (const auto& spec : benchmark_suite()) {
    EXPECT_FALSE(spec.default_sizes.empty()) << spec.kernel;
    EXPECT_FALSE(spec.map_clause.empty()) << spec.kernel;
    EXPECT_NE(spec.source_template.find("${PRAGMA}"), std::string::npos)
        << spec.kernel;
  }
}

TEST(Suite, AppIdsAreStableAndDense) {
  std::set<std::int32_t> ids;
  for (const auto& spec : benchmark_suite()) ids.insert(app_id(spec.app));
  EXPECT_EQ(ids.size(), 9u);
  EXPECT_EQ(*ids.begin(), 0);
  EXPECT_EQ(*ids.rbegin(), 8);
  EXPECT_EQ(app_id("MM"), app_id("MM"));
}

TEST(Suite, UnknownAppThrows) { EXPECT_THROW(app_id("NotAnApp"), InternalError); }

// --------------------------------------------------------------- variants ---

TEST(Variants, NamesMatchPaper) {
  EXPECT_EQ(variant_name(Variant::kCpu), "cpu");
  EXPECT_EQ(variant_name(Variant::kCpuCollapse), "cpu_collapse");
  EXPECT_EQ(variant_name(Variant::kGpu), "gpu");
  EXPECT_EQ(variant_name(Variant::kGpuCollapse), "gpu_collapse");
  EXPECT_EQ(variant_name(Variant::kGpuMem), "gpu_mem");
  EXPECT_EQ(variant_name(Variant::kGpuCollapseMem), "gpu_collapse_mem");
}

TEST(Variants, Predicates) {
  EXPECT_FALSE(variant_is_gpu(Variant::kCpu));
  EXPECT_TRUE(variant_is_gpu(Variant::kGpuCollapseMem));
  EXPECT_TRUE(variant_has_collapse(Variant::kCpuCollapse));
  EXPECT_FALSE(variant_has_collapse(Variant::kGpuMem));
  EXPECT_TRUE(variant_has_transfer(Variant::kGpuMem));
  EXPECT_FALSE(variant_has_transfer(Variant::kGpu));
}

TEST(Variants, ApplicableSetRespectsCollapsibility) {
  const auto& suite = benchmark_suite();
  const KernelSpec* matmul = nullptr;
  const KernelSpec* matvec = nullptr;
  for (const auto& spec : suite) {
    if (spec.kernel == "matmul") matmul = &spec;
    if (spec.kernel == "matvec") matvec = &spec;
  }
  ASSERT_NE(matmul, nullptr);
  ASSERT_NE(matvec, nullptr);
  EXPECT_EQ(applicable_variants(*matmul, /*gpu=*/true).size(), 4u);
  EXPECT_EQ(applicable_variants(*matvec, /*gpu=*/true).size(), 2u);
  EXPECT_EQ(applicable_variants(*matmul, /*gpu=*/false).size(), 2u);
  EXPECT_EQ(applicable_variants(*matvec, /*gpu=*/false).size(), 1u);
}

TEST(Variants, SubstitutePlaceholders) {
  const std::string out = substitute_placeholders(
      "for (i < ${N}) a[${N}] ${X}", {{"N", "42"}, {"X", "ok"}});
  EXPECT_EQ(out, "for (i < 42) a[42] ok");
}

TEST(Variants, UnboundPlaceholderThrows) {
  EXPECT_THROW(substitute_placeholders("${MISSING}", {}), InternalError);
}

TEST(Variants, DirectiveContainsConfigAndClauses) {
  const auto& spec = benchmark_suite().front();  // correlation (reduction)
  const std::string gpu = build_directive(spec, Variant::kGpuMem, 128, 64);
  EXPECT_NE(gpu.find("target teams distribute parallel for"), std::string::npos);
  EXPECT_NE(gpu.find("num_teams(128)"), std::string::npos);
  EXPECT_NE(gpu.find("thread_limit(64)"), std::string::npos);
  EXPECT_NE(gpu.find("reduction(+:"), std::string::npos);
  EXPECT_NE(gpu.find("map("), std::string::npos);

  const std::string cpu = build_directive(spec, Variant::kCpu, 1, 8);
  EXPECT_NE(cpu.find("parallel for num_threads(8)"), std::string::npos);
  EXPECT_NE(cpu.find("schedule(static)"), std::string::npos);
  EXPECT_EQ(cpu.find("map("), std::string::npos);  // no transfer on cpu
}

TEST(Variants, CollapseOnlyWhenRequested) {
  const KernelSpec* matmul = nullptr;
  for (const auto& spec : benchmark_suite())
    if (spec.kernel == "matmul") matmul = &spec;
  EXPECT_NE(build_directive(*matmul, Variant::kGpuCollapse, 4, 4).find("collapse(2)"),
            std::string::npos);
  EXPECT_EQ(build_directive(*matmul, Variant::kGpu, 4, 4).find("collapse"),
            std::string::npos);
}

TEST(Variants, EveryInstantiationParses) {
  // The cross-product (kernel x applicable variant x first/last size) must
  // all go through the real frontend cleanly.
  for (const auto& spec : benchmark_suite()) {
    for (bool gpu : {false, true}) {
      for (const Variant v : applicable_variants(spec, gpu)) {
        for (const SizePoint& size :
             {spec.default_sizes.front(), spec.default_sizes.back()}) {
          const std::string source = instantiate_source(spec, v, size, 64, 128);
          const auto parsed = frontend::parse_source(source);
          EXPECT_TRUE(parsed.ok())
              << spec.kernel << "/" << variant_name(v) << ":\n"
              << parsed.diagnostics.summary();
        }
      }
    }
  }
}

// -------------------------------------------------------------- generator ---

GenerationConfig smoke_config() {
  GenerationConfig config;
  config.scale = RunScale::kSmoke;
  return config;
}

TEST(Generator, ProducesPointsForCpuAndGpu) {
  const auto cpu_points = generate_dataset(sim::summit_power9(), smoke_config());
  const auto gpu_points = generate_dataset(sim::summit_v100(), smoke_config());
  EXPECT_GT(cpu_points.size(), 50u);
  EXPECT_GT(gpu_points.size(), cpu_points.size());  // Table II shape
}

TEST(Generator, CpuPointsUseCpuVariants) {
  const auto points = generate_dataset(sim::corona_epyc7401(), smoke_config());
  for (const auto& p : points) {
    EXPECT_TRUE(p.variant == "cpu" || p.variant == "cpu_collapse") << p.variant;
    EXPECT_EQ(p.num_teams, 1);
  }
}

TEST(Generator, GpuPointsUseGpuVariants) {
  const auto points = generate_dataset(sim::corona_mi50(), smoke_config());
  std::set<std::string> variants;
  for (const auto& p : points) {
    EXPECT_TRUE(p.variant.starts_with("gpu"));
    variants.insert(p.variant);
  }
  EXPECT_EQ(variants.size(), 4u);  // gpu, gpu_mem, gpu_collapse, gpu_collapse_mem
}

TEST(Generator, DeterministicForSeed) {
  const auto a = generate_dataset(sim::summit_v100(), smoke_config());
  const auto b = generate_dataset(sim::summit_v100(), smoke_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kernel, b[i].kernel);
    EXPECT_DOUBLE_EQ(a[i].runtime_us, b[i].runtime_us);
  }
}

TEST(Generator, DifferentSeedDifferentNoise) {
  auto config = smoke_config();
  const auto a = generate_dataset(sim::summit_v100(), config);
  config.seed += 1;
  const auto b = generate_dataset(sim::summit_v100(), config);
  ASSERT_EQ(a.size(), b.size());
  int distinct = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    distinct += (a[i].runtime_us != b[i].runtime_us);
  EXPECT_GT(distinct, static_cast<int>(a.size()) / 2);
}

TEST(Generator, RuntimesPositiveAndProfilesPopulated) {
  const auto points = generate_dataset(sim::summit_v100(), smoke_config());
  for (const auto& p : points) {
    EXPECT_GT(p.runtime_us, 0.0);
    EXPECT_GT(p.profile.total_ops() + p.profile.loads + p.profile.stores, 0.0);
    EXPECT_TRUE(p.profile.has_directive);
    EXPECT_GE(p.app_id, 0);
  }
}

TEST(Generator, MemVariantsCarryTransferBytes) {
  const auto points = generate_dataset(sim::summit_v100(), smoke_config());
  for (const auto& p : points) {
    if (p.variant.ends_with("_mem")) {
      EXPECT_GT(p.profile.transfer_bytes(), 0.0) << p.kernel;
    } else {
      EXPECT_EQ(p.profile.transfer_bytes(), 0.0) << p.kernel;
    }
  }
}

TEST(Generator, StatsMatchPaperShape) {
  // CPU runtimes spread much wider than GPU (Table II: POWER9 stddev 48.5 s
  // vs V100 3.7 s).
  const auto cpu = dataset_stats(generate_dataset(sim::summit_power9(), smoke_config()));
  const auto gpu = dataset_stats(generate_dataset(sim::summit_v100(), smoke_config()));
  EXPECT_GT(cpu.max_runtime_us, gpu.max_runtime_us);
  EXPECT_GT(cpu.stddev_us, gpu.stddev_us);
  EXPECT_LT(gpu.min_runtime_us, 1000.0);  // sub-millisecond kernels exist
}

// --------------------------------------------------------- sample builder ---

TEST(SampleBuilder, SplitsNineToOne) {
  const auto points = generate_dataset(sim::summit_v100(), smoke_config());
  SampleBuildConfig config;
  const auto set = build_sample_set(points, config);
  EXPECT_EQ(set.train.size() + set.validation.size(), points.size());
  const double fraction = static_cast<double>(set.validation.size()) /
                          static_cast<double>(points.size());
  EXPECT_NEAR(fraction, 0.1, 0.02);
}

TEST(SampleBuilder, TargetsScaledToUnitInterval) {
  const auto points = generate_dataset(sim::summit_v100(), smoke_config());
  const auto set = build_sample_set(points, {});
  for (const auto& s : set.train) {
    EXPECT_GE(s.target_scaled, 0.0);
    EXPECT_LE(s.target_scaled, 1.0);
    EXPECT_NEAR(set.target_scaler.inverse(s.target_scaled), s.runtime_us,
                1e-6 * s.runtime_us + 1e-9);
  }
}

TEST(SampleBuilder, ChildWeightScaleIsGlobalMax) {
  const auto points = generate_dataset(sim::summit_v100(), smoke_config());
  const auto set = build_sample_set(points, {});
  EXPECT_GT(set.child_weight_scale, 1.0);
  // No training-gate exceeds 1 by construction.
  for (const auto& s : set.train)
    for (const float gate : s.graph.relations.relations[0].gate)
      EXPECT_LE(gate, 1.0f);
}

TEST(SampleBuilder, RepresentationControlsRelations) {
  const auto points = generate_dataset(sim::summit_v100(), smoke_config());
  SampleBuildConfig raw;
  raw.representation = graph::Representation::kRawAst;
  const auto set = build_sample_set(points, raw);
  for (std::size_t r = 1; r < graph::kNumEdgeTypes; ++r)
    EXPECT_TRUE(set.train.front().graph.relations.relations[r].empty());
}

TEST(SampleBuilder, MetadataPreserved) {
  const auto points = generate_dataset(sim::summit_v100(), smoke_config());
  const auto set = build_sample_set(points, {});
  std::set<std::string> apps;
  for (const auto& s : set.validation) {
    EXPECT_FALSE(s.app_name.empty());
    EXPECT_FALSE(s.variant.empty());
    apps.insert(s.app_name);
  }
  EXPECT_GT(apps.size(), 3u);
}

TEST(SampleBuilder, PointGraphHonoursWorkers) {
  RawDataPoint point;
  point.variant = "gpu";
  point.num_teams = 16;
  point.num_threads = 32;  // workers = 512
  point.source = R"(
    double a[1024];
    void f(void) {
      #pragma omp target teams distribute parallel for num_teams(16) thread_limit(32)
      for (int i = 0; i < 1024; i++) a[i] = 0.0;
    }
  )";
  const auto g = build_point_graph(point, graph::Representation::kParaGraph);
  EXPECT_EQ(g.max_child_weight(), 2.0f);  // 1024 / 512
}

TEST(SampleBuilder, CpuWorkersAreThreads) {
  RawDataPoint point;
  point.variant = "cpu";
  point.num_teams = 1;
  point.num_threads = 8;
  point.source = R"(
    double a[1024];
    void f(void) {
      #pragma omp parallel for num_threads(8) schedule(static)
      for (int i = 0; i < 1024; i++) a[i] = 0.0;
    }
  )";
  const auto g = build_point_graph(point, graph::Representation::kParaGraph);
  EXPECT_EQ(g.max_child_weight(), 128.0f);  // 1024 / 8
}

TEST(SampleBuilder, EmptyDatasetThrows) {
  EXPECT_THROW(build_sample_set({}, {}), InternalError);
}

}  // namespace
}  // namespace pg::dataset
