// Tests for the model module: graph encoding, the assembled ParaGraphModel,
// the trainer, and evaluation metrics.
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/encoding.hpp"
#include "model/metrics.hpp"
#include "model/paragraph_model.hpp"
#include "model/trainer.hpp"
#include "support/check.hpp"

namespace pg::model {
namespace {

graph::ProgramGraph small_graph(graph::Representation representation =
                                    graph::Representation::kParaGraph) {
  auto r = frontend::parse_source(R"(
    void f(void) {
      for (int i = 0; i < 40; i++) {
        double x = 1.0;
      }
    }
  )");
  EXPECT_TRUE(r.ok());
  graph::BuildOptions options;
  options.representation = representation;
  return graph::build_graph(r.root(), options);
}

// -------------------------------------------------------------- encoding ---

TEST(Encoding, OneHotFeatures) {
  const auto g = small_graph();
  const EncodedGraph enc = encode_graph(g, 40.0);
  ASSERT_EQ(enc.features.rows(), g.num_nodes());
  ASSERT_EQ(enc.features.cols(), kNodeFeatureDim);
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    // The kind block is one-hot; the extra column carries literal magnitude.
    float row_sum = 0.0f;
    for (std::size_t j = 0; j < frontend::kNumNodeKinds; ++j)
      row_sum += enc.features(i, j);
    EXPECT_FLOAT_EQ(row_sum, 1.0f) << "node " << i;
    EXPECT_FLOAT_EQ(
        enc.features(i, static_cast<std::size_t>(g.nodes()[i].kind)), 1.0f);
  }
}

TEST(Encoding, LiteralMagnitudeColumn) {
  const auto g = small_graph();  // loop bound literal 40
  const EncodedGraph enc = encode_graph(g, 40.0);
  const std::size_t col = frontend::kNumNodeKinds;
  float bound_feature = 0.0f;
  for (std::size_t i = 0; i < g.num_nodes(); ++i) {
    if (g.nodes()[i].kind == frontend::NodeKind::kIntegerLiteral &&
        g.nodes()[i].label == "40")
      bound_feature = enc.features(i, col);
    if (g.nodes()[i].kind != frontend::NodeKind::kIntegerLiteral) {
      EXPECT_FLOAT_EQ(enc.features(i, col), 0.0f);
    }
  }
  EXPECT_NEAR(bound_feature, std::log2(41.0) / 16.0, 1e-6);
}

TEST(Encoding, OneRelationPerEdgeType) {
  const auto enc = encode_graph(small_graph(), 40.0);
  EXPECT_EQ(enc.relations.relations.size(), graph::kNumEdgeTypes);
  EXPECT_EQ(enc.relations.num_nodes, small_graph().num_nodes());
}

TEST(Encoding, ChildGatesAreScaledWeights) {
  const auto g = small_graph();
  const auto enc = encode_graph(g, 40.0);  // max weight is 40
  const auto& child = enc.relations.relations[0];
  float max_gate = 0.0f;
  float min_gate = 2.0f;
  for (const float gate : child.gate) {
    max_gate = std::max(max_gate, gate);
    min_gate = std::min(min_gate, gate);
  }
  EXPECT_FLOAT_EQ(max_gate, 1.0f);           // the loop-body edges
  EXPECT_NEAR(min_gate, 1.0f / 40.0f, 1e-6); // weight-1 edges
}

TEST(Encoding, NonChildGatesAreOne) {
  const auto enc = encode_graph(small_graph(), 40.0);
  for (std::size_t r = 1; r < enc.relations.relations.size(); ++r)
    for (const float gate : enc.relations.relations[r].gate)
      EXPECT_FLOAT_EQ(gate, 1.0f);
}

TEST(Encoding, GatesClampToOne) {
  // Scale smaller than the max weight: gates clamp at 1.
  const auto enc = encode_graph(small_graph(), 10.0);
  for (const float gate : enc.relations.relations[0].gate)
    EXPECT_LE(gate, 1.0f);
}

TEST(Encoding, RawAstEncodingHasUnitGates) {
  const auto enc =
      encode_graph(small_graph(graph::Representation::kRawAst), 1.0);
  for (const float gate : enc.relations.relations[0].gate)
    EXPECT_FLOAT_EQ(gate, 1.0f);
  // No other relations.
  for (std::size_t r = 1; r < enc.relations.relations.size(); ++r)
    EXPECT_TRUE(enc.relations.relations[r].empty());
}

TEST(Encoding, BadScaleThrows) {
  EXPECT_THROW(encode_graph(small_graph(), 0.0), InternalError);
}

// ----------------------------------------------------------------- model ---

EncodedGraph encoded_small() { return encode_graph(small_graph(), 40.0); }

TEST(ParaGraphModel, PredictIsDeterministic) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 3});
  const auto enc = encoded_small();
  const std::array<float, 2> aux = {0.5f, 0.5f};
  EXPECT_EQ(m.predict(enc, aux), m.predict(enc, aux));
}

TEST(ParaGraphModel, SameSeedSameModel) {
  ParaGraphModel a(ModelConfig{.hidden_dim = 8, .seed = 5});
  ParaGraphModel b(ModelConfig{.hidden_dim = 8, .seed = 5});
  const auto enc = encoded_small();
  const std::array<float, 2> aux = {0.1f, 0.9f};
  EXPECT_EQ(a.predict(enc, aux), b.predict(enc, aux));
}

TEST(ParaGraphModel, DifferentSeedDifferentModel) {
  ParaGraphModel a(ModelConfig{.hidden_dim = 8, .seed = 5});
  ParaGraphModel b(ModelConfig{.hidden_dim = 8, .seed = 6});
  const auto enc = encoded_small();
  const std::array<float, 2> aux = {0.1f, 0.9f};
  EXPECT_NE(a.predict(enc, aux), b.predict(enc, aux));
}

TEST(ParaGraphModel, AuxFeaturesInfluencePrediction) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 7});
  const auto enc = encoded_small();
  const double p1 = m.predict(enc, std::array<float, 2>{0.0f, 0.0f});
  const double p2 = m.predict(enc, std::array<float, 2>{1.0f, 1.0f});
  EXPECT_NE(p1, p2);
}

TEST(ParaGraphModel, EdgeWeightsInfluencePrediction) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 7});
  const auto g = small_graph();
  const auto enc_a = encode_graph(g, 40.0);
  const auto enc_b = encode_graph(g, 4000.0);  // much smaller gates
  const std::array<float, 2> aux = {0.5f, 0.5f};
  EXPECT_NE(m.predict(enc_a, aux), m.predict(enc_b, aux));
}

TEST(ParaGraphModel, WrongAuxSizeThrows) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8});
  const auto enc = encoded_small();
  const std::array<float, 3> bad = {0.0f, 0.0f, 0.0f};
  EXPECT_THROW((void)m.predict(enc, bad), InternalError);
}

TEST(ParaGraphModel, ParameterCountMatchesLayout) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8});
  // 3 convs x (3 per relation x 8 relations + self + bias) + 4 linears x 2.
  EXPECT_EQ(m.parameters().size(), 3u * (3u * 8u + 2u) + 8u);
  EXPECT_EQ(m.parameters().size(), m.num_params());
}

TEST(ParaGraphModel, GradientAccumulationScales) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 1});
  const auto enc = encoded_small();
  const std::array<float, 2> aux = {0.5f, 0.5f};
  std::vector<tensor::Matrix> g1, g2;
  for (auto* p : m.parameters()) {
    g1.emplace_back(p->rows(), p->cols());
    g2.emplace_back(p->rows(), p->cols());
  }
  (void)m.accumulate_gradients(enc, aux, 0.7, 1.0, g1);
  (void)m.accumulate_gradients(enc, aux, 0.7, 2.0, g2);
  for (std::size_t p = 0; p < g1.size(); ++p)
    for (std::size_t i = 0; i < g1[p].size(); ++i)
      EXPECT_NEAR(g2[p].data()[i], 2.0f * g1[p].data()[i],
                  1e-5f + 1e-3f * std::abs(g1[p].data()[i]));
}

// --------------------------------------------------------------- trainer ---

SampleSet synthetic_sample_set(std::size_t train_n, std::size_t val_n) {
  // Targets correlate with the aux features and weight scale so the signal
  // is learnable.
  SampleSet set;
  set.target_scaler.fit_bounds(0.0, 1000.0);
  set.teams_scaler.fit_bounds(1.0, 2.0);
  set.threads_scaler.fit_bounds(1.0, 2.0);
  const auto g = small_graph();
  auto make = [&](std::size_t i, std::size_t n) {
    TrainingSample s;
    const double t = static_cast<double>(i) / static_cast<double>(n);
    s.graph = encode_graph(g, 40.0 + 400.0 * t);
    s.aux = {static_cast<float>(t), static_cast<float>(1.0 - t)};
    s.runtime_us = 100.0 + 800.0 * t;
    s.target_scaled = set.target_scaler.transform(s.runtime_us);
    s.app_id = static_cast<std::int32_t>(i % 3);
    s.app_name = "app" + std::to_string(i % 3);
    return s;
  };
  for (std::size_t i = 0; i < train_n; ++i) set.train.push_back(make(i, train_n));
  for (std::size_t i = 0; i < val_n; ++i)
    set.validation.push_back(make(i + 1, val_n + 2));
  return set;
}

TEST(Trainer, LossDecreasesOnLearnableSignal) {
  auto set = synthetic_sample_set(64, 16);
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 2});
  TrainConfig config;
  config.epochs = 25;
  config.batch_size = 16;
  const TrainResult result = train_model(m, set, config);
  ASSERT_EQ(result.history.size(), 25u);
  EXPECT_LT(result.history.back().train_mse_scaled,
            result.history.front().train_mse_scaled * 0.5);
}

TEST(Trainer, ValidationPredictionsAligned) {
  auto set = synthetic_sample_set(32, 8);
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 2});
  TrainConfig config;
  config.epochs = 3;
  const TrainResult result = train_model(m, set, config);
  EXPECT_EQ(result.val_predictions_us.size(), set.validation.size());
  for (double p : result.val_predictions_us) EXPECT_GE(p, 0.0);
}

TEST(Trainer, EpochCallbackFires) {
  auto set = synthetic_sample_set(16, 4);
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 2});
  TrainConfig config;
  config.epochs = 5;
  int calls = 0;
  config.on_epoch = [&](int, double, double) { ++calls; };
  (void)train_model(m, set, config);
  EXPECT_EQ(calls, 5);
}

TEST(Trainer, PredictAllClampsAtZero) {
  auto set = synthetic_sample_set(8, 4);
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 2});
  const auto preds = predict_all(m, set.validation, set);
  for (double p : preds) EXPECT_GE(p, 0.0);  // no negative runtimes
}

TEST(Trainer, EmptyTrainSetThrows) {
  SampleSet set;
  set.target_scaler.fit_bounds(0, 1);
  ParaGraphModel m(ModelConfig{.hidden_dim = 8});
  EXPECT_THROW(train_model(m, set, {}), InternalError);
}

// --------------------------------------------------------------- metrics ---

std::vector<TrainingSample> metric_samples() {
  std::vector<TrainingSample> samples;
  auto add = [&](double runtime_us, const std::string& app) {
    TrainingSample s;
    s.runtime_us = runtime_us;
    s.app_name = app;
    samples.push_back(std::move(s));
  };
  add(1e6, "A");    // bin 0
  add(5e6, "A");    // bin 0
  add(15e6, "B");   // bin 1
  add(150e6, "B");  // bin 10
  return samples;
}

TEST(Metrics, BinnedRelativeErrorGroupsCorrectly) {
  const auto samples = metric_samples();
  const std::vector<double> preds = {1e6, 5e6, 15e6, 150e6};  // perfect
  const auto bins = binned_relative_error(samples, preds);
  ASSERT_EQ(bins.size(), 3u);  // bins 0, 1, 10 populated
  EXPECT_EQ(bins[0].bin, 0u);
  EXPECT_EQ(bins[0].count, 2u);
  EXPECT_EQ(bins[1].bin, 1u);
  EXPECT_EQ(bins[2].bin, 10u);
  for (const auto& b : bins) EXPECT_DOUBLE_EQ(b.relative_error, 0.0);
}

TEST(Metrics, BinnedErrorNormalisesByRange) {
  const auto samples = metric_samples();
  // Error of 14.9e6 on the first sample; range = 149e6.
  const std::vector<double> preds = {15.9e6, 5e6, 15e6, 150e6};
  const auto bins = binned_relative_error(samples, preds);
  EXPECT_NEAR(bins[0].relative_error, (14.9e6 / 2.0) / 149e6, 1e-9);
}

TEST(Metrics, PerAppErrorSplitsByApp) {
  const auto samples = metric_samples();
  const std::vector<double> preds = {1e6, 5e6, 15e6, 1e6};  // app B off
  const auto apps = per_app_error(samples, preds);
  ASSERT_EQ(apps.size(), 2u);
  EXPECT_EQ(apps[0].app_name, "A");
  EXPECT_DOUBLE_EQ(apps[0].error_rate, 0.0);
  EXPECT_EQ(apps[1].app_name, "B");
  EXPECT_GT(apps[1].error_rate, 0.0);
}

TEST(Metrics, BinLabels) {
  EXPECT_EQ(bin_label(0), "0-10");
  EXPECT_EQ(bin_label(9), "90-100");
  EXPECT_EQ(bin_label(10), "100 <");
}

TEST(Metrics, SizeMismatchThrows) {
  const auto samples = metric_samples();
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(binned_relative_error(samples, bad), InternalError);
  EXPECT_THROW(per_app_error(samples, bad), InternalError);
}

}  // namespace
}  // namespace pg::model
