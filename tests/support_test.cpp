// Tests for src/support: rng, stats, table, csv, env, check.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "support/check.hpp"
#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pg {
namespace {

// ---------------------------------------------------------------- check ---

TEST(Check, PassingConditionDoesNothing) { EXPECT_NO_THROW(check(true, "ok")); }

TEST(Check, FailingConditionThrowsInternalError) {
  EXPECT_THROW(check(false, "boom"), InternalError);
}

TEST(Check, ErrorMessageCarriesLocationAndText) {
  try {
    check(false, "my-marker");
    FAIL() << "expected throw";
  } catch (const InternalError& e) {
    EXPECT_NE(std::string(e.what()).find("my-marker"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("support_test"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng ---

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(99);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalHasApproxUnitMoments) {
  Rng rng(42);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, LognormalJitterMedianNearOne) {
  Rng rng(5);
  int below = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) below += (rng.lognormal_jitter(0.05) < 1.0);
  EXPECT_NEAR(static_cast<double>(below) / n, 0.5, 0.02);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(3);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (child1.next() == child2.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
  EXPECT_EQ(rng.index(0), 0u);
}

// ---------------------------------------------------------------- stats ---

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(stats::mean(xs), 5.0);
  EXPECT_DOUBLE_EQ(stats::stddev(xs), 2.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.5, 2.0};
  EXPECT_DOUBLE_EQ(stats::min(xs), -1.0);
  EXPECT_DOUBLE_EQ(stats::max(xs), 7.5);
}

TEST(Stats, RmsePerfectPredictionIsZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::rmse(a, a), 0.0);
}

TEST(Stats, RmseKnownValue) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> p = {3.0, 4.0};
  EXPECT_NEAR(stats::rmse(a, p), std::sqrt(12.5), 1e-12);
}

TEST(Stats, NormalizedRmseDividesByRange) {
  const std::vector<double> a = {0.0, 10.0};
  const std::vector<double> p = {1.0, 9.0};
  EXPECT_NEAR(stats::normalized_rmse(a, p), 0.1, 1e-12);
}

TEST(Stats, RelativeErrorMeanAbsOverRange) {
  const std::vector<double> a = {0.0, 10.0};
  const std::vector<double> p = {2.0, 10.0};
  EXPECT_NEAR(stats::relative_error(a, p), 0.1, 1e-12);
}

TEST(Stats, PearsonPerfectPositive) {
  const std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(stats::pearson(x, y), 1.0, 1e-12);
}

TEST(Stats, PearsonPerfectNegative) {
  const std::vector<double> x = {1.0, 2.0, 3.0};
  const std::vector<double> y = {3.0, 2.0, 1.0};
  EXPECT_NEAR(stats::pearson(x, y), -1.0, 1e-12);
}

TEST(Stats, PearsonConstantSeriesIsZero) {
  const std::vector<double> x = {1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(stats::pearson(x, y), 0.0);
}

TEST(Stats, TenSecondBinBoundaries) {
  EXPECT_EQ(stats::ten_second_bin(0.0), 0u);
  EXPECT_EQ(stats::ten_second_bin(9.999e6), 0u);
  EXPECT_EQ(stats::ten_second_bin(10.0e6), 1u);
  EXPECT_EQ(stats::ten_second_bin(95.0e6), 9u);
  EXPECT_EQ(stats::ten_second_bin(100.0e6), 10u);
  EXPECT_EQ(stats::ten_second_bin(1e9), 10u);  // clamped to last bin
}

TEST(Stats, SizeMismatchThrows) {
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> p = {1.0};
  EXPECT_THROW(stats::rmse(a, p), InternalError);
}

TEST(Stats, EmptyInputThrows) {
  const std::vector<double> empty;
  EXPECT_THROW(stats::mean(empty), InternalError);
  EXPECT_THROW(stats::stddev(empty), InternalError);
}

// ---------------------------------------------------------------- table ---

TEST(TextTable, RendersHeaderSeparatorAndRows) {
  TextTable t({"A", "B"});
  t.add_row({"1", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("A"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TextTable, ColumnsPadToWidestCell) {
  TextTable t({"X", "Y"});
  t.add_row({"longvalue", "z"});
  const std::string out = t.render();
  // Header row must be padded to the data width: "X        " before " | ".
  EXPECT_NE(out.find("X         | Y"), std::string::npos);
}

TEST(TextTable, ArityMismatchThrows) {
  TextTable t({"A", "B"});
  EXPECT_THROW(t.add_row({"only-one"}), InternalError);
}

TEST(FormatDouble, SignificantDigits) {
  EXPECT_EQ(format_double(3.14159, 3), "3.14");
  EXPECT_EQ(format_double(1234.0, 2), "1.2e+03");
}

TEST(FormatSci, PaperStyle) {
  EXPECT_EQ(format_sci(0.009, 1), "9 x 10^-3");
  EXPECT_EQ(format_sci(0.0), "0");
}

// ------------------------------------------------------------------ csv ---

TEST(CsvWriter, WritesHeaderAndQuotedCells) {
  const auto path = std::filesystem::temp_directory_path() / "pg_csv_test.csv";
  {
    CsvWriter csv(path.string(), {"name", "value"});
    csv.add_row({"plain", "1"});
    csv.add_row({"with,comma", "quote\"inside"});
  }
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,value");
  std::getline(in, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(in, line);
  EXPECT_EQ(line, "\"with,comma\",\"quote\"\"inside\"");
  std::filesystem::remove(path);
}

TEST(CsvWriter, ArityMismatchThrows) {
  const auto path = std::filesystem::temp_directory_path() / "pg_csv_test2.csv";
  CsvWriter csv(path.string(), {"a"});
  EXPECT_THROW(csv.add_row({"1", "2"}), InternalError);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------------ env ---

TEST(Env, StringFallbackWhenUnset) {
  ::unsetenv("PG_TEST_UNSET_VAR");
  EXPECT_EQ(env_string("PG_TEST_UNSET_VAR", "fallback"), "fallback");
}

TEST(Env, IntParsesAndFallsBack) {
  ::setenv("PG_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("PG_TEST_INT", 0), 42);
  ::setenv("PG_TEST_INT", "notanumber", 1);
  EXPECT_EQ(env_int("PG_TEST_INT", 7), 7);
  ::unsetenv("PG_TEST_INT");
}

TEST(Env, RunScaleParsing) {
  ::setenv("PARAGRAPH_SCALE", "smoke", 1);
  EXPECT_EQ(run_scale_from_env(), RunScale::kSmoke);
  ::setenv("PARAGRAPH_SCALE", "full", 1);
  EXPECT_EQ(run_scale_from_env(), RunScale::kFull);
  ::setenv("PARAGRAPH_SCALE", "anything-else", 1);
  EXPECT_EQ(run_scale_from_env(), RunScale::kDefault);
  ::unsetenv("PARAGRAPH_SCALE");
  EXPECT_EQ(run_scale_from_env(), RunScale::kDefault);
}

TEST(Env, ScaleNames) {
  EXPECT_STREQ(to_string(RunScale::kSmoke), "smoke");
  EXPECT_STREQ(to_string(RunScale::kDefault), "default");
  EXPECT_STREQ(to_string(RunScale::kFull), "full");
}

TEST(Env, ChunkSizeValidatesAndClamps) {
  ::unsetenv("PARAGRAPH_CHUNK");
  EXPECT_EQ(env_chunk_size(64), 64u);  // unset -> fallback
  ::setenv("PARAGRAPH_CHUNK", "17", 1);
  EXPECT_EQ(env_chunk_size(64), 17u);
  ::setenv("PARAGRAPH_CHUNK", "0", 1);
  EXPECT_EQ(env_chunk_size(64), 64u);  // invalid -> fallback
  ::setenv("PARAGRAPH_CHUNK", "-5", 1);
  EXPECT_EQ(env_chunk_size(64), 64u);
  ::setenv("PARAGRAPH_CHUNK", "notanumber", 1);
  EXPECT_EQ(env_chunk_size(64), 64u);
  ::setenv("PARAGRAPH_CHUNK", "999999999999", 1);  // absurd -> clamped
  EXPECT_EQ(env_chunk_size(64), kMaxChunkSize);
  ::unsetenv("PARAGRAPH_CHUNK");
}

}  // namespace
}  // namespace pg
