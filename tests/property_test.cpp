// Property tests spanning the whole benchmark suite: for every Table-I
// kernel, physical-consistency invariants of the profile -> simulator
// pipeline and monotonicity of the graph weights. These are the guards
// that keep the simulated ground truth *learnable for the right reasons*:
// a model that predicts runtime from ParaGraph weights only works if
// runtime and weights move together.
#include <gtest/gtest.h>

#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "frontend/parser.hpp"
#include "sim/kernel_profile.hpp"
#include "sim/runtime_simulator.hpp"

namespace pg {
namespace {

using dataset::KernelSpec;
using dataset::SizePoint;
using dataset::Variant;

const KernelSpec& kernel_at(std::size_t index) {
  return dataset::benchmark_suite()[index];
}

sim::KernelProfile profile_of(const KernelSpec& spec, Variant variant,
                              const SizePoint& size, std::int64_t teams,
                              std::int64_t threads) {
  const std::string source =
      dataset::instantiate_source(spec, variant, size, teams, threads);
  const auto parsed = frontend::parse_source(source);
  EXPECT_TRUE(parsed.ok()) << spec.kernel;
  return sim::profile_kernel(parsed.root());
}

double clean_runtime(const KernelSpec& spec, Variant variant,
                     const SizePoint& size, const sim::Platform& platform,
                     std::int64_t teams, std::int64_t threads) {
  sim::SimOptions noise_free;
  noise_free.noise_sigma = 0.0;
  return sim::simulate_runtime_us(profile_of(spec, variant, size, teams, threads),
                                  platform, noise_free);
}

class SuiteProperties : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteProperties, RuntimeMonotonicInProblemSize) {
  // Bigger problem => never faster, on a CPU and a GPU.
  const KernelSpec& spec = kernel_at(GetParam());
  for (const auto& platform : {sim::corona_epyc7401(), sim::summit_v100()}) {
    const bool gpu = platform.kind == sim::DeviceKind::kGpu;
    const Variant variant = gpu ? Variant::kGpu : Variant::kCpu;
    double previous = 0.0;
    for (const SizePoint& size : spec.default_sizes) {
      const double t = clean_runtime(spec, variant, size, platform, 256, 64);
      EXPECT_GE(t, previous * 0.999) << spec.kernel << " on " << platform.name;
      previous = t;
    }
  }
}

TEST_P(SuiteProperties, TransferVariantNeverFaster) {
  // gpu_mem = gpu + host<->device copies: strictly more work.
  const KernelSpec& spec = kernel_at(GetParam());
  const auto gpu = sim::summit_v100();
  for (const SizePoint& size : spec.default_sizes) {
    const double plain = clean_runtime(spec, Variant::kGpu, size, gpu, 256, 256);
    const double mem = clean_runtime(spec, Variant::kGpuMem, size, gpu, 256, 256);
    EXPECT_GE(mem, plain) << spec.kernel;
  }
}

TEST_P(SuiteProperties, CollapseHelpsOrMatchesOnGpuForLargestSize) {
  // Collapsing flattens the iteration space => occupancy can only improve
  // in the simulator's model.
  const KernelSpec& spec = kernel_at(GetParam());
  if (!spec.collapsible) GTEST_SKIP() << "kernel not collapsible";
  const auto gpu = sim::corona_mi50();
  const SizePoint& size = spec.default_sizes.back();
  const double flat = clean_runtime(spec, Variant::kGpuCollapse, size, gpu, 256, 256);
  const double nested = clean_runtime(spec, Variant::kGpu, size, gpu, 256, 256);
  EXPECT_LE(flat, nested * 1.001) << spec.kernel;
}

TEST_P(SuiteProperties, MoreCpuThreadsNeverMuchSlowerOnLargestSize) {
  const KernelSpec& spec = kernel_at(GetParam());
  const auto cpu = sim::summit_power9();
  const SizePoint& size = spec.default_sizes.back();
  const double one = clean_runtime(spec, Variant::kCpu, size, cpu, 1, 1);
  const double many = clean_runtime(spec, Variant::kCpu, size, cpu, 1, cpu.cores);
  // Large kernels must benefit; allow a generous fudge for fork overhead.
  EXPECT_LE(many, one * 1.05) << spec.kernel;
}

TEST_P(SuiteProperties, GraphWeightMonotonicInProblemSize) {
  // ParaGraph's max Child weight must grow with the iteration space — this
  // is the channel through which the model sees problem size.
  const KernelSpec& spec = kernel_at(GetParam());
  float previous = 0.0f;
  for (const SizePoint& size : spec.default_sizes) {
    dataset::RawDataPoint point;
    point.variant = "cpu";
    point.num_teams = 1;
    point.num_threads = 4;
    point.source = dataset::instantiate_source(spec, Variant::kCpu, size, 1, 4);
    const auto g =
        dataset::build_point_graph(point, graph::Representation::kParaGraph);
    EXPECT_GE(g.max_child_weight(), previous) << spec.kernel;
    previous = g.max_child_weight();
  }
}

TEST_P(SuiteProperties, ProfileScalesWithIterationSpace) {
  // Dynamic op counts must scale (at least linearly) from the smallest to
  // the largest sweep size.
  const KernelSpec& spec = kernel_at(GetParam());
  const auto small = profile_of(spec, Variant::kCpu, spec.default_sizes.front(),
                                1, 4);
  const auto large = profile_of(spec, Variant::kCpu, spec.default_sizes.back(),
                                1, 4);
  EXPECT_GT(large.total_ops() + large.loads + large.stores,
            2.0 * (small.total_ops() + small.loads + small.stores))
      << spec.kernel;
}

TEST_P(SuiteProperties, RuntimeNoiseIsBounded) {
  // Measurement jitter stays within a plausible envelope (+-25%).
  const KernelSpec& spec = kernel_at(GetParam());
  const auto gpu = sim::summit_v100();
  const auto profile =
      profile_of(spec, Variant::kGpu, spec.default_sizes.back(), 256, 256);
  sim::SimOptions options;
  const double clean = sim::simulate_runtime_us(profile, gpu, options);
  pg::Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    const double measured = sim::measure_runtime_us(profile, gpu, rng, options);
    EXPECT_GT(measured, clean * 0.75) << spec.kernel;
    EXPECT_LT(measured, clean * 1.35) << spec.kernel;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SuiteProperties,
                         ::testing::Range<std::size_t>(0, 17),
                         [](const auto& info) {
                           return dataset::benchmark_suite()[info.param].kernel;
                         });

}  // namespace
}  // namespace pg
