// Mutation fuzzing of the .pgann ANN-index container (docs/FORMAT.md).
//
// A well-formed index is mutated 1000 seeded ways — bit flips, truncations,
// splices, zeroed ranges, random u64 overwrites (landing on section sizes,
// counts, checksums, and neighbor ids) — and every mutant is pushed through
// AnnIndex::load over a heap-exact buffer. The contract matches the .pgds
// fuzzer's: a mutant either loads or throws io::FormatError; nothing may
// crash, hang, over-read (ASan-visible), or raise any other exception.
// Build with -DPARAGRAPH_SANITIZE=ON to run this under ASan+UBSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <random>
#include <sstream>
#include <string>

#include "ann/ann_index.hpp"
#include "support/rng.hpp"
#include "tensor/matrix.hpp"

namespace pg::ann {
namespace {

std::string base_index() {
  tensor::Matrix embeddings(60, 6);
  Rng rng(2024);
  for (float& v : embeddings.data())
    v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  AnnConfig config;
  config.k = 5;
  const AnnIndex index = AnnIndex::build(embeddings, config, 0xabadcafeull);
  std::ostringstream os(std::ios::binary);
  index.save(os);
  return os.str();
}

/// FormatError is the only acceptable failure; the bytes are staged in a
/// heap buffer sized exactly to the payload so over-reads trip ASan.
void expect_graceful(const std::string& bytes, std::uint64_t seed) {
  const auto heap =
      std::make_unique<unsigned char[]>(bytes.size() ? bytes.size() : 1);
  std::memcpy(heap.get(), bytes.data(), bytes.size());
  try {
    const AnnIndex index = AnnIndex::load(heap.get(), bytes.size());
    // A surviving mutant must still answer queries within bounds.
    if (index.size() > 0) {
      const auto hits =
          index.search(index.embeddings().row_span(0), 3);
      for (const Neighbor& h : hits) ASSERT_LT(h.index, index.size());
    }
  } catch (const io::FormatError&) {
    // rejected — acceptable
  } catch (const std::exception& e) {
    FAIL() << "seed " << seed
           << ": AnnIndex::load raised non-FormatError: " << e.what();
  }
}

TEST(AnnFuzz, ThousandSeededMutationsNeverCrash) {
  const std::string base = base_index();
  for (std::uint64_t seed = 0; seed < 1000; ++seed) {
    std::mt19937_64 rng(seed);
    std::string bytes = base;
    const int rounds = 1 + static_cast<int>(rng() % 3);
    for (int round = 0; round < rounds; ++round) {
      switch (rng() % 6) {
        case 0: {  // flip one bit
          const std::size_t at = rng() % bytes.size();
          bytes[at] = static_cast<char>(bytes[at] ^ (1u << (rng() % 8)));
          break;
        }
        case 1:  // truncate
          bytes.resize(rng() % (bytes.size() + 1));
          break;
        case 2: {  // splice a random chunk over another position
          if (bytes.size() < 2) break;
          const std::size_t len = 1 + rng() % 64;
          const std::size_t src = rng() % bytes.size();
          const std::size_t dst = rng() % bytes.size();
          for (std::size_t k = 0; k < len; ++k)
            bytes[(dst + k) % bytes.size()] = bytes[(src + k) % bytes.size()];
          break;
        }
        case 3: {  // zero a range
          const std::size_t at = rng() % bytes.size();
          const std::size_t len =
              std::min<std::size_t>(1 + rng() % 128, bytes.size() - at);
          std::memset(bytes.data() + at, 0, len);
          break;
        }
        case 4: {  // random u64 overwrite (hits sizes/counts/checksums/ids)
          if (bytes.size() < 8) break;
          const std::size_t at = rng() % (bytes.size() - 7);
          const std::uint64_t v = rng();
          std::memcpy(bytes.data() + at, &v, 8);
          break;
        }
        default:  // append garbage
          for (std::size_t k = 0, len = 1 + rng() % 32; k < len; ++k)
            bytes.push_back(static_cast<char>(rng() & 0xFF));
      }
      if (bytes.empty()) break;
    }
    expect_graceful(bytes, seed);
  }
}

}  // namespace
}  // namespace pg::ann
