// Bitwise parity harness for the runtime-dispatched SIMD kernel layer
// (tensor/simd.hpp): every kernel, run under PARAGRAPH_SIMD=scalar and under
// the best dispatched level this machine supports, must produce BYTE-
// identical outputs — including remainder lanes (n % 8 != 0), empty inputs,
// single-row matrices, and the dense/sparse hybrid paths. Also pins the
// dispatch probe's clean fallback behaviour and end-to-end model/trainer
// parity (predictions and trained checkpoints byte-equal across levels).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstring>
#include <utility>
#include <vector>

#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/encoding.hpp"
#include "model/engine.hpp"
#include "model/trainer.hpp"
#include "nn/adam.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/matrix.hpp"
#include "tensor/simd.hpp"

namespace pg::tensor::simd {
namespace {

const KernelTable& scalar_table() { return kernels_for(SimdLevel::kScalar); }
const KernelTable& best_table() { return kernels_for(max_supported_level()); }

/// Restores the process-wide active level when a test that re-selects it
/// (the end-to-end parity tests) finishes.
struct LevelGuard {
  SimdLevel saved = active_level();
  ~LevelGuard() { set_active_level(saved); }
};

/// Random matrix; `sparsity` in [0,1] zeroes that fraction of entries so
/// both sides of the dense/sparse hybrid run.
Matrix random_matrix(std::size_t rows, std::size_t cols, pg::Rng& rng,
                     double sparsity = 0.0) {
  Matrix m(rows, cols);
  uniform_init(m, rng, -2.0f, 2.0f);
  if (sparsity > 0.0)
    for (float& v : m.data())
      if (rng.uniform() < sparsity) v = 0.0f;
  return m;
}

void expect_bytes_equal(const Matrix& a, const Matrix& b, const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.size() * sizeof(float)),
            0)
      << what;
}

// Shape grid: remainder lanes (not multiples of 4 or 8), the templated
// widths (8/16/24/32), single rows/columns, and a width > any lane count.
constexpr std::array<std::array<std::size_t, 3>, 10> kShapes = {{
    {1, 1, 1},
    {1, 3, 5},
    {2, 7, 8},
    {3, 5, 13},
    {4, 24, 24},
    {5, 32, 16},
    {7, 10, 31},
    {9, 6, 40},
    {6, 17, 32},
    {1, 24, 24},  // single-row matrix on the templated width
}};

TEST(KernelParity, MatmulAllShapesAndDensities) {
  pg::Rng rng(11);
  for (const auto [m, k, n] : kShapes) {
    for (const double sparsity : {0.0, 0.7}) {
      const Matrix a = random_matrix(m, k, rng, sparsity);
      const Matrix b = random_matrix(k, n, rng);
      Matrix c_scalar(m, n, 0.5f);  // pre-filled garbage: must be overwritten
      Matrix c_simd(m, n, -0.5f);
      scalar_table().matmul(a.data().data(), b.data().data(),
                            c_scalar.data().data(), m, k, n, false);
      best_table().matmul(a.data().data(), b.data().data(),
                          c_simd.data().data(), m, k, n, false);
      expect_bytes_equal(c_scalar, c_simd, "matmul");
    }
  }
}

TEST(KernelParity, MatmulTransposeAAccumulate) {
  pg::Rng rng(13);
  for (const auto [k, m, n] : kShapes) {  // k rows of A, m cols, n cols of B
    const Matrix a = random_matrix(k, m, rng, 0.4);
    const Matrix b = random_matrix(k, n, rng);
    Matrix c0 = random_matrix(m, n, rng);  // accumulate on identical bases
    Matrix c1 = c0;
    scalar_table().matmul_t_a_acc(a.data().data(), b.data().data(),
                                  c0.data().data(), m, k, n);
    best_table().matmul_t_a_acc(a.data().data(), b.data().data(),
                                c1.data().data(), m, k, n);
    expect_bytes_equal(c0, c1, "matmul_t_a_acc");
  }
}

TEST(KernelParity, ColumnSumsAccumulate) {
  pg::Rng rng(17);
  for (const std::size_t cols : {1u, 5u, 8u, 13u, 24u, 31u}) {
    const Matrix a = random_matrix(9, cols, rng);
    Matrix s0 = random_matrix(1, cols, rng);
    Matrix s1 = s0;
    scalar_table().column_sums_acc(s0.data().data(), a.data().data(), 9, cols);
    best_table().column_sums_acc(s1.data().data(), a.data().data(), 9, cols);
    expect_bytes_equal(s0, s1, "column_sums_acc");
  }
}

TEST(KernelParity, SegmentRowMeanRaggedSegments) {
  pg::Rng rng(19);
  for (const std::size_t cols : {1u, 7u, 8u, 24u, 29u}) {
    // Ragged segments including length-1; last offset == rows.
    const std::vector<std::uint32_t> offsets = {0, 1, 4, 9, 10, 16};
    const Matrix a = random_matrix(16, cols, rng);
    Matrix o0(offsets.size() - 1, cols, 1.0f);
    Matrix o1(offsets.size() - 1, cols, -1.0f);
    scalar_table().segment_row_mean(o0.data().data(), a.data().data(),
                                    offsets.data(), offsets.size() - 1, cols);
    best_table().segment_row_mean(o1.data().data(), a.data().data(),
                                  offsets.data(), offsets.size() - 1, cols);
    expect_bytes_equal(o0, o1, "segment_row_mean");
  }
  // Single-row matrix, one segment: the row_mean_into-equivalence case.
  const Matrix single = random_matrix(1, 24, rng);
  const std::vector<std::uint32_t> one = {0, 1};
  Matrix s0(1, 24), s1(1, 24);
  scalar_table().segment_row_mean(s0.data().data(), single.data().data(),
                                  one.data(), 1, 24);
  best_table().segment_row_mean(s1.data().data(), single.data().data(),
                                one.data(), 1, 24);
  expect_bytes_equal(s0, s1, "segment_row_mean single");
}

TEST(KernelParity, SegmentRowMeanRejectsEmptySegmentsAtEveryLevel) {
  // The wrapper's precondition fires before dispatch, so the contract is
  // level-independent by construction — pin it anyway.
  LevelGuard guard;
  pg::Rng rng(23);
  const Matrix a = random_matrix(4, 8, rng);
  const std::vector<std::uint32_t> offsets = {0, 2, 2, 4};  // empty middle
  for (const SimdLevel level : {SimdLevel::kScalar, max_supported_level()}) {
    set_active_level(level);
    Matrix out(offsets.size() - 1, 8);
    EXPECT_THROW(segment_row_mean_into(out, a, offsets), pg::InternalError)
        << level_name(level);
  }
}

TEST(KernelParity, AddBiasRows) {
  pg::Rng rng(37);
  for (const std::size_t cols : {1u, 7u, 8u, 24u, 26u}) {
    const Matrix bias = random_matrix(1, cols, rng);
    Matrix y0 = random_matrix(5, cols, rng);
    Matrix y1 = y0;
    scalar_table().add_bias_rows(y0.data().data(), bias.data().data(), 5, cols);
    best_table().add_bias_rows(y1.data().data(), bias.data().data(), 5, cols);
    expect_bytes_equal(y0, y1, "add_bias_rows");
  }
}

TEST(KernelParity, ActivationsIncludingRemainderLanes) {
  pg::Rng rng(29);
  for (const std::size_t n : {1u, 3u, 8u, 15u, 32u, 37u}) {
    const Matrix x = random_matrix(1, n, rng, 0.3);  // zeros hit x > 0 edges
    const Matrix dy = random_matrix(1, n, rng);
    Matrix a0(1, n), a1(1, n);

    scalar_table().relu(a0.data().data(), x.data().data(), n);
    best_table().relu(a1.data().data(), x.data().data(), n);
    expect_bytes_equal(a0, a1, "relu");

    scalar_table().relu_backward(a0.data().data(), dy.data().data(),
                                 x.data().data(), n);
    best_table().relu_backward(a1.data().data(), dy.data().data(),
                               x.data().data(), n);
    expect_bytes_equal(a0, a1, "relu_backward");

    scalar_table().leaky_relu(a0.data().data(), x.data().data(), 0.2f, n);
    best_table().leaky_relu(a1.data().data(), x.data().data(), 0.2f, n);
    expect_bytes_equal(a0, a1, "leaky_relu");

    scalar_table().leaky_relu_grad(a0.data().data(), x.data().data(), 0.2f, n);
    best_table().leaky_relu_grad(a1.data().data(), x.data().data(), 0.2f, n);
    expect_bytes_equal(a0, a1, "leaky_relu_grad");
  }
}

TEST(KernelParity, AdamUpdateSequences) {
  pg::Rng rng(31);
  for (const double weight_decay : {0.0, 0.013}) {
    const std::size_t n = 37;  // remainder lanes on every vector width
    Matrix t0 = random_matrix(1, n, rng);
    Matrix m0(1, n), v0(1, n);
    Matrix t1 = t0, m1 = m0, v1 = v0;
    AdamStep step;
    step.weight_decay = weight_decay;
    for (int s = 1; s <= 3; ++s) {
      const Matrix g = random_matrix(1, n, rng);
      step.bias1 = 1.0 - std::pow(step.beta1, s);
      step.bias2 = 1.0 - std::pow(step.beta2, s);
      scalar_table().adam_update(t0.data().data(), g.data().data(),
                                 m0.data().data(), v0.data().data(), n, step);
      best_table().adam_update(t1.data().data(), g.data().data(),
                               m1.data().data(), v1.data().data(), n, step);
    }
    expect_bytes_equal(t0, t1, "adam theta");
    expect_bytes_equal(m0, m1, "adam m");
    expect_bytes_equal(v0, v1, "adam v");
  }
}

// ------------------------------------------------------ end-to-end ---------

graph::ProgramGraph small_graph() {
  auto r = frontend::parse_source(R"(
    void f(void) {
      for (int i = 0; i < 40; i++) {
        for (int j = 0; j < 8; j++) {
          double x = 1.0;
        }
      }
    }
  )");
  EXPECT_TRUE(r.ok());
  return graph::build_graph(r.root(), {});
}

/// Predictions + full gradient buffers under one dispatch level.
std::pair<std::vector<double>, std::vector<Matrix>> run_model_pass(
    SimdLevel level, std::size_t hidden) {
  LevelGuard guard;
  set_active_level(level);
  model::ParaGraphModel m(model::ModelConfig{.hidden_dim = hidden, .seed = 3});
  const auto g = small_graph();
  std::vector<Matrix> grads;
  for (auto* p : m.parameters()) grads.emplace_back(p->rows(), p->cols());
  std::vector<double> preds;
  Workspace ws;
  for (int i = 0; i < 4; ++i) {
    const double t = 0.2 * (i + 1);
    const auto enc = model::encode_graph(g, 40.0 + 100.0 * t);
    const std::array<float, 2> aux = {static_cast<float>(t),
                                      static_cast<float>(1.0 - t)};
    preds.push_back(m.predict(enc, aux, ws));
    preds.push_back(
        m.accumulate_gradients(enc, aux, 0.5, 1.0, grads, ws));
  }
  return {std::move(preds), std::move(grads)};
}

TEST(EndToEndParity, ForwardAndBackwardBitwiseAcrossLevels) {
  // hidden 8/24 exercise the templated widths, 10 the runtime-width path.
  for (const std::size_t hidden : {8u, 10u, 24u}) {
    const auto [scalar_preds, scalar_grads] =
        run_model_pass(SimdLevel::kScalar, hidden);
    const auto [simd_preds, simd_grads] =
        run_model_pass(max_supported_level(), hidden);
    EXPECT_EQ(scalar_preds, simd_preds) << "hidden " << hidden;
    ASSERT_EQ(scalar_grads.size(), simd_grads.size());
    for (std::size_t p = 0; p < scalar_grads.size(); ++p)
      expect_bytes_equal(scalar_grads[p], simd_grads[p], "gradient");
  }
}

/// Trains a small model under `level`; returns the flattened parameters.
std::vector<float> train_and_flatten(SimdLevel level) {
  LevelGuard guard;
  set_active_level(level);
  model::SampleSet set;
  set.target_scaler.fit_bounds(0.0, 1000.0);
  set.teams_scaler.fit_bounds(1.0, 2.0);
  set.threads_scaler.fit_bounds(1.0, 2.0);
  const auto g = small_graph();
  for (std::size_t i = 0; i < 10; ++i) {
    model::TrainingSample s;
    const double t = static_cast<double>(i) / 10.0;
    s.graph = model::encode_graph(g, 40.0 + 400.0 * t);
    s.aux = {static_cast<float>(t), static_cast<float>(1.0 - t)};
    s.runtime_us = 100.0 + 800.0 * t;
    s.target_scaled = set.target_scaler.transform(s.runtime_us);
    (i % 3 == 0 ? set.validation : set.train).push_back(std::move(s));
  }
  model::ParaGraphModel m(model::ModelConfig{.hidden_dim = 8, .seed = 21});
  model::TrainConfig config;
  config.epochs = 3;
  config.batch_size = 4;
  (void)model::train_model(m, set, config);
  std::vector<float> flat;
  for (const auto* p : std::as_const(m).parameters())
    flat.insert(flat.end(), p->data().begin(), p->data().end());
  return flat;
}

TEST(EndToEndParity, TrainedCheckpointBitwiseAcrossLevels) {
  const std::vector<float> scalar_params =
      train_and_flatten(SimdLevel::kScalar);
  const std::vector<float> simd_params =
      train_and_flatten(max_supported_level());
  ASSERT_EQ(scalar_params.size(), simd_params.size());
  EXPECT_EQ(std::memcmp(scalar_params.data(), simd_params.data(),
                        scalar_params.size() * sizeof(float)),
            0);
}

// --------------------------------------------------- dispatch probe --------

TEST(DispatchProbe, UnknownNamesFallBackCleanly) {
  EXPECT_EQ(level_from_name("avx512"), std::nullopt);
  EXPECT_EQ(level_from_name(""), std::nullopt);
  EXPECT_EQ(level_from_name("SCALAR"), std::nullopt);  // names are exact
  // Unknown env/CLI value -> the probe's own choice, never a crash.
  EXPECT_EQ(resolve_level("bogus", max_supported_level()),
            max_supported_level());
  EXPECT_EQ(resolve_level("", SimdLevel::kScalar), SimdLevel::kScalar);
}

TEST(DispatchProbe, KnownLevelsResolveAndClamp) {
  EXPECT_EQ(resolve_level("scalar", max_supported_level()),
            SimdLevel::kScalar);
  // A known-but-unsupported level clamps down to the best supported one;
  // a supported one resolves to itself.
  const SimdLevel avx2 = resolve_level("avx2", SimdLevel::kScalar);
  EXPECT_LE(static_cast<int>(avx2), static_cast<int>(max_supported_level()));
  EXPECT_TRUE(level_supported(avx2));
  EXPECT_TRUE(level_supported(SimdLevel::kScalar));
}

TEST(DispatchProbe, SetActiveLevelClampsToSupported) {
  LevelGuard guard;
  set_active_level(SimdLevel::kAvx2);  // may not be supported here
  EXPECT_TRUE(level_supported(active_level()));
  set_active_level(SimdLevel::kScalar);
  EXPECT_EQ(active_level(), SimdLevel::kScalar);
  // The scalar and best tables are distinct objects unless scalar IS best.
  if (max_supported_level() != SimdLevel::kScalar) {
    EXPECT_NE(&scalar_table(), &best_table());
  }
}

TEST(DispatchProbe, LevelNamesRoundTrip) {
  for (const SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kSse2, SimdLevel::kAvx2}) {
    const auto parsed = level_from_name(level_name(level));
    ASSERT_TRUE(parsed.has_value()) << level_name(level);
    EXPECT_EQ(*parsed, level) << level_name(level);
  }
}

}  // namespace
}  // namespace pg::tensor::simd
