// Randomized robustness test for the frontend: ~1k seeded-random mutations
// (truncations, byte flips, token splices, insertions, deletions) of the
// golden-corpus kernels and suite kernels are fed to the lexer/parser. The
// contract: parse_source always *returns* — malformed input produces clean
// Diagnostics errors, never a crash, throw, or UB (the suite runs under the
// ASan+UBSan CI job, which turns latent UB into failures here).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "dataset/kernel_spec.hpp"
#include "dataset/variants.hpp"
#include "frontend/parser.hpp"
#include "support/rng.hpp"

#ifndef PG_GOLDEN_DIR
#error "PG_GOLDEN_DIR must point at tests/golden"
#endif

namespace pg {
namespace {

std::vector<std::string> seed_sources() {
  std::vector<std::string> sources;
  // The four golden corpus kernels, read from disk.
  for (const char* name : {"matvec_cpu", "matmul_gpu_collapse_mem",
                           "corr_gpu_mem", "gauss_seidel_cpu_collapse"}) {
    std::ifstream is(std::string(PG_GOLDEN_DIR) + "/" + name + ".c");
    EXPECT_TRUE(static_cast<bool>(is)) << name;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    sources.push_back(buffer.str());
  }
  // One instantiation of every suite kernel for syntax diversity.
  for (const auto& spec : dataset::benchmark_suite()) {
    const auto variant = spec.collapsible ? dataset::Variant::kGpuCollapseMem
                                          : dataset::Variant::kGpuMem;
    sources.push_back(dataset::instantiate_source(
        spec, variant, spec.default_sizes.front(), 64, 64));
  }
  return sources;
}

/// Applies one seeded mutation. Mutations are intentionally crude — the
/// point is hostile input, not plausible input.
std::string mutate(const std::string& source, Rng& rng) {
  std::string s = source;
  switch (rng.index(6)) {
    case 0: {  // truncation
      s.resize(rng.index(s.size() + 1));
      break;
    }
    case 1: {  // byte flip (any value, including NUL and >0x7f)
      if (s.empty()) break;
      s[rng.index(s.size())] =
          static_cast<char>(static_cast<unsigned char>(rng.index(256)));
      break;
    }
    case 2: {  // token splice: copy a random slice over a random position
      if (s.size() < 4) break;
      const std::size_t from = rng.index(s.size());
      const std::size_t len = 1 + rng.index(std::min<std::size_t>(
                                      32, s.size() - from));
      const std::size_t to = rng.index(s.size());
      s.insert(to, s.substr(from, len));
      break;
    }
    case 3: {  // random insertion of punctuation-heavy garbage
      static const char kGarbage[] = "(){}[]<>;:#\"'\\*/%&|^!~.,$`@0x";
      const std::size_t to = s.empty() ? 0 : rng.index(s.size());
      const std::size_t count = 1 + rng.index(8);
      std::string junk;
      for (std::size_t i = 0; i < count; ++i)
        junk += kGarbage[rng.index(sizeof kGarbage - 1)];
      s.insert(to, junk);
      break;
    }
    case 4: {  // range deletion
      if (s.size() < 2) break;
      const std::size_t from = rng.index(s.size());
      s.erase(from, 1 + rng.index(std::min<std::size_t>(64, s.size() - from)));
      break;
    }
    default: {  // digit bombing: stretch a number into a huge literal
      const std::size_t digit = s.find_first_of("0123456789");
      if (digit == std::string::npos) break;
      std::string digits;
      const std::size_t count = 1 + rng.index(30);
      for (std::size_t i = 0; i < count; ++i)
        digits += static_cast<char>('0' + rng.index(10));
      s.insert(digit, digits);
      break;
    }
  }
  return s;
}

TEST(FrontendRobustness, SeededMutationsNeverCrashTheParser) {
  const std::vector<std::string> sources = seed_sources();
  ASSERT_FALSE(sources.empty());

  Rng rng(0xfeedfacecafebeefULL);
  constexpr int kIterations = 1000;
  int parsed_ok = 0;
  int rejected = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::string mutated = sources[rng.index(sources.size())];
    // Stack 1-3 mutations so errors can compound.
    const std::size_t rounds = 1 + rng.index(3);
    for (std::size_t r = 0; r < rounds; ++r) mutated = mutate(mutated, rng);

    frontend::ParseResult result;
    ASSERT_NO_THROW(result = frontend::parse_source(mutated))
        << "iteration " << i << " threw on:\n"
        << mutated;
    if (result.ok()) {
      ++parsed_ok;
    } else {
      // A failed parse must explain itself through Diagnostics (or yield no
      // root at all) — root==nullptr with empty diagnostics would be a
      // silent failure.
      EXPECT_TRUE(result.diagnostics.has_errors() || result.root() != nullptr)
          << "iteration " << i << ": silent failure on:\n"
          << mutated;
      ++rejected;
    }
  }
  // Sanity: the mutator actually produces both outcomes at this seed.
  EXPECT_GT(parsed_ok, 0);
  EXPECT_GT(rejected, kIterations / 4);
}

TEST(FrontendRobustness, ParseOfMutatedInputIsDeterministic) {
  // Same hostile bytes -> same verdict and same number of diagnostics: the
  // parser keeps no hidden state across calls even on malformed input.
  const std::vector<std::string> sources = seed_sources();
  Rng rng(2024);
  for (int i = 0; i < 50; ++i) {
    std::string mutated = sources[rng.index(sources.size())];
    mutated = mutate(mutated, rng);
    const frontend::ParseResult a = frontend::parse_source(mutated);
    const frontend::ParseResult b = frontend::parse_source(mutated);
    EXPECT_EQ(a.ok(), b.ok()) << "iteration " << i;
    EXPECT_EQ(a.diagnostics.entries().size(), b.diagnostics.entries().size())
        << "iteration " << i;
  }
}

TEST(FrontendRobustness, EmptyAndDegenerateInputs) {
  using namespace std::string_view_literals;
  // string_view literals so embedded NUL bytes keep their length (a plain
  // const char* would truncate "\x00..." to an empty string).
  for (const std::string_view source :
       {""sv, " "sv, "\n"sv, "\x00"sv, "a\x00int b;"sv, "#"sv, "#pragma"sv,
        "\xff\xfe"sv, "void"sv, "void f"sv, "void f("sv, "/*"sv, "//"sv,
        "\""sv, "'"sv, "0x"sv, "1e"sv,
        "(((((((((((((((((((((((((((((((("sv,
        "#pragma omp parallel for"sv}) {
    EXPECT_NO_THROW((void)frontend::parse_source(source))
        << "input: " << source;
  }
}

}  // namespace
}  // namespace pg
