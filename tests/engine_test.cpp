// Tests for the batched InferenceEngine: exact (bitwise) agreement between
// predict_batch, predict_one, and the model's own predict; span validation;
// warm-pool steady state; and the microsecond-domain sample path against
// predict_all.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/encoding.hpp"
#include "model/engine.hpp"
#include "model/trainer.hpp"
#include "support/check.hpp"

namespace pg::model {
namespace {

graph::ProgramGraph small_graph() {
  auto r = frontend::parse_source(R"(
    void f(void) {
      for (int i = 0; i < 40; i++) {
        double x = 1.0;
      }
    }
  )");
  EXPECT_TRUE(r.ok());
  return graph::build_graph(r.root(), {});
}

/// A batch whose elements genuinely differ: the same program graph encoded
/// at different weight scales, with varying aux features.
std::pair<std::vector<EncodedGraph>, std::vector<std::array<float, 2>>>
make_batch(std::size_t n) {
  const auto g = small_graph();
  std::vector<EncodedGraph> graphs;
  std::vector<std::array<float, 2>> aux;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i + 1) / static_cast<double>(n);
    graphs.push_back(encode_graph(g, 40.0 + 400.0 * t));
    aux.push_back({static_cast<float>(t), static_cast<float>(1.0 - t)});
  }
  return {std::move(graphs), std::move(aux)};
}

TEST(InferenceEngine, PredictOneMatchesModelPredict) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 3});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(4);
  for (std::size_t i = 0; i < graphs.size(); ++i)
    EXPECT_EQ(engine.predict_one(graphs[i], aux[i]), m.predict(graphs[i], aux[i]));
}

TEST(InferenceEngine, BatchMatchesSequentialPredictOneBitwise) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 5});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(17);  // not a multiple of the chunk size
  std::vector<double> batched(graphs.size());
  engine.predict_batch(graphs, aux, batched);

  InferenceEngine sequential(m);
  for (std::size_t i = 0; i < graphs.size(); ++i)
    EXPECT_EQ(batched[i], sequential.predict_one(graphs[i], aux[i])) << i;
}

TEST(InferenceEngine, RepeatedBatchIsDeterministic) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 7});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(8);
  std::vector<double> first(graphs.size()), second(graphs.size());
  engine.predict_batch(graphs, aux, first);
  engine.predict_batch(graphs, aux, second);
  EXPECT_EQ(first, second);
}

TEST(InferenceEngine, WarmPoolStopsGrowing) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 7});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(8);
  std::vector<double> out(graphs.size());
  engine.predict_batch(graphs, aux, out);
  const std::size_t slots = engine.workspace_slots();
  const std::size_t bytes = engine.workspace_bytes();
  EXPECT_GT(slots, 0u);
  engine.predict_batch(graphs, aux, out);
  EXPECT_EQ(engine.workspace_slots(), slots);
  EXPECT_EQ(engine.workspace_bytes(), bytes);
}

TEST(InferenceEngine, EmptyBatchIsANoOp) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 2});
  InferenceEngine engine(m);
  engine.predict_batch({}, {}, {});
  EXPECT_EQ(engine.workspace_slots(), 0u);
}

TEST(InferenceEngine, SpanLengthMismatchThrows) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 2});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(3);
  std::vector<double> bad(2);
  EXPECT_THROW(engine.predict_batch(graphs, aux, bad), InternalError);
}

TEST(InferenceEngine, PredictSamplesUsMatchesPredictAll) {
  SampleSet set;
  set.target_scaler.fit_bounds(0.0, 1000.0);
  set.teams_scaler.fit_bounds(1.0, 2.0);
  set.threads_scaler.fit_bounds(1.0, 2.0);
  const auto g = small_graph();
  for (std::size_t i = 0; i < 12; ++i) {
    TrainingSample s;
    const double t = static_cast<double>(i) / 12.0;
    s.graph = encode_graph(g, 40.0 + 400.0 * t);
    s.aux = {static_cast<float>(t), static_cast<float>(1.0 - t)};
    s.runtime_us = 100.0 + 800.0 * t;
    s.target_scaled = set.target_scaler.transform(s.runtime_us);
    set.validation.push_back(std::move(s));
  }
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 9});

  InferenceEngine engine(m);
  const auto engine_preds = engine.predict_samples_us(set.validation, set);
  const auto trainer_preds = predict_all(m, set.validation, set);
  ASSERT_EQ(engine_preds.size(), set.validation.size());
  EXPECT_EQ(engine_preds, trainer_preds);
  for (double p : engine_preds) EXPECT_GE(p, 0.0);  // physical floor
}

}  // namespace
}  // namespace pg::model
