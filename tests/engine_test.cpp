// Tests for the batched InferenceEngine and the fused GraphBatch path:
// exact (bitwise) agreement between the fused block-diagonal forward,
// predict_one, and the model's own predict; span validation; warm-pool
// steady state; the microsecond-domain sample path against predict_all;
// and thread-count-independent training.
#include <gtest/gtest.h>

#include <omp.h>

#include <array>
#include <cstdlib>
#include <vector>

#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/encoding.hpp"
#include "model/engine.hpp"
#include "model/graph_batch.hpp"
#include "model/trainer.hpp"
#include "support/check.hpp"
#include "support/env.hpp"

namespace pg::model {
namespace {

graph::ProgramGraph small_graph() {
  auto r = frontend::parse_source(R"(
    void f(void) {
      for (int i = 0; i < 40; i++) {
        double x = 1.0;
      }
    }
  )");
  EXPECT_TRUE(r.ok());
  return graph::build_graph(r.root(), {});
}

/// A batch whose elements genuinely differ: the same program graph encoded
/// at different weight scales, with varying aux features.
std::pair<std::vector<EncodedGraph>, std::vector<std::array<float, 2>>>
make_batch(std::size_t n) {
  const auto g = small_graph();
  std::vector<EncodedGraph> graphs;
  std::vector<std::array<float, 2>> aux;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i + 1) / static_cast<double>(n);
    graphs.push_back(encode_graph(g, 40.0 + 400.0 * t));
    aux.push_back({static_cast<float>(t), static_cast<float>(1.0 - t)});
  }
  return {std::move(graphs), std::move(aux)};
}

TEST(InferenceEngine, PredictOneMatchesModelPredict) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 3});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(4);
  for (std::size_t i = 0; i < graphs.size(); ++i)
    EXPECT_EQ(engine.predict_one(graphs[i], aux[i]), m.predict(graphs[i], aux[i]));
}

TEST(InferenceEngine, BatchMatchesSequentialPredictOneBitwise) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 5});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(17);  // not a multiple of the chunk size
  std::vector<double> batched(graphs.size());
  engine.predict_batch(graphs, aux, batched);

  InferenceEngine sequential(m);
  for (std::size_t i = 0; i < graphs.size(); ++i)
    EXPECT_EQ(batched[i], sequential.predict_one(graphs[i], aux[i])) << i;
}

TEST(InferenceEngine, RepeatedBatchIsDeterministic) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 7});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(8);
  std::vector<double> first(graphs.size()), second(graphs.size());
  engine.predict_batch(graphs, aux, first);
  engine.predict_batch(graphs, aux, second);
  EXPECT_EQ(first, second);
}

TEST(InferenceEngine, WarmPoolStopsGrowing) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 7});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(8);
  std::vector<double> out(graphs.size());
  engine.predict_batch(graphs, aux, out);
  const std::size_t slots = engine.workspace_slots();
  const std::size_t bytes = engine.workspace_bytes();
  EXPECT_GT(slots, 0u);
  engine.predict_batch(graphs, aux, out);
  EXPECT_EQ(engine.workspace_slots(), slots);
  EXPECT_EQ(engine.workspace_bytes(), bytes);
}

TEST(InferenceEngine, EmptyBatchIsANoOp) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 2});
  InferenceEngine engine(m);
  engine.predict_batch({}, {}, {});
  EXPECT_EQ(engine.workspace_slots(), 0u);
}

TEST(InferenceEngine, SpanLengthMismatchThrows) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 2});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(3);
  std::vector<double> bad(2);
  EXPECT_THROW(engine.predict_batch(graphs, aux, bad), InternalError);
}

TEST(GraphBatch, FusedForwardIsBitwiseEqualToPerGraphPredict) {
  // The tentpole invariant: packing B graphs block-diagonally and running
  // ONE fused forward yields bit-for-bit the predictions of B independent
  // forwards.
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 11});
  auto [graphs, aux] = make_batch(5);

  GraphBatch batch;
  batch.pack(graphs);
  ASSERT_EQ(batch.size(), graphs.size());
  tensor::Matrix aux_m(graphs.size(), 2);
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    aux_m(i, 0) = aux[i][0];
    aux_m(i, 1) = aux[i][1];
  }
  std::vector<double> fused(graphs.size());
  tensor::Workspace ws;
  m.predict_batch(batch, aux_m, fused, ws);

  for (std::size_t i = 0; i < graphs.size(); ++i)
    EXPECT_EQ(fused[i], m.predict(graphs[i], aux[i])) << i;
}

TEST(GraphBatch, BlockDiagonalPackingIsExact) {
  auto [graphs, aux] = make_batch(3);
  (void)aux;
  GraphBatch batch;
  batch.pack(graphs);

  // Node offsets partition the concatenated id space.
  const auto offsets = batch.node_offsets();
  ASSERT_EQ(offsets.size(), 4u);
  EXPECT_EQ(offsets[0], 0u);
  EXPECT_EQ(offsets[3], batch.features().rows());
  EXPECT_EQ(batch.relations().num_nodes, batch.features().rows());

  // Every relation is the per-graph relations concatenated with offsets:
  // expanding the packed CSR must reproduce each graph's triples shifted
  // into its node block.
  for (std::size_t r = 0; r < batch.relations().relations.size(); ++r) {
    std::vector<nn::RelEdge> expected;
    for (std::size_t b = 0; b < graphs.size(); ++b)
      for (nn::RelEdge e : graphs[b].relations.relations[r].to_edges()) {
        e.src += offsets[b];
        e.dst += offsets[b];
        expected.push_back(e);
      }
    EXPECT_EQ(batch.relations().relations[r].to_edges(), expected) << "rel " << r;
  }

  // Repacking reuses capacity: no shape drift.
  batch.pack(graphs);
  EXPECT_EQ(batch.size(), graphs.size());
  EXPECT_EQ(batch.node_offsets()[3], offsets[3]);
}

TEST(InferenceEngine, MultiChunkBatchMatchesPredictOneBitwise) {
  // More graphs than one fuse chunk (64): exercises the chunked fan-out and
  // its boundary handling.
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 13});
  InferenceEngine engine(m);
  auto [graphs, aux] = make_batch(67);
  std::vector<double> batched(graphs.size());
  engine.predict_batch(graphs, aux, batched);

  InferenceEngine sequential(m);
  for (std::size_t i = 0; i < graphs.size(); ++i)
    EXPECT_EQ(batched[i], sequential.predict_one(graphs[i], aux[i])) << i;
}

TEST(Trainer, TrainingIsIndependentOfThreadCount) {
  // The fixed-chunk fused gradient accumulation must make train_model
  // bitwise-reproducible whatever OpenMP does: same history, same final
  // validation predictions for 1 thread and for several.
  SampleSet set;
  set.target_scaler.fit_bounds(0.0, 1000.0);
  set.teams_scaler.fit_bounds(1.0, 2.0);
  set.threads_scaler.fit_bounds(1.0, 2.0);
  const auto g = small_graph();
  for (std::size_t i = 0; i < 10; ++i) {
    TrainingSample s;
    const double t = static_cast<double>(i) / 10.0;
    s.graph = encode_graph(g, 40.0 + 400.0 * t);
    s.aux = {static_cast<float>(t), static_cast<float>(1.0 - t)};
    s.runtime_us = 100.0 + 800.0 * t;
    s.target_scaled = set.target_scaler.transform(s.runtime_us);
    (i % 3 == 0 ? set.validation : set.train).push_back(std::move(s));
  }
  TrainConfig config;
  config.epochs = 3;
  config.batch_size = 4;

  const int saved_threads = omp_get_max_threads();
  auto run = [&](int threads) {
    omp_set_num_threads(threads);
    ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 21});
    return train_model(m, set, config);
  };
  const TrainResult one = run(1);
  const TrainResult three = run(3);
  omp_set_num_threads(saved_threads);

  ASSERT_EQ(one.history.size(), three.history.size());
  for (std::size_t e = 0; e < one.history.size(); ++e) {
    EXPECT_EQ(one.history[e].train_mse_scaled, three.history[e].train_mse_scaled)
        << "epoch " << e;
    EXPECT_EQ(one.history[e].val_rmse_us, three.history[e].val_rmse_us)
        << "epoch " << e;
  }
  EXPECT_EQ(one.val_predictions_us, three.val_predictions_us);
}

TEST(InferenceEngine, ChunkSizeEnvOverrideClampsAndNeverChangesValues) {
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 5});
  auto [graphs, aux] = make_batch(9);

  ::unsetenv("PARAGRAPH_CHUNK");
  InferenceEngine default_engine(m);
  EXPECT_EQ(default_engine.fuse_chunk(), 64u);
  std::vector<double> expected(graphs.size());
  default_engine.predict_batch(graphs, aux, expected);

  // An absurd override clamps to the documented bound instead of blowing up
  // the per-thread arenas; a tiny one degrades to per-graph chunks. Either
  // way predictions stay bitwise-identical — chunking never affects values.
  ::setenv("PARAGRAPH_CHUNK", "999999999", 1);
  InferenceEngine clamped(m);
  EXPECT_EQ(clamped.fuse_chunk(), pg::kMaxChunkSize);
  std::vector<double> out(graphs.size());
  clamped.predict_batch(graphs, aux, out);
  EXPECT_EQ(out, expected);

  ::setenv("PARAGRAPH_CHUNK", "1", 1);
  InferenceEngine tiny(m);
  EXPECT_EQ(tiny.fuse_chunk(), 1u);
  tiny.predict_batch(graphs, aux, out);
  EXPECT_EQ(out, expected);

  ::unsetenv("PARAGRAPH_CHUNK");
}

TEST(InferenceEngine, PredictSamplesUsMatchesPredictAll) {
  SampleSet set;
  set.target_scaler.fit_bounds(0.0, 1000.0);
  set.teams_scaler.fit_bounds(1.0, 2.0);
  set.threads_scaler.fit_bounds(1.0, 2.0);
  const auto g = small_graph();
  for (std::size_t i = 0; i < 12; ++i) {
    TrainingSample s;
    const double t = static_cast<double>(i) / 12.0;
    s.graph = encode_graph(g, 40.0 + 400.0 * t);
    s.aux = {static_cast<float>(t), static_cast<float>(1.0 - t)};
    s.runtime_us = 100.0 + 800.0 * t;
    s.target_scaled = set.target_scaler.transform(s.runtime_us);
    set.validation.push_back(std::move(s));
  }
  ParaGraphModel m(ModelConfig{.hidden_dim = 8, .seed = 9});

  InferenceEngine engine(m);
  const auto engine_preds = engine.predict_samples_us(set.validation, set);
  const auto trainer_preds = predict_all(m, set.validation, set);
  ASSERT_EQ(engine_preds.size(), set.validation.size());
  EXPECT_EQ(engine_preds, trainer_preds);
  for (double p : engine_preds) EXPECT_GE(p, 0.0);  // physical floor
}

}  // namespace
}  // namespace pg::model
