// Concurrency contract of paragraph-serve: with M client threads hammering
// the daemon, the batching window coalesces requests into arbitrary fused
// batches across worker shards — and every reply must still be bitwise
// identical to the single-threaded in-process answer. Also exercises the
// backpressure path: a tiny admission queue under a burst must answer
// kBusyReply at least once, and clients that retry still get the exact
// prediction.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/pgraph_io.hpp"
#include "model/checkpoint.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"

#ifndef PG_GOLDEN_DIR
#error "PG_GOLDEN_DIR must point at tests/golden"
#endif

namespace pg {
namespace {

const char* kGoldenNames[] = {"matvec_cpu", "matmul_gpu_collapse_mem",
                              "corr_gpu_mem", "gauss_seidel_cpu_collapse"};

std::string golden_path(const std::string& name) {
  return std::string(PG_GOLDEN_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

struct Fixture {
  model::ModelConfig config;
  std::unique_ptr<model::ParaGraphModel> model;
  model::CheckpointScalers scalers;
  std::vector<std::string> psample_bytes;   // wire payload per golden sample
  std::vector<double> expected_scaled;      // single-threaded predict_one
};

void build_fixture(Fixture& fx) {
  const io::StoredSampleSet stored =
      io::read_sample_set_file(golden_path("corpus.pgds"));
  fx.scalers = model::CheckpointScalers::from_sample_set(stored.set);
  fx.model = std::make_unique<model::ParaGraphModel>(fx.config);

  model::InferenceEngine engine(*fx.model);
  for (const char* name : kGoldenNames) {
    const std::string path = golden_path(std::string(name) + ".psample");
    const model::TrainingSample sample = io::read_sample_file(path);
    fx.psample_bytes.push_back(slurp(path));
    fx.expected_scaled.push_back(engine.predict_one(sample.graph, sample.aux));
  }
}

TEST(ServeConcurrency, RepliesBitwiseEqualSingleThreadedUnderLoad) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(build_fixture(fx));

  // Small batching knobs so the window genuinely coalesces across clients,
  // two worker shards so batches interleave across engines.
  serve::ServeConfig config;
  config.workers = 2;
  config.batch_max = 8;
  config.batch_window_us = 500;
  config.queue_depth = 64;
  serve::Server server(*fx.model, fx.scalers, config);
  server.start();

  constexpr int kThreads = 4;
  constexpr int kRequestsPerThread = 32;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      serve::Client client(server.port(), 20000);
      for (int r = 0; r < kRequestsPerThread; ++r) {
        // Every thread walks the samples in a different order.
        const std::size_t which =
            static_cast<std::size_t>(t + r) % std::size(kGoldenNames);
        const auto response =
            client.predict_until_served(fx.psample_bytes[which]);
        if (!response.has_value() ||
            response->kind != serve::FrameKind::kPredictReply) {
          failures.fetch_add(1);
          continue;
        }
        if (std::memcmp(&response->prediction.scaled,
                        &fx.expected_scaled[which], 8) != 0)
          mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0)
      << "dynamic batching changed prediction bits under concurrency";

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests_ok,
            static_cast<std::uint64_t>(kThreads * kRequestsPerThread));
  // Coalescing actually happened: strictly fewer fused batches than requests
  // (with a 500us window and 4 threads in flight this is overwhelmingly
  // certain; equality would mean every batch held a single graph).
  EXPECT_LT(stats.batches, stats.requests_ok);
  server.stop();
}

TEST(ServeConcurrency, TinyQueueExercisesBackpressure) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(build_fixture(fx));

  // queue_depth 1 + a long batching window: the worker parks in the window
  // holding the first request, one more request fits the queue, and any
  // burst beyond that must bounce with kBusyReply.
  serve::ServeConfig config;
  config.workers = 1;
  config.batch_max = 2;
  config.batch_window_us = 50'000;
  config.queue_depth = 1;
  serve::Server server(*fx.model, fx.scalers, config);
  server.start();

  const std::string& psample = fx.psample_bytes[0];
  const double expected = fx.expected_scaled[0];

  std::uint64_t busy_seen = 0;
  constexpr int kBursts = 50;
  for (int burst = 0; burst < kBursts && busy_seen == 0; ++burst) {
    // Pipeline 8 predict frames back-to-back on one connection, then read
    // 8 replies: predicts and busies in any order.
    serve::Socket socket = serve::connect_loopback(server.port());
    socket.set_recv_timeout_ms(20000);
    constexpr int kBurstSize = 8;
    for (int i = 0; i < kBurstSize; ++i) {
      const auto frame = serve::encode_frame(
          serve::FrameKind::kPredictRequest, static_cast<std::uint64_t>(i),
          psample.data(), psample.size());
      socket.write_all(frame.data(), frame.size());
    }
    for (int i = 0; i < kBurstSize; ++i) {
      std::uint8_t header_bytes[serve::kFrameHeaderBytes];
      ASSERT_TRUE(socket.read_exact(header_bytes, sizeof header_bytes))
          << "burst " << burst << " reply " << i;
      serve::FrameHeader header;
      ASSERT_EQ(serve::decode_header(header_bytes, header),
                serve::HeaderVerdict::kOk);
      if (header.kind == serve::FrameKind::kBusyReply) {
        ++busy_seen;
        socket.discard_exact(header.payload_bytes);
        continue;
      }
      ASSERT_EQ(header.kind, serve::FrameKind::kPredictReply)
          << "burst " << burst << " reply " << i;
      std::vector<std::uint8_t> payload(
          static_cast<std::size_t>(header.payload_bytes));
      ASSERT_TRUE(socket.read_exact(payload.data(), payload.size()));
      const auto reply =
          serve::decode_predict_reply_payload(payload.data(), payload.size());
      ASSERT_TRUE(reply.has_value());
      // Backpressure must never leak into values.
      EXPECT_EQ(std::memcmp(&reply->scaled, &expected, 8), 0);
    }
  }
  EXPECT_GT(busy_seen, 0u) << "no kBusyReply in " << kBursts
                           << " bursts against a depth-1 queue";
  EXPECT_GE(server.stats().busy_rejected, busy_seen);

  // A retrying client still lands the exact prediction afterwards.
  serve::Client client(server.port(), 20000);
  std::uint64_t retries = 0;
  const auto response = client.predict_until_served(psample, &retries);
  ASSERT_TRUE(response.has_value());
  ASSERT_EQ(response->kind, serve::FrameKind::kPredictReply);
  EXPECT_EQ(std::memcmp(&response->prediction.scaled, &expected, 8), 0);
  server.stop();
}

/// Live thread count of this process (gtest + server + OpenMP pool).
std::size_t process_thread_count() {
  std::ifstream is("/proc/self/status");
  std::string line;
  while (std::getline(is, line))
    if (line.rfind("Threads:", 0) == 0)
      return static_cast<std::size_t>(std::stoul(line.substr(8)));
  ADD_FAILURE() << "no Threads: line in /proc/self/status";
  return 0;
}

TEST(ServeConcurrency, FixedThreadPoolServesHundredsOfIdleConnections) {
  // The reactor's scaling contract: connection count and thread count are
  // decoupled. 512 held-open idle connections plus 32 active ones must be
  // served by exactly the fixed pool (io threads + workers) — no thread per
  // connection — and every active reply stays bitwise-exact.
  rlimit rl{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
  const rlim_t want = std::min<rlim_t>(rl.rlim_max, 4096);
  if (rl.rlim_cur < want) {
    rlimit raised = rl;
    raised.rlim_cur = want;
    if (setrlimit(RLIMIT_NOFILE, &raised) == 0)
      ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &rl), 0);
  }
  // Leave ~256 fds of headroom for the server side of each connection plus
  // everything else the process holds open.
  std::size_t idle_count = 512;
  if (rl.rlim_cur < 2 * 512 + 256)
    idle_count = rl.rlim_cur > 512 ? (rl.rlim_cur - 256) / 2 : 64;

  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(build_fixture(fx));

  serve::ServeConfig config;
  config.workers = 2;
  config.io_threads = 2;
  config.batch_max = 8;
  config.batch_window_us = 200;
  config.queue_depth = 1024;  // admit the full idle-sweep burst, no busies
  serve::Server server(*fx.model, fx.scalers, config);

  const std::size_t threads_before_start = process_thread_count();
  server.start();
  ASSERT_EQ(server.io_thread_count(), 2u);
  const std::size_t threads_after_start = process_thread_count();
  EXPECT_LE(threads_after_start - threads_before_start,
            server.io_thread_count() + config.workers + 1)
      << "server spawned more than its fixed pool";

  // Hold open the idle herd. Thread count must not move by a single thread.
  std::vector<serve::Socket> idle;
  idle.reserve(idle_count);
  for (std::size_t i = 0; i < idle_count; ++i) {
    idle.push_back(serve::connect_loopback(server.port()));
    idle.back().set_recv_timeout_ms(30000);
  }
  // Give the reactor a beat to pull every pending accept off the listener.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(process_thread_count(), threads_after_start)
      << idle_count << " idle connections grew the thread count";

  // 32 active connections interleaving requests while the herd idles.
  std::vector<std::unique_ptr<serve::Client>> active;
  for (int c = 0; c < 32; ++c)
    active.push_back(std::make_unique<serve::Client>(server.port(), 30000));
  for (int round = 0; round < 4; ++round) {
    for (std::size_t c = 0; c < active.size(); ++c) {
      const std::size_t which = (round + c) % std::size(kGoldenNames);
      const auto response =
          active[c]->predict_until_served(fx.psample_bytes[which]);
      ASSERT_TRUE(response.has_value()) << "client " << c;
      ASSERT_EQ(response->kind, serve::FrameKind::kPredictReply);
      EXPECT_EQ(std::memcmp(&response->prediction.scaled,
                            &fx.expected_scaled[which], 8),
                0)
          << "client " << c << " round " << round;
    }
  }
  EXPECT_EQ(process_thread_count(), threads_after_start)
      << "active traffic grew the thread count";

  // The idle herd was never starved: every held connection can still run a
  // pipelined predict and gets the bitwise-exact answer.
  const std::string& psample = fx.psample_bytes[0];
  const double expected = fx.expected_scaled[0];
  for (std::size_t i = 0; i < idle.size(); ++i) {
    const auto frame = serve::encode_frame(serve::FrameKind::kPredictRequest,
                                           static_cast<std::uint64_t>(i),
                                           psample.data(), psample.size());
    idle[i].write_all(frame.data(), frame.size());
  }
  for (std::size_t i = 0; i < idle.size(); ++i) {
    std::uint8_t header_bytes[serve::kFrameHeaderBytes];
    ASSERT_TRUE(idle[i].read_exact(header_bytes, sizeof header_bytes))
        << "idle conn " << i;
    serve::FrameHeader header;
    ASSERT_EQ(serve::decode_header(header_bytes, header),
              serve::HeaderVerdict::kOk);
    ASSERT_EQ(header.kind, serve::FrameKind::kPredictReply)
        << "idle conn " << i;
    EXPECT_EQ(header.request_id, static_cast<std::uint64_t>(i));
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(header.payload_bytes));
    ASSERT_TRUE(idle[i].read_exact(payload.data(), payload.size()));
    const auto reply =
        serve::decode_predict_reply_payload(payload.data(), payload.size());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(std::memcmp(&reply->scaled, &expected, 8), 0)
        << "idle conn " << i;
  }

  const serve::ServerStats stats = server.stats();
  EXPECT_GE(stats.connections, idle_count + active.size());
  server.stop();
}

TEST(ServeConcurrency, StopWhileClientsInFlightAnswersEveryRequest) {
  Fixture fx;
  ASSERT_NO_FATAL_FAILURE(build_fixture(fx));

  serve::ServeConfig config;
  config.workers = 2;
  config.batch_max = 4;
  config.batch_window_us = 1000;
  serve::Server server(*fx.model, fx.scalers, config);
  server.start();

  // Clients fire continuously while the main thread stops the server. The
  // drain contract: every request either gets a real reply (predict/busy/
  // shutting-down error) or a clean disconnect — never a hang, never an
  // unanswered frame on a live connection.
  std::atomic<bool> go{true};
  std::atomic<int> anomalies{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      try {
        serve::Client client(server.port(), 20000);
        while (go.load()) {
          const auto response = client.predict_bytes(
              fx.psample_bytes[static_cast<std::size_t>(t) %
                               std::size(kGoldenNames)]);
          if (!response.has_value()) return;  // clean disconnect
          switch (response->kind) {
            case serve::FrameKind::kPredictReply:
            case serve::FrameKind::kBusyReply:
              break;
            case serve::FrameKind::kErrorReply:
              if (response->error.code != serve::ErrorCode::kShuttingDown)
                anomalies.fetch_add(1);
              break;
            default:
              anomalies.fetch_add(1);
          }
        }
      } catch (const serve::SocketError&) {
        // connection refused/reset during shutdown: clean
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  go.store(false);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(anomalies.load(), 0);
}

}  // namespace
}  // namespace pg
