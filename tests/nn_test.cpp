// Tests for the NN layers: shapes, forward semantics, Adam behaviour,
// scaler round-trips, and small end-to-end optimisation problems.
// (Gradient correctness is covered separately in gradcheck_test.cpp.)
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "nn/activation.hpp"
#include "nn/adam.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/relational_graph.hpp"
#include "nn/rgat.hpp"
#include "nn/scaler.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/workspace.hpp"

namespace pg::nn {
namespace {

// ----------------------------------------------------------- activation ---

TEST(Activation, ReluClampsNegatives) {
  tensor::Matrix x(1, 4);
  x(0, 0) = -1.0f; x(0, 1) = 0.0f; x(0, 2) = 2.0f; x(0, 3) = -0.5f;
  const tensor::Matrix y = relu(x);
  EXPECT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(y(0, 1), 0.0f);
  EXPECT_EQ(y(0, 2), 2.0f);
  EXPECT_EQ(y(0, 3), 0.0f);
}

TEST(Activation, ReluBackwardMasksByInput) {
  tensor::Matrix x(1, 3);
  x(0, 0) = -1.0f; x(0, 1) = 1.0f; x(0, 2) = 0.0f;
  tensor::Matrix dy(1, 3, 5.0f);
  const tensor::Matrix dx = relu_backward(dy, x);
  EXPECT_EQ(dx(0, 0), 0.0f);
  EXPECT_EQ(dx(0, 1), 5.0f);
  EXPECT_EQ(dx(0, 2), 0.0f);  // non-differentiable point: subgradient 0
}

TEST(Activation, LeakyRelu) {
  EXPECT_FLOAT_EQ(leaky_relu(2.0f, 0.2f), 2.0f);
  EXPECT_FLOAT_EQ(leaky_relu(-2.0f, 0.2f), -0.4f);
  EXPECT_FLOAT_EQ(leaky_relu_grad(2.0f, 0.2f), 1.0f);
  EXPECT_FLOAT_EQ(leaky_relu_grad(-2.0f, 0.2f), 0.2f);
}

// ---------------------------------------------------------------- linear ---

TEST(Linear, ForwardComputesAffineMap) {
  pg::Rng rng(1);
  Linear layer(2, 3, rng);
  tensor::Matrix x(1, 2);
  x(0, 0) = 1.0f; x(0, 1) = 2.0f;
  const tensor::Matrix y = layer.forward(x);
  ASSERT_EQ(y.rows(), 1u);
  ASSERT_EQ(y.cols(), 3u);
  for (std::size_t j = 0; j < 3; ++j) {
    const float expected = layer.weight()(0, j) + 2.0f * layer.weight()(1, j) +
                           layer.bias()(0, j);
    EXPECT_NEAR(y(0, j), expected, 1e-6f);
  }
}

TEST(Linear, BatchedForward) {
  pg::Rng rng(2);
  Linear layer(4, 2, rng);
  tensor::Matrix x(8, 4, 0.5f);
  const tensor::Matrix y = layer.forward(x);
  EXPECT_EQ(y.rows(), 8u);
  // Rows of a constant input are identical.
  for (std::size_t i = 1; i < 8; ++i)
    for (std::size_t j = 0; j < 2; ++j) EXPECT_FLOAT_EQ(y(i, j), y(0, j));
}

TEST(Linear, FeatureDimMismatchThrows) {
  pg::Rng rng(3);
  Linear layer(4, 2, rng);
  tensor::Matrix x(1, 3);
  EXPECT_THROW(layer.forward(x), InternalError);
}

TEST(Linear, BackwardAccumulatesIntoGrads) {
  pg::Rng rng(4);
  Linear layer(2, 2, rng);
  tensor::Matrix x(1, 2, 1.0f);
  std::vector<tensor::Matrix> grads;
  grads.emplace_back(2, 2);
  grads.emplace_back(1, 2);
  tensor::Matrix dy(1, 2, 1.0f);
  (void)layer.backward(x, dy, grads);
  (void)layer.backward(x, dy, grads);  // accumulates, does not overwrite
  EXPECT_FLOAT_EQ(grads[0](0, 0), 2.0f);
  EXPECT_FLOAT_EQ(grads[1](0, 1), 2.0f);
}

// ------------------------------------------------------------------ mlp ---

TEST(Mlp, RequiresAtLeastTwoSizes) {
  pg::Rng rng(5);
  EXPECT_THROW(Mlp({4}, rng), InternalError);
}

TEST(Mlp, OutputShapeAndDeterminism) {
  pg::Rng rng(6);
  Mlp mlp({3, 8, 1}, rng);
  tensor::Matrix x(5, 3, 0.1f);
  const tensor::Matrix y1 = mlp.forward(x);
  const tensor::Matrix y2 = mlp.forward(x);
  ASSERT_EQ(y1.rows(), 5u);
  ASSERT_EQ(y1.cols(), 1u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_FLOAT_EQ(y1(i, 0), y2(i, 0));
}

TEST(Mlp, ParameterCountMatchesLayers) {
  pg::Rng rng(7);
  Mlp mlp({3, 8, 4, 1}, rng);
  EXPECT_EQ(mlp.num_layers(), 3u);
  EXPECT_EQ(mlp.parameters().size(), 6u);
}

TEST(Mlp, LearnsLinearFunction) {
  // y = 2 x0 - x1 should be learnable to near-zero loss.
  pg::Rng rng(8);
  Mlp mlp({2, 16, 1}, rng);
  Adam adam(mlp.parameters(), {.learning_rate = 0.01});
  auto grads = adam.make_gradient_buffer();
  pg::Rng data_rng(9);

  double final_loss = 1e9;
  for (int step = 0; step < 500; ++step) {
    tensor::Matrix x(16, 2);
    std::vector<double> targets(16);
    for (int i = 0; i < 16; ++i) {
      x(i, 0) = static_cast<float>(data_rng.uniform(-1, 1));
      x(i, 1) = static_cast<float>(data_rng.uniform(-1, 1));
      targets[i] = 2.0 * x(i, 0) - x(i, 1);
    }
    Mlp::Cache cache;
    tensor::Matrix pred = mlp.forward(x, cache);
    tensor::Matrix dpred(16, 1);
    double loss = 0.0;
    for (int i = 0; i < 16; ++i) {
      loss += mse_loss(pred(i, 0), targets[i]);
      dpred(i, 0) = static_cast<float>(mse_grad(pred(i, 0), targets[i]) / 16.0);
    }
    final_loss = loss / 16.0;
    (void)mlp.backward(dpred, cache, grads);
    adam.step(grads);
    for (auto& g : grads) g.zero();
  }
  EXPECT_LT(final_loss, 1e-3);
}

// ----------------------------------------------------------------- adam ---

TEST(Adam, MinimisesQuadratic) {
  // min (w - 3)^2 from w = 0.
  tensor::Matrix w(1, 1, 0.0f);
  Adam adam({&w}, {.learning_rate = 0.1});
  auto grads = adam.make_gradient_buffer();
  for (int i = 0; i < 200; ++i) {
    grads[0](0, 0) = 2.0f * (w(0, 0) - 3.0f);
    adam.step(grads);
    grads[0].zero();
  }
  EXPECT_NEAR(w(0, 0), 3.0f, 1e-2f);
}

TEST(Adam, StepCountIncrements) {
  tensor::Matrix w(1, 1);
  Adam adam({&w});
  auto grads = adam.make_gradient_buffer();
  adam.step(grads);
  adam.step(grads);
  EXPECT_EQ(adam.step_count(), 2u);
}

TEST(Adam, GradientShapeMismatchThrows) {
  tensor::Matrix w(2, 2);
  Adam adam({&w});
  std::vector<tensor::Matrix> bad;
  bad.emplace_back(1, 1);
  EXPECT_THROW(adam.step(bad), InternalError);
}

TEST(Adam, WeightDecayShrinksWeights) {
  tensor::Matrix w(1, 1, 10.0f);
  AdamConfig config;
  config.weight_decay = 0.1;
  Adam adam({&w}, config);
  auto grads = adam.make_gradient_buffer();
  for (int i = 0; i < 50; ++i) {
    adam.step(grads);  // zero task gradient: only decay acts
    grads[0].zero();
  }
  EXPECT_LT(w(0, 0), 10.0f);
}

// --------------------------------------------------------------- scaler ---

TEST(MinMaxScaler, TransformsToUnitInterval) {
  MinMaxScaler scaler;
  const std::vector<double> values = {10.0, 20.0, 15.0};
  scaler.fit(values);
  EXPECT_DOUBLE_EQ(scaler.transform(10.0), 0.0);
  EXPECT_DOUBLE_EQ(scaler.transform(20.0), 1.0);
  EXPECT_DOUBLE_EQ(scaler.transform(15.0), 0.5);
}

TEST(MinMaxScaler, InverseRoundTrips) {
  MinMaxScaler scaler;
  scaler.fit_bounds(-5.0, 37.0);
  for (double v : {-5.0, 0.0, 17.3, 37.0})
    EXPECT_NEAR(scaler.inverse(scaler.transform(v)), v, 1e-12);
}

TEST(MinMaxScaler, ZeroRangeMapsToZero) {
  MinMaxScaler scaler;
  scaler.fit_bounds(4.0, 4.0);
  EXPECT_DOUBLE_EQ(scaler.transform(4.0), 0.0);
}

TEST(MinMaxScaler, UseBeforeFitThrows) {
  MinMaxScaler scaler;
  EXPECT_THROW((void)scaler.transform(1.0), InternalError);
  EXPECT_THROW((void)scaler.inverse(0.5), InternalError);
}

TEST(MinMaxScaler, OutOfRangeValuesExtrapolate) {
  MinMaxScaler scaler;
  scaler.fit_bounds(0.0, 10.0);
  EXPECT_DOUBLE_EQ(scaler.transform(20.0), 2.0);
  EXPECT_DOUBLE_EQ(scaler.transform(-10.0), -1.0);
}

// ------------------------------------------------------------------ mse ---

TEST(MseLoss, ValueAndGradient) {
  EXPECT_DOUBLE_EQ(mse_loss(3.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(mse_grad(3.0, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(mse_grad(1.0, 3.0), -4.0);
}

// ---------------------------------------------------- relational graph ---

TEST(RelationEdges, GroupsByDestination) {
  std::vector<RelEdge> edges = {{0, 2, 1.0f}, {1, 2, 1.0f}, {0, 1, 1.0f}};
  const RelationEdges rel = RelationEdges::from_edges(edges);
  ASSERT_EQ(rel.num_groups(), 2u);
  EXPECT_EQ(rel.num_edges(), 3u);
  // Groups sorted by local dst; nodes = {0,1,2}.
  ASSERT_EQ(rel.nodes.size(), 3u);
  EXPECT_EQ(rel.group_offsets.front(), 0u);
  EXPECT_EQ(rel.group_offsets.back(), 3u);
  // SoA arrays are parallel over the edge slots.
  EXPECT_EQ(rel.src_local.size(), rel.gate.size());
}

TEST(RelationEdges, LocalIndicesMapBackToGlobals) {
  std::vector<RelEdge> edges = {{10, 20, 1.0f}, {30, 20, 1.0f}};
  const RelationEdges rel = RelationEdges::from_edges(edges);
  ASSERT_EQ(rel.nodes.size(), 3u);
  const std::vector<RelEdge> back = rel.to_edges();
  ASSERT_EQ(back.size(), 2u);
  // Both edges target 20; sources are 10 and 30 in input order.
  EXPECT_EQ(back[0], (RelEdge{10, 20, 1.0f}));
  EXPECT_EQ(back[1], (RelEdge{30, 20, 1.0f}));
}

TEST(RelationEdges, EmptyRelation) {
  const RelationEdges rel = RelationEdges::from_edges({});
  EXPECT_TRUE(rel.empty());
  EXPECT_EQ(rel.num_groups(), 0u);
  EXPECT_EQ(rel.num_active_nodes(), 0u);
  ASSERT_EQ(rel.group_offsets.size(), 1u);  // CSR sentinel survives empties
  EXPECT_EQ(rel.group_offsets[0], 0u);
  EXPECT_TRUE(rel.to_edges().empty());
}

TEST(RelationEdges, DuplicateParallelEdgesKeepDistinctSlots) {
  // Two identical edges plus a differently-gated parallel edge: all three
  // must survive as separate slots in the same destination group.
  std::vector<RelEdge> edges = {{0, 1, 0.25f}, {0, 1, 0.25f}, {0, 1, 0.75f}};
  const RelationEdges rel = RelationEdges::from_edges(edges);
  EXPECT_EQ(rel.num_edges(), 3u);
  ASSERT_EQ(rel.num_groups(), 1u);
  EXPECT_EQ(rel.group_offsets[1] - rel.group_offsets[0], 3u);
  // Stable grouping preserves input order within the group.
  EXPECT_FLOAT_EQ(rel.gate[0], 0.25f);
  EXPECT_FLOAT_EQ(rel.gate[1], 0.25f);
  EXPECT_FLOAT_EQ(rel.gate[2], 0.75f);
  EXPECT_EQ(rel.to_edges(), edges);
}

TEST(RelationEdges, SelfLoop) {
  const RelationEdges rel = RelationEdges::from_edges({{5, 5, 0.5f}});
  EXPECT_EQ(rel.num_edges(), 1u);
  ASSERT_EQ(rel.num_active_nodes(), 1u);  // src == dst collapses to one node
  EXPECT_EQ(rel.nodes[0], 5u);
  ASSERT_EQ(rel.num_groups(), 1u);
  EXPECT_EQ(rel.src_local[0], 0u);
  EXPECT_EQ(rel.group_dst[0], 0u);
  EXPECT_EQ(rel.to_edges(), (std::vector<RelEdge>{{5, 5, 0.5f}}));
}

TEST(RelationEdges, SingleNodeGraph) {
  // A one-node graph can only carry a self-loop; the degenerate CSR still
  // holds every invariant the RGAT kernels index by.
  const RelationEdges rel = RelationEdges::from_edges({{0, 0, 1.0f}});
  ASSERT_EQ(rel.nodes.size(), 1u);
  EXPECT_EQ(rel.nodes[0], 0u);
  ASSERT_EQ(rel.group_offsets.size(), 2u);
  EXPECT_EQ(rel.group_offsets[0], 0u);
  EXPECT_EQ(rel.group_offsets[1], 1u);
}

TEST(RelationEdges, CsrRoundTripsToGroupedFormOnRandomGraphs) {
  // Property: expanding the CSR back to triples must reproduce the legacy
  // grouped AoS form — the input triples stably sorted by local destination
  // — for random multigraphs (duplicates and self-loops included).
  pg::Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const std::int64_t n = rng.uniform_int(1, 12);
    const std::int64_t m = rng.uniform_int(0, 30);
    std::vector<RelEdge> edges;
    for (std::int64_t e = 0; e < m; ++e)
      edges.push_back({static_cast<std::uint32_t>(rng.uniform_int(0, n - 1)),
                       static_cast<std::uint32_t>(rng.uniform_int(0, n - 1)),
                       static_cast<float>(rng.uniform(0.0, 1.0))});

    const RelationEdges rel = RelationEdges::from_edges(edges);

    // Reference grouping: stable sort of the triples by destination (global
    // dst order == local dst order, since the local numbering is sorted).
    std::vector<RelEdge> expected = edges;
    std::stable_sort(expected.begin(), expected.end(),
                     [](const RelEdge& a, const RelEdge& b) {
                       return a.dst < b.dst;
                     });
    EXPECT_EQ(rel.to_edges(), expected) << "trial " << trial;

    // CSR invariants the conv kernels rely on.
    ASSERT_EQ(rel.group_offsets.size(), rel.num_groups() + 1);
    EXPECT_EQ(rel.group_offsets.back(), rel.num_edges());
    for (std::size_t g = 0; g < rel.num_groups(); ++g) {
      EXPECT_LT(rel.group_offsets[g], rel.group_offsets[g + 1]);
      if (g > 0) {
        EXPECT_GT(rel.group_dst[g], rel.group_dst[g - 1]);
      }
      EXPECT_LT(rel.group_dst[g], rel.nodes.size());
    }
    for (std::uint32_t s : rel.src_local) EXPECT_LT(s, rel.nodes.size());
  }
}

// ----------------------------------------------------------------- rgat ---

RelationalGraph line_graph(std::size_t n, std::size_t relations) {
  RelationalGraph g;
  g.num_nodes = n;
  std::vector<RelEdge> edges;
  for (std::size_t i = 0; i + 1 < n; ++i)
    edges.push_back({static_cast<std::uint32_t>(i),
                     static_cast<std::uint32_t>(i + 1), 1.0f});
  g.relations.push_back(RelationEdges::from_edges(edges));
  for (std::size_t r = 1; r < relations; ++r)
    g.relations.push_back(RelationEdges::from_edges({}));
  return g;
}

TEST(RgatConv, OutputShape) {
  pg::Rng rng(1);
  RgatConv conv(4, 6, 2, rng);
  const RelationalGraph g = line_graph(5, 2);
  tensor::Matrix x(5, 4, 0.3f);
  tensor::Workspace ws;
  RgatConv::Cache cache;
  const tensor::Matrix y = conv.forward(x, g, cache, ws);
  EXPECT_EQ(y.rows(), 5u);
  EXPECT_EQ(y.cols(), 6u);
}

TEST(RgatConv, ReluOutputIsNonNegative) {
  pg::Rng rng(2);
  RgatConv conv(4, 4, 1, rng);
  const RelationalGraph g = line_graph(6, 1);
  tensor::Matrix x(6, 4);
  pg::Rng xr(3);
  tensor::uniform_init(x, xr, -2.0f, 2.0f);
  tensor::Workspace ws;
  RgatConv::Cache cache;
  const tensor::Matrix y = conv.forward(x, g, cache, ws);
  for (float v : y.data()) EXPECT_GE(v, 0.0f);
}

TEST(RgatConv, IsolatedNodesStillGetSelfTransform) {
  pg::Rng rng(4);
  RgatConv conv(3, 3, 1, rng, /*apply_relu=*/false);
  RelationalGraph g;
  g.num_nodes = 2;
  g.relations.push_back(RelationEdges::from_edges({}));  // no edges at all
  tensor::Matrix x(2, 3, 1.0f);
  tensor::Workspace ws;
  RgatConv::Cache cache;
  const tensor::Matrix y = conv.forward(x, g, cache, ws);
  // With no edges the output is exactly x W_self + b, not zero.
  EXPECT_NE(y.squared_norm(), 0.0);
}

TEST(RgatConv, AttentionIsNormalisedPerDestination) {
  pg::Rng rng(5);
  RgatConv conv(3, 3, 1, rng);
  // Two edges into node 2.
  RelationalGraph g;
  g.num_nodes = 3;
  g.relations.push_back(
      RelationEdges::from_edges({{0, 2, 1.0f}, {1, 2, 1.0f}}));
  tensor::Matrix x(3, 3, 0.5f);
  tensor::Workspace ws;
  RgatConv::Cache cache;
  (void)conv.forward(x, g, cache, ws);
  const auto alpha = cache.alpha->row_span(0);
  ASSERT_EQ(alpha.size(), 2u);
  EXPECT_NEAR(alpha[0] + alpha[1], 1.0f, 1e-5f);
}

TEST(RgatConv, GateScalesMessages) {
  pg::Rng rng(6);
  RgatConv conv(2, 2, 1, rng, /*apply_relu=*/false);
  tensor::Matrix x(2, 2, 1.0f);

  auto out_with_gate = [&](float gate) -> tensor::Matrix {
    RelationalGraph g;
    g.num_nodes = 2;
    g.relations.push_back(RelationEdges::from_edges({{0, 1, gate}}));
    tensor::Workspace ws;
    RgatConv::Cache cache;
    return conv.forward(x, g, cache, ws);
  };
  const tensor::Matrix y0 = out_with_gate(0.0f);
  const tensor::Matrix y1 = out_with_gate(1.0f);
  // Node 0 (no incoming edge) identical; node 1 differs with the gate.
  EXPECT_FLOAT_EQ(y0(0, 0), y1(0, 0));
  EXPECT_NE(y0(1, 0), y1(1, 0));
}

TEST(RgatConv, RelationCountMismatchThrows) {
  pg::Rng rng(7);
  RgatConv conv(2, 2, 3, rng);
  const RelationalGraph g = line_graph(3, 2);  // only 2 relations
  tensor::Matrix x(3, 2);
  tensor::Workspace ws;
  RgatConv::Cache cache;
  EXPECT_THROW(conv.forward(x, g, cache, ws), InternalError);
}

TEST(RgatConv, ParameterLayout) {
  pg::Rng rng(8);
  RgatConv conv(3, 5, 4, rng);
  const auto params = conv.parameters();
  ASSERT_EQ(params.size(), conv.num_params());
  ASSERT_EQ(params.size(), 3u * 4u + 2u);
  // Per relation: W [3x5], a_src [1x5], a_dst [1x5].
  EXPECT_EQ(params[0]->rows(), 3u);
  EXPECT_EQ(params[1]->rows(), 1u);
  EXPECT_EQ(params[2]->cols(), 5u);
  // Tail: W_self, bias.
  EXPECT_EQ(params[12]->rows(), 3u);
  EXPECT_EQ(params[13]->rows(), 1u);
}

}  // namespace
}  // namespace pg::nn
