
double corr_x[65536];
double corr_y[65536];
double corr_result[4];

void corr_kernel(void) {
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  #pragma omp target teams distribute parallel for num_teams(256) thread_limit(128) reduction(+: sx, sy, sxx, syy, sxy) map(to: corr_x[0:65536], corr_y[0:65536]) map(tofrom: corr_result[0:4])
  for (int i = 0; i < 65536; i++) {
    sx += corr_x[i];
    sy += corr_y[i];
    sxx += corr_x[i] * corr_x[i];
    syy += corr_y[i] * corr_y[i];
    sxy += corr_x[i] * corr_y[i];
  }
  corr_result[0] = (65536 * sxy - sx * sy) /
                   (sqrt(65536 * sxx - sx * sx) * sqrt(65536 * syy - sy * sy));
}
