
double gs_grid[256][256];

void gauss_seidel_kernel(void) {
  #pragma omp parallel for num_threads(16) schedule(static) collapse(2)
  for (int i = 1; i < 256 - 1; i++) {
    for (int j = 1; j < 256 - 1; j++) {
      gs_grid[i][j] = 0.25 * (gs_grid[i - 1][j] + gs_grid[i + 1][j] +
                              gs_grid[i][j - 1] + gs_grid[i][j + 1]);
    }
  }
}
