
double mv_a[512][512];
double mv_x[512];
double mv_y[512];

void mv_kernel(void) {
  #pragma omp parallel for num_threads(8) schedule(static)
  for (int i = 0; i < 512; i++) {
    double s = 0.0;
    for (int j = 0; j < 512; j++) {
      s += mv_a[i][j] * mv_x[j];
    }
    mv_y[i] = s;
  }
}
