
double mm_a[128][128];
double mm_b[128][128];
double mm_c[128][128];

void mm_kernel(void) {
  #pragma omp target teams distribute parallel for num_teams(128) thread_limit(64) collapse(2) map(to: mm_a[0:128*128], mm_b[0:128*128]) map(from: mm_c[0:128*128])
  for (int i = 0; i < 128; i++) {
    for (int j = 0; j < 128; j++) {
      double s = 0.0;
      for (int k = 0; k < 128; k++) {
        s += mm_a[i][k] * mm_b[k][j];
      }
      mm_c[i][j] = s;
    }
  }
}
