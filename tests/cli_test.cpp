// Differential test for paragraph-cli: the compile|encode|predict pipeline
// run through the CLI binary must reproduce the in-process path *bitwise* —
// same graph bytes, same sample bytes, and predictions identical to
// InferenceEngine::predict_batch on the same inputs.
//
// The CLI binary path and the golden corpus directory are injected by CMake
// (PG_CLI_PATH / PG_GOLDEN_DIR); the suite shells out via std::system.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "io/pgraph_io.hpp"
#include "model/checkpoint.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"

#ifndef PG_CLI_PATH
#error "PG_CLI_PATH must point at the paragraph-cli binary"
#endif
#ifndef PG_GOLDEN_DIR
#error "PG_GOLDEN_DIR must point at tests/golden"
#endif

namespace pg {
namespace {

const char* kGoldenNames[] = {"matvec_cpu", "matmul_gpu_collapse_mem",
                              "corr_gpu_mem", "gauss_seidel_cpu_collapse"};

std::string golden_path(const std::string& name) {
  return std::string(PG_GOLDEN_DIR) + "/" + name;
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string quoted(const std::string& path) { return "'" + path + "'"; }

/// Runs the CLI with the given argument string; returns the exit status.
int run_cli(const std::string& args) {
  const std::string command = std::string(PG_CLI_PATH) + " " + args;
  const int status = std::system(command.c_str());
  return status;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

TEST(CliCompile, ReproducesGoldenGraphBytes) {
  // teams/threads/workers per tests/golden/MANIFEST.txt.
  struct Case {
    const char* name;
    int workers;
  };
  const Case cases[] = {{"matvec_cpu", 8},
                        {"matmul_gpu_collapse_mem", 128 * 64},
                        {"corr_gpu_mem", 256 * 128},
                        {"gauss_seidel_cpu_collapse", 16}};
  for (const Case& c : cases) {
    const std::string out = temp_path(std::string(c.name) + ".pgraph");
    ASSERT_EQ(run_cli(std::string("compile ") + quoted(golden_path(c.name) + ".c") +
                      " -o " + quoted(out) + " --workers " +
                      std::to_string(c.workers) + " > /dev/null"),
              0)
        << c.name;
    EXPECT_EQ(slurp(out), slurp(golden_path(c.name) + ".pgraph")) << c.name;
  }
}

TEST(CliEncode, ReproducesGoldenSampleBytes) {
  const std::string out = temp_path("matvec_cpu.psample");
  ASSERT_EQ(run_cli(std::string("encode ") + quoted(golden_path("matvec_cpu.pgraph")) +
                    " -o " + quoted(out) + " --meta " +
                    quoted(golden_path("corpus.pgds")) +
                    " --teams 1 --threads 8 --runtime-us 1500 --app MV "
                    "--app-id 5 --variant cpu > /dev/null"),
            0);
  EXPECT_EQ(slurp(out), slurp(golden_path("matvec_cpu.psample")));
}

TEST(CliPredict, BitwiseEqualToInProcessInferenceEngine) {
  // A deterministic checkpoint: fresh model (fixed init seed) + the golden
  // corpus scalers. The CLI and the in-process path below both start from
  // this same file.
  model::ModelConfig config;
  model::ParaGraphModel model(config);

  io::StoredSampleSet stored =
      io::read_sample_set_file(golden_path("corpus.pgds"));
  const model::CheckpointScalers scalers =
      model::CheckpointScalers::from_sample_set(stored.set);
  const std::string ckpt = temp_path("golden.ckpt");
  model::save_checkpoint_file(ckpt, model, scalers);

  // CLI path: predict over all four golden samples in one batch.
  const std::string preds = temp_path("preds.tsv");
  std::string sample_args;
  for (const char* name : kGoldenNames)
    sample_args += std::string(" ") + quoted(golden_path(std::string(name) + ".psample"));
  ASSERT_EQ(run_cli(std::string("predict --checkpoint ") + quoted(ckpt) + " --out " +
                    quoted(preds) + sample_args),
            0);

  // Parse the TSV: path \t scaled \t microseconds.
  std::vector<double> cli_scaled;
  std::vector<double> cli_us;
  {
    std::ifstream in(preds);
    ASSERT_TRUE(static_cast<bool>(in));
    std::string path_col;
    double scaled = 0.0;
    double us = 0.0;
    while (in >> path_col >> scaled >> us) {
      cli_scaled.push_back(scaled);
      cli_us.push_back(us);
    }
  }
  ASSERT_EQ(cli_scaled.size(), std::size(kGoldenNames));

  // In-process path: restore the checkpoint into a fresh model, read the
  // same .psample files, predict through InferenceEngine::predict_batch.
  model::ParaGraphModel restored(config);
  const model::CheckpointScalers loaded =
      model::load_checkpoint_file(ckpt, restored);
  model::SampleSet set;
  loaded.apply_to(set);

  std::vector<model::EncodedGraph> graphs;
  std::vector<std::array<float, 2>> aux;
  for (const char* name : kGoldenNames) {
    model::TrainingSample sample =
        io::read_sample_file(golden_path(std::string(name) + ".psample"));
    aux.push_back(sample.aux);
    graphs.push_back(std::move(sample.graph));
  }
  std::vector<double> expected_scaled(graphs.size());
  model::InferenceEngine engine(restored);
  engine.predict_batch(graphs, aux, expected_scaled);

  for (std::size_t i = 0; i < expected_scaled.size(); ++i) {
    // %.17g round-trips doubles exactly, so bitwise equality is testable
    // through the text file.
    EXPECT_EQ(cli_scaled[i], expected_scaled[i]) << kGoldenNames[i];
    EXPECT_EQ(cli_us[i], set.from_target(expected_scaled[i])) << kGoldenNames[i];
  }
}

TEST(CliDump, SucceedsOnEveryGoldenKind) {
  EXPECT_EQ(run_cli(std::string("dump ") + quoted(golden_path("matvec_cpu.pgraph")) +
                    " > /dev/null"),
            0);
  EXPECT_EQ(run_cli(std::string("dump ") + quoted(golden_path("matvec_cpu.psample")) +
                    " > /dev/null"),
            0);
  EXPECT_EQ(run_cli(std::string("dump ") + quoted(golden_path("corpus.pgds")) +
                    " > /dev/null"),
            0);
}

TEST(CliErrors, CleanFailuresNotCrashes) {
  // Corrupt file -> exit 1 (clean FormatError), not a signal.
  const std::string corrupt = temp_path("corrupt.pgraph");
  {
    std::ofstream os(corrupt, std::ios::binary);
    os << "XGIOBIN\x1a garbage";
  }
  const int status = run_cli(std::string("dump ") + quoted(corrupt) + " 2> /dev/null");
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 1);

  // Unknown subcommand -> usage (exit 2).
  const int usage_status = run_cli("frobnicate 2> /dev/null");
  ASSERT_TRUE(WIFEXITED(usage_status));
  EXPECT_EQ(WEXITSTATUS(usage_status), 2);

  // Parse error in a source file -> exit 1 with diagnostics.
  const std::string bad_src = temp_path("bad.c");
  {
    std::ofstream os(bad_src);
    os << "void broken( {\n";
  }
  const int compile_status =
      run_cli(std::string("compile ") + quoted(bad_src) + " -o /dev/null 2> /dev/null");
  ASSERT_TRUE(WIFEXITED(compile_status));
  EXPECT_EQ(WEXITSTATUS(compile_status), 1);
}

TEST(CliCorpus, GoldenRegenerationIsByteIdentical) {
  // The CI drift check in script form: regenerating the golden corpus into
  // a temp dir reproduces every checked-in file byte for byte.
  const std::string regen = temp_path("golden_regen");
  ASSERT_EQ(run_cli(std::string("corpus --golden --out ") + quoted(regen) + " > /dev/null"),
            0);
  const char* files[] = {"MANIFEST.txt",
                         "corpus.pgds",
                         "matvec_cpu.c",
                         "matvec_cpu.pgraph",
                         "matvec_cpu.pgraph.txt",
                         "matvec_cpu.psample",
                         "matmul_gpu_collapse_mem.psample",
                         "corr_gpu_mem.psample",
                         "gauss_seidel_cpu_collapse.psample"};
  for (const char* file : files)
    EXPECT_EQ(slurp(regen + "/" + file), slurp(golden_path(file))) << file;
}

}  // namespace
}  // namespace pg
