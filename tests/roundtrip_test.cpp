// Round-trip and ordering properties over every kernel in the suite:
// graph serialisation is lossless, NextToken chains follow source order,
// AST dumps are well-formed, and the frontend is deterministic.
#include <gtest/gtest.h>

#include <sstream>

#include "dataset/kernel_spec.hpp"
#include "dataset/variants.hpp"
#include "frontend/ast_dump.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"

namespace pg {
namespace {

std::string suite_source(std::size_t index) {
  const auto& spec = dataset::benchmark_suite()[index];
  const auto variant = spec.collapsible ? dataset::Variant::kGpuCollapseMem
                                        : dataset::Variant::kGpuMem;
  return dataset::instantiate_source(spec, variant, spec.default_sizes.front(),
                                     128, 128);
}

class SuiteRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SuiteRoundTrip, GraphSerialisationIsLossless) {
  const auto parsed = frontend::parse_source(suite_source(GetParam()));
  ASSERT_TRUE(parsed.ok());
  const auto g = graph::build_graph(parsed.root(), {});

  std::stringstream buffer;
  g.serialize(buffer);
  const auto g2 = graph::ProgramGraph::deserialize(buffer);

  ASSERT_EQ(g2.num_nodes(), g.num_nodes());
  ASSERT_EQ(g2.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.num_edges(); ++i)
    EXPECT_EQ(g2.edges()[i], g.edges()[i]) << "edge " << i;
  for (std::size_t i = 0; i < g.num_nodes(); ++i)
    EXPECT_EQ(g2.nodes()[i].kind, g.nodes()[i].kind) << "node " << i;
}

TEST_P(SuiteRoundTrip, NextTokenChainFollowsSourceOrder) {
  const auto parsed = frontend::parse_source(suite_source(GetParam()));
  ASSERT_TRUE(parsed.ok());
  const auto terminals = frontend::terminals_in_token_order(parsed.root());
  ASSERT_GE(terminals.size(), 10u);
  for (std::size_t i = 1; i < terminals.size(); ++i)
    EXPECT_LE(terminals[i - 1]->range().begin.offset,
              terminals[i]->range().begin.offset);
}

TEST_P(SuiteRoundTrip, ParseIsDeterministic) {
  const std::string source = suite_source(GetParam());
  const auto a = frontend::parse_source(source);
  const auto b = frontend::parse_source(source);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Same dump <=> same tree shape, kinds, names, and literal values.
  EXPECT_EQ(frontend::dump_ast(a.root()), frontend::dump_ast(b.root()));
}

TEST_P(SuiteRoundTrip, DumpMentionsTheKernelFunction) {
  const auto& spec = dataset::benchmark_suite()[GetParam()];
  const auto parsed = frontend::parse_source(suite_source(GetParam()));
  ASSERT_TRUE(parsed.ok());
  const std::string dump = frontend::dump_ast(parsed.root());
  EXPECT_NE(dump.find("FunctionDecl"), std::string::npos);
  EXPECT_NE(dump.find("OmpTargetTeamsDistributeParallelForDirective"),
            std::string::npos)
      << spec.kernel;
}

TEST_P(SuiteRoundTrip, GraphBuildIsDeterministic) {
  const auto parsed = frontend::parse_source(suite_source(GetParam()));
  ASSERT_TRUE(parsed.ok());
  const auto a = graph::build_graph(parsed.root(), {});
  const auto b = graph::build_graph(parsed.root(), {});
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (std::size_t i = 0; i < a.num_edges(); ++i)
    EXPECT_EQ(a.edges()[i], b.edges()[i]);
}

INSTANTIATE_TEST_SUITE_P(AllKernels, SuiteRoundTrip,
                         ::testing::Range<std::size_t>(0, 17),
                         [](const auto& info) {
                           return dataset::benchmark_suite()[info.param].kernel;
                         });

}  // namespace
}  // namespace pg
