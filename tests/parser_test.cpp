// Tests for the recursive-descent parser: AST shapes, scoping/Ref
// resolution, OpenMP directives, implicit casts, and error reporting.
#include <gtest/gtest.h>

#include "frontend/ast_dump.hpp"
#include "frontend/parser.hpp"

namespace pg::frontend {
namespace {

ParseResult parse_ok(std::string_view source) {
  ParseResult result = parse_source(source);
  EXPECT_TRUE(result.ok()) << result.diagnostics.summary();
  return result;
}

const AstNode* first_of(const AstNode* root, NodeKind kind) {
  const AstNode* found = nullptr;
  walk(root, [&](const AstNode* n, int) {
    if (found == nullptr && n->is(kind)) found = n;
    return found == nullptr;
  });
  return found;
}

std::size_t count_of(const AstNode* root, NodeKind kind) {
  std::size_t count = 0;
  walk(root, [&](const AstNode* n, int) {
    if (n->is(kind)) ++count;
    return true;
  });
  return count;
}

TEST(Parser, EmptyFunction) {
  auto r = parse_ok("void f(void) {}");
  ASSERT_NE(r.root(), nullptr);
  EXPECT_EQ(r.root()->kind(), NodeKind::kTranslationUnit);
  ASSERT_EQ(r.root()->num_children(), 1u);
  const AstNode* fn = r.root()->child(0);
  EXPECT_EQ(fn->kind(), NodeKind::kFunctionDecl);
  EXPECT_EQ(fn->text(), "f");
  ASSERT_EQ(fn->num_children(), 1u);
  EXPECT_EQ(fn->child(0)->kind(), NodeKind::kCompoundStmt);
}

TEST(Parser, FunctionParametersBecomeParmVarDecls) {
  auto r = parse_ok("double add(double a, int b) { return a + b; }");
  const AstNode* fn = r.root()->child(0);
  ASSERT_EQ(fn->num_children(), 3u);  // 2 params + body
  EXPECT_EQ(fn->child(0)->kind(), NodeKind::kParmVarDecl);
  EXPECT_EQ(fn->child(0)->text(), "a");
  EXPECT_EQ(fn->child(0)->type().base, BaseType::kDouble);
  EXPECT_EQ(fn->child(1)->type().base, BaseType::kInt);
}

TEST(Parser, ForStmtChildOrderMatchesPaperFigure2) {
  // [init, cond, body, inc] — not Clang's [init, cond, inc, body].
  auto r = parse_ok("void f(void) { for (int i = 0; i < 50; i++) {} }");
  const AstNode* loop = first_of(r.root(), NodeKind::kForStmt);
  ASSERT_NE(loop, nullptr);
  ASSERT_EQ(loop->num_children(), 4u);
  EXPECT_EQ(loop->child(0)->kind(), NodeKind::kDeclStmt);
  EXPECT_EQ(loop->child(1)->kind(), NodeKind::kBinaryOperator);
  EXPECT_EQ(loop->child(2)->kind(), NodeKind::kCompoundStmt);
  EXPECT_EQ(loop->child(3)->kind(), NodeKind::kUnaryOperator);
  EXPECT_EQ(loop->for_body()->kind(), NodeKind::kCompoundStmt);
  EXPECT_EQ(loop->for_inc()->text(), "++post");
}

TEST(Parser, EmptyForHeaderPartsBecomeNullStmts) {
  auto r = parse_ok("void f(void) { for (;;) { break; } }");
  const AstNode* loop = first_of(r.root(), NodeKind::kForStmt);
  ASSERT_NE(loop, nullptr);
  EXPECT_EQ(loop->for_init()->kind(), NodeKind::kNullStmt);
  EXPECT_EQ(loop->for_cond()->kind(), NodeKind::kNullStmt);
  EXPECT_EQ(loop->for_inc()->kind(), NodeKind::kNullStmt);
}

TEST(Parser, IfWithElse) {
  auto r = parse_ok("void f(int x) { if (x > 0) { x = 1; } else { x = 2; } }");
  const AstNode* node = first_of(r.root(), NodeKind::kIfStmt);
  ASSERT_NE(node, nullptr);
  ASSERT_EQ(node->num_children(), 3u);
  EXPECT_NE(node->if_else(), nullptr);
}

TEST(Parser, IfWithoutElse) {
  auto r = parse_ok("void f(int x) { if (x > 0) x = 1; }");
  const AstNode* node = first_of(r.root(), NodeKind::kIfStmt);
  ASSERT_EQ(node->num_children(), 2u);
  EXPECT_EQ(node->if_else(), nullptr);
}

TEST(Parser, WhileAndDoLoops) {
  auto r = parse_ok("void f(int x) { while (x > 0) { x = x - 1; } do { x++; } while (x < 5); }");
  EXPECT_EQ(count_of(r.root(), NodeKind::kWhileStmt), 1u);
  EXPECT_EQ(count_of(r.root(), NodeKind::kDoStmt), 1u);
}

TEST(Parser, OperatorPrecedenceMulBeforeAdd) {
  auto r = parse_ok("int g(void) { return 1 + 2 * 3; }");
  const AstNode* ret = first_of(r.root(), NodeKind::kReturnStmt);
  const AstNode* add = ret->child(0);
  EXPECT_EQ(add->text(), "+");
  EXPECT_EQ(add->child(1)->text(), "*");
}

TEST(Parser, ParenthesesOverridePrecedence) {
  auto r = parse_ok("int g(void) { return (1 + 2) * 3; }");
  const AstNode* ret = first_of(r.root(), NodeKind::kReturnStmt);
  const AstNode* mul = ret->child(0);
  EXPECT_EQ(mul->text(), "*");
  EXPECT_EQ(mul->child(0)->kind(), NodeKind::kParenExpr);
}

TEST(Parser, AssignmentIsRightAssociative) {
  auto r = parse_ok("void f(void) { int a; int b; a = b = 3; }");
  const AstNode* fn = r.root()->child(0);
  const AstNode* body = fn->child(0);
  const AstNode* outer = body->child(2);
  ASSERT_EQ(outer->text(), "=");
  EXPECT_EQ(outer->child(1)->text(), "=");
}

TEST(Parser, CompoundAssignmentNode) {
  auto r = parse_ok("void f(void) { double s = 0.0; s += 1.5; }");
  EXPECT_EQ(count_of(r.root(), NodeKind::kCompoundAssignOperator), 1u);
}

TEST(Parser, ConditionalOperator) {
  auto r = parse_ok("int g(int x) { return x > 0 ? 1 : 2; }");
  EXPECT_EQ(count_of(r.root(), NodeKind::kConditionalOperator), 1u);
}

TEST(Parser, DeclRefResolvesToNearestScope) {
  auto r = parse_ok(R"(
    int x;
    void f(void) {
      int x;
      x = 1;
    }
  )");
  const AstNode* assign = first_of(r.root(), NodeKind::kBinaryOperator);
  const AstNode* ref = assign->child(0);
  ASSERT_EQ(ref->kind(), NodeKind::kDeclRefExpr);
  ASSERT_NE(ref->referenced_decl(), nullptr);
  // The inner VarDecl, not the global: the decl inside the function body.
  const AstNode* fn = r.root()->child(1);
  const AstNode* inner_decl = fn->child(0)->child(0)->child(0);
  EXPECT_EQ(ref->referenced_decl(), inner_decl);
}

TEST(Parser, UnresolvedIdentifierHasNullDecl) {
  auto r = parse_ok("double g(double x) { return sqrt(x); }");
  const AstNode* call = first_of(r.root(), NodeKind::kCallExpr);
  ASSERT_NE(call, nullptr);
  const AstNode* callee = call->child(0);
  EXPECT_EQ(callee->referenced_decl(), nullptr);
  EXPECT_EQ(callee->text(), "sqrt");
}

TEST(Parser, ArrayTypesRecordExtents) {
  auto r = parse_ok("double grid[128][256];");
  const AstNode* var = first_of(r.root(), NodeKind::kVarDecl);
  ASSERT_NE(var, nullptr);
  ASSERT_EQ(var->type().array_extents.size(), 2u);
  EXPECT_EQ(var->type().array_extents[0], 128);
  EXPECT_EQ(var->type().array_extents[1], 256);
  EXPECT_EQ(var->type().total_array_elements(), 128 * 256);
}

TEST(Parser, PointerDeclarators) {
  auto r = parse_ok("void f(double* p, int** q) { }");
  const AstNode* fn = r.root()->child(0);
  EXPECT_EQ(fn->child(0)->type().pointer_depth, 1);
  EXPECT_EQ(fn->child(1)->type().pointer_depth, 2);
}

TEST(Parser, MultiDeclaratorStatement) {
  auto r = parse_ok("void f(void) { int a = 1, b = 2, c; }");
  const AstNode* decl_stmt = first_of(r.root(), NodeKind::kDeclStmt);
  EXPECT_EQ(decl_stmt->num_children(), 3u);
}

TEST(Parser, ImplicitCastOnRvalueReadsOnly) {
  auto r = parse_ok("void f(void) { int a = 0; int b; b = a; }");
  // 'a' read -> wrapped; 'b' written -> not wrapped.
  const AstNode* fn = r.root()->child(0);
  const AstNode* assign = fn->child(0)->child(2);
  ASSERT_EQ(assign->text(), "=");
  EXPECT_EQ(assign->child(0)->kind(), NodeKind::kDeclRefExpr);
  EXPECT_EQ(assign->child(1)->kind(), NodeKind::kImplicitCastExpr);
  EXPECT_EQ(assign->child(1)->child(0)->kind(), NodeKind::kDeclRefExpr);
}

TEST(Parser, NoImplicitCastOnIncrementOperand) {
  auto r = parse_ok("void f(void) { int i = 0; i++; }");
  const AstNode* inc = first_of(r.root(), NodeKind::kUnaryOperator);
  ASSERT_NE(inc, nullptr);
  EXPECT_EQ(inc->child(0)->kind(), NodeKind::kDeclRefExpr);
}

TEST(Parser, ArrayBaseNotWrappedIndexIs) {
  auto r = parse_ok("void f(void) { double v[8]; int i = 0; v[i] = v[i] + 1.0; }");
  const AstNode* assign = first_of(r.root(), NodeKind::kBinaryOperator);
  const AstNode* lhs = assign->child(0);
  ASSERT_EQ(lhs->kind(), NodeKind::kArraySubscriptExpr);
  EXPECT_EQ(lhs->child(0)->kind(), NodeKind::kDeclRefExpr);      // base
  EXPECT_EQ(lhs->child(1)->kind(), NodeKind::kImplicitCastExpr); // index read
}

TEST(Parser, TypeInferenceIntPlusDoubleIsDouble) {
  auto r = parse_ok("double g(int a, double b) { return a + b; }");
  const AstNode* ret = first_of(r.root(), NodeKind::kReturnStmt);
  EXPECT_EQ(ret->child(0)->type().base, BaseType::kDouble);
}

TEST(Parser, ComparisonHasIntType) {
  auto r = parse_ok("int g(double a) { return a < 1.0; }");
  const AstNode* ret = first_of(r.root(), NodeKind::kReturnStmt);
  EXPECT_EQ(ret->child(0)->type().base, BaseType::kInt);
}

TEST(Parser, SubscriptPeelsArrayDimension) {
  auto r = parse_ok("double g(void) { double m[4][8]; return m[1][2]; }");
  const AstNode* ret = first_of(r.root(), NodeKind::kReturnStmt);
  const AstNode* outer = ret->child(0);
  ASSERT_EQ(outer->kind(), NodeKind::kArraySubscriptExpr);
  EXPECT_TRUE(outer->type().array_extents.empty());
  EXPECT_EQ(outer->child(0)->type().array_extents.size(), 1u);
}

TEST(Parser, CallExprChildrenAreCalleeThenArgs) {
  auto r = parse_ok("double g(double x) { return pow(x, 2.0); }");
  const AstNode* call = first_of(r.root(), NodeKind::kCallExpr);
  ASSERT_EQ(call->num_children(), 3u);
  EXPECT_EQ(call->child(0)->text(), "pow");
}

// --- OpenMP -----------------------------------------------------------

TEST(Parser, OmpParallelForDirective) {
  auto r = parse_ok(R"(
    void f(void) {
      #pragma omp parallel for num_threads(8) schedule(static)
      for (int i = 0; i < 100; i++) { }
    }
  )");
  const AstNode* dir = first_of(r.root(), NodeKind::kOmpParallelForDirective);
  ASSERT_NE(dir, nullptr);
  EXPECT_EQ(count_of(dir, NodeKind::kOmpNumThreadsClause), 1u);
  EXPECT_EQ(count_of(dir, NodeKind::kOmpScheduleClause), 1u);
  EXPECT_EQ(dir->omp_body()->kind(), NodeKind::kForStmt);
}

TEST(Parser, OmpTargetTeamsDirective) {
  auto r = parse_ok(R"(
    double a[64];
    void f(void) {
      #pragma omp target teams distribute parallel for num_teams(32) thread_limit(64) collapse(2)
      for (int i = 0; i < 8; i++)
        for (int j = 0; j < 8; j++)
          a[i] = a[i] + j;
    }
  )");
  const AstNode* dir =
      first_of(r.root(), NodeKind::kOmpTargetTeamsDistributeParallelForDirective);
  ASSERT_NE(dir, nullptr);
  EXPECT_EQ(count_of(dir, NodeKind::kOmpNumTeamsClause), 1u);
  EXPECT_EQ(count_of(dir, NodeKind::kOmpThreadLimitClause), 1u);
  EXPECT_EQ(count_of(dir, NodeKind::kOmpCollapseClause), 1u);
}

TEST(Parser, OmpMapClauseDirections) {
  auto r = parse_ok(R"(
    double a[64];
    double b[64];
    double c[64];
    void f(void) {
      #pragma omp target teams distribute parallel for num_teams(4) thread_limit(32) map(to: a[0:64], b[0:64]) map(from: c[0:64])
      for (int i = 0; i < 64; i++) c[i] = a[i] + b[i];
    }
  )");
  EXPECT_EQ(count_of(r.root(), NodeKind::kOmpMapToClause), 1u);
  EXPECT_EQ(count_of(r.root(), NodeKind::kOmpMapFromClause), 1u);
  EXPECT_EQ(count_of(r.root(), NodeKind::kOmpArraySection), 3u);
}

TEST(Parser, OmpReductionClauseResolvesVariables) {
  auto r = parse_ok(R"(
    double x[100];
    void f(void) {
      double s = 0.0;
      #pragma omp parallel for num_threads(4) reduction(+: s)
      for (int i = 0; i < 100; i++) s += x[i];
    }
  )");
  const AstNode* red = first_of(r.root(), NodeKind::kOmpReductionClause);
  ASSERT_NE(red, nullptr);
  EXPECT_EQ(red->text(), "+");
  ASSERT_EQ(red->num_children(), 1u);
  EXPECT_NE(red->child(0)->referenced_decl(), nullptr);
}

TEST(Parser, OmpArraySectionShape) {
  auto r = parse_ok(R"(
    double a[100];
    void f(void) {
      #pragma omp target teams distribute parallel for num_teams(2) thread_limit(8) map(tofrom: a[0:100])
      for (int i = 0; i < 100; i++) a[i] = 0.0;
    }
  )");
  const AstNode* section = first_of(r.root(), NodeKind::kOmpArraySection);
  ASSERT_NE(section, nullptr);
  ASSERT_EQ(section->num_children(), 3u);  // base, lower, length
  EXPECT_EQ(section->child(0)->kind(), NodeKind::kDeclRefExpr);
}

TEST(Parser, OmpDirectiveRequiresForLoop) {
  auto r = parse_source(R"(
    void f(void) {
      #pragma omp parallel for num_threads(2)
      { }
    }
  )");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, UnsupportedPragmaIsError) {
  auto r = parse_source(R"(
    void f(void) {
      #pragma omp barrier
      for (int i = 0; i < 4; i++) {}
    }
  )");
  EXPECT_FALSE(r.ok());
}

TEST(Parser, DirectiveKindsDistinguishVariants) {
  // gpu vs cpu variants must be distinguishable by node kind alone.
  auto cpu = parse_ok(R"(
    void f(void) {
      #pragma omp parallel for num_threads(2)
      for (int i = 0; i < 4; i++) {}
    })");
  auto gpu = parse_ok(R"(
    void f(void) {
      #pragma omp target teams distribute parallel for num_teams(2) thread_limit(2)
      for (int i = 0; i < 4; i++) {}
    })");
  EXPECT_EQ(count_of(cpu.root(), NodeKind::kOmpParallelForDirective), 1u);
  EXPECT_EQ(count_of(gpu.root(),
                     NodeKind::kOmpTargetTeamsDistributeParallelForDirective), 1u);
}

// --- errors -------------------------------------------------------------

TEST(Parser, MissingSemicolonIsError) {
  EXPECT_FALSE(parse_source("void f(void) { int x = 1 }").ok());
}

TEST(Parser, UnbalancedBraceIsError) {
  EXPECT_FALSE(parse_source("void f(void) { ").ok());
}

TEST(Parser, GarbageAtTopLevelIsError) {
  EXPECT_FALSE(parse_source("42;").ok());
}

TEST(Parser, DiagnosticsCarryLocation) {
  auto r = parse_source("void f(void) {\n  int x = ;\n}");
  ASSERT_TRUE(r.diagnostics.has_errors());
  EXPECT_EQ(r.diagnostics.entries()[0].location.line, 2u);
}

// --- terminals / token order ---------------------------------------------

TEST(Parser, TerminalsComeBackInSourceOrder) {
  auto r = parse_ok("void f(void) { int a = 1; int b = 2; a = a + b; }");
  const auto terminals = terminals_in_token_order(r.root());
  ASSERT_GE(terminals.size(), 5u);
  for (std::size_t i = 1; i < terminals.size(); ++i)
    EXPECT_LE(terminals[i - 1]->range().begin.offset,
              terminals[i]->range().begin.offset);
}

TEST(Parser, DumpContainsKindsAndNames) {
  auto r = parse_ok("int add(int a, int b) { return a + b; }");
  const std::string dump = dump_ast(r.root());
  EXPECT_NE(dump.find("FunctionDecl 'add'"), std::string::npos);
  EXPECT_NE(dump.find("ParmVarDecl 'a'"), std::string::npos);
  EXPECT_NE(dump.find("ReturnStmt"), std::string::npos);
}

TEST(Parser, SubtreeSizeCountsAllNodes) {
  auto r = parse_ok("void f(void) {}");
  // TU + FunctionDecl + CompoundStmt.
  EXPECT_EQ(subtree_size(r.root()), 3u);
}

}  // namespace
}  // namespace pg::frontend
