// Tests for the C-subset lexer.
#include <gtest/gtest.h>

#include "frontend/lexer.hpp"

namespace pg::frontend {
namespace {

std::vector<Token> lex(std::string_view source) {
  Diagnostics diags;
  Lexer lexer(source, diags);
  auto tokens = lexer.tokenize_all();
  EXPECT_FALSE(diags.has_errors()) << diags.summary();
  return tokens;
}

std::vector<TokenKind> kinds(std::string_view source) {
  std::vector<TokenKind> out;
  for (const Token& t : lex(source)) out.push_back(t.kind);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  const auto tokens = lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(Lexer, IdentifiersAndKeywords) {
  const auto tokens = lex("int foo while whiley _bar x2");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwInt);
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[1].text, "foo");
  EXPECT_EQ(tokens[2].kind, TokenKind::kKwWhile);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdentifier);  // prefix is not keyword
  EXPECT_EQ(tokens[4].text, "_bar");
  EXPECT_EQ(tokens[5].text, "x2");
}

TEST(Lexer, IntegerLiterals) {
  const auto tokens = lex("0 42 0x1F 100u 7L");
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(tokens[i].kind, TokenKind::kIntegerLiteral) << i;
  EXPECT_EQ(tokens[2].text, "0x1F");
}

TEST(Lexer, FloatingLiterals) {
  const auto tokens = lex("1.5 0.25 1e10 2.5e-3 3.f");
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(tokens[i].kind, TokenKind::kFloatingLiteral) << i;
}

TEST(Lexer, FloatSuffixForcesFloating) {
  const auto tokens = lex("1f");
  EXPECT_EQ(tokens[0].kind, TokenKind::kFloatingLiteral);
}

TEST(Lexer, TwoCharOperators) {
  const auto ks = kinds("<= >= == != && || << >> += -= *= /= %= ++ -- ->");
  const std::vector<TokenKind> expected = {
      TokenKind::kLessEqual,    TokenKind::kGreaterEqual,
      TokenKind::kEqualEqual,   TokenKind::kExclaimEqual,
      TokenKind::kAmpAmp,       TokenKind::kPipePipe,
      TokenKind::kLessLess,     TokenKind::kGreaterGreater,
      TokenKind::kPlusEqual,    TokenKind::kMinusEqual,
      TokenKind::kStarEqual,    TokenKind::kSlashEqual,
      TokenKind::kPercentEqual, TokenKind::kPlusPlus,
      TokenKind::kMinusMinus,   TokenKind::kArrow,
      TokenKind::kEof};
  EXPECT_EQ(ks, expected);
}

TEST(Lexer, MaximalMunchPlusPlusPlus) {
  // "+++" lexes as "++" "+".
  const auto ks = kinds("x+++y");
  const std::vector<TokenKind> expected = {
      TokenKind::kIdentifier, TokenKind::kPlusPlus, TokenKind::kPlus,
      TokenKind::kIdentifier, TokenKind::kEof};
  EXPECT_EQ(ks, expected);
}

TEST(Lexer, LineCommentsSkipped) {
  const auto tokens = lex("a // this is a comment\nb");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
  EXPECT_EQ(tokens[2].kind, TokenKind::kEof);
}

TEST(Lexer, BlockCommentsSkipped) {
  const auto tokens = lex("a /* multi\nline */ b");
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, UnterminatedBlockCommentReportsError) {
  Diagnostics diags;
  Lexer lexer("a /* never closed", diags);
  (void)lexer.tokenize_all();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, PragmaBecomesSingleToken) {
  const auto tokens = lex("#pragma omp parallel for num_threads(4)\nint x;");
  ASSERT_GE(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kPragma);
  EXPECT_EQ(tokens[0].text, "omp parallel for num_threads(4)");
  EXPECT_EQ(tokens[1].kind, TokenKind::kKwInt);
}

TEST(Lexer, PragmaLineContinuation) {
  const auto tokens = lex("#pragma omp parallel for \\\n  collapse(2)\nx");
  EXPECT_EQ(tokens[0].kind, TokenKind::kPragma);
  EXPECT_NE(tokens[0].text.find("collapse(2)"), std::string::npos);
}

TEST(Lexer, IncludeAndDefineLinesSkipped) {
  const auto tokens = lex("#include <math.h>\n#define FOO 1\nint x;");
  EXPECT_EQ(tokens[0].kind, TokenKind::kKwInt);
}

TEST(Lexer, StringAndCharLiterals) {
  const auto tokens = lex(R"("hello \"world\"" 'a')");
  EXPECT_EQ(tokens[0].kind, TokenKind::kStringLiteral);
  EXPECT_EQ(tokens[1].kind, TokenKind::kCharLiteral);
}

TEST(Lexer, UnterminatedStringReportsError) {
  Diagnostics diags;
  Lexer lexer("\"abc", diags);
  (void)lexer.tokenize_all();
  EXPECT_TRUE(diags.has_errors());
}

TEST(Lexer, LocationsTrackLinesAndColumns) {
  const auto tokens = lex("a\n  b");
  EXPECT_EQ(tokens[0].location.line, 1u);
  EXPECT_EQ(tokens[0].location.column, 1u);
  EXPECT_EQ(tokens[1].location.line, 2u);
  EXPECT_EQ(tokens[1].location.column, 3u);
}

TEST(Lexer, OffsetsAreByteOffsets) {
  const auto tokens = lex("ab cd");
  EXPECT_EQ(tokens[0].location.offset, 0u);
  EXPECT_EQ(tokens[1].location.offset, 3u);
}

TEST(Lexer, UnexpectedCharacterReportsErrorAndContinues) {
  Diagnostics diags;
  Lexer lexer("a @ b", diags);
  const auto tokens = lexer.tokenize_all();
  EXPECT_TRUE(diags.has_errors());
  // 'a' and 'b' still lexed.
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, KeywordsCarrySpelling) {
  const auto tokens = lex("for static");
  EXPECT_EQ(tokens[0].text, "for");
  EXPECT_EQ(tokens[1].text, "static");
}

TEST(Lexer, TokenKindNamesAreStable) {
  EXPECT_EQ(token_kind_name(TokenKind::kLBrace), "'{'");
  EXPECT_EQ(token_kind_name(TokenKind::kIdentifier), "identifier");
  EXPECT_EQ(token_kind_name(TokenKind::kEof), "end of input");
}

}  // namespace
}  // namespace pg::frontend
