// Tests for the dense matrix substrate: shapes, ops vs. naive references,
// algebraic identities (parameterised over sizes).
#include <gtest/gtest.h>

#include <cmath>

#include "support/check.hpp"
#include "support/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/matrix.hpp"

namespace pg::tensor {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  pg::Rng rng(seed);
  uniform_init(m, rng, -1.0f, 1.0f);
  return m;
}

Matrix naive_matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k)
        acc += static_cast<double>(a(i, k)) * b(k, j);
      c(i, j) = static_cast<float>(acc);
    }
  return c;
}

void expect_near(const Matrix& a, const Matrix& b, float tol = 1e-4f) {
  ASSERT_TRUE(a.same_shape(b));
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      ASSERT_NEAR(a(i, j), b(i, j), tol) << "at (" << i << "," << j << ")";
}

TEST(Matrix, ConstructionAndFill) {
  Matrix m(3, 4, 2.5f);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  EXPECT_EQ(m(2, 3), 2.5f);
  m.zero();
  EXPECT_EQ(m(0, 0), 0.0f);
}

TEST(Matrix, RowFactoryAndSpans) {
  const std::vector<float> vals = {1.0f, 2.0f, 3.0f};
  Matrix m = Matrix::row(vals);
  EXPECT_EQ(m.rows(), 1u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.row_span(0)[1], 2.0f);
}

TEST(Matrix, OutOfRangeIndexThrows) {
  Matrix m(2, 2);
  EXPECT_THROW((void)m(2, 0), InternalError);
  EXPECT_THROW((void)m(0, 2), InternalError);
  EXPECT_THROW((void)m.row_span(5), InternalError);
}

TEST(Matrix, ElementwiseOps) {
  Matrix a(2, 2, 3.0f);
  Matrix b(2, 2, 2.0f);
  a.add_(b);
  EXPECT_EQ(a(0, 0), 5.0f);
  a.sub_(b);
  EXPECT_EQ(a(1, 1), 3.0f);
  a.mul_(b);
  EXPECT_EQ(a(0, 1), 6.0f);
  a.scale_(0.5f);
  EXPECT_EQ(a(1, 0), 3.0f);
  a.axpy_(2.0f, b);
  EXPECT_EQ(a(0, 0), 7.0f);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a.add_(b), InternalError);
  EXPECT_THROW(a.axpy_(1.0f, b), InternalError);
}

TEST(Matrix, SumAndSquaredNorm) {
  Matrix m(2, 2);
  m(0, 0) = 1.0f; m(0, 1) = 2.0f; m(1, 0) = 3.0f; m(1, 1) = 4.0f;
  EXPECT_DOUBLE_EQ(m.sum(), 10.0);
  EXPECT_DOUBLE_EQ(m.squared_norm(), 30.0);
}

TEST(Matmul, InnerDimensionMismatchThrows) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW(matmul(a, b), InternalError);
}

TEST(Matmul, IdentityIsNeutral) {
  Matrix a = random_matrix(5, 5, 1);
  Matrix eye(5, 5);
  for (int i = 0; i < 5; ++i) eye(i, i) = 1.0f;
  expect_near(matmul(a, eye), a);
  expect_near(matmul(eye, a), a);
}

class MatmulSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MatmulSizes, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 11);
  const Matrix b = random_matrix(k, n, 22);
  expect_near(matmul(a, b), naive_matmul(a, b), 1e-3f * static_cast<float>(k));
}

TEST_P(MatmulSizes, TransposeAIdentity) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(k, m, 33);  // note: transposed shape
  const Matrix b = random_matrix(k, n, 44);
  expect_near(matmul_transpose_a(a, b), matmul(transpose(a), b),
              1e-3f * static_cast<float>(k));
}

TEST_P(MatmulSizes, TransposeBIdentity) {
  const auto [m, k, n] = GetParam();
  const Matrix a = random_matrix(m, k, 55);
  const Matrix b = random_matrix(n, k, 66);
  expect_near(matmul_transpose_b(a, b), matmul(a, transpose(b)),
              1e-3f * static_cast<float>(k));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatmulSizes,
    ::testing::Values(std::tuple{1, 1, 1}, std::tuple{2, 3, 4},
                      std::tuple{7, 5, 3}, std::tuple{16, 16, 16},
                      std::tuple{33, 17, 9}, std::tuple{64, 45, 24},
                      std::tuple{128, 64, 32}, std::tuple{200, 100, 50}));

TEST(Matmul, LargeTriggersParallelPathAndMatches) {
  const Matrix a = random_matrix(160, 120, 7);
  const Matrix b = random_matrix(120, 90, 8);
  expect_near(matmul(a, b), naive_matmul(a, b), 0.15f);
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  const Matrix a = random_matrix(7, 13, 3);
  expect_near(transpose(transpose(a)), a, 0.0f);
}

TEST(ColumnSums, MatchesManualSum) {
  Matrix a(3, 2);
  a(0, 0) = 1; a(1, 0) = 2; a(2, 0) = 3;
  a(0, 1) = 4; a(1, 1) = 5; a(2, 1) = 6;
  const Matrix s = column_sums(a);
  EXPECT_EQ(s.rows(), 1u);
  EXPECT_FLOAT_EQ(s(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(s(0, 1), 15.0f);
}

TEST(RowMean, AveragesRows) {
  Matrix a(2, 2);
  a(0, 0) = 1; a(0, 1) = 3;
  a(1, 0) = 3; a(1, 1) = 5;
  const Matrix m = row_mean(a);
  EXPECT_FLOAT_EQ(m(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(m(0, 1), 4.0f);
}

TEST(RowMean, EmptyThrows) {
  Matrix a;
  EXPECT_THROW(row_mean(a), InternalError);
}

TEST(AddSubHadamard, FreeFunctions) {
  const Matrix a = random_matrix(4, 4, 1);
  const Matrix b = random_matrix(4, 4, 2);
  const Matrix s = add(a, b);
  const Matrix d = sub(s, b);
  expect_near(d, a, 1e-6f);
  const Matrix h = hadamard(a, b);
  EXPECT_FLOAT_EQ(h(1, 1), a(1, 1) * b(1, 1));
}

TEST(Init, GlorotBoundsRespectFanInOut) {
  Matrix m(100, 50);
  pg::Rng rng(9);
  glorot_uniform(m, rng);
  const float bound = std::sqrt(6.0f / 150.0f);
  float max_abs = 0.0f;
  for (float v : m.data()) max_abs = std::max(max_abs, std::abs(v));
  EXPECT_LE(max_abs, bound + 1e-6f);
  EXPECT_GT(max_abs, bound * 0.5f);  // actually spreads out
}

TEST(Init, DeterministicForSeed) {
  Matrix a(10, 10), b(10, 10);
  pg::Rng r1(5), r2(5);
  glorot_uniform(a, r1);
  glorot_uniform(b, r2);
  expect_near(a, b, 0.0f);
}

}  // namespace
}  // namespace pg::tensor
