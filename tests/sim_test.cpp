// Tests for the machine simulator: kernel profiling (operation counting,
// transfer volumes, parallel structure) and runtime-model properties
// (monotonicity, overheads, device asymmetries).
#include <gtest/gtest.h>

#include "frontend/parser.hpp"
#include "sim/kernel_profile.hpp"
#include "sim/platform.hpp"
#include "sim/runtime_simulator.hpp"
#include "support/rng.hpp"

namespace pg::sim {
namespace {

KernelProfile profile(const std::string& source) {
  auto r = frontend::parse_source(source);
  EXPECT_TRUE(r.ok()) << r.diagnostics.summary();
  return profile_kernel(r.root());
}

// ------------------------------------------------------------- profiling ---

TEST(KernelProfile, CountsFlopsPerIteration) {
  const auto p = profile(R"(
    double a[100];
    void f(void) {
      for (int i = 0; i < 100; i++) {
        a[i] = a[i] * 2.0 + 1.0;
      }
    }
  )");
  // Two float ops per iteration.
  EXPECT_NEAR(p.flops, 200.0, 1e-9);
  EXPECT_NEAR(p.loads, 100.0, 1e-9);
  EXPECT_NEAR(p.stores, 100.0, 1e-9);
}

TEST(KernelProfile, NestedLoopsMultiplyCounts) {
  const auto p = profile(R"(
    double a[10][20];
    void f(void) {
      for (int i = 0; i < 10; i++)
        for (int j = 0; j < 20; j++)
          a[i][j] = a[i][j] + 1.0;
    }
  )");
  EXPECT_NEAR(p.flops, 200.0, 1e-9);
  EXPECT_EQ(p.loop_depth, 2);
}

TEST(KernelProfile, IfBranchesCountHalf) {
  const auto p = profile(R"(
    double a[100];
    void f(int c) {
      for (int i = 0; i < 100; i++) {
        if (c > 0) {
          a[i] = a[i] + 1.0;
        }
      }
    }
  )");
  EXPECT_NEAR(p.flops, 50.0, 1e-9);  // branch probability 1/2
  EXPECT_GT(p.branch_fraction, 0.3);
}

TEST(KernelProfile, TranscendentalCalls) {
  const auto p = profile(R"(
    double a[64];
    void f(void) {
      for (int i = 0; i < 64; i++) {
        a[i] = sqrt(a[i]) + exp(a[i]);
      }
    }
  )");
  EXPECT_NEAR(p.transcendental, 128.0, 1e-9);
}

TEST(KernelProfile, BytesUseElementSize) {
  const auto p = profile(R"(
    float a[10];
    void f(void) {
      for (int i = 0; i < 10; i++) a[i] = a[i] + 1.0;
    }
  )");
  // 10 loads + 10 stores of 4-byte floats.
  EXPECT_NEAR(p.bytes_accessed, 80.0, 1e-9);
}

TEST(KernelProfile, FootprintSumsDistinctArrays) {
  const auto p = profile(R"(
    double a[100];
    double b[100];
    void f(void) {
      for (int i = 0; i < 100; i++) a[i] = a[i] + b[i] + b[i];
    }
  )");
  EXPECT_NEAR(p.footprint_bytes, 1600.0, 1e-9);  // counted once each
}

TEST(KernelProfile, ContiguityDetectsUnitStride) {
  const auto contiguous = profile(R"(
    double a[64][64];
    void f(void) {
      for (int i = 0; i < 64; i++)
        for (int j = 0; j < 64; j++)
          a[i][j] = a[i][j] + 1.0;
    }
  )");
  EXPECT_NEAR(contiguous.contiguous_fraction, 1.0, 1e-9);

  const auto strided = profile(R"(
    double a[64][64];
    void f(void) {
      for (int i = 0; i < 64; i++)
        for (int j = 0; j < 64; j++)
          a[j][i] = a[j][i] + 1.0;
    }
  )");
  EXPECT_LT(strided.contiguous_fraction, 0.1);
}

TEST(KernelProfile, DirectiveConfigExtracted) {
  const auto p = profile(R"(
    double a[128][64];
    void f(void) {
      #pragma omp target teams distribute parallel for num_teams(32) thread_limit(256) collapse(2)
      for (int i = 0; i < 128; i++)
        for (int j = 0; j < 64; j++)
          a[i][j] = 0.0;
    }
  )");
  EXPECT_TRUE(p.offload);
  EXPECT_TRUE(p.has_directive);
  EXPECT_EQ(p.num_teams, 32);
  EXPECT_EQ(p.num_threads, 256);
  EXPECT_EQ(p.collapse_depth, 2);
  EXPECT_EQ(p.parallel_iterations, 128 * 64);
}

TEST(KernelProfile, NoCollapseParallelIterationsOuterOnly) {
  const auto p = profile(R"(
    double a[128][64];
    void f(void) {
      #pragma omp parallel for num_threads(8)
      for (int i = 0; i < 128; i++)
        for (int j = 0; j < 64; j++)
          a[i][j] = 0.0;
    }
  )");
  EXPECT_FALSE(p.offload);
  EXPECT_EQ(p.parallel_iterations, 128);
  EXPECT_EQ(p.num_threads, 8);
}

TEST(KernelProfile, MapClausesSumTransferBytes) {
  const auto p = profile(R"(
    double a[100];
    double b[100];
    void f(void) {
      #pragma omp target teams distribute parallel for num_teams(4) thread_limit(64) map(to: a[0:100]) map(tofrom: b[0:100])
      for (int i = 0; i < 100; i++) b[i] = a[i];
    }
  )");
  EXPECT_NEAR(p.transfer_to_bytes, 1600.0, 1e-9);   // a + b
  EXPECT_NEAR(p.transfer_from_bytes, 800.0, 1e-9);  // b
}

TEST(KernelProfile, NoMapClausesNoTransfer) {
  const auto p = profile(R"(
    double a[100];
    void f(void) {
      #pragma omp target teams distribute parallel for num_teams(4) thread_limit(64)
      for (int i = 0; i < 100; i++) a[i] = 0.0;
    }
  )");
  EXPECT_EQ(p.transfer_bytes(), 0.0);
}

// ---------------------------------------------------------------- runtime ---

KernelProfile base_profile() {
  KernelProfile p;
  p.flops = 1e9;
  p.loads = 2e8;
  p.stores = 1e8;
  p.bytes_accessed = 2.4e9;
  p.footprint_bytes = 1e9;
  p.has_directive = true;
  p.parallel_iterations = 1 << 20;
  p.num_threads = 8;
  return p;
}

TEST(RuntimeSim, MoreWorkTakesLonger) {
  const auto cpu = summit_power9();
  auto small = base_profile();
  auto big = base_profile();
  big.flops *= 10;
  big.bytes_accessed *= 10;
  EXPECT_GT(simulate_runtime_us(big, cpu), simulate_runtime_us(small, cpu));
}

TEST(RuntimeSim, MoreCpuThreadsFasterForLargeKernels) {
  const auto cpu = corona_epyc7401();
  auto p1 = base_profile();
  p1.num_threads = 1;
  auto p16 = base_profile();
  p16.num_threads = 16;
  EXPECT_GT(simulate_runtime_us(p1, cpu), 2.0 * simulate_runtime_us(p16, cpu));
}

TEST(RuntimeSim, ThreadsBeyondCoresDontHelp) {
  const auto cpu = summit_power9();  // 22 cores
  auto p22 = base_profile();
  p22.num_threads = 22;
  auto p88 = base_profile();
  p88.num_threads = 88;
  EXPECT_NEAR(simulate_runtime_us(p22, cpu), simulate_runtime_us(p88, cpu),
              simulate_runtime_us(p22, cpu) * 1e-6);
}

TEST(RuntimeSim, GpuTransfersAddTime) {
  const auto gpu = summit_v100();
  auto with = base_profile();
  with.offload = true;
  with.num_teams = 256;
  with.num_threads = 256;
  auto without = with;
  with.transfer_to_bytes = 1e9;
  with.transfer_from_bytes = 1e9;
  const double t_with = simulate_runtime_us(with, gpu);
  const double t_without = simulate_runtime_us(without, gpu);
  // 2 GB over ~42 GB/s is ~48 ms.
  EXPECT_GT(t_with - t_without, 40000.0);
}

TEST(RuntimeSim, GpuLaunchOverheadFloorsSmallKernels) {
  const auto gpu = corona_mi50();
  KernelProfile tiny;
  tiny.flops = 10.0;
  tiny.offload = true;
  tiny.has_directive = true;
  tiny.num_teams = 1;
  tiny.num_threads = 64;
  tiny.parallel_iterations = 8;
  EXPECT_GE(simulate_runtime_us(tiny, gpu), gpu.kernel_launch_us);
}

TEST(RuntimeSim, LowConcurrencyHurtsGpu) {
  const auto gpu = summit_v100();
  auto narrow = base_profile();
  narrow.offload = true;
  narrow.num_teams = 256;
  narrow.num_threads = 256;
  auto wide = narrow;
  narrow.parallel_iterations = 128;      // only 128 parallel iterations
  wide.parallel_iterations = 1 << 20;
  EXPECT_GT(simulate_runtime_us(narrow, gpu),
            4.0 * simulate_runtime_us(wide, gpu));
}

TEST(RuntimeSim, StridedAccessSlowerOnBothDevices) {
  for (const auto& platform : all_platforms()) {
    auto unit = base_profile();
    unit.contiguous_fraction = 1.0;
    // Make it clearly memory-bound so stride dominates.
    unit.flops = 1e6;
    auto strided = unit;
    strided.contiguous_fraction = 0.0;
    if (platform.kind == DeviceKind::kGpu) {
      unit.offload = strided.offload = true;
      unit.num_teams = strided.num_teams = 512;
      unit.num_threads = strided.num_threads = 256;
    }
    EXPECT_GT(simulate_runtime_us(strided, platform),
              1.5 * simulate_runtime_us(unit, platform))
        << platform.name;
  }
}

TEST(RuntimeSim, CacheResidentFootprintFaster) {
  const auto cpu = corona_epyc7401();
  auto in_cache = base_profile();
  in_cache.flops = 1e6;                   // memory-bound
  in_cache.footprint_bytes = 16e6;        // < 64 MB LLC
  auto out_of_cache = in_cache;
  out_of_cache.footprint_bytes = 4e9;
  EXPECT_GT(simulate_runtime_us(out_of_cache, cpu),
            2.0 * simulate_runtime_us(in_cache, cpu));
}

TEST(RuntimeSim, BranchDivergenceCostsMoreOnGpu) {
  // Divergence derates *compute* throughput, so use a compute-bound profile
  // (negligible memory traffic) to observe it.
  const auto gpu = summit_v100();
  const auto cpu = summit_power9();
  auto smooth = base_profile();
  smooth.bytes_accessed = 1e3;
  smooth.offload = true;
  smooth.num_teams = 512;
  smooth.num_threads = 256;
  auto branchy = smooth;
  branchy.branch_fraction = 1.0;
  const double gpu_ratio =
      simulate_runtime_us(branchy, gpu) / simulate_runtime_us(smooth, gpu);

  auto cpu_smooth = base_profile();
  cpu_smooth.bytes_accessed = 1e3;
  auto cpu_branchy = cpu_smooth;
  cpu_branchy.branch_fraction = 1.0;
  const double cpu_ratio = simulate_runtime_us(cpu_branchy, cpu) /
                           simulate_runtime_us(cpu_smooth, cpu);
  EXPECT_GT(gpu_ratio, cpu_ratio);
  EXPECT_GT(gpu_ratio, 1.5);  // warp divergence is a first-order GPU effect
}

TEST(RuntimeSim, TimerFloorApplies) {
  KernelProfile empty;
  const auto cpu = summit_power9();
  SimOptions options;
  options.timer_floor_us = 5.0;
  EXPECT_GE(simulate_runtime_us(empty, cpu, options), 5.0);
}

TEST(RuntimeSim, NoiseIsMultiplicativeAndSeeded) {
  const auto gpu = summit_v100();
  const auto p = [] {
    auto b = base_profile();
    b.offload = true;
    b.num_teams = 128;
    b.num_threads = 128;
    return b;
  }();
  pg::Rng r1(5), r2(5), r3(6);
  SimOptions options;
  const double a = measure_runtime_us(p, gpu, r1, options);
  const double b = measure_runtime_us(p, gpu, r2, options);
  const double c = measure_runtime_us(p, gpu, r3, options);
  EXPECT_EQ(a, b);  // same seed
  EXPECT_NE(a, c);  // different seed
  const double clean = simulate_runtime_us(p, gpu, options);
  EXPECT_NEAR(a / clean, 1.0, 0.25);  // jitter is a few percent
}

TEST(RuntimeSim, ZeroNoiseMatchesDeterministic) {
  const auto cpu = summit_power9();
  const auto p = base_profile();
  pg::Rng rng(1);
  SimOptions options;
  options.noise_sigma = 0.0;
  EXPECT_EQ(measure_runtime_us(p, cpu, rng, options),
            simulate_runtime_us(p, cpu, options));
}

// --------------------------------------------------------------- platforms ---

TEST(Platforms, FourPlatformsInPaperOrder) {
  const auto platforms = all_platforms();
  ASSERT_EQ(platforms.size(), 4u);
  EXPECT_EQ(platforms[0].name, "IBM POWER9 (CPU)");
  EXPECT_EQ(platforms[1].name, "NVIDIA V100 (GPU)");
  EXPECT_EQ(platforms[2].name, "AMD EPYC7401 (CPU)");
  EXPECT_EQ(platforms[3].name, "AMD MI50 (GPU)");
}

TEST(Platforms, CoreCountsMatchPaper) {
  EXPECT_EQ(summit_power9().cores, 22);   // "POWER9 with 22 cores"
  EXPECT_EQ(corona_epyc7401().cores, 24); // "EPYC 7401 with 24 cores"
}

TEST(Platforms, GpusHaveTransferAndLaunchCosts) {
  for (const auto& p : {summit_v100(), corona_mi50()}) {
    EXPECT_GT(p.transfer_bandwidth_gbs, 0.0);
    EXPECT_GT(p.kernel_launch_us, 0.0);
    EXPECT_EQ(p.kind, DeviceKind::kGpu);
  }
}

TEST(Platforms, PeakFlopsOrdering) {
  // GPUs are far faster than CPUs in peak throughput.
  EXPECT_GT(summit_v100().peak_flops(), 3.0 * summit_power9().peak_flops());
  EXPECT_GT(corona_mi50().peak_flops(), 3.0 * corona_epyc7401().peak_flops());
}

}  // namespace
}  // namespace pg::sim
