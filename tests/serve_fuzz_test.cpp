// Randomized robustness test for the serve layer, the socket-facing sibling
// of robustness_test: ~1k seeded-random mutations (truncations, byte flips,
// splices, insertions, deletions) of valid request streams are thrown at a
// live server over loopback. The contract: every mutated stream ends in an
// error reply or a clean disconnect — never a crash, hang, or UB (the suite
// runs under the ASan+UBSan CI job) — and the server stays fully healthy
// for well-formed clients afterwards.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "io/pgraph_io.hpp"
#include "model/checkpoint.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/socket.hpp"
#include "support/rng.hpp"

#ifndef PG_GOLDEN_DIR
#error "PG_GOLDEN_DIR must point at tests/golden"
#endif

namespace pg {
namespace {

std::string golden_path(const std::string& name) {
  return std::string(PG_GOLDEN_DIR) + "/" + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(static_cast<bool>(is)) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

void append_frame(std::string& stream, serve::FrameKind kind,
                  std::uint64_t request_id, const std::string& payload) {
  const auto frame =
      serve::encode_frame(kind, request_id, payload.data(), payload.size());
  stream.append(reinterpret_cast<const char*>(frame.data()), frame.size());
}

/// Valid request streams to mutate: pipelined mixes of pings and predict
/// requests over the golden samples.
std::vector<std::string> seed_streams() {
  const std::string matvec = slurp(golden_path("matvec_cpu.psample"));
  const std::string corr = slurp(golden_path("corr_gpu_mem.psample"));

  std::vector<std::string> streams;
  {
    std::string s;
    append_frame(s, serve::FrameKind::kPing, 1, "");
    streams.push_back(std::move(s));
  }
  {
    std::string s;
    append_frame(s, serve::FrameKind::kPredictRequest, 2, matvec);
    streams.push_back(std::move(s));
  }
  {
    std::string s;
    append_frame(s, serve::FrameKind::kPing, 3, "");
    append_frame(s, serve::FrameKind::kPredictRequest, 4, matvec);
    append_frame(s, serve::FrameKind::kPredictRequest, 5, corr);
    append_frame(s, serve::FrameKind::kPing, 6, "");
    streams.push_back(std::move(s));
  }
  return streams;
}

/// One seeded mutation, intentionally crude (mirrors robustness_test):
/// hostile bytes, not plausible bytes.
std::string mutate(const std::string& stream, Rng& rng) {
  std::string s = stream;
  switch (rng.index(5)) {
    case 0: {  // truncation (often mid-header or mid-payload)
      s.resize(rng.index(s.size() + 1));
      break;
    }
    case 1: {  // byte flip (magic, version, kind, length, payload — anything)
      if (s.empty()) break;
      s[rng.index(s.size())] =
          static_cast<char>(static_cast<unsigned char>(rng.index(256)));
      break;
    }
    case 2: {  // splice: copy a random slice over a random position
      if (s.size() < 4) break;
      const std::size_t from = rng.index(s.size());
      const std::size_t len =
          1 + rng.index(std::min<std::size_t>(48, s.size() - from));
      const std::size_t to = rng.index(s.size());
      s.insert(to, s.substr(from, len));
      break;
    }
    case 3: {  // random garbage insertion
      const std::size_t to = s.empty() ? 0 : rng.index(s.size());
      const std::size_t count = 1 + rng.index(16);
      std::string junk;
      for (std::size_t i = 0; i < count; ++i)
        junk += static_cast<char>(static_cast<unsigned char>(rng.index(256)));
      s.insert(to, junk);
      break;
    }
    default: {  // range deletion
      if (s.size() < 2) break;
      const std::size_t from = rng.index(s.size());
      s.erase(from, 1 + rng.index(std::min<std::size_t>(64, s.size() - from)));
      break;
    }
  }
  return s;
}

class ServeFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    stored_ = io::read_sample_set_file(golden_path("corpus.pgds"));
    scalers_ = model::CheckpointScalers::from_sample_set(stored_.set);
    model_ = std::make_unique<model::ParaGraphModel>(config_);

    serve::ServeConfig serve_config;
    serve_config.workers = 1;
    serve_config.batch_max = 8;
    serve_config.batch_window_us = 100;
    server_ = std::make_unique<serve::Server>(*model_, scalers_, serve_config);
    server_->start();
    ASSERT_NE(server_->port(), 0);

    // The bitwise reference a healthy server must keep reproducing.
    model::InferenceEngine engine(*model_);
    const model::TrainingSample sample =
        io::read_sample_file(golden_path("matvec_cpu.psample"));
    expected_ = engine.predict_one(sample.graph, sample.aux);
    matvec_bytes_ = slurp(golden_path("matvec_cpu.psample"));
  }

  void TearDown() override { server_->stop(); }

  /// A well-formed client still gets the bitwise-correct answer.
  void expect_healthy(int iteration) {
    serve::Client client(server_->port(), 10000);
    std::uint64_t busy = 0;
    const auto response = client.predict_until_served(matvec_bytes_, &busy);
    ASSERT_TRUE(response.has_value()) << "after iteration " << iteration;
    ASSERT_EQ(response->kind, serve::FrameKind::kPredictReply)
        << "after iteration " << iteration << ": "
        << response->error.message;
    EXPECT_EQ(std::memcmp(&response->prediction.scaled, &expected_, 8), 0)
        << "after iteration " << iteration;
  }

  model::ModelConfig config_;
  io::StoredSampleSet stored_;
  model::CheckpointScalers scalers_;
  std::unique_ptr<model::ParaGraphModel> model_;
  std::unique_ptr<serve::Server> server_;
  double expected_ = 0.0;
  std::string matvec_bytes_;
};

TEST_F(ServeFuzz, SeededMutationsNeverCrashOrHangTheServer) {
  const std::vector<std::string> streams = seed_streams();
  ASSERT_FALSE(streams.empty());

  Rng rng(0x5e7ef022aa55deadULL);
  constexpr int kIterations = 1000;
  int replies_seen = 0;
  int disconnects = 0;
  for (int i = 0; i < kIterations; ++i) {
    std::string mutated = streams[rng.index(streams.size())];
    // Stack 1-3 mutations so framing damage can compound.
    const std::size_t rounds = 1 + rng.index(3);
    for (std::size_t r = 0; r < rounds; ++r) mutated = mutate(mutated, rng);

    try {
      serve::Socket socket = serve::connect_loopback(server_->port());
      // Generous hang guard only — the server closes mutated streams
      // promptly, so the timeout should never actually be consumed.
      socket.set_recv_timeout_ms(10000);
      if (!mutated.empty()) socket.write_all(mutated.data(), mutated.size());
      socket.shutdown_write();  // end-of-requests: the reader always drains

      // Drain every reply until the server disconnects. Each one must be a
      // well-formed reply frame — mutated input never produces mutated
      // output.
      while (true) {
        std::uint8_t header_bytes[serve::kFrameHeaderBytes];
        if (!socket.read_exact(header_bytes, sizeof header_bytes)) break;
        serve::FrameHeader header;
        ASSERT_EQ(serve::decode_header(header_bytes, header),
                  serve::HeaderVerdict::kOk)
            << "iteration " << i << ": malformed reply header";
        ASSERT_TRUE(header.kind == serve::FrameKind::kPredictReply ||
                    header.kind == serve::FrameKind::kErrorReply ||
                    header.kind == serve::FrameKind::kBusyReply ||
                    header.kind == serve::FrameKind::kPongReply)
            << "iteration " << i << ": reply kind "
            << static_cast<unsigned>(header.kind);
        socket.discard_exact(header.payload_bytes);
        ++replies_seen;
      }
    } catch (const serve::SocketError&) {
      // Reset mid-write/read: the server tore the connection down — a clean
      // disconnect as far as the contract is concerned.
      ++disconnects;
    }

    // Periodic health probe: the daemon must shrug all of this off.
    if ((i + 1) % 250 == 0) {
      ASSERT_NO_FATAL_FAILURE(expect_healthy(i)) << "iteration " << i;
    }
  }

  // Sanity: this seed exercises both reply and disconnect outcomes, and the
  // server did reject plenty of frames.
  EXPECT_GT(replies_seen, 0);
  const serve::ServerStats stats = server_->stats();
  EXPECT_GT(stats.requests_error, 0u);
  EXPECT_GE(stats.connections, static_cast<std::uint64_t>(kIterations));

  ASSERT_NO_FATAL_FAILURE(expect_healthy(kIterations));
  (void)disconnects;
}

TEST_F(ServeFuzz, SlowLorisFramesStillGetExactReplies) {
  // The classic reactor adversary: many connections trickling valid frames
  // a few bytes at a time. A thread-per-connection server parks a thread on
  // each; the reactor must assemble all of them concurrently with its fixed
  // pool and answer every frame — predictions bitwise-exact.
  constexpr std::size_t kConns = 16;
  std::vector<serve::Socket> conns;
  std::vector<std::string> streams(kConns);
  for (std::size_t c = 0; c < kConns; ++c) {
    conns.push_back(serve::connect_loopback(server_->port()));
    conns.back().set_recv_timeout_ms(20000);
    // ping, predict, ping — the predict buried between partial-frame
    // neighbours.
    append_frame(streams[c], serve::FrameKind::kPing, 100 + c, "");
    append_frame(streams[c], serve::FrameKind::kPredictRequest, 200 + c,
                 matvec_bytes_);
    append_frame(streams[c], serve::FrameKind::kPing, 300 + c, "");
  }

  // Interleave across connections: byte-at-a-time through every header
  // boundary region, then small odd-sized chunks for the payload bulk, so
  // each connection's assembler sees dozens of partial spans while 15
  // others are mid-frame too.
  std::vector<std::size_t> offset(kConns, 0);
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t c = 0; c < kConns; ++c) {
      const std::string& s = streams[c];
      if (offset[c] >= s.size()) continue;
      const std::size_t chunk =
          std::min(offset[c] < 100 ? std::size_t{1} : std::size_t{509},
                   s.size() - offset[c]);
      conns[c].write_all(s.data() + offset[c], chunk);
      offset[c] += chunk;
      progress = true;
    }
  }

  // Every connection is owed exactly: two pongs and one bitwise-exact
  // predict reply (completion order between them is not pinned).
  for (std::size_t c = 0; c < kConns; ++c) {
    int pongs = 0;
    int predicts = 0;
    for (int r = 0; r < 3; ++r) {
      std::uint8_t header_bytes[serve::kFrameHeaderBytes];
      ASSERT_TRUE(conns[c].read_exact(header_bytes, sizeof header_bytes))
          << "conn " << c << " reply " << r;
      serve::FrameHeader header;
      ASSERT_EQ(serve::decode_header(header_bytes, header),
                serve::HeaderVerdict::kOk);
      if (header.kind == serve::FrameKind::kPongReply) {
        ++pongs;
        EXPECT_TRUE(header.request_id == 100 + c || header.request_id == 300 + c)
            << "conn " << c;
        conns[c].discard_exact(header.payload_bytes);
        continue;
      }
      ASSERT_EQ(header.kind, serve::FrameKind::kPredictReply)
          << "conn " << c << " reply " << r;
      EXPECT_EQ(header.request_id, 200 + c);
      std::vector<std::uint8_t> payload(
          static_cast<std::size_t>(header.payload_bytes));
      ASSERT_TRUE(conns[c].read_exact(payload.data(), payload.size()));
      const auto reply =
          serve::decode_predict_reply_payload(payload.data(), payload.size());
      ASSERT_TRUE(reply.has_value());
      EXPECT_EQ(std::memcmp(&reply->scaled, &expected_, 8), 0)
          << "slow-loris delivery changed prediction bits on conn " << c;
      ++predicts;
    }
    EXPECT_EQ(pongs, 2) << "conn " << c;
    EXPECT_EQ(predicts, 1) << "conn " << c;
  }
  ASSERT_NO_FATAL_FAILURE(expect_healthy(-2));
}

TEST_F(ServeFuzz, MidFrameDisconnectsNeverWedgeTheReactor) {
  // Connections that vanish partway through a frame: random prefixes of a
  // valid stream, then an abrupt close (no end-of-requests courtesy). The
  // assembler state must be reclaimed and the daemon unharmed.
  std::string stream;
  append_frame(stream, serve::FrameKind::kPing, 1, "");
  append_frame(stream, serve::FrameKind::kPredictRequest, 2, matvec_bytes_);

  Rng rng(0x10af5e7ed15c0ULL);
  constexpr int kConns = 50;
  for (int i = 0; i < kConns; ++i) {
    try {
      serve::Socket socket = serve::connect_loopback(server_->port());
      const std::size_t prefix = rng.index(stream.size());
      if (prefix > 0) socket.write_all(stream.data(), prefix);
      // Destructor closes with bytes possibly still owed both ways.
    } catch (const serve::SocketError&) {
      // reset while writing: also a disconnect
    }
  }
  ASSERT_NO_FATAL_FAILURE(expect_healthy(-3));
}

TEST(ServeReadGate, ConnectionThatNeverReadsIsGatedNotFatal) {
  // Write-queue backpressure: a client that pipelines requests but refuses
  // to read replies. The reactor must stop polling its reads once the
  // inflight cap is hit (read_gated counts the engagements), keep the rest
  // of the server healthy, and deliver every reply — bitwise exact — once
  // the client finally reads.
  const io::StoredSampleSet stored =
      io::read_sample_set_file(golden_path("corpus.pgds"));
  const model::CheckpointScalers scalers =
      model::CheckpointScalers::from_sample_set(stored.set);
  model::ModelConfig config;
  model::ParaGraphModel model(config);
  model::InferenceEngine engine(*&model);
  const model::TrainingSample sample =
      io::read_sample_file(golden_path("matvec_cpu.psample"));
  const double expected = engine.predict_one(sample.graph, sample.aux);
  const std::string psample = slurp(golden_path("matvec_cpu.psample"));

  serve::ServeConfig serve_config;
  serve_config.workers = 1;
  serve_config.batch_max = 4;
  serve_config.batch_window_us = 100;
  serve_config.queue_depth = 64;
  serve_config.conn_inflight_cap = 2;   // gate engages almost immediately
  serve_config.write_queue_cap = 4096;  // the floor
  serve::Server server(model, scalers, serve_config);
  server.start();

  serve::Socket socket = serve::connect_loopback(server.port());
  socket.set_recv_timeout_ms(30000);
  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    const auto frame = serve::encode_frame(serve::FrameKind::kPredictRequest,
                                           static_cast<std::uint64_t>(i),
                                           psample.data(), psample.size());
    socket.write_all(frame.data(), frame.size());
  }

  // While this connection sulks, an ordinary client must sail through.
  serve::Client bystander(server.port(), 20000);
  const auto aside = bystander.predict_until_served(psample);
  ASSERT_TRUE(aside.has_value());
  ASSERT_EQ(aside->kind, serve::FrameKind::kPredictReply);

  // Now read everything: all 24 replies arrive, each bitwise exact.
  for (int i = 0; i < kRequests; ++i) {
    std::uint8_t header_bytes[serve::kFrameHeaderBytes];
    ASSERT_TRUE(socket.read_exact(header_bytes, sizeof header_bytes))
        << "reply " << i;
    serve::FrameHeader header;
    ASSERT_EQ(serve::decode_header(header_bytes, header),
              serve::HeaderVerdict::kOk);
    ASSERT_EQ(header.kind, serve::FrameKind::kPredictReply) << "reply " << i;
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(header.payload_bytes));
    ASSERT_TRUE(socket.read_exact(payload.data(), payload.size()));
    const auto reply =
        serve::decode_predict_reply_payload(payload.data(), payload.size());
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(std::memcmp(&reply->scaled, &expected, 8), 0) << "reply " << i;
  }

  EXPECT_GT(server.stats().read_gated, 0u)
      << "pipelining far past conn_inflight_cap never engaged the read gate";
  server.stop();
}

TEST_F(ServeFuzz, DegenerateStreams) {
  // Hand-picked worst cases that random mutation might miss at one seed.
  const std::string psample = slurp(golden_path("matvec_cpu.psample"));
  std::vector<std::string> streams;
  streams.push_back("");                  // connect + immediate close
  streams.push_back("P");                 // 1 byte of magic
  streams.push_back("PGSV");              // magic only, no header tail
  streams.push_back(std::string(23, '\0'));  // one byte short of a header
  {
    // Header promising a payload that never arrives.
    const auto frame = serve::encode_frame(serve::FrameKind::kPredictRequest,
                                           9, nullptr, 0);
    std::string s(reinterpret_cast<const char*>(frame.data()), frame.size());
    s[16] = 0x40;  // declare a 64-byte payload, send none
    streams.push_back(std::move(s));
  }
  {
    // A predict payload truncated to half the .psample container.
    std::string s;
    append_frame(s, serve::FrameKind::kPredictRequest, 10,
                 psample.substr(0, psample.size() / 2));
    streams.push_back(std::move(s));
  }

  for (std::size_t i = 0; i < streams.size(); ++i) {
    try {
      serve::Socket socket = serve::connect_loopback(server_->port());
      socket.set_recv_timeout_ms(10000);
      if (!streams[i].empty())
        socket.write_all(streams[i].data(), streams[i].size());
      socket.shutdown_write();
      std::uint8_t header_bytes[serve::kFrameHeaderBytes];
      while (socket.read_exact(header_bytes, sizeof header_bytes)) {
        serve::FrameHeader header;
        ASSERT_EQ(serve::decode_header(header_bytes, header),
                  serve::HeaderVerdict::kOk)
            << "stream " << i;
        socket.discard_exact(header.payload_bytes);
      }
    } catch (const serve::SocketError&) {
      // clean disconnect
    }
  }
  ASSERT_NO_FATAL_FAILURE(expect_healthy(-1));
}

}  // namespace
}  // namespace pg
