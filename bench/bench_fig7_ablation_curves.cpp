// Figure 7: validation RMSE per epoch for Raw AST, Augmented AST, and
// ParaGraph on the MI50 data points.
//
// Paper shape: Raw AST descends slowly and plateaus high; Augmented AST is
// unstable early then settles in between; ParaGraph fluctuates early and
// converges to a considerably smaller error.
#include "bench_common.hpp"

int main() {
  using namespace pg;
  bench::BenchConfig config;
  config.epochs = static_cast<int>(env_int("PARAGRAPH_EPOCHS", 100));
  bench::print_header("Figure 7: ablation training curves on MI50 (RMSE, ms)",
                      config);

  const graph::Representation representations[3] = {
      graph::Representation::kParaGraph, graph::Representation::kAugmentedAst,
      graph::Representation::kRawAst};
  const char* labels[3] = {"ParaGraph", "Augmented AST", "Raw AST"};

  CsvWriter csv("fig7_ablation_curves.csv",
                {"epoch", "representation", "rmse_ms"});
  std::vector<std::vector<double>> curves(3);
  for (int r = 0; r < 3; ++r) {
    const auto run =
        bench::train_platform(sim::corona_mi50(), config, representations[r]);
    for (const auto& record : run.result.history) {
      curves[r].push_back(record.val_rmse_us / 1e3);
      csv.add_row({std::to_string(record.epoch), labels[r],
                   format_double(record.val_rmse_us / 1e3, 8)});
    }
  }

  TextTable table({"Epoch", "ParaGraph", "Augmented AST", "Raw AST"});
  for (int epoch = 1; epoch <= config.epochs; ++epoch) {
    if (epoch != 1 && epoch % 10 != 0) continue;
    table.add_row({std::to_string(epoch), format_double(curves[0][epoch - 1], 5),
                   format_double(curves[1][epoch - 1], 5),
                   format_double(curves[2][epoch - 1], 5)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("final RMSE: ParaGraph %.0f ms, AugAST %.0f ms, RawAST %.0f ms "
              "(paper: 510 / 1177 / 2888)\n",
              curves[0].back(), curves[1].back(), curves[2].back());
  std::printf("wrote fig7_ablation_curves.csv\n");
  return 0;
}
