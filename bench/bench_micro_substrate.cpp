// Microbenchmarks for the substrates (google-benchmark): frontend parse,
// graph construction, graph encoding, RGAT forward/backward, matmul, the
// runtime simulator, and a full end-to-end sample encode — plus the
// workspace-substrate comparison (cold arena vs warmed-up arena vs batched
// engine) whose summary is emitted as BENCH_substrate.json so the perf
// trajectory stays machine-readable across PRs (`--json <path>` overrides
// the output location).
#include <benchmark/benchmark.h>

#include <chrono>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/encoding.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"
#include "sim/kernel_profile.hpp"
#include "sim/runtime_simulator.hpp"
#include "support/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/workspace.hpp"

namespace {

using namespace pg;

const std::string& mm_source() {
  static const std::string source = [] {
    const auto& suite = dataset::benchmark_suite();
    for (const auto& spec : suite)
      if (spec.kernel == "matmul")
        return dataset::instantiate_source(spec, dataset::Variant::kGpuCollapseMem,
                                           spec.default_sizes[3], 256, 256);
    return std::string{};
  }();
  return source;
}

const model::EncodedGraph& mm_encoded() {
  static const model::EncodedGraph enc = [] {
    const auto parsed = frontend::parse_source(mm_source());
    const auto g = graph::build_graph(parsed.root(), {});
    return model::encode_graph(g, g.max_child_weight());
  }();
  return enc;
}

void BM_ParseKernel(benchmark::State& state) {
  for (auto _ : state) {
    auto result = frontend::parse_source(mm_source());
    benchmark::DoNotOptimize(result.root());
  }
}
BENCHMARK(BM_ParseKernel);

void BM_BuildParaGraph(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  graph::BuildOptions options;
  options.parallel_workers = 65536;
  for (auto _ : state) {
    auto g = graph::build_graph(parsed.root(), options);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_BuildParaGraph);

void BM_EncodeGraph(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  graph::BuildOptions options;
  const auto g = graph::build_graph(parsed.root(), options);
  for (auto _ : state) {
    auto enc = model::encode_graph(g, g.max_child_weight());
    benchmark::DoNotOptimize(enc.features.size());
  }
}
BENCHMARK(BM_EncodeGraph);

void BM_ProfileKernel(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  for (auto _ : state) {
    auto profile = sim::profile_kernel(parsed.root());
    benchmark::DoNotOptimize(profile.flops);
  }
}
BENCHMARK(BM_ProfileKernel);

void BM_SimulateRuntime(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  const auto profile = sim::profile_kernel(parsed.root());
  const auto platform = sim::summit_v100();
  pg::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::measure_runtime_us(profile, platform, rng));
  }
}
BENCHMARK(BM_SimulateRuntime);

// The pre-refactor allocating behaviour: every predict pays for a cold
// arena (all slots malloc'd anew), the shape of the old per-call
// ForwardState.
void BM_ModelPredictColdWorkspace(benchmark::State& state) {
  const auto& enc = mm_encoded();
  model::ModelConfig config;
  config.hidden_dim = static_cast<std::size_t>(state.range(0));
  model::ParaGraphModel m(config);
  const std::array<float, 2> aux = {0.5f, 0.5f};
  for (auto _ : state) {
    tensor::Workspace ws;
    benchmark::DoNotOptimize(m.predict(enc, aux, ws));
  }
}
BENCHMARK(BM_ModelPredictColdWorkspace)->Arg(16)->Arg(24)->Arg(32);

// Steady state: the warmed-up arena is reused, so predict performs zero
// heap allocations.
void BM_ModelPredictWarmWorkspace(benchmark::State& state) {
  const auto& enc = mm_encoded();
  model::ModelConfig config;
  config.hidden_dim = static_cast<std::size_t>(state.range(0));
  model::ParaGraphModel m(config);
  const std::array<float, 2> aux = {0.5f, 0.5f};
  tensor::Workspace ws;
  (void)m.predict(enc, aux, ws);  // warm-up
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict(enc, aux, ws));
  }
}
BENCHMARK(BM_ModelPredictWarmWorkspace)->Arg(16)->Arg(24)->Arg(32);

void BM_EnginePredictBatch(benchmark::State& state) {
  const auto& enc = mm_encoded();
  model::ModelConfig config;
  config.hidden_dim = 24;
  model::ParaGraphModel m(config);
  model::InferenceEngine engine(m);
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<model::EncodedGraph> graphs(batch, enc);
  std::vector<std::array<float, 2>> aux(batch, {0.5f, 0.5f});
  std::vector<double> out(batch);
  engine.predict_batch(graphs, aux, out);  // warm the pool
  for (auto _ : state) {
    engine.predict_batch(graphs, aux, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EnginePredictBatch)->Arg(64)->Arg(256);

void BM_ModelTrainStep(benchmark::State& state) {
  const auto& enc = mm_encoded();
  model::ModelConfig config;
  config.hidden_dim = static_cast<std::size_t>(state.range(0));
  model::ParaGraphModel m(config);
  std::vector<tensor::Matrix> grads;
  for (auto* p : m.parameters()) grads.emplace_back(p->rows(), p->cols());
  const std::array<float, 2> aux = {0.5f, 0.5f};
  tensor::Workspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.accumulate_gradients(enc, aux, 0.5, 1.0, grads, ws));
  }
}
BENCHMARK(BM_ModelTrainStep)->Arg(16)->Arg(24)->Arg(32);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n), b(n, n);
  pg::Rng rng(3);
  tensor::uniform_init(a, rng, -1, 1);
  tensor::uniform_init(b, rng, -1, 1);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_DatasetPointEndToEnd(benchmark::State& state) {
  // Instantiate -> parse -> profile -> simulate -> graph -> encode: one
  // complete data point, the unit of dataset-generation cost.
  const auto& suite = dataset::benchmark_suite();
  const auto& spec = suite.front();
  const auto platform = sim::summit_v100();
  pg::Rng rng(7);
  for (auto _ : state) {
    dataset::RawDataPoint point;
    point.variant = "gpu_mem";
    point.num_teams = 128;
    point.num_threads = 128;
    point.source = dataset::instantiate_source(
        spec, dataset::Variant::kGpuMem, spec.default_sizes.front(), 128, 128);
    const auto parsed = frontend::parse_source(point.source);
    const auto profile = sim::profile_kernel(parsed.root());
    const double runtime = sim::measure_runtime_us(profile, platform, rng);
    const auto g =
        dataset::build_point_graph(point, graph::Representation::kParaGraph);
    const auto enc = model::encode_graph(g, g.max_child_weight());
    benchmark::DoNotOptimize(runtime + enc.features.sum());
  }
}
BENCHMARK(BM_DatasetPointEndToEnd);

/// Mean ns/call of `fn` over `iters` calls (after one untimed warm-up).
template <typename Fn>
double mean_ns(std::size_t iters, Fn&& fn) {
  fn();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         static_cast<double>(iters);
}

/// The workspace-substrate summary: cold-arena predict (the pre-refactor
/// allocating shape) vs warmed-up predict vs engine batch throughput.
void write_substrate_report(const std::string& path) {
  const auto& enc = mm_encoded();
  model::ModelConfig config;
  config.hidden_dim = 24;
  model::ParaGraphModel m(config);
  const std::array<float, 2> aux = {0.5f, 0.5f};
  constexpr std::size_t kIters = 2000;

  volatile double sink = 0.0;
  const double cold_ns = mean_ns(kIters, [&] {
    tensor::Workspace ws;
    sink = sink + m.predict(enc, aux, ws);
  });

  tensor::Workspace warm;
  const double warm_ns = mean_ns(kIters, [&] {
    sink = sink + m.predict(enc, aux, warm);
  });

  model::InferenceEngine engine(m);
  constexpr std::size_t kBatch = 256;
  std::vector<model::EncodedGraph> graphs(kBatch, enc);
  std::vector<std::array<float, 2>> batch_aux(kBatch, aux);
  std::vector<double> out(kBatch);
  const double batch_ns = mean_ns(32, [&] {
    engine.predict_batch(graphs, batch_aux, out);
  });

  bench::JsonReport report("micro_substrate");
  report.add("graph_nodes", enc.features.rows());
  report.add("hidden_dim", config.hidden_dim);
  report.add("predict_cold_workspace_ns", cold_ns);
  report.add("predict_warm_workspace_ns", warm_ns);
  report.add("warm_speedup_over_cold", cold_ns / warm_ns);
  report.add("engine_batch256_graphs_per_s", 1e9 * kBatch / batch_ns);
  report.add("warm_workspace_slots", warm.num_slots());
  report.add("warm_workspace_bytes", warm.bytes_reserved());
  report.write(path);
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own --json flag before google-benchmark sees the argv.
  std::string json_path = "BENCH_substrate.json";
  std::vector<char*> args;
  for (int a = 0; a < argc; ++a) {
    if (std::strcmp(argv[a], "--json") == 0 && a + 1 < argc) {
      json_path = argv[a + 1];
      ++a;
      continue;
    }
    args.push_back(argv[a]);
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_substrate_report(json_path);
  return 0;
}
