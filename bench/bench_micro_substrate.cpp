// Microbenchmarks for the substrates (google-benchmark): frontend parse,
// graph construction, graph encoding, RGAT forward/backward, matmul, the
// runtime simulator, and a full end-to-end sample encode.
#include <benchmark/benchmark.h>

#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/encoding.hpp"
#include "model/paragraph_model.hpp"
#include "sim/kernel_profile.hpp"
#include "sim/runtime_simulator.hpp"
#include "support/rng.hpp"
#include "tensor/init.hpp"

namespace {

using namespace pg;

const std::string& mm_source() {
  static const std::string source = [] {
    const auto& suite = dataset::benchmark_suite();
    for (const auto& spec : suite)
      if (spec.kernel == "matmul")
        return dataset::instantiate_source(spec, dataset::Variant::kGpuCollapseMem,
                                           spec.default_sizes[3], 256, 256);
    return std::string{};
  }();
  return source;
}

void BM_ParseKernel(benchmark::State& state) {
  for (auto _ : state) {
    auto result = frontend::parse_source(mm_source());
    benchmark::DoNotOptimize(result.root());
  }
}
BENCHMARK(BM_ParseKernel);

void BM_BuildParaGraph(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  graph::BuildOptions options;
  options.parallel_workers = 65536;
  for (auto _ : state) {
    auto g = graph::build_graph(parsed.root(), options);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_BuildParaGraph);

void BM_EncodeGraph(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  graph::BuildOptions options;
  const auto g = graph::build_graph(parsed.root(), options);
  for (auto _ : state) {
    auto enc = model::encode_graph(g, g.max_child_weight());
    benchmark::DoNotOptimize(enc.features.size());
  }
}
BENCHMARK(BM_EncodeGraph);

void BM_ProfileKernel(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  for (auto _ : state) {
    auto profile = sim::profile_kernel(parsed.root());
    benchmark::DoNotOptimize(profile.flops);
  }
}
BENCHMARK(BM_ProfileKernel);

void BM_SimulateRuntime(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  const auto profile = sim::profile_kernel(parsed.root());
  const auto platform = sim::summit_v100();
  pg::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::measure_runtime_us(profile, platform, rng));
  }
}
BENCHMARK(BM_SimulateRuntime);

void BM_ModelPredict(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  const auto g = graph::build_graph(parsed.root(), {});
  const auto enc = model::encode_graph(g, g.max_child_weight());
  model::ModelConfig config;
  config.hidden_dim = static_cast<std::size_t>(state.range(0));
  model::ParaGraphModel m(config);
  const std::array<float, 2> aux = {0.5f, 0.5f};
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.predict(enc, aux));
  }
}
BENCHMARK(BM_ModelPredict)->Arg(16)->Arg(24)->Arg(32);

void BM_ModelTrainStep(benchmark::State& state) {
  const auto parsed = frontend::parse_source(mm_source());
  const auto g = graph::build_graph(parsed.root(), {});
  const auto enc = model::encode_graph(g, g.max_child_weight());
  model::ModelConfig config;
  config.hidden_dim = static_cast<std::size_t>(state.range(0));
  model::ParaGraphModel m(config);
  std::vector<tensor::Matrix> grads;
  for (auto* p : m.parameters()) grads.emplace_back(p->rows(), p->cols());
  const std::array<float, 2> aux = {0.5f, 0.5f};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.accumulate_gradients(enc, aux, 0.5, 1.0, grads));
  }
}
BENCHMARK(BM_ModelTrainStep)->Arg(16)->Arg(24)->Arg(32);

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  tensor::Matrix a(n, n), b(n, n);
  pg::Rng rng(3);
  tensor::uniform_init(a, rng, -1, 1);
  tensor::uniform_init(b, rng, -1, 1);
  for (auto _ : state) {
    auto c = tensor::matmul(a, b);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(64)->Arg(128)->Arg(256);

void BM_DatasetPointEndToEnd(benchmark::State& state) {
  // Instantiate -> parse -> profile -> simulate -> graph -> encode: one
  // complete data point, the unit of dataset-generation cost.
  const auto& suite = dataset::benchmark_suite();
  const auto& spec = suite.front();
  const auto platform = sim::summit_v100();
  pg::Rng rng(7);
  for (auto _ : state) {
    dataset::RawDataPoint point;
    point.variant = "gpu_mem";
    point.num_teams = 128;
    point.num_threads = 128;
    point.source = dataset::instantiate_source(
        spec, dataset::Variant::kGpuMem, spec.default_sizes.front(), 128, 128);
    const auto parsed = frontend::parse_source(point.source);
    const auto profile = sim::profile_kernel(parsed.root());
    const double runtime = sim::measure_runtime_us(profile, platform, rng);
    const auto g =
        dataset::build_point_graph(point, graph::Representation::kParaGraph);
    const auto enc = model::encode_graph(g, g.max_child_weight());
    benchmark::DoNotOptimize(runtime + enc.features.sum());
  }
}
BENCHMARK(BM_DatasetPointEndToEnd);

}  // namespace

BENCHMARK_MAIN();
