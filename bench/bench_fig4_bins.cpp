// Figure 4: prediction relative error per 10-second runtime bin, for all
// four accelerators.
//
// Paper shape: relative error stays below ~10% (mostly below ~5%) in every
// populated bin — the model is stable across the whole runtime range, not
// just where the data mass is.
#include "bench_common.hpp"

int main() {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header("Figure 4: relative error per 10-second bin", config);

  constexpr std::size_t kNumBins = 11;
  TextTable table({"Bins (seconds)", "V100", "MI50", "POWER9", "EPYC"});
  CsvWriter csv("fig4_bins.csv",
                {"bin", "platform", "count", "relative_error"});

  // Order the columns like the paper's legend: V100, MI50, POWER9, EPYC.
  const sim::Platform platforms[4] = {sim::summit_v100(), sim::corona_mi50(),
                                      sim::summit_power9(),
                                      sim::corona_epyc7401()};

  std::array<std::array<std::string, 4>, kNumBins> cells;
  for (auto& row : cells) row.fill("-");

  for (int p = 0; p < 4; ++p) {
    const auto run = bench::train_platform(platforms[p], config);
    const auto bins = model::binned_relative_error(
        run.set.validation, run.result.val_predictions_us, kNumBins);
    for (const auto& bin : bins) {
      cells[bin.bin][p] = format_double(bin.relative_error, 3);
      csv.add_row({model::bin_label(bin.bin), platforms[p].name,
                   std::to_string(bin.count),
                   format_double(bin.relative_error, 8)});
    }
  }

  for (std::size_t bin = 0; bin < kNumBins; ++bin) {
    bool populated = false;
    for (const auto& cell : cells[bin]) populated |= (cell != "-");
    if (!populated) continue;
    table.add_row({model::bin_label(bin), cells[bin][0], cells[bin][1],
                   cells[bin][2], cells[bin][3]});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("paper: every populated bin stays below ~0.10 relative error\n");
  std::printf("wrote fig4_bins.csv\n");
  return 0;
}
