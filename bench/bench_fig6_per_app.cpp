// Figure 6: average relative error per application, for all four
// accelerators.
//
// Paper shape: low error (mostly < 0.02, with isolated outliers ~0.04)
// for every application — the model is not biased toward any one app.
#include "bench_common.hpp"

int main() {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header("Figure 6: error rate per application", config);

  const sim::Platform platforms[4] = {sim::summit_v100(), sim::corona_mi50(),
                                      sim::summit_power9(),
                                      sim::corona_epyc7401()};

  CsvWriter csv("fig6_per_app.csv", {"application", "platform", "count",
                                     "error_rate"});
  std::map<std::string, std::array<std::string, 4>> rows;

  for (int p = 0; p < 4; ++p) {
    const auto run = bench::train_platform(platforms[p], config);
    const auto apps = model::per_app_error(run.set.validation,
                                           run.result.val_predictions_us);
    for (const auto& app : apps) {
      auto it = rows.find(app.app_name);
      if (it == rows.end()) {
        std::array<std::string, 4> empty;
        empty.fill("N/A");
        it = rows.emplace(app.app_name, empty).first;
      }
      it->second[p] = format_double(app.error_rate, 3);
      csv.add_row({app.app_name, platforms[p].name, std::to_string(app.count),
                   format_double(app.error_rate, 8)});
    }
  }

  TextTable table({"Application", "V100", "MI50", "Power9", "EPYC"});
  for (const auto& [app, cells] : rows)
    table.add_row({app, cells[0], cells[1], cells[2], cells[3]});
  std::printf("%s\n", table.render().c_str());
  std::printf("paper: error rate < ~0.04 for every application on every "
              "accelerator (no per-app bias)\n");
  std::printf("wrote fig6_per_app.csv\n");
  return 0;
}
