// Corpus I/O bench (docs/FORMAT.md): generates a synthetic million-sample
// .pgds corpus and measures the format-v2 index against the sequential v1
// path — cold-open time (v2 footer+index walk vs v1 full offset scan),
// random-access decode latency, reindex throughput, and epoch throughput
// (a full shuffled decode pass through the mmap-backed DatasetView, the
// out-of-core trainer's access pattern) versus the in-RAM loader's
// sequential streaming baseline. Every timed number is the median of 3
// runs; the summary lands in BENCH_corpus_io.json.
//
// Modes:
//   --emit-fixture DIR   write the synthetic corpus pair (corpus_v1.pgds +
//                        corpus_v2.pgds, the v2 produced by reindexing the
//                        v1 bytes) into DIR and exit.
//   --fixture DIR        measure a previously emitted fixture.
//   default              emit into a temp dir, measure, delete.
//
// Knobs: --samples N (default 10^6; smoke scale drops to 20000),
// --json PATH (default BENCH_corpus_io.json next to the binary).
#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "io/dataset_view.hpp"
#include "io/pgraph_io.hpp"
#include "model/encoding.hpp"
#include "support/rng.hpp"

namespace {

using namespace pg;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

const char* option_value(int argc, char** argv, const char* name) {
  for (int a = 1; a + 1 < argc; ++a)
    if (std::strcmp(argv[a], name) == 0) return argv[a + 1];
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* name) {
  for (int a = 1; a < argc; ++a)
    if (std::strcmp(argv[a], name) == 0) return true;
  return false;
}

double median3(double a, double b, double c) {
  double v[3] = {a, b, c};
  std::sort(v, v + 3);
  return v[1];
}

/// Runs `fn` three times and returns the median of its timings (seconds).
template <typename Fn>
double median3_of(Fn&& fn) {
  return median3(fn(), fn(), fn());
}

/// Writes the synthetic corpus: `samples` records cycling through four tiny
/// kernel graphs, runtimes varied per record so the payload is not
/// literally constant. v1 is written directly; v2 is produced by
/// reindexing the v1 bytes (also timing the upgrade path).
struct FixtureTimings {
  double write_s = 0.0;
  double reindex_s = 0.0;
};

FixtureTimings emit_fixture(const std::filesystem::path& dir,
                            std::size_t samples) {
  std::filesystem::create_directories(dir);

  std::vector<model::TrainingSample> pool;
  for (int bound : {3, 9, 24, 80}) {
    std::string src = "void f(void) { for (int i = 0; i < " +
                      std::to_string(bound) +
                      "; i++) { double x = 1.0; } }";
    auto parsed = frontend::parse_source(src);
    graph::BuildOptions options;
    options.representation = graph::Representation::kParaGraph;
    model::TrainingSample s;
    s.graph =
        model::encode_graph(graph::build_graph(parsed.root(), options), 80.0);
    s.aux = {0.5f, 0.5f};
    s.app_id = bound;
    s.app_name = "synthetic";
    s.variant = "cpu";
    pool.push_back(std::move(s));
  }

  io::DatasetMeta meta;
  meta.platform = "bench";
  meta.representation = "ParaGraph";
  meta.seed = 1;
  meta.child_weight_scale = 80.0;
  meta.target_min = 0.0;
  meta.target_max = 1e6;
  meta.teams_min = 1.0;
  meta.teams_max = 1024.0;
  meta.threads_min = 1.0;
  meta.threads_max = 1024.0;

  FixtureTimings t;
  const auto v1_path = dir / "corpus_v1.pgds";
  {
    const auto start = Clock::now();
    std::ofstream os(v1_path, std::ios::binary);
    io::DatasetWriter writer(os, meta, 1);
    pg::Rng rng(11);
    for (std::size_t i = 0; i < samples; ++i) {
      model::TrainingSample& s = pool[i % pool.size()];
      s.runtime_us = 1.0 + static_cast<double>(rng.index(1u << 20));
      s.target_scaled = s.runtime_us / 1e6;
      writer.append(s, i % 10 ? io::Split::kTrain : io::Split::kValidation);
    }
    writer.finish();
    t.write_s = seconds_since(start);
  }
  {
    const auto start = Clock::now();
    io::reindex_dataset(v1_path.string(), (dir / "corpus_v2.pgds").string());
    t.reindex_s = seconds_since(start);
  }
  return t;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchConfig config;
  std::size_t samples = config.scale == RunScale::kSmoke ? 20'000 : 1'000'000;
  if (const char* v = option_value(argc, argv, "--samples"))
    samples = static_cast<std::size_t>(std::stoull(v));

  if (const char* dir = option_value(argc, argv, "--emit-fixture")) {
    const FixtureTimings t = emit_fixture(dir, samples);
    std::printf("fixture: %zu samples -> %s (write %.2fs, reindex %.2fs)\n",
                samples, dir, t.write_s, t.reindex_s);
    return 0;
  }

  std::filesystem::path dir;
  bool owned = false;
  FixtureTimings timings;
  if (const char* fixture = option_value(argc, argv, "--fixture")) {
    dir = fixture;
  } else {
    dir = std::filesystem::temp_directory_path() / "pg_bench_corpus_io";
    std::filesystem::remove_all(dir);
    owned = !has_flag(argc, argv, "--keep");
    std::printf("generating %zu-sample corpus under %s ...\n", samples,
                dir.string().c_str());
    timings = emit_fixture(dir, samples);
  }
  const std::string v1_path = (dir / "corpus_v1.pgds").string();
  const std::string v2_path = (dir / "corpus_v2.pgds").string();
  const auto v1_bytes = std::filesystem::file_size(v1_path);
  const auto v2_bytes = std::filesystem::file_size(v2_path);

  // --- cold open: v2 footer+index walk vs the v1 full offset scan.
  const double open_v2_us = median3_of([&] {
    const auto start = Clock::now();
    io::DatasetView view(v2_path);
    (void)view.size();
    return seconds_since(start) * 1e6;
  });
  const double open_v1_scan_us = median3_of([&] {
    const auto start = Clock::now();
    io::DatasetView view(v1_path);
    (void)view.size();
    return seconds_since(start) * 1e6;
  });

  io::DatasetView view(v2_path);
  const std::size_t n = view.size();
  model::TrainingSample sample;

  // --- random-access decode latency over 10k seeded indices.
  constexpr std::size_t kProbes = 10'000;
  const double random_decode_us = median3_of([&] {
    std::mt19937_64 rng(5);
    const auto start = Clock::now();
    for (std::size_t k = 0; k < kProbes; ++k)
      view.decode(rng() % n, sample);
    return seconds_since(start) * 1e6 / kProbes;
  });

  // --- epoch throughput: a full shuffled decode pass through the mmap view
  // (what the out-of-core trainer's window fills do)...
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  const double epoch_s = median3_of([&] {
    pg::Rng rng(17);
    rng.shuffle(order);
    const auto start = Clock::now();
    for (const std::size_t i : order) view.decode(i, sample);
    return seconds_since(start);
  });

  // ... versus the in-RAM loader's sequential streaming baseline (the v1
  // DatasetReader pass read_sample_set does before training can start).
  const double sequential_s = median3_of([&] {
    std::ifstream is(v1_path, std::ios::binary);
    const auto start = Clock::now();
    io::DatasetReader reader(is);
    io::Split split = io::Split::kTrain;
    while (reader.next(sample, split)) {
    }
    return seconds_since(start);
  });

  const double epoch_rate = static_cast<double>(n) / epoch_s;
  const double sequential_rate = static_cast<double>(n) / sequential_s;

  bench::JsonReport report("corpus_io");
  report.add("scale", to_string(config.scale));
  report.add("samples", n);
  report.add("file_bytes_v1", static_cast<std::size_t>(v1_bytes));
  report.add("file_bytes_v2", static_cast<std::size_t>(v2_bytes));
  if (timings.write_s > 0.0) {
    report.add("write_s", timings.write_s);
    report.add("reindex_s", timings.reindex_s);
  }
  report.add("cold_open_v2_us", open_v2_us);
  report.add("cold_open_v1_scan_us", open_v1_scan_us);
  report.add("random_decode_us", random_decode_us);
  report.add("epoch_shuffled_samples_per_s", epoch_rate);
  report.add("sequential_baseline_samples_per_s", sequential_rate);
  report.add("epoch_vs_sequential", epoch_rate / sequential_rate);

  std::printf(
      "%zu samples (v1 %.1f MiB, v2 %.1f MiB)\n"
      "cold open: v2 %.1f us, v1 scan %.1f us\n"
      "random decode: %.3f us/record\n"
      "epoch (shuffled mmap): %.0f samples/s; sequential baseline: %.0f "
      "samples/s (%.2fx)\n",
      n, v1_bytes / 1048576.0, v2_bytes / 1048576.0, open_v2_us,
      open_v1_scan_us, random_decode_us, epoch_rate, sequential_rate,
      epoch_rate / sequential_rate);

  std::string json = bench::json_path_from_args(argc, argv);
  if (json.empty()) json = "BENCH_corpus_io.json";
  report.write(json);

  if (owned) std::filesystem::remove_all(dir);
  return 0;
}
