// Per-kernel microbenchmarks for the SIMD dispatch layer: every dispatched
// kernel timed under PARAGRAPH_SIMD=scalar and under the best level this
// machine supports (median of 3 timed repetitions each), plus the
// substrate-level numbers (warm single-graph predict, engine batch
// throughput) under both levels. Emits BENCH_kernels.json (`--json <path>`
// overrides) so the per-kernel scalar-vs-SIMD ratios are recorded across
// PRs, not asserted. Plain main(): no google-benchmark dependency.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "dataset/generator.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/encoding.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"
#include "support/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/matrix.hpp"
#include "tensor/simd.hpp"
#include "tensor/workspace.hpp"

namespace {

using namespace pg;
using tensor::Matrix;
using tensor::simd::KernelTable;

/// Mean ns/call over `iters` calls after one untimed warm-up.
template <typename Fn>
double mean_ns(std::size_t iters, Fn&& fn) {
  fn();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) fn();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start)
                 .count()) /
         static_cast<double>(iters);
}

/// Median of 3 repetitions of mean_ns.
template <typename Fn>
double median_ns(std::size_t iters, Fn&& fn) {
  std::array<double, 3> runs = {mean_ns(iters, fn), mean_ns(iters, fn),
                                mean_ns(iters, fn)};
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

Matrix random_matrix(std::size_t rows, std::size_t cols, pg::Rng& rng) {
  Matrix m(rows, cols);
  tensor::uniform_init(m, rng, -1.0f, 1.0f);
  return m;
}

/// Adds <name>_ns_scalar / _ns_simd / _speedup (and optional GFLOP/s from
/// `flops` per call) for one kernel invocation timed under both tables.
template <typename Fn>
void report_kernel(bench::JsonReport& report, const std::string& name,
                   std::size_t iters, double flops, Fn&& run) {
  const KernelTable& scalar =
      tensor::simd::kernels_for(tensor::simd::SimdLevel::kScalar);
  const KernelTable& best =
      tensor::simd::kernels_for(tensor::simd::max_supported_level());
  const double scalar_ns = median_ns(iters, [&] { run(scalar); });
  const double simd_ns = median_ns(iters, [&] { run(best); });
  report.add(name + "_ns_scalar", scalar_ns);
  report.add(name + "_ns_simd", simd_ns);
  report.add(name + "_speedup", scalar_ns / simd_ns);
  if (flops > 0.0) {
    report.add(name + "_gflops_scalar", flops / scalar_ns);
    report.add(name + "_gflops_simd", flops / simd_ns);
  }
}

const model::EncodedGraph& mm_encoded() {
  static const model::EncodedGraph enc = [] {
    const auto& suite = dataset::benchmark_suite();
    std::string source;
    for (const auto& spec : suite)
      if (spec.kernel == "matmul")
        source = dataset::instantiate_source(
            spec, dataset::Variant::kGpuCollapseMem, spec.default_sizes[3],
            256, 256);
    const auto parsed = frontend::parse_source(source);
    const auto g = graph::build_graph(parsed.root(), {});
    return model::encode_graph(g, g.max_child_weight());
  }();
  return enc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_kernels.json";
  for (int a = 1; a + 1 < argc; ++a)
    if (std::strcmp(argv[a], "--json") == 0) json_path = argv[a + 1];

  pg::Rng rng(42);
  bench::JsonReport report("micro_kernels");
  report.add("simd_max_level",
             tensor::simd::level_name(tensor::simd::max_supported_level()));

  // matmul at the model's conv shape (99 nodes, feature 32 -> hidden 24)
  // and at a square generic-width shape.
  {
    const Matrix a = random_matrix(99, 32, rng);
    const Matrix b = random_matrix(32, 24, rng);
    Matrix c(99, 24);
    report_kernel(report, "matmul_99x32x24", 20000, 2.0 * 99 * 32 * 24,
                  [&](const KernelTable& k) {
                    k.matmul(a.data().data(), b.data().data(),
                             c.data().data(), 99, 32, 24, false);
                  });
  }
  {
    const Matrix a = random_matrix(192, 192, rng);
    const Matrix b = random_matrix(192, 192, rng);
    Matrix c(192, 192);
    report_kernel(report, "matmul_192cubed", 300, 2.0 * 192 * 192 * 192,
                  [&](const KernelTable& k) {
                    k.matmul(a.data().data(), b.data().data(),
                             c.data().data(), 192, 192, 192, false);
                  });
  }
  {
    const Matrix a = random_matrix(99, 24, rng);
    const Matrix b = random_matrix(99, 24, rng);
    Matrix c(24, 24);
    report_kernel(report, "matmul_t_a_acc_24", 20000, 2.0 * 99 * 24 * 24,
                  [&](const KernelTable& k) {
                    k.matmul_t_a_acc(a.data().data(), b.data().data(),
                                     c.data().data(), 24, 99, 24);
                  });
  }
  {
    // 64 segments of 99 rows: the fused-batch read-out shape.
    const Matrix a = random_matrix(64 * 99, 24, rng);
    Matrix out(64, 24);
    std::vector<std::uint32_t> offsets(65);
    for (std::size_t s = 0; s < offsets.size(); ++s)
      offsets[s] = static_cast<std::uint32_t>(99 * s);
    report_kernel(report, "segment_row_mean_64x99x24", 5000,
                  static_cast<double>(64 * 99 * 24),
                  [&](const KernelTable& k) {
                    k.segment_row_mean(out.data().data(), a.data().data(),
                                       offsets.data(), 64, 24);
                  });
  }
  {
    const Matrix bias = random_matrix(1, 24, rng);
    Matrix y = random_matrix(99, 24, rng);
    report_kernel(report, "add_bias_rows_99x24", 50000,
                  static_cast<double>(99 * 24), [&](const KernelTable& k) {
                    k.add_bias_rows(y.data().data(), bias.data().data(), 99,
                                    24);
                  });
  }
  {
    const Matrix x = random_matrix(1, 99 * 24, rng);
    Matrix y(1, 99 * 24);
    report_kernel(report, "relu_2376", 50000, 0.0, [&](const KernelTable& k) {
      k.relu(y.data().data(), x.data().data(), 99 * 24);
    });
    report_kernel(report, "leaky_relu_grad_2376", 50000, 0.0,
                  [&](const KernelTable& k) {
                    k.leaky_relu_grad(y.data().data(), x.data().data(), 0.2f,
                                      99 * 24);
                  });
  }
  {
    const std::size_t n = 24 * 24;
    Matrix theta = random_matrix(1, n, rng);
    const Matrix g = random_matrix(1, n, rng);
    Matrix m(1, n), v(1, n);
    tensor::simd::AdamStep step;
    step.bias1 = 0.1;
    step.bias2 = 0.001;
    report_kernel(report, "adam_update_576", 20000, 0.0,
                  [&](const KernelTable& k) {
                    k.adam_update(theta.data().data(), g.data().data(),
                                  m.data().data(), v.data().data(), n, step);
                  });
  }

  // Substrate numbers under both levels: warm single-graph predict and the
  // 256-graph engine batch (the BENCH_substrate.json methodology).
  {
    const auto& enc = mm_encoded();
    model::ModelConfig config;
    config.hidden_dim = 24;
    model::ParaGraphModel m(config);
    const std::array<float, 2> aux = {0.5f, 0.5f};
    constexpr std::size_t kBatch = 256;
    std::vector<model::EncodedGraph> graphs(kBatch, enc);
    std::vector<std::array<float, 2>> batch_aux(kBatch, aux);
    std::vector<double> out(kBatch);
    volatile double sink = 0.0;

    const auto saved = tensor::simd::active_level();
    for (const auto& [level, suffix] :
         {std::pair{tensor::simd::SimdLevel::kScalar, "_scalar"},
          std::pair{tensor::simd::max_supported_level(), "_simd"}}) {
      tensor::simd::set_active_level(level);
      tensor::Workspace warm;
      report.add(std::string("predict_warm_ns") + suffix,
                 median_ns(2000, [&] { sink = sink + m.predict(enc, aux, warm); }));
      model::InferenceEngine engine(m);
      const double batch_ns =
          median_ns(32, [&] { engine.predict_batch(graphs, batch_aux, out); });
      report.add(std::string("engine_batch256_graphs_per_s") + suffix,
                 1e9 * kBatch / batch_ns);
    }
    tensor::simd::set_active_level(saved);
  }

  report.write(json_path);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
