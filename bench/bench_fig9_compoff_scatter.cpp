// Figure 9: predicted vs actual runtime on the NVIDIA V100 for ParaGraph
// and COMPOFF (the paper's scatter plot; here: the underlying pairs as CSV
// plus the correlation summary).
//
// Paper shape: both correlate strongly with the actual runtime, but
// ParaGraph's correlation is visibly tighter.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header(
      "Figure 9: predicted vs actual runtime, ParaGraph & COMPOFF (V100)",
      config);

  const auto run = bench::train_platform(sim::summit_v100(), config);
  const auto actual = bench::validation_actuals(run.set);
  const auto& para_pred = run.result.val_predictions_us;

  compoff::CompoffConfig compoff_config;
  const auto compoff_eval = compoff::train_and_evaluate(run.points, compoff_config);

  CsvWriter csv("fig9_compoff_scatter.csv",
                {"model", "actual_us", "predicted_us"});
  for (std::size_t i = 0; i < actual.size(); ++i)
    csv.add_row({"ParaGraph", format_double(actual[i], 8),
                 format_double(para_pred[i], 8)});
  for (std::size_t i = 0; i < compoff_eval.actual_us.size(); ++i)
    csv.add_row({"COMPOFF", format_double(compoff_eval.actual_us[i], 8),
                 format_double(compoff_eval.predicted_us[i], 8)});

  const double para_corr = stats::pearson(actual, para_pred);
  const double compoff_corr =
      stats::pearson(compoff_eval.actual_us, compoff_eval.predicted_us);

  TextTable table({"Model", "Pearson r (pred vs actual)", "Norm-RMSE"});
  table.add_row({"ParaGraph", format_double(para_corr, 6),
                 format_sci(run.result.final_norm_rmse, 2)});
  table.add_row({"COMPOFF", format_double(compoff_corr, 6),
                 format_sci(compoff_eval.norm_rmse, 2)});
  std::printf("%s\n", table.render().c_str());
  std::printf("paper: both strongly correlated; ParaGraph much stronger\n");
  std::printf("wrote fig9_compoff_scatter.csv (%zu + %zu points)\n",
              actual.size(), compoff_eval.actual_us.size());

  if (const std::string json = bench::json_path_from_args(argc, argv);
      !json.empty()) {
    bench::JsonReport report("fig9_compoff_scatter");
    report.add("scale", to_string(config.scale));
    report.add("paragraph_pearson_r", para_corr);
    report.add("compoff_pearson_r", compoff_corr);
    report.add("paragraph_norm_rmse", run.result.final_norm_rmse);
    report.add("compoff_norm_rmse", compoff_eval.norm_rmse);
    report.write(json);
  }
  return para_corr >= compoff_corr ? 0 : 1;
}
