// Table IV: ablation — RMSE with Raw AST, Augmented AST (edges, no
// weights), and full ParaGraph (edges + weights), per accelerator.
//
// Paper values (RMSE, ms):
//   POWER9: 27593 / 26860 / 4325      V100: 2114 / 786 / 280
//   EPYC:   11911 /  9633 /  968      MI50: 2888 / 1177 / 510
// Shape to reproduce: RawAST >> AugmentedAST > ParaGraph on every
// accelerator; the big step comes from the edge *weights* (loop extents
// reach the model only through them), the smaller step from the added
// relations.
#include "bench_common.hpp"

int main() {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header("Table IV: representation ablation (RMSE, ms)", config);

  const char* paper[4][3] = {{"27593", "26860", "4325"},
                             {"2114", "786", "280"},
                             {"11911", "9633", "968"},
                             {"2888", "1177", "510"}};

  TextTable table({"Platform", "Raw AST", "Aug AST", "ParaGraph",
                   "paper Raw", "paper Aug", "paper ParaGraph"});
  CsvWriter csv("table4_ablation.csv",
                {"platform", "representation", "rmse_ms", "norm_rmse"});

  const graph::Representation representations[3] = {
      graph::Representation::kRawAst, graph::Representation::kAugmentedAst,
      graph::Representation::kParaGraph};

  int row = 0;
  for (const auto& platform : sim::all_platforms()) {
    std::vector<std::string> cells = {platform.name};
    for (const auto representation : representations) {
      const auto run = bench::train_platform(platform, config, representation);
      const double rmse_ms = run.result.final_rmse_us / 1e3;
      cells.push_back(format_double(rmse_ms, 5));
      csv.add_row({platform.name,
                   std::string(graph::representation_name(representation)),
                   format_double(rmse_ms, 8),
                   format_double(run.result.final_norm_rmse, 8)});
    }
    cells.push_back(paper[row][0]);
    cells.push_back(paper[row][1]);
    cells.push_back(paper[row][2]);
    table.add_row(cells);
    ++row;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("wrote table4_ablation.csv\n");
  return 0;
}
