// bench_ann: the embedding-space ANN index + serve-time semantic cache
// measurement (BENCH_ann.json).
//
// Part 1 — index quality/latency. A real-model embedding corpus is built by
// embedding the simulated suite through the InferenceEngine and expanding
// it to the target size with seeded Gaussian jitter (structure preserved,
// population scaled). For each corpus size N: nn-descent build time, then
// recall@10 of graph search against the brute-force exact reference over
// held-out jittered queries, and query p50 latency.
//
// Part 2 — serve cache. An in-process Server is loaded through the shared
// seeded RequestPicker under uniform and zipf-skewed traffic, cache off vs
// cache on (eps = 0: exact-match hits only, replies byte-identical), and
// the JSON records hit-rates and the graphs/s speedup.
//
// Modes:
//   --emit-fixture DIR  write DIR/ann.pgann (a small real-embedding index,
//                       round-trip verified) and run the smoke-sized
//                       measurement — the CI smoke path.
//   --json PATH         JSON report path (default BENCH_ann.json).
//
// Scale: PARAGRAPH_SCALE smoke keeps N small for CI; default measures the
// >= 50k-embedding corpus the acceptance gate asks for.
#include <chrono>
#include <cstring>
#include <memory>
#include <optional>
#include <thread>

#include "ann/ann_index.hpp"
#include "bench_common.hpp"
#include "model/checkpoint.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace pg;
using Clock = std::chrono::steady_clock;

const char* option_value(int argc, char** argv, const char* name) {
  for (int a = 1; a + 1 < argc; ++a)
    if (std::strcmp(argv[a], name) == 0) return argv[a + 1];
  return nullptr;
}

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Fixed-init model + simulated suite corpus (the serve-fixture recipe):
/// deterministic, no training needed — embeddings are real forward passes.
struct AnnFixture {
  std::shared_ptr<model::ParaGraphModel> model;
  model::CheckpointScalers scalers;
  model::SampleSet set;
  tensor::Matrix base;  // [train-set size x hidden] real embeddings
};

AnnFixture build_fixture(const bench::BenchConfig& config) {
  AnnFixture fx;
  const sim::Platform platform = sim::all_platforms().front();

  dataset::GenerationConfig gen;
  gen.scale = config.scale;
  gen.seed = config.seed;
  const auto points = dataset::generate_dataset(platform, gen);

  dataset::SampleBuildConfig build;
  dataset::CorpusKey key;
  key.platform_name = platform.name;
  key.scale = config.scale;
  key.representation = build.representation;
  key.seed = config.seed;
  key.log_target = build.log_target;
  fx.set = dataset::load_or_build_sample_set(
      env_string("PARAGRAPH_CORPUS_DIR", ""), key, points, build);

  model::ModelConfig model_config;
  model_config.hidden_dim = config.hidden_dim;
  fx.model = std::make_shared<model::ParaGraphModel>(model_config);
  fx.scalers = model::CheckpointScalers::from_sample_set(fx.set);

  std::vector<model::EncodedGraph> graphs;
  graphs.reserve(fx.set.train.size());
  for (const model::TrainingSample& s : fx.set.train)
    graphs.push_back(s.graph);
  model::InferenceEngine engine(*fx.model);
  engine.embed_batch(graphs, fx.base);
  return fx;
}

/// Expands the base embeddings to `n` rows: row i interpolates between
/// base[i % B] and a seeded-random second base row, plus Gaussian jitter.
/// Interpolation keeps the population connected (pure per-row jitter would
/// make B disjoint near-duplicate clusters — a degenerate ANN corpus);
/// real embedding geometry, arbitrary size, fully deterministic.
tensor::Matrix jittered_corpus(const tensor::Matrix& base, std::size_t n,
                               std::uint64_t seed, float sigma) {
  tensor::Matrix out(n, base.cols());
  Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const auto src = base.row_span(i % base.rows());
    const auto mix = base.row_span(rng.index(base.rows()));
    const float t = static_cast<float>(rng.uniform());
    const auto dst = out.row_span(i);
    for (std::size_t j = 0; j < src.size(); ++j)
      dst[j] = src[j] + t * (mix[j] - src[j]) +
               sigma * static_cast<float>(rng.normal());
  }
  return out;
}

struct IndexPoint {
  std::size_t n = 0;
  double build_s = 0.0;
  double recall_at_10 = 0.0;
  double query_p50_us = 0.0;
};

IndexPoint measure_index(const tensor::Matrix& base, std::size_t n,
                         std::uint64_t seed) {
  IndexPoint point;
  point.n = n;
  const tensor::Matrix corpus = jittered_corpus(base, n, seed, 0.05f);
  const tensor::Matrix queries =
      jittered_corpus(base, std::min<std::size_t>(100, n), seed ^ 0xabcdefULL,
                      0.05f);

  const auto t0 = Clock::now();
  const ann::AnnIndex index =
      ann::AnnIndex::build(corpus, ann::AnnConfig{}, /*fingerprint=*/0);
  point.build_s = seconds_since(t0);

  const auto exact = index.brute_force_batch(queries, 10);
  std::vector<double> latencies_us;
  latencies_us.reserve(queries.rows());
  std::size_t found = 0;
  std::size_t wanted = 0;
  for (std::size_t q = 0; q < queries.rows(); ++q) {
    const auto t1 = Clock::now();
    const auto approx = index.search(queries.row_span(q), 10);
    latencies_us.push_back(seconds_since(t1) * 1e6);
    for (const ann::Neighbor& e : exact[q]) {
      ++wanted;
      for (const ann::Neighbor& a : approx)
        if (a.index == e.index) {
          ++found;
          break;
        }
    }
  }
  point.recall_at_10 =
      wanted > 0 ? static_cast<double>(found) / static_cast<double>(wanted)
                 : 0.0;
  std::sort(latencies_us.begin(), latencies_us.end());
  point.query_p50_us =
      latencies_us.empty() ? 0.0 : latencies_us[latencies_us.size() / 2];
  return point;
}

struct LoadPoint {
  double graphs_per_s = 0.0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};

/// Hammers an in-process server (cache per `cache_on`) with `clients`
/// threads drawing from the shared seeded picker at skew `zipf_s`.
LoadPoint measure_serve(const AnnFixture& fx,
                        const std::vector<std::string>& requests, bool cache_on,
                        double zipf_s, std::uint64_t seed, double seconds) {
  serve::ServeConfig config;
  config.workers = 2;
  config.cache = cache_on;
  config.cache_eps = 0.0;  // exact-match: replies stay byte-identical
  serve::Server server(*fx.model, fx.scalers, config);
  server.start();

  constexpr std::size_t kClients = 4;
  const auto until =
      Clock::now() + std::chrono::microseconds(
                         static_cast<std::int64_t>(seconds * 1e6));
  std::vector<std::uint64_t> ok(kClients, 0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  const auto t0 = Clock::now();
  for (std::size_t c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      bench::RequestPicker picker(requests.size(), zipf_s,
                                  seed + 0x9e37 * (c + 1));
      try {
        serve::Client client(server.port(), 30000);
        while (Clock::now() < until) {
          const auto response =
              client.predict_until_served(requests[picker.next()]);
          if (response.has_value() &&
              response->kind == serve::FrameKind::kPredictReply)
            ++ok[c];
        }
      } catch (const serve::SocketError&) {
      }
    });
  for (std::thread& t : threads) t.join();
  const double elapsed = seconds_since(t0);
  server.stop();

  LoadPoint point;
  std::uint64_t total = 0;
  for (const std::uint64_t v : ok) total += v;
  point.graphs_per_s =
      elapsed > 0.0 ? static_cast<double>(total) / elapsed : 0.0;
  const serve::ServerStats stats = server.stats();
  point.hits = stats.cache_hits;
  point.misses = stats.cache_misses;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config;
  bench::print_header("ann index + semantic cache", config);

  const char* fixture_dir = option_value(argc, argv, "--emit-fixture");
  const bool smoke = config.scale == RunScale::kSmoke || fixture_dir != nullptr;

  const AnnFixture fx = build_fixture(config);
  std::printf("base embeddings: %zu x %zu (train split, fixed-init model)\n",
              fx.base.rows(), fx.base.cols());

  if (fixture_dir != nullptr) {
    // Small real-embedding index, saved and round-trip verified: the CI
    // smoke that keeps the .pgann path honest on every push.
    const ann::AnnIndex index =
        ann::AnnIndex::build(fx.base, ann::AnnConfig{},
                             model::checkpoint_fingerprint(*fx.model));
    const std::string path = std::string(fixture_dir) + "/ann.pgann";
    index.save_file(path);
    const ann::AnnIndex loaded = ann::AnnIndex::load_file(
        path, model::checkpoint_fingerprint(*fx.model));
    if (loaded.size() != index.size() || loaded.k() != index.k()) {
      std::fprintf(stderr, "FAIL: %s did not round-trip\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu embeddings, k %zu)\n", path.c_str(),
                index.size(), index.k());
  }

  // Part 1: build/recall/latency vs corpus size.
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{512, 2048}
            : std::vector<std::size_t>{10'000, 50'000};
  std::vector<IndexPoint> points;
  for (const std::size_t n : sizes) {
    points.push_back(measure_index(fx.base, n, config.seed));
    const IndexPoint& p = points.back();
    std::printf("N=%-6zu build %.2fs  recall@10 %.3f  query p50 %.1f us\n",
                p.n, p.build_s, p.recall_at_10, p.query_p50_us);
  }

  // What a cache hit actually saves: predict = embed + head, so the
  // head's share of the forward pass bounds the best-case hit speedup.
  double head_fraction = 0.0;
  {
    std::vector<model::EncodedGraph> graphs;
    std::vector<std::array<float, 2>> aux;
    for (const model::TrainingSample& s : fx.set.train) {
      graphs.push_back(s.graph);
      aux.push_back(s.aux);
    }
    model::InferenceEngine engine(*fx.model);
    std::vector<double> out(graphs.size());
    tensor::Matrix pooled;
    const int reps = smoke ? 20 : 50;
    engine.predict_batch(graphs, aux, out);  // warm the thread state
    const auto tp = Clock::now();
    for (int r = 0; r < reps; ++r) engine.predict_batch(graphs, aux, out);
    const double predict_s = seconds_since(tp);
    const auto te = Clock::now();
    for (int r = 0; r < reps; ++r) engine.embed_batch(graphs, pooled);
    const double embed_s = seconds_since(te);
    head_fraction =
        predict_s > 0.0 ? std::max(0.0, 1.0 - embed_s / predict_s) : 0.0;
    std::printf("forward split: embed %.0f%% / head %.0f%% of predict\n",
                100.0 * (1.0 - head_fraction), 100.0 * head_fraction);
  }

  // Part 2: serve cache under uniform vs zipf traffic, cache off vs on.
  std::vector<std::string> requests;
  const std::size_t pool = std::min<std::size_t>(64, fx.set.train.size());
  requests.reserve(pool);
  for (std::size_t i = 0; i < pool; ++i)
    requests.push_back(serve::Client::sample_bytes(fx.set.train[i]));
  const double seconds = smoke ? 1.0 : 3.0;
  const double kZipfS = 1.1;
  const LoadPoint uniform_off =
      measure_serve(fx, requests, false, 0.0, config.seed, seconds);
  const LoadPoint uniform_on =
      measure_serve(fx, requests, true, 0.0, config.seed, seconds);
  const LoadPoint zipf_off =
      measure_serve(fx, requests, false, kZipfS, config.seed, seconds);
  const LoadPoint zipf_on =
      measure_serve(fx, requests, true, kZipfS, config.seed, seconds);
  const auto hit_rate = [](const LoadPoint& p) {
    const std::uint64_t total = p.hits + p.misses;
    return total > 0 ? static_cast<double>(p.hits) /
                           static_cast<double>(total)
                     : 0.0;
  };
  std::printf("uniform: %.0f graphs/s off, %.0f on (hit rate %.3f)\n",
              uniform_off.graphs_per_s, uniform_on.graphs_per_s,
              hit_rate(uniform_on));
  std::printf("zipf %.1f: %.0f graphs/s off, %.0f on (hit rate %.3f)\n",
              kZipfS, zipf_off.graphs_per_s, zipf_on.graphs_per_s,
              hit_rate(zipf_on));

  bench::JsonReport report("ann");
  report.add("scale", to_string(config.scale));
  report.add("hidden_dim", config.hidden_dim);
  report.add("base_embeddings", fx.base.rows());
  for (const IndexPoint& p : points) {
    const std::string prefix = "n" + std::to_string(p.n) + "_";
    report.add(prefix + "build_s", p.build_s);
    report.add(prefix + "recall_at_10", p.recall_at_10);
    report.add(prefix + "query_p50_us", p.query_p50_us);
  }
  report.add("corpus_n", points.back().n);
  report.add("recall_at_10", points.back().recall_at_10);
  report.add("head_fraction", head_fraction);
  report.add("request_pool", pool);
  report.add("zipf_s", kZipfS);
  report.add("uniform_graphs_per_s_cache_off", uniform_off.graphs_per_s);
  report.add("uniform_graphs_per_s_cache_on", uniform_on.graphs_per_s);
  report.add("uniform_cache_hit_rate", hit_rate(uniform_on));
  report.add("zipf_graphs_per_s_cache_off", zipf_off.graphs_per_s);
  report.add("zipf_graphs_per_s_cache_on", zipf_on.graphs_per_s);
  report.add("zipf_cache_hit_rate", hit_rate(zipf_on));
  report.add("zipf_cache_speedup",
             zipf_off.graphs_per_s > 0.0
                 ? zipf_on.graphs_per_s / zipf_off.graphs_per_s
                 : 0.0);
  std::string json = bench::json_path_from_args(argc, argv);
  if (json.empty()) json = "BENCH_ann.json";
  if (!report.write(json)) return 1;

  if (points.back().recall_at_10 < 0.9) {
    std::fprintf(stderr, "FAIL: recall@10 %.3f < 0.9\n",
                 points.back().recall_at_10);
    return 1;
  }
  if (hit_rate(zipf_on) <= 0.0) {
    std::fprintf(stderr, "FAIL: zipf cache hit rate is zero\n");
    return 1;
  }
  if (zipf_on.graphs_per_s <= zipf_off.graphs_per_s) {
    std::fprintf(stderr, "FAIL: no cache speedup under zipf (%.0f <= %.0f)\n",
                 zipf_on.graphs_per_s, zipf_off.graphs_per_s);
    return 1;
  }
  return 0;
}
