// Table II: data points collected on each accelerator (#points, runtime
// range, standard deviation).
//
// Paper values (for shape comparison; our sweep is smaller by default):
//   POWER9:  13,023 points, [0.23 .. 736,798] ms, stddev 48,502
//   V100:    26,040 points, [0.035 .. 30,174] ms, stddev  3,708
//   EPYC:    17,681 points, [0.024 .. 291,627] ms, stddev 16,942
//   MI50:    26,668 points, [0.448 .. 46,913] ms, stddev  4,828
// The *shape* to reproduce: GPU sweeps have ~2x the CPU points; CPU runtime
// ranges and stddevs are 1-2 orders of magnitude wider than GPU ones.
#include "bench_common.hpp"

int main() {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header("Table II: Data points per accelerator", config);

  struct PaperRow {
    const char* points;
    const char* range;
    const char* stddev;
  };
  const PaperRow paper[4] = {
      {"13023", "[0.23 - 736798]", "48502"},
      {"26040", "[0.035 - 30174]", "3708"},
      {"17681", "[0.024 - 291627]", "16942"},
      {"26668", "[0.448 - 46913]", "4828"},
  };

  TextTable table({"Platform", "#Points", "Runtime Range (ms)", "Std. Dev.",
                   "paper #Points", "paper Range", "paper Std."});
  CsvWriter csv("table2_dataset.csv",
                {"platform", "points", "min_ms", "max_ms", "stddev_ms"});

  dataset::GenerationConfig gen;
  gen.scale = config.scale;
  gen.seed = config.seed;

  int row = 0;
  for (const auto& platform : sim::all_platforms()) {
    const auto points = dataset::generate_dataset(platform, gen);
    const auto stats = dataset::dataset_stats(points);
    const double min_ms = stats.min_runtime_us / 1e3;
    const double max_ms = stats.max_runtime_us / 1e3;
    const double stddev_ms = stats.stddev_us / 1e3;
    // Appends rather than operator+ chains: GCC 12 at -O3 emits a bogus
    // -Wrestrict for operator+(const char*, std::string&&) (GCC PR105329).
    std::string range = "[";
    range += format_double(min_ms, 3);
    range += " - ";
    range += format_double(max_ms, 6);
    range += "]";
    table.add_row({platform.name, std::to_string(stats.num_points), range,
                   format_double(stddev_ms, 5), paper[row].points,
                   paper[row].range, paper[row].stddev});
    csv.add_row({platform.name, std::to_string(stats.num_points),
                 format_double(min_ms, 8), format_double(max_ms, 8),
                 format_double(stddev_ms, 8)});
    ++row;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("wrote table2_dataset.csv\n");
  return 0;
}
