// Extra ablation (DESIGN.md experiment M2): how much each of ParaGraph's
// *weighting rules* contributes, on the MI50 dataset.
//
// Rows:
//   full ParaGraph        — trip-count weights / worker division / p=1/2
//   no worker division    — weights carry raw trip counts (the paper's
//                           static-schedule division disabled)
//   branch probability 1  — if-branches not halved
//   trip fallback only    — every loop weighted by the fallback constant
//                           (loop extents removed; isolates how much of the
//                           signal is the extent itself)
//
// The paper motivates each rule qualitatively (§III-A.3); this bench
// quantifies them. Expected shape: "trip fallback only" degrades toward the
// Augmented-AST error of Table IV; the other two rules matter less but are
// visible.
#include <numeric>

#include "bench_common.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"

namespace {

using namespace pg;

/// Variant of dataset::build_sample_set that lets us bend the weight rules.
model::SampleSet build_with_rules(const std::vector<dataset::RawDataPoint>& points,
                                  bool divide_by_workers, double branch_probability,
                                  bool force_fallback_trips) {
  // Mirrors dataset::build_sample_set but with custom BuildOptions.
  std::vector<graph::ProgramGraph> graphs(points.size());
#pragma omp parallel for schedule(dynamic, 8)
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto parsed = frontend::parse_source(points[i].source);
    graph::BuildOptions options;
    options.representation = graph::Representation::kParaGraph;
    const bool gpu = points[i].variant.starts_with("gpu");
    options.parallel_workers =
        divide_by_workers
            ? std::max<std::int64_t>(1, gpu ? points[i].num_teams *
                                                  points[i].num_threads
                                            : points[i].num_threads)
            : 1;
    options.branch_probability = branch_probability;
    if (force_fallback_trips) {
      // Weight every loop by the same constant: kill the extent signal by
      // capping weights at the fallback value.
      options.max_weight = static_cast<double>(options.unknown_trip_fallback);
    }
    graphs[i] = graph::build_graph(parsed.root(), options);
  }

  // Assemble the sample set (9:1 split, scalers on train only).
  model::SampleSet set;
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), 0);
  pg::Rng rng(13);
  rng.shuffle(order);
  const std::size_t val_count = std::max<std::size_t>(1, points.size() / 10);
  const std::size_t train_count = points.size() - val_count;

  double max_weight = 1.0;
  std::vector<double> runtimes, teams, threads;
  for (std::size_t k = 0; k < train_count; ++k) {
    const auto i = order[k];
    max_weight = std::max(max_weight,
                          static_cast<double>(graphs[i].max_child_weight()));
    runtimes.push_back(points[i].runtime_us);
    teams.push_back(static_cast<double>(points[i].num_teams));
    threads.push_back(static_cast<double>(points[i].num_threads));
  }
  set.child_weight_scale = max_weight;
  set.target_scaler.fit(runtimes);
  set.teams_scaler.fit(teams);
  set.threads_scaler.fit(threads);

  auto make = [&](std::size_t i) {
    const auto& p = points[i];
    model::TrainingSample s;
    s.graph = model::encode_graph(graphs[i], set.child_weight_scale);
    s.aux = {static_cast<float>(
                 set.teams_scaler.transform(static_cast<double>(p.num_teams))),
             static_cast<float>(set.threads_scaler.transform(
                 static_cast<double>(p.num_threads)))};
    s.target_scaled = set.target_scaler.transform(p.runtime_us);
    s.runtime_us = p.runtime_us;
    s.app_id = p.app_id;
    s.app_name = p.app;
    s.variant = p.variant;
    return s;
  };
  for (std::size_t k = 0; k < order.size(); ++k) {
    if (k < train_count) set.train.push_back(make(order[k]));
    else set.validation.push_back(make(order[k]));
  }
  return set;
}

}  // namespace

int main() {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header("Extra ablation: ParaGraph weighting rules (MI50)",
                      config);

  dataset::GenerationConfig gen;
  gen.scale = config.scale;
  gen.seed = config.seed;
  const auto points = dataset::generate_dataset(sim::corona_mi50(), gen);

  struct Rule {
    const char* name;
    bool divide;
    double branch_p;
    bool fallback_only;
  };
  const Rule rules[] = {
      {"full ParaGraph", true, 0.5, false},
      {"no worker division", false, 0.5, false},
      {"branch probability 1.0", true, 1.0, false},
      {"trip fallback only (no extents)", true, 0.5, true},
  };

  TextTable table({"Weight rule", "RMSE (ms)", "Norm-RMSE"});
  CsvWriter csv("ablation_weight_rules.csv",
                {"rule", "rmse_ms", "norm_rmse"});
  for (const Rule& rule : rules) {
    auto set = build_with_rules(points, rule.divide, rule.branch_p,
                                rule.fallback_only);
    model::ModelConfig model_config;
    model_config.hidden_dim = config.hidden_dim;
    model::ParaGraphModel m(model_config);
    model::TrainConfig train;
    train.epochs = config.epochs;
    const auto result = model::train_model(m, set, train);
    table.add_row({rule.name, format_double(result.final_rmse_us / 1e3, 5),
                   format_sci(result.final_norm_rmse, 2)});
    csv.add_row({rule.name, format_double(result.final_rmse_us / 1e3, 8),
                 format_double(result.final_norm_rmse, 8)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("expected shape: removing loop extents ('trip fallback only') "
              "hurts most;\nworker division and branch halving are smaller "
              "but visible effects\n");
  std::printf("wrote ablation_weight_rules.csv\n");
  return 0;
}
