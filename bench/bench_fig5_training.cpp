// Figure 5: validation normalized RMSE per training epoch, for all four
// accelerators.
//
// Paper shape: fluctuation in the first epochs, then monotone-ish descent
// and convergence within ~100 epochs on every platform.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pg;
  bench::BenchConfig config;
  config.epochs = static_cast<int>(env_int("PARAGRAPH_EPOCHS", 80));
  bench::print_header("Figure 5: normalized RMSE per epoch", config);

  const sim::Platform platforms[4] = {sim::summit_v100(), sim::corona_mi50(),
                                      sim::summit_power9(),
                                      sim::corona_epyc7401()};

  CsvWriter csv("fig5_training.csv", {"epoch", "platform", "norm_rmse"});
  std::vector<std::vector<double>> curves(4);
  for (int p = 0; p < 4; ++p) {
    const auto run = bench::train_platform(platforms[p], config);
    for (const auto& record : run.result.history) {
      curves[p].push_back(record.val_norm_rmse);
      csv.add_row({std::to_string(record.epoch), platforms[p].name,
                   format_double(record.val_norm_rmse, 8)});
    }
  }

  // Print a sampled view of the curves (every 10th epoch).
  TextTable table({"Epoch", "V100", "MI50", "Power9", "EPYC"});
  for (int epoch = 1; epoch <= config.epochs; ++epoch) {
    if (epoch != 1 && epoch % 10 != 0) continue;
    std::vector<std::string> row = {std::to_string(epoch)};
    for (int p = 0; p < 4; ++p)
      row.push_back(format_double(curves[p][epoch - 1], 3));
    table.add_row(row);
  }
  std::printf("%s\n", table.render().c_str());

  // Convergence check: the last-quarter mean is far below the first epochs.
  for (int p = 0; p < 4; ++p) {
    const auto& c = curves[p];
    double early = 0.0, late = 0.0;
    for (int e = 0; e < 5; ++e) early += c[e];
    for (std::size_t e = c.size() - 5; e < c.size(); ++e) late += c[e];
    std::printf("%-22s first-5 mean %.3f -> last-5 mean %.4f (%.1fx better)\n",
                platforms[p].name.c_str(), early / 5, late / 5,
                early / std::max(late, 1e-12));
  }
  std::printf("\npaper: all four curves converge by ~epoch 100\n");
  std::printf("wrote fig5_training.csv\n");

  if (const std::string json = bench::json_path_from_args(argc, argv);
      !json.empty()) {
    bench::JsonReport report("fig5_training");
    report.add("scale", to_string(config.scale));
    report.add("epochs", config.epochs);
    const char* keys[4] = {"v100", "mi50", "power9", "epyc"};
    for (int p = 0; p < 4; ++p) {
      std::string first = keys[p];
      first += "_first_norm_rmse";
      report.add(first, curves[p].front());
      std::string final_key = keys[p];
      final_key += "_final_norm_rmse";
      report.add(final_key, curves[p].back());
    }
    report.write(json);
  }
  return 0;
}
