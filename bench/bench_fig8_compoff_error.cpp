// Figure 8: per-data-point prediction error of ParaGraph vs COMPOFF on the
// NVIDIA V100.
//
// Paper shape: COMPOFF's relative error is visibly higher for small-runtime
// kernels and shrinks as runtime grows; ParaGraph's error is significantly
// lower across the board.
#include <algorithm>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header("Figure 8: per-point error, ParaGraph vs COMPOFF (V100)",
                      config);

  // ParaGraph on the V100.
  const auto run = bench::train_platform(sim::summit_v100(), config);
  const auto actual = bench::validation_actuals(run.set);
  const auto& para_pred = run.result.val_predictions_us;

  // COMPOFF on the same dataset with the same split seed.
  compoff::CompoffConfig compoff_config;
  const auto compoff_eval = compoff::train_and_evaluate(run.points, compoff_config);

  // Both validation sets are the same points (same split seed) but COMPOFF
  // orders them by its own shuffle; summarise per runtime-decade instead of
  // per index so the comparison is stable.
  struct Decade {
    double para_abs = 0.0;
    std::size_t para_n = 0;
    double compoff_abs = 0.0;
    std::size_t compoff_n = 0;
  };
  auto decade_of = [](double us) {
    int d = 0;
    while (us >= 10.0 && d < 8) {
      us /= 10.0;
      ++d;
    }
    return d;
  };
  std::array<Decade, 9> decades{};
  for (std::size_t i = 0; i < actual.size(); ++i) {
    auto& d = decades[decade_of(actual[i])];
    d.para_abs += std::abs(actual[i] - para_pred[i]);
    ++d.para_n;
  }
  for (std::size_t i = 0; i < compoff_eval.actual_us.size(); ++i) {
    auto& d = decades[decade_of(compoff_eval.actual_us[i])];
    d.compoff_abs += std::abs(compoff_eval.actual_us[i] -
                              compoff_eval.predicted_us[i]);
    ++d.compoff_n;
  }

  TextTable table({"Runtime decade", "#pts", "ParaGraph mean |err| (ms)",
                   "COMPOFF mean |err| (ms)", "COMPOFF/ParaGraph"});
  CsvWriter csv("fig8_compoff_error.csv",
                {"decade_us", "paragraph_abs_err_ms", "compoff_abs_err_ms"});
  for (std::size_t d = 0; d < decades.size(); ++d) {
    const auto& row = decades[d];
    if (row.para_n == 0 && row.compoff_n == 0) continue;
    const double para =
        row.para_n > 0 ? row.para_abs / row.para_n / 1e3 : 0.0;
    const double compoff =
        row.compoff_n > 0 ? row.compoff_abs / row.compoff_n / 1e3 : 0.0;
    const std::string label = "1e" + std::to_string(d) + " us";
    table.add_row({label, std::to_string(row.para_n), format_double(para, 4),
                   format_double(compoff, 4),
                   para > 0 ? format_double(compoff / para, 3) : "-"});
    csv.add_row({label, format_double(para, 8), format_double(compoff, 8)});
  }
  std::printf("%s\n", table.render().c_str());

  const double para_rmse = stats::rmse(actual, para_pred);
  std::printf("overall RMSE: ParaGraph %.1f ms vs COMPOFF %.1f ms "
              "(paper: ParaGraph clearly lower, esp. small kernels)\n",
              para_rmse / 1e3, compoff_eval.rmse_us / 1e3);
  std::printf("wrote fig8_compoff_error.csv\n");

  if (const std::string json = bench::json_path_from_args(argc, argv);
      !json.empty()) {
    bench::JsonReport report("fig8_compoff_error");
    report.add("scale", to_string(config.scale));
    report.add("paragraph_rmse_ms", para_rmse / 1e3);
    report.add("compoff_rmse_ms", compoff_eval.rmse_us / 1e3);
    report.add("paragraph_beats_compoff",
               std::string(para_rmse < compoff_eval.rmse_us ? "true" : "false"));
    report.write(json);
  }
  return para_rmse < compoff_eval.rmse_us ? 0 : 1;
}
