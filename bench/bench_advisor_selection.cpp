// Extra experiment (DESIGN.md A1): variant selection quality.
//
// The paper's abstract: "The predicted runtime of the model is used to
// determine which transformation provides the best performance." This bench
// measures that end use directly, on *held-out problem sizes* (each
// kernel's full-scale size list, disjoint from the default training sweep),
// across the CPU *and* GPU of the Summit-like cluster — the cross-device
// choice is exactly where static heuristics fail (small kernels lose more
// to offload latency than they gain from GPU parallelism).
//
//   for every (kernel, unseen size): enumerate cpu variants x thread counts
//   plus gpu variants x launch configs; predict each candidate's runtime
//   with the per-device ParaGraph models; pick the argmin; compare with the
//   simulator's noise-free ground truth.
//
// Reported: top-1 accuracy (within 5% of optimal counts as a hit — ties on
// the runtime floor are common), mean/max slowdown vs the optimum, and two
// baselines: "always offload with max parallelism" and random choice.
#include <algorithm>

#include "bench_common.hpp"
#include "frontend/parser.hpp"

namespace {

using namespace pg;

struct Candidate {
  bool gpu = false;
  dataset::Variant variant{};
  std::int64_t teams = 1;
  std::int64_t threads = 1;
  double predicted_us = 0.0;
  double actual_us = 0.0;
};

struct DeviceAdvisor {
  sim::Platform platform;
  model::SampleSet set;
  std::unique_ptr<model::ParaGraphModel> model;
};

DeviceAdvisor make_advisor(const sim::Platform& platform,
                           const bench::BenchConfig& config, bool log_target) {
  DeviceAdvisor advisor{platform, {}, nullptr};
  dataset::GenerationConfig gen;
  gen.scale = config.scale;
  gen.seed = config.seed;
  const auto points = dataset::generate_dataset(platform, gen);
  dataset::SampleBuildConfig build;
  build.log_target = log_target;
  advisor.set = dataset::build_sample_set(points, build);
  model::ModelConfig model_config;
  model_config.hidden_dim = config.hidden_dim;
  advisor.model = std::make_unique<model::ParaGraphModel>(model_config);
  model::TrainConfig train;
  train.epochs = config.epochs;
  (void)model::train_model(*advisor.model, advisor.set, train);
  return advisor;
}

double predict_candidate(const DeviceAdvisor& advisor,
                         const dataset::KernelSpec& spec, const Candidate& c,
                         const dataset::SizePoint& size) {
  dataset::RawDataPoint point;
  point.variant = std::string(dataset::variant_name(c.variant));
  point.num_teams = c.teams;
  point.num_threads = c.threads;
  point.source =
      dataset::instantiate_source(spec, c.variant, size, c.teams, c.threads);
  const auto g =
      dataset::build_point_graph(point, graph::Representation::kParaGraph);
  const auto enc = model::encode_graph(g, advisor.set.child_weight_scale);
  const std::array<float, 2> aux = {
      static_cast<float>(
          advisor.set.teams_scaler.transform(static_cast<double>(c.teams))),
      static_cast<float>(
          advisor.set.threads_scaler.transform(static_cast<double>(c.threads)))};
  return advisor.set.from_target(advisor.model->predict(enc, aux));
}

double measure_candidate(const sim::Platform& platform,
                         const dataset::KernelSpec& spec, const Candidate& c,
                         const dataset::SizePoint& size) {
  const std::string source =
      dataset::instantiate_source(spec, c.variant, size, c.teams, c.threads);
  const auto parsed = frontend::parse_source(source);
  check(parsed.ok(), "advisor: candidate failed to parse");
  sim::SimOptions noise_free;
  noise_free.noise_sigma = 0.0;
  return sim::simulate_runtime_us(sim::profile_kernel(parsed.root()), platform,
                                  noise_free);
}

}  // namespace

int main() {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header(
      "Extra: advisor variant selection across CPU+GPU (Summit, held-out sizes)",
      config);

  // Two advisor flavours: the paper's raw-runtime target, and the
  // log-runtime extension (better *ranking* resolution for small kernels).
  const DeviceAdvisor cpu_lin = make_advisor(sim::summit_power9(), config, false);
  const DeviceAdvisor gpu_lin = make_advisor(sim::summit_v100(), config, false);
  const DeviceAdvisor cpu_log = make_advisor(sim::summit_power9(), config, true);
  const DeviceAdvisor gpu_log = make_advisor(sim::summit_v100(), config, true);

  const std::vector<std::int64_t> cpu_threads = {8, 22};
  const std::vector<std::pair<std::int64_t, std::int64_t>> gpu_configs = {
      {64, 128}, {256, 256}, {1024, 256}};

  struct SelectorStats {
    std::size_t hits = 0;
    double regret = 0.0;
    double worst = 1.0;
    void record(double chosen_us, double best_us) {
      hits += (chosen_us <= 1.05 * best_us);
      regret += chosen_us / best_us;
      worst = std::max(worst, chosen_us / best_us);
    }
  };
  SelectorStats lin_stats, log_stats, offload_stats;
  double random_regret = 0.0;
  std::size_t groups = 0;

  CsvWriter csv("advisor_selection.csv",
                {"kernel", "size", "chosen_log", "best", "regret_log"});

  for (const auto& spec : dataset::benchmark_suite()) {
    for (const auto& size : spec.extra_full_sizes) {
      std::vector<Candidate> candidates;
      for (const auto variant : dataset::applicable_variants(spec, false))
        for (const std::int64_t threads : cpu_threads)
          candidates.push_back({false, variant, 1, threads});
      for (const auto variant : dataset::applicable_variants(spec, true))
        for (const auto& [teams, threads] : gpu_configs)
          candidates.push_back({true, variant, teams, threads});

      std::vector<double> pred_lin(candidates.size());
      std::vector<double> pred_log(candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        Candidate& c = candidates[i];
        const sim::Platform& platform =
            c.gpu ? gpu_lin.platform : cpu_lin.platform;
        c.actual_us = measure_candidate(platform, spec, c, size);
        pred_lin[i] = predict_candidate(c.gpu ? gpu_lin : cpu_lin, spec, c, size);
        pred_log[i] = predict_candidate(c.gpu ? gpu_log : cpu_log, spec, c, size);
      }

      auto argmin = [&](const std::vector<double>& keys) {
        std::size_t best_i = 0;
        for (std::size_t i = 1; i < keys.size(); ++i)
          if (keys[i] < keys[best_i]) best_i = i;
        return best_i;
      };
      std::vector<double> actuals(candidates.size());
      for (std::size_t i = 0; i < candidates.size(); ++i)
        actuals[i] = candidates[i].actual_us;
      const Candidate& best = candidates[argmin(actuals)];
      const Candidate& chosen_lin = candidates[argmin(pred_lin)];
      const Candidate& chosen_log = candidates[argmin(pred_log)];

      // Baseline: always offload, max parallelism, collapse if legal, no
      // explicit transfer.
      const Candidate offload = *std::min_element(
          candidates.begin(), candidates.end(),
          [](const Candidate& a, const Candidate& b) {
            auto key = [](const Candidate& c) {
              return std::tuple(
                  -static_cast<int>(c.gpu),
                  -static_cast<int>(dataset::variant_has_collapse(c.variant)),
                  static_cast<int>(dataset::variant_has_transfer(c.variant)),
                  -(c.teams * c.threads));
            };
            return key(a) < key(b);
          });

      ++groups;
      lin_stats.record(chosen_lin.actual_us, best.actual_us);
      log_stats.record(chosen_log.actual_us, best.actual_us);
      offload_stats.record(offload.actual_us, best.actual_us);
      double group_random = 0.0;
      for (const auto& c : candidates) group_random += c.actual_us / best.actual_us;
      random_regret += group_random / static_cast<double>(candidates.size());

      std::string size_str;
      for (const auto& [k, v] : size) size_str += k + "=" + std::to_string(v) + " ";
      auto label = [](const Candidate& c) {
        return (c.gpu ? "V100/" : "POWER9/") +
               std::string(dataset::variant_name(c.variant));
      };
      csv.add_row({spec.kernel, size_str, label(chosen_log), label(best),
                   format_double(chosen_log.actual_us / best.actual_us, 6)});
    }
  }

  const double n = static_cast<double>(groups);
  TextTable table(
      {"Selector", "Within 5% of optimal", "Mean slowdown", "Worst slowdown"});
  auto add = [&](const char* name, const SelectorStats& st) {
    table.add_row({name, format_double(100.0 * st.hits / n, 3) + "%",
                   format_double(st.regret / n, 4) + "x",
                   format_double(st.worst, 3) + "x"});
  };
  add("ParaGraph advisor (runtime target)", lin_stats);
  add("ParaGraph advisor (log-runtime target)", log_stats);
  add("always-offload heuristic", offload_stats);
  table.add_row({"random candidate", "-",
                 format_double(random_regret / n, 4) + "x", "-"});
  std::printf("%s\n", table.render().c_str());
  std::printf("%zu (kernel, held-out size) groups\n", groups);
  std::printf("wrote advisor_selection.csv\n");
  return 0;
}
