// Table I: the benchmark applications (name, kernel count, domain).
// Regenerated from the suite definition so that the code and the paper's
// inventory cannot drift apart.
#include <map>

#include "bench_common.hpp"
#include "dataset/kernel_spec.hpp"

int main() {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header("Table I: Benchmark Applications", config);

  struct AppRow {
    int kernels = 0;
    std::string domain;
  };
  std::map<std::string, AppRow> apps;
  for (const auto& spec : dataset::benchmark_suite()) {
    auto& row = apps[spec.app];
    ++row.kernels;
    row.domain = spec.domain;
  }

  TextTable table({"Application", "Num Kernels", "Domain"});
  CsvWriter csv("table1_apps.csv", {"application", "num_kernels", "domain"});
  int total = 0;
  for (const auto& [app, row] : apps) {
    table.add_row({app, std::to_string(row.kernels), row.domain});
    csv.add_row({app, std::to_string(row.kernels), row.domain});
    total += row.kernels;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("total: %zu applications, %d kernels (paper: 9 applications, "
              "17 kernels)\n",
              apps.size(), total);
  std::printf("wrote table1_apps.csv\n");
  return 0;
}
