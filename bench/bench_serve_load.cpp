// Load generator for paragraph-serve (docs/SERVING.md): C client threads
// hammer the daemon with predict requests for S seconds and the bench
// reports p50/p99 request latency and sustained graphs/s into
// BENCH_serve.json. Any failed request makes the bench exit non-zero, so CI
// uses it directly as the soak gate.
//
// Modes:
//   --emit-fixture DIR   write a deterministic serve fixture (serve.ckpt +
//                        req_<i>.psample request files, built from the
//                        simulated suite corpus — no golden-dir dependency)
//                        and exit.
//   default              start an in-process Server over the same fixture
//                        data (generated in memory) and load it.
//   --port P             skip the in-process server and load an externally
//                        started paragraph-serve daemon instead (start it
//                        with --checkpoint DIR/serve.ckpt from a fixture so
//                        request bytes and checkpoint match).
//
// Knobs: --fixture DIR (read request bytes from an emitted fixture),
// --clients C (default 4), --seconds S (default 5), --json PATH (default
// BENCH_serve.json next to the binary).
//
// Request mix: --uniform (the default) and --zipf <s> share one seeded
// picker (bench::RequestPicker; Zipf with s = 0 IS uniform), so the two
// modes differ only in skew. --zipf concentrates traffic on a few hot
// requests — the shape the serve-time semantic cache is built for. The
// emitted JSON records the mix descriptor alongside the numbers.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <optional>
#include <thread>

#include "bench_common.hpp"
#include "io/pgraph_io.hpp"
#include "model/checkpoint.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace pg;

const char* option_value(int argc, char** argv, const char* name) {
  for (int a = 1; a + 1 < argc; ++a)
    if (std::strcmp(argv[a], name) == 0) return argv[a + 1];
  return nullptr;
}

std::int64_t int_option(int argc, char** argv, const char* name,
                        std::int64_t fallback) {
  const char* value = option_value(argc, argv, name);
  return value != nullptr ? std::stoll(value) : fallback;
}

/// The deterministic serve corpus: simulated suite samples (first platform,
/// bench scale/seed) plus a fresh fixed-init model — the same recipe the
/// serve tests use with the golden corpus, but self-contained.
struct ServeFixture {
  model::ModelConfig model_config;
  std::shared_ptr<model::ParaGraphModel> model;
  model::CheckpointScalers scalers;
  std::vector<std::string> request_bytes;  // serialised .psample containers
};

ServeFixture build_fixture(const bench::BenchConfig& config,
                           std::size_t max_requests) {
  ServeFixture fx;
  const sim::Platform platform = sim::all_platforms().front();

  dataset::GenerationConfig gen;
  gen.scale = config.scale;
  gen.seed = config.seed;
  const auto points = dataset::generate_dataset(platform, gen);

  dataset::SampleBuildConfig build;
  dataset::CorpusKey key;
  key.platform_name = platform.name;
  key.scale = config.scale;
  key.representation = build.representation;
  key.seed = config.seed;
  key.log_target = build.log_target;
  const model::SampleSet set = dataset::load_or_build_sample_set(
      env_string("PARAGRAPH_CORPUS_DIR", ""), key, points, build);

  fx.model_config.hidden_dim = config.hidden_dim;
  fx.model = std::make_shared<model::ParaGraphModel>(fx.model_config);
  fx.scalers = model::CheckpointScalers::from_sample_set(set);

  const std::size_t count = std::min(max_requests, set.train.size());
  fx.request_bytes.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    fx.request_bytes.push_back(serve::Client::sample_bytes(set.train[i]));
  return fx;
}

int emit_fixture(const std::string& dir, const bench::BenchConfig& config) {
  const ServeFixture fx = build_fixture(config, 8);
  model::save_checkpoint_file(dir + "/serve.ckpt", *fx.model, fx.scalers);
  for (std::size_t i = 0; i < fx.request_bytes.size(); ++i) {
    const std::string path = dir + "/req_" + std::to_string(i) + ".psample";
    std::ofstream os(path, std::ios::binary);
    os.write(fx.request_bytes[i].data(),
             static_cast<std::streamsize>(fx.request_bytes[i].size()));
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("wrote %s/serve.ckpt and %zu request files\n", dir.c_str(),
              fx.request_bytes.size());
  return 0;
}

std::vector<std::string> read_fixture_requests(const std::string& dir) {
  std::vector<std::string> requests;
  for (std::size_t i = 0;; ++i) {
    std::ifstream is(dir + "/req_" + std::to_string(i) + ".psample",
                     std::ios::binary);
    if (!is) break;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    requests.push_back(buffer.str());
  }
  return requests;
}

struct ClientTotals {
  std::vector<double> latencies_us;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t busy_retries = 0;
};

void run_client(std::uint16_t port, const std::vector<std::string>& requests,
                bench::RequestPicker picker,
                std::chrono::steady_clock::time_point until,
                ClientTotals& totals) {
  try {
    serve::Client client(port, 30000);
    while (std::chrono::steady_clock::now() < until) {
      const std::string& request = requests[picker.next()];
      const auto t0 = std::chrono::steady_clock::now();
      const auto response =
          client.predict_until_served(request, &totals.busy_retries);
      const auto t1 = std::chrono::steady_clock::now();
      if (!response.has_value() ||
          response->kind != serve::FrameKind::kPredictReply) {
        ++totals.errors;
        continue;
      }
      ++totals.ok;
      totals.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  } catch (const serve::SocketError& e) {
    std::fprintf(stderr, "client: %s\n", e.what());
    ++totals.errors;
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config;

  if (const char* dir = option_value(argc, argv, "--emit-fixture"))
    return emit_fixture(dir, config);

  const std::int64_t clients = int_option(argc, argv, "--clients", 4);
  const std::int64_t seconds = int_option(argc, argv, "--seconds", 5);
  const char* fixture_dir = option_value(argc, argv, "--fixture");
  const std::int64_t external_port = int_option(argc, argv, "--port", 0);
  // --uniform is Zipf with s = 0 — both flags feed the same seeded picker.
  double zipf_s = 0.0;
  if (const char* s = option_value(argc, argv, "--zipf")) zipf_s = std::stod(s);
  for (int a = 1; a < argc; ++a)
    if (std::strcmp(argv[a], "--uniform") == 0) zipf_s = 0.0;

  bench::print_header("paragraph-serve load", config);

  // Request bytes: from an emitted fixture, or the same data in memory.
  std::optional<ServeFixture> fx;
  std::vector<std::string> requests;
  if (fixture_dir != nullptr) {
    requests = read_fixture_requests(fixture_dir);
    if (requests.empty()) {
      std::fprintf(stderr, "no req_*.psample under %s\n", fixture_dir);
      return 1;
    }
  } else {
    fx = build_fixture(config, 8);
    requests = fx->request_bytes;
  }

  // The target: an external daemon, or an in-process server over the
  // fixture model (env knobs PARAGRAPH_SERVE_* still apply).
  std::unique_ptr<serve::Server> server;
  std::uint16_t port = static_cast<std::uint16_t>(external_port);
  if (external_port == 0) {
    if (!fx) fx = build_fixture(config, 1);  // model + scalers only
    server = std::make_unique<serve::Server>(*fx->model, fx->scalers,
                                             serve::serve_config_from_env());
    server->start();
    port = server->port();
  }

  const auto started = std::chrono::steady_clock::now();
  const auto until = started + std::chrono::seconds(seconds);
  std::vector<ClientTotals> totals(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(totals.size());
  for (std::size_t c = 0; c < totals.size(); ++c)
    threads.emplace_back([&, c] {
      // Per-client derived seed: deterministic, distinct streams.
      run_client(port, requests,
                 bench::RequestPicker(requests.size(), zipf_s,
                                      config.seed + 0x9e37 * (c + 1)),
                 until, totals[c]);
    });
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  std::vector<double> latencies;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t busy_retries = 0;
  for (ClientTotals& t : totals) {
    latencies.insert(latencies.end(), t.latencies_us.begin(),
                     t.latencies_us.end());
    ok += t.ok;
    errors += t.errors;
    busy_retries += t.busy_retries;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double throughput = elapsed_s > 0.0 ? static_cast<double>(ok) / elapsed_s : 0.0;

  std::printf("clients=%lld seconds=%lld target=%s mix=%s(s=%g)\n",
              static_cast<long long>(clients), static_cast<long long>(seconds),
              external_port != 0 ? "external daemon" : "in-process server",
              zipf_s == 0.0 ? "uniform" : "zipf", zipf_s);
  std::printf("requests ok        %llu\n", static_cast<unsigned long long>(ok));
  std::printf("errors             %llu\n",
              static_cast<unsigned long long>(errors));
  std::printf("busy retries       %llu\n",
              static_cast<unsigned long long>(busy_retries));
  std::printf("latency p50        %.1f us\n", p50);
  std::printf("latency p99        %.1f us\n", p99);
  std::printf("sustained          %.1f graphs/s\n", throughput);

  serve::ServerStats server_stats;
  if (server != nullptr) {
    server->stop();
    server_stats = server->stats();
    std::printf("server batches     %llu (%.2f graphs/batch)\n",
                static_cast<unsigned long long>(server_stats.batches),
                server_stats.batches > 0
                    ? static_cast<double>(server_stats.requests_ok) /
                          static_cast<double>(server_stats.batches)
                    : 0.0);
    if (server->config().cache)
      std::printf("server cache       %llu hits / %llu misses\n",
                  static_cast<unsigned long long>(server_stats.cache_hits),
                  static_cast<unsigned long long>(server_stats.cache_misses));
  }

  bench::JsonReport report("serve_load");
  report.add("scale", to_string(config.scale));
  report.add("mode", external_port != 0 ? "external" : "in-process");
  report.add("request_mix", zipf_s == 0.0 ? "uniform" : "zipf");
  report.add("zipf_s", zipf_s);
  report.add("clients", static_cast<int>(clients));
  report.add("seconds", static_cast<int>(seconds));
  report.add("requests_ok", static_cast<std::size_t>(ok));
  report.add("errors", static_cast<std::size_t>(errors));
  report.add("busy_retries", static_cast<std::size_t>(busy_retries));
  report.add("latency_p50_us", p50);
  report.add("latency_p99_us", p99);
  report.add("graphs_per_s", throughput);
  if (server != nullptr) {
    report.add("cache_enabled", server->config().cache ? 1 : 0);
    report.add("cache_hits", static_cast<std::size_t>(server_stats.cache_hits));
    report.add("cache_misses",
               static_cast<std::size_t>(server_stats.cache_misses));
  }
  std::string json = bench::json_path_from_args(argc, argv);
  if (json.empty()) json = "BENCH_serve.json";
  if (!report.write(json)) return 1;

  if (errors > 0) {
    std::fprintf(stderr, "FAIL: %llu request errors\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  if (ok == 0) {
    std::fprintf(stderr, "FAIL: no successful requests\n");
    return 1;
  }
  return 0;
}
