// Load generator for paragraph-serve (docs/SERVING.md): C client threads
// hammer the daemon with predict requests for S seconds and the bench
// reports p50/p99 request latency and sustained graphs/s into
// BENCH_serve.json. Any failed request makes the bench exit non-zero, so CI
// uses it directly as the soak gate.
//
// Modes:
//   --emit-fixture DIR   write a deterministic serve fixture (serve.ckpt +
//                        req_<i>.psample request files, built from the
//                        simulated suite corpus — no golden-dir dependency)
//                        and exit.
//   default              start an in-process Server over the same fixture
//                        data (generated in memory) and load it.
//   --port P             skip the in-process server and load an externally
//                        started paragraph-serve daemon instead (start it
//                        with --checkpoint DIR/serve.ckpt from a fixture so
//                        request bytes and checkpoint match).
//
// Knobs: --fixture DIR (read request bytes from an emitted fixture),
// --clients C (default 4), --seconds S (default 5), --json PATH (default
// BENCH_serve.json next to the binary), --idle-connections N (hold N extra
// open-but-silent connections for the whole run — the reactor must carry
// them for free), --connections A,B,C (after the baseline, sweep concurrent
// connection counts: each count C gets min(C,8) driver threads round-robining
// one request per held connection for --sweep-seconds, recording per-count
// p50/p99/graphs_per_s and — in-process only — the reactor's write-coalescing
// ratio as flat cN_* JSON keys).
//
// Request mix: --uniform (the default) and --zipf <s> share one seeded
// picker (bench::RequestPicker; Zipf with s = 0 IS uniform), so the two
// modes differ only in skew. --zipf concentrates traffic on a few hot
// requests — the shape the serve-time semantic cache is built for. The
// emitted JSON records the mix descriptor alongside the numbers.
#include <sys/resource.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "io/pgraph_io.hpp"
#include "model/checkpoint.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace pg;

const char* option_value(int argc, char** argv, const char* name) {
  for (int a = 1; a + 1 < argc; ++a)
    if (std::strcmp(argv[a], name) == 0) return argv[a + 1];
  return nullptr;
}

std::int64_t int_option(int argc, char** argv, const char* name,
                        std::int64_t fallback) {
  const char* value = option_value(argc, argv, name);
  return value != nullptr ? std::stoll(value) : fallback;
}

/// The deterministic serve corpus: simulated suite samples (first platform,
/// bench scale/seed) plus a fresh fixed-init model — the same recipe the
/// serve tests use with the golden corpus, but self-contained.
struct ServeFixture {
  model::ModelConfig model_config;
  std::shared_ptr<model::ParaGraphModel> model;
  model::CheckpointScalers scalers;
  std::vector<std::string> request_bytes;  // serialised .psample containers
};

ServeFixture build_fixture(const bench::BenchConfig& config,
                           std::size_t max_requests) {
  ServeFixture fx;
  const sim::Platform platform = sim::all_platforms().front();

  dataset::GenerationConfig gen;
  gen.scale = config.scale;
  gen.seed = config.seed;
  const auto points = dataset::generate_dataset(platform, gen);

  dataset::SampleBuildConfig build;
  dataset::CorpusKey key;
  key.platform_name = platform.name;
  key.scale = config.scale;
  key.representation = build.representation;
  key.seed = config.seed;
  key.log_target = build.log_target;
  const model::SampleSet set = dataset::load_or_build_sample_set(
      env_string("PARAGRAPH_CORPUS_DIR", ""), key, points, build);

  fx.model_config.hidden_dim = config.hidden_dim;
  fx.model = std::make_shared<model::ParaGraphModel>(fx.model_config);
  fx.scalers = model::CheckpointScalers::from_sample_set(set);

  const std::size_t count = std::min(max_requests, set.train.size());
  fx.request_bytes.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    fx.request_bytes.push_back(serve::Client::sample_bytes(set.train[i]));
  return fx;
}

int emit_fixture(const std::string& dir, const bench::BenchConfig& config) {
  const ServeFixture fx = build_fixture(config, 8);
  model::save_checkpoint_file(dir + "/serve.ckpt", *fx.model, fx.scalers);
  for (std::size_t i = 0; i < fx.request_bytes.size(); ++i) {
    const std::string path = dir + "/req_" + std::to_string(i) + ".psample";
    std::ofstream os(path, std::ios::binary);
    os.write(fx.request_bytes[i].data(),
             static_cast<std::streamsize>(fx.request_bytes[i].size()));
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
  }
  std::printf("wrote %s/serve.ckpt and %zu request files\n", dir.c_str(),
              fx.request_bytes.size());
  return 0;
}

std::vector<std::string> read_fixture_requests(const std::string& dir) {
  std::vector<std::string> requests;
  for (std::size_t i = 0;; ++i) {
    std::ifstream is(dir + "/req_" + std::to_string(i) + ".psample",
                     std::ios::binary);
    if (!is) break;
    std::ostringstream buffer;
    buffer << is.rdbuf();
    requests.push_back(buffer.str());
  }
  return requests;
}

struct ClientTotals {
  std::vector<double> latencies_us;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t busy_retries = 0;
};

void run_client(std::uint16_t port, const std::vector<std::string>& requests,
                bench::RequestPicker picker,
                std::chrono::steady_clock::time_point until,
                ClientTotals& totals) {
  try {
    serve::Client client(port, 30000);
    while (std::chrono::steady_clock::now() < until) {
      const std::string& request = requests[picker.next()];
      const auto t0 = std::chrono::steady_clock::now();
      const auto response =
          client.predict_until_served(request, &totals.busy_retries);
      const auto t1 = std::chrono::steady_clock::now();
      if (!response.has_value() ||
          response->kind != serve::FrameKind::kPredictReply) {
        ++totals.errors;
        continue;
      }
      ++totals.ok;
      totals.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(t1 - t0).count());
    }
  } catch (const serve::SocketError& e) {
    std::fprintf(stderr, "client: %s\n", e.what());
    ++totals.errors;
  }
}

double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// One point of the connection-count sweep.
struct SweepPoint {
  long long connections = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t busy_retries = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double graphs_per_s = 0.0;
  double frames_per_writev = 0.0;  // reactor coalescing; 0 = external target
};

/// Holds `conns` open connections with min(conns, 8) driver threads, each
/// round-robining one blocking request per held connection — many mostly-
/// idle sockets, few requests in flight: exactly the shape the reactor
/// exists for.
SweepPoint run_connection_count(std::uint16_t port,
                                const std::vector<std::string>& requests,
                                double zipf_s, std::uint64_t seed,
                                long long conns, long long sweep_seconds,
                                serve::Server* server) {
  SweepPoint point;
  point.connections = conns;
  serve::ServerStats before{};
  if (server != nullptr) before = server->stats();

  const std::size_t drivers =
      static_cast<std::size_t>(std::min<long long>(conns, 8));
  std::vector<ClientTotals> totals(drivers);
  // Connect barrier: every driver opens its share of connections before the
  // clock starts, so connection-setup time (significant at c=1024) never
  // counts against the measured window.
  std::atomic<std::size_t> connected{0};
  std::atomic<bool> go{false};
  std::chrono::steady_clock::time_point started{};
  std::chrono::steady_clock::time_point until{};
  std::vector<std::thread> threads;
  threads.reserve(drivers);
  for (std::size_t d = 0; d < drivers; ++d) {
    const auto share = static_cast<std::size_t>(
        conns / static_cast<long long>(drivers) +
        (static_cast<long long>(d) < conns % static_cast<long long>(drivers)
             ? 1
             : 0));
    threads.emplace_back([&, d, share] {
      try {
        std::vector<std::unique_ptr<serve::Client>> owned;
        owned.reserve(share);
        try {
          for (std::size_t i = 0; i < share; ++i)
            owned.push_back(std::make_unique<serve::Client>(port, 30000));
        } catch (const serve::SocketError& e) {
          std::fprintf(stderr, "sweep driver connect: %s\n", e.what());
          ++totals[d].errors;
          connected.fetch_add(1);
          return;
        }
        connected.fetch_add(1);
        while (!go.load(std::memory_order_acquire))
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        bench::RequestPicker picker(requests.size(), zipf_s,
                                    seed + 0x51ab * (d + 1));
        while (std::chrono::steady_clock::now() < until) {
          for (auto& client : owned) {
            if (std::chrono::steady_clock::now() >= until) break;
            const std::string& request = requests[picker.next()];
            const auto t0 = std::chrono::steady_clock::now();
            const auto response = client->predict_until_served(
                request, &totals[d].busy_retries);
            const auto t1 = std::chrono::steady_clock::now();
            if (!response.has_value() ||
                response->kind != serve::FrameKind::kPredictReply) {
              ++totals[d].errors;
              continue;
            }
            ++totals[d].ok;
            totals[d].latencies_us.push_back(
                std::chrono::duration<double, std::micro>(t1 - t0).count());
          }
        }
      } catch (const serve::SocketError& e) {
        std::fprintf(stderr, "sweep driver: %s\n", e.what());
        ++totals[d].errors;
      }
    });
  }
  while (connected.load() < drivers)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  started = std::chrono::steady_clock::now();
  until = started + std::chrono::seconds(sweep_seconds);
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  std::vector<double> latencies;
  for (ClientTotals& t : totals) {
    latencies.insert(latencies.end(), t.latencies_us.begin(),
                     t.latencies_us.end());
    point.ok += t.ok;
    point.errors += t.errors;
    point.busy_retries += t.busy_retries;
  }
  std::sort(latencies.begin(), latencies.end());
  point.p50_us = percentile(latencies, 0.50);
  point.p99_us = percentile(latencies, 0.99);
  point.graphs_per_s =
      elapsed_s > 0.0 ? static_cast<double>(point.ok) / elapsed_s : 0.0;
  if (server != nullptr) {
    const serve::ServerStats after = server->stats();
    const std::uint64_t writev = after.writev_calls - before.writev_calls;
    const std::uint64_t frames = after.reply_frames - before.reply_frames;
    point.frames_per_writev =
        writev > 0 ? static_cast<double>(frames) / static_cast<double>(writev)
                   : 0.0;
  }
  return point;
}

/// Best-effort RLIMIT_NOFILE raise so 1024-connection sweeps (two fds per
/// loopback connection when the server is in-process) fit under default
/// shell limits.
void raise_fd_limit(rlim_t want) {
  rlimit rl{};
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0 || rl.rlim_cur >= want) return;
  rlimit raised = rl;
  raised.rlim_cur = std::min<rlim_t>(want, rl.rlim_max);
  ::setrlimit(RLIMIT_NOFILE, &raised);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchConfig config;

  if (const char* dir = option_value(argc, argv, "--emit-fixture"))
    return emit_fixture(dir, config);

  const std::int64_t clients = int_option(argc, argv, "--clients", 4);
  const std::int64_t seconds = int_option(argc, argv, "--seconds", 5);
  const char* fixture_dir = option_value(argc, argv, "--fixture");
  const std::int64_t external_port = int_option(argc, argv, "--port", 0);
  const std::int64_t idle_connections =
      int_option(argc, argv, "--idle-connections", 0);
  const std::int64_t sweep_seconds =
      int_option(argc, argv, "--sweep-seconds", 3);
  std::vector<long long> sweep_counts;
  std::string sweep_descriptor;
  if (const char* list = option_value(argc, argv, "--connections")) {
    sweep_descriptor = list;
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ','))
      if (!item.empty()) sweep_counts.push_back(std::stoll(item));
  }
  {
    long long max_conns = idle_connections + clients;
    for (const long long c : sweep_counts)
      max_conns = std::max(max_conns, c + idle_connections);
    raise_fd_limit(static_cast<rlim_t>(2 * max_conns + 256));
  }
  // --uniform is Zipf with s = 0 — both flags feed the same seeded picker.
  double zipf_s = 0.0;
  if (const char* s = option_value(argc, argv, "--zipf")) zipf_s = std::stod(s);
  for (int a = 1; a < argc; ++a)
    if (std::strcmp(argv[a], "--uniform") == 0) zipf_s = 0.0;

  bench::print_header("paragraph-serve load", config);

  // Request bytes: from an emitted fixture, or the same data in memory.
  std::optional<ServeFixture> fx;
  std::vector<std::string> requests;
  if (fixture_dir != nullptr) {
    requests = read_fixture_requests(fixture_dir);
    if (requests.empty()) {
      std::fprintf(stderr, "no req_*.psample under %s\n", fixture_dir);
      return 1;
    }
  } else {
    fx = build_fixture(config, 8);
    requests = fx->request_bytes;
  }

  // The target: an external daemon, or an in-process server over the
  // fixture model (env knobs PARAGRAPH_SERVE_* still apply).
  std::unique_ptr<serve::Server> server;
  std::uint16_t port = static_cast<std::uint16_t>(external_port);
  if (external_port == 0) {
    if (!fx) fx = build_fixture(config, 1);  // model + scalers only
    server = std::make_unique<serve::Server>(*fx->model, fx->scalers,
                                             serve::serve_config_from_env());
    server->start();
    port = server->port();
  }

  // The idle herd: held open and silent across the baseline AND the sweep.
  // With the reactor these cost per-connection state, not threads; any
  // latency they add to the loaded clients shows up in the numbers below.
  std::vector<serve::Socket> idle_conns;
  idle_conns.reserve(static_cast<std::size_t>(idle_connections));
  for (std::int64_t i = 0; i < idle_connections; ++i)
    idle_conns.push_back(serve::connect_loopback(port));

  const auto started = std::chrono::steady_clock::now();
  const auto until = started + std::chrono::seconds(seconds);
  std::vector<ClientTotals> totals(static_cast<std::size_t>(clients));
  std::vector<std::thread> threads;
  threads.reserve(totals.size());
  for (std::size_t c = 0; c < totals.size(); ++c)
    threads.emplace_back([&, c] {
      // Per-client derived seed: deterministic, distinct streams.
      run_client(port, requests,
                 bench::RequestPicker(requests.size(), zipf_s,
                                      config.seed + 0x9e37 * (c + 1)),
                 until, totals[c]);
    });
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
          .count();

  std::vector<double> latencies;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t busy_retries = 0;
  for (ClientTotals& t : totals) {
    latencies.insert(latencies.end(), t.latencies_us.begin(),
                     t.latencies_us.end());
    ok += t.ok;
    errors += t.errors;
    busy_retries += t.busy_retries;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);
  const double throughput = elapsed_s > 0.0 ? static_cast<double>(ok) / elapsed_s : 0.0;

  std::printf("clients=%lld seconds=%lld target=%s mix=%s(s=%g)\n",
              static_cast<long long>(clients), static_cast<long long>(seconds),
              external_port != 0 ? "external daemon" : "in-process server",
              zipf_s == 0.0 ? "uniform" : "zipf", zipf_s);
  std::printf("requests ok        %llu\n", static_cast<unsigned long long>(ok));
  std::printf("errors             %llu\n",
              static_cast<unsigned long long>(errors));
  std::printf("busy retries       %llu\n",
              static_cast<unsigned long long>(busy_retries));
  std::printf("latency p50        %.1f us\n", p50);
  std::printf("latency p99        %.1f us\n", p99);
  std::printf("sustained          %.1f graphs/s\n", throughput);

  // Connection-count sweep (after the baseline so the 4-client numbers stay
  // comparable across runs). The server keeps running between counts; the
  // per-count reactor counters are deltas.
  std::vector<SweepPoint> sweep;
  sweep.reserve(sweep_counts.size());
  for (const long long count : sweep_counts) {
    const SweepPoint point = run_connection_count(
        port, requests, zipf_s, config.seed, count, sweep_seconds,
        server.get());
    std::printf("sweep c=%-5lld     p50 %.1f us  p99 %.1f us  %.1f graphs/s"
                "  ok %llu  coalesce %.2f frames/write\n",
                point.connections, point.p50_us, point.p99_us,
                point.graphs_per_s,
                static_cast<unsigned long long>(point.ok),
                point.frames_per_writev);
    errors += point.errors;
    sweep.push_back(point);
  }

  serve::ServerStats server_stats;
  if (server != nullptr) {
    server->stop();
    server_stats = server->stats();
    std::printf("server batches     %llu (%.2f graphs/batch)\n",
                static_cast<unsigned long long>(server_stats.batches),
                server_stats.batches > 0
                    ? static_cast<double>(server_stats.requests_ok) /
                          static_cast<double>(server_stats.batches)
                    : 0.0);
    if (server->config().cache)
      std::printf("server cache       %llu hits / %llu misses\n",
                  static_cast<unsigned long long>(server_stats.cache_hits),
                  static_cast<unsigned long long>(server_stats.cache_misses));
  }

  bench::JsonReport report("serve_load");
  report.add("scale", to_string(config.scale));
  report.add("mode", external_port != 0 ? "external" : "in-process");
  report.add("request_mix", zipf_s == 0.0 ? "uniform" : "zipf");
  report.add("zipf_s", zipf_s);
  report.add("clients", static_cast<int>(clients));
  report.add("seconds", static_cast<int>(seconds));
  report.add("requests_ok", static_cast<std::size_t>(ok));
  report.add("errors", static_cast<std::size_t>(errors));
  report.add("busy_retries", static_cast<std::size_t>(busy_retries));
  report.add("latency_p50_us", p50);
  report.add("latency_p99_us", p99);
  report.add("graphs_per_s", throughput);
  report.add("idle_connections", static_cast<int>(idle_connections));
  if (!sweep.empty()) {
    report.add("sweep_connections", sweep_descriptor);
    report.add("sweep_seconds", static_cast<int>(sweep_seconds));
    for (const SweepPoint& point : sweep) {
      const std::string prefix = "c" + std::to_string(point.connections) + "_";
      report.add(prefix + "requests_ok", static_cast<std::size_t>(point.ok));
      report.add(prefix + "p50_us", point.p50_us);
      report.add(prefix + "p99_us", point.p99_us);
      report.add(prefix + "graphs_per_s", point.graphs_per_s);
      report.add(prefix + "frames_per_writev", point.frames_per_writev);
    }
  }
  if (server != nullptr) {
    report.add("reply_frames",
               static_cast<std::size_t>(server_stats.reply_frames));
    report.add("writev_calls",
               static_cast<std::size_t>(server_stats.writev_calls));
    report.add("read_gated", static_cast<std::size_t>(server_stats.read_gated));
    report.add("accepts_dropped",
               static_cast<std::size_t>(server_stats.accepts_dropped));
  }
  if (server != nullptr) {
    report.add("cache_enabled", server->config().cache ? 1 : 0);
    report.add("cache_hits", static_cast<std::size_t>(server_stats.cache_hits));
    report.add("cache_misses",
               static_cast<std::size_t>(server_stats.cache_misses));
  }
  std::string json = bench::json_path_from_args(argc, argv);
  if (json.empty()) json = "BENCH_serve.json";
  if (!report.write(json)) return 1;

  if (errors > 0) {
    std::fprintf(stderr, "FAIL: %llu request errors\n",
                 static_cast<unsigned long long>(errors));
    return 1;
  }
  if (ok == 0) {
    std::fprintf(stderr, "FAIL: no successful requests\n");
    return 1;
  }
  return 0;
}
