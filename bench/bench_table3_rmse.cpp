// Table III: ParaGraph's runtime-prediction error per accelerator
// (RMSE in ms and normalized RMSE).
//
// Paper values: POWER9 4325 ms / 6e-3; V100 280 ms / 9e-3;
//               EPYC 968 ms / 4e-3;   MI50 510 ms / 1e-2.
// Shape to reproduce: normalized RMSE in the 1e-3..1e-2 band on every
// accelerator (CPU *and* GPU), absolute RMSE tracking each platform's
// runtime dispersion.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace pg;
  bench::BenchConfig config;
  bench::print_header("Table III: ParaGraph RMSE per accelerator", config);
  bench::JsonReport report("table3_rmse");
  report.add("scale", to_string(config.scale));

  const char* paper_rmse[4] = {"4325", "280", "968", "510"};
  const char* paper_norm[4] = {"6 x 10^-3", "9 x 10^-3", "4 x 10^-3", "1 x 10^-2"};

  TextTable table({"Platform", "RMSE (ms)", "Norm-RMSE", "paper RMSE (ms)",
                   "paper Norm-RMSE"});
  CsvWriter csv("table3_rmse.csv", {"platform", "rmse_ms", "norm_rmse"});

  int row = 0;
  for (const auto& platform : sim::all_platforms()) {
    const auto run = bench::train_platform(platform, config);
    const double rmse_ms = run.result.final_rmse_us / 1e3;
    table.add_row({platform.name, format_double(rmse_ms, 5),
                   format_sci(run.result.final_norm_rmse, 2), paper_rmse[row],
                   paper_norm[row]});
    csv.add_row({platform.name, format_double(rmse_ms, 8),
                 format_double(run.result.final_norm_rmse, 8)});
    std::string rmse_key = platform.name;
    rmse_key += "_rmse_ms";
    report.add(rmse_key, rmse_ms);
    std::string norm_key = platform.name;
    norm_key += "_norm_rmse";
    report.add(norm_key, run.result.final_norm_rmse);
    ++row;
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("wrote table3_rmse.csv\n");
  if (const std::string json = bench::json_path_from_args(argc, argv);
      !json.empty())
    report.write(json);
  return 0;
}
