// Shared infrastructure for the per-table / per-figure benchmark binaries.
//
// Every bench:
//   * generates the simulated dataset at the scale given by PARAGRAPH_SCALE
//     (smoke | default | full),
//   * trains whatever models the experiment needs (epochs overridable via
//     PARAGRAPH_EPOCHS),
//   * prints the paper-shaped table with the paper's published values
//     alongside, and writes a CSV next to the binary,
//   * optionally emits a machine-readable summary via `--json <path>`
//     (JsonReport + json_path_from_args below).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "compoff/compoff.hpp"
#include "dataset/corpus_cache.hpp"
#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "model/engine.hpp"
#include "model/metrics.hpp"
#include "model/trainer.hpp"
#include "sim/platform.hpp"
#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pg::bench {

struct BenchConfig {
  RunScale scale = run_scale_from_env();
  int epochs = static_cast<int>(env_int("PARAGRAPH_EPOCHS", 60));
  std::size_t hidden_dim =
      static_cast<std::size_t>(env_int("PARAGRAPH_HIDDEN", 24));
  std::uint64_t seed = static_cast<std::uint64_t>(env_int("PARAGRAPH_SEED", 2024));
};

inline void print_header(const std::string& title, const BenchConfig& config) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("scale=%s epochs=%d hidden=%zu seed=%llu\n\n",
              to_string(config.scale), config.epochs, config.hidden_dim,
              static_cast<unsigned long long>(config.seed));
}

/// Returns the path following a `--json` flag in argv, or "" when absent.
inline std::string json_path_from_args(int argc, char** argv) {
  for (int a = 1; a + 1 < argc; ++a)
    if (std::strcmp(argv[a], "--json") == 0) return argv[a + 1];
  return {};
}

/// Flat machine-readable bench summary: string and numeric key/value pairs
/// serialised as one JSON object, insertion-ordered. Numbers are printed
/// with enough digits to round-trip a double.
class JsonReport {
 public:
  explicit JsonReport(std::string bench_name) {
    add("bench", std::move(bench_name));
  }

  void add(const std::string& key, const std::string& value) {
    // Appends rather than operator+ chains: GCC 12 at -O3 emits a bogus
    // -Wrestrict for operator+(const char*, std::string&&) (GCC PR105329).
    std::string quoted = "\"";
    quoted += escaped(value);
    quoted += '"';
    entries_.push_back({key, std::move(quoted)});
  }
  void add(const std::string& key, const char* value) {
    add(key, std::string(value));
  }
  void add(const std::string& key, double value) {
    if (!std::isfinite(value)) {
      // Bare nan/inf is not valid JSON; a diverged run should still parse.
      entries_.push_back({key, "null"});
      return;
    }
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.17g", value);
    entries_.push_back({key, buffer});
  }
  void add(const std::string& key, std::size_t value) {
    entries_.push_back({key, std::to_string(value)});
  }
  void add(const std::string& key, int value) {
    entries_.push_back({key, std::to_string(value)});
  }

  [[nodiscard]] std::string render() const {
    std::string out = "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      out += "  \"";
      out += entries_[i].key;
      out += "\": ";
      out += entries_[i].value;
      out += i + 1 < entries_.size() ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
  }

  /// Writes the report; returns false (with a stderr note) on I/O failure.
  bool write(const std::string& path) const {
    std::ofstream file(path);
    if (!file) {
      std::fprintf(stderr, "failed to open %s for writing\n", path.c_str());
      return false;
    }
    file << render();
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string escaped(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  struct Entry {
    std::string key;
    std::string value;  // pre-serialised
  };
  std::vector<Entry> entries_;
};

/// Seeded request-index picker shared by every serve load mode: draws from
/// a Zipf(s) distribution over `count` requests by inverse-CDF sampling
/// (p_i proportional to 1/(i+1)^s). s = 0 degenerates to the uniform
/// distribution exactly, so --uniform and --zipf run the same code path and
/// differ only in the skew parameter — one seeded generator, no mode drift.
class RequestPicker {
 public:
  RequestPicker(std::size_t count, double skew, std::uint64_t seed)
      : rng_(seed), skew_(skew) {
    cdf_.reserve(count);
    double total = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_.push_back(total);
    }
    for (double& c : cdf_) c /= total;
  }

  std::size_t next() {
    const double u = rng_.uniform();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<std::size_t>(it - cdf_.begin());
  }

  [[nodiscard]] double skew() const { return skew_; }
  /// Request-mix descriptor for bench JSON ("uniform" or "zipf").
  [[nodiscard]] const char* mix_name() const {
    return skew_ == 0.0 ? "uniform" : "zipf";
  }

 private:
  std::vector<double> cdf_;
  Rng rng_;
  double skew_;
};

/// Everything one (platform, representation) training run produces. The
/// trained model is kept so benches can serve further predictions through
/// an InferenceEngine.
struct PlatformRun {
  sim::Platform platform;
  std::vector<dataset::RawDataPoint> points;
  model::SampleSet set;
  model::TrainResult result;
  std::shared_ptr<model::ParaGraphModel> model;
};

/// Generates the platform's dataset, builds samples at `representation`,
/// trains a fresh ParaGraph model, and returns everything. The final
/// validation predictions come from the trainer's own InferenceEngine pass;
/// the fallback below serves them through a fresh engine when training was
/// configured not to produce them.
///
/// When PARAGRAPH_CORPUS_DIR is set, the sample set is loaded from (or, on
/// first run, written to) a .pgds corpus file there instead of re-parsing
/// and re-encoding the whole sweep — byte-exact, so results are unchanged.
inline PlatformRun train_platform(
    const sim::Platform& platform, const BenchConfig& config,
    graph::Representation representation = graph::Representation::kParaGraph,
    const model::TrainConfig* train_override = nullptr) {
  PlatformRun run;
  run.platform = platform;

  dataset::GenerationConfig gen;
  gen.scale = config.scale;
  gen.seed = config.seed;
  run.points = dataset::generate_dataset(platform, gen);

  dataset::SampleBuildConfig build;
  build.representation = representation;
  dataset::CorpusKey key;
  key.platform_name = platform.name;
  key.scale = config.scale;
  key.representation = representation;
  key.seed = config.seed;
  key.log_target = build.log_target;
  run.set = dataset::load_or_build_sample_set(
      env_string("PARAGRAPH_CORPUS_DIR", ""), key, run.points, build);

  model::ModelConfig model_config;
  model_config.hidden_dim = config.hidden_dim;
  run.model = std::make_shared<model::ParaGraphModel>(model_config);

  model::TrainConfig train;
  if (train_override != nullptr) train = *train_override;
  train.epochs = train_override != nullptr ? train_override->epochs : config.epochs;
  run.result = model::train_model(*run.model, run.set, train);

  if (run.result.val_predictions_us.size() != run.set.validation.size()) {
    model::InferenceEngine engine(*run.model);
    run.result.val_predictions_us =
        engine.predict_samples_us(run.set.validation, run.set);
  }
  return run;
}

/// Actual runtimes of the validation split, in microseconds.
inline std::vector<double> validation_actuals(const model::SampleSet& set) {
  std::vector<double> actual;
  actual.reserve(set.validation.size());
  for (const auto& s : set.validation) actual.push_back(s.runtime_us);
  return actual;
}

}  // namespace pg::bench
