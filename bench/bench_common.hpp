// Shared infrastructure for the per-table / per-figure benchmark binaries.
//
// Every bench:
//   * generates the simulated dataset at the scale given by PARAGRAPH_SCALE
//     (smoke | default | full),
//   * trains whatever models the experiment needs (epochs overridable via
//     PARAGRAPH_EPOCHS),
//   * prints the paper-shaped table with the paper's published values
//     alongside, and writes a CSV next to the binary.
#pragma once

#include <cstdio>
#include <string>

#include "compoff/compoff.hpp"
#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "model/metrics.hpp"
#include "model/trainer.hpp"
#include "sim/platform.hpp"
#include "support/csv.hpp"
#include "support/env.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

namespace pg::bench {

struct BenchConfig {
  RunScale scale = run_scale_from_env();
  int epochs = static_cast<int>(env_int("PARAGRAPH_EPOCHS", 60));
  std::size_t hidden_dim =
      static_cast<std::size_t>(env_int("PARAGRAPH_HIDDEN", 24));
  std::uint64_t seed = static_cast<std::uint64_t>(env_int("PARAGRAPH_SEED", 2024));
};

inline void print_header(const std::string& title, const BenchConfig& config) {
  std::printf("=== %s ===\n", title.c_str());
  std::printf("scale=%s epochs=%d hidden=%zu seed=%llu\n\n",
              to_string(config.scale), config.epochs, config.hidden_dim,
              static_cast<unsigned long long>(config.seed));
}

/// Everything one (platform, representation) training run produces.
struct PlatformRun {
  sim::Platform platform;
  std::vector<dataset::RawDataPoint> points;
  model::SampleSet set;
  model::TrainResult result;
};

/// Generates the platform's dataset, builds samples at `representation`,
/// trains a fresh ParaGraph model, and returns everything.
inline PlatformRun train_platform(
    const sim::Platform& platform, const BenchConfig& config,
    graph::Representation representation = graph::Representation::kParaGraph,
    const model::TrainConfig* train_override = nullptr) {
  PlatformRun run;
  run.platform = platform;

  dataset::GenerationConfig gen;
  gen.scale = config.scale;
  gen.seed = config.seed;
  run.points = dataset::generate_dataset(platform, gen);

  dataset::SampleBuildConfig build;
  build.representation = representation;
  run.set = dataset::build_sample_set(run.points, build);

  model::ModelConfig model_config;
  model_config.hidden_dim = config.hidden_dim;
  model::ParaGraphModel model(model_config);

  model::TrainConfig train;
  if (train_override != nullptr) train = *train_override;
  train.epochs = train_override != nullptr ? train_override->epochs : config.epochs;
  run.result = model::train_model(model, run.set, train);
  return run;
}

/// Actual runtimes of the validation split, in microseconds.
inline std::vector<double> validation_actuals(const model::SampleSet& set) {
  std::vector<double> actual;
  actual.reserve(set.validation.size());
  for (const auto& s : set.validation) actual.push_back(s.runtime_us);
  return actual;
}

}  // namespace pg::bench
