// Thread-scaling bench for the fused InferenceEngine: sweeps OpenMP thread
// counts (1..omp_get_max_threads()) x chunk policy (cost | fixed) x
// graph-size skew (uniform | zipf | one_giant) over synthetic encoded
// graphs, and writes BENCH_scaling.json (flags: --json PATH, --threads N to
// cap the sweep, --emit-fixture for the quick CI smoke that still gates on
// parity). PARAGRAPH_SCALE=smoke shrinks batches and iteration counts.
//
// Every configuration's predictions are compared bitwise against the
// 1-thread cost-policy reference for its mix — the bench doubles as an
// end-to-end determinism gate across thread counts and chunk policies (the
// unit-level version lives in tests/schedule_test.cpp). Any mismatch makes
// the bench exit non-zero.
//
// Headline derived metrics:
//   * uniform_efficiency_at_cores — batch-256 throughput at the machine's
//     core count divided by (cores x 1-thread throughput); 1.0 = linear.
//   * one_giant_speedup — 1-thread time / best time for a batch dominated
//     by a single ~10k-node graph, i.e. what intra-batch parallelism buys
//     where chunk fan-out alone cannot help.
#include <omp.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "model/encoding.hpp"
#include "model/engine.hpp"
#include "model/paragraph_model.hpp"
#include "model/schedule.hpp"
#include "nn/relational_graph.hpp"

namespace {

using pg::model::EncodedGraph;
using pg::model::InferenceEngine;
using pg::model::ModelConfig;
using pg::model::ParaGraphModel;

/// Deterministic 64-bit mix (splitmix64) — the bench must produce the same
/// graphs on every run and machine.
std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// A synthetic encoded graph: one-hot node features plus literal column,
/// and per-relation edges with realistic shape — a tree-like "child"
/// relation covering every node, a sequential chain, and sparse random
/// relations — so the cost model sees corpus-like node/edge ratios.
EncodedGraph make_graph(std::size_t nodes, std::uint64_t seed) {
  EncodedGraph g;
  const std::size_t feat = pg::model::kNodeFeatureDim;
  g.features = pg::tensor::Matrix(nodes, feat);
  std::uint64_t rng = seed;
  for (std::size_t i = 0; i < nodes; ++i) {
    auto row = g.features.row_span(i);
    row[mix64(rng) % (feat - 1)] = 1.0f;
    row[feat - 1] = static_cast<float>((mix64(rng) % 7)) * 0.25f;
  }

  const std::size_t num_relations = ModelConfig{}.num_relations;
  g.relations.num_nodes = nodes;
  g.relations.relations.resize(num_relations);
  std::vector<pg::nn::RelEdge> edges;
  for (std::size_t r = 0; r < num_relations; ++r) {
    edges.clear();
    if (r == 0) {
      // Tree: every node but the root points at a parent (gated).
      for (std::uint32_t i = 1; i < nodes; ++i)
        edges.push_back({i, static_cast<std::uint32_t>(i / 2),
                         0.25f + 0.5f * static_cast<float>(mix64(rng) % 3)});
    } else if (r == 1) {
      // Sequential chain.
      for (std::uint32_t i = 0; i + 1 < nodes; ++i)
        edges.push_back({i, i + 1, 1.0f});
    } else {
      // Sparse random relation touching ~a quarter of the nodes.
      const std::size_t count = nodes / 4;
      for (std::size_t e = 0; e < count; ++e) {
        const auto src = static_cast<std::uint32_t>(mix64(rng) % nodes);
        const auto dst = static_cast<std::uint32_t>(mix64(rng) % nodes);
        edges.push_back({src, dst, 1.0f});
      }
    }
    g.relations.relations[r] = pg::nn::RelationEdges::from_edges(edges);
  }
  return g;
}

struct Mix {
  std::string name;
  std::vector<EncodedGraph> graphs;
  std::vector<std::array<float, 2>> aux;
  std::uint64_t total_cost = 0;
};

Mix make_mix(const std::string& name, const std::vector<std::size_t>& sizes) {
  Mix mix;
  mix.name = name;
  std::uint64_t rng = 0x5ca1ab1e;
  mix.graphs.reserve(sizes.size());
  mix.aux.reserve(sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    mix.graphs.push_back(make_graph(sizes[i], mix64(rng)));
    const float t =
        static_cast<float>(i + 1) / static_cast<float>(sizes.size());
    mix.aux.push_back({t, 1.0f - t});
    mix.total_cost += pg::model::schedule::graph_cost(mix.graphs.back());
  }
  return mix;
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

const char* option_value(int argc, char** argv, const char* flag) {
  for (int a = 1; a + 1 < argc; ++a)
    if (std::strcmp(argv[a], flag) == 0) return argv[a + 1];
  return nullptr;
}

bool has_flag(int argc, char** argv, const char* flag) {
  for (int a = 1; a < argc; ++a)
    if (std::strcmp(argv[a], flag) == 0) return true;
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = pg::run_scale_from_env() == pg::RunScale::kSmoke ||
                     has_flag(argc, argv, "--emit-fixture");
  const std::string json_path = pg::bench::json_path_from_args(argc, argv);

  int max_threads = omp_get_max_threads();
  if (const char* cap = option_value(argc, argv, "--threads"))
    max_threads = std::max(1, std::min(max_threads, std::atoi(cap)));

  // Batch shapes. The three mixes stress different scheduler behaviours:
  // uniform (chunk fan-out), zipf (cost balancing under skew), one_giant
  // (intra-batch parallelism — chunking alone cannot split one graph).
  const std::size_t batch = smoke ? 64 : 256;
  const std::size_t uniform_nodes = 99;
  const std::size_t giant_nodes = smoke ? 4096 : 10000;
  const std::size_t small_nodes = 50;
  const int reps = smoke ? 1 : 3;
  const int iters = smoke ? 1 : 5;

  std::vector<Mix> mixes;
  {
    std::vector<std::size_t> uniform(batch, uniform_nodes);
    mixes.push_back(make_mix("uniform", uniform));

    std::vector<std::size_t> zipf;
    const std::size_t zipf_max = smoke ? 1000 : 2000;
    for (std::size_t i = 0; i < batch; ++i)
      zipf.push_back(std::max<std::size_t>(30, zipf_max / (i + 1)));
    mixes.push_back(make_mix("zipf", zipf));

    std::vector<std::size_t> giant(batch, small_nodes);
    giant[0] = giant_nodes;
    mixes.push_back(make_mix("one_giant", giant));
  }

  ParaGraphModel model(ModelConfig{});
  pg::bench::JsonReport report("bench_thread_scaling");
  report.add("scale", smoke ? "smoke" : "default");
  report.add("machine_threads", static_cast<std::size_t>(max_threads));
  report.add("batch", batch);
  report.add("giant_nodes", giant_nodes);

  std::printf("=== thread scaling: fused engine ===\n");
  std::printf("threads 1..%d, %zu-graph batches, policies cost|fixed\n\n",
              max_threads, batch);

  const char* saved_sched = std::getenv("PARAGRAPH_SCHED");
  const std::string saved_sched_value = saved_sched ? saved_sched : "";

  // Per-mix bitwise reference: 1 thread, cost policy.
  std::vector<std::vector<double>> reference(mixes.size());
  bool parity_ok = true;

  // throughputs[mix][policy][threads] in graphs/s (median of reps).
  const char* policies[2] = {"cost", "fixed"};
  std::vector<std::vector<std::vector<double>>> tput(
      mixes.size(),
      std::vector<std::vector<double>>(
          2, std::vector<double>(static_cast<std::size_t>(max_threads) + 1,
                                 0.0)));
  pg::model::ScheduleStats giant_cost_stats{};

  for (std::size_t m = 0; m < mixes.size(); ++m) {
    const Mix& mix = mixes[m];
    std::vector<double> out(mix.graphs.size());
    for (int p = 0; p < 2; ++p) {
      ::setenv("PARAGRAPH_SCHED", policies[p], 1);
      for (int t = 1; t <= max_threads; ++t) {
        omp_set_num_threads(t);
        InferenceEngine engine(model);
        std::vector<double> times;
        engine.predict_batch(mix.graphs, mix.aux, out);  // warm the arenas
        for (int r = 0; r < reps; ++r) {
          const double t0 = now_s();
          for (int it = 0; it < iters; ++it)
            engine.predict_batch(mix.graphs, mix.aux, out);
          times.push_back((now_s() - t0) / iters);
        }
        std::sort(times.begin(), times.end());
        const double median = times[times.size() / 2];
        tput[m][static_cast<std::size_t>(p)][static_cast<std::size_t>(t)] =
            static_cast<double>(mix.graphs.size()) / median;

        if (p == 0 && t == 1) {
          reference[m] = out;
        } else if (out != reference[m]) {
          parity_ok = false;
          std::fprintf(stderr,
                       "PARITY MISMATCH: mix=%s policy=%s threads=%d\n",
                       mix.name.c_str(), policies[p], t);
        }
        if (m == 2 && p == 0 && t == max_threads)
          giant_cost_stats = engine.schedule_stats();

        const std::string key = mix.name + "_" + policies[p] + "_t" +
                                std::to_string(t) + "_graphs_per_s";
        report.add(key, tput[m][static_cast<std::size_t>(p)]
                            [static_cast<std::size_t>(t)]);
        std::printf("%-10s %-5s t=%d: %10.1f graphs/s\n", mix.name.c_str(),
                    policies[p], t,
                    tput[m][static_cast<std::size_t>(p)]
                        [static_cast<std::size_t>(t)]);
      }
    }
  }

  // Restore the inherited scheduler policy (or clear our override).
  if (saved_sched)
    ::setenv("PARAGRAPH_SCHED", saved_sched_value.c_str(), 1);
  else
    ::unsetenv("PARAGRAPH_SCHED");
  omp_set_num_threads(max_threads);

  const auto tmax = static_cast<std::size_t>(max_threads);
  const double uniform_eff =
      tput[0][0][tmax] /
      (static_cast<double>(max_threads) * tput[0][0][1]);
  const double giant_speedup = tput[2][0][tmax] / tput[2][0][1];
  const double zipf_cost_vs_fixed = tput[1][0][tmax] / tput[1][1][tmax];
  report.add("uniform_efficiency_at_cores", uniform_eff);
  report.add("one_giant_speedup", giant_speedup);
  report.add("zipf_cost_over_fixed", zipf_cost_vs_fixed);
  report.add("giant_chunks", giant_cost_stats.chunks);
  report.add("giant_intra_chunks", giant_cost_stats.intra_chunks);
  report.add("giant_rows_per_chunk",
             giant_cost_stats.chunks > 0
                 ? static_cast<double>(giant_cost_stats.rows) /
                       static_cast<double>(giant_cost_stats.chunks)
                 : 0.0);
  report.add("giant_last_imbalance", giant_cost_stats.last_imbalance);
  report.add("parity_ok", parity_ok ? 1 : 0);

  std::printf("\nuniform efficiency at %d threads: %.3f\n", max_threads,
              uniform_eff);
  std::printf("one-giant speedup at %d threads:  %.3fx\n", max_threads,
              giant_speedup);
  std::printf("zipf cost-policy over fixed:      %.3fx\n",
              zipf_cost_vs_fixed);

  if (!json_path.empty() && !report.write(json_path)) return 1;
  if (!parity_ok) {
    std::fprintf(stderr,
                 "bench_thread_scaling: bitwise parity FAILED across thread "
                 "counts/policies\n");
    return 1;
  }
  std::printf("parity: all configurations bitwise-equal to 1-thread cost "
              "reference\n");
  return 0;
}
