// offload_advisor: the end-to-end use case the paper builds ParaGraph for —
// an OpenMP-Advisor-style tool that picks the best variant for a kernel by
// *predicting* each variant's runtime with the trained GNN (no execution of
// the candidate variants at decision time; ParaGraph is an offline model).
//
//   1. Train a ParaGraph model per device on simulated measurements.
//   2. For a target kernel, enumerate the applicable variants.
//   3. Predict every variant's runtime from its graph alone, batched
//      through the InferenceEngine (one call per device model).
//   4. Recommend the fastest (and show the simulator's ground truth).
//
// Usage: ./offload_advisor [kernel-name] [--similar K] (default: matmul)
//
// --similar K additionally embeds every candidate with the device model and
// reports the K candidates nearest the recommendation in embedding space
// (ann::AnnIndex over the pooled embeddings) — "what else does the model
// consider structurally close to the winner".
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ann/ann_index.hpp"
#include "dataset/corpus_cache.hpp"
#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "frontend/parser.hpp"
#include "model/engine.hpp"
#include "model/trainer.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pg;

  std::string kernel_name = "matmul";
  std::size_t similar_k = 0;
  for (int a = 1; a < argc; ++a) {
    if (std::string(argv[a]) == "--similar" && a + 1 < argc)
      similar_k = static_cast<std::size_t>(std::atoll(argv[++a]));
    else
      kernel_name = argv[a];
  }
  const dataset::KernelSpec* spec = nullptr;
  for (const auto& s : dataset::benchmark_suite())
    if (s.kernel == kernel_name) spec = &s;
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown kernel '%s'\n", kernel_name.c_str());
    return 1;
  }
  const dataset::SizePoint sizes = spec->default_sizes[spec->default_sizes.size() / 2];

  // Candidate executions: every applicable variant on CPU and GPU of the
  // Summit-like cluster.
  struct Candidate {
    const sim::Platform platform;
    dataset::Variant variant;
    std::int64_t teams, threads;
  };
  std::vector<Candidate> candidates;
  const sim::Platform cpu = sim::summit_power9();
  const sim::Platform gpu = sim::summit_v100();
  for (auto v : dataset::applicable_variants(*spec, /*gpu_platform=*/false))
    candidates.push_back({cpu, v, 1, cpu.cores});
  for (auto v : dataset::applicable_variants(*spec, /*gpu_platform=*/true))
    candidates.push_back({gpu, v, 256, 256});

  // Train one model per device (smoke scale: this is a demo, not the bench).
  // The advisor needs to *rank* candidates spanning orders of magnitude, so
  // it trains on log-runtime targets (see bench_advisor_selection for the
  // quantitative comparison of the two target domains).
  std::printf("Training ParaGraph models for %s and %s ...\n\n",
              cpu.name.c_str(), gpu.name.c_str());
  dataset::GenerationConfig gen;
  gen.scale = RunScale::kSmoke;
  model::TrainConfig train_config;
  train_config.epochs = 60;

  auto train_for = [&](const sim::Platform& platform) {
    const auto points = dataset::generate_dataset(platform, gen);
    dataset::SampleBuildConfig build;
    build.log_target = true;
    // Load-from-corpus path: with PARAGRAPH_CORPUS_DIR set, later runs skip
    // the per-point parse/build/encode entirely.
    dataset::CorpusKey key;
    key.platform_name = platform.name;
    key.scale = gen.scale;
    key.seed = gen.seed;
    key.log_target = build.log_target;
    auto set = std::make_shared<model::SampleSet>(
        dataset::load_or_build_sample_set(env_string("PARAGRAPH_CORPUS_DIR", ""),
                                          key, points, build));
    auto m = std::make_shared<model::ParaGraphModel>(model::ModelConfig{});
    (void)model::train_model(*m, *set, train_config);
    return std::pair{m, set};
  };
  auto [cpu_model, cpu_set] = train_for(cpu);
  auto [gpu_model, gpu_set] = train_for(gpu);

  // Encode every candidate, then rank the whole slate with one batched
  // engine call per device — the serving shape the engine is built for.
  sim::SimOptions noise_free;
  noise_free.noise_sigma = 0.0;

  std::vector<model::EncodedGraph> cpu_graphs, gpu_graphs;
  std::vector<std::array<float, 2>> cpu_aux, gpu_aux;
  std::vector<double> simulated(candidates.size());
  std::vector<std::size_t> batch_index(candidates.size());

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    const bool on_gpu = c.platform.kind == sim::DeviceKind::kGpu;
    const auto& set = on_gpu ? *gpu_set : *cpu_set;

    dataset::RawDataPoint point;
    point.variant = std::string(dataset::variant_name(c.variant));
    point.num_teams = c.teams;
    point.num_threads = c.threads;
    point.source =
        dataset::instantiate_source(*spec, c.variant, sizes, c.teams, c.threads);

    const auto pgraph =
        dataset::build_point_graph(point, graph::Representation::kParaGraph);
    auto& graphs = on_gpu ? gpu_graphs : cpu_graphs;
    auto& aux = on_gpu ? gpu_aux : cpu_aux;
    batch_index[i] = graphs.size();
    graphs.push_back(model::encode_graph(pgraph, set.child_weight_scale));
    aux.push_back({static_cast<float>(set.teams_scaler.transform(double(c.teams))),
                   static_cast<float>(set.threads_scaler.transform(double(c.threads)))});

    const auto parsed = frontend::parse_source(point.source);
    const auto profile = sim::profile_kernel(parsed.root());
    simulated[i] = sim::simulate_runtime_us(profile, c.platform, noise_free);
  }

  model::InferenceEngine cpu_engine(*cpu_model);
  model::InferenceEngine gpu_engine(*gpu_model);
  std::vector<double> cpu_pred(cpu_graphs.size()), gpu_pred(gpu_graphs.size());
  cpu_engine.predict_batch(cpu_graphs, cpu_aux, cpu_pred);
  gpu_engine.predict_batch(gpu_graphs, gpu_aux, gpu_pred);

  TextTable table({"Device", "Variant", "Predicted (ms)", "Simulated (ms)"});
  double best_pred = 1e300;
  std::string best_label;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Candidate& c = candidates[i];
    const bool on_gpu = c.platform.kind == sim::DeviceKind::kGpu;
    const auto& set = on_gpu ? *gpu_set : *cpu_set;
    const double scaled =
        on_gpu ? gpu_pred[batch_index[i]] : cpu_pred[batch_index[i]];
    const double predicted_us = set.from_target(scaled);

    const std::string label =
        c.platform.name + " / " + std::string(dataset::variant_name(c.variant));
    if (predicted_us < best_pred) {
      best_pred = predicted_us;
      best_label = label;
      best_i = i;
    }
    table.add_row({c.platform.name, std::string(dataset::variant_name(c.variant)),
                   format_double(predicted_us / 1e3, 4),
                   format_double(simulated[i] / 1e3, 4)});
  }

  std::printf("== Advisor: %s, sizes mid-sweep ==\n%s\n", kernel_name.c_str(),
              table.render().c_str());
  std::printf("Recommendation: %s (predicted %.3f ms)\n", best_label.c_str(),
              best_pred / 1e3);

  if (similar_k > 0) {
    // Embeddings from different device models live in different spaces, so
    // the similarity slate is the winner's device only.
    const bool on_gpu = candidates[best_i].platform.kind == sim::DeviceKind::kGpu;
    auto& engine = on_gpu ? gpu_engine : cpu_engine;
    const auto& graphs = on_gpu ? gpu_graphs : cpu_graphs;
    std::vector<std::size_t> owner;  // device batch position -> candidate
    owner.resize(graphs.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const bool g = candidates[i].platform.kind == sim::DeviceKind::kGpu;
      if (g == on_gpu) owner[batch_index[i]] = i;
    }

    tensor::Matrix embeddings;
    engine.embed_batch(graphs, embeddings);
    ann::AnnConfig ann_config;
    ann_config.k = std::min(similar_k, embeddings.rows() - 1);
    const ann::AnnIndex index =
        ann::AnnIndex::build(embeddings, ann_config, /*fingerprint=*/0);
    const auto hits = index.brute_force(embeddings.row_span(batch_index[best_i]),
                                        similar_k + 1);

    std::printf("\n%zu most similar candidates (embedding space, %s):\n",
                similar_k, candidates[best_i].platform.name.c_str());
    std::size_t shown = 0;
    for (const ann::Neighbor& n : hits) {
      if (n.index == batch_index[best_i]) continue;  // the winner itself
      const Candidate& c = candidates[owner[n.index]];
      std::printf("  %-24s L2^2 = %.6g\n",
                  std::string(dataset::variant_name(c.variant)).c_str(),
                  static_cast<double>(n.distance));
      if (++shown == similar_k) break;
    }
  }
  return 0;
}
