// variant_explorer: show what the variant generator produces for a kernel
// and how the simulated runtime responds to the transformation and launch
// configuration — the paper's motivating "which variant should I pick?"
// question, answered here with the simulator's ground truth.
//
// With --predict, additionally trains a smoke-scale ParaGraph model per
// device class and appends the model's batched predictions (via the
// InferenceEngine) next to the simulator's ground truth.
//
// Usage: ./variant_explorer [kernel-name] [--predict]   (default: matmul)
//        ./variant_explorer --list
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "dataset/corpus_cache.hpp"
#include "dataset/generator.hpp"
#include "dataset/kernel_spec.hpp"
#include "dataset/sample_builder.hpp"
#include "dataset/variants.hpp"
#include "frontend/parser.hpp"
#include "model/engine.hpp"
#include "model/trainer.hpp"
#include "sim/kernel_profile.hpp"
#include "sim/platform.hpp"
#include "sim/runtime_simulator.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pg;

  std::string kernel_name = "matmul";
  bool with_predictions = false;
  for (int a = 1; a < argc; ++a) {
    if (std::strcmp(argv[a], "--list") == 0) {
      std::printf("Available kernels (paper Table I):\n");
      for (const auto& spec : dataset::benchmark_suite())
        std::printf("  %-16s (%s, %s)\n", spec.kernel.c_str(), spec.app.c_str(),
                    spec.domain.c_str());
      return 0;
    }
    if (std::strcmp(argv[a], "--predict") == 0) {
      with_predictions = true;
      continue;
    }
    kernel_name = argv[a];
  }

  const dataset::KernelSpec* spec = nullptr;
  for (const auto& s : dataset::benchmark_suite())
    if (s.kernel == kernel_name) spec = &s;
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown kernel '%s' (try --list)\n",
                 kernel_name.c_str());
    return 1;
  }

  const dataset::SizePoint sizes = spec->default_sizes[spec->default_sizes.size() / 2];
  std::string size_str;
  for (const auto& [k, v] : sizes) size_str += k + "=" + std::to_string(v) + " ";
  std::printf("Kernel %s (%s), sizes: %s\n\n", spec->kernel.c_str(),
              spec->app.c_str(), size_str.c_str());

  // Show one instantiated source.
  std::printf("== gpu_mem variant source ==\n%s\n",
              spec->collapsible
                  ? dataset::instantiate_source(*spec, dataset::Variant::kGpuCollapseMem,
                                                sizes, 256, 256)
                        .c_str()
                  : dataset::instantiate_source(*spec, dataset::Variant::kGpuMem,
                                                sizes, 256, 256)
                        .c_str());

  // With --predict: train one smoke-scale model per device class, then rank
  // every variant row with a single batched engine call per model.
  std::shared_ptr<model::ParaGraphModel> cpu_model, gpu_model;
  std::shared_ptr<model::SampleSet> cpu_set, gpu_set;
  if (with_predictions) {
    const sim::Platform cpu_platform = sim::summit_power9();
    const sim::Platform gpu_platform = sim::summit_v100();
    std::printf("Training smoke-scale ParaGraph models for %s and %s ...\n\n",
                cpu_platform.name.c_str(), gpu_platform.name.c_str());
    dataset::GenerationConfig gen;
    gen.scale = RunScale::kSmoke;
    model::TrainConfig train_config;
    train_config.epochs = 30;
    auto train_for = [&](const sim::Platform& platform) {
      const auto points = dataset::generate_dataset(platform, gen);
      dataset::SampleBuildConfig build;
      build.log_target = true;
      // Load-from-corpus path (see dataset/corpus_cache.hpp).
      dataset::CorpusKey key;
      key.platform_name = platform.name;
      key.scale = gen.scale;
      key.seed = gen.seed;
      key.log_target = build.log_target;
      auto set = std::make_shared<model::SampleSet>(
          dataset::load_or_build_sample_set(
              env_string("PARAGRAPH_CORPUS_DIR", ""), key, points, build));
      auto m = std::make_shared<model::ParaGraphModel>(model::ModelConfig{});
      (void)model::train_model(*m, *set, train_config);
      return std::pair{m, set};
    };
    std::tie(cpu_model, cpu_set) = train_for(cpu_platform);
    std::tie(gpu_model, gpu_set) = train_for(gpu_platform);
  }

  // Sweep variants across the four platforms.
  std::vector<std::string> header = {"Variant", "Config", "POWER9 (ms)",
                                     "V100 (ms)", "EPYC (ms)", "MI50 (ms)"};
  if (with_predictions) {
    header.push_back("P9 pred (ms)");
    header.push_back("V100 pred (ms)");
  }
  TextTable table(header);
  const auto platforms = sim::all_platforms();
  sim::SimOptions noise_free;
  noise_free.noise_sigma = 0.0;

  struct Row {
    bool gpu = false;
    std::vector<std::string> cells;
  };
  std::vector<Row> rows;
  std::vector<model::EncodedGraph> cpu_graphs, gpu_graphs;
  std::vector<std::array<float, 2>> cpu_aux, gpu_aux;

  struct Config { std::int64_t teams, threads; };
  for (const auto variant :
       {dataset::Variant::kCpu, dataset::Variant::kCpuCollapse,
        dataset::Variant::kGpu, dataset::Variant::kGpuCollapse,
        dataset::Variant::kGpuMem, dataset::Variant::kGpuCollapseMem}) {
    if (dataset::variant_has_collapse(variant) && !spec->collapsible) continue;
    const bool gpu = dataset::variant_is_gpu(variant);
    const Config config = gpu ? Config{256, 256} : Config{1, 16};

    const std::string source = dataset::instantiate_source(
        *spec, variant, sizes, config.teams, config.threads);
    const auto parsed = frontend::parse_source(source);
    if (!parsed.ok()) {
      std::fprintf(stderr, "internal error: variant failed to parse\n");
      return 1;
    }
    const sim::KernelProfile profile = sim::profile_kernel(parsed.root());

    Row row;
    row.gpu = gpu;
    row.cells.push_back(std::string(dataset::variant_name(variant)));
    row.cells.push_back(gpu ? "teams=256 thr=256" : "threads=16");
    for (const auto& platform : platforms) {
      const bool platform_gpu = platform.kind == sim::DeviceKind::kGpu;
      if (platform_gpu != gpu) {
        row.cells.push_back("-");
        continue;
      }
      const double us = sim::simulate_runtime_us(profile, platform, noise_free);
      row.cells.push_back(format_double(us / 1e3, 4));
    }

    if (with_predictions) {
      const auto& set = gpu ? *gpu_set : *cpu_set;
      dataset::RawDataPoint point;
      point.variant = std::string(dataset::variant_name(variant));
      point.num_teams = config.teams;
      point.num_threads = config.threads;
      point.source = source;
      const auto pgraph =
          dataset::build_point_graph(point, graph::Representation::kParaGraph);
      auto& graphs = gpu ? gpu_graphs : cpu_graphs;
      auto& aux = gpu ? gpu_aux : cpu_aux;
      graphs.push_back(model::encode_graph(pgraph, set.child_weight_scale));
      aux.push_back(
          {static_cast<float>(set.teams_scaler.transform(double(config.teams))),
           static_cast<float>(
               set.threads_scaler.transform(double(config.threads)))});
    }
    rows.push_back(std::move(row));
  }

  if (with_predictions) {
    model::InferenceEngine cpu_engine(*cpu_model);
    model::InferenceEngine gpu_engine(*gpu_model);
    std::vector<double> cpu_pred(cpu_graphs.size()), gpu_pred(gpu_graphs.size());
    cpu_engine.predict_batch(cpu_graphs, cpu_aux, cpu_pred);
    gpu_engine.predict_batch(gpu_graphs, gpu_aux, gpu_pred);
    std::size_t cpu_i = 0, gpu_i = 0;
    for (Row& row : rows) {
      const double us = row.gpu ? gpu_set->from_target(gpu_pred[gpu_i++])
                                : cpu_set->from_target(cpu_pred[cpu_i++]);
      row.cells.push_back(row.gpu ? "-" : format_double(us / 1e3, 4));
      row.cells.push_back(row.gpu ? format_double(us / 1e3, 4) : "-");
    }
  }

  for (const Row& row : rows) table.add_row(row.cells);
  std::printf("== Simulated runtime by variant ==\n%s", table.render().c_str());
  std::printf("\n(cpu variants run on the CPU platforms, gpu variants on the "
              "GPUs; '-' = not applicable)\n");
  return 0;
}
