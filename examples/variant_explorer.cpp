// variant_explorer: show what the variant generator produces for a kernel
// and how the simulated runtime responds to the transformation and launch
// configuration — the paper's motivating "which variant should I pick?"
// question, answered here with the simulator's ground truth.
//
// Usage: ./variant_explorer [kernel-name]   (default: matmul)
//        ./variant_explorer --list
#include <cstdio>
#include <cstring>
#include <string>

#include "dataset/kernel_spec.hpp"
#include "dataset/variants.hpp"
#include "frontend/parser.hpp"
#include "sim/kernel_profile.hpp"
#include "sim/platform.hpp"
#include "sim/runtime_simulator.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace pg;

  std::string kernel_name = "matmul";
  if (argc > 1) {
    if (std::strcmp(argv[1], "--list") == 0) {
      std::printf("Available kernels (paper Table I):\n");
      for (const auto& spec : dataset::benchmark_suite())
        std::printf("  %-16s (%s, %s)\n", spec.kernel.c_str(), spec.app.c_str(),
                    spec.domain.c_str());
      return 0;
    }
    kernel_name = argv[1];
  }

  const dataset::KernelSpec* spec = nullptr;
  for (const auto& s : dataset::benchmark_suite())
    if (s.kernel == kernel_name) spec = &s;
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown kernel '%s' (try --list)\n",
                 kernel_name.c_str());
    return 1;
  }

  const dataset::SizePoint sizes = spec->default_sizes[spec->default_sizes.size() / 2];
  std::string size_str;
  for (const auto& [k, v] : sizes) size_str += k + "=" + std::to_string(v) + " ";
  std::printf("Kernel %s (%s), sizes: %s\n\n", spec->kernel.c_str(),
              spec->app.c_str(), size_str.c_str());

  // Show one instantiated source.
  std::printf("== gpu_mem variant source ==\n%s\n",
              spec->collapsible
                  ? dataset::instantiate_source(*spec, dataset::Variant::kGpuCollapseMem,
                                                sizes, 256, 256)
                        .c_str()
                  : dataset::instantiate_source(*spec, dataset::Variant::kGpuMem,
                                                sizes, 256, 256)
                        .c_str());

  // Sweep variants across the four platforms.
  TextTable table({"Variant", "Config", "POWER9 (ms)", "V100 (ms)",
                   "EPYC (ms)", "MI50 (ms)"});
  const auto platforms = sim::all_platforms();
  sim::SimOptions noise_free;
  noise_free.noise_sigma = 0.0;

  struct Config { std::int64_t teams, threads; };
  for (const auto variant :
       {dataset::Variant::kCpu, dataset::Variant::kCpuCollapse,
        dataset::Variant::kGpu, dataset::Variant::kGpuCollapse,
        dataset::Variant::kGpuMem, dataset::Variant::kGpuCollapseMem}) {
    if (dataset::variant_has_collapse(variant) && !spec->collapsible) continue;
    const bool gpu = dataset::variant_is_gpu(variant);
    const Config config = gpu ? Config{256, 256} : Config{1, 16};

    const std::string source = dataset::instantiate_source(
        *spec, variant, sizes, config.teams, config.threads);
    const auto parsed = frontend::parse_source(source);
    if (!parsed.ok()) {
      std::fprintf(stderr, "internal error: variant failed to parse\n");
      return 1;
    }
    const sim::KernelProfile profile = sim::profile_kernel(parsed.root());

    std::vector<std::string> row;
    row.push_back(std::string(dataset::variant_name(variant)));
    row.push_back(gpu ? "teams=256 thr=256" : "threads=16");
    for (const auto& platform : platforms) {
      const bool platform_gpu = platform.kind == sim::DeviceKind::kGpu;
      if (platform_gpu != gpu) {
        row.push_back("-");
        continue;
      }
      const double us = sim::simulate_runtime_us(profile, platform, noise_free);
      row.push_back(format_double(us / 1e3, 4));
    }
    table.add_row(row);
  }
  std::printf("== Simulated runtime by variant ==\n%s", table.render().c_str());
  std::printf("\n(cpu variants run on the CPU platforms, gpu variants on the "
              "GPUs; '-' = not applicable)\n");
  return 0;
}
