// graph_to_dot: parse a C/OpenMP source file, dump its AST, and emit the
// ParaGraph as Graphviz DOT (colour-coded edge relations, Child weights as
// labels — the same rendering as the paper's Figure 2).
//
// Usage: ./graph_to_dot [file.c] [--raw|--augmented|--paragraph]
//                       [--workers P] [--out graph.dot]
// With no file argument a built-in demo kernel (loop + branch) is used.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "frontend/ast_dump.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"

namespace {

constexpr const char* kDemoKernel = R"(
double data[4096];
double out[4096];

void demo(void) {
  #pragma omp parallel for num_threads(4) schedule(static)
  for (int i = 0; i < 4096; i++) {
    if (data[i] > 0.5) {
      out[i] = data[i] * 2.0;
    } else {
      out[i] = 0.0;
    }
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace pg;

  std::string source = kDemoKernel;
  std::string out_path = "graph.dot";
  graph::BuildOptions options;
  options.parallel_workers = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--raw") options.representation = graph::Representation::kRawAst;
    else if (arg == "--augmented")
      options.representation = graph::Representation::kAugmentedAst;
    else if (arg == "--paragraph")
      options.representation = graph::Representation::kParaGraph;
    else if (arg == "--workers" && i + 1 < argc)
      options.parallel_workers = std::atoll(argv[++i]);
    else if (arg == "--out" && i + 1 < argc)
      out_path = argv[++i];
    else {
      std::ifstream in(arg);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", arg.c_str());
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
    }
  }

  const frontend::ParseResult parsed = frontend::parse_source(source);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed:\n%s\n",
                 parsed.diagnostics.summary().c_str());
    return 1;
  }

  std::printf("== AST ==\n%s\n", frontend::dump_ast(parsed.root()).c_str());

  const graph::ProgramGraph pgraph = graph::build_graph(parsed.root(), options);
  std::printf("== %s: %zu nodes, %zu edges, max Child weight %.2f ==\n",
              std::string(graph::representation_name(options.representation)).c_str(),
              pgraph.num_nodes(), pgraph.num_edges(), pgraph.max_child_weight());

  std::ofstream out(out_path);
  pgraph.write_dot(out);
  std::printf("wrote %s (render with: dot -Tpng %s -o graph.png)\n",
              out_path.c_str(), out_path.c_str());
  return 0;
}
