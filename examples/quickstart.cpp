// Quickstart: the whole ParaGraph pipeline on one small example.
//
//   1. Parse an OpenMP kernel with the bundled C frontend.
//   2. Build its ParaGraph (weighted, typed program graph).
//   3. Generate a small simulated dataset for one accelerator.
//   4. Train the RGAT runtime predictor and report validation error.
//
// Run:  ./quickstart            (takes ~a minute at smoke scale)
#include <cstdio>

#include "dataset/corpus_cache.hpp"
#include "dataset/generator.hpp"
#include "dataset/sample_builder.hpp"
#include "frontend/ast_dump.hpp"
#include "frontend/parser.hpp"
#include "graph/builder.hpp"
#include "model/trainer.hpp"
#include "sim/platform.hpp"
#include "support/env.hpp"
#include "support/table.hpp"

namespace {

constexpr const char* kExampleKernel = R"(
double a[2048][2048];
double x[2048];
double y[2048];

void matvec(void) {
  #pragma omp parallel for num_threads(8) schedule(static)
  for (int i = 0; i < 2048; i++) {
    double s = 0.0;
    for (int j = 0; j < 2048; j++) {
      s += a[i][j] * x[j];
    }
    y[i] = s;
  }
}
)";

}  // namespace

int main() {
  using namespace pg;

  // 1. Parse.
  frontend::ParseResult parsed = frontend::parse_source(kExampleKernel);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed:\n%s\n",
                 parsed.diagnostics.summary().c_str());
    return 1;
  }
  std::printf("== Parsed AST (%zu nodes) ==\n",
              frontend::subtree_size(parsed.root()));

  // 2. Build the ParaGraph.
  graph::BuildOptions options;
  options.representation = graph::Representation::kParaGraph;
  options.parallel_workers = 8;  // num_threads(8), statically scheduled
  const graph::ProgramGraph pgraph = graph::build_graph(parsed.root(), options);

  const auto histogram = pgraph.edge_type_histogram();
  TextTable edge_table({"Edge type", "Count"});
  for (std::size_t t = 0; t < graph::kNumEdgeTypes; ++t)
    edge_table.add_row({std::string(graph::edge_type_name(
                            static_cast<graph::EdgeType>(t))),
                        std::to_string(histogram[t])});
  std::printf("== ParaGraph: %zu nodes, %zu edges ==\n%s",
              pgraph.num_nodes(), pgraph.num_edges(),
              edge_table.render().c_str());
  std::printf("max Child-edge weight: %.0f (= 2048 x 2048 / 8 workers)\n\n",
              pgraph.max_child_weight());

  // 3. Simulated dataset for the V100 (PARAGRAPH_SCALE; unlike the benches
  //    the demo falls back to smoke so it stays fast out of the box).
  dataset::GenerationConfig gen;
  const std::string scale = env_string("PARAGRAPH_SCALE", "smoke");
  gen.scale = scale == "full"      ? RunScale::kFull
              : scale == "default" ? RunScale::kDefault
                                   : RunScale::kSmoke;
  const sim::Platform v100 = sim::summit_v100();
  const auto points = dataset::generate_dataset(v100, gen);
  const auto stats = dataset::dataset_stats(points);
  std::printf("== Dataset on %s: %zu points, runtime [%.3f .. %.1f] ms ==\n\n",
              v100.name.c_str(), stats.num_points, stats.min_runtime_us / 1e3,
              stats.max_runtime_us / 1e3);

  // 4. Train the ParaGraph model. With PARAGRAPH_CORPUS_DIR set, the
  //    encoded sample set is cached as a .pgds corpus between runs.
  dataset::SampleBuildConfig build_config;
  dataset::CorpusKey corpus_key;
  corpus_key.platform_name = v100.name;
  corpus_key.scale = gen.scale;
  corpus_key.seed = gen.seed;
  const model::SampleSet set = dataset::load_or_build_sample_set(
      env_string("PARAGRAPH_CORPUS_DIR", ""), corpus_key, points, build_config);

  model::ModelConfig model_config;
  model::ParaGraphModel gnn(model_config);
  model::TrainConfig train_config;
  train_config.epochs = static_cast<int>(env_int("PARAGRAPH_EPOCHS", 30));
  train_config.on_epoch = [](int epoch, double train_mse, double val_rmse_us) {
    if (epoch % 10 == 0)
      std::printf("  epoch %3d  train-mse %.2e  val-rmse %.1f ms\n", epoch,
                  train_mse, val_rmse_us / 1e3);
  };
  const model::TrainResult result = model::train_model(gnn, set, train_config);

  std::printf("\n== Final: RMSE %.1f ms, normalized RMSE %.2e ==\n",
              result.final_rmse_us / 1e3, result.final_norm_rmse);
  return 0;
}
