// Storage alignment contract shared by Matrix/Workspace and the SIMD kernel
// layer — split from simd.hpp so the storage types don't drag the whole
// kernel-dispatch API into every translation unit that touches a Matrix.
//
// Matrix (and therefore every Workspace slot) allocates its float storage on
// kAlignBytes boundaries with capacity rounded up to padded_floats(), so a
// vector kernel's full-width loads on row starts are aligned whenever the
// row width is a lane multiple (the templated 8/16/24/32 widths always
// are). Kernels still use unaligned load instructions — correct for any
// stride, same cost on aligned data — so padding is a performance contract,
// not a correctness one.
#pragma once

#include <cstddef>
#include <new>

namespace pg::tensor::simd {

inline constexpr std::size_t kAlignBytes = 32;  // one AVX2 vector

/// Rounds a float count up to a whole number of widest (8-lane) vectors.
[[nodiscard]] constexpr std::size_t padded_floats(std::size_t n) {
  return (n + 7u) & ~static_cast<std::size_t>(7u);
}

/// Minimal aligned allocator for the Matrix backing store (32-byte base).
template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) {}  // NOLINT(implicit)

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kAlignBytes}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kAlignBytes});
  }
};

template <typename T, typename U>
bool operator==(const AlignedAllocator<T>&, const AlignedAllocator<U>&) {
  return true;
}

}  // namespace pg::tensor::simd
