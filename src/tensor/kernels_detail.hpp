// Internal seam between the dispatch front-end (kernels.cpp) and the
// per-ISA kernel translation units. Each TU compiles kernels_impl.inl once
// with its own lane configuration and exports one table plus compile-time
// facts the probe needs.
#pragma once

#include "tensor/simd.hpp"

namespace pg::tensor::simd::detail {

const KernelTable& table_scalar();
const KernelTable& table_vec128();  // SSE2 (x86) / NEON (aarch64)
const KernelTable& table_avx2();

/// Whether the 128-bit / 256-bit TUs were actually built with vector
/// intrinsics (they degrade to the scalar implementation when the compiler
/// or target lacks the ISA, so the symbols always exist).
bool vec128_compiled();
bool avx2_compiled();

/// "sse2" on x86, "neon" on aarch64 (display only).
const char* vec128_isa_name();

}  // namespace pg::tensor::simd::detail
