// Shape-keyed Matrix arena: acquire/reset with grow-only slot storage.
#include "tensor/workspace.hpp"

#include "support/check.hpp"

namespace pg::tensor {

Matrix& Workspace::acquire(std::size_t rows, std::size_t cols) {
  Matrix& m = acquire_uninit(rows, cols);
  m.zero();
  return m;
}

Matrix& Workspace::acquire_uninit(std::size_t rows, std::size_t cols) {
  check(rows < (std::uint64_t{1} << 32) && cols < (std::uint64_t{1} << 32),
        "Workspace::acquire: dimension too large");
  const std::uint64_t key = (static_cast<std::uint64_t>(rows) << 32) |
                            static_cast<std::uint64_t>(cols);
  Bucket& bucket = buckets_[key];
  ++num_acquires_;
  if (bucket.in_use == 0) active_.push_back(&bucket);
  if (bucket.in_use == bucket.slots.size()) {
    bucket.slots.push_back(std::make_unique<Matrix>(rows, cols));
    ++num_slots_;
    bytes_reserved_ += rows * cols * sizeof(float);
  }
  return *bucket.slots[bucket.in_use++];
}

void Workspace::reset() {
  for (Bucket* bucket : active_) bucket->in_use = 0;
  active_.clear();
}

}  // namespace pg::tensor
