// Glorot/Xavier and plain-uniform weight-initialisation fills.
#include "tensor/init.hpp"

#include <cmath>

namespace pg::tensor {

void glorot_uniform(Matrix& m, pg::Rng& rng) {
  const double fan_in = static_cast<double>(m.rows());
  const double fan_out = static_cast<double>(m.cols());
  const double a = std::sqrt(6.0 / (fan_in + fan_out));
  for (float& v : m.data()) v = static_cast<float>(rng.uniform(-a, a));
}

void uniform_init(Matrix& m, pg::Rng& rng, float lo, float hi) {
  for (float& v : m.data()) v = static_cast<float>(rng.uniform(lo, hi));
}

}  // namespace pg::tensor
