// SIMD dispatch front-end + the scalar reference kernel table.
//
// The scalar table is compiled here (kernels_impl.inl with 1-wide lanes);
// kernels_sse2.cpp / kernels_avx2.cpp compile the same bodies with 128/256
// bit lanes. The active level is resolved exactly once: compile-time ISA
// availability + runtime cpuid, overridden by PARAGRAPH_SIMD (unknown names
// fall back to the probe, known-but-unsupported levels clamp down — the
// probe never fails, it degrades).
#define PG_SIMD_IMPL_NS scalar_impl
#define PG_SIMD_IMPL_TABLE table_scalar
#include "tensor/kernels_impl.inl"

#include <string>

#include "support/env.hpp"
#include "tensor/kernels_detail.hpp"
#include "tensor/simd.hpp"

namespace pg::tensor::simd {
namespace {

int rank(SimdLevel level) { return static_cast<int>(level); }

}  // namespace

SimdLevel max_supported_level() {
  static const SimdLevel best = [] {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
    if (detail::avx2_compiled() && __builtin_cpu_supports("avx2"))
      return SimdLevel::kAvx2;
#endif
    // The 128-bit level is baseline ISA wherever its TU compiled (SSE2 is
    // part of x86-64, NEON of aarch64) — no runtime probe needed.
    if (detail::vec128_compiled()) return SimdLevel::kSse2;
    return SimdLevel::kScalar;
  }();
  return best;
}

bool level_supported(SimdLevel level) {
  return rank(level) <= rank(max_supported_level());
}

std::optional<SimdLevel> level_from_name(std::string_view name) {
  if (name == "scalar") return SimdLevel::kScalar;
  if (name == "sse2" || name == "neon") return SimdLevel::kSse2;
  if (name == "avx2") return SimdLevel::kAvx2;
  return std::nullopt;
}

const char* level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kSse2: return detail::vec128_isa_name();
    case SimdLevel::kAvx2: return "avx2";
  }
  return "scalar";
}

SimdLevel resolve_level(std::string_view name, SimdLevel fallback) {
  const auto parsed = level_from_name(name);
  if (!parsed) return fallback;  // unknown/empty -> clean fallback
  return level_supported(*parsed) ? *parsed : max_supported_level();
}

namespace {

SimdLevel& active_storage() {
  static SimdLevel level =
      resolve_level(env_string("PARAGRAPH_SIMD", ""), max_supported_level());
  return level;
}

}  // namespace

SimdLevel active_level() { return active_storage(); }

void set_active_level(SimdLevel level) {
  active_storage() =
      level_supported(level) ? level : max_supported_level();
}

const KernelTable& kernels_for(SimdLevel level) {
  if (!level_supported(level)) level = max_supported_level();
  switch (level) {
    case SimdLevel::kAvx2: return detail::table_avx2();
    case SimdLevel::kSse2: return detail::table_vec128();
    case SimdLevel::kScalar: break;
  }
  return detail::table_scalar();
}

const KernelTable& kernels() { return kernels_for(active_level()); }

}  // namespace pg::tensor::simd
