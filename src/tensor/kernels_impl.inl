// Shared kernel bodies, compiled once per dispatch level. The including TU
// defines:
//   PG_SIMD_IMPL_NS     implementation namespace (scalar_impl / vec128_impl
//                       / avx2_impl)
//   PG_SIMD_IMPL_TABLE  the exported detail:: table function it fills
//   PG_SIMD_USE_AVX2 / PG_SIMD_USE_SSE2 / PG_SIMD_USE_NEON  (at most one;
//                       none selects the scalar lane configuration)
//
// BITWISE CONTRACT (see simd.hpp): vectorisation is across independent
// output lanes (`j` columns / elementwise maps) only; reduction axes keep
// the scalar program order; multiplies and adds stay separate instructions
// (no FMA — these TUs are built with -ffp-contract=off and without -mfma).
// With kVF == 1 every "vector" op below degenerates to the exact scalar
// statement, so the scalar table is the reference implementation and the
// SIMD tables are lane-parallel transcriptions of it.
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

#include "tensor/kernels_detail.hpp"
#include "tensor/simd.hpp"

#if defined(PG_SIMD_USE_AVX2)
#include <immintrin.h>
#elif defined(PG_SIMD_USE_SSE2)
#include <emmintrin.h>
#elif defined(PG_SIMD_USE_NEON)
#include <arm_neon.h>
#endif

#if defined(PG_SIMD_USE_AVX2) || defined(PG_SIMD_USE_SSE2) || \
    defined(PG_SIMD_USE_NEON)
#define PG_SIMD_VECTOR 1
#endif

namespace pg::tensor::simd::detail {
namespace PG_SIMD_IMPL_NS {
namespace {

// ---------------------------------------------------------- lane config ---

#if defined(PG_SIMD_USE_AVX2)

using vf = __m256;  // 8 float lanes
inline constexpr std::size_t kVF = 8;
inline vf vload(const float* p) { return _mm256_loadu_ps(p); }
inline void vstore(float* p, vf v) { _mm256_storeu_ps(p, v); }
inline vf vset1(float x) { return _mm256_set1_ps(x); }
inline vf vzero() { return _mm256_setzero_ps(); }
inline vf vadd(vf a, vf b) { return _mm256_add_ps(a, b); }
inline vf vmul(vf a, vf b) { return _mm256_mul_ps(a, b); }
/// Lanewise x > 0 ? a : b.
inline vf vselect_gt0(vf x, vf a, vf b) {
  const vf mask = _mm256_cmp_ps(x, _mm256_setzero_ps(), _CMP_GT_OQ);
  return _mm256_blendv_ps(b, a, mask);
}

using vd = __m256d;   // 4 double lanes (Adam)
using hf = __m128;    // the matching 4 float lanes
inline constexpr std::size_t kVD = 4;
inline vd vdload_f(const float* p) {
  return _mm256_cvtps_pd(_mm_loadu_ps(p));
}
inline vd vdset1(double x) { return _mm256_set1_pd(x); }
inline vd vdadd(vd a, vd b) { return _mm256_add_pd(a, b); }
inline vd vdmul(vd a, vd b) { return _mm256_mul_pd(a, b); }
inline vd vddiv(vd a, vd b) { return _mm256_div_pd(a, b); }
inline vd vdsqrt(vd a) { return _mm256_sqrt_pd(a); }
inline hf vdnarrow(vd a) { return _mm256_cvtpd_ps(a); }  // round-to-nearest
inline vd vdwiden(hf a) { return _mm256_cvtps_pd(a); }
inline hf hload(const float* p) { return _mm_loadu_ps(p); }
inline void hstore(float* p, hf v) { _mm_storeu_ps(p, v); }
inline hf hsub(hf a, hf b) { return _mm_sub_ps(a, b); }

#elif defined(PG_SIMD_USE_SSE2)

using vf = __m128;  // 4 float lanes
inline constexpr std::size_t kVF = 4;
inline vf vload(const float* p) { return _mm_loadu_ps(p); }
inline void vstore(float* p, vf v) { _mm_storeu_ps(p, v); }
inline vf vset1(float x) { return _mm_set1_ps(x); }
inline vf vzero() { return _mm_setzero_ps(); }
inline vf vadd(vf a, vf b) { return _mm_add_ps(a, b); }
inline vf vmul(vf a, vf b) { return _mm_mul_ps(a, b); }
inline vf vselect_gt0(vf x, vf a, vf b) {
  const vf mask = _mm_cmpgt_ps(x, _mm_setzero_ps());
  // SSE2 has no blendv; classic and/andnot/or select.
  return _mm_or_ps(_mm_and_ps(mask, a), _mm_andnot_ps(mask, b));
}

using vd = __m128d;  // 2 double lanes (Adam)
using hf = __m128;   // low 2 float lanes in use
inline constexpr std::size_t kVD = 2;
inline vd vdload_f(const float* p) {
  return _mm_cvtps_pd(
      _mm_castsi128_ps(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p))));
}
inline vd vdset1(double x) { return _mm_set1_pd(x); }
inline vd vdadd(vd a, vd b) { return _mm_add_pd(a, b); }
inline vd vdmul(vd a, vd b) { return _mm_mul_pd(a, b); }
inline vd vddiv(vd a, vd b) { return _mm_div_pd(a, b); }
inline vd vdsqrt(vd a) { return _mm_sqrt_pd(a); }
inline hf vdnarrow(vd a) { return _mm_cvtpd_ps(a); }
inline vd vdwiden(hf a) { return _mm_cvtps_pd(a); }
inline hf hload(const float* p) {
  return _mm_castsi128_ps(_mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
}
inline void hstore(float* p, hf v) {
  _mm_storel_epi64(reinterpret_cast<__m128i*>(p), _mm_castps_si128(v));
}
inline hf hsub(hf a, hf b) { return _mm_sub_ps(a, b); }

#elif defined(PG_SIMD_USE_NEON)

using vf = float32x4_t;  // 4 float lanes
inline constexpr std::size_t kVF = 4;
inline vf vload(const float* p) { return vld1q_f32(p); }
inline void vstore(float* p, vf v) { vst1q_f32(p, v); }
inline vf vset1(float x) { return vdupq_n_f32(x); }
inline vf vzero() { return vdupq_n_f32(0.0f); }
inline vf vadd(vf a, vf b) { return vaddq_f32(a, b); }
inline vf vmul(vf a, vf b) { return vmulq_f32(a, b); }
inline vf vselect_gt0(vf x, vf a, vf b) {
  return vbslq_f32(vcgtq_f32(x, vdupq_n_f32(0.0f)), a, b);
}

using vd = float64x2_t;  // 2 double lanes (Adam; aarch64 only)
using hf = float32x2_t;
inline constexpr std::size_t kVD = 2;
inline vd vdload_f(const float* p) { return vcvt_f64_f32(vld1_f32(p)); }
inline vd vdset1(double x) { return vdupq_n_f64(x); }
inline vd vdadd(vd a, vd b) { return vaddq_f64(a, b); }
inline vd vdmul(vd a, vd b) { return vmulq_f64(a, b); }
inline vd vddiv(vd a, vd b) { return vdivq_f64(a, b); }
inline vd vdsqrt(vd a) { return vsqrtq_f64(a); }
inline hf vdnarrow(vd a) { return vcvt_f32_f64(a); }
inline vd vdwiden(hf a) { return vcvt_f64_f32(a); }
inline hf hload(const float* p) { return vld1_f32(p); }
inline void hstore(float* p, hf v) { vst1_f32(p, v); }
inline hf hsub(hf a, hf b) { return vsub_f32(a, b); }

#else  // scalar reference lanes

using vf = float;
inline constexpr std::size_t kVF = 1;
inline vf vload(const float* p) { return *p; }
inline void vstore(float* p, vf v) { *p = v; }
inline vf vset1(float x) { return x; }
inline vf vzero() { return 0.0f; }
inline vf vadd(vf a, vf b) { return a + b; }
inline vf vmul(vf a, vf b) { return a * b; }
inline vf vselect_gt0(vf x, vf a, vf b) { return x > 0.0f ? a : b; }

#endif

// ------------------------------------------------------- shared scalars ---

inline float leaky_scalar(float x, float slope) {
  return x > 0.0f ? x : slope * x;
}

/// One Adam element, byte-for-byte the historical nn::Adam::step body. The
/// vector path reproduces exactly these operations (including the two
/// double->float->double rounding round-trips through m/v storage).
inline void adam_element(float& theta, float g, float& m, float& v,
                         const AdamStep& s, bool use_weight_decay) {
  double grad = g;
  if (use_weight_decay) grad += s.weight_decay * theta;
  m = static_cast<float>(s.beta1 * m + (1.0 - s.beta1) * grad);
  v = static_cast<float>(s.beta2 * v + (1.0 - s.beta2) * grad * grad);
  const double m_hat = m / s.bias1;
  const double v_hat = v / s.bias2;
  theta -= static_cast<float>(s.learning_rate * m_hat /
                              (std::sqrt(v_hat) + s.epsilon));
}

/// dst[j] += a * src[j] for j in [0, n): the j-lane workhorse.
inline void axpy_row(float* __restrict__ dst, const float* __restrict__ src,
                     float a, std::size_t n) {
  const vf av = vset1(a);
  std::size_t j = 0;
  for (; j + kVF <= n; j += kVF)
    vstore(dst + j, vadd(vload(dst + j), vmul(av, vload(src + j))));
  for (; j < n; ++j) dst[j] += a * src[j];
}

/// Count of p[i] != 0.0f — integer result, so any evaluation strategy is
/// exact; the SIMD paths use compare-mask popcounts. (NaN != 0 is true in
/// both the scalar and the unordered vector compares.)
inline std::size_t count_nonzero(const float* __restrict__ p, std::size_t n) {
  std::size_t nnz = 0;
  std::size_t i = 0;
#if defined(PG_SIMD_USE_AVX2)
  for (; i + 8 <= n; i += 8) {
    const __m256 cmp =
        _mm256_cmp_ps(_mm256_loadu_ps(p + i), _mm256_setzero_ps(),
                      _CMP_NEQ_UQ);
    nnz += std::popcount(static_cast<unsigned>(_mm256_movemask_ps(cmp)));
  }
#elif defined(PG_SIMD_USE_SSE2)
  for (; i + 4 <= n; i += 4) {
    const __m128 cmp = _mm_cmpneq_ps(_mm_loadu_ps(p + i), _mm_setzero_ps());
    nnz += std::popcount(static_cast<unsigned>(_mm_movemask_ps(cmp)));
  }
#elif defined(PG_SIMD_USE_NEON)
  for (; i + 4 <= n; i += 4) {
    // vceq lanes are all-ones for equality; count equal lanes, subtract.
    const uint32x4_t eq = vceqq_f32(vld1q_f32(p + i), vdupq_n_f32(0.0f));
    nnz += 4 - vaddvq_u32(vshrq_n_u32(eq, 31));
  }
#endif
  for (; i < n; ++i) nnz += (p[i] != 0.0f);
  return nnz;
}

// ------------------------------------------------------------- matmul -----

/// One output row of a row-times-matrix product with the dense/sparse
/// per-row hybrid: dst[0..n) (+)= src[0..k) * w[k x n]. N_C > 0 is a
/// compile-time width whose accumulators live in registers across the k
/// loop; N_C == 0 accumulates in the destination row. kAccFromDst selects
/// "+=" (the RGAT gather-projection into a zero-filled block) vs "=" (the
/// matmul destination, fully overwritten). Identical FP operations in
/// identical order on every path — this one body serves both matmul_rows
/// and gather_project so the hybrid can never diverge between them.
template <int N_C, bool kAccFromDst>
inline void project_row(const float* __restrict__ src,
                        const float* __restrict__ w, float* __restrict__ dst,
                        std::size_t k, std::size_t n) {
  const bool dense = 2 * count_nonzero(src, k) >= k;
  if constexpr (N_C > 0) {
    static_assert(N_C % static_cast<int>(kVF) == 0,
                  "templated widths must be lane multiples");
    constexpr int kAcc = N_C / static_cast<int>(kVF);
    vf acc[kAcc];
    for (int u = 0; u < kAcc; ++u)
      acc[u] = kAccFromDst ? vload(dst + u * kVF) : vzero();
    if (dense) {
      for (std::size_t kk = 0; kk < k; ++kk) {
        const vf av = vset1(src[kk]);
        const float* __restrict__ wrow = w + kk * N_C;
        for (int u = 0; u < kAcc; ++u)
          acc[u] = vadd(acc[u], vmul(av, vload(wrow + u * kVF)));
      }
    } else {
      for (std::size_t kk = 0; kk < k; ++kk) {
        if (src[kk] == 0.0f) continue;
        const vf av = vset1(src[kk]);
        const float* __restrict__ wrow = w + kk * N_C;
        for (int u = 0; u < kAcc; ++u)
          acc[u] = vadd(acc[u], vmul(av, vload(wrow + u * kVF)));
      }
    }
    for (int u = 0; u < kAcc; ++u) vstore(dst + u * kVF, acc[u]);
  } else {
    if constexpr (!kAccFromDst)
      for (std::size_t j = 0; j < n; ++j) dst[j] = 0.0f;
    if (dense) {
      for (std::size_t kk = 0; kk < k; ++kk)
        axpy_row(dst, w + kk * n, src[kk], n);
    } else {
      for (std::size_t kk = 0; kk < k; ++kk) {
        if (src[kk] == 0.0f) continue;
        axpy_row(dst, w + kk * n, src[kk], n);
      }
    }
  }
}

/// i-k-j matmul over all rows (see project_row for the per-row body).
template <int N_C>
void matmul_rows(const float* pa, const float* pb, float* pc, std::size_t m,
                 std::size_t k, std::size_t n_rt, bool parallel) {
  const std::size_t n = N_C > 0 ? static_cast<std::size_t>(N_C) : n_rt;
#pragma omp parallel for if (parallel) schedule(static)
  for (std::size_t i = 0; i < m; ++i)
    project_row<N_C, false>(pa + i * k, pb, pc + i * n, k, n);
}

void k_matmul(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n, bool parallel) {
  switch (n) {
    case 8: matmul_rows<8>(a, b, c, m, k, n, parallel); break;
    case 16: matmul_rows<16>(a, b, c, m, k, n, parallel); break;
    case 24: matmul_rows<24>(a, b, c, m, k, n, parallel); break;
    case 32: matmul_rows<32>(a, b, c, m, k, n, parallel); break;
    default: matmul_rows<0>(a, b, c, m, k, n, parallel); break;
  }
}

void k_matmul_t_a_acc(const float* pa, const float* pb, float* pc,
                      std::size_t m, std::size_t k, std::size_t n) {
  // C[i,j] += sum_kk A[kk,i] * B[kk,j]; kk outer for contiguity.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* __restrict__ arow = pa + kk * m;
    const float* __restrict__ brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aval = arow[i];
      if (aval == 0.0f) continue;
      axpy_row(pc + i * n, brow, aval, n);
    }
  }
}

// ------------------------------------------------------- row reductions ---

void k_column_sums_acc(float* sums, const float* a, std::size_t rows,
                       std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    const float* __restrict__ row = a + i * cols;
    std::size_t j = 0;
    for (; j + kVF <= cols; j += kVF)
      vstore(sums + j, vadd(vload(sums + j), vload(row + j)));
    for (; j < cols; ++j) sums[j] += row[j];
  }
}

void k_segment_row_mean(float* out, const float* a,
                        const std::uint32_t* offsets, std::size_t num_segments,
                        std::size_t cols) {
  for (std::size_t s = 0; s < num_segments; ++s) {
    const std::size_t lo = offsets[s];
    const std::size_t hi = offsets[s + 1];
    float* __restrict__ sums = out + s * cols;
    for (std::size_t j = 0; j < cols; ++j) sums[j] = 0.0f;
    for (std::size_t i = lo; i < hi; ++i) {
      const float* __restrict__ row = a + i * cols;
      std::size_t j = 0;
      for (; j + kVF <= cols; j += kVF)
        vstore(sums + j, vadd(vload(sums + j), vload(row + j)));
      for (; j < cols; ++j) sums[j] += row[j];
    }
    const float inv = 1.0f / static_cast<float>(hi - lo);
    const vf vinv = vset1(inv);
    std::size_t j = 0;
    for (; j + kVF <= cols; j += kVF)
      vstore(sums + j, vmul(vload(sums + j), vinv));
    for (; j < cols; ++j) sums[j] *= inv;
  }
}

void k_add_bias_rows(float* y, const float* bias, std::size_t rows,
                     std::size_t cols) {
  for (std::size_t i = 0; i < rows; ++i) {
    float* __restrict__ row = y + i * cols;
    std::size_t j = 0;
    for (; j + kVF <= cols; j += kVF)
      vstore(row + j, vadd(vload(row + j), vload(bias + j)));
    for (; j < cols; ++j) row[j] += bias[j];
  }
}

// --------------------------------------------------------- activations ----

void k_relu(float* y, const float* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + kVF <= n; i += kVF) {
    const vf xv = vload(x + i);
    vstore(y + i, vselect_gt0(xv, xv, vzero()));
  }
  for (; i < n; ++i) y[i] = x[i] > 0.0f ? x[i] : 0.0f;
}

void k_relu_backward(float* dx, const float* dy, const float* x,
                     std::size_t n) {
  std::size_t i = 0;
  for (; i + kVF <= n; i += kVF) {
    vstore(dx + i, vselect_gt0(vload(x + i), vload(dy + i), vzero()));
  }
  for (; i < n; ++i) dx[i] = x[i] > 0.0f ? dy[i] : 0.0f;
}

void k_leaky_relu(float* y, const float* x, float slope, std::size_t n) {
  const vf vslope = vset1(slope);
  std::size_t i = 0;
  for (; i + kVF <= n; i += kVF) {
    const vf xv = vload(x + i);
    vstore(y + i, vselect_gt0(xv, xv, vmul(vslope, xv)));
  }
  for (; i < n; ++i) y[i] = leaky_scalar(x[i], slope);
}

void k_leaky_relu_grad(float* g, const float* x, float slope, std::size_t n) {
  const vf vone = vset1(1.0f);
  const vf vslope = vset1(slope);
  std::size_t i = 0;
  for (; i + kVF <= n; i += kVF)
    vstore(g + i, vselect_gt0(vload(x + i), vone, vslope));
  for (; i < n; ++i) g[i] = x[i] > 0.0f ? 1.0f : slope;
}

// ---------------------------------------------------------------- Adam ----

void k_adam_update(float* theta, const float* g, float* m, float* v,
                   std::size_t n, const AdamStep& s) {
  const bool use_weight_decay = s.weight_decay != 0.0;
  std::size_t i = 0;
#if defined(PG_SIMD_VECTOR)
  const vd vbeta1 = vdset1(s.beta1);
  const vd vomb1 = vdset1(1.0 - s.beta1);
  const vd vbeta2 = vdset1(s.beta2);
  const vd vomb2 = vdset1(1.0 - s.beta2);
  const vd vwd = vdset1(s.weight_decay);
  const vd vbias1 = vdset1(s.bias1);
  const vd vbias2 = vdset1(s.bias2);
  const vd vlr = vdset1(s.learning_rate);
  const vd veps = vdset1(s.epsilon);
  for (; i + kVD <= n; i += kVD) {
    vd grad = vdload_f(g + i);
    if (use_weight_decay)
      grad = vdadd(grad, vdmul(vwd, vdload_f(theta + i)));
    // m/v round through their float storage exactly like the scalar path:
    // narrow (round-to-nearest), store, and re-widen the rounded value.
    vd mm = vdadd(vdmul(vbeta1, vdload_f(m + i)), vdmul(vomb1, grad));
    const hf m32 = vdnarrow(mm);
    hstore(m + i, m32);
    mm = vdwiden(m32);
    vd vv = vdadd(vdmul(vbeta2, vdload_f(v + i)),
                  vdmul(vomb2, vdmul(grad, grad)));
    const hf v32 = vdnarrow(vv);
    hstore(v + i, v32);
    vv = vdwiden(v32);
    const vd m_hat = vddiv(mm, vbias1);
    const vd v_hat = vddiv(vv, vbias2);
    const vd delta = vddiv(vdmul(vlr, m_hat), vdadd(vdsqrt(v_hat), veps));
    hstore(theta + i, hsub(hload(theta + i), vdnarrow(delta)));
  }
#endif
  for (; i < n; ++i)
    adam_element(theta[i], g[i], m[i], v[i], s, use_weight_decay);
}

// ------------------------------------------------------------- RGAT -------

/// Fused gather->project (see KernelTable::rgat_gather_project): the shared
/// project_row body with node-indirected source rows, accumulating into the
/// zero-filled destination block ("+=" initialisation from dst is part of
/// the contract).
template <int OUT_C>
void gather_project(const std::uint32_t* nodes, std::size_t na, const float* x,
                    std::size_t in, const float* w, float* gbuf,
                    std::size_t out_rt, std::size_t row_off) {
  const std::size_t out = OUT_C > 0 ? static_cast<std::size_t>(OUT_C) : out_rt;
  for (std::size_t i = 0; i < na; ++i)
    project_row<OUT_C, true>(x + nodes[i] * in, w,
                             gbuf + (row_off + i) * out, in, out);
}

void k_rgat_gather_project(const std::uint32_t* nodes, std::size_t na,
                           const float* x, std::size_t in, const float* w,
                           float* gbuf, std::size_t out, std::size_t row_off) {
  switch (out) {
    case 8: gather_project<8>(nodes, na, x, in, w, gbuf, out, row_off); break;
    case 16: gather_project<16>(nodes, na, x, in, w, gbuf, out, row_off); break;
    case 24: gather_project<24>(nodes, na, x, in, w, gbuf, out, row_off); break;
    case 32: gather_project<32>(nodes, na, x, in, w, gbuf, out, row_off); break;
    default: gather_project<0>(nodes, na, x, in, w, gbuf, out, row_off); break;
  }
}

/// Grouped attention softmax + gated scatter (KernelTable contract). The
/// logit/exp/denominator passes are scalar by design — they are reductions
/// whose FP order is pinned — while the per-edge alpha*gate message
/// accumulation vectorises across the out lanes with register accumulators
/// held across the group's edges.
template <int OUT_C>
void attention_scatter(const std::uint32_t* group_offsets,
                       const std::uint32_t* group_dst, std::size_t num_groups,
                       const std::uint32_t* nodes,
                       const std::uint32_t* src_local, const float* gates,
                       const float* ss, const float* sd, float slope,
                       float* raw, float* alpha, const float* gbuf, float* pre,
                       std::size_t out_rt, std::size_t row_off) {
  const std::size_t out = OUT_C > 0 ? static_cast<std::size_t>(OUT_C) : out_rt;
  for (std::size_t group = 0; group < num_groups; ++group) {
    const std::size_t lo = group_offsets[group];
    const std::size_t hi = group_offsets[group + 1];
    const std::uint32_t v_local = group_dst[group];
    const std::uint32_t v_global = nodes[v_local];

    const float sd_v = sd[row_off + v_local];
    for (std::size_t e = lo; e < hi; ++e)
      raw[e] = ss[row_off + src_local[e]] + sd_v;
    // Rectify the whole group with the lane-parallel LeakyReLU forward
    // kernel, stashing the logits so the exp pass reads them back instead
    // of recomputing (same value per element, same FP ops); the max scan
    // keeps its scalar e-order.
    k_leaky_relu(alpha + lo, raw + lo, slope, hi - lo);
    float max_logit = -1e30f;
    for (std::size_t e = lo; e < hi; ++e)
      if (alpha[e] > max_logit) max_logit = alpha[e];
    double denom = 0.0;
    for (std::size_t e = lo; e < hi; ++e) {
      alpha[e] = std::exp(alpha[e] - max_logit);
      denom += alpha[e];
    }
    float* __restrict__ out_row = pre + v_global * out;
    if constexpr (OUT_C > 0) {
      static_assert(OUT_C % static_cast<int>(kVF) == 0,
                    "templated widths must be lane multiples");
      constexpr int kAcc = OUT_C / static_cast<int>(kVF);
      vf acc[kAcc];
      for (int u = 0; u < kAcc; ++u) acc[u] = vload(out_row + u * kVF);
      for (std::size_t e = lo; e < hi; ++e) {
        alpha[e] = static_cast<float>(alpha[e] / denom);
        const vf scale = vset1(alpha[e] * gates[e]);
        const float* __restrict__ g_row =
            gbuf + (row_off + src_local[e]) * OUT_C;
        for (int u = 0; u < kAcc; ++u)
          acc[u] = vadd(acc[u], vmul(scale, vload(g_row + u * kVF)));
      }
      for (int u = 0; u < kAcc; ++u) vstore(out_row + u * kVF, acc[u]);
    } else {
      for (std::size_t e = lo; e < hi; ++e) {
        alpha[e] = static_cast<float>(alpha[e] / denom);
        const float scale = alpha[e] * gates[e];
        axpy_row(out_row, gbuf + (row_off + src_local[e]) * out, scale, out);
      }
    }
  }
}

void k_rgat_attention_scatter(const std::uint32_t* group_offsets,
                              const std::uint32_t* group_dst,
                              std::size_t num_groups,
                              const std::uint32_t* nodes,
                              const std::uint32_t* src_local,
                              const float* gates, const float* ss,
                              const float* sd, float slope, float* raw,
                              float* alpha, const float* gbuf, float* pre,
                              std::size_t out, std::size_t row_off) {
  switch (out) {
    case 8:
      attention_scatter<8>(group_offsets, group_dst, num_groups, nodes,
                           src_local, gates, ss, sd, slope, raw, alpha, gbuf,
                           pre, out, row_off);
      break;
    case 16:
      attention_scatter<16>(group_offsets, group_dst, num_groups, nodes,
                            src_local, gates, ss, sd, slope, raw, alpha, gbuf,
                            pre, out, row_off);
      break;
    case 24:
      attention_scatter<24>(group_offsets, group_dst, num_groups, nodes,
                            src_local, gates, ss, sd, slope, raw, alpha, gbuf,
                            pre, out, row_off);
      break;
    case 32:
      attention_scatter<32>(group_offsets, group_dst, num_groups, nodes,
                            src_local, gates, ss, sd, slope, raw, alpha, gbuf,
                            pre, out, row_off);
      break;
    default:
      attention_scatter<0>(group_offsets, group_dst, num_groups, nodes,
                           src_local, gates, ss, sd, slope, raw, alpha, gbuf,
                           pre, out, row_off);
      break;
  }
}

}  // namespace
}  // namespace PG_SIMD_IMPL_NS

const KernelTable& PG_SIMD_IMPL_TABLE() {
  static const KernelTable table = {
      &PG_SIMD_IMPL_NS::k_matmul,
      &PG_SIMD_IMPL_NS::k_matmul_t_a_acc,
      &PG_SIMD_IMPL_NS::k_column_sums_acc,
      &PG_SIMD_IMPL_NS::k_segment_row_mean,
      &PG_SIMD_IMPL_NS::k_add_bias_rows,
      &PG_SIMD_IMPL_NS::k_relu,
      &PG_SIMD_IMPL_NS::k_relu_backward,
      &PG_SIMD_IMPL_NS::k_leaky_relu,
      &PG_SIMD_IMPL_NS::k_leaky_relu_grad,
      &PG_SIMD_IMPL_NS::k_adam_update,
      &PG_SIMD_IMPL_NS::k_rgat_gather_project,
      &PG_SIMD_IMPL_NS::k_rgat_attention_scatter,
  };
  return table;
}

}  // namespace pg::tensor::simd::detail

#undef PG_SIMD_VECTOR
