// Runtime-dispatched SIMD kernel layer under the tensor/nn hot paths.
//
// Design contract — BITWISE determinism across dispatch levels:
//   * Every kernel vectorises across *independent output lanes* only (the
//     `j` columns of a row-major destination, or independent elements of an
//     elementwise map). Reduction axes (`k` in matmuls, edge groups in the
//     RGAT softmax) always run in the scalar program order.
//   * Multiplies and adds are issued as separate instructions — never FMA —
//     and the kernel translation units are compiled with -ffp-contract=off,
//     so each lane performs exactly the float operations of the scalar
//     reference. A prediction, gradient, or trained checkpoint is therefore
//     byte-identical whether it ran under scalar, SSE2/NEON, or AVX2
//     (pinned by kernels_test).
//
// Dispatch: the best level is probed once at startup (compile-time ISA
// availability + cpuid) and can be overridden with PARAGRAPH_SIMD=
// scalar|sse2|avx2 ("neon" names the 128-bit level on aarch64). Unknown
// names fall back to the probe; known-but-unsupported levels clamp down to
// the best supported one. Tests, benches, and the CLI's --simd flag may
// re-select with set_active_level(); that setter is not thread-safe against
// concurrently running kernels.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

#include "tensor/align.hpp"

namespace pg::tensor::simd {

/// Dispatch levels, ordered by preference. kSse2 is the 128-bit lane level
/// (SSE2 on x86, NEON on aarch64); kAvx2 the 256-bit one (x86 only).
enum class SimdLevel : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Adam hyper-parameters + per-step bias corrections for the fused update.
struct AdamStep {
  double beta1 = 0.9;
  double beta2 = 0.999;
  double learning_rate = 1e-3;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
  double bias1 = 1.0;  // 1 - beta1^t
  double bias2 = 1.0;  // 1 - beta2^t
};

/// One dispatch level's kernel entry points. All pointers are non-null in
/// every table; raw-pointer signatures so nn/ and tensor/ call sites can
/// pass workspace-backed storage without shape re-validation (callers check
/// shapes before dispatch).
struct KernelTable {
  /// C = A * B, i-k-j order with the dense/sparse per-row hybrid (zero-skip
  /// for mostly-zero rows, branchless otherwise). C is fully written.
  void (*matmul)(const float* a, const float* b, float* c, std::size_t m,
                 std::size_t k, std::size_t n, bool parallel);
  /// C += A^T * B without materialising the transpose (kk-outer loop over
  /// A's rows, zero-skip on A entries). m = A.cols, k = A.rows, n = B.cols.
  void (*matmul_t_a_acc)(const float* a, const float* b, float* c,
                         std::size_t m, std::size_t k, std::size_t n);
  /// sums[j] += sum_i a[i,j] (bias-gradient reduction; row order preserved).
  void (*column_sums_acc)(float* sums, const float* a, std::size_t rows,
                          std::size_t cols);
  /// out[s,:] = mean of a rows [offsets[s], offsets[s+1]); per-segment sum
  /// then scale, row order preserved. Segments must be non-empty (checked
  /// by the tensor::segment_row_mean_into wrapper).
  void (*segment_row_mean)(float* out, const float* a,
                           const std::uint32_t* offsets,
                           std::size_t num_segments, std::size_t cols);
  /// y[i,:] += bias for every row (the Linear/RGAT bias broadcast).
  void (*add_bias_rows)(float* y, const float* bias, std::size_t rows,
                        std::size_t cols);
  void (*relu)(float* y, const float* x, std::size_t n);
  void (*relu_backward)(float* dx, const float* dy, const float* x,
                        std::size_t n);
  void (*leaky_relu)(float* y, const float* x, float slope, std::size_t n);
  void (*leaky_relu_grad)(float* g, const float* x, float slope,
                          std::size_t n);
  /// One parameter tensor's Adam update (double-lane math, float storage),
  /// element order and rounding points identical to the scalar reference.
  void (*adam_update)(float* theta, const float* g, float* m, float* v,
                      std::size_t n, const AdamStep& step);
  /// RGAT fused gather->project: for i in [0, na),
  ///   gbuf[(row_off + i) * out + :] += x[nodes[i] * in + :] * w
  /// with the same dense/sparse hybrid as matmul. gbuf rows start zeroed.
  void (*rgat_gather_project)(const std::uint32_t* nodes, std::size_t na,
                              const float* x, std::size_t in, const float* w,
                              float* gbuf, std::size_t out,
                              std::size_t row_off);
  /// RGAT grouped attention + gated scatter over one relation's CSR arrays:
  /// per destination group, raw logits (score gather), LeakyReLU, max-shifted
  /// exp/softmax (scalar, order-pinned) and the alpha*gate-weighted scatter
  /// of source projections into pre[group_dst_global]. raw/alpha are the
  /// relation's edge blocks (already offset by the caller).
  void (*rgat_attention_scatter)(const std::uint32_t* group_offsets,
                                 const std::uint32_t* group_dst,
                                 std::size_t num_groups,
                                 const std::uint32_t* nodes,
                                 const std::uint32_t* src_local,
                                 const float* gates, const float* ss,
                                 const float* sd, float slope, float* raw,
                                 float* alpha, const float* gbuf, float* pre,
                                 std::size_t out, std::size_t row_off);
};

/// Best level this binary + CPU can run (probed once).
[[nodiscard]] SimdLevel max_supported_level();
/// True when `level` would actually execute its own code path here.
[[nodiscard]] bool level_supported(SimdLevel level);

/// The level kernels() dispatches to. Resolved once at first use:
/// PARAGRAPH_SIMD override (resolve_level semantics) over the probe.
[[nodiscard]] SimdLevel active_level();
/// Re-selects the active level (clamped to max_supported_level()). For
/// tests, benches, and the CLI — not thread-safe against running kernels.
void set_active_level(SimdLevel level);

/// Parses "scalar" | "sse2" | "neon" | "avx2" (nullopt otherwise).
[[nodiscard]] std::optional<SimdLevel> level_from_name(std::string_view name);
/// Display name of a level on this architecture.
[[nodiscard]] const char* level_name(SimdLevel level);
/// Env/CLI resolution: unknown names -> `fallback`; known names clamp to
/// max_supported_level(). Never fails — the dispatch probe degrades cleanly.
[[nodiscard]] SimdLevel resolve_level(std::string_view name,
                                      SimdLevel fallback);

/// Kernel table of the active level / of an explicit level.
[[nodiscard]] const KernelTable& kernels();
[[nodiscard]] const KernelTable& kernels_for(SimdLevel level);

// The storage alignment contract (kAlignBytes, padded_floats,
// AlignedAllocator) lives in tensor/align.hpp so Matrix doesn't depend on
// this dispatch header.

}  // namespace pg::tensor::simd
