// The 256-bit-lane kernel table. This TU is compiled with -mavx2 (and
// -ffp-contract=off — never -mfma: the bitwise contract forbids fused
// multiply-add) when the toolchain targets x86; elsewhere it degrades to
// the scalar implementation and avx2_compiled() reports the level as
// unavailable, so the dispatch probe never selects it.
#if defined(__AVX2__)
#define PG_SIMD_USE_AVX2 1
#endif

#define PG_SIMD_IMPL_NS avx2_impl
#define PG_SIMD_IMPL_TABLE table_avx2
#include "tensor/kernels_impl.inl"

namespace pg::tensor::simd::detail {

bool avx2_compiled() {
#if defined(PG_SIMD_USE_AVX2)
  return true;
#else
  return false;
#endif
}

}  // namespace pg::tensor::simd::detail
