// Dense row-major float32 matrix — the numeric substrate of the GNN.
//
// Design notes:
//  * float32 storage (matches the PyTorch default the paper trained with);
//    accumulations happen in double where it matters (reductions).
//  * matmul uses an i-k-j loop order so the inner loop is a contiguous
//    saxpy, executed by the runtime-dispatched SIMD kernel layer
//    (tensor/simd.hpp); an OpenMP split over rows kicks in for large
//    products. Model training parallelises over *graphs*, so the per-graph
//    matmuls here stay serial unless used standalone.
//  * Storage is 32-byte aligned with capacity padded to whole 8-float
//    vectors (the simd.hpp alignment contract), so vector kernels get
//    aligned row starts whenever the row width is a lane multiple.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "tensor/align.hpp"

namespace pg::tensor {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f);

  static Matrix zeros(std::size_t rows, std::size_t cols) { return {rows, cols}; }
  static Matrix full(std::size_t rows, std::size_t cols, float v) {
    return {rows, cols, v};
  }
  /// 1 x n row vector from values.
  static Matrix row(std::span<const float> values);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  [[nodiscard]] float& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] const float& operator()(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<float> data() { return data_; }
  [[nodiscard]] std::span<const float> data() const { return data_; }
  [[nodiscard]] std::span<float> row_span(std::size_t r);
  [[nodiscard]] std::span<const float> row_span(std::size_t r) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  /// Re-shapes in place; contents are unspecified afterwards. Grow-only in
  /// capacity terms: shrinking or re-using a previously seen size performs
  /// no allocation (the GraphBatch packer's steady-state contract).
  void reshape(std::size_t rows, std::size_t cols);

  // In-place elementwise updates.
  Matrix& add_(const Matrix& other);
  Matrix& sub_(const Matrix& other);
  Matrix& mul_(const Matrix& other);  // Hadamard
  Matrix& scale_(float s);
  /// this += s * other (the optimiser's workhorse).
  Matrix& axpy_(float s, const Matrix& other);

  [[nodiscard]] bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  [[nodiscard]] double sum() const;
  [[nodiscard]] double squared_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float, simd::AlignedAllocator<float>> data_;
};

/// C = A * B.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A^T * B (without materialising the transpose).
Matrix matmul_transpose_a(const Matrix& a, const Matrix& b);
/// C = A * B^T.
Matrix matmul_transpose_b(const Matrix& a, const Matrix& b);

// Allocation-free variants writing into caller-owned (workspace) storage.
// `_into` defines every element of the pre-shaped destination; `_acc`
// accumulates on top of it (the gradient-buffer pattern).
void matmul_into(Matrix& c, const Matrix& a, const Matrix& b);
void matmul_transpose_a_acc(Matrix& c, const Matrix& a, const Matrix& b);
void matmul_transpose_b_into(Matrix& c, const Matrix& a, const Matrix& b);
void column_sums_acc(Matrix& out, const Matrix& a);
void row_mean_into(Matrix& out, const Matrix& a);
/// Per-segment mean over rows: out.row(b) = mean of a rows
/// [offsets[b], offsets[b+1]). out is [offsets.size()-1 x a.cols()]. Each
/// segment's sum/scale follows exactly row_mean_into's operation order, so a
/// one-segment call is bitwise-identical to row_mean_into — the invariant
/// the fused GraphBatch read-out relies on. Segments must be non-empty.
void segment_row_mean_into(Matrix& out, const Matrix& a,
                           std::span<const std::uint32_t> offsets);

Matrix transpose(const Matrix& a);
Matrix add(const Matrix& a, const Matrix& b);
Matrix sub(const Matrix& a, const Matrix& b);
Matrix hadamard(const Matrix& a, const Matrix& b);

/// Sum over rows -> 1 x cols (bias gradients).
Matrix column_sums(const Matrix& a);
/// Mean over rows -> 1 x cols (graph read-out pooling).
Matrix row_mean(const Matrix& a);

}  // namespace pg::tensor
