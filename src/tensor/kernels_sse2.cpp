// The 128-bit-lane kernel table: SSE2 on x86 (baseline ISA of x86-64, so no
// extra compiler flags are needed), NEON on aarch64. On any other target the
// TU degrades to the scalar implementation so the symbols always exist; the
// dispatch probe then reports the level as unavailable (vec128_compiled()).
#if defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#define PG_SIMD_USE_SSE2 1
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define PG_SIMD_USE_NEON 1
#endif

#define PG_SIMD_IMPL_NS vec128_impl
#define PG_SIMD_IMPL_TABLE table_vec128
#include "tensor/kernels_impl.inl"

namespace pg::tensor::simd::detail {

bool vec128_compiled() {
#if defined(PG_SIMD_USE_SSE2) || defined(PG_SIMD_USE_NEON)
  return true;
#else
  return false;
#endif
}

const char* vec128_isa_name() {
#if defined(PG_SIMD_USE_NEON)
  return "neon";
#else
  return "sse2";
#endif
}

}  // namespace pg::tensor::simd::detail
