// Weight initialisation schemes.
#pragma once

#include "support/rng.hpp"
#include "tensor/matrix.hpp"

namespace pg::tensor {

/// Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
void glorot_uniform(Matrix& m, pg::Rng& rng);

/// Uniform in [lo, hi].
void uniform_init(Matrix& m, pg::Rng& rng, float lo, float hi);

}  // namespace pg::tensor
