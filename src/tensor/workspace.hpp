// Grow-only arena of Matrix buffers, keyed by shape — the allocation-free
// substrate under every forward/backward pass.
//
// Usage contract:
//   * acquire(r, c) hands out a zero-filled r x c Matrix, distinct from every
//     other matrix acquired since the last reset(). References stay valid
//     until the *owning Workspace* is destroyed (reset() only returns slots
//     to the pool; it never frees or reshapes them).
//   * reset() starts a new borrow generation. Slots are re-handed-out in
//     acquisition order, so a repeated identical pass touches the exact same
//     memory — bitwise-deterministic and, once every shape has been seen,
//     free of heap allocations.
//   * The arena never shrinks. num_slots()/bytes_reserved() expose growth so
//     callers (and tests) can assert a hot loop has reached steady state.
//
// Not thread-safe: one Workspace per thread (the trainer and the
// InferenceEngine each own a per-thread pool).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "tensor/matrix.hpp"

namespace pg::tensor {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Borrows a zero-filled rows x cols matrix until the next reset().
  Matrix& acquire(std::size_t rows, std::size_t cols);

  /// Like acquire(), but a reused slot keeps its stale contents — for
  /// destinations every element of which is written before being read
  /// (matmul_into / relu_into style); skips the hot-path memset that
  /// acquire() would spend on them.
  Matrix& acquire_uninit(std::size_t rows, std::size_t cols);

  /// Returns every borrowed matrix to the pool; capacity is retained.
  void reset();

  /// Total slots ever created (== growth events; flat once warmed up).
  [[nodiscard]] std::size_t num_slots() const { return num_slots_; }
  /// Total float storage held by the arena, in bytes.
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }
  /// acquire() calls over the workspace's lifetime.
  [[nodiscard]] std::size_t num_acquires() const { return num_acquires_; }

 private:
  struct Bucket {
    std::vector<std::unique_ptr<Matrix>> slots;
    std::size_t in_use = 0;
  };

  std::unordered_map<std::uint64_t, Bucket> buckets_;
  std::vector<Bucket*> active_;  // buckets with in_use > 0, for O(live) reset
  std::size_t num_slots_ = 0;
  std::size_t bytes_reserved_ = 0;
  std::size_t num_acquires_ = 0;
};

}  // namespace pg::tensor
