// Row-major float32 matrix ops; the vectorisable bodies (matmul,
// transpose-A accumulate, column sums, segmented mean) live in the
// runtime-dispatched SIMD kernel layer — see tensor/simd.hpp for the
// bitwise-determinism contract. matmul is OpenMP-parallel above a size
// threshold.
#include "tensor/matrix.hpp"

#include "support/check.hpp"
#include "support/parallel.hpp"
#include "tensor/simd.hpp"

namespace pg::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols) {
  data_.reserve(simd::padded_floats(rows * cols));
  data_.resize(rows * cols, fill);
}

Matrix Matrix::row(std::span<const float> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

float& Matrix::operator()(std::size_t r, std::size_t c) {
  check(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

const float& Matrix::operator()(std::size_t r, std::size_t c) const {
  check(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<float> Matrix::row_span(std::size_t r) {
  check(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const float> Matrix::row_span(std::size_t r) const {
  check(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  // vector keeps capacity: grow-only allocation, padded per the simd
  // alignment contract so growth lands on whole-vector boundaries.
  data_.reserve(simd::padded_floats(rows * cols));
  data_.resize(rows * cols);
}

Matrix& Matrix::add_(const Matrix& other) {
  check(same_shape(other), "add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::sub_(const Matrix& other) {
  check(same_shape(other), "sub_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::mul_(const Matrix& other) {
  check(same_shape(other), "mul_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::scale_(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::axpy_(float s, const Matrix& other) {
  check(same_shape(other), "axpy_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

double Matrix::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Matrix::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  matmul_into(c, a, b);
  return c;
}

void matmul_into(Matrix& c, const Matrix& a, const Matrix& b) {
  check(a.cols() == b.rows(), "matmul: inner dimensions differ");
  check(c.rows() == a.rows() && c.cols() == b.cols(),
        "matmul_into: destination shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const bool parallel = m * k * n > (1u << 20);
  // Dense/sparse-hybrid i-k-j body lives in the dispatched kernel layer;
  // every level performs identical FP operations in identical order.
  simd::kernels().matmul(a.data().data(), b.data().data(), c.data().data(), m,
                         k, n, parallel);
}

Matrix matmul_transpose_a(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  matmul_transpose_a_acc(c, a, b);
  return c;
}

void matmul_transpose_a_acc(Matrix& c, const Matrix& a, const Matrix& b) {
  check(a.rows() == b.rows(), "matmul_transpose_a: row counts differ");
  check(c.rows() == a.cols() && c.cols() == b.cols(),
        "matmul_transpose_a_acc: destination shape mismatch");
  // C[i,j] = sum_kk A[kk,i] * B[kk,j]; kk-outer body in the kernel layer.
  simd::kernels().matmul_t_a_acc(a.data().data(), b.data().data(),
                                 c.data().data(), a.cols(), a.rows(),
                                 b.cols());
}

Matrix matmul_transpose_b(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  matmul_transpose_b_into(c, a, b);
  return c;
}

void matmul_transpose_b_into(Matrix& c, const Matrix& a, const Matrix& b) {
  check(a.cols() == b.cols(), "matmul_transpose_b: col counts differ");
  check(c.rows() == a.rows() && c.cols() == b.rows(),
        "matmul_transpose_b_into: destination shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  const float* __restrict__ pa = a.data().data();
  const float* __restrict__ pb = b.data().data();
  float* __restrict__ pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* __restrict__ arow = pa + i * k;
    float* __restrict__ crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += static_cast<double>(arow[kk]) * brow[kk];
      crow[j] = static_cast<float>(acc);
    }
  }
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.add_(b);
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.sub_(b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.mul_(b);
  return c;
}

Matrix column_sums(const Matrix& a) {
  Matrix out(1, a.cols());
  column_sums_acc(out, a);
  return out;
}

void column_sums_acc(Matrix& out, const Matrix& a) {
  check(out.rows() == 1 && out.cols() == a.cols(),
        "column_sums_acc: destination shape mismatch");
  simd::kernels().column_sums_acc(out.data().data(), a.data().data(), a.rows(),
                                  a.cols());
}

Matrix row_mean(const Matrix& a) {
  Matrix out(1, a.cols());
  row_mean_into(out, a);
  return out;
}

void row_mean_into(Matrix& out, const Matrix& a) {
  check(a.rows() > 0, "row_mean of empty matrix");
  out.zero();
  column_sums_acc(out, a);
  out.scale_(1.0f / static_cast<float>(a.rows()));
}

void segment_row_mean_into(Matrix& out, const Matrix& a,
                           std::span<const std::uint32_t> offsets) {
  check(offsets.size() >= 1 && out.rows() == offsets.size() - 1 &&
            out.cols() == a.cols(),
        "segment_row_mean_into: destination shape mismatch");
  check(offsets.empty() || offsets.back() == a.rows(),
        "segment_row_mean_into: offsets do not span the rows");
  for (std::size_t b = 0; b + 1 < offsets.size(); ++b)
    check(offsets[b] < offsets[b + 1], "segment_row_mean_into: empty segment");
  // Per-segment sum then scale, row order preserved — the kernel keeps a
  // one-segment call bitwise-identical to row_mean_into at every level.
  // Segment-range split: each segment reads its own row range (absolute
  // offsets) and writes its own out row, so the cut never changes values;
  // the per-segment reduction order is untouched.
  const std::size_t cols = a.cols();
  parallel_for_blocks(offsets.size() - 1, 8, [&](std::size_t lo,
                                                 std::size_t hi) {
    simd::kernels().segment_row_mean(out.data().data() + lo * cols,
                                     a.data().data(), offsets.data() + lo,
                                     hi - lo, cols);
  });
}

}  // namespace pg::tensor
