// Row-major float32 matrix ops; matmul is OpenMP-parallel above a size
// threshold.
#include "tensor/matrix.hpp"

#include "support/check.hpp"

namespace pg::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::row(std::span<const float> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

float& Matrix::operator()(std::size_t r, std::size_t c) {
  check(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

const float& Matrix::operator()(std::size_t r, std::size_t c) const {
  check(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<float> Matrix::row_span(std::size_t r) {
  check(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const float> Matrix::row_span(std::size_t r) const {
  check(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);  // vector keeps capacity: grow-only allocation
}

Matrix& Matrix::add_(const Matrix& other) {
  check(same_shape(other), "add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::sub_(const Matrix& other) {
  check(same_shape(other), "sub_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::mul_(const Matrix& other) {
  check(same_shape(other), "mul_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::scale_(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::axpy_(float s, const Matrix& other) {
  check(same_shape(other), "axpy_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

double Matrix::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Matrix::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  matmul_into(c, a, b);
  return c;
}

namespace {

/// i-k-j matmul body. N_C > 0 is a compile-time row width of B/C — the
/// per-row accumulators then live in registers across the k loop instead of
/// being stored and reloaded every iteration; N_C == 0 reads the width from
/// `n_rt`. Sparse A rows (one-hot features) take the zero-skip loop; dense
/// rows take the branchless one — a data-dependent skip on ReLU activations
/// mispredicts per element and costs more than the multiplies it saves.
/// Every variant performs identical FP operations in identical order.
template <int N_C>
void matmul_rows(const float* pa, const float* pb, float* pc, std::size_t m,
                 std::size_t k, std::size_t n_rt, bool parallel) {
  const std::size_t n = N_C > 0 ? static_cast<std::size_t>(N_C) : n_rt;
#pragma omp parallel for if (parallel) schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    float* __restrict__ crow = pc + i * n;
    const float* __restrict__ arow = pa + i * k;
    std::size_t nnz = 0;
    for (std::size_t kk = 0; kk < k; ++kk) nnz += (arow[kk] != 0.0f);
    if constexpr (N_C > 0) {
      float acc[N_C];
      for (int j = 0; j < N_C; ++j) acc[j] = 0.0f;
      if (2 * nnz >= k) {
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float aval = arow[kk];
          const float* __restrict__ brow = pb + kk * N_C;
          for (int j = 0; j < N_C; ++j) acc[j] += aval * brow[j];
        }
      } else {
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float aval = arow[kk];
          if (aval == 0.0f) continue;
          const float* __restrict__ brow = pb + kk * N_C;
          for (int j = 0; j < N_C; ++j) acc[j] += aval * brow[j];
        }
      }
      for (int j = 0; j < N_C; ++j) crow[j] = acc[j];
    } else {
      for (std::size_t j = 0; j < n; ++j) crow[j] = 0.0f;
      if (2 * nnz >= k) {
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float aval = arow[kk];
          const float* __restrict__ brow = pb + kk * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
      } else {
        for (std::size_t kk = 0; kk < k; ++kk) {
          const float aval = arow[kk];
          if (aval == 0.0f) continue;
          const float* __restrict__ brow = pb + kk * n;
          for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
        }
      }
    }
  }
}

}  // namespace

void matmul_into(Matrix& c, const Matrix& a, const Matrix& b) {
  check(a.cols() == b.rows(), "matmul: inner dimensions differ");
  check(c.rows() == a.rows() && c.cols() == b.cols(),
        "matmul_into: destination shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  const bool parallel = m * k * n > (1u << 20);
  switch (n) {
    case 8: matmul_rows<8>(pa, pb, pc, m, k, n, parallel); break;
    case 16: matmul_rows<16>(pa, pb, pc, m, k, n, parallel); break;
    case 24: matmul_rows<24>(pa, pb, pc, m, k, n, parallel); break;
    case 32: matmul_rows<32>(pa, pb, pc, m, k, n, parallel); break;
    default: matmul_rows<0>(pa, pb, pc, m, k, n, parallel); break;
  }
}

Matrix matmul_transpose_a(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  matmul_transpose_a_acc(c, a, b);
  return c;
}

void matmul_transpose_a_acc(Matrix& c, const Matrix& a, const Matrix& b) {
  check(a.rows() == b.rows(), "matmul_transpose_a: row counts differ");
  check(c.rows() == a.cols() && c.cols() == b.cols(),
        "matmul_transpose_a_acc: destination shape mismatch");
  const std::size_t m = a.cols();
  const std::size_t k = a.rows();
  const std::size_t n = b.cols();
  const float* __restrict__ pa = a.data().data();
  const float* __restrict__ pb = b.data().data();
  float* __restrict__ pc = c.data().data();
  // C[i,j] = sum_kk A[kk,i] * B[kk,j]; iterate kk outer for contiguity.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* __restrict__ arow = pa + kk * m;
    const float* __restrict__ brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aval = arow[i];
      if (aval == 0.0f) continue;
      float* __restrict__ crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

Matrix matmul_transpose_b(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  matmul_transpose_b_into(c, a, b);
  return c;
}

void matmul_transpose_b_into(Matrix& c, const Matrix& a, const Matrix& b) {
  check(a.cols() == b.cols(), "matmul_transpose_b: col counts differ");
  check(c.rows() == a.rows() && c.cols() == b.rows(),
        "matmul_transpose_b_into: destination shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  const float* __restrict__ pa = a.data().data();
  const float* __restrict__ pb = b.data().data();
  float* __restrict__ pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* __restrict__ arow = pa + i * k;
    float* __restrict__ crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* __restrict__ brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += static_cast<double>(arow[kk]) * brow[kk];
      crow[j] = static_cast<float>(acc);
    }
  }
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.add_(b);
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.sub_(b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.mul_(b);
  return c;
}

Matrix column_sums(const Matrix& a) {
  Matrix out(1, a.cols());
  column_sums_acc(out, a);
  return out;
}

void column_sums_acc(Matrix& out, const Matrix& a) {
  check(out.rows() == 1 && out.cols() == a.cols(),
        "column_sums_acc: destination shape mismatch");
  float* __restrict__ sums = out.data().data();
  const float* __restrict__ pa = a.data().data();
  const std::size_t cols = a.cols();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const float* __restrict__ row = pa + i * cols;
    for (std::size_t j = 0; j < cols; ++j) sums[j] += row[j];
  }
}

Matrix row_mean(const Matrix& a) {
  Matrix out(1, a.cols());
  row_mean_into(out, a);
  return out;
}

void row_mean_into(Matrix& out, const Matrix& a) {
  check(a.rows() > 0, "row_mean of empty matrix");
  out.zero();
  column_sums_acc(out, a);
  out.scale_(1.0f / static_cast<float>(a.rows()));
}

void segment_row_mean_into(Matrix& out, const Matrix& a,
                           std::span<const std::uint32_t> offsets) {
  check(offsets.size() >= 1 && out.rows() == offsets.size() - 1 &&
            out.cols() == a.cols(),
        "segment_row_mean_into: destination shape mismatch");
  check(offsets.empty() || offsets.back() == a.rows(),
        "segment_row_mean_into: offsets do not span the rows");
  const std::size_t cols = a.cols();
  for (std::size_t b = 0; b + 1 < offsets.size(); ++b) {
    const std::size_t lo = offsets[b];
    const std::size_t hi = offsets[b + 1];
    check(lo < hi, "segment_row_mean_into: empty segment");
    auto sums = out.row_span(b);
    std::fill(sums.begin(), sums.end(), 0.0f);
    for (std::size_t i = lo; i < hi; ++i) {
      auto row = a.row_span(i);
      for (std::size_t j = 0; j < cols; ++j) sums[j] += row[j];
    }
    const float inv = 1.0f / static_cast<float>(hi - lo);
    for (std::size_t j = 0; j < cols; ++j) sums[j] *= inv;
  }
}

}  // namespace pg::tensor
