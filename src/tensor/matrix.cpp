// Row-major float32 matrix ops; matmul is OpenMP-parallel above a size
// threshold.
#include "tensor/matrix.hpp"

#include "support/check.hpp"

namespace pg::tensor {

Matrix::Matrix(std::size_t rows, std::size_t cols, float fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::row(std::span<const float> values) {
  Matrix m(1, values.size());
  std::copy(values.begin(), values.end(), m.data_.begin());
  return m;
}

float& Matrix::operator()(std::size_t r, std::size_t c) {
  check(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

const float& Matrix::operator()(std::size_t r, std::size_t c) const {
  check(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<float> Matrix::row_span(std::size_t r) {
  check(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<const float> Matrix::row_span(std::size_t r) const {
  check(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

void Matrix::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Matrix& Matrix::add_(const Matrix& other) {
  check(same_shape(other), "add_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::sub_(const Matrix& other) {
  check(same_shape(other), "sub_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::mul_(const Matrix& other) {
  check(same_shape(other), "mul_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Matrix& Matrix::scale_(float s) {
  for (float& v : data_) v *= s;
  return *this;
}

Matrix& Matrix::axpy_(float s, const Matrix& other) {
  check(same_shape(other), "axpy_: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += s * other.data_[i];
  return *this;
}

double Matrix::sum() const {
  double acc = 0.0;
  for (float v : data_) acc += v;
  return acc;
}

double Matrix::squared_norm() const {
  double acc = 0.0;
  for (float v : data_) acc += static_cast<double>(v) * v;
  return acc;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  matmul_into(c, a, b);
  return c;
}

void matmul_into(Matrix& c, const Matrix& a, const Matrix& b) {
  check(a.cols() == b.rows(), "matmul: inner dimensions differ");
  check(c.rows() == a.rows() && c.cols() == b.cols(),
        "matmul_into: destination shape mismatch");
  c.zero();
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();

  // i-k-j: the inner loop is a contiguous saxpy over C's row.
  const bool parallel = m * k * n > (1u << 20);
#pragma omp parallel for if (parallel) schedule(static)
  for (std::size_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
      const float aval = pa[i * k + kk];
      if (aval == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

Matrix matmul_transpose_a(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  matmul_transpose_a_acc(c, a, b);
  return c;
}

void matmul_transpose_a_acc(Matrix& c, const Matrix& a, const Matrix& b) {
  check(a.rows() == b.rows(), "matmul_transpose_a: row counts differ");
  check(c.rows() == a.cols() && c.cols() == b.cols(),
        "matmul_transpose_a_acc: destination shape mismatch");
  const std::size_t m = a.cols();
  const std::size_t k = a.rows();
  const std::size_t n = b.cols();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  // C[i,j] = sum_kk A[kk,i] * B[kk,j]; iterate kk outer for contiguity.
  for (std::size_t kk = 0; kk < k; ++kk) {
    const float* arow = pa + kk * m;
    const float* brow = pb + kk * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aval = arow[i];
      if (aval == 0.0f) continue;
      float* crow = pc + i * n;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aval * brow[j];
    }
  }
}

Matrix matmul_transpose_b(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  matmul_transpose_b_into(c, a, b);
  return c;
}

void matmul_transpose_b_into(Matrix& c, const Matrix& a, const Matrix& b) {
  check(a.cols() == b.cols(), "matmul_transpose_b: col counts differ");
  check(c.rows() == a.rows() && c.cols() == b.rows(),
        "matmul_transpose_b_into: destination shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  const float* pa = a.data().data();
  const float* pb = b.data().data();
  float* pc = c.data().data();
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = pa + i * k;
    float* crow = pc + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* brow = pb + j * k;
      double acc = 0.0;
      for (std::size_t kk = 0; kk < k; ++kk) acc += static_cast<double>(arow[kk]) * brow[kk];
      crow[j] = static_cast<float>(acc);
    }
  }
}

Matrix transpose(const Matrix& a) {
  Matrix t(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
  return t;
}

Matrix add(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.add_(b);
  return c;
}

Matrix sub(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.sub_(b);
  return c;
}

Matrix hadamard(const Matrix& a, const Matrix& b) {
  Matrix c = a;
  c.mul_(b);
  return c;
}

Matrix column_sums(const Matrix& a) {
  Matrix out(1, a.cols());
  column_sums_acc(out, a);
  return out;
}

void column_sums_acc(Matrix& out, const Matrix& a) {
  check(out.rows() == 1 && out.cols() == a.cols(),
        "column_sums_acc: destination shape mismatch");
  auto sums = out.row_span(0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto row = a.row_span(i);
    for (std::size_t j = 0; j < a.cols(); ++j) sums[j] += row[j];
  }
}

Matrix row_mean(const Matrix& a) {
  Matrix out(1, a.cols());
  row_mean_into(out, a);
  return out;
}

void row_mean_into(Matrix& out, const Matrix& a) {
  check(a.rows() > 0, "row_mean of empty matrix");
  out.zero();
  column_sums_acc(out, a);
  out.scale_(1.0f / static_cast<float>(a.rows()));
}

}  // namespace pg::tensor
