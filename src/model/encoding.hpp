// ProgramGraph -> model tensors.
//
// Node features are a one-hot over the ~45 AST node kinds plus one extra
// column carrying the log-magnitude of integer literals (Clang AST literal
// nodes carry their values; without this column no unweighted
// representation could see loop extents at all and the Raw-vs-Augmented
// ablation would collapse). Loop extents still reach the model primarily
// through ParaGraph's Child-edge weights — the literal column is a weak,
// node-local signal the unweighted representations must *propagate* through
// their edges, which is exactly the paper's Augmented-AST story.
#pragma once

#include "graph/program_graph.hpp"
#include "nn/relational_graph.hpp"
#include "tensor/matrix.hpp"

namespace pg::model {

/// One-hot node kind + literal log-magnitude column.
constexpr std::size_t kNodeFeatureDim = frontend::kNumNodeKinds + 1;

struct EncodedGraph {
  tensor::Matrix features;      // [N x kNodeFeatureDim]
  nn::RelationalGraph relations;  // one RelationEdges per EdgeType
};

/// `child_weight_scale` is the dataset-global maximum Child-edge weight used
/// for MinMax scaling (paper §IV-B); pass 1.0 for unweighted representations.
EncodedGraph encode_graph(const graph::ProgramGraph& graph,
                          double child_weight_scale);

}  // namespace pg::model
