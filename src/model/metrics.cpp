// RMSE / relative-error slices (per runtime bin, per application) used by
// the figure benches.
#include "model/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"
#include "support/stats.hpp"

namespace pg::model {
namespace {

double actual_range(const std::vector<TrainingSample>& samples) {
  check(!samples.empty(), "metrics: empty sample list");
  double lo = samples.front().runtime_us;
  double hi = lo;
  for (const auto& s : samples) {
    lo = std::min(lo, s.runtime_us);
    hi = std::max(hi, s.runtime_us);
  }
  return hi - lo;
}

}  // namespace

std::vector<BinError> binned_relative_error(
    const std::vector<TrainingSample>& samples,
    const std::vector<double>& predictions_us, std::size_t num_bins) {
  check(samples.size() == predictions_us.size(), "metrics: size mismatch");
  const double range = actual_range(samples);
  check(range > 0.0, "metrics: zero runtime range");

  std::vector<double> error_sum(num_bins, 0.0);
  std::vector<std::size_t> counts(num_bins, 0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const std::size_t bin = stats::ten_second_bin(samples[i].runtime_us, num_bins);
    error_sum[bin] += std::abs(samples[i].runtime_us - predictions_us[i]);
    ++counts[bin];
  }

  std::vector<BinError> out;
  for (std::size_t bin = 0; bin < num_bins; ++bin) {
    if (counts[bin] == 0) continue;
    out.push_back({bin, counts[bin],
                   error_sum[bin] / static_cast<double>(counts[bin]) / range});
  }
  return out;
}

std::vector<AppError> per_app_error(const std::vector<TrainingSample>& samples,
                                    const std::vector<double>& predictions_us) {
  check(samples.size() == predictions_us.size(), "metrics: size mismatch");
  const double range = actual_range(samples);
  check(range > 0.0, "metrics: zero runtime range");

  std::map<std::string, std::pair<double, std::size_t>> acc;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    auto& [sum, count] = acc[samples[i].app_name];
    sum += std::abs(samples[i].runtime_us - predictions_us[i]);
    ++count;
  }

  std::vector<AppError> out;
  out.reserve(acc.size());
  for (const auto& [name, pair] : acc)
    out.push_back({name, pair.second,
                   pair.first / static_cast<double>(pair.second) / range});
  return out;
}

std::string bin_label(std::size_t bin, std::size_t num_bins) {
  if (bin + 1 >= num_bins) return "100 <";
  return std::to_string(bin * 10) + "-" + std::to_string((bin + 1) * 10);
}

}  // namespace pg::model
