// Mini-batch Adam/MSE training loop over fused GraphBatch chunks.
//
// Determinism: each batch is split into contiguous chunks whose boundaries
// are a pure function of the batch's per-sample costs (model/schedule.hpp)
// — never of the thread count or schedule. A chunk packs its samples into
// one block-diagonal GraphBatch and accumulates the summed gradient with a
// single fused forward/backward — a fixed, serial FP order. Chunks run in
// parallel (they are independent), and the per-chunk buffers are then
// reduced in chunk order on one thread. No step depends on the OpenMP
// thread count, so training is bitwise-reproducible across machines. (The
// pre-CSR trainer accumulated per *thread*, which was only reproducible
// for a fixed thread count; the pre-cost trainer pinned 16 chunks, which
// wasted cores on small batches and unbalanced skewed ones.)
#include "model/trainer.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/engine.hpp"
#include "model/graph_batch.hpp"
#include "model/schedule.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace pg::model {
namespace {

/// Gradient chunks aim at this cost per chunk (nodes + 2*edges + overhead
/// per sample): small enough that even a modest batch splits into several
/// independent fused passes, large enough that a chunk amortises its pack.
/// Part of the training recipe — with the hard cap below, the chunking
/// (and thus the FP reduction order) is the same whether the run uses 1
/// thread or 64.
constexpr std::uint64_t kGradChunkCostTarget = 512;

/// Hard ceiling on chunks per batch: bounds the per-chunk gradient-buffer
/// memory (each chunk holds a full parameter-shaped accumulator).
constexpr std::size_t kMaxGradChunks = 64;

/// Arena bound per gradient chunk. Shuffling re-composes every chunk each
/// step, so the shape-keyed grow-only Workspace would otherwise accrete a
/// bucket per never-seen block-diagonal shape for the whole run. The arena
/// is dropped once it exceeds BOTH this cap and twice its post-reset
/// single-step footprint (so a legitimately large chunk never thrashes);
/// the trigger depends only on the (deterministic) shape history, so
/// training stays bitwise-reproducible.
constexpr std::size_t kChunkArenaCapBytes = 16u << 20;

double evaluate_rmse_us(InferenceEngine& engine,
                        const std::vector<TrainingSample>& samples,
                        const SampleSet& set,
                        std::vector<double>* predictions_out) {
  if (samples.empty()) return 0.0;
  std::vector<double> predictions = engine.predict_samples_us(samples, set);
  std::vector<double> actual(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) actual[i] = samples[i].runtime_us;
  const double rmse = stats::rmse(actual, predictions);
  if (predictions_out != nullptr) *predictions_out = std::move(predictions);
  return rmse;
}

/// Everything one gradient chunk reuses across steps — all grow-only, so
/// steady-state training does no per-batch heap work.
struct ChunkState {
  std::vector<tensor::Matrix> grads;
  tensor::Workspace ws;
  GraphBatch batch;
  tensor::Matrix aux;                     // [chunk x 2]
  std::vector<const EncodedGraph*> graphs;
  std::vector<double> targets;
  std::size_t arena_baseline = 0;  // ws footprint after last reset's step
};

}  // namespace

std::vector<double> predict_all(const ParaGraphModel& model,
                                const std::vector<TrainingSample>& samples,
                                const SampleSet& set) {
  InferenceEngine engine(model);
  return engine.predict_samples_us(samples, set);
}

TrainResult train_model(ParaGraphModel& model, const SampleSet& set,
                        const TrainConfig& config) {
  check(!set.train.empty(), "train_model: empty training set");
  check(config.batch_size > 0 && config.epochs > 0, "train_model: bad config");

  nn::AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  nn::Adam adam(model.parameters(), adam_config);

  // Chunk states are created on demand as batches call for more chunks
  // (grow-only, like everything else in the loop).
  std::vector<ChunkState> chunks;
  InferenceEngine eval_engine(model);

  std::vector<std::size_t> order(set.train.size());
  std::iota(order.begin(), order.end(), 0);
  pg::Rng shuffle_rng(config.shuffle_seed);

  // Per-sample cost under the scheduling model, indexed like set.train;
  // batch chunk boundaries derive from these alone (thread-independent).
  std::vector<std::uint64_t> sample_cost(set.train.size());
  for (std::size_t i = 0; i < set.train.size(); ++i)
    sample_cost[i] = schedule::graph_cost(set.train[i].graph);
  std::vector<std::uint64_t> batch_costs;
  std::vector<std::uint32_t> bounds;
  std::vector<double> chunk_loss;

  // Normalisation range over the *runtime* domain (the scaler may be in
  // log space when set.log_target is on).
  double min_runtime = set.train.front().runtime_us;
  double max_runtime = min_runtime;
  for (const auto& sample : set.train) {
    min_runtime = std::min(min_runtime, sample.runtime_us);
    max_runtime = std::max(max_runtime, sample.runtime_us);
  }
  const double actual_range = max_runtime - min_runtime;
  TrainResult result;
  result.history.reserve(config.epochs);

  for (int epoch = 1; epoch <= config.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;

    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(config.batch_size));
      const std::size_t len = end - start;
      const double grad_scale = 1.0 / static_cast<double>(len);

      // Cost-balanced chunk boundaries, a pure function of the shuffled
      // batch's sample costs: identical on every machine, whatever omp
      // does with the loop below. Doubling the target on cap overflow is
      // deterministic too (it depends only on the same costs).
      batch_costs.clear();
      std::uint64_t batch_cost = 0;
      for (std::size_t i = start; i < end; ++i) {
        batch_costs.push_back(sample_cost[order[i]]);
        batch_cost += batch_costs.back();
      }
      std::uint64_t target = std::max(
          kGradChunkCostTarget,
          (batch_cost + kMaxGradChunks - 1) / kMaxGradChunks);
      schedule::partition_by_cost(batch_costs, target, len, bounds);
      while (bounds.size() - 1 > kMaxGradChunks) {
        target *= 2;
        schedule::partition_by_cost(batch_costs, target, len, bounds);
      }
      const std::size_t num_chunks = bounds.size() - 1;
      while (chunks.size() < num_chunks) {
        chunks.emplace_back();
        chunks.back().grads = adam.make_gradient_buffer();
      }

      chunk_loss.assign(num_chunks, 0.0);
#pragma omp parallel for schedule(dynamic, 1)
      for (std::size_t c = 0; c < num_chunks; ++c) {
        const std::size_t lo = start + bounds[c];
        const std::size_t hi = start + bounds[c + 1];
        ChunkState& chunk = chunks[c];
        if (chunk.arena_baseline > 0 &&
            chunk.ws.bytes_reserved() >
                std::max(kChunkArenaCapBytes, 2 * chunk.arena_baseline)) {
          chunk.ws = tensor::Workspace();
          chunk.arena_baseline = 0;
        }
        chunk.graphs.clear();
        chunk.targets.clear();
        chunk.aux.reshape(hi - lo, 2);
        for (std::size_t i = lo; i < hi; ++i) {
          const TrainingSample& sample = set.train[order[i]];
          chunk.graphs.push_back(&sample.graph);
          chunk.targets.push_back(sample.target_scaled);
          auto row = chunk.aux.row_span(i - lo);
          row[0] = sample.aux[0];
          row[1] = sample.aux[1];
        }
        chunk.batch.pack(chunk.graphs);
        chunk_loss[c] = model.accumulate_gradients_batch(
            chunk.batch, chunk.aux, chunk.targets, grad_scale, chunk.grads,
            chunk.ws);
        if (chunk.arena_baseline == 0)
          chunk.arena_baseline = chunk.ws.bytes_reserved();
      }

      // Ordered reduction: chunk 0 hosts the sum; losses and gradient
      // buffers are folded in ascending chunk index.
      auto& base = chunks[0].grads;
      for (std::size_t c = 0; c < num_chunks; ++c) {
        epoch_loss += chunk_loss[c];
        if (c > 0)
          for (std::size_t p = 0; p < base.size(); ++p)
            base[p].add_(chunks[c].grads[p]);
      }
      adam.step(base);
      for (std::size_t c = 0; c < num_chunks; ++c)
        for (auto& grad : chunks[c].grads) grad.zero();
    }

    EpochRecord record;
    record.epoch = epoch;
    record.train_mse_scaled = epoch_loss / static_cast<double>(order.size());
    const bool last_epoch = (epoch == config.epochs);
    record.val_rmse_us = evaluate_rmse_us(
        eval_engine, set.validation, set,
        last_epoch ? &result.val_predictions_us : nullptr);
    record.val_norm_rmse =
        actual_range > 0.0 ? record.val_rmse_us / actual_range : 0.0;
    result.history.push_back(record);
    if (config.on_epoch) config.on_epoch(epoch, record.train_mse_scaled,
                                         record.val_rmse_us);
  }

  if (!result.history.empty()) {
    result.final_rmse_us = result.history.back().val_rmse_us;
    result.final_norm_rmse = result.history.back().val_norm_rmse;
  }
  return result;
}

}  // namespace pg::model
