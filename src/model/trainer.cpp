// Mini-batch Adam/MSE training loop over fused GraphBatch chunks.
//
// Determinism: each batch is split into contiguous chunks whose boundaries
// are a pure function of the batch's per-sample costs (model/schedule.hpp)
// — never of the thread count or schedule. A chunk packs its samples into
// one block-diagonal GraphBatch and accumulates the summed gradient with a
// single fused forward/backward — a fixed, serial FP order. Chunks run in
// parallel (they are independent), and the per-chunk buffers are then
// reduced in chunk order on one thread. No step depends on the OpenMP
// thread count, so training is bitwise-reproducible across machines. (The
// pre-CSR trainer accumulated per *thread*, which was only reproducible
// for a fixed thread count; the pre-cost trainer pinned 16 chunks, which
// wasted cores on small batches and unbalanced skewed ones.)
#include "model/trainer.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <exception>
#include <numeric>

#include "model/engine.hpp"
#include "model/graph_batch.hpp"
#include "model/schedule.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace pg::model {
namespace {

/// Gradient chunks aim at this cost per chunk (nodes + 2*edges + overhead
/// per sample): small enough that even a modest batch splits into several
/// independent fused passes, large enough that a chunk amortises its pack.
/// Part of the training recipe — with the hard cap below, the chunking
/// (and thus the FP reduction order) is the same whether the run uses 1
/// thread or 64.
constexpr std::uint64_t kGradChunkCostTarget = 512;

/// Hard ceiling on chunks per batch: bounds the per-chunk gradient-buffer
/// memory (each chunk holds a full parameter-shaped accumulator).
constexpr std::size_t kMaxGradChunks = 64;

/// Arena bound per gradient chunk. Shuffling re-composes every chunk each
/// step, so the shape-keyed grow-only Workspace would otherwise accrete a
/// bucket per never-seen block-diagonal shape for the whole run. The arena
/// is dropped once it exceeds BOTH this cap and twice its post-reset
/// single-step footprint (so a legitimately large chunk never thrashes);
/// the trigger depends only on the (deterministic) shape history, so
/// training stays bitwise-reproducible.
constexpr std::size_t kChunkArenaCapBytes = 16u << 20;

double evaluate_rmse_us(InferenceEngine& engine,
                        const std::vector<TrainingSample>& samples,
                        const SampleSet& set,
                        std::vector<double>* predictions_out) {
  if (samples.empty()) return 0.0;
  std::vector<double> predictions = engine.predict_samples_us(samples, set);
  std::vector<double> actual(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) actual[i] = samples[i].runtime_us;
  const double rmse = stats::rmse(actual, predictions);
  if (predictions_out != nullptr) *predictions_out = std::move(predictions);
  return rmse;
}

/// Everything one gradient chunk reuses across steps — all grow-only, so
/// steady-state training does no per-batch heap work.
struct ChunkState {
  std::vector<tensor::Matrix> grads;
  tensor::Workspace ws;
  GraphBatch batch;
  tensor::Matrix aux;                     // [chunk x 2]
  std::vector<const EncodedGraph*> graphs;
  std::vector<double> targets;
  std::size_t arena_baseline = 0;  // ws footprint after last reset's step
};

/// The optimisation core shared by the in-RAM and streaming trainers: one
/// call is one mini-batch step — cost-balanced chunk partition, parallel
/// fused chunk gradients, ordered reduction, one Adam update. Every FP
/// operation is a pure function of the batch's samples and costs (never of
/// where the samples live or how many threads run), which is what makes
/// train_model_streaming bitwise-equal to train_model.
class BatchStepper {
 public:
  BatchStepper(ParaGraphModel& model, const nn::AdamConfig& adam_config)
      : model_(model), adam_(model.parameters(), adam_config) {}

  /// Runs one step over `samples` (with per-sample `costs` aligned to it)
  /// and folds the batch's chunk losses into `epoch_loss` in chunk order —
  /// the exact accumulation grouping the pre-refactor loop used.
  void step(const std::vector<const TrainingSample*>& samples,
            const std::vector<std::uint64_t>& costs, double& epoch_loss) {
    const std::size_t len = samples.size();
    const double grad_scale = 1.0 / static_cast<double>(len);

    // Cost-balanced chunk boundaries, a pure function of the batch's
    // sample costs: identical on every machine, whatever omp does with the
    // loop below. Doubling the target on cap overflow is deterministic too
    // (it depends only on the same costs).
    std::uint64_t batch_cost = 0;
    for (const std::uint64_t c : costs) batch_cost += c;
    std::uint64_t target = std::max(
        kGradChunkCostTarget, (batch_cost + kMaxGradChunks - 1) / kMaxGradChunks);
    schedule::partition_by_cost(costs, target, len, bounds_);
    while (bounds_.size() - 1 > kMaxGradChunks) {
      target *= 2;
      schedule::partition_by_cost(costs, target, len, bounds_);
    }
    const std::size_t num_chunks = bounds_.size() - 1;
    while (chunks_.size() < num_chunks) {
      chunks_.emplace_back();
      chunks_.back().grads = adam_.make_gradient_buffer();
    }

    chunk_loss_.assign(num_chunks, 0.0);
#pragma omp parallel for schedule(dynamic, 1)
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t lo = bounds_[c];
      const std::size_t hi = bounds_[c + 1];
      ChunkState& chunk = chunks_[c];
      if (chunk.arena_baseline > 0 &&
          chunk.ws.bytes_reserved() >
              std::max(kChunkArenaCapBytes, 2 * chunk.arena_baseline)) {
        chunk.ws = tensor::Workspace();
        chunk.arena_baseline = 0;
      }
      chunk.graphs.clear();
      chunk.targets.clear();
      chunk.aux.reshape(hi - lo, 2);
      for (std::size_t i = lo; i < hi; ++i) {
        const TrainingSample& sample = *samples[i];
        chunk.graphs.push_back(&sample.graph);
        chunk.targets.push_back(sample.target_scaled);
        auto row = chunk.aux.row_span(i - lo);
        row[0] = sample.aux[0];
        row[1] = sample.aux[1];
      }
      chunk.batch.pack(chunk.graphs);
      chunk_loss_[c] = model_.accumulate_gradients_batch(
          chunk.batch, chunk.aux, chunk.targets, grad_scale, chunk.grads,
          chunk.ws);
      if (chunk.arena_baseline == 0)
        chunk.arena_baseline = chunk.ws.bytes_reserved();
    }

    // Ordered reduction: chunk 0 hosts the sum; losses and gradient
    // buffers are folded in ascending chunk index.
    auto& base = chunks_[0].grads;
    for (std::size_t c = 0; c < num_chunks; ++c) {
      epoch_loss += chunk_loss_[c];
      if (c > 0)
        for (std::size_t p = 0; p < base.size(); ++p)
          base[p].add_(chunks_[c].grads[p]);
    }
    adam_.step(base);
    for (std::size_t c = 0; c < num_chunks; ++c)
      for (auto& grad : chunks_[c].grads) grad.zero();
  }

 private:
  ParaGraphModel& model_;
  nn::Adam adam_;
  std::vector<ChunkState> chunks_;   // grown on demand, like before
  std::vector<std::uint32_t> bounds_;
  std::vector<double> chunk_loss_;
};

}  // namespace

std::vector<double> predict_all(const ParaGraphModel& model,
                                const std::vector<TrainingSample>& samples,
                                const SampleSet& set) {
  InferenceEngine engine(model);
  return engine.predict_samples_us(samples, set);
}

TrainResult train_model(ParaGraphModel& model, const SampleSet& set,
                        const TrainConfig& config) {
  check(!set.train.empty(), "train_model: empty training set");
  check(config.batch_size > 0 && config.epochs > 0, "train_model: bad config");

  nn::AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  BatchStepper stepper(model, adam_config);
  InferenceEngine eval_engine(model);

  std::vector<std::size_t> order(set.train.size());
  std::iota(order.begin(), order.end(), 0);
  pg::Rng shuffle_rng(config.shuffle_seed);

  // Per-sample cost under the scheduling model, indexed like set.train;
  // batch chunk boundaries derive from these alone (thread-independent).
  std::vector<std::uint64_t> sample_cost(set.train.size());
  for (std::size_t i = 0; i < set.train.size(); ++i)
    sample_cost[i] = schedule::graph_cost(set.train[i].graph);
  std::vector<const TrainingSample*> batch_samples;
  std::vector<std::uint64_t> batch_costs;

  // Normalisation range over the *runtime* domain (the scaler may be in
  // log space when set.log_target is on).
  double min_runtime = set.train.front().runtime_us;
  double max_runtime = min_runtime;
  for (const auto& sample : set.train) {
    min_runtime = std::min(min_runtime, sample.runtime_us);
    max_runtime = std::max(max_runtime, sample.runtime_us);
  }
  const double actual_range = max_runtime - min_runtime;
  TrainResult result;
  result.history.reserve(config.epochs);

  for (int epoch = 1; epoch <= config.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;

    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(config.batch_size));
      batch_samples.clear();
      batch_costs.clear();
      for (std::size_t i = start; i < end; ++i) {
        batch_samples.push_back(&set.train[order[i]]);
        batch_costs.push_back(sample_cost[order[i]]);
      }
      stepper.step(batch_samples, batch_costs, epoch_loss);
    }

    EpochRecord record;
    record.epoch = epoch;
    record.train_mse_scaled = epoch_loss / static_cast<double>(order.size());
    const bool last_epoch = (epoch == config.epochs);
    record.val_rmse_us = evaluate_rmse_us(
        eval_engine, set.validation, set,
        last_epoch ? &result.val_predictions_us : nullptr);
    record.val_norm_rmse =
        actual_range > 0.0 ? record.val_rmse_us / actual_range : 0.0;
    result.history.push_back(record);
    if (config.on_epoch) config.on_epoch(epoch, record.train_mse_scaled,
                                         record.val_rmse_us);
  }

  if (!result.history.empty()) {
    result.final_rmse_us = result.history.back().val_rmse_us;
    result.final_norm_rmse = result.history.back().val_norm_rmse;
  }
  return result;
}

namespace {

/// Runs fn(i) for i in [lo, hi) across `threads` workers (0 = omp default)
/// without letting an exception escape the parallel region: the failure at
/// the lowest index — the one a sequential pass would have hit first — is
/// rethrown after the join, so corrupt-record errors are deterministic.
template <typename Fn>
void parallel_load(std::size_t lo, std::size_t hi, int threads, Fn&& fn) {
  std::exception_ptr first_error;
  std::size_t first_error_index = hi;
  const int team = threads > 0 ? threads : omp_get_max_threads();
#pragma omp parallel for schedule(static) num_threads(team)
  for (std::int64_t idx = static_cast<std::int64_t>(lo);
       idx < static_cast<std::int64_t>(hi); ++idx) {
    const auto i = static_cast<std::size_t>(idx);
    try {
      fn(i);
    } catch (...) {
#pragma omp critical(pg_trainer_parallel_load_error)
      {
        if (first_error == nullptr || i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace

TrainResult train_model_streaming(ParaGraphModel& model,
                                  const SampleStore& train_store,
                                  const SampleSet& holdout,
                                  const StreamTrainConfig& config) {
  const TrainConfig& base = config.base;
  const std::size_t n = train_store.size();
  check(n > 0, "train_model_streaming: empty training store");
  check(base.batch_size > 0 && base.epochs > 0,
        "train_model_streaming: bad config");

  const auto batch = static_cast<std::size_t>(base.batch_size);
  // Round the window down to whole batches (minimum one batch): batch
  // boundaries then coincide exactly with train_model's, and since one
  // step only ever sees its own batch, streaming matches the in-RAM
  // trainer bit for bit at every window size.
  std::size_t window = std::max(config.window, batch);
  window -= window % batch;

  nn::AdamConfig adam_config;
  adam_config.learning_rate = base.learning_rate;
  BatchStepper stepper(model, adam_config);
  InferenceEngine eval_engine(model);

  // Prepass: one parallel sweep decodes each sample once for the two
  // whole-corpus facts the loop needs — the schedule cost (chunk
  // partitioning) and the runtime range (RMSE normalisation). Samples are
  // dropped immediately; only two scalars per record stay resident.
  std::vector<std::uint64_t> sample_cost(n);
  std::vector<double> runtime_us(n);
  {
    // Per-iteration local sample: allocation is churned here, but the
    // prepass runs once; the epoch loop below reuses its window slots.
    parallel_load(0, n, config.load_threads, [&](std::size_t i) {
      TrainingSample sample;
      train_store.load(i, sample);
      sample_cost[i] = schedule::graph_cost(sample.graph);
      runtime_us[i] = sample.runtime_us;
    });
  }
  double min_runtime = runtime_us.front();
  double max_runtime = min_runtime;
  for (const double r : runtime_us) {
    min_runtime = std::min(min_runtime, r);
    max_runtime = std::max(max_runtime, r);
  }
  const double actual_range = max_runtime - min_runtime;

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  pg::Rng shuffle_rng(base.shuffle_seed);

  std::vector<TrainingSample> slots(std::min(window, n));
  std::vector<const TrainingSample*> batch_samples;
  std::vector<std::uint64_t> batch_costs;

  TrainResult result;
  result.history.reserve(base.epochs);

  for (int epoch = 1; epoch <= base.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;

    for (std::size_t seg_lo = 0; seg_lo < n; seg_lo += window) {
      const std::size_t seg_hi = std::min(n, seg_lo + window);
      // Fill the window: workers decode disjoint shards of the shuffled
      // order into fixed slots. load() is deterministic, so the window
      // contents — and everything downstream — are thread-independent.
      parallel_load(seg_lo, seg_hi, config.load_threads, [&](std::size_t j) {
        train_store.load(order[j], slots[j - seg_lo]);
      });

      for (std::size_t start = seg_lo; start < seg_hi; start += batch) {
        const std::size_t end = std::min(seg_hi, start + batch);
        batch_samples.clear();
        batch_costs.clear();
        for (std::size_t i = start; i < end; ++i) {
          batch_samples.push_back(&slots[i - seg_lo]);
          batch_costs.push_back(sample_cost[order[i]]);
        }
        stepper.step(batch_samples, batch_costs, epoch_loss);
      }
    }

    EpochRecord record;
    record.epoch = epoch;
    record.train_mse_scaled = epoch_loss / static_cast<double>(n);
    const bool last_epoch = (epoch == base.epochs);
    record.val_rmse_us = evaluate_rmse_us(
        eval_engine, holdout.validation, holdout,
        last_epoch ? &result.val_predictions_us : nullptr);
    record.val_norm_rmse =
        actual_range > 0.0 ? record.val_rmse_us / actual_range : 0.0;
    result.history.push_back(record);
    if (base.on_epoch)
      base.on_epoch(epoch, record.train_mse_scaled, record.val_rmse_us);
  }

  if (!result.history.empty()) {
    result.final_rmse_us = result.history.back().val_rmse_us;
    result.final_norm_rmse = result.history.back().val_norm_rmse;
  }
  return result;
}

}  // namespace pg::model
