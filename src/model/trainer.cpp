// Mini-batch Adam/MSE training loop, OpenMP-parallel across the graphs of
// a batch with per-thread gradient accumulation and per-thread workspaces
// (no per-sample heap traffic once the arenas are warm).
#include "model/trainer.hpp"

#include <omp.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "model/engine.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace pg::model {
namespace {

double evaluate_rmse_us(InferenceEngine& engine,
                        const std::vector<TrainingSample>& samples,
                        const SampleSet& set,
                        std::vector<double>* predictions_out) {
  if (samples.empty()) return 0.0;
  std::vector<double> predictions = engine.predict_samples_us(samples, set);
  std::vector<double> actual(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) actual[i] = samples[i].runtime_us;
  const double rmse = stats::rmse(actual, predictions);
  if (predictions_out != nullptr) *predictions_out = std::move(predictions);
  return rmse;
}

}  // namespace

std::vector<double> predict_all(const ParaGraphModel& model,
                                const std::vector<TrainingSample>& samples,
                                const SampleSet& set) {
  InferenceEngine engine(model);
  return engine.predict_samples_us(samples, set);
}

TrainResult train_model(ParaGraphModel& model, const SampleSet& set,
                        const TrainConfig& config) {
  check(!set.train.empty(), "train_model: empty training set");
  check(config.batch_size > 0 && config.epochs > 0, "train_model: bad config");

  nn::AdamConfig adam_config;
  adam_config.learning_rate = config.learning_rate;
  nn::Adam adam(model.parameters(), adam_config);

  const int max_threads = omp_get_max_threads();
  std::vector<std::vector<tensor::Matrix>> thread_grads;
  thread_grads.reserve(max_threads);
  for (int t = 0; t < max_threads; ++t)
    thread_grads.push_back(adam.make_gradient_buffer());
  // Per-thread arenas: every sample's forward/backward reuses its thread's
  // grow-only buffers, and the validation engine keeps its own pool warm
  // across epochs.
  std::vector<tensor::Workspace> thread_ws(max_threads);
  InferenceEngine eval_engine(model);

  std::vector<std::size_t> order(set.train.size());
  std::iota(order.begin(), order.end(), 0);
  pg::Rng shuffle_rng(config.shuffle_seed);

  // Normalisation range over the *runtime* domain (the scaler may be in
  // log space when set.log_target is on).
  double min_runtime = set.train.front().runtime_us;
  double max_runtime = min_runtime;
  for (const auto& sample : set.train) {
    min_runtime = std::min(min_runtime, sample.runtime_us);
    max_runtime = std::max(max_runtime, sample.runtime_us);
  }
  const double actual_range = max_runtime - min_runtime;
  TrainResult result;
  result.history.reserve(config.epochs);

  for (int epoch = 1; epoch <= config.epochs; ++epoch) {
    shuffle_rng.shuffle(order);
    double epoch_loss = 0.0;

    for (std::size_t start = 0; start < order.size();
         start += static_cast<std::size_t>(config.batch_size)) {
      const std::size_t end =
          std::min(order.size(), start + static_cast<std::size_t>(config.batch_size));
      const double grad_scale = 1.0 / static_cast<double>(end - start);

      double batch_loss = 0.0;
      // Static schedule: each thread owns a fixed slice of the batch, so the
      // per-thread accumulation (and the reduction order below) is identical
      // across runs with the same thread count — bit-reproducible training.
#pragma omp parallel reduction(+ : batch_loss)
      {
        auto& grads = thread_grads[omp_get_thread_num()];
        auto& ws = thread_ws[omp_get_thread_num()];
#pragma omp for schedule(static)
        for (std::size_t i = start; i < end; ++i) {
          const TrainingSample& sample = set.train[order[i]];
          const double pred = model.accumulate_gradients(
              sample.graph, sample.aux, sample.target_scaled, grad_scale, grads,
              ws);
          const double d = pred - sample.target_scaled;
          batch_loss += d * d;
        }
      }
      epoch_loss += batch_loss;

      // Reduce the per-thread buffers into buffer 0 and take the Adam step.
      auto& base = thread_grads[0];
      for (int t = 1; t < max_threads; ++t) {
        for (std::size_t p = 0; p < base.size(); ++p)
          base[p].add_(thread_grads[t][p]);
      }
      adam.step(base);
      for (auto& buffer : thread_grads)
        for (auto& grad : buffer) grad.zero();
    }

    EpochRecord record;
    record.epoch = epoch;
    record.train_mse_scaled = epoch_loss / static_cast<double>(order.size());
    const bool last_epoch = (epoch == config.epochs);
    record.val_rmse_us = evaluate_rmse_us(
        eval_engine, set.validation, set,
        last_epoch ? &result.val_predictions_us : nullptr);
    record.val_norm_rmse =
        actual_range > 0.0 ? record.val_rmse_us / actual_range : 0.0;
    result.history.push_back(record);
    if (config.on_epoch) config.on_epoch(epoch, record.train_mse_scaled,
                                         record.val_rmse_us);
  }

  if (!result.history.empty()) {
    result.final_rmse_us = result.history.back().val_rmse_us;
    result.final_norm_rmse = result.history.back().val_norm_rmse;
  }
  return result;
}

}  // namespace pg::model
