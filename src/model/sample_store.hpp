// SampleStore: the trainer-facing abstraction over "where training samples
// live". The streaming trainer (train_model_streaming) pulls samples by
// index through this interface, so it neither knows nor cares whether the
// corpus is a vector in RAM (VectorSampleStore) or an mmap-backed .pgds
// decoded on demand (io::DatasetSampleStore in src/io/dataset_view.hpp —
// the io layer depends on model, not the other way around, so the adapter
// lives there).
#pragma once

#include <cstddef>

#include "model/sample.hpp"
#include "support/check.hpp"

namespace pg::model {

/// Random-access source of training samples. Implementations must make
/// load() safe to call concurrently from multiple threads (the streaming
/// trainer fills its window in parallel) and deterministic: load(i) yields
/// the same sample every time, whatever the calling thread or order.
class SampleStore {
 public:
  virtual ~SampleStore() = default;

  [[nodiscard]] virtual std::size_t size() const = 0;

  /// Replaces `out` with sample `i`. Thread-safe, deterministic.
  virtual void load(std::size_t i, TrainingSample& out) const = 0;
};

/// In-RAM store over an existing sample vector (borrowed; must outlive the
/// store). load() copies, so the trainer's window owns its samples the same
/// way under both backings.
class VectorSampleStore final : public SampleStore {
 public:
  explicit VectorSampleStore(const std::vector<TrainingSample>& samples)
      : samples_(samples) {}

  [[nodiscard]] std::size_t size() const override { return samples_.size(); }

  void load(std::size_t i, TrainingSample& out) const override {
    check(i < samples_.size(), "SampleStore index out of range");
    out = samples_[i];
  }

 private:
  const std::vector<TrainingSample>& samples_;
};

}  // namespace pg::model
