// Batched inference engine over a trained ParaGraphModel: a per-thread
// pool of grow-only Workspaces plus OpenMP fan-out, so steady-state
// prediction — the advisor's "rank every candidate variant" loop and the
// trainer's validation pass — performs zero heap allocations per graph.
//
// The engine does not own the model; keep the model alive for the engine's
// lifetime. Model parameters may change between calls (the trainer reuses
// one engine across epochs) — predictions always read the current weights.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "model/paragraph_model.hpp"
#include "model/sample.hpp"
#include "tensor/workspace.hpp"

namespace pg::model {

class InferenceEngine {
 public:
  explicit InferenceEngine(const ParaGraphModel& model);

  /// One scaled-domain prediction through the calling thread's workspace.
  [[nodiscard]] double predict_one(const EncodedGraph& graph,
                                   std::span<const float> aux);

  /// Batched scaled-domain predictions, OpenMP-parallel over the graphs.
  /// graphs/aux/out must have equal lengths. Bitwise-identical to calling
  /// predict_one per element: predictions are independent, and workspace
  /// history never leaks into results because every borrowed buffer is
  /// either zero-filled on acquire or fully overwritten before being read
  /// (the acquire_uninit contract).
  void predict_batch(std::span<const EncodedGraph> graphs,
                     std::span<const std::array<float, 2>> aux,
                     std::span<double> out);

  /// Microsecond-domain predictions for a sample list, honouring the set's
  /// target transform (linear or log) and the physical floor (>= 0).
  [[nodiscard]] std::vector<double> predict_samples_us(
      std::span<const TrainingSample> samples, const SampleSet& set);

  [[nodiscard]] const ParaGraphModel& model() const { return *model_; }

  // Aggregate arena statistics over the thread pool — flat counts between
  // two calls mean the steady state (zero allocation) has been reached.
  [[nodiscard]] std::size_t workspace_slots() const;
  [[nodiscard]] std::size_t workspace_bytes() const;

 private:
  tensor::Workspace& workspace_for_current_thread();

  const ParaGraphModel* model_;
  std::vector<tensor::Workspace> pool_;  // one per OpenMP thread
};

}  // namespace pg::model
