// Batched inference engine over a trained ParaGraphModel: per-thread
// fused-batch state (grow-only Workspace + GraphBatch packer) plus OpenMP
// fan-out over batch chunks, so steady-state prediction — the advisor's
// "rank every candidate variant" loop and the trainer's validation pass —
// performs zero heap allocations per graph AND amortises per-graph dispatch:
// each chunk of graphs is packed into one block-diagonal GraphBatch and run
// through a single fused model forward instead of one forward per graph.
//
// Chunk boundaries come from a deterministic cost model over per-graph
// node/edge counts (model/schedule.hpp): chunk costs equalise, so
// schedule(dynamic) stealing balances skewed batches instead of serialising
// behind the biggest graph. A chunk too big to share — a single giant
// graph — runs in a serial phase where the fused forward's intra-batch
// split points (support/parallel.hpp) fan its rows out across the cores.
// The cut never affects values: fused predictions are bitwise-equal per
// graph however the batch is chunked or threaded.
//
// The engine does not own the model; keep the model alive for the engine's
// lifetime. Model parameters may change between calls (the trainer reuses
// one engine across epochs) — predictions always read the current weights.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "model/graph_batch.hpp"
#include "model/paragraph_model.hpp"
#include "model/sample.hpp"
#include "support/env.hpp"
#include "tensor/workspace.hpp"

namespace pg::model {

/// Scheduler counters, cumulative over an engine's lifetime. Monitoring
/// only — reads are racy-but-consistent snapshots of relaxed atomics and
/// never affect predictions. rows/chunks gives mean fused rows per chunk;
/// intra_chunks counts chunks run in the serial intra-parallel phase.
struct ScheduleStats {
  std::uint64_t batches = 0;       ///< run_chunked invocations
  std::uint64_t graphs = 0;        ///< graphs predicted
  std::uint64_t chunks = 0;        ///< fused chunks dispatched
  std::uint64_t rows = 0;          ///< node rows packed into fused batches
  std::uint64_t intra_chunks = 0;  ///< chunks given intra-batch parallelism
  double last_imbalance = 1.0;     ///< max/mean chunk cost of the last plan
};

class InferenceEngine {
 public:
  explicit InferenceEngine(const ParaGraphModel& model);

  /// One scaled-domain prediction through the calling thread's workspace.
  [[nodiscard]] double predict_one(const EncodedGraph& graph,
                                   std::span<const float> aux);

  /// Batched scaled-domain predictions: graphs are packed into
  /// block-diagonal GraphBatch chunks and each chunk runs one fused model
  /// forward (OpenMP-parallel across chunks). graphs/aux/out must have
  /// equal lengths. Bitwise-identical to calling predict_one per element:
  /// the fused forward performs the same per-graph FP operations in the
  /// same order (engine_test pins this), and workspace history never leaks
  /// into results because every borrowed buffer is either zero-filled on
  /// acquire or fully overwritten before being read.
  void predict_batch(std::span<const EncodedGraph> graphs,
                     std::span<const std::array<float, 2>> aux,
                     std::span<double> out);

  /// Microsecond-domain predictions for a sample list, honouring the set's
  /// target transform (linear or log) and the physical floor (>= 0). Runs
  /// the same fused chunked path as predict_batch.
  [[nodiscard]] std::vector<double> predict_samples_us(
      std::span<const TrainingSample> samples, const SampleSet& set);

  /// Pooled per-graph embeddings: reshapes `out` to [graphs.size() x
  /// hidden_dim] and fills each row with the conv-stack + segmented-mean
  /// embedding of the corresponding graph. Runs the same cost-model chunk
  /// fan-out as predict_batch; rows are bitwise-identical to the pooled
  /// rows the predict path computes internally, for any chunking or thread
  /// count (ann_test pins this).
  void embed_batch(std::span<const EncodedGraph> graphs, tensor::Matrix& out);

  /// FC head over embeddings previously produced by embed_batch: one fused
  /// head pass on the calling thread (the head is a few small matmuls —
  /// chunking it would cost more than it saves). Bitwise-identical to the
  /// head portion of predict_batch for any row subset, which is the
  /// contract the serve-time semantic cache's miss path relies on.
  void predict_head(const tensor::Matrix& pooled,
                    std::span<const std::array<float, 2>> aux,
                    std::span<double> out);

  [[nodiscard]] const ParaGraphModel& model() const { return *model_; }

  /// Upper bound on graphs fused per chunk — the compile-time default (64)
  /// unless PARAGRAPH_CHUNK overrode it at engine construction (validated
  /// and clamped to [1, kMaxChunkSize] by pg::env_chunk_override). Under
  /// the cost policy the effective chunk is usually smaller — bounded by
  /// the cost budget (see engine.cpp). Chunking affects throughput only,
  /// never values.
  [[nodiscard]] std::size_t fuse_chunk() const { return fuse_chunk_; }

  /// Active chunk policy: SchedPolicy::kCost balances chunk costs
  /// (default); SchedPolicy::kFixed is the legacy fixed-width cut, implied
  /// by a PARAGRAPH_CHUNK override or selected via PARAGRAPH_SCHED=fixed.
  [[nodiscard]] SchedPolicy chunk_policy() const { return policy_; }

  /// Cumulative scheduler counters (relaxed-atomic snapshot).
  [[nodiscard]] ScheduleStats schedule_stats() const;

  // Aggregate arena statistics over the thread pool — flat counts between
  // two calls mean the steady state (zero allocation) has been reached.
  [[nodiscard]] std::size_t workspace_slots() const;
  [[nodiscard]] std::size_t workspace_bytes() const;

 private:
  /// Per-thread fused-batch state; everything grow-only. Top-level entry
  /// points use the *calling* thread's ptrs/aux_gather/plan buffers, so
  /// concurrent callers from an enclosing parallel region never share
  /// state.
  struct ThreadState {
    tensor::Workspace ws;
    GraphBatch batch;
    tensor::Matrix aux;                          // [chunk x aux_dim]
    tensor::Matrix embed;                        // [chunk x hidden] scratch
    std::vector<const EncodedGraph*> ptrs;       // batch gather scratch
    std::vector<std::array<float, 2>> aux_gather;  // predict_samples_us
    std::vector<std::uint64_t> costs;      // per-graph cost-model scratch
    std::vector<std::uint32_t> bounds;     // chunk boundaries scratch
    std::vector<std::uint32_t> small_chunks;  // phase-1 (chunk-parallel)
    std::vector<std::uint32_t> big_chunks;    // phase-2 (intra-parallel)
    std::size_t arena_baseline = 0;  // ws footprint after last reset's pass
  };

  ThreadState& state_for_current_thread();
  /// Packs graphs [lo, hi) and runs one fused pass into out[lo, hi). When
  /// `embed_out` is non-null the pass stops at the pooled embedding and
  /// writes rows [lo, hi) of `embed_out` instead (aux/out may be empty).
  void run_chunk(std::span<const EncodedGraph* const> graphs,
                 std::span<const std::array<float, 2>> aux,
                 std::span<double> out, tensor::Matrix* embed_out,
                 std::size_t lo, std::size_t hi);
  /// The shared chunk fan-out: plans chunk boundaries (cost-balanced or
  /// fixed-width), runs cheap chunks OpenMP-parallel with dynamic
  /// stealing, then runs oversized chunks serially so the fused forward's
  /// intra-batch split points can use the whole machine. All public batch
  /// entry points (predict and embed) route through here so the threading
  /// policy cannot diverge between them.
  void run_chunked(std::span<const EncodedGraph* const> graphs,
                   std::span<const std::array<float, 2>> aux,
                   std::span<double> out, tensor::Matrix* embed_out);

  const ParaGraphModel* model_;
  std::vector<ThreadState> pool_;  // one per OpenMP thread
  std::optional<std::size_t> chunk_override_;  // PARAGRAPH_CHUNK, if set
  std::size_t fuse_chunk_;         // graphs-per-chunk cap (env-overridable)
  SchedPolicy policy_;             // cost-balanced vs fixed-width cut

  // Scheduler counters (ScheduleStats): relaxed — monitoring only.
  std::atomic<std::uint64_t> stat_batches_{0};
  std::atomic<std::uint64_t> stat_graphs_{0};
  std::atomic<std::uint64_t> stat_chunks_{0};
  std::atomic<std::uint64_t> stat_rows_{0};
  std::atomic<std::uint64_t> stat_intra_chunks_{0};
  std::atomic<double> stat_last_imbalance_{1.0};
};

}  // namespace pg::model
