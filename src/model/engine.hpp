// Batched inference engine over a trained ParaGraphModel: per-thread
// fused-batch state (grow-only Workspace + GraphBatch packer) plus OpenMP
// fan-out over batch chunks, so steady-state prediction — the advisor's
// "rank every candidate variant" loop and the trainer's validation pass —
// performs zero heap allocations per graph AND amortises per-graph dispatch:
// each chunk of graphs is packed into one block-diagonal GraphBatch and run
// through a single fused model forward instead of one forward per graph.
//
// The engine does not own the model; keep the model alive for the engine's
// lifetime. Model parameters may change between calls (the trainer reuses
// one engine across epochs) — predictions always read the current weights.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "model/graph_batch.hpp"
#include "model/paragraph_model.hpp"
#include "model/sample.hpp"
#include "tensor/workspace.hpp"

namespace pg::model {

class InferenceEngine {
 public:
  explicit InferenceEngine(const ParaGraphModel& model);

  /// One scaled-domain prediction through the calling thread's workspace.
  [[nodiscard]] double predict_one(const EncodedGraph& graph,
                                   std::span<const float> aux);

  /// Batched scaled-domain predictions: graphs are packed into
  /// block-diagonal GraphBatch chunks and each chunk runs one fused model
  /// forward (OpenMP-parallel across chunks). graphs/aux/out must have
  /// equal lengths. Bitwise-identical to calling predict_one per element:
  /// the fused forward performs the same per-graph FP operations in the
  /// same order (engine_test pins this), and workspace history never leaks
  /// into results because every borrowed buffer is either zero-filled on
  /// acquire or fully overwritten before being read.
  void predict_batch(std::span<const EncodedGraph> graphs,
                     std::span<const std::array<float, 2>> aux,
                     std::span<double> out);

  /// Microsecond-domain predictions for a sample list, honouring the set's
  /// target transform (linear or log) and the physical floor (>= 0). Runs
  /// the same fused chunked path as predict_batch.
  [[nodiscard]] std::vector<double> predict_samples_us(
      std::span<const TrainingSample> samples, const SampleSet& set);

  [[nodiscard]] const ParaGraphModel& model() const { return *model_; }

  /// Upper bound on graphs fused per chunk — the compile-time default (64)
  /// unless PARAGRAPH_CHUNK overrode it at engine construction (validated
  /// and clamped to [1, kMaxChunkSize] by pg::env_chunk_size). Without an
  /// explicit override the effective chunk additionally adapts to a
  /// node-row cache budget (see engine.cpp). Chunking affects throughput
  /// only, never values.
  [[nodiscard]] std::size_t fuse_chunk() const { return fuse_chunk_; }

  // Aggregate arena statistics over the thread pool — flat counts between
  // two calls mean the steady state (zero allocation) has been reached.
  [[nodiscard]] std::size_t workspace_slots() const;
  [[nodiscard]] std::size_t workspace_bytes() const;

 private:
  /// Per-thread fused-batch state; everything grow-only. Top-level entry
  /// points use the *calling* thread's ptrs/aux_gather as gather buffers, so
  /// concurrent callers from an enclosing parallel region never share state.
  struct ThreadState {
    tensor::Workspace ws;
    GraphBatch batch;
    tensor::Matrix aux;                          // [chunk x aux_dim]
    std::vector<const EncodedGraph*> ptrs;       // batch gather scratch
    std::vector<std::array<float, 2>> aux_gather;  // predict_samples_us
    std::size_t arena_baseline = 0;  // ws footprint after last reset's pass
  };

  ThreadState& state_for_current_thread();
  /// Packs graphs [lo, hi) and runs one fused forward into out[lo, hi).
  void run_chunk(std::span<const EncodedGraph* const> graphs,
                 std::span<const std::array<float, 2>> aux,
                 std::span<double> out, std::size_t lo, std::size_t hi);
  /// The shared chunk fan-out: splits [0, n) into fuse_chunk()-sized chunks
  /// and runs them serially (inside an enclosing parallel region, or when
  /// there is only one chunk) or OpenMP-parallel otherwise. Both public
  /// batch entry points route through here so the threading policy cannot
  /// diverge between them.
  void run_chunked(std::span<const EncodedGraph* const> graphs,
                   std::span<const std::array<float, 2>> aux,
                   std::span<double> out);

  const ParaGraphModel* model_;
  std::vector<ThreadState> pool_;  // one per OpenMP thread
  std::size_t fuse_chunk_;         // graphs-per-chunk cap (env-overridable)
  bool chunk_overridden_;          // PARAGRAPH_CHUNK set: skip the node cap
};

}  // namespace pg::model
