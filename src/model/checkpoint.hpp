// Model checkpointing: save/restore all parameters plus the scalers a
// deployment needs to reproduce predictions (an advisor tool trains once
// and predicts many times).
//
// Format (binary, explicit little-endian — portable across hosts):
//   magic "PGCKPT02", u64 param count, then per parameter u64 rows, u64
//   cols, rows*cols f32; then the three scaler (min,max) f64 pairs, the
//   f64 child-weight scale, and a u8 log-target flag (whether the target
//   scaler operates on log(runtime) — predictions cannot be converted back
//   to microseconds without it).
#pragma once

#include <iosfwd>
#include <string>

#include "model/paragraph_model.hpp"
#include "model/sample.hpp"

namespace pg::model {

/// The scalers that must travel with the weights.
struct CheckpointScalers {
  nn::MinMaxScaler target;
  nn::MinMaxScaler teams;
  nn::MinMaxScaler threads;
  double child_weight_scale = 1.0;
  bool log_target = false;  // see SampleSet::log_target

  static CheckpointScalers from_sample_set(const SampleSet& set) {
    return {set.target_scaler, set.teams_scaler, set.threads_scaler,
            set.child_weight_scale, set.log_target};
  }

  /// Installs the scaler state (including the target transform) into a
  /// SampleSet so from_target/to_target work as they did at training time.
  void apply_to(SampleSet& set) const {
    set.target_scaler = target;
    set.teams_scaler = teams;
    set.threads_scaler = threads;
    set.child_weight_scale = child_weight_scale;
    set.log_target = log_target;
  }
};

void save_checkpoint(std::ostream& os, const ParaGraphModel& model,
                     const CheckpointScalers& scalers);
void save_checkpoint_file(const std::string& path, const ParaGraphModel& model,
                          const CheckpointScalers& scalers);

/// Restores into `model` (must have the same architecture/config as the one
/// saved — parameter shapes are verified). Returns the scalers.
CheckpointScalers load_checkpoint(std::istream& is, ParaGraphModel& model);
CheckpointScalers load_checkpoint_file(const std::string& path,
                                       ParaGraphModel& model);

/// FNV-1a over the model's parameter shapes and weight bits (the same
/// explicit little-endian bytes the checkpoint stores). Two models produce
/// the same fingerprint iff their weights are bitwise-identical, so a
/// `.pgann` index stamped with this value at build time can reject itself
/// when loaded against a different/retrained checkpoint — stale embeddings
/// would silently return wrong neighbors otherwise.
std::uint64_t checkpoint_fingerprint(const ParaGraphModel& model);

}  // namespace pg::model
