// Model checkpointing: save/restore all parameters plus the scalers a
// deployment needs to reproduce predictions (an advisor tool trains once
// and predicts many times).
//
// Format (binary, little-endian host order):
//   magic "PGCKPT01", u64 param count, then per parameter u64 rows, u64
//   cols, rows*cols f32; then the four scaler (min,max) f64 pairs and the
//   f64 child-weight scale.
#pragma once

#include <iosfwd>
#include <string>

#include "model/paragraph_model.hpp"
#include "model/sample.hpp"

namespace pg::model {

/// The scalers that must travel with the weights.
struct CheckpointScalers {
  nn::MinMaxScaler target;
  nn::MinMaxScaler teams;
  nn::MinMaxScaler threads;
  double child_weight_scale = 1.0;

  static CheckpointScalers from_sample_set(const SampleSet& set) {
    return {set.target_scaler, set.teams_scaler, set.threads_scaler,
            set.child_weight_scale};
  }
};

void save_checkpoint(std::ostream& os, ParaGraphModel& model,
                     const CheckpointScalers& scalers);
void save_checkpoint_file(const std::string& path, ParaGraphModel& model,
                          const CheckpointScalers& scalers);

/// Restores into `model` (must have the same architecture/config as the one
/// saved — parameter shapes are verified). Returns the scalers.
CheckpointScalers load_checkpoint(std::istream& is, ParaGraphModel& model);
CheckpointScalers load_checkpoint_file(const std::string& path,
                                       ParaGraphModel& model);

}  // namespace pg::model
