// Block-diagonal packing of encoded graphs: feature concatenation plus
// offset-shifted concatenation of every relation's CSR/SoA arrays.
#include "model/graph_batch.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pg::model {

void GraphBatch::pack(std::span<const EncodedGraph* const> graphs) {
  offsets_.clear();
  offsets_.push_back(0);

  std::size_t total_nodes = 0;
  std::size_t num_relations = 0;
  for (const EncodedGraph* g : graphs) {
    check(g != nullptr, "GraphBatch::pack: null graph");
    check(g->features.cols() == kNodeFeatureDim,
          "GraphBatch::pack: feature width mismatch");
    check(g->features.rows() == g->relations.num_nodes,
          "GraphBatch::pack: feature rows != relation nodes");
    if (offsets_.size() == 1)
      num_relations = g->relations.relations.size();
    else
      check(g->relations.relations.size() == num_relations,
            "GraphBatch::pack: relation count mismatch across the batch");
    total_nodes += g->features.rows();
    offsets_.push_back(static_cast<std::uint32_t>(total_nodes));
  }

  features_.reshape(total_nodes, kNodeFeatureDim);
  for (std::size_t b = 0; b < graphs.size(); ++b) {
    auto src = graphs[b]->features.data();
    std::copy(src.begin(), src.end(),
              features_.data().begin() +
                  static_cast<std::ptrdiff_t>(offsets_[b] * kNodeFeatureDim));
  }

  relations_.num_nodes = total_nodes;
  relations_.relations.resize(num_relations);
  for (std::size_t r = 0; r < num_relations; ++r) {
    nn::RelationEdges& out = relations_.relations[r];
    out.src_local.clear();
    out.gate.clear();
    out.nodes.clear();
    out.group_offsets.clear();
    out.group_dst.clear();
    out.group_offsets.push_back(0);
    std::uint32_t row_off = 0;   // local active-row offset within relation r
    std::uint32_t edge_off = 0;  // edge-slot offset within relation r
    for (std::size_t b = 0; b < graphs.size(); ++b) {
      const nn::RelationEdges& rel = graphs[b]->relations.relations[r];
      const std::uint32_t node_off = offsets_[b];
      for (std::uint32_t v : rel.nodes) out.nodes.push_back(v + node_off);
      for (std::uint32_t s : rel.src_local) out.src_local.push_back(s + row_off);
      out.gate.insert(out.gate.end(), rel.gate.begin(), rel.gate.end());
      for (std::size_t g = 0; g < rel.num_groups(); ++g) {
        out.group_dst.push_back(rel.group_dst[g] + row_off);
        out.group_offsets.push_back(rel.group_offsets[g + 1] + edge_off);
      }
      row_off += static_cast<std::uint32_t>(rel.num_active_nodes());
      edge_off += static_cast<std::uint32_t>(rel.num_edges());
    }
  }
}

void GraphBatch::pack(std::span<const EncodedGraph> graphs) {
  scratch_.clear();
  scratch_.reserve(graphs.size());
  for (const EncodedGraph& g : graphs) scratch_.push_back(&g);
  pack(std::span<const EncodedGraph* const>(scratch_));
}

}  // namespace pg::model
