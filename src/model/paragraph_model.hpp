// The ParaGraph runtime-prediction model (paper §IV-B):
//   three RGAT convolution layers -> mean-pool -> two FC layers (ReLU);
//   the two auxiliary features (num_teams, num_threads) are embedded by a
//   separate FC layer; both embeddings are concatenated and a final FC
//   layer produces the (MinMax-scaled) runtime.
//
// Every forward/backward borrows all its buffers from a caller-supplied
// Workspace, so a warmed-up predict/accumulate_gradients performs zero heap
// allocations. The Workspace-free overloads are conveniences over a
// thread-local workspace; hot loops (trainer, InferenceEngine) pass their
// own per-thread workspaces explicitly.
//
// The forward/backward core is batched: it runs over a (possibly
// block-diagonal) relational graph with per-graph node offsets and a
// [B x aux_dim] auxiliary matrix, producing B predictions from ONE pass —
// one projection matmul per relation over the concatenated active rows, one
// segmented softmax, one segmented mean-pool, and batched FC-head matmuls.
// The single-graph predict()/accumulate_gradients() are the B=1 case of the
// same code path, so fused batch predictions are bitwise-identical to
// per-graph ones.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "model/encoding.hpp"
#include "model/graph_batch.hpp"
#include "nn/linear.hpp"
#include "nn/rgat.hpp"
#include "tensor/workspace.hpp"

namespace pg::model {

struct ModelConfig {
  std::size_t node_feature_dim = kNodeFeatureDim;
  std::size_t num_relations = graph::kNumEdgeTypes;
  std::size_t hidden_dim = 24;
  std::size_t aux_dim = 2;        // num_teams, num_threads
  std::size_t aux_embed_dim = 8;
  std::uint64_t seed = 42;
};

class ParaGraphModel {
 public:
  explicit ParaGraphModel(const ModelConfig& config);

  /// Forward pass; aux must be MinMax-scaled, size == config().aux_dim.
  /// Resets `ws` and borrows every intermediate from it — allocation-free
  /// once the workspace has seen this graph's shapes.
  [[nodiscard]] double predict(const EncodedGraph& graph,
                               std::span<const float> aux,
                               tensor::Workspace& ws) const;

  /// Convenience overload over a thread-local workspace.
  [[nodiscard]] double predict(const EncodedGraph& graph,
                               std::span<const float> aux) const;

  /// Fused batch forward over a packed GraphBatch: one pass produces
  /// out.size() == batch.size() scaled predictions, bitwise-identical to
  /// predicting each packed graph on its own. `aux` is [B x aux_dim].
  void predict_batch(const GraphBatch& batch, const tensor::Matrix& aux,
                     std::span<double> out, tensor::Workspace& ws) const;

  /// Conv stack + segmented mean-pool only: reshapes `out` to
  /// [batch.size() x hidden_dim] and fills it with the pooled per-graph
  /// embedding rows. These are the exact rows the predict path pools
  /// internally — predict_batch runs this same embed core before the FC
  /// head — so they are bitwise-identical to it (pinned by ann_test).
  /// `out` must not be borrowed from `ws` (this call resets `ws`).
  void embed_batch(const GraphBatch& batch, tensor::Matrix& out,
                   tensor::Workspace& ws) const;

  /// FC head over externally held pooled embeddings (as produced by
  /// embed_batch): fc1/fc2 + aux embedding + concat + out_fc. Every head op
  /// is row-independent, so running any subset of rows through this is
  /// bitwise-identical to the tail of a full predict_batch — which is what
  /// lets the serve-time semantic cache run the head only for cache misses.
  /// `pooled` [B x hidden] and `aux` [B x aux_dim] must not be borrowed
  /// from `ws` (this call resets `ws`).
  void predict_head(const tensor::Matrix& pooled, const tensor::Matrix& aux,
                    std::span<double> out, tensor::Workspace& ws) const;

  /// Forward + backward for one sample under MSE against `target` (scaled).
  /// Accumulates `grad_scale * dL/dtheta` into `grads` (one Matrix per
  /// parameter, same order as parameters()). Returns the prediction.
  /// Resets `ws`; thread-safe when each thread passes its own workspace —
  /// concurrent calls only read the model.
  double accumulate_gradients(const EncodedGraph& graph,
                              std::span<const float> aux, double target,
                              double grad_scale,
                              std::span<tensor::Matrix> grads,
                              tensor::Workspace& ws) const;

  /// Convenience overload over a thread-local workspace.
  double accumulate_gradients(const EncodedGraph& graph,
                              std::span<const float> aux, double target,
                              double grad_scale,
                              std::span<tensor::Matrix> grads) const;

  /// Fused batch forward + backward: one pass accumulates the summed
  /// per-sample MSE gradients (each scaled by `grad_scale`) into `grads`
  /// and returns the sum of squared errors over the batch (scaled domain).
  /// `aux` is [B x aux_dim]; `targets` has batch.size() entries. The
  /// accumulation order is fixed by the batch contents alone — independent
  /// of any thread count — which is what makes the trainer's chunked
  /// reduction bitwise-reproducible across machines.
  double accumulate_gradients_batch(const GraphBatch& batch,
                                    const tensor::Matrix& aux,
                                    std::span<const double> targets,
                                    double grad_scale,
                                    std::span<tensor::Matrix> grads,
                                    tensor::Workspace& ws) const;

  [[nodiscard]] std::vector<tensor::Matrix*> parameters();
  [[nodiscard]] std::vector<const tensor::Matrix*> parameters() const;
  [[nodiscard]] std::size_t num_params() const;
  [[nodiscard]] const ModelConfig& config() const { return config_; }

 private:
  struct ForwardState;
  /// The batched core: features/relations may be one graph or a
  /// block-diagonal batch; `offsets` (size B+1) marks per-graph node blocks
  /// and `aux_in` is [B x aux_dim]. Fills state; predictions are
  /// state.out(b, 0). Composed of run_embed (conv stack + pool) followed by
  /// run_head (FC head), so the public embed/head entry points share its
  /// exact FP operations by construction.
  void run_forward(const tensor::Matrix& features,
                   const nn::RelationalGraph& relations,
                   std::span<const std::uint32_t> offsets,
                   const tensor::Matrix& aux_in, ForwardState& state,
                   tensor::Workspace& ws) const;
  /// Conv stack + segmented mean-pool: fills state.h1..h3 and state.pooled.
  void run_embed(const tensor::Matrix& features,
                 const nn::RelationalGraph& relations,
                 std::span<const std::uint32_t> offsets, ForwardState& state,
                 tensor::Workspace& ws) const;
  /// FC head from state.pooled: fills state.f1..out.
  void run_head(const tensor::Matrix& aux_in, ForwardState& state,
                tensor::Workspace& ws) const;
  /// Matching batched backward; `dout` is [B x 1] (dL/dprediction per
  /// graph, already loss-scaled).
  void run_backward(const nn::RelationalGraph& relations,
                    std::span<const std::uint32_t> offsets,
                    const ForwardState& state, const tensor::Matrix& dout,
                    std::span<tensor::Matrix> grads,
                    tensor::Workspace& ws) const;

  ModelConfig config_;
  nn::RgatConv conv1_;
  nn::RgatConv conv2_;
  nn::RgatConv conv3_;
  nn::Linear fc1_;      // pooled graph embedding -> hidden
  nn::Linear fc2_;      // hidden -> hidden
  nn::Linear aux_fc_;   // aux features -> aux embedding
  nn::Linear out_fc_;   // [hidden + aux_embed] -> 1
};

}  // namespace pg::model
