// Evaluation slices used by the paper's figures: per-10-second-bin relative
// error (Fig. 4) and per-application error rate (Fig. 6).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "model/sample.hpp"

namespace pg::model {

struct BinError {
  std::size_t bin = 0;       // 0 => [0,10s), ..., 10 => [100s, inf)
  std::size_t count = 0;
  double relative_error = 0.0;  // mean |err| / range(actual over all samples)
};

struct AppError {
  std::string app_name;
  std::size_t count = 0;
  double error_rate = 0.0;  // mean |err| / range(actual over all samples)
};

/// Groups validation samples into 10-second runtime bins and reports the
/// mean relative error per bin (bins with no samples are omitted).
std::vector<BinError> binned_relative_error(
    const std::vector<TrainingSample>& samples,
    const std::vector<double>& predictions_us, std::size_t num_bins = 11);

/// Mean relative error per application.
std::vector<AppError> per_app_error(const std::vector<TrainingSample>& samples,
                                    const std::vector<double>& predictions_us);

/// Human-readable bin label: "0-10", "10-20", ..., "100 <".
std::string bin_label(std::size_t bin, std::size_t num_bins = 11);

}  // namespace pg::model
