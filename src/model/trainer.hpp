// Mini-batch trainer: Adam + MSE over fused GraphBatch chunks. Each batch
// is split into a fixed number of contiguous chunks (independent of the
// OpenMP thread count); every chunk runs one fused block-diagonal
// forward/backward into its own gradient buffer, and the buffers are
// reduced in chunk order. Training is therefore bitwise-reproducible across
// machines and thread counts.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "model/paragraph_model.hpp"
#include "model/sample.hpp"
#include "model/sample_store.hpp"
#include "nn/adam.hpp"

namespace pg::model {

struct TrainConfig {
  int epochs = 60;
  int batch_size = 32;
  double learning_rate = 1e-3;
  std::uint64_t shuffle_seed = 7;
  /// Called after every epoch when set (used by the Fig. 5/7 benches).
  std::function<void(int epoch, double train_mse, double val_rmse_us)> on_epoch;
};

struct EpochRecord {
  int epoch = 0;
  double train_mse_scaled = 0.0;  // mean MSE on the scaled target
  double val_rmse_us = 0.0;       // validation RMSE in microseconds
  double val_norm_rmse = 0.0;     // RMSE / range(actual)
};

struct TrainResult {
  std::vector<EpochRecord> history;
  std::vector<double> val_predictions_us;  // final, aligned with set.validation
  double final_rmse_us = 0.0;
  double final_norm_rmse = 0.0;
};

/// Predictions (in microseconds) for a sample list; a thin wrapper over a
/// one-shot InferenceEngine — fused-batch with per-thread workspaces,
/// clamped at the physical floor (0), and honouring the set's target
/// transform (linear or log). Callers predicting repeatedly should hold
/// their own engine so its workspace pool stays warm.
std::vector<double> predict_all(const ParaGraphModel& model,
                                const std::vector<TrainingSample>& samples,
                                const SampleSet& set);

TrainResult train_model(ParaGraphModel& model, const SampleSet& set,
                        const TrainConfig& config);

/// Out-of-core streaming trainer configuration. `window` bounds how many
/// decoded training samples are resident at once; it is rounded down to a
/// whole number of batches (minimum one batch) so batch boundaries coincide
/// exactly with the in-RAM trainer's.
struct StreamTrainConfig {
  TrainConfig base;
  std::size_t window = 4096;
  /// Worker count for the parallel window fills and the cost prepass;
  /// 0 = the OpenMP default. Loading is pure (SampleStore::load is
  /// deterministic), so this knob never changes the trained model.
  int load_threads = 0;
};

/// Trains by streaming epochs through a bounded window of samples decoded
/// on demand from `train_store` (e.g. an mmap-backed io::DatasetSampleStore)
/// instead of holding the corpus in RAM. `holdout` supplies the fitted
/// scalers and the (in-RAM) validation samples for per-epoch evaluation.
///
/// Determinism contract: the shuffled index order, batch boundaries, chunk
/// partition, and every FP operation are identical to train_model over the
/// same samples/seed — for *any* window size — so the resulting model is
/// bitwise-equal to the in-RAM trainer's, independent of window, thread
/// count, and run-to-run.
TrainResult train_model_streaming(ParaGraphModel& model,
                                  const SampleStore& train_store,
                                  const SampleSet& holdout,
                                  const StreamTrainConfig& config);

}  // namespace pg::model
