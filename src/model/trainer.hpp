// Mini-batch trainer: Adam + MSE over fused GraphBatch chunks. Each batch
// is split into a fixed number of contiguous chunks (independent of the
// OpenMP thread count); every chunk runs one fused block-diagonal
// forward/backward into its own gradient buffer, and the buffers are
// reduced in chunk order. Training is therefore bitwise-reproducible across
// machines and thread counts.
#pragma once

#include <functional>
#include <vector>

#include "model/paragraph_model.hpp"
#include "model/sample.hpp"
#include "nn/adam.hpp"

namespace pg::model {

struct TrainConfig {
  int epochs = 60;
  int batch_size = 32;
  double learning_rate = 1e-3;
  std::uint64_t shuffle_seed = 7;
  /// Called after every epoch when set (used by the Fig. 5/7 benches).
  std::function<void(int epoch, double train_mse, double val_rmse_us)> on_epoch;
};

struct EpochRecord {
  int epoch = 0;
  double train_mse_scaled = 0.0;  // mean MSE on the scaled target
  double val_rmse_us = 0.0;       // validation RMSE in microseconds
  double val_norm_rmse = 0.0;     // RMSE / range(actual)
};

struct TrainResult {
  std::vector<EpochRecord> history;
  std::vector<double> val_predictions_us;  // final, aligned with set.validation
  double final_rmse_us = 0.0;
  double final_norm_rmse = 0.0;
};

/// Predictions (in microseconds) for a sample list; a thin wrapper over a
/// one-shot InferenceEngine — fused-batch with per-thread workspaces,
/// clamped at the physical floor (0), and honouring the set's target
/// transform (linear or log). Callers predicting repeatedly should hold
/// their own engine so its workspace pool stays warm.
std::vector<double> predict_all(const ParaGraphModel& model,
                                const std::vector<TrainingSample>& samples,
                                const SampleSet& set);

TrainResult train_model(ParaGraphModel& model, const SampleSet& set,
                        const TrainConfig& config);

}  // namespace pg::model
