#include "model/schedule.hpp"

#include <algorithm>

namespace pg::model::schedule {

std::uint64_t graph_cost(std::size_t nodes, std::size_t edges) {
  return kGraphCost + kNodeCost * static_cast<std::uint64_t>(nodes) +
         kEdgeCost * static_cast<std::uint64_t>(edges);
}

std::uint64_t graph_cost(const EncodedGraph& graph) {
  return graph_cost(graph.features.rows(), graph.relations.num_edges());
}

void partition_by_cost(std::span<const std::uint64_t> costs,
                       std::uint64_t target_cost, std::size_t max_graphs,
                       std::vector<std::uint32_t>& bounds) {
  bounds.clear();
  bounds.push_back(0);
  if (costs.empty()) return;
  const std::uint64_t target = std::max<std::uint64_t>(target_cost, 1);
  const std::size_t cap = std::max<std::size_t>(max_graphs, 1);
  std::uint64_t acc = 0;
  std::size_t in_chunk = 0;
  for (std::size_t i = 0; i < costs.size(); ++i) {
    // Close the open chunk before graph i when i would overflow it. A chunk
    // never closes empty, so a single graph above target still lands.
    if (in_chunk > 0 && (in_chunk >= cap || acc + costs[i] > target)) {
      bounds.push_back(static_cast<std::uint32_t>(i));
      acc = 0;
      in_chunk = 0;
    }
    acc += costs[i];
    ++in_chunk;
  }
  bounds.push_back(static_cast<std::uint32_t>(costs.size()));
}

std::uint64_t chunk_cost(std::span<const std::uint64_t> costs,
                         std::uint32_t lo, std::uint32_t hi) {
  std::uint64_t sum = 0;
  for (std::uint32_t i = lo; i < hi; ++i) sum += costs[i];
  return sum;
}

double plan_imbalance(std::span<const std::uint64_t> costs,
                      std::span<const std::uint32_t> bounds) {
  if (bounds.size() < 2) return 1.0;
  const std::size_t num_chunks = bounds.size() - 1;
  std::uint64_t total = 0;
  std::uint64_t worst = 0;
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::uint64_t cost = chunk_cost(costs, bounds[c], bounds[c + 1]);
    total += cost;
    worst = std::max(worst, cost);
  }
  if (total == 0) return 1.0;
  return static_cast<double>(worst) * static_cast<double>(num_chunks) /
         static_cast<double>(total);
}

}  // namespace pg::model::schedule
