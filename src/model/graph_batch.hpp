// GraphBatch: packs B encoded graphs into one block-diagonal relational
// graph so the model can run a single fused forward (one projection pass per
// relation over the concatenated active rows, one segmented softmax/read-out)
// instead of B small ones.
//
// The packing is exact, not approximate: each graph's nodes occupy a
// contiguous global-id block [node_offsets()[b], node_offsets()[b+1]), and
// every relation's CSR arrays are the per-graph arrays concatenated with
// node/row/edge offsets applied. Because the RGAT kernels only ever combine
// rows reachable through a relation's edges — and no edge crosses a block
// boundary — the fused forward performs, per graph, exactly the same
// floating-point operations in exactly the same order as a per-graph
// forward: predictions are bitwise-identical (engine_test pins this).
//
// All buffers are grow-only (vector/Matrix capacity is retained across
// pack() calls), so a warmed-up pack performs zero heap allocations.
#pragma once

#include <span>
#include <vector>

#include "model/encoding.hpp"
#include "nn/relational_graph.hpp"
#include "tensor/matrix.hpp"

namespace pg::model {

class GraphBatch {
 public:
  /// Re-fills the batch from `graphs` (pointers stay borrowed only for the
  /// duration of the call). Every graph must carry the same feature width
  /// and relation count.
  void pack(std::span<const EncodedGraph* const> graphs);
  /// Convenience overload over a contiguous span of graphs.
  void pack(std::span<const EncodedGraph> graphs);

  [[nodiscard]] std::size_t size() const {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Concatenated node features, [total_nodes x feature_dim].
  [[nodiscard]] const tensor::Matrix& features() const { return features_; }
  /// Block-diagonal relations over the concatenated node numbering.
  [[nodiscard]] const nn::RelationalGraph& relations() const {
    return relations_;
  }
  /// Per-graph node offsets, size B+1: graph b owns global node ids
  /// [node_offsets()[b], node_offsets()[b+1]).
  [[nodiscard]] std::span<const std::uint32_t> node_offsets() const {
    return offsets_;
  }

 private:
  tensor::Matrix features_;
  nn::RelationalGraph relations_;
  std::vector<std::uint32_t> offsets_;
  std::vector<const EncodedGraph*> scratch_;  // for the value-span overload
};

}  // namespace pg::model
