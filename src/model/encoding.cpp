// ProgramGraph -> EncodedGraph: node-feature assembly, per-relation edge
// lists, and weight normalisation.
#include "model/encoding.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

#include "support/check.hpp"

namespace pg::model {
namespace {

/// log2 magnitude of an integer-literal node's value, scaled into [0, ~2].
/// 0 for non-literals and for the literal 0.
float literal_magnitude(const graph::GraphNode& node) {
  if (node.kind != frontend::NodeKind::kIntegerLiteral || node.label.empty())
    return 0.0f;
  const long long value = std::strtoll(node.label.c_str(), nullptr, 0);
  if (value <= 0) return 0.0f;
  return static_cast<float>(std::log2(1.0 + static_cast<double>(value)) / 16.0);
}

}  // namespace

EncodedGraph encode_graph(const graph::ProgramGraph& graph,
                          double child_weight_scale) {
  check(child_weight_scale > 0.0, "child_weight_scale must be positive");
  EncodedGraph out;

  const std::size_t n = graph.num_nodes();
  out.features = tensor::Matrix(n, kNodeFeatureDim);
  for (std::size_t i = 0; i < n; ++i) {
    const auto kind = static_cast<std::size_t>(graph.nodes()[i].kind);
    check(kind < frontend::kNumNodeKinds, "bad node kind");
    out.features(i, kind) = 1.0f;
    out.features(i, frontend::kNumNodeKinds) =
        literal_magnitude(graph.nodes()[i]);
  }

  std::vector<std::vector<nn::RelEdge>> per_relation(graph::kNumEdgeTypes);
  for (const graph::GraphEdge& e : graph.edges()) {
    nn::RelEdge edge;
    edge.src = e.src;
    edge.dst = e.dst;
    if (e.type == graph::EdgeType::kChild) {
      const double scaled =
          std::clamp(static_cast<double>(e.weight) / child_weight_scale, 0.0, 1.0);
      edge.gate = static_cast<float>(scaled);
    } else {
      edge.gate = 1.0f;
    }
    per_relation[static_cast<std::size_t>(e.type)].push_back(edge);
  }

  out.relations.num_nodes = n;
  out.relations.relations.reserve(graph::kNumEdgeTypes);
  for (auto& edges : per_relation)
    out.relations.relations.push_back(nn::RelationEdges::from_edges(std::move(edges)));
  return out;
}

}  // namespace pg::model
