// Model-facing training sample and sample-set containers.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "model/encoding.hpp"
#include "nn/scaler.hpp"

namespace pg::model {

struct TrainingSample {
  EncodedGraph graph;
  std::array<float, 2> aux{};   // MinMax-scaled {num_teams, num_threads}
  double target_scaled = 0.0;   // MinMax-scaled runtime
  double runtime_us = 0.0;      // ground-truth runtime in microseconds
  std::int32_t app_id = -1;
  std::string app_name;
  std::string variant;
};

/// A train/validation split plus the scalers shared by both halves.
struct SampleSet {
  std::vector<TrainingSample> train;
  std::vector<TrainingSample> validation;
  nn::MinMaxScaler target_scaler;    // runtime_us <-> scaled target
  nn::MinMaxScaler teams_scaler;
  nn::MinMaxScaler threads_scaler;
  double child_weight_scale = 1.0;   // dataset-global max Child weight
  /// When true, the target scaler operates on log(runtime_us) — an
  /// extension beyond the paper that trades absolute-RMSE optimality for
  /// relative accuracy (useful for variant *ranking*; see
  /// bench_advisor_selection).
  bool log_target = false;

  /// runtime in microseconds -> scaled training target.
  [[nodiscard]] double to_target(double runtime_us) const {
    return target_scaler.transform(log_target ? std::log(std::max(runtime_us, 1e-3))
                                              : runtime_us);
  }
  /// scaled model output -> runtime in microseconds (clamped at 0).
  [[nodiscard]] double from_target(double scaled) const {
    const double raw = target_scaler.inverse(scaled);
    return log_target ? std::exp(raw) : std::max(raw, 0.0);
  }
};

}  // namespace pg::model
