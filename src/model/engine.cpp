// InferenceEngine: per-thread GraphBatch/workspace state + chunk-fused
// batch prediction. Each chunk of up to fuse_chunk() graphs becomes one
// block-diagonal batch and one fused model forward; chunks fan out across
// OpenMP threads. Chunk boundaries adapt to the batch length and thread
// count (bigger chunks amortise dispatch, more chunks feed more cores) —
// results never depend on the cut, because the fused forward is
// bitwise-equal per graph.
#include "model/engine.hpp"

#include <omp.h>

#include <algorithm>

#include "support/check.hpp"
#include "support/env.hpp"

namespace pg::model {
namespace {

/// Graphs fused per chunk when PARAGRAPH_CHUNK is unset: large enough to
/// amortise per-call dispatch and packing, small enough to keep the
/// per-thread workspace arena modest and to leave parallelism on the table
/// for multi-core batch calls. The env override (validated and clamped by
/// env_chunk_size) lets bench sweeps vary the fusion width without a
/// recompile; the cut never affects values, only throughput.
constexpr std::size_t kFuseChunk = 64;

/// Cache-footprint cap: a fused chunk's intermediates grow with its total
/// node-row count (~1.4 KB/node at hidden 24 across the conv stack), so
/// chunks far beyond a few hundred rows evict the per-core working set and
/// run *slower* per graph than smaller fusions (a PARAGRAPH_CHUNK sweep on
/// the 99-node bench graph peaks at 2-4 graphs/chunk on one core). Chunks
/// therefore also cap at ~this many concatenated rows; tiny graphs keep
/// fusing deeply (up to kFuseChunk) to amortise dispatch.
constexpr std::size_t kChunkNodeBudget = 256;

/// Arena bound per thread. Varied traffic (every chunk composition is a new
/// block-diagonal shape) would otherwise grow the shape-keyed arena for the
/// engine's whole lifetime. The arena is dropped once it exceeds BOTH this
/// cap and twice its post-reset single-pass footprint — the second condition
/// keeps a legitimately large working set (one chunk bigger than the cap)
/// from thrashing allocate/free on every call. Purely a memory bound —
/// results are unaffected.
constexpr std::size_t kArenaCapBytes = 64u << 20;

}  // namespace

InferenceEngine::InferenceEngine(const ParaGraphModel& model)
    : model_(&model),
      pool_(static_cast<std::size_t>(omp_get_max_threads())),
      fuse_chunk_(env_chunk_size(kFuseChunk)),
      chunk_overridden_(env_chunk_size(0) != 0) {}

InferenceEngine::ThreadState& InferenceEngine::state_for_current_thread() {
  const auto tid = static_cast<std::size_t>(omp_get_thread_num());
  check(tid < pool_.size(), "InferenceEngine: thread id exceeds pool");
  return pool_[tid];
}

double InferenceEngine::predict_one(const EncodedGraph& graph,
                                    std::span<const float> aux) {
  return model_->predict(graph, aux, state_for_current_thread().ws);
}

void InferenceEngine::run_chunk(std::span<const EncodedGraph* const> graphs,
                                std::span<const std::array<float, 2>> aux,
                                std::span<double> out, std::size_t lo,
                                std::size_t hi) {
  ThreadState& ts = state_for_current_thread();
  if (ts.arena_baseline > 0 &&
      ts.ws.bytes_reserved() > std::max(kArenaCapBytes, 2 * ts.arena_baseline)) {
    ts.ws = tensor::Workspace();
    ts.arena_baseline = 0;
  }
  ts.batch.pack(graphs.subspan(lo, hi - lo));
  ts.aux.reshape(hi - lo, 2);
  for (std::size_t i = lo; i < hi; ++i) {
    auto row = ts.aux.row_span(i - lo);
    row[0] = aux[i][0];
    row[1] = aux[i][1];
  }
  model_->predict_batch(ts.batch, ts.aux, out.subspan(lo, hi - lo), ts.ws);
  if (ts.arena_baseline == 0) ts.arena_baseline = ts.ws.bytes_reserved();
}

void InferenceEngine::run_chunked(std::span<const EncodedGraph* const> graphs,
                                  std::span<const std::array<float, 2>> aux,
                                  std::span<double> out) {
  const std::size_t n = graphs.size();
  // Chunk size balances fusion (bigger chunks amortise pack + dispatch)
  // against core utilisation (enough chunks to feed every thread, 2x
  // oversubscribed for dynamic balance; small batches on many cores degrade
  // to per-graph chunks, the pre-fusion behaviour) and against cache
  // footprint (the kChunkNodeBudget row cap — skipped when PARAGRAPH_CHUNK
  // pins the width explicitly). Chunking never affects values — fused
  // predictions are bitwise-equal per graph however the batch is cut.
  std::size_t cap = fuse_chunk_;
  if (!chunk_overridden_) {
    std::size_t total_nodes = 0;
    for (const EncodedGraph* g : graphs) total_nodes += g->features.rows();
    const std::size_t avg_nodes = std::max<std::size_t>(1, total_nodes / n);
    cap = std::clamp<std::size_t>(kChunkNodeBudget / avg_nodes, 1, fuse_chunk_);
  }
  const auto threads =
      omp_in_parallel() ? 1u : static_cast<unsigned>(omp_get_max_threads());
  const std::size_t chunk_size = std::clamp<std::size_t>(
      (n + 2 * threads - 1) / (2 * threads), 1, cap);
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  if (omp_in_parallel() || num_chunks == 1) {
    // Caller already manages threading (or there is nothing to fan out):
    // stay serial on this thread, with its own state.
    for (std::size_t c = 0; c < num_chunks; ++c)
      run_chunk(graphs, aux, out, c * chunk_size,
                std::min(n, (c + 1) * chunk_size));
    return;
  }
#pragma omp parallel for schedule(dynamic, 1)
  for (std::size_t c = 0; c < num_chunks; ++c)
    run_chunk(graphs, aux, out, c * chunk_size,
              std::min(n, (c + 1) * chunk_size));
}

void InferenceEngine::predict_batch(std::span<const EncodedGraph> graphs,
                                    std::span<const std::array<float, 2>> aux,
                                    std::span<double> out) {
  check(graphs.size() == aux.size() && graphs.size() == out.size(),
        "InferenceEngine::predict_batch: span length mismatch");
  check(model_->config().aux_dim == 2,
        "InferenceEngine::predict_batch: engine batches 2-feature aux");
  if (graphs.empty()) return;
  ThreadState& caller = state_for_current_thread();
  caller.ptrs.clear();
  caller.ptrs.reserve(graphs.size());
  for (const EncodedGraph& g : graphs) caller.ptrs.push_back(&g);
  run_chunked(caller.ptrs, aux, out);
}

std::vector<double> InferenceEngine::predict_samples_us(
    std::span<const TrainingSample> samples, const SampleSet& set) {
  std::vector<double> predictions(samples.size());
  const std::size_t n = samples.size();
  if (n == 0) return predictions;
  // ptrs/aux_gather are the *calling* thread's grow-only gather buffers, so
  // concurrent callers inside an enclosing parallel region don't collide.
  ThreadState& caller = state_for_current_thread();
  caller.ptrs.clear();
  caller.ptrs.reserve(n);
  caller.aux_gather.clear();
  caller.aux_gather.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    caller.ptrs.push_back(&samples[i].graph);
    caller.aux_gather.push_back(samples[i].aux);
  }
  run_chunked(caller.ptrs, caller.aux_gather, predictions);
  for (double& p : predictions) p = set.from_target(p);
  return predictions;
}

std::size_t InferenceEngine::workspace_slots() const {
  std::size_t total = 0;
  for (const auto& ts : pool_) total += ts.ws.num_slots();
  return total;
}

std::size_t InferenceEngine::workspace_bytes() const {
  std::size_t total = 0;
  for (const auto& ts : pool_) total += ts.ws.bytes_reserved();
  return total;
}

}  // namespace pg::model
