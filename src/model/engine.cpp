// InferenceEngine: per-thread GraphBatch/workspace state + chunk-fused
// batch prediction. Chunk boundaries come from the deterministic cost model
// in model/schedule.hpp (policy kCost, the default) or from the legacy
// fixed-width cut (policy kFixed / a PARAGRAPH_CHUNK override). Cheap
// chunks fan out across OpenMP threads with dynamic stealing; an oversized
// chunk — a single graph past the intra threshold — runs in a serial phase
// where the fused forward's intra-batch split points use the whole
// machine. Results never depend on the cut, because the fused forward is
// bitwise-equal per graph.
#include "model/engine.hpp"

#include <omp.h>

#include <algorithm>
#include <cstring>

#include "model/schedule.hpp"
#include "support/check.hpp"
#include "support/env.hpp"

namespace pg::model {
namespace {

/// Graphs fused per chunk when PARAGRAPH_CHUNK is unset: large enough to
/// amortise per-call dispatch and packing, small enough to keep the
/// per-thread workspace arena modest and to leave parallelism on the table
/// for multi-core batch calls. The env override (validated and clamped by
/// env_chunk_override) lets bench sweeps vary the fusion width without a
/// recompile; the cut never affects values, only throughput.
constexpr std::size_t kFuseChunk = 64;

/// Cache-footprint cap for the kFixed policy: a fused chunk's intermediates
/// grow with its total node-row count (~1.4 KB/node at hidden 24 across the
/// conv stack), so chunks far beyond a few hundred rows evict the per-core
/// working set and run *slower* per graph than smaller fusions (a
/// PARAGRAPH_CHUNK sweep on the 99-node bench graph peaks at 2-4
/// graphs/chunk on one core). Chunks therefore also cap at ~this many
/// concatenated rows; tiny graphs keep fusing deeply (up to kFuseChunk) to
/// amortise dispatch.
constexpr std::size_t kChunkNodeBudget = 256;

/// The same cache budget for the kCost policy, in cost units
/// (nodes + 2*edges + overhead — roughly 2048 cost per ~256 rows at the
/// corpus's typical edge density). A chunk's cost never exceeds this unless
/// a single graph does.
constexpr std::uint64_t kChunkCostBudget = 2048;

/// Smallest cost target the planner aims at: below this, packing overhead
/// dominates and per-graph chunks stop paying for their dispatch.
constexpr std::uint64_t kChunkCostFloor = 512;

/// Chunks per thread the cost planner aims for (when the budget allows):
/// oversubscription gives schedule(dynamic) room to steal around the tail.
constexpr std::uint64_t kChunkOversubscribe = 4;

/// A chunk at least this costly (only a single giant graph can exceed the
/// budget) is excluded from the chunk-parallel phase and run serially, so
/// the intra-batch split points inside the fused forward can fan its rows
/// out instead — one big graph must scale past one core.
constexpr std::uint64_t kIntraCostThreshold = 4 * kChunkCostBudget;

/// Arena bound per thread. Varied traffic (every chunk composition is a new
/// block-diagonal shape) would otherwise grow the shape-keyed arena for the
/// engine's whole lifetime. The arena is dropped once it exceeds BOTH this
/// cap and twice its post-reset single-pass footprint — the second condition
/// keeps a legitimately large working set (one chunk bigger than the cap)
/// from thrashing allocate/free on every call. Purely a memory bound —
/// results are unaffected.
constexpr std::size_t kArenaCapBytes = 64u << 20;

}  // namespace

InferenceEngine::InferenceEngine(const ParaGraphModel& model)
    : model_(&model),
      pool_(static_cast<std::size_t>(omp_get_max_threads())),
      chunk_override_(env_chunk_override()),
      fuse_chunk_(chunk_override_.value_or(kFuseChunk)),
      policy_(chunk_override_ ? SchedPolicy::kFixed
                              : sched_policy_from_env()) {}

InferenceEngine::ThreadState& InferenceEngine::state_for_current_thread() {
  const auto tid = static_cast<std::size_t>(omp_get_thread_num());
  check(tid < pool_.size(), "InferenceEngine: thread id exceeds pool");
  return pool_[tid];
}

double InferenceEngine::predict_one(const EncodedGraph& graph,
                                    std::span<const float> aux) {
  return model_->predict(graph, aux, state_for_current_thread().ws);
}

void InferenceEngine::run_chunk(std::span<const EncodedGraph* const> graphs,
                                std::span<const std::array<float, 2>> aux,
                                std::span<double> out,
                                tensor::Matrix* embed_out, std::size_t lo,
                                std::size_t hi) {
  ThreadState& ts = state_for_current_thread();
  if (ts.arena_baseline > 0 &&
      ts.ws.bytes_reserved() > std::max(kArenaCapBytes, 2 * ts.arena_baseline)) {
    ts.ws = tensor::Workspace();
    ts.arena_baseline = 0;
  }
  ts.batch.pack(graphs.subspan(lo, hi - lo));
  if (embed_out != nullptr) {
    // Embed-only pass: stop at the pooled rows and scatter them into the
    // caller's matrix. Pure copies, so the chunking stays bitwise-neutral.
    model_->embed_batch(ts.batch, ts.embed, ts.ws);
    const std::size_t width = ts.embed.cols();
    for (std::size_t i = lo; i < hi; ++i)
      std::memcpy(embed_out->row_span(i).data(),
                  ts.embed.row_span(i - lo).data(), width * sizeof(float));
  } else {
    ts.aux.reshape(hi - lo, 2);
    for (std::size_t i = lo; i < hi; ++i) {
      auto row = ts.aux.row_span(i - lo);
      row[0] = aux[i][0];
      row[1] = aux[i][1];
    }
    model_->predict_batch(ts.batch, ts.aux, out.subspan(lo, hi - lo), ts.ws);
  }
  if (ts.arena_baseline == 0) ts.arena_baseline = ts.ws.bytes_reserved();
}

void InferenceEngine::run_chunked(std::span<const EncodedGraph* const> graphs,
                                  std::span<const std::array<float, 2>> aux,
                                  std::span<double> out,
                                  tensor::Matrix* embed_out) {
  const std::size_t n = graphs.size();
  ThreadState& caller = state_for_current_thread();

  // Per-graph cost model (known at pack time). Cheap relative to a
  // forward: one pass over the relation headers per graph.
  auto& costs = caller.costs;
  costs.clear();
  std::uint64_t total_cost = 0;
  std::uint64_t total_rows = 0;
  for (const EncodedGraph* g : graphs) {
    const std::uint64_t c = schedule::graph_cost(*g);
    costs.push_back(c);
    total_cost += c;
    total_rows += g->features.rows();
  }

  const bool nested = omp_in_parallel();
  const auto threads =
      nested ? std::uint64_t{1}
             : static_cast<std::uint64_t>(omp_get_max_threads());

  // Plan the cut. Boundaries are a pure function of (batch, policy, thread
  // *count*) — never of thread timing — and the cut never affects values.
  auto& bounds = caller.bounds;
  if (policy_ == SchedPolicy::kFixed) {
    // Legacy equal-width cut: chunk size balances fusion against feeding
    // every thread (2x oversubscribed), capped by the node-row cache
    // budget unless PARAGRAPH_CHUNK pinned the width explicitly.
    std::size_t cap = fuse_chunk_;
    if (!chunk_override_) {
      const std::size_t avg_nodes =
          std::max<std::size_t>(1, static_cast<std::size_t>(total_rows) / n);
      cap = std::clamp<std::size_t>(kChunkNodeBudget / avg_nodes, 1,
                                    fuse_chunk_);
    }
    const std::size_t chunk_size = std::clamp<std::size_t>(
        (n + 2 * threads - 1) / (2 * threads), 1, cap);
    bounds.clear();
    for (std::size_t lo = 0; lo < n; lo += chunk_size)
      bounds.push_back(static_cast<std::uint32_t>(lo));
    bounds.push_back(static_cast<std::uint32_t>(n));
  } else {
    // Cost-balanced cut: aim for kChunkOversubscribe chunks per thread so
    // dynamic stealing can absorb the tail, bounded below by the packing-
    // overhead floor and above by the cache budget.
    const std::uint64_t target =
        std::min(kChunkCostBudget,
                 std::max(kChunkCostFloor,
                          total_cost / (kChunkOversubscribe * threads)));
    schedule::partition_by_cost(costs, target, fuse_chunk_, bounds);
  }
  const std::size_t num_chunks = bounds.size() - 1;

  stat_batches_.fetch_add(1, std::memory_order_relaxed);
  stat_graphs_.fetch_add(n, std::memory_order_relaxed);
  stat_chunks_.fetch_add(num_chunks, std::memory_order_relaxed);
  stat_rows_.fetch_add(total_rows, std::memory_order_relaxed);
  stat_last_imbalance_.store(schedule::plan_imbalance(costs, bounds),
                             std::memory_order_relaxed);

  if (nested) {
    // Caller already manages threading: stay serial on this thread, with
    // its own state (the intra-batch split points self-gate too).
    for (std::size_t c = 0; c < num_chunks; ++c)
      run_chunk(graphs, aux, out, embed_out, bounds[c], bounds[c + 1]);
    return;
  }

  // Two-phase execution. Phase 1: cheap chunks fan out across threads,
  // dynamic stealing balances the (cost-equalised) tail. Phase 2: chunks
  // past the intra threshold — single giant graphs — run serially, where
  // the fused forward's row/group split points parallelise *inside* the
  // chunk instead.
  auto& small = caller.small_chunks;
  auto& big = caller.big_chunks;
  small.clear();
  big.clear();
  for (std::size_t c = 0; c < num_chunks; ++c) {
    const std::uint64_t cost =
        schedule::chunk_cost(costs, bounds[c], bounds[c + 1]);
    const bool intra = threads > 1 && cost >= kIntraCostThreshold;
    (intra ? big : small).push_back(static_cast<std::uint32_t>(c));
  }

  if (small.size() > 1) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::size_t i = 0; i < small.size(); ++i) {
      const std::uint32_t c = small[i];
      run_chunk(graphs, aux, out, embed_out, bounds[c], bounds[c + 1]);
    }
  } else if (small.size() == 1) {
    run_chunk(graphs, aux, out, embed_out, bounds[small[0]],
              bounds[small[0] + 1]);
  }
  for (const std::uint32_t c : big)
    run_chunk(graphs, aux, out, embed_out, bounds[c], bounds[c + 1]);
  stat_intra_chunks_.fetch_add(big.size(), std::memory_order_relaxed);
}

void InferenceEngine::predict_batch(std::span<const EncodedGraph> graphs,
                                    std::span<const std::array<float, 2>> aux,
                                    std::span<double> out) {
  check(graphs.size() == aux.size() && graphs.size() == out.size(),
        "InferenceEngine::predict_batch: span length mismatch");
  check(model_->config().aux_dim == 2,
        "InferenceEngine::predict_batch: engine batches 2-feature aux");
  if (graphs.empty()) return;
  ThreadState& caller = state_for_current_thread();
  caller.ptrs.clear();
  caller.ptrs.reserve(graphs.size());
  for (const EncodedGraph& g : graphs) caller.ptrs.push_back(&g);
  run_chunked(caller.ptrs, aux, out, nullptr);
}

void InferenceEngine::embed_batch(std::span<const EncodedGraph> graphs,
                                  tensor::Matrix& out) {
  out.reshape(graphs.size(), model_->config().hidden_dim);
  if (graphs.empty()) return;
  ThreadState& caller = state_for_current_thread();
  caller.ptrs.clear();
  caller.ptrs.reserve(graphs.size());
  for (const EncodedGraph& g : graphs) caller.ptrs.push_back(&g);
  run_chunked(caller.ptrs, {}, {}, &out);
}

void InferenceEngine::predict_head(const tensor::Matrix& pooled,
                                   std::span<const std::array<float, 2>> aux,
                                   std::span<double> out) {
  check(pooled.rows() == aux.size() && pooled.rows() == out.size(),
        "InferenceEngine::predict_head: span length mismatch");
  if (out.empty()) return;
  ThreadState& ts = state_for_current_thread();
  ts.aux.reshape(aux.size(), 2);
  for (std::size_t i = 0; i < aux.size(); ++i) {
    auto row = ts.aux.row_span(i);
    row[0] = aux[i][0];
    row[1] = aux[i][1];
  }
  model_->predict_head(pooled, ts.aux, out, ts.ws);
}

std::vector<double> InferenceEngine::predict_samples_us(
    std::span<const TrainingSample> samples, const SampleSet& set) {
  std::vector<double> predictions(samples.size());
  const std::size_t n = samples.size();
  if (n == 0) return predictions;
  // ptrs/aux_gather are the *calling* thread's grow-only gather buffers, so
  // concurrent callers inside an enclosing parallel region don't collide.
  ThreadState& caller = state_for_current_thread();
  caller.ptrs.clear();
  caller.ptrs.reserve(n);
  caller.aux_gather.clear();
  caller.aux_gather.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    caller.ptrs.push_back(&samples[i].graph);
    caller.aux_gather.push_back(samples[i].aux);
  }
  run_chunked(caller.ptrs, caller.aux_gather, predictions, nullptr);
  for (double& p : predictions) p = set.from_target(p);
  return predictions;
}

ScheduleStats InferenceEngine::schedule_stats() const {
  ScheduleStats s;
  s.batches = stat_batches_.load(std::memory_order_relaxed);
  s.graphs = stat_graphs_.load(std::memory_order_relaxed);
  s.chunks = stat_chunks_.load(std::memory_order_relaxed);
  s.rows = stat_rows_.load(std::memory_order_relaxed);
  s.intra_chunks = stat_intra_chunks_.load(std::memory_order_relaxed);
  s.last_imbalance = stat_last_imbalance_.load(std::memory_order_relaxed);
  return s;
}

std::size_t InferenceEngine::workspace_slots() const {
  std::size_t total = 0;
  for (const auto& ts : pool_) total += ts.ws.num_slots();
  return total;
}

std::size_t InferenceEngine::workspace_bytes() const {
  std::size_t total = 0;
  for (const auto& ts : pool_) total += ts.ws.bytes_reserved();
  return total;
}

}  // namespace pg::model
