// InferenceEngine: per-thread workspace pool + OpenMP-parallel batch
// prediction over encoded graphs.
#include "model/engine.hpp"

#include <omp.h>

#include "support/check.hpp"

namespace pg::model {

InferenceEngine::InferenceEngine(const ParaGraphModel& model)
    : model_(&model),
      pool_(static_cast<std::size_t>(omp_get_max_threads())) {}

tensor::Workspace& InferenceEngine::workspace_for_current_thread() {
  const auto tid = static_cast<std::size_t>(omp_get_thread_num());
  check(tid < pool_.size(), "InferenceEngine: thread id exceeds pool");
  return pool_[tid];
}

double InferenceEngine::predict_one(const EncodedGraph& graph,
                                    std::span<const float> aux) {
  return model_->predict(graph, aux, workspace_for_current_thread());
}

void InferenceEngine::predict_batch(std::span<const EncodedGraph> graphs,
                                    std::span<const std::array<float, 2>> aux,
                                    std::span<double> out) {
  check(graphs.size() == aux.size() && graphs.size() == out.size(),
        "InferenceEngine::predict_batch: span length mismatch");
  check(model_->config().aux_dim == 2,
        "InferenceEngine::predict_batch: engine batches 2-feature aux");
  if (omp_in_parallel()) {
    // Caller already manages threading: stay serial on this thread, with
    // its own workspace (omp_get_thread_num() is the caller-team id here).
    for (std::size_t i = 0; i < graphs.size(); ++i)
      out[i] = predict_one(graphs[i], aux[i]);
    return;
  }
#pragma omp parallel for schedule(dynamic, 8)
  for (std::size_t i = 0; i < graphs.size(); ++i)
    out[i] = predict_one(graphs[i], aux[i]);
}

std::vector<double> InferenceEngine::predict_samples_us(
    std::span<const TrainingSample> samples, const SampleSet& set) {
  std::vector<double> predictions(samples.size());
  if (omp_in_parallel()) {
    for (std::size_t i = 0; i < samples.size(); ++i)
      predictions[i] =
          set.from_target(predict_one(samples[i].graph, samples[i].aux));
    return predictions;
  }
#pragma omp parallel for schedule(dynamic, 8)
  for (std::size_t i = 0; i < samples.size(); ++i)
    predictions[i] =
        set.from_target(predict_one(samples[i].graph, samples[i].aux));
  return predictions;
}

std::size_t InferenceEngine::workspace_slots() const {
  std::size_t total = 0;
  for (const auto& ws : pool_) total += ws.num_slots();
  return total;
}

std::size_t InferenceEngine::workspace_bytes() const {
  std::size_t total = 0;
  for (const auto& ws : pool_) total += ws.bytes_reserved();
  return total;
}

}  // namespace pg::model
