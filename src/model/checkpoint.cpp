// Binary checkpoint format: tagged sections of u64/f64 for every parameter
// matrix plus the fitted scalers.
#include "model/checkpoint.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/check.hpp"

namespace pg::model {
namespace {

constexpr char kMagic[8] = {'P', 'G', 'C', 'K', 'P', 'T', '0', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  check(static_cast<bool>(is), "checkpoint truncated");
  return v;
}

void write_f64(std::ostream& os, double v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof v);
}

double read_f64(std::istream& is) {
  double v = 0.0;
  is.read(reinterpret_cast<char*>(&v), sizeof v);
  check(static_cast<bool>(is), "checkpoint truncated");
  return v;
}

void write_scaler(std::ostream& os, const nn::MinMaxScaler& scaler) {
  write_f64(os, scaler.min_value());
  write_f64(os, scaler.max_value());
}

nn::MinMaxScaler read_scaler(std::istream& is) {
  const double lo = read_f64(is);
  const double hi = read_f64(is);
  nn::MinMaxScaler scaler;
  scaler.fit_bounds(lo, hi);
  return scaler;
}

}  // namespace

void save_checkpoint(std::ostream& os, ParaGraphModel& model,
                     const CheckpointScalers& scalers) {
  os.write(kMagic, sizeof kMagic);
  const auto params = model.parameters();
  write_u64(os, params.size());
  for (const tensor::Matrix* p : params) {
    write_u64(os, p->rows());
    write_u64(os, p->cols());
    os.write(reinterpret_cast<const char*>(p->data().data()),
             static_cast<std::streamsize>(p->size() * sizeof(float)));
  }
  write_scaler(os, scalers.target);
  write_scaler(os, scalers.teams);
  write_scaler(os, scalers.threads);
  write_f64(os, scalers.child_weight_scale);
  check(static_cast<bool>(os), "checkpoint write failed");
}

CheckpointScalers load_checkpoint(std::istream& is, ParaGraphModel& model) {
  char magic[8];
  is.read(magic, sizeof magic);
  check(static_cast<bool>(is) && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
        "not a ParaGraph checkpoint");
  const auto params = model.parameters();
  const std::uint64_t count = read_u64(is);
  check(count == params.size(), "checkpoint parameter count mismatch");
  for (tensor::Matrix* p : params) {
    const std::uint64_t rows = read_u64(is);
    const std::uint64_t cols = read_u64(is);
    check(rows == p->rows() && cols == p->cols(),
          "checkpoint parameter shape mismatch (different model config?)");
    is.read(reinterpret_cast<char*>(p->data().data()),
            static_cast<std::streamsize>(p->size() * sizeof(float)));
    check(static_cast<bool>(is), "checkpoint truncated");
  }
  CheckpointScalers scalers;
  scalers.target = read_scaler(is);
  scalers.teams = read_scaler(is);
  scalers.threads = read_scaler(is);
  scalers.child_weight_scale = read_f64(is);
  return scalers;
}

void save_checkpoint_file(const std::string& path, ParaGraphModel& model,
                          const CheckpointScalers& scalers) {
  std::ofstream os(path, std::ios::binary);
  check(static_cast<bool>(os), "cannot open checkpoint file for writing");
  save_checkpoint(os, model, scalers);
}

CheckpointScalers load_checkpoint_file(const std::string& path,
                                       ParaGraphModel& model) {
  std::ifstream is(path, std::ios::binary);
  check(static_cast<bool>(is), "cannot open checkpoint file");
  return load_checkpoint(is, model);
}

}  // namespace pg::model
