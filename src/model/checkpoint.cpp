// Binary checkpoint format: tagged sections of u64/f64 for every parameter
// matrix plus the fitted scalers. All multi-byte values are explicit
// little-endian (assembled by shifts, like the pg::io container formats),
// so checkpoints are portable across hosts.
#include "model/checkpoint.hpp"

#include <bit>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "support/check.hpp"

namespace pg::model {
namespace {

constexpr char kMagic[8] = {'P', 'G', 'C', 'K', 'P', 'T', '0', '2'};

void write_u64(std::ostream& os, std::uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>(v >> (8 * i));
  os.write(b, sizeof b);
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char b[8];
  is.read(reinterpret_cast<char*>(b), sizeof b);
  check(static_cast<bool>(is), "checkpoint truncated");
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

void write_f64(std::ostream& os, double v) {
  write_u64(os, std::bit_cast<std::uint64_t>(v));
}

double read_f64(std::istream& is) {
  return std::bit_cast<double>(read_u64(is));
}

void write_f32(std::ostream& os, float v) {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>(bits >> (8 * i));
  os.write(b, sizeof b);
}

float read_f32(std::istream& is) {
  unsigned char b[4];
  is.read(reinterpret_cast<char*>(b), sizeof b);
  check(static_cast<bool>(is), "checkpoint truncated");
  std::uint32_t bits = 0;
  for (int i = 3; i >= 0; --i) bits = (bits << 8) | b[i];
  return std::bit_cast<float>(bits);
}

void write_scaler(std::ostream& os, const nn::MinMaxScaler& scaler) {
  write_f64(os, scaler.min_value());
  write_f64(os, scaler.max_value());
}

nn::MinMaxScaler read_scaler(std::istream& is) {
  const double lo = read_f64(is);
  const double hi = read_f64(is);
  nn::MinMaxScaler scaler;
  scaler.fit_bounds(lo, hi);
  return scaler;
}

}  // namespace

void save_checkpoint(std::ostream& os, const ParaGraphModel& model,
                     const CheckpointScalers& scalers) {
  os.write(kMagic, sizeof kMagic);
  const auto params = model.parameters();
  write_u64(os, params.size());
  for (const tensor::Matrix* p : params) {
    write_u64(os, p->rows());
    write_u64(os, p->cols());
    for (const float v : p->data()) write_f32(os, v);
  }
  write_scaler(os, scalers.target);
  write_scaler(os, scalers.teams);
  write_scaler(os, scalers.threads);
  write_f64(os, scalers.child_weight_scale);
  const char log_target = scalers.log_target ? 1 : 0;
  os.write(&log_target, 1);
  check(static_cast<bool>(os), "checkpoint write failed");
}

CheckpointScalers load_checkpoint(std::istream& is, ParaGraphModel& model) {
  char magic[8];
  is.read(magic, sizeof magic);
  check(static_cast<bool>(is) && std::memcmp(magic, kMagic, sizeof kMagic) == 0,
        "not a ParaGraph checkpoint");
  const auto params = model.parameters();
  const std::uint64_t count = read_u64(is);
  check(count == params.size(), "checkpoint parameter count mismatch");
  for (tensor::Matrix* p : params) {
    const std::uint64_t rows = read_u64(is);
    const std::uint64_t cols = read_u64(is);
    check(rows == p->rows() && cols == p->cols(),
          "checkpoint parameter shape mismatch (different model config?)");
    for (float& v : p->data()) v = read_f32(is);
  }
  CheckpointScalers scalers;
  scalers.target = read_scaler(is);
  scalers.teams = read_scaler(is);
  scalers.threads = read_scaler(is);
  scalers.child_weight_scale = read_f64(is);
  char log_target = 0;
  is.read(&log_target, 1);
  check(static_cast<bool>(is), "checkpoint truncated");
  scalers.log_target = log_target != 0;
  return scalers;
}

std::uint64_t checkpoint_fingerprint(const ParaGraphModel& model) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix_u64 = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= static_cast<std::uint8_t>(v >> (8 * i));
      h *= 0x100000001b3ull;
    }
  };
  for (const tensor::Matrix* p : model.parameters()) {
    mix_u64(p->rows());
    mix_u64(p->cols());
    for (const float v : p->data()) {
      const std::uint32_t bits = std::bit_cast<std::uint32_t>(v);
      for (int i = 0; i < 4; ++i) {
        h ^= static_cast<std::uint8_t>(bits >> (8 * i));
        h *= 0x100000001b3ull;
      }
    }
  }
  return h;
}

void save_checkpoint_file(const std::string& path, const ParaGraphModel& model,
                          const CheckpointScalers& scalers) {
  std::ofstream os(path, std::ios::binary);
  check(static_cast<bool>(os), "cannot open checkpoint file for writing");
  save_checkpoint(os, model, scalers);
}

CheckpointScalers load_checkpoint_file(const std::string& path,
                                       ParaGraphModel& model) {
  std::ifstream is(path, std::ios::binary);
  check(static_cast<bool>(is), "cannot open checkpoint file");
  return load_checkpoint(is, model);
}

}  // namespace pg::model
