// Wires encoding -> RGAT stack -> readout MLP; forward, backward, and
// parameter registration for Adam and checkpointing. All intermediates are
// workspace-borrowed: ForwardState is a plain struct of pointers into the
// Workspace of the current pass, so the hot path never touches the heap
// once the arena is warm. Both the single-graph and the fused GraphBatch
// entry points run the same batched core (B=1 vs B=N), which is what keeps
// their predictions bitwise-identical.
#include "model/paragraph_model.hpp"

#include <algorithm>
#include <cstring>

#include "nn/activation.hpp"
#include "nn/loss.hpp"
#include "support/check.hpp"

namespace pg::model {

struct ParaGraphModel::ForwardState {
  nn::RgatConv::Cache c1, c2, c3;
  const tensor::Matrix* h1 = nullptr;      // conv outputs (post-ReLU)
  const tensor::Matrix* h2 = nullptr;
  const tensor::Matrix* h3 = nullptr;
  const tensor::Matrix* pooled = nullptr;  // [B x hidden]
  const tensor::Matrix* f1_pre = nullptr;  // fc1 pre/post activation
  const tensor::Matrix* f1 = nullptr;
  const tensor::Matrix* f2_pre = nullptr;  // fc2 pre/post activation
  const tensor::Matrix* f2 = nullptr;
  const tensor::Matrix* aux_in = nullptr;  // [B x aux_dim] (borrowed)
  const tensor::Matrix* aux_pre = nullptr; // aux_fc pre/post activation
  const tensor::Matrix* aux = nullptr;
  const tensor::Matrix* concat = nullptr;  // [B x hidden + aux_embed]
  const tensor::Matrix* out = nullptr;     // [B x 1] scaled predictions
};

ParaGraphModel::ParaGraphModel(const ModelConfig& config)
    : config_(config),
      conv1_([&] {
        pg::Rng rng(config.seed);
        return nn::RgatConv(config.node_feature_dim, config.hidden_dim,
                            config.num_relations, rng);
      }()),
      conv2_([&] {
        pg::Rng rng(config.seed + 1);
        return nn::RgatConv(config.hidden_dim, config.hidden_dim,
                            config.num_relations, rng);
      }()),
      conv3_([&] {
        pg::Rng rng(config.seed + 2);
        return nn::RgatConv(config.hidden_dim, config.hidden_dim,
                            config.num_relations, rng);
      }()),
      fc1_([&] {
        pg::Rng rng(config.seed + 3);
        return nn::Linear(config.hidden_dim, config.hidden_dim, rng);
      }()),
      fc2_([&] {
        pg::Rng rng(config.seed + 4);
        return nn::Linear(config.hidden_dim, config.hidden_dim, rng);
      }()),
      aux_fc_([&] {
        pg::Rng rng(config.seed + 5);
        return nn::Linear(config.aux_dim, config.aux_embed_dim, rng);
      }()),
      out_fc_([&] {
        pg::Rng rng(config.seed + 6);
        return nn::Linear(config.hidden_dim + config.aux_embed_dim, 1, rng);
      }()) {}

void ParaGraphModel::run_embed(const tensor::Matrix& features,
                               const nn::RelationalGraph& relations,
                               std::span<const std::uint32_t> offsets,
                               ForwardState& s, tensor::Workspace& ws) const {
  check(offsets.size() >= 2, "run_embed: empty batch");
  const std::size_t batch = offsets.size() - 1;

  s.h1 = &conv1_.forward(features, relations, s.c1, ws);
  s.h2 = &conv2_.forward(*s.h1, relations, s.c2, ws);
  s.h3 = &conv3_.forward(*s.h2, relations, s.c3, ws);
  tensor::Matrix& pooled = ws.acquire_uninit(batch, config_.hidden_dim);
  tensor::segment_row_mean_into(pooled, *s.h3, offsets);
  s.pooled = &pooled;
}

void ParaGraphModel::run_head(const tensor::Matrix& aux_in, ForwardState& s,
                              tensor::Workspace& ws) const {
  const std::size_t batch = s.pooled->rows();
  check(aux_in.rows() == batch && aux_in.cols() == config_.aux_dim,
        "aux feature shape mismatch");

  s.f1_pre = &fc1_.forward(*s.pooled, ws);
  tensor::Matrix& f1 = ws.acquire_uninit(batch, config_.hidden_dim);
  nn::relu_into(f1, *s.f1_pre);
  s.f1 = &f1;
  s.f2_pre = &fc2_.forward(f1, ws);
  tensor::Matrix& f2 = ws.acquire_uninit(batch, config_.hidden_dim);
  nn::relu_into(f2, *s.f2_pre);
  s.f2 = &f2;

  s.aux_in = &aux_in;
  s.aux_pre = &aux_fc_.forward(aux_in, ws);
  tensor::Matrix& aux_act = ws.acquire_uninit(batch, config_.aux_embed_dim);
  nn::relu_into(aux_act, *s.aux_pre);
  s.aux = &aux_act;

  tensor::Matrix& concat =
      ws.acquire_uninit(batch, config_.hidden_dim + config_.aux_embed_dim);
  for (std::size_t b = 0; b < batch; ++b) {
    // Pure copies (no FP ops), so memcpy is bitwise-neutral.
    auto dst = concat.row_span(b);
    std::memcpy(dst.data(), f2.row_span(b).data(),
                config_.hidden_dim * sizeof(float));
    std::memcpy(dst.data() + config_.hidden_dim, aux_act.row_span(b).data(),
                config_.aux_embed_dim * sizeof(float));
  }
  s.concat = &concat;

  s.out = &out_fc_.forward(concat, ws);
}

void ParaGraphModel::run_forward(const tensor::Matrix& features,
                                 const nn::RelationalGraph& relations,
                                 std::span<const std::uint32_t> offsets,
                                 const tensor::Matrix& aux_in,
                                 ForwardState& s,
                                 tensor::Workspace& ws) const {
  run_embed(features, relations, offsets, s, ws);
  run_head(aux_in, s, ws);
}

void ParaGraphModel::embed_batch(const GraphBatch& batch, tensor::Matrix& out,
                                 tensor::Workspace& ws) const {
  if (batch.empty()) {
    out.reshape(0, config_.hidden_dim);
    return;
  }
  ws.reset();
  ForwardState s;
  run_embed(batch.features(), batch.relations(), batch.node_offsets(), s, ws);
  out.reshape(batch.size(), config_.hidden_dim);
  for (std::size_t b = 0; b < batch.size(); ++b) {
    // Pure copies (no FP ops), so memcpy is bitwise-neutral.
    std::memcpy(out.row_span(b).data(), s.pooled->row_span(b).data(),
                config_.hidden_dim * sizeof(float));
  }
}

void ParaGraphModel::predict_head(const tensor::Matrix& pooled,
                                  const tensor::Matrix& aux,
                                  std::span<double> out,
                                  tensor::Workspace& ws) const {
  check(pooled.cols() == config_.hidden_dim,
        "predict_head: pooled width mismatch");
  check(out.size() == pooled.rows(), "predict_head: output span mismatch");
  if (out.empty()) return;
  ws.reset();
  ForwardState s;
  s.pooled = &pooled;
  run_head(aux, s, ws);
  for (std::size_t b = 0; b < out.size(); ++b)
    out[b] = static_cast<double>((*s.out)(b, 0));
}

double ParaGraphModel::predict(const EncodedGraph& graph,
                               std::span<const float> aux,
                               tensor::Workspace& ws) const {
  check(aux.size() == config_.aux_dim, "aux feature size mismatch");
  ws.reset();
  tensor::Matrix& aux_in = ws.acquire_uninit(1, config_.aux_dim);
  std::copy(aux.begin(), aux.end(), aux_in.row_span(0).begin());
  const std::uint32_t offsets[2] = {
      0, static_cast<std::uint32_t>(graph.features.rows())};
  ForwardState s;
  run_forward(graph.features, graph.relations, offsets, aux_in, s, ws);
  return static_cast<double>((*s.out)(0, 0));
}

double ParaGraphModel::predict(const EncodedGraph& graph,
                               std::span<const float> aux) const {
  thread_local tensor::Workspace ws;
  return predict(graph, aux, ws);
}

void ParaGraphModel::predict_batch(const GraphBatch& batch,
                                   const tensor::Matrix& aux,
                                   std::span<double> out,
                                   tensor::Workspace& ws) const {
  check(out.size() == batch.size(), "predict_batch: output span mismatch");
  if (batch.empty()) return;
  ws.reset();
  ForwardState s;
  run_forward(batch.features(), batch.relations(), batch.node_offsets(), aux,
              s, ws);
  for (std::size_t b = 0; b < out.size(); ++b)
    out[b] = static_cast<double>((*s.out)(b, 0));
}

void ParaGraphModel::run_backward(const nn::RelationalGraph& relations,
                                  std::span<const std::uint32_t> offsets,
                                  const ForwardState& s,
                                  const tensor::Matrix& dout,
                                  std::span<tensor::Matrix> grads,
                                  tensor::Workspace& ws) const {
  check(grads.size() == num_params(), "gradient buffer size mismatch");
  const std::size_t batch = offsets.size() - 1;

  // Parameter layout: conv1, conv2, conv3, fc1, fc2, aux_fc, out_fc.
  const std::size_t conv_params = conv1_.num_params();
  std::size_t offset = 0;
  auto conv1_grads = grads.subspan(offset, conv_params); offset += conv_params;
  auto conv2_grads = grads.subspan(offset, conv_params); offset += conv_params;
  auto conv3_grads = grads.subspan(offset, conv_params); offset += conv_params;
  auto fc1_grads = grads.subspan(offset, 2); offset += 2;
  auto fc2_grads = grads.subspan(offset, 2); offset += 2;
  auto aux_grads = grads.subspan(offset, 2); offset += 2;
  auto out_grads = grads.subspan(offset, 2); offset += 2;
  check(offset == grads.size(), "parameter layout mismatch");

  tensor::Matrix& dconcat = out_fc_.backward(*s.concat, dout, out_grads, ws);

  tensor::Matrix& df2 = ws.acquire_uninit(batch, config_.hidden_dim);
  tensor::Matrix& daux = ws.acquire_uninit(batch, config_.aux_embed_dim);
  for (std::size_t b = 0; b < batch; ++b) {
    // Pure copies (no FP ops), so memcpy is bitwise-neutral.
    auto src = dconcat.row_span(b);
    std::memcpy(df2.row_span(b).data(), src.data(),
                config_.hidden_dim * sizeof(float));
    std::memcpy(daux.row_span(b).data(), src.data() + config_.hidden_dim,
                config_.aux_embed_dim * sizeof(float));
  }

  // Aux branch.
  tensor::Matrix& daux_pre = ws.acquire_uninit(batch, config_.aux_embed_dim);
  nn::relu_backward_into(daux_pre, daux, *s.aux_pre);
  (void)aux_fc_.backward(*s.aux_in, daux_pre, aux_grads, ws);

  // Graph head.
  tensor::Matrix& df2_pre = ws.acquire_uninit(batch, config_.hidden_dim);
  nn::relu_backward_into(df2_pre, df2, *s.f2_pre);
  tensor::Matrix& df1 = fc2_.backward(*s.f1, df2_pre, fc2_grads, ws);
  tensor::Matrix& df1_pre = ws.acquire_uninit(batch, config_.hidden_dim);
  nn::relu_backward_into(df1_pre, df1, *s.f1_pre);
  tensor::Matrix& dpooled = fc1_.backward(*s.pooled, df1_pre, fc1_grads, ws);

  // Segmented mean-pool backward: every node row of graph b receives
  // dpooled.row(b) / N_b.
  const std::size_t n = s.h3->rows();
  tensor::Matrix& dh3 = ws.acquire_uninit(n, config_.hidden_dim);
  for (std::size_t b = 0; b < batch; ++b) {
    const std::size_t lo = offsets[b];
    const std::size_t hi = offsets[b + 1];
    const float inv_n = 1.0f / static_cast<float>(hi - lo);
    auto src = dpooled.row_span(b);
    for (std::size_t i = lo; i < hi; ++i) {
      auto row = dh3.row_span(i);
      for (std::size_t j = 0; j < config_.hidden_dim; ++j)
        row[j] = src[j] * inv_n;
    }
  }

  tensor::Matrix& dh2 = conv3_.backward(dh3, relations, s.c3, conv3_grads, ws);
  tensor::Matrix& dh1 = conv2_.backward(dh2, relations, s.c2, conv2_grads, ws);
  (void)conv1_.backward(dh1, relations, s.c1, conv1_grads, ws);
}

double ParaGraphModel::accumulate_gradients(const EncodedGraph& graph,
                                            std::span<const float> aux,
                                            double target, double grad_scale,
                                            std::span<tensor::Matrix> grads,
                                            tensor::Workspace& ws) const {
  check(aux.size() == config_.aux_dim, "aux feature size mismatch");
  ws.reset();
  tensor::Matrix& aux_in = ws.acquire_uninit(1, config_.aux_dim);
  std::copy(aux.begin(), aux.end(), aux_in.row_span(0).begin());
  const std::uint32_t offsets[2] = {
      0, static_cast<std::uint32_t>(graph.features.rows())};
  ForwardState s;
  run_forward(graph.features, graph.relations, offsets, aux_in, s, ws);
  const double prediction = static_cast<double>((*s.out)(0, 0));

  tensor::Matrix& dout = ws.acquire_uninit(1, 1);
  dout(0, 0) = static_cast<float>(nn::mse_grad(prediction, target) * grad_scale);
  run_backward(graph.relations, offsets, s, dout, grads, ws);
  return prediction;
}

double ParaGraphModel::accumulate_gradients(const EncodedGraph& graph,
                                            std::span<const float> aux,
                                            double target, double grad_scale,
                                            std::span<tensor::Matrix> grads) const {
  thread_local tensor::Workspace ws;
  return accumulate_gradients(graph, aux, target, grad_scale, grads, ws);
}

double ParaGraphModel::accumulate_gradients_batch(
    const GraphBatch& batch, const tensor::Matrix& aux,
    std::span<const double> targets, double grad_scale,
    std::span<tensor::Matrix> grads, tensor::Workspace& ws) const {
  check(targets.size() == batch.size(),
        "accumulate_gradients_batch: target span mismatch");
  if (batch.empty()) return 0.0;
  ws.reset();
  ForwardState s;
  run_forward(batch.features(), batch.relations(), batch.node_offsets(), aux,
              s, ws);

  tensor::Matrix& dout = ws.acquire_uninit(batch.size(), 1);
  double loss = 0.0;
  for (std::size_t b = 0; b < targets.size(); ++b) {
    const double prediction = static_cast<double>((*s.out)(b, 0));
    const double d = prediction - targets[b];
    loss += d * d;
    dout(b, 0) =
        static_cast<float>(nn::mse_grad(prediction, targets[b]) * grad_scale);
  }
  run_backward(batch.relations(), batch.node_offsets(), s, dout, grads, ws);
  return loss;
}

std::vector<tensor::Matrix*> ParaGraphModel::parameters() {
  std::vector<tensor::Matrix*> params;
  for (auto* p : conv1_.parameters()) params.push_back(p);
  for (auto* p : conv2_.parameters()) params.push_back(p);
  for (auto* p : conv3_.parameters()) params.push_back(p);
  for (auto* p : fc1_.parameters()) params.push_back(p);
  for (auto* p : fc2_.parameters()) params.push_back(p);
  for (auto* p : aux_fc_.parameters()) params.push_back(p);
  for (auto* p : out_fc_.parameters()) params.push_back(p);
  return params;
}

std::vector<const tensor::Matrix*> ParaGraphModel::parameters() const {
  std::vector<const tensor::Matrix*> params;
  for (const auto* p : conv1_.parameters()) params.push_back(p);
  for (const auto* p : conv2_.parameters()) params.push_back(p);
  for (const auto* p : conv3_.parameters()) params.push_back(p);
  for (const auto* p : fc1_.parameters()) params.push_back(p);
  for (const auto* p : fc2_.parameters()) params.push_back(p);
  for (const auto* p : aux_fc_.parameters()) params.push_back(p);
  for (const auto* p : out_fc_.parameters()) params.push_back(p);
  return params;
}

std::size_t ParaGraphModel::num_params() const {
  return 3 * conv1_.num_params() + 4 * 2;
}

}  // namespace pg::model
