// Wires encoding -> RGAT stack -> readout MLP; forward, backward, and
// parameter registration for Adam and checkpointing.
#include "model/paragraph_model.hpp"

#include "nn/activation.hpp"
#include "nn/loss.hpp"
#include "support/check.hpp"

namespace pg::model {

struct ParaGraphModel::ForwardState {
  nn::RgatConv::Cache c1, c2, c3;
  tensor::Matrix h1, h2, h3;   // conv outputs (post-ReLU)
  tensor::Matrix pooled;       // [1 x hidden]
  tensor::Matrix f1_pre, f1;   // fc1 pre/post activation
  tensor::Matrix f2_pre, f2;   // fc2 pre/post activation
  tensor::Matrix aux_in;       // [1 x aux_dim]
  tensor::Matrix aux_pre, aux; // aux_fc pre/post activation
  tensor::Matrix concat;       // [1 x hidden + aux_embed]
};

ParaGraphModel::ParaGraphModel(const ModelConfig& config)
    : config_(config),
      conv1_([&] {
        pg::Rng rng(config.seed);
        return nn::RgatConv(config.node_feature_dim, config.hidden_dim,
                            config.num_relations, rng);
      }()),
      conv2_([&] {
        pg::Rng rng(config.seed + 1);
        return nn::RgatConv(config.hidden_dim, config.hidden_dim,
                            config.num_relations, rng);
      }()),
      conv3_([&] {
        pg::Rng rng(config.seed + 2);
        return nn::RgatConv(config.hidden_dim, config.hidden_dim,
                            config.num_relations, rng);
      }()),
      fc1_([&] {
        pg::Rng rng(config.seed + 3);
        return nn::Linear(config.hidden_dim, config.hidden_dim, rng);
      }()),
      fc2_([&] {
        pg::Rng rng(config.seed + 4);
        return nn::Linear(config.hidden_dim, config.hidden_dim, rng);
      }()),
      aux_fc_([&] {
        pg::Rng rng(config.seed + 5);
        return nn::Linear(config.aux_dim, config.aux_embed_dim, rng);
      }()),
      out_fc_([&] {
        pg::Rng rng(config.seed + 6);
        return nn::Linear(config.hidden_dim + config.aux_embed_dim, 1, rng);
      }()) {}

double ParaGraphModel::run_forward(const EncodedGraph& graph,
                                   std::span<const float> aux,
                                   ForwardState* state) const {
  check(aux.size() == config_.aux_dim, "aux feature size mismatch");
  ForwardState local;
  ForwardState& s = state != nullptr ? *state : local;

  s.h1 = conv1_.forward(graph.features, graph.relations, s.c1);
  s.h2 = conv2_.forward(s.h1, graph.relations, s.c2);
  s.h3 = conv3_.forward(s.h2, graph.relations, s.c3);
  s.pooled = tensor::row_mean(s.h3);

  s.f1_pre = fc1_.forward(s.pooled);
  s.f1 = nn::relu(s.f1_pre);
  s.f2_pre = fc2_.forward(s.f1);
  s.f2 = nn::relu(s.f2_pre);

  s.aux_in = tensor::Matrix::row(aux);
  s.aux_pre = aux_fc_.forward(s.aux_in);
  s.aux = nn::relu(s.aux_pre);

  s.concat = tensor::Matrix(1, config_.hidden_dim + config_.aux_embed_dim);
  for (std::size_t j = 0; j < config_.hidden_dim; ++j) s.concat(0, j) = s.f2(0, j);
  for (std::size_t j = 0; j < config_.aux_embed_dim; ++j)
    s.concat(0, config_.hidden_dim + j) = s.aux(0, j);

  return static_cast<double>(out_fc_.forward(s.concat)(0, 0));
}

double ParaGraphModel::predict(const EncodedGraph& graph,
                               std::span<const float> aux) const {
  return run_forward(graph, aux, nullptr);
}

double ParaGraphModel::accumulate_gradients(const EncodedGraph& graph,
                                            std::span<const float> aux,
                                            double target, double grad_scale,
                                            std::span<tensor::Matrix> grads) const {
  check(grads.size() == num_params(), "gradient buffer size mismatch");
  ForwardState s;
  const double prediction = run_forward(graph, aux, &s);
  const double dloss = nn::mse_grad(prediction, target) * grad_scale;

  // Parameter layout: conv1, conv2, conv3, fc1, fc2, aux_fc, out_fc.
  const std::size_t conv_params = conv1_.num_params();
  std::size_t offset = 0;
  auto conv1_grads = grads.subspan(offset, conv_params); offset += conv_params;
  auto conv2_grads = grads.subspan(offset, conv_params); offset += conv_params;
  auto conv3_grads = grads.subspan(offset, conv_params); offset += conv_params;
  auto fc1_grads = grads.subspan(offset, 2); offset += 2;
  auto fc2_grads = grads.subspan(offset, 2); offset += 2;
  auto aux_grads = grads.subspan(offset, 2); offset += 2;
  auto out_grads = grads.subspan(offset, 2); offset += 2;
  check(offset == grads.size(), "parameter layout mismatch");

  tensor::Matrix dout(1, 1);
  dout(0, 0) = static_cast<float>(dloss);
  tensor::Matrix dconcat = out_fc_.backward(s.concat, dout, out_grads);

  tensor::Matrix df2(1, config_.hidden_dim);
  tensor::Matrix daux(1, config_.aux_embed_dim);
  for (std::size_t j = 0; j < config_.hidden_dim; ++j) df2(0, j) = dconcat(0, j);
  for (std::size_t j = 0; j < config_.aux_embed_dim; ++j)
    daux(0, j) = dconcat(0, config_.hidden_dim + j);

  // Aux branch.
  const tensor::Matrix daux_pre = nn::relu_backward(daux, s.aux_pre);
  (void)aux_fc_.backward(s.aux_in, daux_pre, aux_grads);

  // Graph head.
  const tensor::Matrix df2_pre = nn::relu_backward(df2, s.f2_pre);
  tensor::Matrix df1 = fc2_.backward(s.f1, df2_pre, fc2_grads);
  const tensor::Matrix df1_pre = nn::relu_backward(df1, s.f1_pre);
  tensor::Matrix dpooled = fc1_.backward(s.pooled, df1_pre, fc1_grads);

  // Mean-pool backward: every node row receives dpooled / N.
  const std::size_t n = s.h3.rows();
  tensor::Matrix dh3(n, config_.hidden_dim);
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = dh3.row_span(i);
    auto src = dpooled.row_span(0);
    for (std::size_t j = 0; j < config_.hidden_dim; ++j) row[j] = src[j] * inv_n;
  }

  tensor::Matrix dh2 = conv3_.backward(dh3, graph.relations, s.c3, conv3_grads);
  tensor::Matrix dh1 = conv2_.backward(dh2, graph.relations, s.c2, conv2_grads);
  (void)conv1_.backward(dh1, graph.relations, s.c1, conv1_grads);

  return prediction;
}

std::vector<tensor::Matrix*> ParaGraphModel::parameters() {
  std::vector<tensor::Matrix*> params;
  for (auto* p : conv1_.parameters()) params.push_back(p);
  for (auto* p : conv2_.parameters()) params.push_back(p);
  for (auto* p : conv3_.parameters()) params.push_back(p);
  for (auto* p : fc1_.parameters()) params.push_back(p);
  for (auto* p : fc2_.parameters()) params.push_back(p);
  for (auto* p : aux_fc_.parameters()) params.push_back(p);
  for (auto* p : out_fc_.parameters()) params.push_back(p);
  return params;
}

std::size_t ParaGraphModel::num_params() const {
  return 3 * conv1_.num_params() + 4 * 2;
}

}  // namespace pg::model
