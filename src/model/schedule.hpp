// Deterministic cost-model chunk scheduling for the fused batch paths.
//
// The engine and trainer both cut a batch of encoded graphs into contiguous
// chunks, pack each chunk into one block-diagonal GraphBatch, and fan the
// chunks out across OpenMP threads. Counting *graphs* per chunk balances
// nothing when graph sizes are skewed: one 10k-node graph costs ~100x a
// 100-node one. Per-graph node/edge counts are already known at pack time,
// so chunks are balanced by a linear work estimate instead (GRAPHOPT-style
// constrained scheduling over irregular graphs, arXiv 2105.01976).
//
// Determinism contract: every function here is a pure function of its
// inputs — costs in, boundaries out. Thread *count* may feed the target
// cost a caller picks (the engine equalises chunks across cores; chunking
// never affects values because fused predictions are bitwise-equal per
// graph), but thread *timing* never can: no boundary depends on execution
// order. The trainer goes further and derives its target from the batch
// alone, keeping gradient reduction order machine-independent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/encoding.hpp"

namespace pg::model::schedule {

// Linear work estimate for one encoded graph through the RGAT stack:
// projections and activations scale with node rows, attention softmax and
// the gated scatter with edge slots (two passes), plus a fixed per-graph
// pack/dispatch overhead so zero-edge graphs still cost something.
inline constexpr std::uint64_t kNodeCost = 1;
inline constexpr std::uint64_t kEdgeCost = 2;
inline constexpr std::uint64_t kGraphCost = 16;

/// The cost model over one graph's known-at-pack-time shape.
[[nodiscard]] std::uint64_t graph_cost(std::size_t nodes, std::size_t edges);
[[nodiscard]] std::uint64_t graph_cost(const EncodedGraph& graph);

/// Greedy prefix-sum partition of `costs` into contiguous chunks: a chunk
/// closes once adding the next graph would push its cost past
/// `target_cost` (a single graph costlier than the target gets a chunk of
/// its own), or once it holds `max_graphs` graphs. `bounds` is overwritten
/// with the chunk boundaries: size num_chunks + 1, bounds.front() == 0,
/// bounds.back() == costs.size(), strictly increasing (every chunk
/// non-empty). An empty batch yields the single boundary {0}. Grow-only:
/// the output vector's capacity is reused across calls.
///
/// Pure function of (costs, target_cost, max_graphs) — never of thread
/// timing — so a plan is reproducible and unit-testable in isolation.
void partition_by_cost(std::span<const std::uint64_t> costs,
                       std::uint64_t target_cost, std::size_t max_graphs,
                       std::vector<std::uint32_t>& bounds);

/// Sum of costs[lo, hi) for one chunk of a plan.
[[nodiscard]] std::uint64_t chunk_cost(std::span<const std::uint64_t> costs,
                                       std::uint32_t lo, std::uint32_t hi);

/// Cost imbalance of a plan: max chunk cost / mean chunk cost (>= 1.0; 1.0
/// is a perfectly equalised cut). 1.0 for empty or zero-cost plans. With
/// `schedule(dynamic)` stealing, wall clock approaches
/// total / threads * imbalance-bounded-tail, so this is the number the
/// scheduler stats expose.
[[nodiscard]] double plan_imbalance(std::span<const std::uint64_t> costs,
                                    std::span<const std::uint32_t> bounds);

}  // namespace pg::model::schedule
