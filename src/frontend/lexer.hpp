// Lexer for the C subset used by the benchmark kernels.
//
// Differences from a full C lexer, all deliberate:
//  * `#pragma ...` lines become a single kPragma token (body = rest of line,
//    with backslash line-continuations folded), so the parser can attach
//    OpenMP directives to the following statement.
//  * `#include`/`#define`/other preprocessor lines are skipped — kernel
//    sources are already fully instantiated by the variant generator.
//  * No trigraphs, wide literals, or universal character names.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "frontend/diagnostics.hpp"
#include "frontend/token.hpp"

namespace pg::frontend {

class Lexer {
 public:
  /// `source` must outlive the lexer. Diagnostics accumulate in `diags`.
  Lexer(std::string_view source, Diagnostics& diags);

  /// Lexes the next token (kEof forever once exhausted).
  Token next();

  /// Lexes the whole buffer. The returned vector always ends with kEof.
  std::vector<Token> tokenize_all();

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= source_.size(); }
  [[nodiscard]] char peek(std::size_t ahead = 0) const;
  char advance();
  bool match(char expected);
  void skip_trivia();  // whitespace + comments + non-pragma preprocessor lines
  [[nodiscard]] SourceLocation location() const;

  Token make(TokenKind kind, SourceLocation start, std::string text = {}) const;
  Token lex_identifier_or_keyword(SourceLocation start);
  Token lex_number(SourceLocation start);
  Token lex_char_literal(SourceLocation start);
  Token lex_string_literal(SourceLocation start);
  Token lex_preprocessor_line(SourceLocation start);
  Token lex_punctuation(SourceLocation start);

  std::string_view source_;
  Diagnostics& diags_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t column_ = 1;
};

}  // namespace pg::frontend
