// Recursive-descent parser for the C subset + OpenMP pragmas.
//
// Produces a Clang-shaped AST (see ast.hpp for child layouts). Identifier
// references are resolved against lexical scopes during parsing, so
// DeclRefExpr nodes carry their defining declaration (the basis for
// ParaGraph's `Ref` edges). Calls to unknown functions (math builtins like
// `sqrt`) produce DeclRefExpr nodes with a null referenced decl.
//
// OpenMP support: a `#pragma omp ...` line followed by a for-statement
// becomes an Omp*Directive node whose children are the clause nodes followed
// by the loop. Supported directives are exactly the ones the paper's variant
// generator emits:
//   omp parallel for [collapse(n)] [num_threads(e)] [schedule(...)]
//                    [reduction(op:list)] [private/shared/firstprivate(list)]
//   omp target teams distribute parallel for [collapse(n)] [num_teams(e)]
//                    [thread_limit(e)] [map(dir:list)] [reduction(op:list)]
#pragma once

#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "frontend/ast.hpp"
#include "frontend/diagnostics.hpp"
#include "frontend/token.hpp"

namespace pg::frontend {

/// Result of a parse: the context owns all nodes; `root` is the
/// TranslationUnit (nullptr when parsing failed).
struct ParseResult {
  std::unique_ptr<AstContext> context;
  Diagnostics diagnostics;

  [[nodiscard]] AstNode* root() const {
    return context == nullptr ? nullptr : context->root();
  }
  [[nodiscard]] bool ok() const {
    return root() != nullptr && !diagnostics.has_errors();
  }
};

/// Parses a full translation unit.
ParseResult parse_source(std::string_view source);

class Parser {
 public:
  Parser(std::vector<Token> tokens, AstContext& context, Diagnostics& diags);

  /// Parses the token stream as a translation unit; returns nullptr and
  /// fills diagnostics on error.
  AstNode* parse_translation_unit();

 private:
  // --- token stream ------------------------------------------------------
  [[nodiscard]] const Token& peek(std::size_t ahead = 0) const;
  const Token& advance();
  [[nodiscard]] bool at(TokenKind kind) const { return peek().kind == kind; }
  bool accept(TokenKind kind);
  const Token& expect(TokenKind kind, std::string_view what);

  // --- error handling ----------------------------------------------------
  struct ParseError {};
  [[noreturn]] void fail(std::string_view message);

  // --- scopes ------------------------------------------------------------
  void push_scope();
  void pop_scope();
  void declare(const std::string& name, AstNode* decl);
  [[nodiscard]] AstNode* lookup(const std::string& name) const;

  // --- declarations ------------------------------------------------------
  [[nodiscard]] bool at_type_specifier() const;
  QualType parse_type_specifier();
  AstNode* parse_function_or_global(QualType base);
  AstNode* parse_parm_var_decl();
  AstNode* parse_decl_stmt();
  AstNode* parse_var_decl(const QualType& base_type);
  void parse_declarator_suffix(QualType& type);

  // --- statements --------------------------------------------------------
  AstNode* parse_statement();
  AstNode* parse_compound_stmt();
  AstNode* parse_if_stmt();
  AstNode* parse_for_stmt();
  AstNode* parse_while_stmt();
  AstNode* parse_do_stmt();
  AstNode* parse_return_stmt();
  AstNode* parse_omp_directive(const Token& pragma);

  // --- OpenMP clause parsing (operates on the same token stream) ---------
  AstNode* parse_omp_clause(NodeKind directive_kind);
  AstNode* parse_omp_var_or_section();

  // --- expressions -------------------------------------------------------
  AstNode* parse_expression();        // comma has lowest precedence
  AstNode* parse_assignment();
  AstNode* parse_conditional();
  AstNode* parse_binary(int min_precedence);
  AstNode* parse_unary();
  AstNode* parse_postfix();
  AstNode* parse_primary();

  // --- helpers ------------------------------------------------------------
  AstNode* make_node(NodeKind kind, const Token& tok);
  static QualType binary_result_type(const QualType& lhs, const QualType& rhs);
  void infer_expr_type(AstNode* expr);

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
  AstContext& context_;
  Diagnostics& diags_;
  std::vector<std::unordered_map<std::string, AstNode*>> scopes_;
};

/// Post-parse pass: wraps DeclRefExpr nodes that are read as rvalues in
/// ImplicitCastExpr (LValueToRValue), mirroring Clang's AST shape shown in
/// the paper's Figure 2. Skips assignment LHS, ++/-- and unary-& operands,
/// and callees.
void insert_implicit_casts(AstContext& context, AstNode* root);

}  // namespace pg::frontend
