// Token model for the C-subset lexer.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "frontend/source_location.hpp"

namespace pg::frontend {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdentifier,
  kIntegerLiteral,
  kFloatingLiteral,
  kCharLiteral,
  kStringLiteral,
  // A whole `#pragma ...` line; text() holds everything after `#pragma`.
  kPragma,
  // Keywords.
  kKwInt, kKwLong, kKwFloat, kKwDouble, kKwChar, kKwVoid, kKwUnsigned,
  kKwConst, kKwStatic, kKwIf, kKwElse, kKwFor, kKwWhile, kKwDo, kKwReturn,
  kKwBreak, kKwContinue, kKwSizeof, kKwStruct,
  // Punctuation and operators.
  kLParen, kRParen, kLBrace, kRBrace, kLBracket, kRBracket,
  kSemi, kComma, kQuestion, kColon,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kAmp, kPipe, kCaret, kTilde, kExclaim,
  kLess, kGreater, kLessEqual, kGreaterEqual, kEqualEqual, kExclaimEqual,
  kAmpAmp, kPipePipe, kLessLess, kGreaterGreater,
  kEqual, kPlusEqual, kMinusEqual, kStarEqual, kSlashEqual, kPercentEqual,
  kPlusPlus, kMinusMinus,
  kArrow, kPeriod,
};

/// Spelling of a token kind, for diagnostics ("'{'", "identifier", ...).
std::string_view token_kind_name(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // identifier name / literal spelling / pragma body
  SourceLocation location;

  [[nodiscard]] bool is(TokenKind k) const { return kind == k; }
  [[nodiscard]] bool is_keyword() const {
    return kind >= TokenKind::kKwInt && kind <= TokenKind::kKwStruct;
  }
};

}  // namespace pg::frontend
