// Static loop analysis: induction variable and trip-count extraction.
//
// ParaGraph multiplies Child-edge weights inside a loop body by the loop's
// iteration count (paper §III-A.3); the simulator also needs trip counts to
// price kernels. Both consume this module.
#pragma once

#include <cstdint>
#include <optional>

#include "frontend/ast.hpp"

namespace pg::frontend {

/// The canonical-form description of a `for` loop:
///   for (iv = begin; iv REL bound; iv += step) — with REL in {<, <=, >, >=}
struct LoopInfo {
  const AstNode* induction_var = nullptr;  // VarDecl / ParmVarDecl
  std::int64_t begin = 0;
  std::int64_t bound = 0;
  std::int64_t step = 1;
  std::string relation;                    // "<", "<=", ">", ">="
  std::int64_t trip_count = 0;
};

/// Analyzes a ForStmt. Returns nullopt when the loop is not in canonical
/// form or its bounds don't fold to constants.
std::optional<LoopInfo> analyze_for_loop(const AstNode* for_stmt);

/// Trip count of a ForStmt with a fallback for unanalyzable loops.
std::int64_t trip_count_or(const AstNode* for_stmt, std::int64_t fallback);

}  // namespace pg::frontend
