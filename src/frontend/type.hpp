// Minimal type representation — just enough to size data transfers and
// drive the simulator's operation classification.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pg::frontend {

enum class BaseType : std::uint8_t {
  kVoid, kChar, kInt, kUInt, kLong, kULong, kFloat, kDouble,
};

/// A (possibly pointer / array) qualified type. Array extents are stored
/// after constant folding; kUnknownExtent marks runtime-sized dimensions.
struct QualType {
  static constexpr std::int64_t kUnknownExtent = -1;

  BaseType base = BaseType::kInt;
  int pointer_depth = 0;
  std::vector<std::int64_t> array_extents;
  bool is_const = false;

  [[nodiscard]] bool is_pointer() const { return pointer_depth > 0; }
  [[nodiscard]] bool is_array() const { return !array_extents.empty(); }
  [[nodiscard]] bool is_floating() const {
    return !is_pointer() && !is_array() &&
           (base == BaseType::kFloat || base == BaseType::kDouble);
  }
  [[nodiscard]] bool is_integer() const {
    return !is_pointer() && !is_array() &&
           (base == BaseType::kChar || base == BaseType::kInt ||
            base == BaseType::kUInt || base == BaseType::kLong ||
            base == BaseType::kULong);
  }

  /// sizeof the *element* type (ignores pointer/array wrapping).
  [[nodiscard]] std::size_t element_size() const;

  /// Total elements across all array dimensions; kUnknownExtent if any
  /// dimension is runtime-sized.
  [[nodiscard]] std::int64_t total_array_elements() const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const QualType&, const QualType&) = default;
};

std::string_view base_type_name(BaseType base);

}  // namespace pg::frontend
