// Token-kind spellings for diagnostics and the lexer tests.
#include "frontend/token.hpp"

namespace pg::frontend {

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kIntegerLiteral: return "integer literal";
    case TokenKind::kFloatingLiteral: return "floating literal";
    case TokenKind::kCharLiteral: return "character literal";
    case TokenKind::kStringLiteral: return "string literal";
    case TokenKind::kPragma: return "#pragma";
    case TokenKind::kKwInt: return "'int'";
    case TokenKind::kKwLong: return "'long'";
    case TokenKind::kKwFloat: return "'float'";
    case TokenKind::kKwDouble: return "'double'";
    case TokenKind::kKwChar: return "'char'";
    case TokenKind::kKwVoid: return "'void'";
    case TokenKind::kKwUnsigned: return "'unsigned'";
    case TokenKind::kKwConst: return "'const'";
    case TokenKind::kKwStatic: return "'static'";
    case TokenKind::kKwIf: return "'if'";
    case TokenKind::kKwElse: return "'else'";
    case TokenKind::kKwFor: return "'for'";
    case TokenKind::kKwWhile: return "'while'";
    case TokenKind::kKwDo: return "'do'";
    case TokenKind::kKwReturn: return "'return'";
    case TokenKind::kKwBreak: return "'break'";
    case TokenKind::kKwContinue: return "'continue'";
    case TokenKind::kKwSizeof: return "'sizeof'";
    case TokenKind::kKwStruct: return "'struct'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kSemi: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kQuestion: return "'?'";
    case TokenKind::kColon: return "':'";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kPercent: return "'%'";
    case TokenKind::kAmp: return "'&'";
    case TokenKind::kPipe: return "'|'";
    case TokenKind::kCaret: return "'^'";
    case TokenKind::kTilde: return "'~'";
    case TokenKind::kExclaim: return "'!'";
    case TokenKind::kLess: return "'<'";
    case TokenKind::kGreater: return "'>'";
    case TokenKind::kLessEqual: return "'<='";
    case TokenKind::kGreaterEqual: return "'>='";
    case TokenKind::kEqualEqual: return "'=='";
    case TokenKind::kExclaimEqual: return "'!='";
    case TokenKind::kAmpAmp: return "'&&'";
    case TokenKind::kPipePipe: return "'||'";
    case TokenKind::kLessLess: return "'<<'";
    case TokenKind::kGreaterGreater: return "'>>'";
    case TokenKind::kEqual: return "'='";
    case TokenKind::kPlusEqual: return "'+='";
    case TokenKind::kMinusEqual: return "'-='";
    case TokenKind::kStarEqual: return "'*='";
    case TokenKind::kSlashEqual: return "'/='";
    case TokenKind::kPercentEqual: return "'%='";
    case TokenKind::kPlusPlus: return "'++'";
    case TokenKind::kMinusMinus: return "'--'";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kPeriod: return "'.'";
  }
  return "unknown token";
}

}  // namespace pg::frontend
