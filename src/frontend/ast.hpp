// Clang-shaped AST for the C subset.
//
// Design note: nodes are *homogeneous* — a single `AstNode` class carrying a
// `NodeKind` plus a small set of attribute fields, rather than a class
// hierarchy. ParaGraph construction, NextToken ordering, feature encoding,
// and the AST dumper are all generic tree walks over (kind, children), so a
// uniform node keeps every consumer a single loop. Kind-specific structure
// (e.g. "ForStmt has exactly 4 children") is enforced by the parser and by
// accessors that `check()` their preconditions.
//
// Child layouts (documented invariants):
//   TranslationUnit : [FunctionDecl...]
//   FunctionDecl    : [ParmVarDecl..., CompoundStmt body]
//   DeclStmt        : [VarDecl...]
//   VarDecl         : [] or [init expr]
//   CompoundStmt    : [stmt...]
//   ForStmt         : [init, cond, body, inc]      <- paper's Fig. 2 order
//   WhileStmt       : [cond, body]
//   DoStmt          : [body, cond]
//   IfStmt          : [cond, then] or [cond, then, else]
//   ReturnStmt      : [] or [expr]
//   BinaryOperator / CompoundAssignOperator : [lhs, rhs]   (op in text())
//   UnaryOperator   : [operand]                            (op in text())
//   ConditionalOperator : [cond, true-expr, false-expr]
//   CallExpr        : [callee, args...]
//   ArraySubscriptExpr : [base, index]
//   ImplicitCastExpr / ParenExpr : [sub-expr]
//   DeclRefExpr / literals : []                    (terminal "syntax tokens")
//   Omp*Directive   : [clause-nodes..., associated stmt]
//   Omp*Clause      : [expr or DeclRef/ArraySection operands...]
//   OmpArraySection : [base DeclRef, lower expr, length expr]
//
// The ForStmt child order follows the paper's Figure 2 ([init, cond, body,
// inc]) rather than Clang's [init, cond, inc, body]; ForExec/ForNext edges
// assume it. NextToken edges are ordered by source location, so the layout
// difference does not leak into token order.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "frontend/source_location.hpp"
#include "frontend/type.hpp"
#include "support/check.hpp"

namespace pg::frontend {

enum class NodeKind : std::uint8_t {
  kTranslationUnit,
  kFunctionDecl,
  kParmVarDecl,
  kVarDecl,
  kDeclStmt,
  kCompoundStmt,
  kForStmt,
  kWhileStmt,
  kDoStmt,
  kIfStmt,
  kReturnStmt,
  kBreakStmt,
  kContinueStmt,
  kNullStmt,
  kBinaryOperator,
  kCompoundAssignOperator,
  kUnaryOperator,
  kConditionalOperator,
  kCallExpr,
  kArraySubscriptExpr,
  kDeclRefExpr,
  kImplicitCastExpr,
  kParenExpr,
  kIntegerLiteral,
  kFloatingLiteral,
  kCharacterLiteral,
  kStringLiteral,
  kInitListExpr,
  // OpenMP directives: one kind per combined construct so that variants are
  // distinguishable by node-kind features alone.
  kOmpParallelForDirective,
  kOmpTargetTeamsDistributeParallelForDirective,
  // OpenMP clauses. Map clauses are split by direction for the same reason.
  kOmpCollapseClause,
  kOmpNumThreadsClause,
  kOmpNumTeamsClause,
  kOmpThreadLimitClause,
  kOmpScheduleClause,
  kOmpMapToClause,
  kOmpMapFromClause,
  kOmpMapTofromClause,
  kOmpMapAllocClause,
  kOmpReductionClause,
  kOmpPrivateClause,
  kOmpSharedClause,
  kOmpFirstprivateClause,
  kOmpArraySection,
  kCount,  // sentinel: number of kinds (feature-vector width)
};

constexpr std::size_t kNumNodeKinds = static_cast<std::size_t>(NodeKind::kCount);

std::string_view node_kind_name(NodeKind kind);

class AstNode {
 public:
  AstNode(NodeKind kind, SourceRange range) : kind_(kind), range_(range) {}

  AstNode(const AstNode&) = delete;
  AstNode& operator=(const AstNode&) = delete;

  [[nodiscard]] NodeKind kind() const { return kind_; }
  [[nodiscard]] const SourceRange& range() const { return range_; }
  void set_range(SourceRange range) { range_ = range; }

  [[nodiscard]] const std::vector<AstNode*>& children() const { return children_; }
  [[nodiscard]] std::size_t num_children() const { return children_.size(); }
  [[nodiscard]] AstNode* child(std::size_t i) const {
    check(i < children_.size(), "AST child index out of range");
    return children_[i];
  }
  void add_child(AstNode* node) {
    check(node != nullptr, "null AST child");
    children_.push_back(node);
  }
  void set_child(std::size_t i, AstNode* node) {
    check(i < children_.size() && node != nullptr, "bad set_child");
    children_[i] = node;
  }

  /// Terminal nodes are the paper's "syntax tokens".
  [[nodiscard]] bool is_terminal() const { return children_.empty(); }

  // --- attributes -------------------------------------------------------
  /// Identifier name, operator spelling, or literal spelling.
  [[nodiscard]] const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  [[nodiscard]] std::int64_t int_value() const { return int_value_; }
  void set_int_value(std::int64_t v) { int_value_ = v; }

  [[nodiscard]] double float_value() const { return float_value_; }
  void set_float_value(double v) { float_value_ = v; }

  /// For DeclRefExpr: the VarDecl/ParmVarDecl/FunctionDecl it names
  /// (nullptr for unresolved builtins like sqrt).
  [[nodiscard]] AstNode* referenced_decl() const { return referenced_decl_; }
  void set_referenced_decl(AstNode* decl) { referenced_decl_ = decl; }

  [[nodiscard]] const QualType& type() const { return type_; }
  void set_type(QualType type) { type_ = std::move(type); }

  // --- kind queries -----------------------------------------------------
  [[nodiscard]] bool is(NodeKind k) const { return kind_ == k; }
  [[nodiscard]] bool is_decl() const {
    return kind_ == NodeKind::kFunctionDecl || kind_ == NodeKind::kVarDecl ||
           kind_ == NodeKind::kParmVarDecl;
  }
  [[nodiscard]] bool is_omp_directive() const {
    return kind_ == NodeKind::kOmpParallelForDirective ||
           kind_ == NodeKind::kOmpTargetTeamsDistributeParallelForDirective;
  }
  [[nodiscard]] bool is_omp_clause() const {
    return kind_ >= NodeKind::kOmpCollapseClause &&
           kind_ <= NodeKind::kOmpFirstprivateClause;
  }
  [[nodiscard]] bool is_loop() const {
    return kind_ == NodeKind::kForStmt || kind_ == NodeKind::kWhileStmt ||
           kind_ == NodeKind::kDoStmt;
  }

  // --- structured accessors (precondition-checked) ----------------------
  [[nodiscard]] AstNode* for_init() const { return checked(NodeKind::kForStmt, 0); }
  [[nodiscard]] AstNode* for_cond() const { return checked(NodeKind::kForStmt, 1); }
  [[nodiscard]] AstNode* for_body() const { return checked(NodeKind::kForStmt, 2); }
  [[nodiscard]] AstNode* for_inc() const { return checked(NodeKind::kForStmt, 3); }

  [[nodiscard]] AstNode* if_cond() const { return checked(NodeKind::kIfStmt, 0); }
  [[nodiscard]] AstNode* if_then() const { return checked(NodeKind::kIfStmt, 1); }
  [[nodiscard]] AstNode* if_else() const {
    check(kind_ == NodeKind::kIfStmt, "if_else on non-IfStmt");
    return children_.size() > 2 ? children_[2] : nullptr;
  }

  /// For an OpenMP directive: the associated statement (last child).
  [[nodiscard]] AstNode* omp_body() const {
    check(is_omp_directive() && !children_.empty(), "omp_body: bad node");
    return children_.back();
  }

 private:
  [[nodiscard]] AstNode* checked(NodeKind expect, std::size_t i) const {
    check(kind_ == expect, "structured accessor on wrong node kind");
    return child(i);
  }

  NodeKind kind_;
  SourceRange range_;
  std::vector<AstNode*> children_;
  std::string text_;
  std::int64_t int_value_ = 0;
  double float_value_ = 0.0;
  AstNode* referenced_decl_ = nullptr;
  QualType type_;
};

/// Arena that owns every node of one parse. Nodes hold non-owning pointers
/// into the arena; the context must outlive all of them.
class AstContext {
 public:
  AstContext() = default;
  AstContext(AstContext&&) = default;
  AstContext& operator=(AstContext&&) = default;

  AstNode* create(NodeKind kind, SourceRange range = {}) {
    nodes_.push_back(std::make_unique<AstNode>(kind, range));
    return nodes_.back().get();
  }

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }

  [[nodiscard]] AstNode* root() const { return root_; }
  void set_root(AstNode* root) { root_ = root; }

 private:
  std::vector<std::unique_ptr<AstNode>> nodes_;
  AstNode* root_ = nullptr;
};

/// Pre-order depth-first visit; `visit(node, depth)` returning false prunes
/// the subtree.
template <typename Visitor>
void walk(const AstNode* node, Visitor&& visit, int depth = 0) {
  if (node == nullptr) return;
  if (!visit(node, depth)) return;
  for (const AstNode* child : node->children())
    walk(child, visit, depth + 1);
}

/// Counts nodes in a subtree.
std::size_t subtree_size(const AstNode* node);

/// Collects terminal nodes ("syntax tokens") ordered by source position.
std::vector<const AstNode*> terminals_in_token_order(const AstNode* root);

}  // namespace pg::frontend
