// Depth-bounded constant folder over integer expressions and decl inits.
#include "frontend/const_eval.hpp"

namespace pg::frontend {
namespace {

constexpr int kMaxFoldDepth = 64;  // guards against decl-init cycles

std::optional<std::int64_t> eval(const AstNode* expr, int depth) {
  if (expr == nullptr || depth > kMaxFoldDepth) return std::nullopt;
  switch (expr->kind()) {
    case NodeKind::kIntegerLiteral:
    case NodeKind::kCharacterLiteral:
      return expr->int_value();
    case NodeKind::kParenExpr:
    case NodeKind::kImplicitCastExpr:
      return eval(expr->child(0), depth + 1);
    case NodeKind::kDeclRefExpr: {
      const AstNode* decl = expr->referenced_decl();
      if (decl == nullptr) return std::nullopt;
      if (!decl->is(NodeKind::kVarDecl) || decl->num_children() != 1)
        return std::nullopt;
      return eval(decl->child(0), depth + 1);
    }
    case NodeKind::kUnaryOperator: {
      auto sub = eval(expr->child(0), depth + 1);
      if (!sub) return std::nullopt;
      const std::string& op = expr->text();
      if (op == "-") return -*sub;
      if (op == "+") return *sub;
      if (op == "~") return ~*sub;
      if (op == "!") return *sub == 0 ? 1 : 0;
      if (op == "sizeof") return *sub;
      return std::nullopt;
    }
    case NodeKind::kBinaryOperator: {
      auto lhs = eval(expr->child(0), depth + 1);
      auto rhs = eval(expr->child(1), depth + 1);
      if (!lhs || !rhs) return std::nullopt;
      const std::string& op = expr->text();
      if (op == "+") return *lhs + *rhs;
      if (op == "-") return *lhs - *rhs;
      if (op == "*") return *lhs * *rhs;
      if (op == "/") return *rhs == 0 ? std::nullopt : std::optional(*lhs / *rhs);
      if (op == "%") return *rhs == 0 ? std::nullopt : std::optional(*lhs % *rhs);
      if (op == "<<") return *lhs << (*rhs & 63);
      if (op == ">>") return *lhs >> (*rhs & 63);
      if (op == "&") return *lhs & *rhs;
      if (op == "|") return *lhs | *rhs;
      if (op == "^") return *lhs ^ *rhs;
      if (op == "<") return *lhs < *rhs ? 1 : 0;
      if (op == ">") return *lhs > *rhs ? 1 : 0;
      if (op == "<=") return *lhs <= *rhs ? 1 : 0;
      if (op == ">=") return *lhs >= *rhs ? 1 : 0;
      if (op == "==") return *lhs == *rhs ? 1 : 0;
      if (op == "!=") return *lhs != *rhs ? 1 : 0;
      return std::nullopt;
    }
    case NodeKind::kConditionalOperator: {
      auto cond = eval(expr->child(0), depth + 1);
      if (!cond) return std::nullopt;
      return eval(expr->child(*cond != 0 ? 1 : 2), depth + 1);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace

std::optional<std::int64_t> evaluate_integer_constant(const AstNode* expr) {
  return eval(expr, 0);
}

}  // namespace pg::frontend
