// Human-readable AST dumping (clang -ast-dump flavoured), used by the
// graph_to_dot example and by tests asserting tree shapes.
#pragma once

#include <string>

#include "frontend/ast.hpp"

namespace pg::frontend {

/// Renders a subtree as an indented tree, e.g.
///   ForStmt
///   |-DeclStmt
///   | `-VarDecl 'i' int = ...
///   |-BinaryOperator '<'
///   ...
std::string dump_ast(const AstNode* root);

}  // namespace pg::frontend
