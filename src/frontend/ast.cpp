// AST node storage and traversal helpers (kind names, child iteration).
#include "frontend/ast.hpp"

#include <algorithm>

namespace pg::frontend {

std::string_view node_kind_name(NodeKind kind) {
  switch (kind) {
    case NodeKind::kTranslationUnit: return "TranslationUnit";
    case NodeKind::kFunctionDecl: return "FunctionDecl";
    case NodeKind::kParmVarDecl: return "ParmVarDecl";
    case NodeKind::kVarDecl: return "VarDecl";
    case NodeKind::kDeclStmt: return "DeclStmt";
    case NodeKind::kCompoundStmt: return "CompoundStmt";
    case NodeKind::kForStmt: return "ForStmt";
    case NodeKind::kWhileStmt: return "WhileStmt";
    case NodeKind::kDoStmt: return "DoStmt";
    case NodeKind::kIfStmt: return "IfStmt";
    case NodeKind::kReturnStmt: return "ReturnStmt";
    case NodeKind::kBreakStmt: return "BreakStmt";
    case NodeKind::kContinueStmt: return "ContinueStmt";
    case NodeKind::kNullStmt: return "NullStmt";
    case NodeKind::kBinaryOperator: return "BinaryOperator";
    case NodeKind::kCompoundAssignOperator: return "CompoundAssignOperator";
    case NodeKind::kUnaryOperator: return "UnaryOperator";
    case NodeKind::kConditionalOperator: return "ConditionalOperator";
    case NodeKind::kCallExpr: return "CallExpr";
    case NodeKind::kArraySubscriptExpr: return "ArraySubscriptExpr";
    case NodeKind::kDeclRefExpr: return "DeclRefExpr";
    case NodeKind::kImplicitCastExpr: return "ImplicitCastExpr";
    case NodeKind::kParenExpr: return "ParenExpr";
    case NodeKind::kIntegerLiteral: return "IntegerLiteral";
    case NodeKind::kFloatingLiteral: return "FloatingLiteral";
    case NodeKind::kCharacterLiteral: return "CharacterLiteral";
    case NodeKind::kStringLiteral: return "StringLiteral";
    case NodeKind::kInitListExpr: return "InitListExpr";
    case NodeKind::kOmpParallelForDirective: return "OmpParallelForDirective";
    case NodeKind::kOmpTargetTeamsDistributeParallelForDirective:
      return "OmpTargetTeamsDistributeParallelForDirective";
    case NodeKind::kOmpCollapseClause: return "OmpCollapseClause";
    case NodeKind::kOmpNumThreadsClause: return "OmpNumThreadsClause";
    case NodeKind::kOmpNumTeamsClause: return "OmpNumTeamsClause";
    case NodeKind::kOmpThreadLimitClause: return "OmpThreadLimitClause";
    case NodeKind::kOmpScheduleClause: return "OmpScheduleClause";
    case NodeKind::kOmpMapToClause: return "OmpMapToClause";
    case NodeKind::kOmpMapFromClause: return "OmpMapFromClause";
    case NodeKind::kOmpMapTofromClause: return "OmpMapTofromClause";
    case NodeKind::kOmpMapAllocClause: return "OmpMapAllocClause";
    case NodeKind::kOmpReductionClause: return "OmpReductionClause";
    case NodeKind::kOmpPrivateClause: return "OmpPrivateClause";
    case NodeKind::kOmpSharedClause: return "OmpSharedClause";
    case NodeKind::kOmpFirstprivateClause: return "OmpFirstprivateClause";
    case NodeKind::kOmpArraySection: return "OmpArraySection";
    case NodeKind::kCount: break;
  }
  return "<invalid>";
}

std::size_t subtree_size(const AstNode* node) {
  std::size_t count = 0;
  walk(node, [&count](const AstNode*, int) {
    ++count;
    return true;
  });
  return count;
}

std::vector<const AstNode*> terminals_in_token_order(const AstNode* root) {
  std::vector<const AstNode*> terminals;
  walk(root, [&terminals](const AstNode* node, int) {
    if (node->is_terminal()) terminals.push_back(node);
    return true;
  });
  std::stable_sort(terminals.begin(), terminals.end(),
                   [](const AstNode* a, const AstNode* b) {
                     return a->range().begin.offset < b->range().begin.offset;
                   });
  return terminals;
}

}  // namespace pg::frontend
