// Hand-rolled lexer: keywords, literals, operators, and pragma lines.
#include "frontend/lexer.hpp"

#include <cctype>
#include <unordered_map>

namespace pg::frontend {
namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const std::unordered_map<std::string_view, TokenKind> table = {
      {"int", TokenKind::kKwInt},         {"long", TokenKind::kKwLong},
      {"float", TokenKind::kKwFloat},     {"double", TokenKind::kKwDouble},
      {"char", TokenKind::kKwChar},       {"void", TokenKind::kKwVoid},
      {"unsigned", TokenKind::kKwUnsigned}, {"const", TokenKind::kKwConst},
      {"static", TokenKind::kKwStatic},   {"if", TokenKind::kKwIf},
      {"else", TokenKind::kKwElse},       {"for", TokenKind::kKwFor},
      {"while", TokenKind::kKwWhile},     {"do", TokenKind::kKwDo},
      {"return", TokenKind::kKwReturn},   {"break", TokenKind::kKwBreak},
      {"continue", TokenKind::kKwContinue}, {"sizeof", TokenKind::kKwSizeof},
      {"struct", TokenKind::kKwStruct},
  };
  return table;
}

bool is_ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }
bool is_digit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

}  // namespace

Lexer::Lexer(std::string_view source, Diagnostics& diags)
    : source_(source), diags_(diags) {}

char Lexer::peek(std::size_t ahead) const {
  return pos_ + ahead < source_.size() ? source_[pos_ + ahead] : '\0';
}

char Lexer::advance() {
  const char c = source_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool Lexer::match(char expected) {
  if (at_end() || peek() != expected) return false;
  advance();
  return true;
}

SourceLocation Lexer::location() const {
  return {static_cast<std::uint32_t>(pos_), line_, column_};
}

void Lexer::skip_trivia() {
  while (!at_end()) {
    const char c = peek();
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance();
    } else if (c == '/' && peek(1) == '/') {
      while (!at_end() && peek() != '\n') advance();
    } else if (c == '/' && peek(1) == '*') {
      const SourceLocation start = location();
      advance();
      advance();
      bool closed = false;
      while (!at_end()) {
        if (peek() == '*' && peek(1) == '/') {
          advance();
          advance();
          closed = true;
          break;
        }
        advance();
      }
      if (!closed) diags_.error(start, "unterminated block comment");
    } else {
      break;
    }
  }
}

Token Lexer::make(TokenKind kind, SourceLocation start, std::string text) const {
  return Token{kind, std::move(text), start};
}

Token Lexer::next() {
  skip_trivia();
  if (at_end()) return make(TokenKind::kEof, location());

  const SourceLocation start = location();
  const char c = peek();
  if (c == '#') return lex_preprocessor_line(start);
  if (is_ident_start(c)) return lex_identifier_or_keyword(start);
  if (is_digit(c) || (c == '.' && is_digit(peek(1)))) return lex_number(start);
  if (c == '\'') return lex_char_literal(start);
  if (c == '"') return lex_string_literal(start);
  return lex_punctuation(start);
}

std::vector<Token> Lexer::tokenize_all() {
  std::vector<Token> tokens;
  for (;;) {
    tokens.push_back(next());
    if (tokens.back().is(TokenKind::kEof)) break;
  }
  return tokens;
}

Token Lexer::lex_identifier_or_keyword(SourceLocation start) {
  std::string text;
  while (!at_end() && is_ident_char(peek())) text += advance();
  const auto& table = keyword_table();
  if (auto it = table.find(text); it != table.end()) return make(it->second, start, text);
  return make(TokenKind::kIdentifier, start, std::move(text));
}

Token Lexer::lex_number(SourceLocation start) {
  std::string text;
  bool is_float = false;

  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    text += advance();
    text += advance();
    while (!at_end() && std::isxdigit(static_cast<unsigned char>(peek()))) text += advance();
  } else {
    while (!at_end() && is_digit(peek())) text += advance();
    if (!at_end() && peek() == '.') {
      is_float = true;
      text += advance();
      while (!at_end() && is_digit(peek())) text += advance();
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      is_float = true;
      text += advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) text += advance();
      if (at_end() || !is_digit(peek())) {
        diags_.error(start, "malformed exponent in numeric literal");
      }
      while (!at_end() && is_digit(peek())) text += advance();
    }
  }
  // Suffixes: f/F force float; u/U/l/L are consumed but not recorded.
  while (!at_end() && (peek() == 'f' || peek() == 'F' || peek() == 'l' ||
                       peek() == 'L' || peek() == 'u' || peek() == 'U')) {
    if (peek() == 'f' || peek() == 'F') is_float = true;
    advance();
  }
  return make(is_float ? TokenKind::kFloatingLiteral : TokenKind::kIntegerLiteral,
              start, std::move(text));
}

Token Lexer::lex_char_literal(SourceLocation start) {
  advance();  // opening quote
  std::string text;
  while (!at_end() && peek() != '\'') {
    if (peek() == '\\') text += advance();
    if (!at_end()) text += advance();
  }
  if (at_end()) {
    diags_.error(start, "unterminated character literal");
  } else {
    advance();  // closing quote
  }
  return make(TokenKind::kCharLiteral, start, std::move(text));
}

Token Lexer::lex_string_literal(SourceLocation start) {
  advance();  // opening quote
  std::string text;
  while (!at_end() && peek() != '"') {
    if (peek() == '\\') text += advance();
    if (!at_end()) text += advance();
  }
  if (at_end()) {
    diags_.error(start, "unterminated string literal");
  } else {
    advance();  // closing quote
  }
  return make(TokenKind::kStringLiteral, start, std::move(text));
}

Token Lexer::lex_preprocessor_line(SourceLocation start) {
  advance();  // '#'
  // Read the directive name.
  while (!at_end() && (peek() == ' ' || peek() == '\t')) advance();
  std::string directive;
  while (!at_end() && is_ident_char(peek())) directive += advance();

  // Collect the rest of the (possibly continued) line.
  std::string body;
  while (!at_end() && peek() != '\n') {
    if (peek() == '\\' && peek(1) == '\n') {
      advance();
      advance();
      body += ' ';
      continue;
    }
    body += advance();
  }

  if (directive == "pragma") {
    // Trim leading whitespace of the pragma body.
    std::size_t first = body.find_first_not_of(" \t");
    body = first == std::string::npos ? std::string{} : body.substr(first);
    return make(TokenKind::kPragma, start, std::move(body));
  }
  // Any other preprocessor line (#include, #define, ...) is skipped; the
  // dataset pipeline feeds fully-instantiated sources.
  return next();
}

Token Lexer::lex_punctuation(SourceLocation start) {
  const char c = advance();
  switch (c) {
    case '(': return make(TokenKind::kLParen, start);
    case ')': return make(TokenKind::kRParen, start);
    case '{': return make(TokenKind::kLBrace, start);
    case '}': return make(TokenKind::kRBrace, start);
    case '[': return make(TokenKind::kLBracket, start);
    case ']': return make(TokenKind::kRBracket, start);
    case ';': return make(TokenKind::kSemi, start);
    case ',': return make(TokenKind::kComma, start);
    case '?': return make(TokenKind::kQuestion, start);
    case ':': return make(TokenKind::kColon, start);
    case '~': return make(TokenKind::kTilde, start);
    case '+':
      if (match('+')) return make(TokenKind::kPlusPlus, start);
      if (match('=')) return make(TokenKind::kPlusEqual, start);
      return make(TokenKind::kPlus, start);
    case '-':
      if (match('-')) return make(TokenKind::kMinusMinus, start);
      if (match('=')) return make(TokenKind::kMinusEqual, start);
      if (match('>')) return make(TokenKind::kArrow, start);
      return make(TokenKind::kMinus, start);
    case '*':
      if (match('=')) return make(TokenKind::kStarEqual, start);
      return make(TokenKind::kStar, start);
    case '/':
      if (match('=')) return make(TokenKind::kSlashEqual, start);
      return make(TokenKind::kSlash, start);
    case '%':
      if (match('=')) return make(TokenKind::kPercentEqual, start);
      return make(TokenKind::kPercent, start);
    case '&':
      if (match('&')) return make(TokenKind::kAmpAmp, start);
      return make(TokenKind::kAmp, start);
    case '|':
      if (match('|')) return make(TokenKind::kPipePipe, start);
      return make(TokenKind::kPipe, start);
    case '^': return make(TokenKind::kCaret, start);
    case '!':
      if (match('=')) return make(TokenKind::kExclaimEqual, start);
      return make(TokenKind::kExclaim, start);
    case '<':
      if (match('=')) return make(TokenKind::kLessEqual, start);
      if (match('<')) return make(TokenKind::kLessLess, start);
      return make(TokenKind::kLess, start);
    case '>':
      if (match('=')) return make(TokenKind::kGreaterEqual, start);
      if (match('>')) return make(TokenKind::kGreaterGreater, start);
      return make(TokenKind::kGreater, start);
    case '=':
      if (match('=')) return make(TokenKind::kEqualEqual, start);
      return make(TokenKind::kEqual, start);
    case '.': return make(TokenKind::kPeriod, start);
    default:
      diags_.error(start, std::string("unexpected character '") + c + "'");
      return next();
  }
}

}  // namespace pg::frontend
