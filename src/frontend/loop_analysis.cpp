// Trip-count and induction-variable extraction from canonical for-loops,
// folding bounds with the constant evaluator.
#include "frontend/loop_analysis.hpp"

#include "frontend/const_eval.hpp"

namespace pg::frontend {
namespace {

const AstNode* strip(const AstNode* expr) {
  while (expr != nullptr &&
         (expr->is(NodeKind::kParenExpr) || expr->is(NodeKind::kImplicitCastExpr)))
    expr = expr->child(0);
  return expr;
}

/// Returns the decl a (possibly wrapped) DeclRefExpr names, else nullptr.
const AstNode* ref_target(const AstNode* expr) {
  expr = strip(expr);
  if (expr != nullptr && expr->is(NodeKind::kDeclRefExpr))
    return expr->referenced_decl();
  return nullptr;
}

/// Extracts (induction decl, begin value) from the init child:
/// either `int i = E` (DeclStmt) or `i = E` (assignment).
std::optional<std::pair<const AstNode*, std::int64_t>> analyze_init(
    const AstNode* init) {
  if (init == nullptr) return std::nullopt;
  if (init->is(NodeKind::kDeclStmt) && init->num_children() == 1) {
    const AstNode* var = init->child(0);
    if (!var->is(NodeKind::kVarDecl) || var->num_children() != 1) return std::nullopt;
    auto value = evaluate_integer_constant(var->child(0));
    if (!value) return std::nullopt;
    return std::pair{var, *value};
  }
  if (init->is(NodeKind::kBinaryOperator) && init->text() == "=") {
    const AstNode* target = ref_target(init->child(0));
    if (target == nullptr) return std::nullopt;
    auto value = evaluate_integer_constant(init->child(1));
    if (!value) return std::nullopt;
    return std::pair{target, *value};
  }
  return std::nullopt;
}

/// Extracts the per-iteration step for the induction variable from the inc
/// child: i++, ++i, i--, --i, i += c, i -= c, i = i + c, i = i - c.
std::optional<std::int64_t> analyze_step(const AstNode* inc, const AstNode* iv) {
  if (inc == nullptr) return std::nullopt;
  inc = strip(inc);
  if (inc->is(NodeKind::kUnaryOperator)) {
    if (ref_target(inc->child(0)) != iv) return std::nullopt;
    const std::string& op = inc->text();
    if (op == "++pre" || op == "++post") return 1;
    if (op == "--pre" || op == "--post") return -1;
    return std::nullopt;
  }
  if (inc->is(NodeKind::kCompoundAssignOperator)) {
    if (ref_target(inc->child(0)) != iv) return std::nullopt;
    auto value = evaluate_integer_constant(inc->child(1));
    if (!value) return std::nullopt;
    if (inc->text() == "+=") return *value;
    if (inc->text() == "-=") return -*value;
    return std::nullopt;
  }
  if (inc->is(NodeKind::kBinaryOperator) && inc->text() == "=") {
    if (ref_target(inc->child(0)) != iv) return std::nullopt;
    const AstNode* rhs = strip(inc->child(1));
    if (rhs == nullptr || !rhs->is(NodeKind::kBinaryOperator)) return std::nullopt;
    const bool lhs_is_iv = ref_target(rhs->child(0)) == iv;
    const AstNode* addend = lhs_is_iv ? rhs->child(1) : rhs->child(0);
    if (!lhs_is_iv && ref_target(rhs->child(1)) != iv) return std::nullopt;
    auto value = evaluate_integer_constant(addend);
    if (!value) return std::nullopt;
    if (rhs->text() == "+") return *value;
    if (rhs->text() == "-" && lhs_is_iv) return -*value;
    return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace

std::optional<LoopInfo> analyze_for_loop(const AstNode* for_stmt) {
  if (for_stmt == nullptr || !for_stmt->is(NodeKind::kForStmt)) return std::nullopt;
  if (for_stmt->num_children() != 4) return std::nullopt;

  auto init = analyze_init(for_stmt->for_init());
  if (!init) return std::nullopt;
  const auto& [iv, begin] = *init;

  const AstNode* cond = strip(for_stmt->for_cond());
  if (cond == nullptr || !cond->is(NodeKind::kBinaryOperator)) return std::nullopt;
  const std::string relation = cond->text();
  if (relation != "<" && relation != "<=" && relation != ">" && relation != ">=")
    return std::nullopt;

  // Normalise `bound REL iv` into `iv REL' bound`.
  std::string rel = relation;
  const AstNode* bound_expr = nullptr;
  if (ref_target(cond->child(0)) == iv) {
    bound_expr = cond->child(1);
  } else if (ref_target(cond->child(1)) == iv) {
    bound_expr = cond->child(0);
    if (rel == "<") rel = ">";
    else if (rel == "<=") rel = ">=";
    else if (rel == ">") rel = "<";
    else rel = "<=";
  } else {
    return std::nullopt;
  }
  auto bound = evaluate_integer_constant(bound_expr);
  if (!bound) return std::nullopt;

  auto step = analyze_step(for_stmt->for_inc(), iv);
  if (!step || *step == 0) return std::nullopt;

  std::int64_t trips = 0;
  if ((rel == "<" || rel == "<=") && *step > 0) {
    const std::int64_t limit = *bound + (rel == "<=" ? 1 : 0);
    if (limit > begin) trips = (limit - begin + *step - 1) / *step;
  } else if ((rel == ">" || rel == ">=") && *step < 0) {
    const std::int64_t limit = *bound - (rel == ">=" ? 1 : 0);
    if (begin > limit) trips = (begin - limit + (-*step) - 1) / (-*step);
  } else {
    return std::nullopt;  // direction mismatch => non-terminating or zero-trip
  }

  LoopInfo info;
  info.induction_var = iv;
  info.begin = begin;
  info.bound = *bound;
  info.step = *step;
  info.relation = rel;
  info.trip_count = trips;
  return info;
}

std::int64_t trip_count_or(const AstNode* for_stmt, std::int64_t fallback) {
  auto info = analyze_for_loop(for_stmt);
  return info ? info->trip_count : fallback;
}

}  // namespace pg::frontend
