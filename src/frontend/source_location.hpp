// Source positions for tokens, AST nodes, and diagnostics.
#pragma once

#include <cstdint>
#include <string>

namespace pg::frontend {

/// A position in the input buffer. `offset` is the byte offset from the
/// start of the buffer; line/column are 1-based.
struct SourceLocation {
  std::uint32_t offset = 0;
  std::uint32_t line = 0;
  std::uint32_t column = 0;

  [[nodiscard]] bool valid() const { return line != 0; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SourceLocation&, const SourceLocation&) = default;
};

/// Half-open byte range [begin, end) covered by a token or node.
struct SourceRange {
  SourceLocation begin;
  SourceLocation end;

  friend bool operator==(const SourceRange&, const SourceRange&) = default;
};

}  // namespace pg::frontend
