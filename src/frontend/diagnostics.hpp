// Error reporting for the frontend. Unlike library-internal invariants
// (support/check.hpp), these describe problems in the *input program*.
#pragma once

#include <string>
#include <vector>

#include "frontend/source_location.hpp"

namespace pg::frontend {

struct Diagnostic {
  SourceLocation location;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    return location.to_string() + ": error: " + message;
  }
};

/// Accumulates diagnostics produced while lexing/parsing one buffer.
class Diagnostics {
 public:
  void error(SourceLocation loc, std::string message) {
    entries_.push_back({loc, std::move(message)});
  }

  [[nodiscard]] bool has_errors() const { return !entries_.empty(); }
  [[nodiscard]] const std::vector<Diagnostic>& entries() const { return entries_; }

  /// All diagnostics joined with newlines (for test assertions / logs).
  [[nodiscard]] std::string summary() const {
    std::string out;
    for (const auto& d : entries_) {
      if (!out.empty()) out += '\n';
      out += d.to_string();
    }
    return out;
  }

 private:
  std::vector<Diagnostic> entries_;
};

}  // namespace pg::frontend
