// Integer constant-expression evaluation.
//
// Used to fold loop bounds, array extents, and map-clause section lengths.
// A DeclRefExpr folds when its declaration has a foldable initializer (the
// dataset generator instantiates sizes as literal-initialized locals, so
// this covers `int n = 2048; ... for (i = 0; i < n; ...)`). Reassignment is
// not tracked — a documented simplification that holds for the generated
// kernels, where size variables are single-assignment.
#pragma once

#include <cstdint>
#include <optional>

#include "frontend/ast.hpp"

namespace pg::frontend {

/// Attempts to evaluate `expr` as a 64-bit integer constant.
std::optional<std::int64_t> evaluate_integer_constant(const AstNode* expr);

}  // namespace pg::frontend
