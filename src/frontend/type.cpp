// Type sizing/printing: element sizes drive simulated transfer volumes.
#include "frontend/type.hpp"

namespace pg::frontend {

std::size_t QualType::element_size() const {
  switch (base) {
    case BaseType::kVoid: return 1;
    case BaseType::kChar: return 1;
    case BaseType::kInt:
    case BaseType::kUInt: return 4;
    case BaseType::kLong:
    case BaseType::kULong: return 8;
    case BaseType::kFloat: return 4;
    case BaseType::kDouble: return 8;
  }
  return 1;
}

std::int64_t QualType::total_array_elements() const {
  std::int64_t total = 1;
  for (std::int64_t extent : array_extents) {
    if (extent == kUnknownExtent) return kUnknownExtent;
    total *= extent;
  }
  return total;
}

std::string_view base_type_name(BaseType base) {
  switch (base) {
    case BaseType::kVoid: return "void";
    case BaseType::kChar: return "char";
    case BaseType::kInt: return "int";
    case BaseType::kUInt: return "unsigned int";
    case BaseType::kLong: return "long";
    case BaseType::kULong: return "unsigned long";
    case BaseType::kFloat: return "float";
    case BaseType::kDouble: return "double";
  }
  return "?";
}

std::string QualType::to_string() const {
  std::string out;
  if (is_const) out += "const ";
  out += base_type_name(base);
  for (int i = 0; i < pointer_depth; ++i) out += '*';
  for (std::int64_t extent : array_extents) {
    out += '[';
    if (extent != kUnknownExtent) out += std::to_string(extent);
    out += ']';
  }
  return out;
}

}  // namespace pg::frontend
