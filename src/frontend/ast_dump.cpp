// Indented clang-style AST printer used by graph_to_dot and the tests.
#include "frontend/ast_dump.hpp"

#include <sstream>

namespace pg::frontend {
namespace {

void dump_rec(const AstNode* node, std::string& prefix, bool last,
              std::ostringstream& os, bool is_root) {
  if (!is_root) {
    os << prefix << (last ? "`-" : "|-");
  }
  os << node_kind_name(node->kind());
  if (!node->text().empty()) os << " '" << node->text() << "'";
  if (node->is(NodeKind::kIntegerLiteral)) os << " = " << node->int_value();
  if (node->is(NodeKind::kFloatingLiteral)) os << " = " << node->float_value();
  if (node->is_decl() && node->type() != QualType{})
    os << " : " << node->type().to_string();
  if (node->is(NodeKind::kDeclRefExpr) && node->referenced_decl() != nullptr)
    os << " -> " << node->referenced_decl()->text();
  os << '\n';

  const std::size_t n = node->num_children();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t grow = is_root ? 0 : 2;
    if (!is_root) prefix += last ? "  " : "| ";
    dump_rec(node->child(i), prefix, i + 1 == n, os, false);
    prefix.resize(prefix.size() - grow);
  }
}

}  // namespace

std::string dump_ast(const AstNode* root) {
  if (root == nullptr) return "<null>\n";
  std::ostringstream os;
  std::string prefix;
  dump_rec(root, prefix, true, os, true);
  return os.str();
}

}  // namespace pg::frontend
