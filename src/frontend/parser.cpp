// Recursive-descent parser producing the AST; precedence-climbing
// expressions plus the OpenMP pragma grammar.
#include "frontend/parser.hpp"

#include <array>
#include <charconv>
#include <cstdlib>

#include "frontend/lexer.hpp"

namespace pg::frontend {
namespace {

/// Binary operator precedence (C precedence levels, comma excluded).
int binary_precedence(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPipePipe: return 1;
    case TokenKind::kAmpAmp: return 2;
    case TokenKind::kPipe: return 3;
    case TokenKind::kCaret: return 4;
    case TokenKind::kAmp: return 5;
    case TokenKind::kEqualEqual:
    case TokenKind::kExclaimEqual: return 6;
    case TokenKind::kLess:
    case TokenKind::kGreater:
    case TokenKind::kLessEqual:
    case TokenKind::kGreaterEqual: return 7;
    case TokenKind::kLessLess:
    case TokenKind::kGreaterGreater: return 8;
    case TokenKind::kPlus:
    case TokenKind::kMinus: return 9;
    case TokenKind::kStar:
    case TokenKind::kSlash:
    case TokenKind::kPercent: return 10;
    default: return -1;
  }
}

std::string_view operator_spelling(TokenKind kind) {
  switch (kind) {
    case TokenKind::kPipePipe: return "||";
    case TokenKind::kAmpAmp: return "&&";
    case TokenKind::kPipe: return "|";
    case TokenKind::kCaret: return "^";
    case TokenKind::kAmp: return "&";
    case TokenKind::kEqualEqual: return "==";
    case TokenKind::kExclaimEqual: return "!=";
    case TokenKind::kLess: return "<";
    case TokenKind::kGreater: return ">";
    case TokenKind::kLessEqual: return "<=";
    case TokenKind::kGreaterEqual: return ">=";
    case TokenKind::kLessLess: return "<<";
    case TokenKind::kGreaterGreater: return ">>";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kEqual: return "=";
    case TokenKind::kPlusEqual: return "+=";
    case TokenKind::kMinusEqual: return "-=";
    case TokenKind::kStarEqual: return "*=";
    case TokenKind::kSlashEqual: return "/=";
    case TokenKind::kPercentEqual: return "%=";
    default: return "?";
  }
}

bool is_compound_assign(TokenKind kind) {
  return kind == TokenKind::kPlusEqual || kind == TokenKind::kMinusEqual ||
         kind == TokenKind::kStarEqual || kind == TokenKind::kSlashEqual ||
         kind == TokenKind::kPercentEqual;
}

}  // namespace

ParseResult parse_source(std::string_view source) {
  ParseResult result;
  result.context = std::make_unique<AstContext>();
  Lexer lexer(source, result.diagnostics);
  std::vector<Token> tokens = lexer.tokenize_all();
  if (result.diagnostics.has_errors()) return result;

  Parser parser(std::move(tokens), *result.context, result.diagnostics);
  AstNode* root = parser.parse_translation_unit();
  if (root != nullptr && !result.diagnostics.has_errors()) {
    insert_implicit_casts(*result.context, root);
    result.context->set_root(root);
  }
  return result;
}

Parser::Parser(std::vector<Token> tokens, AstContext& context, Diagnostics& diags)
    : tokens_(std::move(tokens)), context_(context), diags_(diags) {
  check(!tokens_.empty() && tokens_.back().is(TokenKind::kEof),
        "token stream must end with EOF");
}

const Token& Parser::peek(std::size_t ahead) const {
  const std::size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
  return tokens_[i];
}

const Token& Parser::advance() {
  const Token& tok = tokens_[pos_];
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return tok;
}

bool Parser::accept(TokenKind kind) {
  if (!at(kind)) return false;
  advance();
  return true;
}

const Token& Parser::expect(TokenKind kind, std::string_view what) {
  if (!at(kind)) {
    fail(std::string("expected ") + std::string(token_kind_name(kind)) +
         " while parsing " + std::string(what) + ", found " +
         std::string(token_kind_name(peek().kind)));
  }
  return advance();
}

void Parser::fail(std::string_view message) {
  diags_.error(peek().location, std::string(message));
  throw ParseError{};
}

void Parser::push_scope() { scopes_.emplace_back(); }

void Parser::pop_scope() {
  check(!scopes_.empty(), "scope underflow");
  scopes_.pop_back();
}

void Parser::declare(const std::string& name, AstNode* decl) {
  check(!scopes_.empty(), "declare outside any scope");
  scopes_.back()[name] = decl;
}

AstNode* Parser::lookup(const std::string& name) const {
  for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
    if (auto found = it->find(name); found != it->end()) return found->second;
  }
  return nullptr;
}

AstNode* Parser::make_node(NodeKind kind, const Token& tok) {
  AstNode* node = context_.create(kind, {tok.location, tok.location});
  return node;
}

// ---------------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------------

AstNode* Parser::parse_translation_unit() {
  push_scope();
  AstNode* tu = make_node(NodeKind::kTranslationUnit, peek());
  try {
    while (!at(TokenKind::kEof)) {
      accept(TokenKind::kKwStatic);
      if (!at_type_specifier())
        fail("expected a type specifier at file scope");
      QualType base = parse_type_specifier();
      tu->add_child(parse_function_or_global(base));
    }
  } catch (const ParseError&) {
    pop_scope();
    return nullptr;
  }
  pop_scope();
  return tu;
}

bool Parser::at_type_specifier() const {
  switch (peek().kind) {
    case TokenKind::kKwInt:
    case TokenKind::kKwLong:
    case TokenKind::kKwFloat:
    case TokenKind::kKwDouble:
    case TokenKind::kKwChar:
    case TokenKind::kKwVoid:
    case TokenKind::kKwUnsigned:
    case TokenKind::kKwConst:
      return true;
    default:
      return false;
  }
}

QualType Parser::parse_type_specifier() {
  QualType type;
  bool is_unsigned = false;
  bool saw_base = false;
  for (;;) {
    switch (peek().kind) {
      case TokenKind::kKwConst: advance(); type.is_const = true; continue;
      case TokenKind::kKwUnsigned: advance(); is_unsigned = true; continue;
      case TokenKind::kKwInt: advance(); type.base = BaseType::kInt; saw_base = true; continue;
      case TokenKind::kKwLong:
        advance();
        type.base = BaseType::kLong;
        saw_base = true;
        accept(TokenKind::kKwLong);  // "long long" collapses to long
        if (accept(TokenKind::kKwInt)) {}
        continue;
      case TokenKind::kKwFloat: advance(); type.base = BaseType::kFloat; saw_base = true; continue;
      case TokenKind::kKwDouble: advance(); type.base = BaseType::kDouble; saw_base = true; continue;
      case TokenKind::kKwChar: advance(); type.base = BaseType::kChar; saw_base = true; continue;
      case TokenKind::kKwVoid: advance(); type.base = BaseType::kVoid; saw_base = true; continue;
      default: break;
    }
    break;
  }
  if (is_unsigned) {
    type.base = (type.base == BaseType::kLong) ? BaseType::kULong : BaseType::kUInt;
    saw_base = true;
  }
  if (!saw_base) fail("expected a type specifier");
  while (accept(TokenKind::kStar)) ++type.pointer_depth;
  return type;
}

void Parser::parse_declarator_suffix(QualType& type) {
  while (at(TokenKind::kLBracket)) {
    advance();
    if (accept(TokenKind::kRBracket)) {
      type.array_extents.push_back(QualType::kUnknownExtent);
      continue;
    }
    AstNode* extent = parse_conditional();
    // Fold literal extents immediately; more complex extents stay unknown
    // here and are resolved later by const_eval when needed.
    if (extent->is(NodeKind::kIntegerLiteral)) {
      type.array_extents.push_back(extent->int_value());
    } else {
      type.array_extents.push_back(QualType::kUnknownExtent);
    }
    expect(TokenKind::kRBracket, "array declarator");
  }
}

AstNode* Parser::parse_function_or_global(QualType base) {
  const Token& name = expect(TokenKind::kIdentifier, "declaration name");
  if (at(TokenKind::kLParen)) {
    AstNode* fn = make_node(NodeKind::kFunctionDecl, name);
    fn->set_text(name.text);
    fn->set_type(base);
    declare(name.text, fn);
    advance();  // '('
    push_scope();
    if (!at(TokenKind::kRParen)) {
      if (at(TokenKind::kKwVoid) && peek(1).is(TokenKind::kRParen)) {
        advance();
      } else {
        do {
          fn->add_child(parse_parm_var_decl());
        } while (accept(TokenKind::kComma));
      }
    }
    expect(TokenKind::kRParen, "parameter list");
    if (accept(TokenKind::kSemi)) {  // forward declaration: keep, no body
      pop_scope();
      return fn;
    }
    fn->add_child(parse_compound_stmt());
    pop_scope();
    return fn;
  }

  // Global variable declaration (single declarator).
  AstNode* decl_stmt = make_node(NodeKind::kDeclStmt, name);
  AstNode* var = make_node(NodeKind::kVarDecl, name);
  var->set_text(name.text);
  QualType type = base;
  parse_declarator_suffix(type);
  var->set_type(std::move(type));
  declare(name.text, var);
  if (accept(TokenKind::kEqual)) var->add_child(parse_assignment());
  expect(TokenKind::kSemi, "global variable declaration");
  decl_stmt->add_child(var);
  return decl_stmt;
}

AstNode* Parser::parse_parm_var_decl() {
  QualType type = parse_type_specifier();
  const Token& name = expect(TokenKind::kIdentifier, "parameter name");
  AstNode* parm = make_node(NodeKind::kParmVarDecl, name);
  parm->set_text(name.text);
  parse_declarator_suffix(type);
  parm->set_type(std::move(type));
  declare(name.text, parm);
  return parm;
}

AstNode* Parser::parse_decl_stmt() {
  const Token& start = peek();
  QualType base = parse_type_specifier();
  AstNode* decl_stmt = make_node(NodeKind::kDeclStmt, start);
  do {
    decl_stmt->add_child(parse_var_decl(base));
  } while (accept(TokenKind::kComma));
  expect(TokenKind::kSemi, "declaration statement");
  return decl_stmt;
}

AstNode* Parser::parse_var_decl(const QualType& base_type) {
  QualType type = base_type;
  while (accept(TokenKind::kStar)) ++type.pointer_depth;
  const Token& name = expect(TokenKind::kIdentifier, "variable name");
  AstNode* var = make_node(NodeKind::kVarDecl, name);
  var->set_text(name.text);
  parse_declarator_suffix(type);
  var->set_type(std::move(type));
  declare(name.text, var);
  if (accept(TokenKind::kEqual)) {
    if (at(TokenKind::kLBrace)) {
      AstNode* init_list = make_node(NodeKind::kInitListExpr, peek());
      advance();
      if (!at(TokenKind::kRBrace)) {
        do {
          init_list->add_child(parse_assignment());
        } while (accept(TokenKind::kComma));
      }
      expect(TokenKind::kRBrace, "initializer list");
      var->add_child(init_list);
    } else {
      var->add_child(parse_assignment());
    }
  }
  return var;
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

AstNode* Parser::parse_statement() {
  switch (peek().kind) {
    case TokenKind::kPragma: {
      const Token pragma = advance();
      return parse_omp_directive(pragma);
    }
    case TokenKind::kLBrace: return parse_compound_stmt();
    case TokenKind::kKwIf: return parse_if_stmt();
    case TokenKind::kKwFor: return parse_for_stmt();
    case TokenKind::kKwWhile: return parse_while_stmt();
    case TokenKind::kKwDo: return parse_do_stmt();
    case TokenKind::kKwReturn: return parse_return_stmt();
    case TokenKind::kKwBreak: {
      AstNode* node = make_node(NodeKind::kBreakStmt, advance());
      expect(TokenKind::kSemi, "break statement");
      return node;
    }
    case TokenKind::kKwContinue: {
      AstNode* node = make_node(NodeKind::kContinueStmt, advance());
      expect(TokenKind::kSemi, "continue statement");
      return node;
    }
    case TokenKind::kSemi: return make_node(NodeKind::kNullStmt, advance());
    default: break;
  }
  if (at_type_specifier()) return parse_decl_stmt();
  AstNode* expr = parse_expression();
  expect(TokenKind::kSemi, "expression statement");
  return expr;
}

AstNode* Parser::parse_compound_stmt() {
  const Token& brace = expect(TokenKind::kLBrace, "compound statement");
  AstNode* compound = make_node(NodeKind::kCompoundStmt, brace);
  push_scope();
  while (!at(TokenKind::kRBrace) && !at(TokenKind::kEof))
    compound->add_child(parse_statement());
  expect(TokenKind::kRBrace, "compound statement");
  pop_scope();
  return compound;
}

AstNode* Parser::parse_if_stmt() {
  const Token& kw = expect(TokenKind::kKwIf, "if statement");
  AstNode* node = make_node(NodeKind::kIfStmt, kw);
  expect(TokenKind::kLParen, "if condition");
  node->add_child(parse_expression());
  expect(TokenKind::kRParen, "if condition");
  node->add_child(parse_statement());
  if (accept(TokenKind::kKwElse)) node->add_child(parse_statement());
  return node;
}

AstNode* Parser::parse_for_stmt() {
  const Token& kw = expect(TokenKind::kKwFor, "for statement");
  AstNode* node = make_node(NodeKind::kForStmt, kw);
  expect(TokenKind::kLParen, "for header");
  push_scope();  // the induction variable lives in the loop's scope

  // init: declaration, expression, or empty.
  AstNode* init = nullptr;
  if (at(TokenKind::kSemi)) {
    init = make_node(NodeKind::kNullStmt, peek());
    advance();
  } else if (at_type_specifier()) {
    init = parse_decl_stmt();  // consumes ';'
  } else {
    init = parse_expression();
    expect(TokenKind::kSemi, "for-init");
  }

  AstNode* cond = at(TokenKind::kSemi) ? make_node(NodeKind::kNullStmt, peek())
                                       : parse_expression();
  expect(TokenKind::kSemi, "for-condition");

  AstNode* inc = at(TokenKind::kRParen) ? make_node(NodeKind::kNullStmt, peek())
                                        : parse_expression();
  expect(TokenKind::kRParen, "for header");

  AstNode* body = parse_statement();

  // Paper's Figure 2 child order: [init, cond, body, inc].
  node->add_child(init);
  node->add_child(cond);
  node->add_child(body);
  node->add_child(inc);
  pop_scope();
  return node;
}

AstNode* Parser::parse_while_stmt() {
  const Token& kw = expect(TokenKind::kKwWhile, "while statement");
  AstNode* node = make_node(NodeKind::kWhileStmt, kw);
  expect(TokenKind::kLParen, "while condition");
  node->add_child(parse_expression());
  expect(TokenKind::kRParen, "while condition");
  node->add_child(parse_statement());
  return node;
}

AstNode* Parser::parse_do_stmt() {
  const Token& kw = expect(TokenKind::kKwDo, "do statement");
  AstNode* node = make_node(NodeKind::kDoStmt, kw);
  node->add_child(parse_statement());
  expect(TokenKind::kKwWhile, "do-while");
  expect(TokenKind::kLParen, "do-while condition");
  node->add_child(parse_expression());
  expect(TokenKind::kRParen, "do-while condition");
  expect(TokenKind::kSemi, "do-while");
  return node;
}

AstNode* Parser::parse_return_stmt() {
  const Token& kw = expect(TokenKind::kKwReturn, "return statement");
  AstNode* node = make_node(NodeKind::kReturnStmt, kw);
  if (!at(TokenKind::kSemi)) node->add_child(parse_expression());
  expect(TokenKind::kSemi, "return statement");
  return node;
}

// ---------------------------------------------------------------------------
// OpenMP directives
// ---------------------------------------------------------------------------

AstNode* Parser::parse_omp_directive(const Token& pragma) {
  // Re-lex the pragma body; token offsets are shifted to the pragma's
  // position so NextToken ordering stays consistent with the whole buffer.
  Diagnostics pragma_diags;
  Lexer sub_lexer(pragma.text, pragma_diags);
  std::vector<Token> body_tokens = sub_lexer.tokenize_all();
  for (Token& tok : body_tokens) {
    tok.location.offset += pragma.location.offset + 1;
    tok.location.line = pragma.location.line;
  }
  if (pragma_diags.has_errors())
    fail("malformed pragma: " + pragma_diags.summary());

  // Match the directive name sequence.
  auto word_at = [&body_tokens](std::size_t i) -> std::string_view {
    if (i >= body_tokens.size()) return {};
    const Token& t = body_tokens[i];
    return (t.is(TokenKind::kIdentifier) || t.is_keyword()) ? std::string_view(t.text)
                                                            : std::string_view{};
  };
  // Keywords inside pragmas arrive with kind kKwFor etc.; map them by text.
  auto text_at = [&body_tokens, &word_at](std::size_t i) -> std::string_view {
    if (i < body_tokens.size() && body_tokens[i].is(TokenKind::kKwFor)) return "for";
    return word_at(i);
  };

  if (text_at(0) != "omp") fail("unsupported pragma (only 'omp' is handled)");

  NodeKind directive_kind;
  std::size_t clause_start;
  if (text_at(1) == "parallel" && text_at(2) == "for") {
    directive_kind = NodeKind::kOmpParallelForDirective;
    clause_start = 3;
  } else if (text_at(1) == "target" && text_at(2) == "teams" &&
             text_at(3) == "distribute" && text_at(4) == "parallel" &&
             text_at(5) == "for") {
    directive_kind = NodeKind::kOmpTargetTeamsDistributeParallelForDirective;
    clause_start = 6;
  } else {
    fail("unsupported OpenMP directive: " + pragma.text);
  }

  AstNode* directive = context_.create(
      directive_kind, {pragma.location, pragma.location});

  // Parse clauses by temporarily switching the parser onto the pragma's
  // token stream (so clause expressions reuse the normal expression parser
  // and resolve against the current scopes).
  std::vector<Token> saved_tokens = std::move(tokens_);
  const std::size_t saved_pos = pos_;
  tokens_ = std::move(body_tokens);
  pos_ = clause_start;
  try {
    while (!at(TokenKind::kEof)) directive->add_child(parse_omp_clause(directive_kind));
  } catch (const ParseError&) {
    tokens_ = std::move(saved_tokens);
    pos_ = saved_pos;
    throw;
  }
  tokens_ = std::move(saved_tokens);
  pos_ = saved_pos;

  // The associated statement must be a loop.
  AstNode* stmt = parse_statement();
  if (!stmt->is(NodeKind::kForStmt))
    fail("OpenMP loop directive must be followed by a for statement");
  directive->add_child(stmt);
  return directive;
}

AstNode* Parser::parse_omp_clause(NodeKind directive_kind) {
  const Token name_tok = advance();
  const std::string& name = name_tok.text;
  if (name.empty()) fail("expected an OpenMP clause name");

  auto clause_with_expr = [this, &name_tok](NodeKind kind) {
    AstNode* clause = make_node(kind, name_tok);
    expect(TokenKind::kLParen, "clause argument");
    clause->add_child(parse_assignment());
    expect(TokenKind::kRParen, "clause argument");
    return clause;
  };
  auto clause_with_var_list = [this, &name_tok](NodeKind kind) {
    AstNode* clause = make_node(kind, name_tok);
    expect(TokenKind::kLParen, "clause variable list");
    do {
      clause->add_child(parse_omp_var_or_section());
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kRParen, "clause variable list");
    return clause;
  };

  if (name == "collapse") return clause_with_expr(NodeKind::kOmpCollapseClause);
  if (name == "num_threads") return clause_with_expr(NodeKind::kOmpNumThreadsClause);
  if (name == "num_teams") return clause_with_expr(NodeKind::kOmpNumTeamsClause);
  if (name == "thread_limit") return clause_with_expr(NodeKind::kOmpThreadLimitClause);
  if (name == "schedule") {
    AstNode* clause = make_node(NodeKind::kOmpScheduleClause, name_tok);
    expect(TokenKind::kLParen, "schedule clause");
    const Token& policy = advance();
    if (policy.text != "static" && policy.text != "dynamic" &&
        policy.text != "guided" && policy.text != "auto" &&
        policy.text != "runtime" && !policy.is(TokenKind::kKwStatic)) {
      fail("unknown schedule policy");
    }
    clause->set_text(policy.is(TokenKind::kKwStatic) ? "static" : policy.text);
    if (accept(TokenKind::kComma)) clause->add_child(parse_assignment());
    expect(TokenKind::kRParen, "schedule clause");
    return clause;
  }
  if (name == "map") {
    expect(TokenKind::kLParen, "map clause");
    const Token& dir = advance();
    NodeKind kind;
    if (dir.text == "to") kind = NodeKind::kOmpMapToClause;
    else if (dir.text == "from") kind = NodeKind::kOmpMapFromClause;
    else if (dir.text == "tofrom") kind = NodeKind::kOmpMapTofromClause;
    else if (dir.text == "alloc") kind = NodeKind::kOmpMapAllocClause;
    else fail("unknown map direction '" + dir.text + "'");
    AstNode* clause = make_node(kind, name_tok);
    expect(TokenKind::kColon, "map clause");
    do {
      clause->add_child(parse_omp_var_or_section());
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kRParen, "map clause");
    return clause;
  }
  if (name == "reduction") {
    AstNode* clause = make_node(NodeKind::kOmpReductionClause, name_tok);
    expect(TokenKind::kLParen, "reduction clause");
    const Token& op = advance();  // +, *, -, min, max, ...
    clause->set_text(op.text.empty() ? std::string(token_kind_name(op.kind))
                                     : op.text);
    if (clause->text().empty() || op.is(TokenKind::kPlus)) clause->set_text("+");
    if (op.is(TokenKind::kStar)) clause->set_text("*");
    if (op.is(TokenKind::kMinus)) clause->set_text("-");
    expect(TokenKind::kColon, "reduction clause");
    do {
      clause->add_child(parse_omp_var_or_section());
    } while (accept(TokenKind::kComma));
    expect(TokenKind::kRParen, "reduction clause");
    return clause;
  }
  if (name == "private") return clause_with_var_list(NodeKind::kOmpPrivateClause);
  if (name == "shared") return clause_with_var_list(NodeKind::kOmpSharedClause);
  if (name == "firstprivate")
    return clause_with_var_list(NodeKind::kOmpFirstprivateClause);

  (void)directive_kind;
  fail("unsupported OpenMP clause '" + name + "'");
}

AstNode* Parser::parse_omp_var_or_section() {
  const Token& name = expect(TokenKind::kIdentifier, "clause variable");
  AstNode* ref = make_node(NodeKind::kDeclRefExpr, name);
  ref->set_text(name.text);
  if (AstNode* decl = lookup(name.text); decl != nullptr) {
    ref->set_referenced_decl(decl);
    ref->set_type(decl->type());
  }
  if (!at(TokenKind::kLBracket)) return ref;

  // Array section: A[lo:len] ([lo:len] repeated for multi-dim sections).
  AstNode* section = make_node(NodeKind::kOmpArraySection, name);
  section->add_child(ref);
  while (accept(TokenKind::kLBracket)) {
    section->add_child(parse_assignment());  // lower bound
    expect(TokenKind::kColon, "array section");
    section->add_child(parse_assignment());  // length
    expect(TokenKind::kRBracket, "array section");
  }
  return section;
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

AstNode* Parser::parse_expression() {
  AstNode* expr = parse_assignment();
  while (at(TokenKind::kComma)) {
    const Token& comma = advance();
    AstNode* node = make_node(NodeKind::kBinaryOperator, comma);
    node->set_text(",");
    node->add_child(expr);
    node->add_child(parse_assignment());
    infer_expr_type(node);
    expr = node;
  }
  return expr;
}

AstNode* Parser::parse_assignment() {
  AstNode* lhs = parse_conditional();
  const TokenKind kind = peek().kind;
  if (kind == TokenKind::kEqual) {
    const Token& op = advance();
    AstNode* node = make_node(NodeKind::kBinaryOperator, op);
    node->set_text("=");
    node->add_child(lhs);
    node->add_child(parse_assignment());
    node->set_type(lhs->type());
    return node;
  }
  if (is_compound_assign(kind)) {
    const Token& op = advance();
    AstNode* node = make_node(NodeKind::kCompoundAssignOperator, op);
    node->set_text(std::string(operator_spelling(kind)));
    node->add_child(lhs);
    node->add_child(parse_assignment());
    node->set_type(lhs->type());
    return node;
  }
  return lhs;
}

AstNode* Parser::parse_conditional() {
  AstNode* cond = parse_binary(1);
  if (!at(TokenKind::kQuestion)) return cond;
  const Token& question = advance();
  AstNode* node = make_node(NodeKind::kConditionalOperator, question);
  node->add_child(cond);
  node->add_child(parse_assignment());
  expect(TokenKind::kColon, "conditional expression");
  node->add_child(parse_conditional());
  node->set_type(binary_result_type(node->child(1)->type(), node->child(2)->type()));
  return node;
}

AstNode* Parser::parse_binary(int min_precedence) {
  AstNode* lhs = parse_unary();
  for (;;) {
    const int prec = binary_precedence(peek().kind);
    if (prec < min_precedence) return lhs;
    const Token& op = advance();
    AstNode* rhs = parse_binary(prec + 1);
    AstNode* node = make_node(NodeKind::kBinaryOperator, op);
    node->set_text(std::string(operator_spelling(op.kind)));
    node->add_child(lhs);
    node->add_child(rhs);
    infer_expr_type(node);
    lhs = node;
  }
}

AstNode* Parser::parse_unary() {
  switch (peek().kind) {
    case TokenKind::kPlus:
    case TokenKind::kMinus:
    case TokenKind::kExclaim:
    case TokenKind::kTilde:
    case TokenKind::kStar:
    case TokenKind::kAmp: {
      const Token& op = advance();
      AstNode* node = make_node(NodeKind::kUnaryOperator, op);
      switch (op.kind) {
        case TokenKind::kPlus: node->set_text("+"); break;
        case TokenKind::kMinus: node->set_text("-"); break;
        case TokenKind::kExclaim: node->set_text("!"); break;
        case TokenKind::kTilde: node->set_text("~"); break;
        case TokenKind::kStar: node->set_text("*"); break;
        case TokenKind::kAmp: node->set_text("&"); break;
        default: break;
      }
      AstNode* operand = parse_unary();
      node->add_child(operand);
      QualType t = operand->type();
      if (op.kind == TokenKind::kStar && t.pointer_depth > 0) --t.pointer_depth;
      if (op.kind == TokenKind::kAmp) ++t.pointer_depth;
      node->set_type(std::move(t));
      return node;
    }
    case TokenKind::kPlusPlus:
    case TokenKind::kMinusMinus: {
      const Token& op = advance();
      AstNode* node = make_node(NodeKind::kUnaryOperator, op);
      node->set_text(op.is(TokenKind::kPlusPlus) ? "++pre" : "--pre");
      AstNode* operand = parse_unary();
      node->add_child(operand);
      node->set_type(operand->type());
      return node;
    }
    case TokenKind::kKwSizeof: {
      const Token& op = advance();
      AstNode* node = make_node(NodeKind::kUnaryOperator, op);
      node->set_text("sizeof");
      expect(TokenKind::kLParen, "sizeof");
      if (at_type_specifier()) {
        QualType type = parse_type_specifier();
        AstNode* lit = make_node(NodeKind::kIntegerLiteral, op);
        lit->set_int_value(static_cast<std::int64_t>(type.element_size()));
        lit->set_type({BaseType::kULong, 0, {}, false});
        node->add_child(lit);
      } else {
        node->add_child(parse_expression());
      }
      expect(TokenKind::kRParen, "sizeof");
      node->set_type({BaseType::kULong, 0, {}, false});
      return node;
    }
    default:
      return parse_postfix();
  }
}

AstNode* Parser::parse_postfix() {
  AstNode* expr = parse_primary();
  for (;;) {
    if (at(TokenKind::kLBracket)) {
      const Token& bracket = advance();
      AstNode* node = make_node(NodeKind::kArraySubscriptExpr, bracket);
      node->add_child(expr);
      node->add_child(parse_expression());
      expect(TokenKind::kRBracket, "array subscript");
      QualType t = expr->type();
      if (!t.array_extents.empty()) t.array_extents.erase(t.array_extents.begin());
      else if (t.pointer_depth > 0) --t.pointer_depth;
      node->set_type(std::move(t));
      expr = node;
    } else if (at(TokenKind::kLParen) && expr->is(NodeKind::kDeclRefExpr)) {
      const Token& paren = advance();
      AstNode* node = make_node(NodeKind::kCallExpr, paren);
      node->add_child(expr);
      if (!at(TokenKind::kRParen)) {
        do {
          node->add_child(parse_assignment());
        } while (accept(TokenKind::kComma));
      }
      expect(TokenKind::kRParen, "call expression");
      if (AstNode* callee = expr->referenced_decl(); callee != nullptr) {
        node->set_type(callee->type());
      } else {
        // Unknown functions (math builtins) are assumed to return double.
        node->set_type({BaseType::kDouble, 0, {}, false});
      }
      expr = node;
    } else if (at(TokenKind::kPlusPlus) || at(TokenKind::kMinusMinus)) {
      const Token& op = advance();
      AstNode* node = make_node(NodeKind::kUnaryOperator, op);
      node->set_text(op.is(TokenKind::kPlusPlus) ? "++post" : "--post");
      node->add_child(expr);
      node->set_type(expr->type());
      expr = node;
    } else {
      return expr;
    }
  }
}

AstNode* Parser::parse_primary() {
  switch (peek().kind) {
    case TokenKind::kIntegerLiteral: {
      const Token& tok = advance();
      AstNode* node = make_node(NodeKind::kIntegerLiteral, tok);
      node->set_text(tok.text);
      node->set_int_value(std::strtoll(tok.text.c_str(), nullptr, 0));
      node->set_type({BaseType::kInt, 0, {}, false});
      return node;
    }
    case TokenKind::kFloatingLiteral: {
      const Token& tok = advance();
      AstNode* node = make_node(NodeKind::kFloatingLiteral, tok);
      node->set_text(tok.text);
      node->set_float_value(std::strtod(tok.text.c_str(), nullptr));
      node->set_type({BaseType::kDouble, 0, {}, false});
      return node;
    }
    case TokenKind::kCharLiteral: {
      const Token& tok = advance();
      AstNode* node = make_node(NodeKind::kCharacterLiteral, tok);
      node->set_text(tok.text);
      node->set_int_value(tok.text.empty() ? 0 : tok.text[0]);
      node->set_type({BaseType::kChar, 0, {}, false});
      return node;
    }
    case TokenKind::kStringLiteral: {
      const Token& tok = advance();
      AstNode* node = make_node(NodeKind::kStringLiteral, tok);
      node->set_text(tok.text);
      node->set_type({BaseType::kChar, 1, {}, true});
      return node;
    }
    case TokenKind::kIdentifier: {
      const Token& tok = advance();
      AstNode* node = make_node(NodeKind::kDeclRefExpr, tok);
      node->set_text(tok.text);
      if (AstNode* decl = lookup(tok.text); decl != nullptr) {
        node->set_referenced_decl(decl);
        node->set_type(decl->type());
      } else {
        // Unresolved: math builtin or library symbol; treated as double().
        node->set_type({BaseType::kDouble, 0, {}, false});
      }
      return node;
    }
    case TokenKind::kLParen: {
      // Cast expression (type) expr, or parenthesised expression.
      if (peek(1).kind == TokenKind::kKwInt || peek(1).kind == TokenKind::kKwLong ||
          peek(1).kind == TokenKind::kKwFloat || peek(1).kind == TokenKind::kKwDouble ||
          peek(1).kind == TokenKind::kKwChar || peek(1).kind == TokenKind::kKwUnsigned ||
          peek(1).kind == TokenKind::kKwVoid || peek(1).kind == TokenKind::kKwConst) {
        const Token& paren = advance();
        QualType type = parse_type_specifier();
        expect(TokenKind::kRParen, "cast expression");
        AstNode* node = make_node(NodeKind::kImplicitCastExpr, paren);
        node->set_text("CStyleCast");
        node->add_child(parse_unary());
        node->set_type(std::move(type));
        return node;
      }
      const Token& paren = advance();
      AstNode* node = make_node(NodeKind::kParenExpr, paren);
      node->add_child(parse_expression());
      expect(TokenKind::kRParen, "parenthesised expression");
      node->set_type(node->child(0)->type());
      return node;
    }
    default:
      fail(std::string("unexpected token ") +
           std::string(token_kind_name(peek().kind)) + " in expression");
  }
}

QualType Parser::binary_result_type(const QualType& lhs, const QualType& rhs) {
  if (lhs.is_pointer() || lhs.is_array()) return lhs;
  if (rhs.is_pointer() || rhs.is_array()) return rhs;
  if (lhs.base == BaseType::kDouble || rhs.base == BaseType::kDouble)
    return {BaseType::kDouble, 0, {}, false};
  if (lhs.base == BaseType::kFloat || rhs.base == BaseType::kFloat)
    return {BaseType::kFloat, 0, {}, false};
  if (lhs.base == BaseType::kLong || rhs.base == BaseType::kLong ||
      lhs.base == BaseType::kULong || rhs.base == BaseType::kULong)
    return {BaseType::kLong, 0, {}, false};
  return {BaseType::kInt, 0, {}, false};
}

void Parser::infer_expr_type(AstNode* expr) {
  check(expr->num_children() == 2, "infer_expr_type expects binary node");
  const std::string& op = expr->text();
  if (op == "<" || op == ">" || op == "<=" || op == ">=" || op == "==" ||
      op == "!=" || op == "&&" || op == "||") {
    expr->set_type({BaseType::kInt, 0, {}, false});
    return;
  }
  if (op == ",") {
    expr->set_type(expr->child(1)->type());
    return;
  }
  expr->set_type(binary_result_type(expr->child(0)->type(), expr->child(1)->type()));
}

// ---------------------------------------------------------------------------
// Implicit cast insertion
// ---------------------------------------------------------------------------

namespace {

bool is_assignment_node(const AstNode* node) {
  return (node->is(NodeKind::kBinaryOperator) && node->text() == "=") ||
         node->is(NodeKind::kCompoundAssignOperator);
}

/// Should child `i` of `parent` be treated as an lvalue (no rvalue wrap)?
bool is_lvalue_position(const AstNode* parent, std::size_t i) {
  if (parent == nullptr) return false;
  if (is_assignment_node(parent) && i == 0) return true;
  if (parent->is(NodeKind::kUnaryOperator)) {
    const std::string& op = parent->text();
    if (op == "&" || op == "++pre" || op == "--pre" || op == "++post" ||
        op == "--post")
      return true;
  }
  if (parent->is(NodeKind::kCallExpr) && i == 0) return true;  // callee
  if (parent->is(NodeKind::kArraySubscriptExpr) && i == 0) return true;  // base decays
  if (parent->is_omp_clause() || parent->is(NodeKind::kOmpArraySection))
    return true;  // clause operands name variables, they don't read them
  return false;
}

void insert_casts_rec(AstContext& ctx, AstNode* node) {
  for (std::size_t i = 0; i < node->num_children(); ++i) {
    AstNode* child = node->child(i);
    insert_casts_rec(ctx, child);
    const bool readable_ref =
        child->is(NodeKind::kDeclRefExpr) && child->referenced_decl() != nullptr &&
        !child->referenced_decl()->is(NodeKind::kFunctionDecl) &&
        !child->type().is_array();
    if (readable_ref && !is_lvalue_position(node, i)) {
      AstNode* cast = ctx.create(NodeKind::kImplicitCastExpr, child->range());
      cast->set_text("LValueToRValue");
      cast->set_type(child->type());
      cast->add_child(child);
      node->set_child(i, cast);
    }
  }
}

}  // namespace

void insert_implicit_casts(AstContext& context, AstNode* root) {
  if (root != nullptr) insert_casts_rec(context, root);
}

}  // namespace pg::frontend
