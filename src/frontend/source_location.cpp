// line:column formatting for diagnostics.
#include "frontend/source_location.hpp"

namespace pg::frontend {

std::string SourceLocation::to_string() const {
  return std::to_string(line) + ":" + std::to_string(column);
}

}  // namespace pg::frontend
