// SplitMix64-seeded deterministic RNG streams.
#include "support/rng.hpp"

namespace pg {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::normal() {
  // Box-Muller; uniform() can return 0, so guard the log.
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::lognormal_jitter(double sigma) { return std::exp(sigma * normal()); }

std::size_t Rng::index(std::size_t n) {
  return n == 0 ? 0 : static_cast<std::size_t>(next() % n);
}

Rng Rng::split() {
  Rng child(0);
  child.state_ = {next(), next(), next(), next()};
  // Avoid an all-zero state (fixed point of xoshiro).
  if ((child.state_[0] | child.state_[1] | child.state_[2] | child.state_[3]) == 0)
    child.state_[0] = 0x9e3779b97f4a7c15ULL;
  return child;
}

}  // namespace pg
