// Column sizing and ASCII rendering for the bench tables.
#include "support/table.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/check.hpp"

namespace pg {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  check(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> row) {
  check(row.size() == header_.size(), "row arity must match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << " | ";
      os << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    if (c > 0) os << "-+-";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", digits, v);
  return buf;
}

std::string format_sci(double v, int digits) {
  if (v == 0.0) return "0";
  const int exponent = static_cast<int>(std::floor(std::log10(std::abs(v))));
  const double mantissa = v / std::pow(10.0, exponent);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g x 10^%d", digits, mantissa, exponent);
  return buf;
}

}  // namespace pg
