// Environment-variable knobs shared by benches and examples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace pg {

/// Reads an environment variable, returning `fallback` when unset/empty.
std::string env_string(const char* name, const std::string& fallback);

/// Reads an integer environment variable (fallback on unset or parse error).
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Reads a floating-point environment variable (fallback on unset or parse
/// error). Serves the PARAGRAPH_SERVE_CACHE_EPS knob.
double env_double(const char* name, double fallback);

/// Worker-thread override: `PARAGRAPH_THREADS` as a positive integer, or 0
/// when unset/invalid — 0 means "keep the OpenMP default". Consumers (the
/// CLI's predict/corpus subcommands) pass a positive value to
/// omp_set_num_threads before building engines or datasets.
std::int64_t env_thread_count();

/// Upper bound env_chunk_size clamps to (one fused block-diagonal batch of
/// this many graphs is already far past the fusion sweet spot).
inline constexpr std::size_t kMaxChunkSize = 4096;

/// Fused-batch chunk override: `PARAGRAPH_CHUNK` as a positive integer,
/// clamped to [1, kMaxChunkSize]. nullopt when unset, zero, negative, or
/// unparsable — i.e. "no override, let the engine pick". The single source
/// of truth for the override/adaptive split (the engine reads it once).
std::optional<std::size_t> env_chunk_override();

/// env_chunk_override() with a fallback for the no-override case. Lets
/// bench sweeps vary the InferenceEngine fusion width without recompiling.
std::size_t env_chunk_size(std::size_t fallback);

/// Engine chunk-scheduling policy. kCost (the default) balances chunks by a
/// per-graph node/edge cost model; kFixed reproduces the legacy fixed-width
/// cut (and is implied by a PARAGRAPH_CHUNK override, which pins the width).
enum class SchedPolicy { kCost, kFixed };

/// `PARAGRAPH_SCHED` = "cost" | "fixed"; unset or unrecognised -> kCost.
SchedPolicy sched_policy_from_env();

/// Human-readable name of a policy value ("cost"/"fixed").
const char* to_string(SchedPolicy policy);

/// Dataset scale selector: `PARAGRAPH_SCALE` = "smoke" | "default" | "full".
/// Controls how many sweep points the dataset generator emits; see
/// `dataset::SweepScale`.
enum class RunScale { kSmoke, kDefault, kFull };

RunScale run_scale_from_env();

/// Human-readable name of a scale value ("smoke"/"default"/"full").
const char* to_string(RunScale scale);

}  // namespace pg
