// Minimal CSV writer; each bench binary records its series next to the
// human-readable table so results can be re-plotted.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace pg {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, std::vector<std::string> header);

  /// Appends a row; must match the header arity. Cells containing commas,
  /// quotes, or newlines are quoted per RFC 4180.
  void add_row(const std::vector<std::string>& row);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

 private:
  void emit(const std::vector<std::string>& cells);

  std::ofstream out_;
  std::size_t arity_;
};

}  // namespace pg
