// Mean/stddev/RMSE/correlation over double spans.
#include "support/stats.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace pg::stats {

double mean(std::span<const double> xs) {
  check(!xs.empty(), "mean of empty span");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  check(!xs.empty(), "stddev of empty span");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min(std::span<const double> xs) {
  check(!xs.empty(), "min of empty span");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  check(!xs.empty(), "max of empty span");
  return *std::max_element(xs.begin(), xs.end());
}

double rmse(std::span<const double> actual, std::span<const double> predicted) {
  check(actual.size() == predicted.size(), "rmse: size mismatch");
  check(!actual.empty(), "rmse of empty span");
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(actual.size()));
}

double normalized_rmse(std::span<const double> actual,
                       std::span<const double> predicted) {
  const double range = max(actual) - min(actual);
  check(range > 0.0, "normalized_rmse: zero range");
  return rmse(actual, predicted) / range;
}

double relative_error(std::span<const double> actual,
                      std::span<const double> predicted) {
  check(actual.size() == predicted.size(), "relative_error: size mismatch");
  const double range = max(actual) - min(actual);
  check(range > 0.0, "relative_error: zero range");
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i)
    acc += std::abs(actual[i] - predicted[i]);
  return acc / static_cast<double>(actual.size()) / range;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  check(xs.size() == ys.size() && xs.size() >= 2, "pearson: need >= 2 pairs");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  const double denom = std::sqrt(sxx * syy);
  return denom == 0.0 ? 0.0 : sxy / denom;
}

std::size_t ten_second_bin(double runtime_us, std::size_t num_bins) {
  check(num_bins >= 1, "ten_second_bin: need at least one bin");
  constexpr double kTenSecondsUs = 10.0 * 1e6;
  const auto bin = static_cast<std::size_t>(std::max(0.0, runtime_us) / kTenSecondsUs);
  return std::min(bin, num_bins - 1);
}

}  // namespace pg::stats
