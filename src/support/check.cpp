// Assertion-failure formatting and abort.
#include "support/check.hpp"

#include <sstream>

namespace pg {

void fatal(std::string_view message, std::source_location loc) {
  std::ostringstream os;
  os << loc.file_name() << ':' << loc.line() << " [" << loc.function_name()
     << "] invariant violated: " << message;
  throw InternalError(os.str());
}

}  // namespace pg
