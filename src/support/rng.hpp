// Deterministic random number generation.
//
// All stochastic parts of the library (weight init, dataset jitter, shuffles)
// draw from `pg::Rng` so that a fixed seed reproduces a run bit-for-bit.
// The engine is xoshiro256**, seeded via splitmix64 (Blackman & Vigna).
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <numbers>
#include <vector>

namespace pg {

/// Counter-free deterministic PRNG (xoshiro256**).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises the state from a single 64-bit seed.
  void reseed(std::uint64_t seed);

  /// Returns the next raw 64-bit value.
  std::uint64_t next();

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (no cached spare: keeps state minimal).
  double normal();

  /// Normal with the given mean / stddev.
  double normal(double mean, double stddev);

  /// Lognormal such that the *multiplicative* jitter has median 1 and
  /// log-stddev `sigma`. Used for simulated measurement noise.
  double lognormal_jitter(double sigma);

  /// Picks an index in [0, n) uniformly.
  std::size_t index(std::size_t n);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = index(i + 1);
      std::swap(v[i], v[j]);
    }
  }

  /// Derives an independent child stream; used to give each dataset sample /
  /// worker thread its own generator without sequencing artifacts.
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace pg
