// Lightweight invariant checking for library internals.
//
// Failed checks throw `pg::InternalError`; they indicate a bug in the
// library (or a violated precondition), never a user-input problem —
// user-facing input errors are reported through `pg::frontend::Diagnostics`.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pg {

/// Thrown when an internal invariant is violated.
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// Aborts the current operation with an InternalError carrying the source
/// position of the failed check.
[[noreturn]] void fatal(std::string_view message,
                        std::source_location loc = std::source_location::current());

/// Verifies an invariant. No-op when `condition` holds.
inline void check(bool condition, std::string_view message,
                  std::source_location loc = std::source_location::current()) {
  if (!condition) fatal(message, loc);
}

}  // namespace pg
