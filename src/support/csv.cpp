// CSV quoting/escaping and file writing.
#include "support/csv.hpp"

#include "support/check.hpp"

namespace pg {
namespace {

bool needs_quoting(const std::string& cell) {
  return cell.find_first_of(",\"\n") != std::string::npos;
}

std::string quoted(const std::string& cell) {
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

CsvWriter::CsvWriter(const std::string& path, std::vector<std::string> header)
    : out_(path), arity_(header.size()) {
  check(arity_ > 0, "csv needs at least one column");
  emit(header);
}

void CsvWriter::add_row(const std::vector<std::string>& row) {
  check(row.size() == arity_, "csv row arity must match header");
  emit(row);
}

void CsvWriter::emit(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << (needs_quoting(cells[i]) ? quoted(cells[i]) : cells[i]);
  }
  out_ << '\n';
}

}  // namespace pg
