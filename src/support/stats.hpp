// Statistics used by the evaluation harness (paper §V-A).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace pg::stats {

double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);  // population stddev
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Root mean square error between actual and predicted (Eq. 3).
double rmse(std::span<const double> actual, std::span<const double> predicted);

/// RMSE divided by the range (max - min) of `actual`.
double normalized_rmse(std::span<const double> actual,
                       std::span<const double> predicted);

/// Mean of |actual - predicted| / range(actual) — the paper's "relative
/// error" used in Fig. 4 / Fig. 6.
double relative_error(std::span<const double> actual,
                      std::span<const double> predicted);

/// Pearson correlation coefficient (Fig. 9's "strong correlation").
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Histogram helper: index of the 10-second bin a runtime (in microseconds)
/// falls into; bins are [0,10s), [10s,20s) ... [90s,100s), [100s, inf).
std::size_t ten_second_bin(double runtime_us, std::size_t num_bins = 11);

}  // namespace pg::stats
