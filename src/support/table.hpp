// Plain-text table rendering for the benchmark harness output.
//
// Every bench binary prints its results in the same row/column layout as the
// corresponding table or figure in the paper; this helper keeps the
// formatting consistent.
#pragma once

#include <string>
#include <vector>

namespace pg {

/// A fixed-column text table. Columns are sized to the widest cell.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a data row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Renders with box-drawing rules, e.g.
  ///   Platform | RMSE (ms) | Norm-RMSE
  ///   ---------+-----------+----------
  ///   V100     |     280.0 |   9.0e-03
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (for table cells).
std::string format_double(double v, int digits = 4);

/// Formats in scientific style matching the paper, e.g. "9 x 10^-3".
std::string format_sci(double v, int digits = 1);

}  // namespace pg
