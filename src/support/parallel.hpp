// Self-gating block parallelism for the intra-batch split points.
//
// parallel_for_blocks cuts an index range [0, n) into at most
// omp_get_max_threads() contiguous blocks and runs `fn(lo, hi)` on each.
// Every split point in the predict path partitions *independent outputs*
// (disjoint node rows, disjoint destination groups, disjoint pooled
// segments), so each block computes exactly the FP operations the serial
// loop would — identical inputs, identical per-element order — and results
// are bitwise-equal to the serial pass whatever the block count.
//
// The helper stays serial (one fn(0, n) call on the current thread) when:
//   - the caller is already inside an active parallel region
//     (omp_in_parallel()) — the engine's chunk fan-out and the trainer's
//     gradient chunks own the cores there, and nested teams would
//     oversubscribe;
//   - OpenMP has one thread (omp_get_max_threads() <= 1);
//   - n < 2 * grain — too little work to amortise a fork/join.
// `grain` is the minimum per-block work in the caller's units (rows,
// groups, elements); blocks never shrink below it.
#pragma once

#include <omp.h>

#include <algorithm>
#include <cstddef>

namespace pg {

/// Number of blocks parallel_for_blocks would use for `n` work units at
/// `grain` units per block minimum; 1 means "stays serial".
inline int parallel_lanes(std::size_t n, std::size_t grain) {
  if (grain == 0) grain = 1;
  if (n < 2 * grain) return 1;
  if (omp_in_parallel()) return 1;
  const int threads = omp_get_max_threads();
  if (threads <= 1) return 1;
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(threads), n / grain));
}

/// Runs fn(lo, hi) over an even cut of [0, n) into parallel_lanes blocks.
/// fn must write only outputs indexed by its own [lo, hi) — under that
/// contract the result is bitwise-identical to fn(0, n).
template <typename Fn>
void parallel_for_blocks(std::size_t n, std::size_t grain, Fn&& fn) {
  const int lanes = parallel_lanes(n, grain);
  if (lanes <= 1) {
    fn(std::size_t{0}, n);
    return;
  }
#pragma omp parallel for schedule(static)
  for (int b = 0; b < lanes; ++b) {
    const std::size_t lo = n * static_cast<std::size_t>(b) /
                           static_cast<std::size_t>(lanes);
    const std::size_t hi = n * (static_cast<std::size_t>(b) + 1) /
                           static_cast<std::size_t>(lanes);
    fn(lo, hi);
  }
}

}  // namespace pg
