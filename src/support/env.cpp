// getenv parsing for the PARAGRAPH_* knobs.
#include "support/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace pg {

std::string env_string(const char* name, const std::string& fallback) {
  const char* value = std::getenv(name);
  return (value == nullptr || *value == '\0') ? fallback : std::string(value);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const std::string raw = env_string(name, "");
  if (raw.empty()) return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(raw.c_str(), &end, 10);
  return (end == nullptr || *end != '\0') ? fallback : parsed;
}

double env_double(const char* name, double fallback) {
  const std::string raw = env_string(name, "");
  if (raw.empty()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(raw.c_str(), &end);
  return (end == nullptr || *end != '\0') ? fallback : parsed;
}

std::int64_t env_thread_count() {
  const std::int64_t threads = env_int("PARAGRAPH_THREADS", 0);
  return threads > 0 ? threads : 0;
}

std::optional<std::size_t> env_chunk_override() {
  const std::int64_t raw = env_int("PARAGRAPH_CHUNK", 0);
  if (raw <= 0) return std::nullopt;  // unset, invalid, or nonsense
  return std::min<std::size_t>(static_cast<std::size_t>(raw), kMaxChunkSize);
}

std::size_t env_chunk_size(std::size_t fallback) {
  return env_chunk_override().value_or(fallback);
}

SchedPolicy sched_policy_from_env() {
  return env_string("PARAGRAPH_SCHED", "cost") == "fixed" ? SchedPolicy::kFixed
                                                          : SchedPolicy::kCost;
}

const char* to_string(SchedPolicy policy) {
  return policy == SchedPolicy::kFixed ? "fixed" : "cost";
}

RunScale run_scale_from_env() {
  const std::string raw = env_string("PARAGRAPH_SCALE", "default");
  if (raw == "smoke") return RunScale::kSmoke;
  if (raw == "full") return RunScale::kFull;
  return RunScale::kDefault;
}

const char* to_string(RunScale scale) {
  switch (scale) {
    case RunScale::kSmoke: return "smoke";
    case RunScale::kFull: return "full";
    case RunScale::kDefault: break;
  }
  return "default";
}

}  // namespace pg
