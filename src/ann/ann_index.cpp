// nn-descent construction + greedy graph search + brute-force reference.
// Persistence lives in ann_io.cpp; both halves share the private layout.
#include "ann/ann_index.hpp"

#include <algorithm>
#include <cstring>
#include <queue>
#include <utility>

#include "support/check.hpp"
#include "support/rng.hpp"

namespace pg::ann {
namespace {

/// Reverse-neighbor lists are capped at this many entries per node (first
/// arrivals in node order — deterministic). Hub nodes in clustered corpora
/// otherwise accumulate thousands of reverse edges and the local join goes
/// quadratic in the hub degree.
constexpr std::size_t kReverseCap = 16;

/// Scored candidate ordered by (distance, index): the one comparison rule
/// used for neighbor lists, search frontiers, and brute-force winners, so
/// FP ties always break the same way.
using Scored = std::pair<float, std::uint32_t>;

/// Per-node init stream: splitmix-style spread of (seed, node) so node
/// streams are independent and the fan-out over nodes stays deterministic.
std::uint64_t node_seed(std::uint64_t seed, std::uint64_t node) {
  return seed ^ (0x9e3779b97f4a7c15ull * (node + 1));
}

}  // namespace

float l2_distance_sq(std::span<const float> a, std::span<const float> b) {
  check(a.size() == b.size(), "l2_distance_sq: dimension mismatch");
  double acc = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const double d = static_cast<double>(a[j]) - static_cast<double>(b[j]);
    acc += d * d;
  }
  return static_cast<float>(acc);
}

std::span<const std::uint32_t> AnnIndex::neighbors(std::size_t u) const {
  check(u < size(), "AnnIndex::neighbors: node out of range");
  return std::span<const std::uint32_t>(neighbors_).subspan(u * k_, k_);
}

void AnnIndex::compute_norms() {
  norms_.resize(size());
  for (std::size_t i = 0; i < size(); ++i) {
    const auto row = embeddings_.row_span(i);
    double acc = 0.0;
    for (const float v : row) acc += static_cast<double>(v) * v;
    norms_[i] = static_cast<float>(acc);
  }
}

AnnIndex AnnIndex::build(const tensor::Matrix& embeddings,
                         const AnnConfig& config,
                         std::uint64_t checkpoint_fingerprint) {
  const std::size_t n = embeddings.rows();
  const std::size_t dim = embeddings.cols();
  check(n >= 1 && dim >= 1, "AnnIndex::build: empty corpus");

  AnnIndex index;
  index.embeddings_ = embeddings;
  index.config_ = config;
  index.fingerprint_ = checkpoint_fingerprint;
  index.k_ = std::min(config.k, n - 1);
  index.compute_norms();
  const std::size_t k = index.k_;
  if (k == 0) return index;  // single-row corpus: no graph to build

  auto dist = [&](std::size_t a, std::size_t b) {
    return l2_distance_sq(embeddings.row_span(a), embeddings.row_span(b));
  };

  // Seeded init: k distinct random neighbors per node, kept sorted by
  // (distance, index). Each node draws from its own derived stream, so the
  // result is independent of how the loop is scheduled.
  std::vector<std::uint32_t> cur(n * k);
  std::vector<float> cur_dist(n * k);
#pragma omp parallel
  {
    std::vector<Scored> scored;
#pragma omp for schedule(dynamic, 256)
    for (std::int64_t ui = 0; ui < static_cast<std::int64_t>(n); ++ui) {
      const auto u = static_cast<std::size_t>(ui);
      Rng rng(node_seed(config.seed, u));
      scored.clear();
      while (scored.size() < k) {
        const auto c = static_cast<std::uint32_t>(rng.index(n));
        if (c == u) continue;
        bool dup = false;
        for (const Scored& s : scored) dup = dup || s.second == c;
        if (dup) continue;
        scored.emplace_back(dist(u, c), c);
      }
      std::sort(scored.begin(), scored.end());
      for (std::size_t j = 0; j < k; ++j) {
        cur[u * k + j] = scored[j].second;
        cur_dist[u * k + j] = scored[j].first;
      }
    }
  }

  // Synchronous nn-descent: next[u] is the best-k of the local join over
  // the *previous* generation (neighbors, reverse neighbors, and their
  // adjacency), double-buffered — a pure function of the previous state,
  // so any OpenMP schedule produces identical bytes.
  std::vector<std::uint32_t> next(n * k);
  std::vector<float> next_dist(n * k);
  std::vector<std::uint32_t> rev(n * kReverseCap);
  std::vector<std::uint32_t> rev_len(n);
  for (std::size_t it = 0; it < config.iterations; ++it) {
    // Reverse lists from the current graph, serial in node order: node v's
    // edges land in its neighbors' lists first-come-first-kept.
    std::fill(rev_len.begin(), rev_len.end(), 0u);
    for (std::size_t v = 0; v < n; ++v) {
      for (std::size_t j = 0; j < k; ++j) {
        const std::uint32_t w = cur[v * k + j];
        if (rev_len[w] < kReverseCap)
          rev[w * kReverseCap + rev_len[w]++] = static_cast<std::uint32_t>(v);
      }
    }

    int changed = 0;
#pragma omp parallel reduction(| : changed)
    {
      std::vector<std::uint32_t> pool;
      std::vector<Scored> scored;
#pragma omp for schedule(dynamic, 64)
      for (std::int64_t ui = 0; ui < static_cast<std::int64_t>(n); ++ui) {
        const auto u = static_cast<std::size_t>(ui);
        pool.clear();
        auto push_with_adjacency = [&](std::uint32_t v) {
          pool.push_back(v);
          for (std::size_t j = 0; j < k; ++j) pool.push_back(cur[v * k + j]);
          for (std::size_t j = 0; j < rev_len[v]; ++j)
            pool.push_back(rev[v * kReverseCap + j]);
        };
        for (std::size_t j = 0; j < k; ++j)
          push_with_adjacency(cur[u * k + j]);
        for (std::size_t j = 0; j < rev_len[u]; ++j)
          push_with_adjacency(rev[u * kReverseCap + j]);
        std::sort(pool.begin(), pool.end());
        pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

        scored.clear();
        for (const std::uint32_t c : pool)
          if (c != u) scored.emplace_back(dist(u, c), c);
        std::sort(scored.begin(), scored.end());

        bool u_changed = false;
        for (std::size_t j = 0; j < k; ++j) {
          next[u * k + j] = scored[j].second;
          next_dist[u * k + j] = scored[j].first;
          u_changed = u_changed || next[u * k + j] != cur[u * k + j];
        }
        changed |= u_changed ? 1 : 0;
      }
    }
    cur.swap(next);
    cur_dist.swap(next_dist);
    if (changed == 0) break;
  }

  index.neighbors_ = std::move(cur);
  index.build_search_adjacency();
  return index;
}

void AnnIndex::build_search_adjacency() {
  const std::size_t n = size();
  adjacency_.clear();
  adj_offsets_.assign(n + 1, 0);
  if (k_ == 0) return;

  // Count both directions of every stored edge, prefix-sum into CSR
  // offsets, scatter, then sort + dedup each node's span — serial and in
  // node order throughout, so the adjacency is as deterministic as the
  // neighbor lists it derives from.
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t j = 0; j < k_; ++j) {
      ++adj_offsets_[u + 1];
      ++adj_offsets_[neighbors_[u * k_ + j] + 1];
    }
  for (std::size_t u = 0; u < n; ++u) adj_offsets_[u + 1] += adj_offsets_[u];
  adjacency_.resize(adj_offsets_[n]);
  std::vector<std::uint32_t> cursor(adj_offsets_.begin(),
                                    adj_offsets_.end() - 1);
  for (std::size_t u = 0; u < n; ++u)
    for (std::size_t j = 0; j < k_; ++j) {
      const std::uint32_t v = neighbors_[u * k_ + j];
      adjacency_[cursor[u]++] = v;
      adjacency_[cursor[v]++] = static_cast<std::uint32_t>(u);
    }
  std::size_t write = 0;
  std::uint32_t read = 0;
  for (std::size_t u = 0; u < n; ++u) {
    const auto begin = adjacency_.begin() + read;
    const auto end = adjacency_.begin() + adj_offsets_[u + 1];
    read = adj_offsets_[u + 1];
    std::sort(begin, end);
    const auto unique_end = std::unique(begin, end);
    for (auto it = begin; it != unique_end; ++it)
      adjacency_[write++] = *it;
    adj_offsets_[u + 1] = static_cast<std::uint32_t>(write);
  }
  adjacency_.resize(write);
}

std::vector<Neighbor> AnnIndex::search(std::span<const float> query,
                                       std::size_t k, std::size_t ef) const {
  check(query.size() == dim(), "AnnIndex::search: query dimension mismatch");
  const std::size_t n = size();
  if (n == 0 || k == 0) return {};
  if (k_ == 0 || n <= kBruteForceFallback) return brute_force(query, k);
  if (ef == 0) ef = std::max<std::size_t>(8 * k, 128);
  ef = std::max(ef, k);

  auto dist_to = [&](std::uint32_t c) {
    return l2_distance_sq(query, embeddings_.row_span(c));
  };

  // Frontier (min-heap: closest unexpanded candidate first) and result
  // (max-heap of the best ef so far); both ordered by (distance, index) so
  // FP ties cannot make the walk schedule-dependent.
  std::priority_queue<Scored, std::vector<Scored>, std::greater<>> frontier;
  std::priority_queue<Scored> result;
  std::vector<char> visited(n, 0);

  // Deterministic entry points spread across the corpus: graph ordinals are
  // corpus order, so a fixed stride covers distinct regions cheaply. The
  // count grows with N so large corpora keep seeding every region — a few
  // hundred extra distance evals, nothing next to the walk itself.
  const std::size_t entries =
      std::min(n, std::max<std::size_t>(16, n / 512));
  for (std::size_t s = 0; s < entries; ++s) {
    const auto e = static_cast<std::uint32_t>(s * (n - 1) / (entries - 1));
    if (visited[e]) continue;
    visited[e] = 1;
    const Scored cand{dist_to(e), e};
    frontier.push(cand);
    result.push(cand);
  }
  while (result.size() > ef) result.pop();

  while (!frontier.empty()) {
    const Scored best = frontier.top();
    frontier.pop();
    if (result.size() >= ef && result.top() < best) break;
    const auto adj = std::span<const std::uint32_t>(adjacency_)
                         .subspan(adj_offsets_[best.second],
                                  adj_offsets_[best.second + 1] -
                                      adj_offsets_[best.second]);
    for (const std::uint32_t w : adj) {
      if (visited[w]) continue;
      visited[w] = 1;
      const Scored cand{dist_to(w), w};
      if (result.size() < ef || cand < result.top()) {
        frontier.push(cand);
        result.push(cand);
        if (result.size() > ef) result.pop();
      }
    }
  }

  std::vector<Scored> sorted;
  sorted.reserve(result.size());
  while (!result.empty()) {
    sorted.push_back(result.top());
    result.pop();
  }
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() > k) sorted.resize(k);
  std::vector<Neighbor> out;
  out.reserve(sorted.size());
  for (const Scored& s : sorted) out.push_back(Neighbor{s.second, s.first});
  return out;
}

std::vector<Neighbor> AnnIndex::brute_force(std::span<const float> query,
                                            std::size_t k) const {
  check(query.size() == dim(), "AnnIndex::brute_force: dimension mismatch");
  tensor::Matrix q(1, dim());
  std::memcpy(q.row_span(0).data(), query.data(), dim() * sizeof(float));
  return brute_force_batch(q, k).front();
}

std::vector<std::vector<Neighbor>> AnnIndex::brute_force_batch(
    const tensor::Matrix& queries, std::size_t k) const {
  check(queries.cols() == dim(),
        "AnnIndex::brute_force_batch: dimension mismatch");
  const std::size_t m = queries.rows();
  const std::size_t n = size();
  const std::size_t kk = std::min(k, n);
  std::vector<std::vector<Neighbor>> out(m);
  if (m == 0 || kk == 0) return out;

  // Rank by the dot-product surrogate |x|^2 - 2 q.x (monotone in the true
  // distance, constant |q|^2 dropped): one SIMD matmul per corpus block
  // against all queries, a per-query max-heap of the best kk surrogates.
  constexpr std::size_t kBlockRows = 2048;
  std::vector<std::vector<Scored>> heaps(m);
  tensor::Matrix block, dots;
  for (std::size_t lo = 0; lo < n; lo += kBlockRows) {
    const std::size_t hi = std::min(n, lo + kBlockRows);
    const std::size_t b = hi - lo;
    block.reshape(b, dim());
    std::memcpy(block.data().data(), embeddings_.row_span(lo).data(),
                b * dim() * sizeof(float));
    dots.reshape(m, b);
    tensor::matmul_transpose_b_into(dots, queries, block);
    for (std::size_t qi = 0; qi < m; ++qi) {
      auto& heap = heaps[qi];
      const auto row = dots.row_span(qi);
      for (std::size_t j = 0; j < b; ++j) {
        const Scored cand{norms_[lo + j] - 2.0f * row[j],
                          static_cast<std::uint32_t>(lo + j)};
        if (heap.size() < kk) {
          heap.push_back(cand);
          std::push_heap(heap.begin(), heap.end());
        } else if (cand < heap.front()) {
          std::pop_heap(heap.begin(), heap.end());
          heap.back() = cand;
          std::push_heap(heap.begin(), heap.end());
        }
      }
    }
  }

  // Rescore winners with the scalar kernel so reported distances match the
  // graph-search path bit for bit, then order by (distance, index).
  for (std::size_t qi = 0; qi < m; ++qi) {
    std::vector<Scored> final_scored;
    final_scored.reserve(heaps[qi].size());
    for (const Scored& s : heaps[qi])
      final_scored.emplace_back(
          l2_distance_sq(queries.row_span(qi), embeddings_.row_span(s.second)),
          s.second);
    std::sort(final_scored.begin(), final_scored.end());
    out[qi].reserve(final_scored.size());
    for (const Scored& s : final_scored)
      out[qi].push_back(Neighbor{s.second, s.first});
  }
  return out;
}

}  // namespace pg::ann
