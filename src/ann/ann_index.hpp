// Embedding-space approximate-nearest-neighbor index (ROADMAP item 4).
//
// AnnIndex holds a corpus of pooled graph embeddings ([N x dim] rows from
// model/InferenceEngine::embed_batch) plus a k-NN neighbor graph built by
// nn-descent, and answers "which corpus rows are closest to this query
// embedding" via greedy best-first graph search — the primitive behind
// `offload_advisor --similar`, `paragraph-cli ann`, and corpus dedup.
//
// Construction is *synchronous* nn-descent: every iteration derives the
// next neighbor lists purely from the previous generation (neighbors,
// reverse neighbors, and their neighbors — the classic local join),
// double-buffered, with seeded per-node initialisation and (distance,
// index) tie-breaking everywhere. Each node's next list is a pure function
// of the previous state, so the OpenMP fan-out over nodes is free to
// schedule however it likes — the built index is byte-identical for any
// thread count (ann_test pins this), in the same spirit as the engine's
// bitwise fused-batch contract.
//
// Distances are squared L2, accumulated in double in index order by one
// scalar kernel shared by build and search. The brute-force path instead
// ranks by SIMD `matmul_transpose_b_into` dot-product blocks (|x|^2 - 2qx,
// monotone in the true distance) and then rescores its winners with the
// same scalar kernel — it is the exact reference recall is measured
// against, and the small-N fallback for corpora too small for a graph to
// pay off.
//
// Persistence (.pgann, docs/FORMAT.md): the standard versioned container
// prologue (magic, version, PayloadKind::kAnnIndex, feature-schema hash)
// plus a meta section carrying the *checkpoint fingerprint* of the model
// that produced the embeddings — loading against a retrained checkpoint is
// rejected instead of silently returning neighbors from a stale embedding
// space. Embedding and neighbor sections carry trailing FNV-1a checksums;
// readers work over any io::Source backing, including an mmap'd file.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "io/binary.hpp"  // FormatError — part of the load contract
#include "tensor/matrix.hpp"

namespace pg::ann {

/// Current .pgann container version.
inline constexpr std::uint16_t kAnnFormatVersion = 1;

/// Corpora at or below this size answer search() by brute force: the graph
/// walk's candidate bookkeeping costs more than scanning the whole corpus.
inline constexpr std::size_t kBruteForceFallback = 256;

struct AnnConfig {
  std::size_t k = 10;           ///< neighbors per node (clamped to N-1)
  std::size_t iterations = 12;  ///< nn-descent rounds (early-exit on no change)
  std::uint64_t seed = 42;      ///< deterministic neighbor-list init
};

struct Neighbor {
  std::uint32_t index = 0;  ///< corpus row ordinal
  float distance = 0.0f;    ///< squared L2 (scalar-kernel value)
};

class AnnIndex {
 public:
  AnnIndex() = default;

  /// Builds the k-NN graph over `embeddings` ([N x dim], N >= 1) by
  /// nn-descent. `checkpoint_fingerprint` stamps which model produced the
  /// embeddings (model::checkpoint_fingerprint); load() verifies it.
  /// Deterministic: (embeddings, config) alone fix every byte of the
  /// result, whatever omp_get_max_threads() says.
  static AnnIndex build(const tensor::Matrix& embeddings,
                        const AnnConfig& config,
                        std::uint64_t checkpoint_fingerprint);

  [[nodiscard]] std::size_t size() const { return embeddings_.rows(); }
  [[nodiscard]] std::size_t dim() const { return embeddings_.cols(); }
  /// Neighbors per node actually built (config k clamped to N-1).
  [[nodiscard]] std::size_t k() const { return k_; }
  [[nodiscard]] const AnnConfig& config() const { return config_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
  [[nodiscard]] const tensor::Matrix& embeddings() const { return embeddings_; }
  /// Node `u`'s neighbor list, ascending (distance, index).
  [[nodiscard]] std::span<const std::uint32_t> neighbors(std::size_t u) const;

  /// Greedy best-first graph search for the `k` corpus rows nearest to
  /// `query` (size dim()). `ef` bounds the result frontier kept during the
  /// walk (0 = max(4k, 64)); larger ef = higher recall, slower query.
  /// Falls back to brute_force at or below kBruteForceFallback rows.
  [[nodiscard]] std::vector<Neighbor> search(std::span<const float> query,
                                             std::size_t k,
                                             std::size_t ef = 0) const;

  /// Exact top-k by full scan — SIMD matmul dot-product blocks, winners
  /// rescored with the scalar distance kernel. The recall reference.
  [[nodiscard]] std::vector<Neighbor> brute_force(std::span<const float> query,
                                                  std::size_t k) const;

  /// Batched brute force over `queries` ([M x dim]); out[i] is query i's
  /// exact top-k. One matmul per (query-block, corpus-block) pair.
  [[nodiscard]] std::vector<std::vector<Neighbor>> brute_force_batch(
      const tensor::Matrix& queries, std::size_t k) const;

  // --- persistence (.pgann) ------------------------------------------------

  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;

  /// Decodes a .pgann from any Source backing. Throws io::FormatError on
  /// malformed input (bad magic/kind/version, schema mismatch, truncation,
  /// section checksum mismatch — named with its section and byte offset —
  /// out-of-range neighbor ids), and when `expected_fingerprint` is given
  /// and differs from the stored one (stale index vs a newer checkpoint).
  static AnnIndex load(io::Source& src,
                       std::optional<std::uint64_t> expected_fingerprint = {});
  static AnnIndex load(const void* data, std::size_t size,
                       std::optional<std::uint64_t> expected_fingerprint = {});
  /// mmaps `path` and decodes through a memory-backed Source.
  static AnnIndex load_file(
      const std::string& path,
      std::optional<std::uint64_t> expected_fingerprint = {});

 private:
  void compute_norms();
  /// Derives the undirected search adjacency (CSR over forward + reverse
  /// edges) from neighbors_. Pure k-NN graphs are poorly navigable —
  /// clusters are internally dense but greedy walks cannot leave them;
  /// reverse edges restore the escape routes. Derived data only: rebuilt
  /// after build() and load(), never persisted.
  void build_search_adjacency();

  tensor::Matrix embeddings_;             // [N x dim]
  std::vector<std::uint32_t> neighbors_;  // flat [N x k_]
  std::vector<std::uint32_t> adjacency_;  // undirected CSR payload
  std::vector<std::uint32_t> adj_offsets_;  // CSR offsets, size N+1
  std::vector<float> norms_;              // per-row |x|^2 (brute-force blocks)
  std::size_t k_ = 0;
  AnnConfig config_;
  std::uint64_t fingerprint_ = 0;
};

/// The shared scalar distance kernel: squared L2 accumulated in double in
/// index order — bitwise-deterministic everywhere it is called from.
[[nodiscard]] float l2_distance_sq(std::span<const float> a,
                                   std::span<const float> b);

}  // namespace pg::ann
