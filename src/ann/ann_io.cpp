// .pgann persistence for AnnIndex (layout in docs/FORMAT.md).
//
// The container reuses the standard pg::io prologue — magic, version,
// PayloadKind::kAnnIndex, feature-schema hash, section table — followed by
// three sections: meta (shape, build config, checkpoint fingerprint),
// embeddings (f32 rows + FNV-1a checksum), neighbors (u32 ids + FNV-1a
// checksum). Writers measure each section with the same put_* code that
// emits it, so table sizes and checksums cannot drift from the bytes.
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>

#include "ann/ann_index.hpp"
#include "io/format_detail.hpp"
#include "support/check.hpp"

namespace pg::ann {
namespace {

namespace d = io::detail;

/// Squared-L2 metric tag in the meta section — the only metric today, but
/// stamped so a future cosine index cannot be confused for one.
constexpr std::uint8_t kMetricSquaredL2 = 1;

template <class Sink>
void put_ann_meta(Sink& sink, const AnnIndex& index,
                  std::uint64_t fingerprint) {
  io::put_u64(sink, index.size());
  io::put_u64(sink, index.dim());
  io::put_u64(sink, index.k());
  io::put_u64(sink, index.config().seed);
  io::put_u64(sink, index.config().iterations);
  io::put_u64(sink, fingerprint);
  io::put_u8(sink, kMetricSquaredL2);
}

template <class Sink>
void put_ann_embeddings(Sink& sink, const tensor::Matrix& embeddings) {
  for (std::size_t i = 0; i < embeddings.rows(); ++i)
    for (const float v : embeddings.row_span(i)) io::put_f32(sink, v);
}

template <class Sink>
void put_ann_neighbors(Sink& sink, std::span<const std::uint32_t> neighbors) {
  for (const std::uint32_t v : neighbors) io::put_u32(sink, v);
}

[[noreturn]] void throw_checksum_mismatch(const char* section,
                                          std::uint64_t offset) {
  throw io::FormatError(std::string("corrupt ann index: checksum mismatch (") +
                        section + " section at byte offset " +
                        std::to_string(offset) +
                        " holds altered payload bytes)");
}

}  // namespace

void AnnIndex::save(std::ostream& os) const {
  check(size() >= 1, "AnnIndex::save: empty index");

  io::CountingSink meta_size;
  put_ann_meta(meta_size, *this, fingerprint_);
  d::FnvCountingSink emb;
  put_ann_embeddings(emb, embeddings_);
  d::FnvCountingSink nbr;
  put_ann_neighbors(nbr, neighbors_);

  io::StreamSink sink{os};
  sink.bytes(d::kMagic, sizeof d::kMagic);
  io::put_u16(sink, kAnnFormatVersion);
  io::put_u16(sink, static_cast<std::uint16_t>(io::PayloadKind::kAnnIndex));
  io::put_u64(sink, io::feature_schema_hash());
  io::put_u32(sink, 3);  // section count
  const d::SectionEntry table[] = {
      {d::kSecAnnMeta, meta_size.count},
      {d::kSecAnnEmbeddings, emb.count + 8},  // payload + trailing checksum
      {d::kSecAnnNeighbors, nbr.count + 8},
  };
  for (const d::SectionEntry& e : table) {
    io::put_u32(sink, e.id);
    io::put_u64(sink, e.size);
  }
  put_ann_meta(sink, *this, fingerprint_);
  put_ann_embeddings(sink, embeddings_);
  io::put_u64(sink, emb.hash);
  put_ann_neighbors(sink, neighbors_);
  io::put_u64(sink, nbr.hash);
  if (!os) throw io::FormatError("stream write failure while saving ann index");
}

void AnnIndex::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw io::FormatError("cannot open for writing: " + path);
  save(os);
}

AnnIndex AnnIndex::load(io::Source& src,
                        std::optional<std::uint64_t> expected_fingerprint) {
  const d::Prologue prologue =
      d::get_prologue(src, io::PayloadKind::kAnnIndex, kAnnFormatVersion);

  AnnIndex index;
  std::uint64_t count = 0;
  std::uint64_t dim = 0;
  std::uint64_t k = 0;
  bool have_meta = false;
  bool have_embeddings = false;
  bool have_neighbors = false;
  for (const d::SectionEntry& entry : prologue.table) {
    const std::uint64_t section_offset = src.consumed();
    src.push_budget(entry.size);
    switch (entry.id) {
      case d::kSecAnnMeta: {
        count = io::get_count(src, "ann corpus count");
        dim = io::get_count(src, "ann embedding dim");
        k = io::get_count(src, "ann neighbor count");
        if (count == 0 || dim == 0)
          throw io::FormatError("corrupt ann index: empty corpus shape");
        if (k >= count)
          throw io::FormatError(
              "corrupt ann index: neighbor count not below corpus count");
        index.config_.k = static_cast<std::size_t>(k);
        index.config_.seed = io::get_u64(src);
        index.config_.iterations =
            static_cast<std::size_t>(io::get_u64(src));
        index.fingerprint_ = io::get_u64(src);
        if (io::get_u8(src) != kMetricSquaredL2)
          throw io::FormatError("corrupt ann index: unknown distance metric");
        if (expected_fingerprint &&
            *expected_fingerprint != index.fingerprint_)
          throw io::FormatError(
              "stale ann index: built from a different model checkpoint "
              "(fingerprint mismatch — rebuild with `paragraph-cli ann "
              "build`)");
        have_meta = true;
        break;
      }
      case d::kSecAnnEmbeddings: {
        if (!have_meta)
          throw io::FormatError(
              "corrupt ann index: embeddings section precedes meta");
        if (count * dim * sizeof(float) > src.remaining_budget())
          throw io::FormatError(
              "corrupt ann index: embeddings larger than their section");
        index.embeddings_.reshape(static_cast<std::size_t>(count),
                                  static_cast<std::size_t>(dim));
        // Hash the payload exactly as stored: re-serialise each decoded
        // value's LE bytes through the checksum sink.
        d::FnvCountingSink hashed;
        for (std::uint64_t i = 0; i < count; ++i) {
          const auto row = index.embeddings_.row_span(i);
          for (std::uint64_t j = 0; j < dim; ++j) {
            row[j] = io::get_f32(src);
            io::put_f32(hashed, row[j]);
          }
        }
        if (io::get_u64(src) != hashed.hash)
          throw_checksum_mismatch("'embeddings'", section_offset);
        have_embeddings = true;
        break;
      }
      case d::kSecAnnNeighbors: {
        if (!have_meta)
          throw io::FormatError(
              "corrupt ann index: neighbors section precedes meta");
        if (count * k * sizeof(std::uint32_t) > src.remaining_budget())
          throw io::FormatError(
              "corrupt ann index: neighbors larger than their section");
        index.neighbors_.resize(static_cast<std::size_t>(count * k));
        d::FnvCountingSink hashed;
        for (std::uint64_t i = 0; i < count * k; ++i) {
          const std::uint32_t v = io::get_u32(src);
          if (v >= count)
            throw io::FormatError(
                "corrupt ann index: neighbor id out of range");
          index.neighbors_[i] = v;
          io::put_u32(hashed, v);
        }
        if (io::get_u64(src) != hashed.hash)
          throw_checksum_mismatch("'neighbors'", section_offset);
        have_neighbors = true;
        break;
      }
      default:
        src.skip(entry.size);  // forward-compatible: unknown section
    }
    src.pop_budget();
  }
  if (!have_meta || !have_embeddings || !have_neighbors)
    throw io::FormatError(
        "corrupt ann index: missing meta/embeddings/neighbors section");

  index.k_ = static_cast<std::size_t>(k);
  index.compute_norms();
  index.build_search_adjacency();
  return index;
}

AnnIndex AnnIndex::load(const void* data, std::size_t size,
                        std::optional<std::uint64_t> expected_fingerprint) {
  io::Source src(data, size);
  return load(src, expected_fingerprint);
}

AnnIndex AnnIndex::load_file(const std::string& path,
                             std::optional<std::uint64_t> expected_fingerprint) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) throw io::FormatError("cannot open for reading: " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw io::FormatError("cannot stat: " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw io::FormatError("truncated file: unexpected end of data");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (map == MAP_FAILED) throw io::FormatError("cannot mmap: " + path);
  struct Unmapper {
    void* p;
    std::size_t n;
    ~Unmapper() { ::munmap(p, n); }
  } guard{map, size};
  return load(map, size, expected_fingerprint);
}

}  // namespace pg::ann
