// CSR/SoA construction for one relation: local numbering over incident
// nodes, destination grouping, and the flat per-edge arrays consumed by the
// RGCN/RGAT convolutions.
#include "nn/relational_graph.hpp"

#include <algorithm>

namespace pg::nn {

RelationEdges RelationEdges::from_edges(std::vector<RelEdge> edges) {
  RelationEdges out;

  // Local numbering over incident nodes.
  out.nodes.reserve(edges.size() * 2);
  for (const RelEdge& e : edges) {
    out.nodes.push_back(e.src);
    out.nodes.push_back(e.dst);
  }
  std::sort(out.nodes.begin(), out.nodes.end());
  out.nodes.erase(std::unique(out.nodes.begin(), out.nodes.end()), out.nodes.end());
  auto local_of = [&out](std::uint32_t global) {
    return static_cast<std::uint32_t>(
        std::lower_bound(out.nodes.begin(), out.nodes.end(), global) -
        out.nodes.begin());
  };

  // Group by local destination (stable: ties keep input order) via a sorted
  // permutation, then shred the records into the flat SoA arrays.
  std::vector<std::uint32_t> dst_local(edges.size());
  std::vector<std::uint32_t> order(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    dst_local[i] = local_of(edges[i].dst);
    order[i] = static_cast<std::uint32_t>(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&dst_local](std::uint32_t a, std::uint32_t b) {
                     return dst_local[a] < dst_local[b];
                   });
  out.src_local.reserve(edges.size());
  out.gate.reserve(edges.size());
  std::uint32_t prev_dst = 0;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const RelEdge& e = edges[order[i]];
    const std::uint32_t dst = dst_local[order[i]];
    if (i == 0 || dst != prev_dst) {
      out.group_offsets.push_back(static_cast<std::uint32_t>(i));
      out.group_dst.push_back(dst);
    }
    prev_dst = dst;
    out.src_local.push_back(local_of(e.src));
    out.gate.push_back(e.gate);
  }
  out.group_offsets.push_back(static_cast<std::uint32_t>(edges.size()));
  return out;
}

std::vector<RelEdge> RelationEdges::to_edges() const {
  std::vector<RelEdge> out;
  out.reserve(num_edges());
  for (std::size_t g = 0; g < num_groups(); ++g) {
    const std::uint32_t dst = nodes[group_dst[g]];
    for (std::uint32_t e = group_offsets[g]; e < group_offsets[g + 1]; ++e)
      out.push_back({nodes[src_local[e]], dst, gate[e]});
  }
  return out;
}

}  // namespace pg::nn
