// Per-relation edge-list grouping and degree normalisation consumed by the
// RGCN/RGAT convolutions.
#include "nn/relational_graph.hpp"

#include <algorithm>

namespace pg::nn {

RelationEdges RelationEdges::from_edges(std::vector<RelEdge> edges) {
  RelationEdges out;

  // Local numbering over incident nodes.
  out.nodes.reserve(edges.size() * 2);
  for (const RelEdge& e : edges) {
    out.nodes.push_back(e.src);
    out.nodes.push_back(e.dst);
  }
  std::sort(out.nodes.begin(), out.nodes.end());
  out.nodes.erase(std::unique(out.nodes.begin(), out.nodes.end()), out.nodes.end());
  auto local_of = [&out](std::uint32_t global) {
    return static_cast<std::uint32_t>(
        std::lower_bound(out.nodes.begin(), out.nodes.end(), global) -
        out.nodes.begin());
  };
  for (RelEdge& e : edges) {
    e.src_local = local_of(e.src);
    e.dst_local = local_of(e.dst);
  }

  std::stable_sort(edges.begin(), edges.end(), [](const RelEdge& a, const RelEdge& b) {
    return a.dst_local < b.dst_local;
  });
  out.edges = std::move(edges);
  for (std::size_t i = 0; i < out.edges.size(); ++i) {
    if (i == 0 || out.edges[i].dst_local != out.edges[i - 1].dst_local) {
      out.group_offsets.push_back(static_cast<std::uint32_t>(i));
      out.group_dst.push_back(out.edges[i].dst_local);
    }
  }
  out.group_offsets.push_back(static_cast<std::uint32_t>(out.edges.size()));
  return out;
}

}  // namespace pg::nn
