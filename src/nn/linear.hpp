// Fully-connected layer with explicit (thread-safe) backward.
//
// The layer is immutable during training passes: forward takes the input,
// backward takes the cached input and a gradient span. This lets the
// trainer run many graphs in parallel, each with its own gradient buffer.
#pragma once

#include <span>
#include <vector>

#include "support/rng.hpp"
#include "tensor/init.hpp"
#include "tensor/matrix.hpp"
#include "tensor/workspace.hpp"

namespace pg::nn {

class Linear {
 public:
  Linear(std::size_t in_features, std::size_t out_features, pg::Rng& rng);

  /// y = x W + b, with x: [n x in].
  [[nodiscard]] tensor::Matrix forward(const tensor::Matrix& x) const;

  /// Allocation-free forward: y lives in `ws` until its next reset().
  const tensor::Matrix& forward(const tensor::Matrix& x,
                                tensor::Workspace& ws) const;

  /// Given dL/dy and the forward input x, accumulates dW into grads[0] and
  /// db into grads[1], returns dL/dx. `grads` must have `num_params()`
  /// matrices shaped like `parameters()`.
  tensor::Matrix backward(const tensor::Matrix& x, const tensor::Matrix& dy,
                          std::span<tensor::Matrix> grads) const;

  /// Allocation-free backward: dL/dx lives in `ws` until its next reset().
  tensor::Matrix& backward(const tensor::Matrix& x, const tensor::Matrix& dy,
                           std::span<tensor::Matrix> grads,
                           tensor::Workspace& ws) const;

  [[nodiscard]] static constexpr std::size_t num_params() { return 2; }
  [[nodiscard]] std::vector<tensor::Matrix*> parameters();
  [[nodiscard]] std::vector<const tensor::Matrix*> parameters() const;

  [[nodiscard]] std::size_t in_features() const { return w_.rows(); }
  [[nodiscard]] std::size_t out_features() const { return w_.cols(); }
  [[nodiscard]] const tensor::Matrix& weight() const { return w_; }
  [[nodiscard]] const tensor::Matrix& bias() const { return b_; }

 private:
  tensor::Matrix w_;  // [in x out]
  tensor::Matrix b_;  // [1 x out]
};

}  // namespace pg::nn
