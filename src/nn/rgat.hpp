// Relational Graph Attention convolution (Busbridge et al. 2019, the
// within-relation "WIRGAT" variant the paper adapts: attention logits are
// computed per edge type and normalised over the incoming edges of the same
// type).
//
// For relation r with projection W_r and attention vectors a_src/a_dst:
//   g_i   = W_r h_i
//   e_uv  = LeakyReLU(a_src . g_u + a_dst . g_v)           (per edge u->v)
//   alpha = softmax over {e_uv : u in N_r(v)}
//   m_v  += sum_u alpha_uv * gate_uv * g_u
// Output: ReLU(sum_r m_v + W_self h_v + b).
//
// `gate` carries the ParaGraph edge weight (MinMax-scaled) for Child edges
// and is 1 elsewhere — the graph-side realisation of W in Eq. (2).
//
// All buffers — the output, the cached activations, and every scratch
// matrix — are borrowed from the caller's Workspace, so a warmed-up
// forward/backward pair performs zero heap allocations.
#pragma once

#include <span>
#include <vector>

#include "nn/relational_graph.hpp"
#include "support/rng.hpp"
#include "tensor/matrix.hpp"
#include "tensor/workspace.hpp"

namespace pg::nn {

class RgatConv {
 public:
  RgatConv(std::size_t in_features, std::size_t out_features,
           std::size_t num_relations, pg::Rng& rng, bool apply_relu = true,
           float leaky_slope = 0.2f);

  /// Everything the backward pass needs from one forward call. All members
  /// point into the Workspace the forward was given (plus the borrowed
  /// input), so a Cache is valid until that workspace's next reset().
  /// Per-relation data is concatenated: relation r's block starts at the
  /// running sum of earlier relations' edge / active-node counts.
  struct Cache {
    const tensor::Matrix* x = nullptr;  // borrowed input [N x in]
    tensor::Matrix* g = nullptr;        // [sum_r |nodes_r| x out] projections
    tensor::Matrix* raw = nullptr;      // [1 x total_edges] pre-LeakyReLU logits
    tensor::Matrix* alpha = nullptr;    // [1 x total_edges] attention weights
    tensor::Matrix* pre = nullptr;      // pre-activation output [N x out]
  };

  /// Output lives in `ws` until its next reset().
  const tensor::Matrix& forward(const tensor::Matrix& x,
                                const RelationalGraph& graph, Cache& cache,
                                tensor::Workspace& ws) const;

  /// Accumulates parameter gradients into `grads` (layout = parameters())
  /// and returns dL/dx (borrowed from `ws`). The cache's workspace must not
  /// have been reset since the matching forward.
  tensor::Matrix& backward(const tensor::Matrix& dy, const RelationalGraph& graph,
                           const Cache& cache, std::span<tensor::Matrix> grads,
                           tensor::Workspace& ws) const;

  /// Parameter layout: for each relation [W_r, a_src_r, a_dst_r], then
  /// W_self, b.
  [[nodiscard]] std::vector<tensor::Matrix*> parameters();
  [[nodiscard]] std::vector<const tensor::Matrix*> parameters() const;
  [[nodiscard]] std::size_t num_params() const { return 3 * num_relations_ + 2; }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }
  [[nodiscard]] std::size_t num_relations() const { return num_relations_; }

 private:
  std::size_t in_;
  std::size_t out_;
  std::size_t num_relations_;
  bool apply_relu_;
  float leaky_slope_;
  std::vector<tensor::Matrix> w_rel_;   // [in x out] each
  std::vector<tensor::Matrix> a_src_;   // [1 x out] each
  std::vector<tensor::Matrix> a_dst_;   // [1 x out] each
  tensor::Matrix w_self_;               // [in x out]
  tensor::Matrix b_;                    // [1 x out]
};

}  // namespace pg::nn
