// MinMaxScaler fit/transform/inverse for edge weights and targets.
#include "nn/scaler.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace pg::nn {

void MinMaxScaler::fit(std::span<const double> values) {
  check(!values.empty(), "MinMaxScaler::fit on empty data");
  const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
  fit_bounds(*lo, *hi);
}

void MinMaxScaler::fit_bounds(double min_value, double max_value) {
  check(min_value <= max_value, "MinMaxScaler: min > max");
  min_ = min_value;
  max_ = max_value;
  fitted_ = true;
}

double MinMaxScaler::transform(double v) const {
  check(fitted_, "MinMaxScaler used before fit");
  const double r = range();
  return r == 0.0 ? 0.0 : (v - min_) / r;
}

double MinMaxScaler::inverse(double scaled) const {
  check(fitted_, "MinMaxScaler used before fit");
  return min_ + scaled * range();
}

}  // namespace pg::nn
