// Dense layer forward/backward; backward is re-entrant so trainer threads
// can share one layer with private gradient buffers.
#include "nn/linear.hpp"

#include "support/check.hpp"
#include "tensor/simd.hpp"

namespace pg::nn {

Linear::Linear(std::size_t in_features, std::size_t out_features, pg::Rng& rng)
    : w_(in_features, out_features), b_(1, out_features) {
  tensor::glorot_uniform(w_, rng);
}

tensor::Matrix Linear::forward(const tensor::Matrix& x) const {
  check(x.cols() == w_.rows(), "Linear::forward: feature dim mismatch");
  tensor::Matrix y = tensor::matmul(x, w_);
  for (std::size_t i = 0; i < y.rows(); ++i) {
    auto row = y.row_span(i);
    auto bias = b_.row_span(0);
    for (std::size_t j = 0; j < row.size(); ++j) row[j] += bias[j];
  }
  return y;
}

const tensor::Matrix& Linear::forward(const tensor::Matrix& x,
                                      tensor::Workspace& ws) const {
  check(x.cols() == w_.rows(), "Linear::forward: feature dim mismatch");
  tensor::Matrix& y = ws.acquire_uninit(x.rows(), w_.cols());
  tensor::matmul_into(y, x, w_);
  tensor::simd::kernels().add_bias_rows(y.data().data(), b_.data().data(),
                                        y.rows(), y.cols());
  return y;
}

tensor::Matrix Linear::backward(const tensor::Matrix& x, const tensor::Matrix& dy,
                                std::span<tensor::Matrix> grads) const {
  check(grads.size() == num_params(), "Linear::backward: bad grad span");
  check(grads[0].same_shape(w_) && grads[1].same_shape(b_),
        "Linear::backward: grad shapes mismatch");
  tensor::matmul_transpose_a_acc(grads[0], x, dy);
  tensor::column_sums_acc(grads[1], dy);
  return tensor::matmul_transpose_b(dy, w_);
}

tensor::Matrix& Linear::backward(const tensor::Matrix& x, const tensor::Matrix& dy,
                                 std::span<tensor::Matrix> grads,
                                 tensor::Workspace& ws) const {
  check(grads.size() == num_params(), "Linear::backward: bad grad span");
  check(grads[0].same_shape(w_) && grads[1].same_shape(b_),
        "Linear::backward: grad shapes mismatch");
  tensor::matmul_transpose_a_acc(grads[0], x, dy);
  tensor::column_sums_acc(grads[1], dy);
  tensor::Matrix& dx = ws.acquire_uninit(dy.rows(), w_.rows());
  tensor::matmul_transpose_b_into(dx, dy, w_);
  return dx;
}

std::vector<tensor::Matrix*> Linear::parameters() { return {&w_, &b_}; }

std::vector<const tensor::Matrix*> Linear::parameters() const {
  return {&w_, &b_};
}

}  // namespace pg::nn
