// Multi-layer perceptron: stacked Linear + ReLU (identity on the output
// layer). Used for the COMPOFF baseline and anywhere a plain regressor is
// needed.
#pragma once

#include <span>
#include <vector>

#include "nn/linear.hpp"

namespace pg::nn {

class Mlp {
 public:
  /// `layer_sizes` = {in, hidden..., out}; at least {in, out}.
  Mlp(const std::vector<std::size_t>& layer_sizes, pg::Rng& rng);

  struct Cache {
    std::vector<tensor::Matrix> inputs;  // input of each layer (pre-matmul)
    std::vector<tensor::Matrix> pre;     // pre-activation output of each layer
  };

  [[nodiscard]] tensor::Matrix forward(const tensor::Matrix& x, Cache& cache) const;
  [[nodiscard]] tensor::Matrix forward(const tensor::Matrix& x) const;

  /// Allocation-free inference (no cache): the result lives in `ws` until
  /// its next reset().
  const tensor::Matrix& forward(const tensor::Matrix& x,
                                tensor::Workspace& ws) const;

  /// Accumulates into `grads` (layout = parameters()) and returns dL/dx.
  tensor::Matrix backward(const tensor::Matrix& dy, const Cache& cache,
                          std::span<tensor::Matrix> grads) const;

  [[nodiscard]] std::vector<tensor::Matrix*> parameters();
  [[nodiscard]] std::vector<const tensor::Matrix*> parameters() const;
  [[nodiscard]] std::size_t num_params() const { return 2 * layers_.size(); }
  [[nodiscard]] std::size_t num_layers() const { return layers_.size(); }

 private:
  std::vector<Linear> layers_;
};

}  // namespace pg::nn
