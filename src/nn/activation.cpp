// ReLU / LeakyReLU / softmax forward and backward kernels.
#include "nn/activation.hpp"

#include "support/check.hpp"

namespace pg::nn {

tensor::Matrix relu(const tensor::Matrix& x) {
  tensor::Matrix y = x;
  for (float& v : y.data())
    if (v < 0.0f) v = 0.0f;
  return y;
}

void relu_into(tensor::Matrix& y, const tensor::Matrix& x) {
  check(y.same_shape(x), "relu_into: shape mismatch");
  const float* __restrict__ xs = x.data().data();
  float* __restrict__ ys = y.data().data();
  const std::size_t n = y.size();
  for (std::size_t i = 0; i < n; ++i) ys[i] = xs[i] > 0.0f ? xs[i] : 0.0f;
}

tensor::Matrix relu_backward(const tensor::Matrix& dy, const tensor::Matrix& x) {
  tensor::Matrix dx = dy;
  relu_backward_into(dx, dy, x);
  return dx;
}

void relu_backward_into(tensor::Matrix& dx, const tensor::Matrix& dy,
                        const tensor::Matrix& x) {
  check(dy.same_shape(x), "relu_backward: shape mismatch");
  check(dx.same_shape(dy), "relu_backward_into: destination shape mismatch");
  const float* __restrict__ xs = x.data().data();
  const float* __restrict__ dys = dy.data().data();
  float* __restrict__ ds = dx.data().data();
  const std::size_t n = dx.size();
  for (std::size_t i = 0; i < n; ++i) ds[i] = xs[i] > 0.0f ? dys[i] : 0.0f;
}

}  // namespace pg::nn
