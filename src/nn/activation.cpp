// ReLU / LeakyReLU / softmax forward and backward kernels.
#include "nn/activation.hpp"

#include "support/check.hpp"

namespace pg::nn {

tensor::Matrix relu(const tensor::Matrix& x) {
  tensor::Matrix y = x;
  for (float& v : y.data())
    if (v < 0.0f) v = 0.0f;
  return y;
}

tensor::Matrix relu_backward(const tensor::Matrix& dy, const tensor::Matrix& x) {
  check(dy.same_shape(x), "relu_backward: shape mismatch");
  tensor::Matrix dx = dy;
  auto xs = x.data();
  auto ds = dx.data();
  for (std::size_t i = 0; i < ds.size(); ++i)
    if (xs[i] <= 0.0f) ds[i] = 0.0f;
  return dx;
}

float leaky_relu(float x, float slope) { return x > 0.0f ? x : slope * x; }

float leaky_relu_grad(float x, float slope) { return x > 0.0f ? 1.0f : slope; }

}  // namespace pg::nn
