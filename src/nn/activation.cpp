// ReLU / LeakyReLU / softmax forward and backward kernels. The elementwise
// `_into` bodies run on the dispatched SIMD layer (lane-parallel blends,
// bitwise-identical to the scalar path at every level).
#include "nn/activation.hpp"

#include "support/check.hpp"
#include "support/parallel.hpp"
#include "tensor/simd.hpp"

namespace pg::nn {
namespace {

/// Elementwise split grain: ReLU is ~1 op per float, so blocks need to be
/// large before a fork/join pays for itself. Elementwise kernels compute
/// each output from its own input alone, so any cut is bitwise-identical
/// to the serial pass.
constexpr std::size_t kElementGrain = std::size_t{1} << 16;

}  // namespace

tensor::Matrix relu(const tensor::Matrix& x) {
  tensor::Matrix y = x;
  for (float& v : y.data())
    if (v < 0.0f) v = 0.0f;
  return y;
}

void relu_into(tensor::Matrix& y, const tensor::Matrix& x) {
  check(y.same_shape(x), "relu_into: shape mismatch");
  parallel_for_blocks(y.size(), kElementGrain, [&](std::size_t lo,
                                                   std::size_t hi) {
    tensor::simd::kernels().relu(y.data().data() + lo, x.data().data() + lo,
                                 hi - lo);
  });
}

tensor::Matrix relu_backward(const tensor::Matrix& dy, const tensor::Matrix& x) {
  tensor::Matrix dx = dy;
  relu_backward_into(dx, dy, x);
  return dx;
}

void relu_backward_into(tensor::Matrix& dx, const tensor::Matrix& dy,
                        const tensor::Matrix& x) {
  check(dy.same_shape(x), "relu_backward: shape mismatch");
  check(dx.same_shape(dy), "relu_backward_into: destination shape mismatch");
  tensor::simd::kernels().relu_backward(dx.data().data(), dy.data().data(),
                                        x.data().data(), dx.size());
}

}  // namespace pg::nn
