// ReLU / LeakyReLU / softmax forward and backward kernels.
#include "nn/activation.hpp"

#include "support/check.hpp"

namespace pg::nn {

tensor::Matrix relu(const tensor::Matrix& x) {
  tensor::Matrix y = x;
  for (float& v : y.data())
    if (v < 0.0f) v = 0.0f;
  return y;
}

void relu_into(tensor::Matrix& y, const tensor::Matrix& x) {
  check(y.same_shape(x), "relu_into: shape mismatch");
  auto xs = x.data();
  auto ys = y.data();
  for (std::size_t i = 0; i < ys.size(); ++i)
    ys[i] = xs[i] > 0.0f ? xs[i] : 0.0f;
}

tensor::Matrix relu_backward(const tensor::Matrix& dy, const tensor::Matrix& x) {
  tensor::Matrix dx = dy;
  relu_backward_into(dx, dy, x);
  return dx;
}

void relu_backward_into(tensor::Matrix& dx, const tensor::Matrix& dy,
                        const tensor::Matrix& x) {
  check(dy.same_shape(x), "relu_backward: shape mismatch");
  check(dx.same_shape(dy), "relu_backward_into: destination shape mismatch");
  auto xs = x.data();
  auto dys = dy.data();
  auto ds = dx.data();
  for (std::size_t i = 0; i < ds.size(); ++i)
    ds[i] = xs[i] > 0.0f ? dys[i] : 0.0f;
}

float leaky_relu(float x, float slope) { return x > 0.0f ? x : slope * x; }

float leaky_relu_grad(float x, float slope) { return x > 0.0f ? 1.0f : slope; }

}  // namespace pg::nn
