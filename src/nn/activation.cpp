// ReLU / LeakyReLU / softmax forward and backward kernels. The elementwise
// `_into` bodies run on the dispatched SIMD layer (lane-parallel blends,
// bitwise-identical to the scalar path at every level).
#include "nn/activation.hpp"

#include "support/check.hpp"
#include "tensor/simd.hpp"

namespace pg::nn {

tensor::Matrix relu(const tensor::Matrix& x) {
  tensor::Matrix y = x;
  for (float& v : y.data())
    if (v < 0.0f) v = 0.0f;
  return y;
}

void relu_into(tensor::Matrix& y, const tensor::Matrix& x) {
  check(y.same_shape(x), "relu_into: shape mismatch");
  tensor::simd::kernels().relu(y.data().data(), x.data().data(), y.size());
}

tensor::Matrix relu_backward(const tensor::Matrix& dy, const tensor::Matrix& x) {
  tensor::Matrix dx = dy;
  relu_backward_into(dx, dy, x);
  return dx;
}

void relu_backward_into(tensor::Matrix& dx, const tensor::Matrix& dy,
                        const tensor::Matrix& x) {
  check(dy.same_shape(x), "relu_backward: shape mismatch");
  check(dx.same_shape(dy), "relu_backward_into: destination shape mismatch");
  tensor::simd::kernels().relu_backward(dx.data().data(), dy.data().data(),
                                        x.data().data(), dx.size());
}

}  // namespace pg::nn
