// Adam optimiser (Kingma & Ba) — the paper trains with Adam + MSE.
#pragma once

#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace pg::nn {

struct AdamConfig {
  double learning_rate = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double epsilon = 1e-8;
  double weight_decay = 0.0;
};

class Adam {
 public:
  Adam(std::vector<tensor::Matrix*> parameters, AdamConfig config = {});

  /// Applies one update from `grads` (same order/shapes as the parameters);
  /// does NOT zero the gradients.
  void step(std::span<tensor::Matrix> grads);

  /// Fresh, zeroed gradient buffer matching the parameter shapes.
  [[nodiscard]] std::vector<tensor::Matrix> make_gradient_buffer() const;

  [[nodiscard]] const AdamConfig& config() const { return config_; }
  [[nodiscard]] std::size_t step_count() const { return step_count_; }

 private:
  std::vector<tensor::Matrix*> params_;
  std::vector<tensor::Matrix> m_;
  std::vector<tensor::Matrix> v_;
  AdamConfig config_;
  std::size_t step_count_ = 0;
};

}  // namespace pg::nn
