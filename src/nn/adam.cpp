// Bias-corrected Adam update over registered parameter matrices. The
// per-element update runs on the dispatched SIMD layer (double-precision
// lanes with the same float rounding points as the scalar loop, so
// checkpoints are bitwise-identical at every dispatch level).
#include "nn/adam.hpp"

#include <cmath>

#include "support/check.hpp"
#include "tensor/simd.hpp"

namespace pg::nn {

Adam::Adam(std::vector<tensor::Matrix*> parameters, AdamConfig config)
    : params_(std::move(parameters)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const tensor::Matrix* p : params_) {
    check(p != nullptr, "Adam: null parameter");
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void Adam::step(std::span<tensor::Matrix> grads) {
  check(grads.size() == params_.size(), "Adam::step: gradient count mismatch");
  ++step_count_;
  tensor::simd::AdamStep step;
  step.beta1 = config_.beta1;
  step.beta2 = config_.beta2;
  step.learning_rate = config_.learning_rate;
  step.epsilon = config_.epsilon;
  step.weight_decay = config_.weight_decay;
  step.bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_count_));
  step.bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_count_));
  const auto& kernels = tensor::simd::kernels();
  for (std::size_t p = 0; p < params_.size(); ++p) {
    check(grads[p].same_shape(*params_[p]), "Adam::step: gradient shape mismatch");
    kernels.adam_update(params_[p]->data().data(), grads[p].data().data(),
                        m_[p].data().data(), v_[p].data().data(),
                        params_[p]->size(), step);
  }
}

std::vector<tensor::Matrix> Adam::make_gradient_buffer() const {
  std::vector<tensor::Matrix> grads;
  grads.reserve(params_.size());
  for (const tensor::Matrix* p : params_) grads.emplace_back(p->rows(), p->cols());
  return grads;
}

}  // namespace pg::nn
