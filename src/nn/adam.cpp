// Bias-corrected Adam update over registered parameter matrices.
#include "nn/adam.hpp"

#include <cmath>

#include "support/check.hpp"

namespace pg::nn {

Adam::Adam(std::vector<tensor::Matrix*> parameters, AdamConfig config)
    : params_(std::move(parameters)), config_(config) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const tensor::Matrix* p : params_) {
    check(p != nullptr, "Adam: null parameter");
    m_.emplace_back(p->rows(), p->cols());
    v_.emplace_back(p->rows(), p->cols());
  }
}

void Adam::step(std::span<tensor::Matrix> grads) {
  check(grads.size() == params_.size(), "Adam::step: gradient count mismatch");
  ++step_count_;
  const double bias1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_count_));
  const double bias2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_count_));
  for (std::size_t p = 0; p < params_.size(); ++p) {
    check(grads[p].same_shape(*params_[p]), "Adam::step: gradient shape mismatch");
    auto theta = params_[p]->data();
    auto g = grads[p].data();
    auto m = m_[p].data();
    auto v = v_[p].data();
    for (std::size_t i = 0; i < theta.size(); ++i) {
      double grad = g[i];
      if (config_.weight_decay != 0.0) grad += config_.weight_decay * theta[i];
      m[i] = static_cast<float>(config_.beta1 * m[i] + (1.0 - config_.beta1) * grad);
      v[i] = static_cast<float>(config_.beta2 * v[i] + (1.0 - config_.beta2) * grad * grad);
      const double m_hat = m[i] / bias1;
      const double v_hat = v[i] / bias2;
      theta[i] -= static_cast<float>(config_.learning_rate * m_hat /
                                     (std::sqrt(v_hat) + config_.epsilon));
    }
  }
}

std::vector<tensor::Matrix> Adam::make_gradient_buffer() const {
  std::vector<tensor::Matrix> grads;
  grads.reserve(params_.size());
  for (const tensor::Matrix* p : params_) grads.emplace_back(p->rows(), p->cols());
  return grads;
}

}  // namespace pg::nn
