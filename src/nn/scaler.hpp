// MinMaxScaler — the paper normalises edge weights, the two auxiliary
// features, and (here) the regression target with it (§IV-B).
#pragma once

#include <span>

namespace pg::nn {

class MinMaxScaler {
 public:
  /// Fits to the [min, max] of `values`.
  void fit(std::span<const double> values);

  /// Explicit bounds (e.g. when the bounds come from a different pass).
  void fit_bounds(double min_value, double max_value);

  [[nodiscard]] double transform(double v) const;
  [[nodiscard]] double inverse(double scaled) const;

  [[nodiscard]] bool fitted() const { return fitted_; }
  [[nodiscard]] double min_value() const { return min_; }
  [[nodiscard]] double max_value() const { return max_; }
  [[nodiscard]] double range() const { return max_ - min_; }

 private:
  double min_ = 0.0;
  double max_ = 1.0;
  bool fitted_ = false;
};

}  // namespace pg::nn
