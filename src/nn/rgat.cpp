// RGAT convolution: per-relation projections, additive attention with
// LeakyReLU + softmax over incoming edges, and the matching backward — all
// scratch drawn from the caller's Workspace, gather/scatter fused into the
// projection loops so no per-relation temporaries are materialised. The
// CSR/SoA relation layout keeps the edge loops on contiguous u32/f32
// streams; a block-diagonal (batched) RelationalGraph runs through the very
// same code paths, which is what makes the fused GraphBatch forward
// bitwise-identical to per-graph execution.
//
// The hot per-relation bodies — the fused gather->project and the grouped
// attention softmax + gated scatter walking the CSR group_offsets[] /
// group_dst[] arrays — live in the runtime-dispatched SIMD kernel layer
// (tensor/simd.hpp): width-templated register accumulators, vector loads
// across the independent output lanes, reduction order pinned to the scalar
// reference so every dispatch level is bitwise-identical.
#include "nn/rgat.hpp"

#include <cmath>

#include "nn/activation.hpp"
#include "support/check.hpp"
#include "support/parallel.hpp"
#include "tensor/init.hpp"
#include "tensor/simd.hpp"

namespace pg::nn {
namespace {

// Intra-batch split grains for the forward pass (see support/parallel.hpp:
// the helper stays serial inside an enclosing parallel region, so these only
// fire when a big fused chunk runs alone — the engine's one-giant-graph
// case). Every split partitions independent output rows/groups, so the
// parallel result is bitwise-equal to the serial one.
constexpr std::size_t kGatherRowGrain = 64;   // rows of fused gather+project
constexpr std::size_t kBiasRowGrain = 2048;   // rows of the bias add
constexpr std::size_t kScatterGroupGrain = 128;  // destination groups

/// Totals over all relations: edges and locally-active nodes. These define
/// the concatenated-block layout shared by forward and backward.
void relation_totals(const RelationalGraph& graph, std::size_t* total_edges,
                     std::size_t* total_active) {
  *total_edges = 0;
  *total_active = 0;
  for (const RelationEdges& rel : graph.relations) {
    *total_edges += rel.num_edges();
    *total_active += rel.num_active_nodes();
  }
}

}  // namespace

RgatConv::RgatConv(std::size_t in_features, std::size_t out_features,
                   std::size_t num_relations, pg::Rng& rng, bool apply_relu,
                   float leaky_slope)
    : in_(in_features),
      out_(out_features),
      num_relations_(num_relations),
      apply_relu_(apply_relu),
      leaky_slope_(leaky_slope),
      w_self_(in_features, out_features),
      b_(1, out_features) {
  check(num_relations >= 1, "RgatConv needs at least one relation");
  w_rel_.reserve(num_relations);
  a_src_.reserve(num_relations);
  a_dst_.reserve(num_relations);
  for (std::size_t r = 0; r < num_relations; ++r) {
    w_rel_.emplace_back(in_features, out_features);
    tensor::glorot_uniform(w_rel_.back(), rng);
    a_src_.emplace_back(1, out_features);
    tensor::glorot_uniform(a_src_.back(), rng);
    a_dst_.emplace_back(1, out_features);
    tensor::glorot_uniform(a_dst_.back(), rng);
  }
  tensor::glorot_uniform(w_self_, rng);
}

const tensor::Matrix& RgatConv::forward(const tensor::Matrix& x,
                                        const RelationalGraph& graph,
                                        Cache& cache,
                                        tensor::Workspace& ws) const {
  check(x.cols() == in_, "RgatConv::forward: feature dim mismatch");
  check(x.rows() == graph.num_nodes, "RgatConv::forward: node count mismatch");
  check(graph.relations.size() == num_relations_,
        "RgatConv::forward: relation count mismatch");

  std::size_t total_edges = 0;
  std::size_t total_active = 0;
  relation_totals(graph, &total_edges, &total_active);

  cache.x = &x;
  // g accumulates (+=) and must start zeroed; raw/alpha/pre/s_src/s_dst are
  // fully written before any read, so they skip the acquire memset.
  cache.g = &ws.acquire(total_active, out_);
  cache.raw = &ws.acquire_uninit(1, total_edges);
  cache.alpha = &ws.acquire_uninit(1, total_edges);
  cache.pre = &ws.acquire_uninit(x.rows(), out_);

  tensor::Matrix& pre = *cache.pre;
  tensor::matmul_into(pre, x, w_self_);
  parallel_for_blocks(pre.rows(), kBiasRowGrain, [&](std::size_t lo,
                                                     std::size_t hi) {
    tensor::simd::kernels().add_bias_rows(pre.data().data() + lo * out_,
                                          b_.data().data(), hi - lo, out_);
  });

  tensor::Matrix& s_src = ws.acquire_uninit(1, total_active);
  tensor::Matrix& s_dst = ws.acquire_uninit(1, total_active);

  const float* xp = x.data().data();
  float* gp = cache.g->data().data();
  float* prep = pre.data().data();
  float* ss = s_src.data().data();
  float* sd = s_dst.data().data();
  float* rawp = cache.raw->data().data();
  float* alphap = cache.alpha->data().data();

  const tensor::simd::KernelTable& kernels = tensor::simd::kernels();
  std::size_t edge_off = 0;
  std::size_t row_off = 0;
  for (std::size_t r = 0; r < num_relations_; ++r) {
    const RelationEdges& rel = graph.relations[r];
    if (rel.empty()) continue;
    const std::size_t na = rel.num_active_nodes();

    // Project only the rows this relation touches, straight into the
    // relation's block of the concatenated cache (fused gather + matmul;
    // the g block starts zero-filled, the kernel accumulates into it), then
    // both attention dots in one pass over g (independent double
    // accumulators; a j-reduction, so it stays in scalar program order at
    // every dispatch level). Row-range split: each block owns a disjoint
    // slice of g/ss/sd rows, so the cut never changes any value.
    const float* asrc = a_src_[r].data().data();
    const float* adst = a_dst_[r].data().data();
    parallel_for_blocks(na, kGatherRowGrain, [&](std::size_t lo,
                                                 std::size_t hi) {
      kernels.rgat_gather_project(rel.nodes.data() + lo, hi - lo, xp, in_,
                                  w_rel_[r].data().data(), gp, out_,
                                  row_off + lo);
      for (std::size_t i = lo; i < hi; ++i) {
        const float* __restrict__ g_row = gp + (row_off + i) * out_;
        double acc_src = 0.0;
        double acc_dst = 0.0;
        for (std::size_t j = 0; j < out_; ++j) {
          acc_src += static_cast<double>(g_row[j]) * asrc[j];
          acc_dst += static_cast<double>(g_row[j]) * adst[j];
        }
        ss[row_off + i] = static_cast<float>(acc_src);
        sd[row_off + i] = static_cast<float>(acc_dst);
      }
    });

    // Grouped softmax + gated scatter over the relation's CSR arrays.
    // Group-range split: group_offsets holds absolute within-relation edge
    // indices and group_dst is unique per relation, so a sub-range call
    // touches disjoint raw/alpha slots and disjoint pre rows. The relation
    // loop itself stays serial — different relations accumulate into the
    // same destination rows, and that sum's order is part of the bitwise
    // contract.
    parallel_for_blocks(
        rel.num_groups(), kScatterGroupGrain,
        [&](std::size_t g_lo, std::size_t g_hi) {
          kernels.rgat_attention_scatter(
              rel.group_offsets.data() + g_lo, rel.group_dst.data() + g_lo,
              g_hi - g_lo, rel.nodes.data(), rel.src_local.data(),
              rel.gate.data(), ss, sd, leaky_slope_, rawp + edge_off,
              alphap + edge_off, gp, prep, out_, row_off);
        });

    edge_off += rel.num_edges();
    row_off += na;
  }

  if (!apply_relu_) return pre;
  tensor::Matrix& y = ws.acquire_uninit(x.rows(), out_);
  relu_into(y, pre);
  return y;
}

tensor::Matrix& RgatConv::backward(const tensor::Matrix& dy,
                                   const RelationalGraph& graph,
                                   const Cache& cache,
                                   std::span<tensor::Matrix> grads,
                                   tensor::Workspace& ws) const {
  check(grads.size() == num_params(), "RgatConv::backward: bad grad span");
  check(cache.x != nullptr, "RgatConv::backward: cache without forward");
  const tensor::Matrix& x = *cache.x;
  const std::size_t n = x.rows();
  check(dy.rows() == n && dy.cols() == out_, "RgatConv::backward: dy shape");

  const tensor::Matrix* dpre = &dy;
  if (apply_relu_) {
    tensor::Matrix& masked = ws.acquire_uninit(n, out_);
    relu_backward_into(masked, dy, *cache.pre);
    dpre = &masked;
  }

  // Self-connection + bias.
  tensor::Matrix& dx = ws.acquire_uninit(n, in_);
  tensor::matmul_transpose_b_into(dx, *dpre, w_self_);
  tensor::matmul_transpose_a_acc(grads[3 * num_relations_], x, *dpre);
  tensor::column_sums_acc(grads[3 * num_relations_ + 1], *dpre);

  std::size_t total_edges = 0;
  std::size_t total_active = 0;
  relation_totals(graph, &total_edges, &total_active);

  // dg/ds_* accumulate (+=) and need the zero fill; dscore is assigned per
  // edge before its group reads it back.
  tensor::Matrix& dg = ws.acquire(total_active, out_);
  tensor::Matrix& ds_src_m = ws.acquire(1, total_active);
  tensor::Matrix& ds_dst_m = ws.acquire(1, total_active);
  tensor::Matrix& dscore_m = ws.acquire_uninit(1, total_edges);
  // LeakyReLU gradients for all edges in one dispatched elementwise pass —
  // the same values the group loop used to compute one edge at a time.
  tensor::Matrix& lrg_m = ws.acquire_uninit(1, total_edges);
  tensor::simd::kernels().leaky_relu_grad(lrg_m.data().data(),
                                          cache.raw->data().data(),
                                          leaky_slope_, total_edges);

  std::size_t edge_off = 0;
  std::size_t row_off = 0;
  for (std::size_t r = 0; r < num_relations_; ++r) {
    const RelationEdges& rel = graph.relations[r];
    if (rel.empty()) continue;
    const std::size_t na = rel.num_active_nodes();
    auto lrg = lrg_m.row_span(0);
    auto alpha = cache.alpha->row_span(0);
    auto ds_src = ds_src_m.row_span(0);
    auto ds_dst = ds_dst_m.row_span(0);
    auto dscore = dscore_m.row_span(0);
    const std::uint32_t* src_local = rel.src_local.data();
    const float* gates = rel.gate.data();

    for (std::size_t group = 0; group < rel.num_groups(); ++group) {
      const std::size_t lo = rel.group_offsets[group];
      const std::size_t hi = rel.group_offsets[group + 1];
      const std::uint32_t v_local = rel.group_dst[group];
      const std::uint32_t v_global = rel.nodes[v_local];
      auto dpre_row = dpre->row_span(v_global);

      // dscore_e = d(out_v) . (gate_e * g_src); softmax backward within the
      // group; message-path gradient back to g_src.
      double weighted_sum = 0.0;  // sum_e alpha_e * dscore_e
      for (std::size_t e = lo; e < hi; ++e) {
        const std::uint32_t src = src_local[e];
        const float* __restrict__ g_row =
            cache.g->data().data() + (row_off + src) * out_;
        double acc = 0.0;
        for (std::size_t j = 0; j < out_; ++j)
          acc += static_cast<double>(dpre_row[j]) * g_row[j];
        dscore[edge_off + e] = gates[e] * static_cast<float>(acc);
        weighted_sum +=
            static_cast<double>(alpha[edge_off + e]) * dscore[edge_off + e];
        const float scale = alpha[edge_off + e] * gates[e];
        auto dg_row = dg.row_span(row_off + src);
        for (std::size_t j = 0; j < out_; ++j) dg_row[j] += scale * dpre_row[j];
      }
      for (std::size_t e = lo; e < hi; ++e) {
        const float dlogit =
            alpha[edge_off + e] *
            (dscore[edge_off + e] - static_cast<float>(weighted_sum));
        const float draw = dlogit * lrg[edge_off + e];
        ds_src[row_off + src_local[e]] += draw;
        ds_dst[row_off + v_local] += draw;
      }
    }

    // s = g . a  =>  dg += ds outer a; da += sum_i ds[i] * g_i.
    auto a_src_row = a_src_[r].row_span(0);
    auto a_dst_row = a_dst_[r].row_span(0);
    auto da_src = grads[3 * r + 1].row_span(0);
    auto da_dst = grads[3 * r + 2].row_span(0);
    for (std::size_t i = 0; i < na; ++i) {
      if (ds_src[row_off + i] != 0.0f) {
        auto dg_row = dg.row_span(row_off + i);
        auto g_row = cache.g->row_span(row_off + i);
        for (std::size_t j = 0; j < out_; ++j) {
          dg_row[j] += ds_src[row_off + i] * a_src_row[j];
          da_src[j] += ds_src[row_off + i] * g_row[j];
        }
      }
      if (ds_dst[row_off + i] != 0.0f) {
        auto dg_row = dg.row_span(row_off + i);
        auto g_row = cache.g->row_span(row_off + i);
        for (std::size_t j = 0; j < out_; ++j) {
          dg_row[j] += ds_dst[row_off + i] * a_dst_row[j];
          da_dst[j] += ds_dst[row_off + i] * g_row[j];
        }
      }
    }

    // g = gather(x) W_r  =>  dW_r += gather(x)^T dg (fused, no x_local);
    // dx[global] += (dg W_r^T)[local] (fused scatter, no dx_local).
    tensor::Matrix& dw = grads[3 * r];
    for (std::size_t i = 0; i < na; ++i) {
      auto x_row = x.row_span(rel.nodes[i]);
      auto dg_row = dg.row_span(row_off + i);
      for (std::size_t k = 0; k < in_; ++k) {
        const float aval = x_row[k];
        if (aval == 0.0f) continue;
        auto dw_row = dw.row_span(k);
        for (std::size_t j = 0; j < out_; ++j) dw_row[j] += aval * dg_row[j];
      }
    }
    for (std::size_t i = 0; i < na; ++i) {
      auto dst = dx.row_span(rel.nodes[i]);
      auto dg_row = dg.row_span(row_off + i);
      for (std::size_t k = 0; k < in_; ++k) {
        auto w_row = w_rel_[r].row_span(k);
        double acc = 0.0;
        for (std::size_t j = 0; j < out_; ++j)
          acc += static_cast<double>(dg_row[j]) * w_row[j];
        dst[k] += static_cast<float>(acc);
      }
    }

    edge_off += rel.num_edges();
    row_off += na;
  }
  return dx;
}

std::vector<tensor::Matrix*> RgatConv::parameters() {
  std::vector<tensor::Matrix*> params;
  params.reserve(num_params());
  for (std::size_t r = 0; r < num_relations_; ++r) {
    params.push_back(&w_rel_[r]);
    params.push_back(&a_src_[r]);
    params.push_back(&a_dst_[r]);
  }
  params.push_back(&w_self_);
  params.push_back(&b_);
  return params;
}

std::vector<const tensor::Matrix*> RgatConv::parameters() const {
  std::vector<const tensor::Matrix*> params;
  params.reserve(num_params());
  for (std::size_t r = 0; r < num_relations_; ++r) {
    params.push_back(&w_rel_[r]);
    params.push_back(&a_src_[r]);
    params.push_back(&a_dst_[r]);
  }
  params.push_back(&w_self_);
  params.push_back(&b_);
  return params;
}

}  // namespace pg::nn
