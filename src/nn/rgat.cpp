// RGAT convolution: per-relation projections, additive attention with
// LeakyReLU + softmax over incoming edges, and the matching backward.
#include "nn/rgat.hpp"

#include <cmath>

#include "nn/activation.hpp"
#include "support/check.hpp"
#include "tensor/init.hpp"

namespace pg::nn {
namespace {

float dot(std::span<const float> a, std::span<const float> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += static_cast<double>(a[i]) * b[i];
  return static_cast<float>(acc);
}

/// Gathers rows `ids` of `x` into a dense [|ids|, cols] matrix.
tensor::Matrix gather_rows(const tensor::Matrix& x,
                           const std::vector<std::uint32_t>& ids) {
  tensor::Matrix out(ids.size(), x.cols());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto src = x.row_span(ids[i]);
    auto dst = out.row_span(i);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

}  // namespace

RgatConv::RgatConv(std::size_t in_features, std::size_t out_features,
                   std::size_t num_relations, pg::Rng& rng, bool apply_relu,
                   float leaky_slope)
    : in_(in_features),
      out_(out_features),
      num_relations_(num_relations),
      apply_relu_(apply_relu),
      leaky_slope_(leaky_slope),
      w_self_(in_features, out_features),
      b_(1, out_features) {
  check(num_relations >= 1, "RgatConv needs at least one relation");
  w_rel_.reserve(num_relations);
  a_src_.reserve(num_relations);
  a_dst_.reserve(num_relations);
  for (std::size_t r = 0; r < num_relations; ++r) {
    w_rel_.emplace_back(in_features, out_features);
    tensor::glorot_uniform(w_rel_.back(), rng);
    a_src_.emplace_back(1, out_features);
    tensor::glorot_uniform(a_src_.back(), rng);
    a_dst_.emplace_back(1, out_features);
    tensor::glorot_uniform(a_dst_.back(), rng);
  }
  tensor::glorot_uniform(w_self_, rng);
}

tensor::Matrix RgatConv::forward(const tensor::Matrix& x,
                                 const RelationalGraph& graph,
                                 Cache& cache) const {
  check(x.cols() == in_, "RgatConv::forward: feature dim mismatch");
  check(x.rows() == graph.num_nodes, "RgatConv::forward: node count mismatch");
  check(graph.relations.size() == num_relations_,
        "RgatConv::forward: relation count mismatch");

  cache.x = x;
  cache.g.assign(num_relations_, tensor::Matrix{});
  cache.raw.assign(num_relations_, {});
  cache.alpha.assign(num_relations_, {});

  tensor::Matrix pre = tensor::matmul(x, w_self_);
  for (std::size_t i = 0; i < pre.rows(); ++i) {
    auto row = pre.row_span(i);
    auto bias = b_.row_span(0);
    for (std::size_t j = 0; j < out_; ++j) row[j] += bias[j];
  }

  for (std::size_t r = 0; r < num_relations_; ++r) {
    const RelationEdges& rel = graph.relations[r];
    if (rel.empty()) continue;
    const std::size_t na = rel.num_active_nodes();

    // Project only the rows this relation touches.
    tensor::Matrix g = tensor::matmul(gather_rows(x, rel.nodes), w_rel_[r]);

    std::vector<float> s_src(na);
    std::vector<float> s_dst(na);
    for (std::size_t i = 0; i < na; ++i) {
      s_src[i] = dot(g.row_span(i), a_src_[r].row_span(0));
      s_dst[i] = dot(g.row_span(i), a_dst_[r].row_span(0));
    }

    std::vector<float>& raw = cache.raw[r];
    std::vector<float>& alpha = cache.alpha[r];
    raw.resize(rel.edges.size());
    alpha.resize(rel.edges.size());

    for (std::size_t group = 0; group < rel.num_groups(); ++group) {
      const std::size_t lo = rel.group_offsets[group];
      const std::size_t hi = rel.group_offsets[group + 1];
      const std::uint32_t v_local = rel.group_dst[group];
      const std::uint32_t v_global = rel.nodes[v_local];

      float max_logit = -1e30f;
      for (std::size_t e = lo; e < hi; ++e) {
        raw[e] = s_src[rel.edges[e].src_local] + s_dst[v_local];
        const float logit = leaky_relu(raw[e], leaky_slope_);
        if (logit > max_logit) max_logit = logit;
      }
      double denom = 0.0;
      for (std::size_t e = lo; e < hi; ++e) {
        alpha[e] = std::exp(leaky_relu(raw[e], leaky_slope_) - max_logit);
        denom += alpha[e];
      }
      auto out_row = pre.row_span(v_global);
      for (std::size_t e = lo; e < hi; ++e) {
        alpha[e] = static_cast<float>(alpha[e] / denom);
        const float scale = alpha[e] * rel.edges[e].gate;
        auto g_row = g.row_span(rel.edges[e].src_local);
        for (std::size_t j = 0; j < out_; ++j) out_row[j] += scale * g_row[j];
      }
    }
    cache.g[r] = std::move(g);
  }

  cache.pre = pre;
  return apply_relu_ ? relu(pre) : pre;
}

tensor::Matrix RgatConv::backward(const tensor::Matrix& dy,
                                  const RelationalGraph& graph,
                                  const Cache& cache,
                                  std::span<tensor::Matrix> grads) const {
  check(grads.size() == num_params(), "RgatConv::backward: bad grad span");
  const std::size_t n = cache.x.rows();
  check(dy.rows() == n && dy.cols() == out_, "RgatConv::backward: dy shape");

  const tensor::Matrix dpre = apply_relu_ ? relu_backward(dy, cache.pre) : dy;

  // Self-connection + bias.
  tensor::Matrix dx = tensor::matmul_transpose_b(dpre, w_self_);
  grads[3 * num_relations_].add_(tensor::matmul_transpose_a(cache.x, dpre));
  grads[3 * num_relations_ + 1].add_(tensor::column_sums(dpre));

  for (std::size_t r = 0; r < num_relations_; ++r) {
    const RelationEdges& rel = graph.relations[r];
    if (rel.empty()) continue;
    const std::size_t na = rel.num_active_nodes();
    const tensor::Matrix& g = cache.g[r];
    const std::vector<float>& raw = cache.raw[r];
    const std::vector<float>& alpha = cache.alpha[r];

    tensor::Matrix dg(na, out_);
    std::vector<float> ds_src(na, 0.0f);
    std::vector<float> ds_dst(na, 0.0f);

    for (std::size_t group = 0; group < rel.num_groups(); ++group) {
      const std::size_t lo = rel.group_offsets[group];
      const std::size_t hi = rel.group_offsets[group + 1];
      const std::uint32_t v_local = rel.group_dst[group];
      const std::uint32_t v_global = rel.nodes[v_local];
      auto dpre_row = dpre.row_span(v_global);

      // dscore_e = d(out_v) . (gate_e * g_src); softmax backward within the
      // group; message-path gradient back to g_src.
      double weighted_sum = 0.0;  // sum_e alpha_e * dscore_e
      std::vector<float> dscore(hi - lo);
      for (std::size_t e = lo; e < hi; ++e) {
        const RelEdge& edge = rel.edges[e];
        dscore[e - lo] = edge.gate * dot(dpre_row, g.row_span(edge.src_local));
        weighted_sum += static_cast<double>(alpha[e]) * dscore[e - lo];
        const float scale = alpha[e] * edge.gate;
        auto dg_row = dg.row_span(edge.src_local);
        for (std::size_t j = 0; j < out_; ++j) dg_row[j] += scale * dpre_row[j];
      }
      for (std::size_t e = lo; e < hi; ++e) {
        const RelEdge& edge = rel.edges[e];
        const float dlogit =
            alpha[e] * (dscore[e - lo] - static_cast<float>(weighted_sum));
        const float draw = dlogit * leaky_relu_grad(raw[e], leaky_slope_);
        ds_src[edge.src_local] += draw;
        ds_dst[v_local] += draw;
      }
    }

    // s = g . a  =>  dg += ds outer a; da += sum_i ds[i] * g_i.
    auto a_src_row = a_src_[r].row_span(0);
    auto a_dst_row = a_dst_[r].row_span(0);
    auto da_src = grads[3 * r + 1].row_span(0);
    auto da_dst = grads[3 * r + 2].row_span(0);
    for (std::size_t i = 0; i < na; ++i) {
      if (ds_src[i] != 0.0f) {
        auto dg_row = dg.row_span(i);
        auto g_row = g.row_span(i);
        for (std::size_t j = 0; j < out_; ++j) {
          dg_row[j] += ds_src[i] * a_src_row[j];
          da_src[j] += ds_src[i] * g_row[j];
        }
      }
      if (ds_dst[i] != 0.0f) {
        auto dg_row = dg.row_span(i);
        auto g_row = g.row_span(i);
        for (std::size_t j = 0; j < out_; ++j) {
          dg_row[j] += ds_dst[i] * a_dst_row[j];
          da_dst[j] += ds_dst[i] * g_row[j];
        }
      }
    }

    // g = gather(x) W_r  =>  dW_r += gather(x)^T dg; dx[global] += (dg W_r^T)[local].
    const tensor::Matrix x_local = gather_rows(cache.x, rel.nodes);
    grads[3 * r].add_(tensor::matmul_transpose_a(x_local, dg));
    const tensor::Matrix dx_local = tensor::matmul_transpose_b(dg, w_rel_[r]);
    for (std::size_t i = 0; i < na; ++i) {
      auto dst = dx.row_span(rel.nodes[i]);
      auto src = dx_local.row_span(i);
      for (std::size_t j = 0; j < in_; ++j) dst[j] += src[j];
    }
  }
  return dx;
}

std::vector<tensor::Matrix*> RgatConv::parameters() {
  std::vector<tensor::Matrix*> params;
  params.reserve(num_params());
  for (std::size_t r = 0; r < num_relations_; ++r) {
    params.push_back(&w_rel_[r]);
    params.push_back(&a_src_[r]);
    params.push_back(&a_dst_[r]);
  }
  params.push_back(&w_self_);
  params.push_back(&b_);
  return params;
}

}  // namespace pg::nn
