// RGAT convolution: per-relation projections, additive attention with
// LeakyReLU + softmax over incoming edges, and the matching backward — all
// scratch drawn from the caller's Workspace, gather/scatter fused into the
// projection loops so no per-relation temporaries are materialised. The
// CSR/SoA relation layout keeps the edge loops on contiguous u32/f32
// streams; a block-diagonal (batched) RelationalGraph runs through the very
// same code paths, which is what makes the fused GraphBatch forward
// bitwise-identical to per-graph execution.
//
// The hidden width is a template parameter of the hot kernels (dispatched
// for the common sizes, runtime fallback otherwise): with a compile-time
// row width the per-row accumulators live in registers across the reduction
// loops instead of being stored and reloaded every iteration. The FP
// operation order is identical in every variant.
#include "nn/rgat.hpp"

#include <cmath>

#include "nn/activation.hpp"
#include "support/check.hpp"
#include "tensor/init.hpp"

namespace pg::nn {
namespace {

/// Totals over all relations: edges and locally-active nodes. These define
/// the concatenated-block layout shared by forward and backward.
void relation_totals(const RelationalGraph& graph, std::size_t* total_edges,
                     std::size_t* total_active) {
  *total_edges = 0;
  *total_active = 0;
  for (const RelationEdges& rel : graph.relations) {
    *total_edges += rel.num_edges();
    *total_active += rel.num_active_nodes();
  }
}

/// Per-relation forward body: fused gather+projection, attention scores,
/// grouped softmax, gated scatter into `prep`. OUT_C > 0 is a compile-time
/// row width (accumulators registerise); OUT_C == 0 reads the width from
/// `out_rt`. Both paths perform identical FP operations in identical order.
template <int OUT_C>
void relation_forward(const RelationEdges& rel, const float* xp,
                      std::size_t in, std::size_t out_rt, const float* wr,
                      const float* asrc, const float* adst, float slope,
                      float* gp, float* ss, float* sd, float* rawp,
                      float* alphap, float* prep, std::size_t row_off) {
  const std::size_t out = OUT_C > 0 ? static_cast<std::size_t>(OUT_C) : out_rt;
  const std::size_t na = rel.num_active_nodes();
  const std::uint32_t* nodes = rel.nodes.data();
  const std::uint32_t* src_local = rel.src_local.data();
  const float* gates = rel.gate.data();

  // Project only the rows this relation touches, straight into the
  // relation's block of the concatenated cache (fused gather + matmul).
  // Sparse rows (one-hot node features) take the zero-skip loop; dense rows
  // (post-ReLU hidden activations, with zeros in *data-dependent* places)
  // take the branchless loop — a skip there mispredicts per element.
  for (std::size_t i = 0; i < na; ++i) {
    const float* __restrict__ src = xp + nodes[i] * in;
    float* __restrict__ dst = gp + (row_off + i) * out;
    std::size_t nnz = 0;
    for (std::size_t k = 0; k < in; ++k) nnz += (src[k] != 0.0f);
    if constexpr (OUT_C > 0) {
      float acc[OUT_C];
      for (int j = 0; j < OUT_C; ++j) acc[j] = dst[j];  // zero-filled block
      if (2 * nnz >= in) {
        for (std::size_t k = 0; k < in; ++k) {
          const float aval = src[k];
          const float* __restrict__ wrow = wr + k * OUT_C;
          for (int j = 0; j < OUT_C; ++j) acc[j] += aval * wrow[j];
        }
      } else {
        for (std::size_t k = 0; k < in; ++k) {
          const float aval = src[k];
          if (aval == 0.0f) continue;
          const float* __restrict__ wrow = wr + k * OUT_C;
          for (int j = 0; j < OUT_C; ++j) acc[j] += aval * wrow[j];
        }
      }
      for (int j = 0; j < OUT_C; ++j) dst[j] = acc[j];
    } else {
      if (2 * nnz >= in) {
        for (std::size_t k = 0; k < in; ++k) {
          const float aval = src[k];
          const float* __restrict__ wrow = wr + k * out;
          for (std::size_t j = 0; j < out; ++j) dst[j] += aval * wrow[j];
        }
      } else {
        for (std::size_t k = 0; k < in; ++k) {
          const float aval = src[k];
          if (aval == 0.0f) continue;
          const float* __restrict__ wrow = wr + k * out;
          for (std::size_t j = 0; j < out; ++j) dst[j] += aval * wrow[j];
        }
      }
    }
  }

  // Both attention dots in one pass over g (independent accumulators, so
  // each dot's own FP order is unchanged).
  for (std::size_t i = 0; i < na; ++i) {
    const float* __restrict__ g_row = gp + (row_off + i) * out;
    double acc_src = 0.0;
    double acc_dst = 0.0;
    for (std::size_t j = 0; j < out; ++j) {
      acc_src += static_cast<double>(g_row[j]) * asrc[j];
      acc_dst += static_cast<double>(g_row[j]) * adst[j];
    }
    ss[row_off + i] = static_cast<float>(acc_src);
    sd[row_off + i] = static_cast<float>(acc_dst);
  }

  for (std::size_t group = 0; group < rel.num_groups(); ++group) {
    const std::size_t lo = rel.group_offsets[group];
    const std::size_t hi = rel.group_offsets[group + 1];
    const std::uint32_t v_local = rel.group_dst[group];
    const std::uint32_t v_global = nodes[v_local];

    const float sd_v = sd[row_off + v_local];
    float max_logit = -1e30f;
    for (std::size_t e = lo; e < hi; ++e) {
      rawp[e] = ss[row_off + src_local[e]] + sd_v;
      const float logit = leaky_relu(rawp[e], slope);
      // Stash the rectified logit so the exp pass below reads it back
      // instead of recomputing LeakyReLU (same value, same FP ops).
      alphap[e] = logit;
      if (logit > max_logit) max_logit = logit;
    }
    double denom = 0.0;
    for (std::size_t e = lo; e < hi; ++e) {
      alphap[e] = std::exp(alphap[e] - max_logit);
      denom += alphap[e];
    }
    float* __restrict__ out_row = prep + v_global * out;
    if constexpr (OUT_C > 0) {
      float acc[OUT_C];
      for (int j = 0; j < OUT_C; ++j) acc[j] = out_row[j];
      for (std::size_t e = lo; e < hi; ++e) {
        alphap[e] = static_cast<float>(alphap[e] / denom);
        const float scale = alphap[e] * gates[e];
        const float* __restrict__ g_row = gp + (row_off + src_local[e]) * OUT_C;
        for (int j = 0; j < OUT_C; ++j) acc[j] += scale * g_row[j];
      }
      for (int j = 0; j < OUT_C; ++j) out_row[j] = acc[j];
    } else {
      for (std::size_t e = lo; e < hi; ++e) {
        alphap[e] = static_cast<float>(alphap[e] / denom);
        const float scale = alphap[e] * gates[e];
        const float* __restrict__ g_row = gp + (row_off + src_local[e]) * out;
        for (std::size_t j = 0; j < out; ++j) out_row[j] += scale * g_row[j];
      }
    }
  }
}

}  // namespace

RgatConv::RgatConv(std::size_t in_features, std::size_t out_features,
                   std::size_t num_relations, pg::Rng& rng, bool apply_relu,
                   float leaky_slope)
    : in_(in_features),
      out_(out_features),
      num_relations_(num_relations),
      apply_relu_(apply_relu),
      leaky_slope_(leaky_slope),
      w_self_(in_features, out_features),
      b_(1, out_features) {
  check(num_relations >= 1, "RgatConv needs at least one relation");
  w_rel_.reserve(num_relations);
  a_src_.reserve(num_relations);
  a_dst_.reserve(num_relations);
  for (std::size_t r = 0; r < num_relations; ++r) {
    w_rel_.emplace_back(in_features, out_features);
    tensor::glorot_uniform(w_rel_.back(), rng);
    a_src_.emplace_back(1, out_features);
    tensor::glorot_uniform(a_src_.back(), rng);
    a_dst_.emplace_back(1, out_features);
    tensor::glorot_uniform(a_dst_.back(), rng);
  }
  tensor::glorot_uniform(w_self_, rng);
}

const tensor::Matrix& RgatConv::forward(const tensor::Matrix& x,
                                        const RelationalGraph& graph,
                                        Cache& cache,
                                        tensor::Workspace& ws) const {
  check(x.cols() == in_, "RgatConv::forward: feature dim mismatch");
  check(x.rows() == graph.num_nodes, "RgatConv::forward: node count mismatch");
  check(graph.relations.size() == num_relations_,
        "RgatConv::forward: relation count mismatch");

  std::size_t total_edges = 0;
  std::size_t total_active = 0;
  relation_totals(graph, &total_edges, &total_active);

  cache.x = &x;
  // g accumulates (+=) and must start zeroed; raw/alpha/pre/s_src/s_dst are
  // fully written before any read, so they skip the acquire memset.
  cache.g = &ws.acquire(total_active, out_);
  cache.raw = &ws.acquire_uninit(1, total_edges);
  cache.alpha = &ws.acquire_uninit(1, total_edges);
  cache.pre = &ws.acquire_uninit(x.rows(), out_);

  tensor::Matrix& pre = *cache.pre;
  tensor::matmul_into(pre, x, w_self_);
  {
    float* __restrict__ p = pre.data().data();
    const float* __restrict__ bias = b_.data().data();
    for (std::size_t i = 0; i < pre.rows(); ++i)
      for (std::size_t j = 0; j < out_; ++j) p[i * out_ + j] += bias[j];
  }

  tensor::Matrix& s_src = ws.acquire_uninit(1, total_active);
  tensor::Matrix& s_dst = ws.acquire_uninit(1, total_active);

  const float* xp = x.data().data();
  float* gp = cache.g->data().data();
  float* prep = pre.data().data();
  float* ss = s_src.data().data();
  float* sd = s_dst.data().data();
  float* rawp = cache.raw->data().data();
  float* alphap = cache.alpha->data().data();

  std::size_t edge_off = 0;
  std::size_t row_off = 0;
  for (std::size_t r = 0; r < num_relations_; ++r) {
    const RelationEdges& rel = graph.relations[r];
    if (rel.empty()) continue;
    const float* wr = w_rel_[r].data().data();
    const float* asrc = a_src_[r].data().data();
    const float* adst = a_dst_[r].data().data();
    auto run = [&]<int OUT_C>() {
      relation_forward<OUT_C>(rel, xp, in_, out_, wr, asrc, adst, leaky_slope_,
                              gp, ss, sd, rawp + edge_off, alphap + edge_off,
                              prep, row_off);
    };
    switch (out_) {
      case 8: run.template operator()<8>(); break;
      case 16: run.template operator()<16>(); break;
      case 24: run.template operator()<24>(); break;
      case 32: run.template operator()<32>(); break;
      default: run.template operator()<0>(); break;
    }
    edge_off += rel.num_edges();
    row_off += rel.num_active_nodes();
  }

  if (!apply_relu_) return pre;
  tensor::Matrix& y = ws.acquire_uninit(x.rows(), out_);
  relu_into(y, pre);
  return y;
}

tensor::Matrix& RgatConv::backward(const tensor::Matrix& dy,
                                   const RelationalGraph& graph,
                                   const Cache& cache,
                                   std::span<tensor::Matrix> grads,
                                   tensor::Workspace& ws) const {
  check(grads.size() == num_params(), "RgatConv::backward: bad grad span");
  check(cache.x != nullptr, "RgatConv::backward: cache without forward");
  const tensor::Matrix& x = *cache.x;
  const std::size_t n = x.rows();
  check(dy.rows() == n && dy.cols() == out_, "RgatConv::backward: dy shape");

  const tensor::Matrix* dpre = &dy;
  if (apply_relu_) {
    tensor::Matrix& masked = ws.acquire_uninit(n, out_);
    relu_backward_into(masked, dy, *cache.pre);
    dpre = &masked;
  }

  // Self-connection + bias.
  tensor::Matrix& dx = ws.acquire_uninit(n, in_);
  tensor::matmul_transpose_b_into(dx, *dpre, w_self_);
  tensor::matmul_transpose_a_acc(grads[3 * num_relations_], x, *dpre);
  tensor::column_sums_acc(grads[3 * num_relations_ + 1], *dpre);

  std::size_t total_edges = 0;
  std::size_t total_active = 0;
  relation_totals(graph, &total_edges, &total_active);

  // dg/ds_* accumulate (+=) and need the zero fill; dscore is assigned per
  // edge before its group reads it back.
  tensor::Matrix& dg = ws.acquire(total_active, out_);
  tensor::Matrix& ds_src_m = ws.acquire(1, total_active);
  tensor::Matrix& ds_dst_m = ws.acquire(1, total_active);
  tensor::Matrix& dscore_m = ws.acquire_uninit(1, total_edges);

  std::size_t edge_off = 0;
  std::size_t row_off = 0;
  for (std::size_t r = 0; r < num_relations_; ++r) {
    const RelationEdges& rel = graph.relations[r];
    if (rel.empty()) continue;
    const std::size_t na = rel.num_active_nodes();
    auto raw = cache.raw->row_span(0);
    auto alpha = cache.alpha->row_span(0);
    auto ds_src = ds_src_m.row_span(0);
    auto ds_dst = ds_dst_m.row_span(0);
    auto dscore = dscore_m.row_span(0);
    const std::uint32_t* src_local = rel.src_local.data();
    const float* gates = rel.gate.data();

    for (std::size_t group = 0; group < rel.num_groups(); ++group) {
      const std::size_t lo = rel.group_offsets[group];
      const std::size_t hi = rel.group_offsets[group + 1];
      const std::uint32_t v_local = rel.group_dst[group];
      const std::uint32_t v_global = rel.nodes[v_local];
      auto dpre_row = dpre->row_span(v_global);

      // dscore_e = d(out_v) . (gate_e * g_src); softmax backward within the
      // group; message-path gradient back to g_src.
      double weighted_sum = 0.0;  // sum_e alpha_e * dscore_e
      for (std::size_t e = lo; e < hi; ++e) {
        const std::uint32_t src = src_local[e];
        const float* __restrict__ g_row =
            cache.g->data().data() + (row_off + src) * out_;
        double acc = 0.0;
        for (std::size_t j = 0; j < out_; ++j)
          acc += static_cast<double>(dpre_row[j]) * g_row[j];
        dscore[edge_off + e] = gates[e] * static_cast<float>(acc);
        weighted_sum +=
            static_cast<double>(alpha[edge_off + e]) * dscore[edge_off + e];
        const float scale = alpha[edge_off + e] * gates[e];
        auto dg_row = dg.row_span(row_off + src);
        for (std::size_t j = 0; j < out_; ++j) dg_row[j] += scale * dpre_row[j];
      }
      for (std::size_t e = lo; e < hi; ++e) {
        const float dlogit =
            alpha[edge_off + e] *
            (dscore[edge_off + e] - static_cast<float>(weighted_sum));
        const float draw =
            dlogit * leaky_relu_grad(raw[edge_off + e], leaky_slope_);
        ds_src[row_off + src_local[e]] += draw;
        ds_dst[row_off + v_local] += draw;
      }
    }

    // s = g . a  =>  dg += ds outer a; da += sum_i ds[i] * g_i.
    auto a_src_row = a_src_[r].row_span(0);
    auto a_dst_row = a_dst_[r].row_span(0);
    auto da_src = grads[3 * r + 1].row_span(0);
    auto da_dst = grads[3 * r + 2].row_span(0);
    for (std::size_t i = 0; i < na; ++i) {
      if (ds_src[row_off + i] != 0.0f) {
        auto dg_row = dg.row_span(row_off + i);
        auto g_row = cache.g->row_span(row_off + i);
        for (std::size_t j = 0; j < out_; ++j) {
          dg_row[j] += ds_src[row_off + i] * a_src_row[j];
          da_src[j] += ds_src[row_off + i] * g_row[j];
        }
      }
      if (ds_dst[row_off + i] != 0.0f) {
        auto dg_row = dg.row_span(row_off + i);
        auto g_row = cache.g->row_span(row_off + i);
        for (std::size_t j = 0; j < out_; ++j) {
          dg_row[j] += ds_dst[row_off + i] * a_dst_row[j];
          da_dst[j] += ds_dst[row_off + i] * g_row[j];
        }
      }
    }

    // g = gather(x) W_r  =>  dW_r += gather(x)^T dg (fused, no x_local);
    // dx[global] += (dg W_r^T)[local] (fused scatter, no dx_local).
    tensor::Matrix& dw = grads[3 * r];
    for (std::size_t i = 0; i < na; ++i) {
      auto x_row = x.row_span(rel.nodes[i]);
      auto dg_row = dg.row_span(row_off + i);
      for (std::size_t k = 0; k < in_; ++k) {
        const float aval = x_row[k];
        if (aval == 0.0f) continue;
        auto dw_row = dw.row_span(k);
        for (std::size_t j = 0; j < out_; ++j) dw_row[j] += aval * dg_row[j];
      }
    }
    for (std::size_t i = 0; i < na; ++i) {
      auto dst = dx.row_span(rel.nodes[i]);
      auto dg_row = dg.row_span(row_off + i);
      for (std::size_t k = 0; k < in_; ++k) {
        auto w_row = w_rel_[r].row_span(k);
        double acc = 0.0;
        for (std::size_t j = 0; j < out_; ++j)
          acc += static_cast<double>(dg_row[j]) * w_row[j];
        dst[k] += static_cast<float>(acc);
      }
    }

    edge_off += rel.num_edges();
    row_off += na;
  }
  return dx;
}

std::vector<tensor::Matrix*> RgatConv::parameters() {
  std::vector<tensor::Matrix*> params;
  params.reserve(num_params());
  for (std::size_t r = 0; r < num_relations_; ++r) {
    params.push_back(&w_rel_[r]);
    params.push_back(&a_src_[r]);
    params.push_back(&a_dst_[r]);
  }
  params.push_back(&w_self_);
  params.push_back(&b_);
  return params;
}

std::vector<const tensor::Matrix*> RgatConv::parameters() const {
  std::vector<const tensor::Matrix*> params;
  params.reserve(num_params());
  for (std::size_t r = 0; r < num_relations_; ++r) {
    params.push_back(&w_rel_[r]);
    params.push_back(&a_src_[r]);
    params.push_back(&a_dst_[r]);
  }
  params.push_back(&w_self_);
  params.push_back(&b_);
  return params;
}

}  // namespace pg::nn
