// Mean-squared-error loss utilities for scalar regression.
#pragma once

namespace pg::nn {

/// Squared error of one prediction.
inline double mse_loss(double prediction, double target) {
  const double d = prediction - target;
  return d * d;
}

/// d(loss)/d(prediction).
inline double mse_grad(double prediction, double target) {
  return 2.0 * (prediction - target);
}

}  // namespace pg::nn
