// Elementwise activations (functional style: no hidden state, callers keep
// whatever they need for the backward pass).
#pragma once

#include "tensor/matrix.hpp"

namespace pg::nn {

tensor::Matrix relu(const tensor::Matrix& x);

/// dL/dx given dL/dy and the *pre-activation* input x.
tensor::Matrix relu_backward(const tensor::Matrix& dy, const tensor::Matrix& x);

// Allocation-free variants writing into pre-shaped (workspace) storage.
void relu_into(tensor::Matrix& y, const tensor::Matrix& x);
void relu_backward_into(tensor::Matrix& dx, const tensor::Matrix& dy,
                        const tensor::Matrix& x);

// Inline: these run once per edge inside the RGAT attention loops, where an
// out-of-line call would dominate the two-instruction body.
inline float leaky_relu(float x, float slope) {
  return x > 0.0f ? x : slope * x;
}
inline float leaky_relu_grad(float x, float slope) {
  return x > 0.0f ? 1.0f : slope;
}

}  // namespace pg::nn
