// Stacked Linear+ReLU forward/backward (identity on the output layer).
#include "nn/mlp.hpp"

#include "nn/activation.hpp"
#include "support/check.hpp"

namespace pg::nn {

Mlp::Mlp(const std::vector<std::size_t>& layer_sizes, pg::Rng& rng) {
  check(layer_sizes.size() >= 2, "Mlp needs at least input and output sizes");
  layers_.reserve(layer_sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < layer_sizes.size(); ++i)
    layers_.emplace_back(layer_sizes[i], layer_sizes[i + 1], rng);
}

tensor::Matrix Mlp::forward(const tensor::Matrix& x, Cache& cache) const {
  cache.inputs.clear();
  cache.pre.clear();
  tensor::Matrix h = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    cache.inputs.push_back(h);
    tensor::Matrix pre = layers_[l].forward(h);
    cache.pre.push_back(pre);
    const bool last = (l + 1 == layers_.size());
    h = last ? std::move(pre) : relu(pre);
  }
  return h;
}

tensor::Matrix Mlp::forward(const tensor::Matrix& x) const {
  Cache cache;
  return forward(x, cache);
}

const tensor::Matrix& Mlp::forward(const tensor::Matrix& x,
                                   tensor::Workspace& ws) const {
  const tensor::Matrix* h = &x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const tensor::Matrix& pre = layers_[l].forward(*h, ws);
    const bool last = (l + 1 == layers_.size());
    if (last) return pre;
    tensor::Matrix& act = ws.acquire_uninit(pre.rows(), pre.cols());
    relu_into(act, pre);
    h = &act;
  }
  return *h;  // zero-layer Mlp is impossible (ctor checks >= 2 sizes)
}

tensor::Matrix Mlp::backward(const tensor::Matrix& dy, const Cache& cache,
                             std::span<tensor::Matrix> grads) const {
  check(grads.size() == num_params(), "Mlp::backward: bad grad span");
  check(cache.inputs.size() == layers_.size(), "Mlp::backward: stale cache");
  tensor::Matrix delta = dy;
  for (std::size_t l = layers_.size(); l-- > 0;) {
    const bool last = (l + 1 == layers_.size());
    if (!last) delta = relu_backward(delta, cache.pre[l]);
    delta = layers_[l].backward(cache.inputs[l], delta,
                                grads.subspan(2 * l, 2));
  }
  return delta;
}

std::vector<tensor::Matrix*> Mlp::parameters() {
  std::vector<tensor::Matrix*> params;
  params.reserve(num_params());
  for (Linear& layer : layers_) {
    for (tensor::Matrix* p : layer.parameters()) params.push_back(p);
  }
  return params;
}

std::vector<const tensor::Matrix*> Mlp::parameters() const {
  std::vector<const tensor::Matrix*> params;
  params.reserve(num_params());
  for (const Linear& layer : layers_) {
    for (const tensor::Matrix* p : layer.parameters()) params.push_back(p);
  }
  return params;
}

}  // namespace pg::nn
